/// \file query_analysis.h
/// \brief Frontend query analysis (paper §5.3).
///
/// Parsing serves several functions in Qserv: detect spatial restrictions
/// (qserv_areaspec_box — so spatial queries do not become full-sky queries),
/// detect index opportunities (objectId predicates), detect database/table
/// references that need rewriting, detect aliases and joins, and prepare for
/// results merging and aggregation. This module produces that analysis; the
/// rewriter (query_rewriter.h) consumes it.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "qserv/catalog_config.h"
#include "qserv/scan_scheduler.h"
#include "sql/ast.h"
#include "util/status.h"

namespace qserv::core {

struct AnalyzedQuery {
  /// The statement with frontend-only pseudo-functions (areaspec) removed.
  sql::SelectStmt stmt;

  /// Spatial restriction extracted from qserv_areaspec_box, or derived from
  /// BETWEEN predicates on partitioning columns, if any.
  std::optional<sphgeom::SphericalBox> areaRestriction;

  /// True when areaRestriction was derived from ordinary predicates rather
  /// than qserv_areaspec_box. Implicit restrictions prune the chunk cover
  /// but are NOT rewritten into qserv_ptInSphericalBox (the original
  /// predicates already filter rows on the workers).
  bool areaRestrictionIsImplicit = false;

  /// objectIds pinned by `objectId = N` / `objectId IN (...)` conjuncts on a
  /// partitioned table (the secondary-index opportunity). Empty = none.
  std::vector<std::int64_t> restrictedObjectIds;

  struct FromTable {
    sql::TableRef ref;
    const PartitionedTable* partitioned = nullptr;  // null: ordinary table
  };
  std::vector<FromTable> from;

  /// Self-join of an overlap-carrying partitioned table (SHV1 shape):
  /// executed over on-the-fly subchunk + overlap tables.
  bool isNearNeighbor = false;

  /// Any aggregate function in the select list (drives the merge plan).
  bool hasAggregates = false;

  /// True when at least one FROM table is partitioned (otherwise the query
  /// executes entirely on the frontend).
  bool touchesPartitioned() const {
    for (const auto& t : from) {
      if (t.partitioned != nullptr) return true;
    }
    return false;
  }
};

/// Analyze a parsed SELECT against \p config.
util::Result<AnalyzedQuery> analyzeQuery(const sql::SelectStmt& stmt,
                                         const CatalogConfig& config);

/// Parse then analyze.
util::Result<AnalyzedQuery> analyzeQuery(std::string_view sql,
                                         const CatalogConfig& config);

/// True when any aggregate function call appears in \p expr.
bool exprHasAggregate(const sql::Expr& expr);

/// Derive the scheduler class the czar ships in the `-- QSERV-CLASS` payload
/// header, from analysis coverage: point / secondary-index lookups (pinned
/// objectIds, or a restriction that prunes to at most one chunk) are
/// interactive; anything touching multiple chunks is a scan. \p chunkCount
/// is the pruned dispatch cover's size.
QueryClass deriveQueryClass(const AnalyzedQuery& analyzed,
                            std::size_t chunkCount);

}  // namespace qserv::core
