/// \file dispatcher.h
/// \brief Master-side chunk-query dispatch and result collection (paper §5.4).
///
/// For each chunk query, the dispatcher performs the two Xrootd file
/// transactions: write the query text to /query2/<CC> (the redirector picks
/// a live replica), then read the dump back from /result/<md5> on the worker
/// that accepted it. Dispatch fans out over a thread pool; per-chunk results
/// carry the worker id and the paper-scale work observables used by the
/// virtual-time simulation.
///
/// Failure handling (the czar "manages transient errors", §5.2):
/// - transient failures retry with exponential backoff + decorrelated
///   jitter, never on a replica that already failed this chunk query
///   (exclude set; failures also evict the redirector cache and feed the
///   per-worker circuit breakers);
/// - a per-query Deadline bounds every attempt, including the blocking
///   result read, and retries stop with kDeadlineExceeded when the budget
///   runs out;
/// - the first chunk failure cancels still-queued sibling chunk queries via
///   the shared CancelToken instead of letting them run to completion, and
///   run() returns an aggregated error naming the failed chunks and their
///   attempt counts;
/// - result dumps carry an MD5 integrity trailer; a mismatch is a retryable
///   fault (re-fetched from another replica), never merged.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "qserv/query_rewriter.h"
#include "simio/cost_model.h"
#include "util/backoff.h"
#include "util/deadline.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "xrd/client.h"

namespace qserv::core {

struct ChunkResult {
  std::int32_t chunkId = 0;
  std::string workerId;
  std::string hash;
  std::string dump;  ///< mysqldump-style byte stream (§5.4)
  simio::WorkObservables observables;
};

struct DispatcherConfig {
  int parallelism = 16;  ///< concurrent in-flight chunk queries on the master
  int maxAttempts = 3;   ///< per chunk query, across replicas
  util::BackoffPolicy backoff;  ///< sleep schedule between attempts
  /// Seed for the deterministic backoff jitter (per-chunk streams are
  /// decorrelated from it).
  std::uint64_t retrySeed = 0x5eedULL;
  /// Require every dump to carry the MD5 integrity trailer; a dump without
  /// one is treated as damaged (the czar enables this — real workers always
  /// append the trailer — while bare-bones test plugins leave it off).
  bool requireDumpChecksum = false;
};

/// Per-run failure-handling context shared by all chunk queries of one user
/// query.
struct DispatchOptions {
  util::Deadline deadline;   ///< default: unlimited
  util::CancelToken cancel;  ///< cancel externally to abort the whole run
};

class Dispatcher {
 public:
  Dispatcher(xrd::RedirectorPtr redirector, DispatcherConfig config);
  /// Convenience: default config with \p parallelism / \p maxAttempts.
  explicit Dispatcher(xrd::RedirectorPtr redirector, int parallelism = 16,
                      int maxAttempts = 3);

  /// Dispatch all of \p specs and collect every result. Fails if any chunk
  /// query cannot be completed after retries; the error aggregates every
  /// failed chunk with its attempt count, and sibling chunk queries still
  /// queued when the first failure lands are cancelled, not executed.
  ///
  /// When \p trace is set, its id is stamped into each payload (so workers
  /// attach their spans to the same trace) and per-chunk dispatcher/xrd
  /// spans are recorded. When \p completed is set it is incremented as each
  /// chunk query finishes (live progress for SHOW PROCESSLIST).
  util::Result<std::vector<ChunkResult>> run(
      const std::vector<ChunkQuerySpec>& specs,
      const util::TracePtr& trace = nullptr,
      std::atomic<std::size_t>* completed = nullptr,
      const DispatchOptions& options = {});

  const DispatcherConfig& config() const { return config_; }

 private:
  /// One chunk query end to end: attempts, backoff, replica exclusion,
  /// integrity verification. \p attemptsOut reports attempts actually made.
  util::Result<ChunkResult> runOne(const ChunkQuerySpec& spec,
                                   const util::TracePtr& trace,
                                   const DispatchOptions& options,
                                   int& attemptsOut);

  xrd::RedirectorPtr redirector_;
  DispatcherConfig config_;
};

}  // namespace qserv::core
