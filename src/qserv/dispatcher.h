/// \file dispatcher.h
/// \brief Master-side chunk-query dispatch and result collection (paper §5.4).
///
/// For each chunk query, the dispatcher performs the two Xrootd file
/// transactions: write the query text to /query2/<CC> (the redirector picks
/// a live replica), then read the dump back from /result/<md5> on the worker
/// that accepted it. Dispatch fans out over a thread pool; per-chunk results
/// carry the worker id and the paper-scale work observables used by the
/// virtual-time simulation.
///
/// Failure handling (the czar "manages transient errors", §5.2):
/// - transient failures retry with exponential backoff + decorrelated
///   jitter, never on a replica that already failed this chunk query
///   (exclude set; failures also evict the redirector cache and feed the
///   per-worker circuit breakers);
/// - a per-query Deadline bounds every attempt, including the blocking
///   result read, and retries stop with kDeadlineExceeded when the budget
///   runs out;
/// - the first chunk failure cancels still-queued sibling chunk queries via
///   the shared CancelToken instead of letting them run to completion, and
///   run() returns an aggregated error naming the failed chunks and their
///   attempt counts;
/// - result dumps carry an MD5 integrity trailer; a mismatch is a retryable
///   fault (re-fetched from another replica), never merged.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "qserv/query_rewriter.h"
#include "simio/cost_model.h"
#include "util/backoff.h"
#include "util/deadline.h"
#include "util/mpmc_queue.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "xrd/client.h"

namespace qserv::core {

struct ChunkResult {
  std::int32_t chunkId = 0;
  std::string workerId;
  std::string hash;
  std::string dump;  ///< mysqldump-style byte stream (§5.4)
  simio::WorkObservables observables;
};

enum class DispatchMode {
  kPerChunk,  ///< paper behaviour: one write+read transaction pair per chunk
  kBatched,   ///< UberJob-style: one request per (query, worker), results
              ///< streamed back incrementally over a shared channel
};

struct DispatcherConfig {
  int parallelism = 16;  ///< concurrent in-flight chunk queries on the master
  int maxAttempts = 3;   ///< per chunk query, across replicas
  util::BackoffPolicy backoff;  ///< sleep schedule between attempts
  /// Seed for the deterministic backoff jitter (per-chunk streams are
  /// decorrelated from it).
  std::uint64_t retrySeed = 0x5eedULL;
  /// Require every dump to carry the MD5 integrity trailer; a dump without
  /// one is treated as damaged (the czar enables this — real workers always
  /// append the trailer — while bare-bones test plugins leave it off).
  bool requireDumpChecksum = false;
  DispatchMode mode = DispatchMode::kPerChunk;
  /// Batched mode: max unread result frames per batch stream before the
  /// worker stops producing (backpressure); 0 = unbounded.
  int streamWindow = 8;
};

/// One planned batch: the chunks of one query headed to one worker. An
/// empty workerId collects chunks with no live placement (they fall back to
/// per-chunk dispatch, which re-locates and reports precise errors).
struct BatchPlanEntry {
  std::string workerId;
  std::vector<std::int32_t> chunkIds;
};

/// What a dispatch run did (mode actually used, batching shape).
struct DispatchReport {
  DispatchMode mode = DispatchMode::kPerChunk;
  std::size_t chunksOk = 0;
  std::size_t batches = 0;         ///< batch requests written
  std::size_t fallbackChunks = 0;  ///< chunks dispatched per-chunk instead
};

/// Per-run failure-handling context shared by all chunk queries of one user
/// query.
struct DispatchOptions {
  util::Deadline deadline;   ///< default: unlimited
  util::CancelToken cancel;  ///< cancel externally to abort the whole run
};

class Dispatcher {
 public:
  Dispatcher(xrd::RedirectorPtr redirector, DispatcherConfig config);
  /// Convenience: default config with \p parallelism / \p maxAttempts.
  explicit Dispatcher(xrd::RedirectorPtr redirector, int parallelism = 16,
                      int maxAttempts = 3);

  /// Dispatch all of \p specs and collect every result. Fails if any chunk
  /// query cannot be completed after retries; the error aggregates every
  /// failed chunk with its attempt count, and sibling chunk queries still
  /// queued when the first failure lands are cancelled, not executed.
  ///
  /// When \p trace is set, its id is stamped into each payload (so workers
  /// attach their spans to the same trace) and per-chunk dispatcher/xrd
  /// spans are recorded. When \p completed is set it is incremented as each
  /// chunk query finishes (live progress for SHOW PROCESSLIST).
  util::Result<std::vector<ChunkResult>> run(
      const std::vector<ChunkQuerySpec>& specs,
      const util::TracePtr& trace = nullptr,
      std::atomic<std::size_t>* completed = nullptr,
      const DispatchOptions& options = {});

  /// Streamed dispatch: each ChunkResult is pushed into \p sink the moment
  /// it arrives, so the caller can merge while later chunks are still
  /// executing. The sink's bound is the pipeline's backpressure: a slow
  /// consumer blocks collection, which (in batched mode) stalls the batch
  /// streams' windows and throttles the workers. Returns once every chunk
  /// reached a final state; the sink is NOT closed — the caller owns its
  /// lifecycle. Error aggregation matches run().
  util::Result<DispatchReport> runStreamed(
      const std::vector<ChunkQuerySpec>& specs,
      util::MpmcQueue<ChunkResult>& sink,
      const util::TracePtr& trace = nullptr,
      std::atomic<std::size_t>* completed = nullptr,
      const DispatchOptions& options = {});

  /// Group \p specs by the worker the redirector would currently place them
  /// on (EXPLAIN's view of batched dispatch; the run itself re-plans).
  std::vector<BatchPlanEntry> planBatches(
      const std::vector<ChunkQuerySpec>& specs);

  const DispatcherConfig& config() const { return config_; }

 private:
  struct RetryItem;
  struct BatchOutcome;
  struct ChunkFailure;

  /// One chunk query end to end: attempts, backoff, replica exclusion,
  /// integrity verification. \p attemptsOut reports attempts actually made.
  /// A chunk resuming after a failed batch attempt passes the replicas it
  /// already burned in \p initialExclude, the attempts already spent in
  /// \p priorAttempts (so the retry budget and backoff schedule carry over),
  /// and the batch-side failure in \p prior.
  util::Result<ChunkResult> runOne(
      const ChunkQuerySpec& spec, const util::TracePtr& trace,
      const DispatchOptions& options, int& attemptsOut,
      std::vector<std::string> initialExclude = {}, int priorAttempts = 0,
      util::Status prior = util::Status::internal("no attempt made"));

  util::Result<DispatchReport> runPerChunk(
      const std::vector<ChunkQuerySpec>& specs,
      util::MpmcQueue<ChunkResult>& sink, const util::TracePtr& trace,
      std::atomic<std::size_t>* completed, const DispatchOptions& options);

  util::Result<DispatchReport> runBatched(
      const std::vector<ChunkQuerySpec>& specs,
      util::MpmcQueue<ChunkResult>& sink, const util::TracePtr& trace,
      std::atomic<std::size_t>* completed, const DispatchOptions& options);

  /// Collect one batch's result stream; failed chunks come back as retry
  /// items for the per-chunk wave.
  BatchOutcome collectBatch(const std::string& workerId,
                            const std::vector<const ChunkQuerySpec*>& chunks,
                            util::MpmcQueue<ChunkResult>& sink,
                            const util::TracePtr& trace,
                            std::atomic<std::size_t>* completed,
                            const DispatchOptions& options);

  /// Build run()/runStreamed()'s aggregated error from per-chunk outcomes.
  static util::Status aggregateFailures(std::vector<ChunkFailure> failures,
                                        std::size_t cancelled, std::size_t ok,
                                        std::size_t total,
                                        const util::Status& cancelReason);

  xrd::RedirectorPtr redirector_;
  DispatcherConfig config_;
  /// Persistent dispatch pool, shared by every query this dispatcher runs
  /// (pool construction per query was a measurable cost on LV point
  /// queries). All submitted tasks are leaves — they never submit-and-wait
  /// on the pool themselves — so sharing cannot deadlock.
  util::ThreadPool pool_;
};

}  // namespace qserv::core
