/// \file dispatcher.h
/// \brief Master-side chunk-query dispatch and result collection (paper §5.4).
///
/// For each chunk query, the dispatcher performs the two Xrootd file
/// transactions: write the query text to /query2/<CC> (the redirector picks
/// a live replica), then read the dump back from /result/<md5> on the worker
/// that accepted it. Transient failures (a worker dying mid-query) retry on
/// another replica. Dispatch fans out over a thread pool; per-chunk results
/// carry the worker id and the paper-scale work observables used by the
/// virtual-time simulation.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "qserv/query_rewriter.h"
#include "simio/cost_model.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "xrd/client.h"

namespace qserv::core {

struct ChunkResult {
  std::int32_t chunkId = 0;
  std::string workerId;
  std::string hash;
  std::string dump;  ///< mysqldump-style byte stream (§5.4)
  simio::WorkObservables observables;
};

class Dispatcher {
 public:
  /// \param parallelism concurrent in-flight chunk queries on the master.
  Dispatcher(xrd::RedirectorPtr redirector, int parallelism = 16,
             int maxAttempts = 3);

  /// Dispatch all of \p specs and collect every result. Fails if any chunk
  /// query cannot be completed after retries.
  ///
  /// When \p trace is set, its id is stamped into each payload (so workers
  /// attach their spans to the same trace) and per-chunk dispatcher/xrd
  /// spans are recorded. When \p completed is set it is incremented as each
  /// chunk query finishes (live progress for SHOW PROCESSLIST).
  util::Result<std::vector<ChunkResult>> run(
      const std::vector<ChunkQuerySpec>& specs,
      const util::TracePtr& trace = nullptr,
      std::atomic<std::size_t>* completed = nullptr);

 private:
  util::Result<ChunkResult> runOne(const ChunkQuerySpec& spec,
                                   const util::TracePtr& trace);

  xrd::RedirectorPtr redirector_;
  int parallelism_;
  int maxAttempts_;
};

}  // namespace qserv::core
