/// \file dispatcher.h
/// \brief Master-side chunk-query dispatch and result collection (paper §5.4).
///
/// For each chunk query, the dispatcher performs the two Xrootd file
/// transactions: write the query text to /query2/<CC> (the redirector picks
/// a live replica), then read the dump back from /result/<md5> on the worker
/// that accepted it. Transient failures (a worker dying mid-query) retry on
/// another replica. Dispatch fans out over a thread pool; per-chunk results
/// carry the worker id and the paper-scale work observables used by the
/// virtual-time simulation.
#pragma once

#include <string>
#include <vector>

#include "qserv/query_rewriter.h"
#include "simio/cost_model.h"
#include "util/thread_pool.h"
#include "xrd/client.h"

namespace qserv::core {

struct ChunkResult {
  std::int32_t chunkId = 0;
  std::string workerId;
  std::string hash;
  std::string dump;  ///< mysqldump-style byte stream (§5.4)
  simio::WorkObservables observables;
};

class Dispatcher {
 public:
  /// \param parallelism concurrent in-flight chunk queries on the master.
  Dispatcher(xrd::RedirectorPtr redirector, int parallelism = 16,
             int maxAttempts = 3);

  /// Dispatch all of \p specs and collect every result. Fails if any chunk
  /// query cannot be completed after retries.
  util::Result<std::vector<ChunkResult>> run(
      const std::vector<ChunkQuerySpec>& specs);

 private:
  util::Result<ChunkResult> runOne(const ChunkQuerySpec& spec);

  xrd::RedirectorPtr redirector_;
  int parallelism_;
  int maxAttempts_;
};

}  // namespace qserv::core
