/// \file worker.h
/// \brief A Qserv worker node (paper §5.1.2, §5.4).
///
/// A worker is an Xrootd data server with Qserv's ofs plugin: chunk queries
/// arrive as writes to /query2/<CC>, execute on the worker's local SQL
/// database against its chunk tables, and results are published as dumps at
/// /result/<md5 of the chunk query>. A fixed number of executor slots (the
/// paper's clusters ran 4) drain a ScanScheduler: in kFifo mode that is the
/// paper's plain queue ("do not implement any concept of query cost", §6.4);
/// in kSharedScan mode (§4.3) interactive tasks ride a priority lane ahead
/// of scans, same-chunk scans share one physical pass (including arrivals
/// that join a pass already in flight), and scan claims reserve chunk-table
/// bytes against a memory budget. See scan_scheduler.h.
///
/// Subchunk tables (Object_CC_SS) and their overlap companions
/// (ObjectFullOverlap_CC_SS) are built on the fly when a chunk query's
/// `-- SUBCHUNKS:` header demands them, refcounted across concurrent tasks,
/// and dropped when the last user finishes (or kept, with the cache option —
/// the paper notes caching is possible but not implemented; ours defaults
/// off to match).
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "qserv/catalog_config.h"
#include "qserv/scan_scheduler.h"
#include "simio/cost_model.h"
#include "sql/database.h"
#include "util/metrics.h"
#include "xrd/file_store.h"
#include "xrd/ofs.h"

namespace qserv::core {

enum class TransferFormat {
  kSqlDump,  ///< paper behaviour: mysqldump-style SQL statements (§5.4)
  kBinary,   ///< the §7.1 "more efficient method": compact row codec
};

/// Shared state of one batched dispatch (/batch/<id>): its chunk tasks
/// stream result frames over one /bstream/<id> path, bounded by a window
/// of unread frames, until the master abandons the batch or the last
/// chunk finishes.
struct BatchStream {
  std::string id;          ///< batchId (md5 of the request payload)
  std::string streamPath;  ///< /bstream/<batchId>
  int window = 0;          ///< max unread frames (0 = unbounded)
  std::atomic<bool> abandoned{false};
  std::atomic<int> remaining{0};  ///< chunks not yet finished/skipped
};

struct WorkerConfig {
  int slots = 4;  ///< concurrent chunk queries (paper §6.2)
  SchedulerMode scheduler = SchedulerMode::kFifo;
  TransferFormat transfer = TransferFormat::kSqlDump;
  bool cacheSubchunks = false;
  /// Real rows -> paper rows multiplier for the cost model (our tables are
  /// scaled down; observables are reported at paper scale).
  double rowScale = 1.0;
  std::chrono::milliseconds resultTimeout{30000};
  /// Start with executor slots paused (tests use this to stage the queue
  /// deterministically before any task is claimed).
  bool startPaused = false;
  /// kSharedScan: paper-scale byte budget for concurrently locked chunk
  /// sets (MemMan-style reservations); <= 0 = unlimited.
  double scanMemoryBudgetBytes = 0.0;
  /// kSharedScan: slow-scan eviction threshold (see ScanSchedulerConfig).
  double slowScanFactor = 4.0;
};

class Worker : public xrd::OfsPlugin {
 public:
  /// \param database local database preloaded with this worker's chunk
  ///        tables; \p exportedChunks lists the chunks it serves.
  Worker(std::string id, std::shared_ptr<sql::Database> database,
         const CatalogConfig& catalog, std::vector<std::int32_t> exportedChunks,
         WorkerConfig config = {});
  ~Worker() override;

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  const std::string& id() const { return id_; }
  sql::Database& database() { return *db_; }

  // --- OfsPlugin -----------------------------------------------------------
  /// Accepts /query2 and /batch chunk-query writes plus the control-plane
  /// writes /chunkload/<id> (install a self-verifying chunk snapshot as a
  /// new replica) and /chunkdrop/<id> (retire this worker's replica).
  util::Status writeFile(const std::string& path, std::string payload) override;
  util::Result<std::string> readFile(const std::string& path) override;
  /// Deadline-bounded result read: the blocking wait for the dump gives up
  /// at min(configured result timeout, caller's deadline). /ping reads
  /// answer immediately with a liveness/load line; /chunk/<id> reads return
  /// a checksummed snapshot of the chunk's tables for worker-to-worker copy.
  util::Result<std::string> readFile(const std::string& path,
                                     const util::Deadline& deadline) override;
  std::vector<std::int32_t> exportedChunks() const override;

  /// Does this worker currently export \p chunkId?
  bool exportsChunk(std::int32_t chunkId) const;

  /// Work observables recorded for a finished chunk query (by result hash),
  /// at paper scale. Used by benches feeding the queue simulation.
  std::optional<simio::WorkObservables> observablesFor(
      const std::string& md5Hex) const;

  /// Queued plus claimed-but-unfinished tasks. Counting in-flight work
  /// matters: queue length alone drops to zero the moment a slot claims a
  /// large scan group, hiding the worker's load from the repair control
  /// plane's rebalance signal and the queue_depth gauge.
  std::size_t queuedTasks() const;
  std::uint64_t tasksExecuted() const { return tasksExecuted_; }

  /// This worker's task scheduler (tests inspect budget/slow-query state).
  ScanScheduler& scheduler() { return sched_; }

  /// Resume paused executor slots (see WorkerConfig::startPaused).
  void resume();

  /// Stop accepting work, finish queued tasks, join executor threads.
  void shutdown();

 private:
  void executorLoop();
  /// Run one claimed task: queue-wait accounting, execution, scheduler
  /// finish bookkeeping. Sets \p ioCharged once a task actually pays the
  /// chunk read (scanned bytes > 0), so a group leader skipped as abandoned
  /// or zone-pruned never eats the charge (the bytesScanned-undercount bug).
  void runClaimedTask(const ScanTask& task, std::int64_t claimedUs,
                      bool& ioCharged, double& maxWaitSec);
  /// Execute a chunk query end to end. Returns true only when the task ran
  /// and published a successful result (its observables were recorded) —
  /// false for abandoned-batch skips and failures.
  bool executeTask(const ScanTask& task, bool chargeScanIo);

  /// Paper-scale bytes chunk \p chunkId's locally held tables occupy — the
  /// scan scheduler's memory-budget charge for one chunk pass.
  double chunkMemoryBytes(std::int32_t chunkId) const;

  /// Decode a /batch write and enqueue one ScanTask per chunk.
  util::Status enqueueBatch(const std::string& batchId, std::string payload);
  /// Mark a batch abandoned (/bcancel write): queued tasks are skipped and
  /// unread frames dropped.
  void abandonBatch(const std::string& batchId);
  /// Publish one chunk's result frame on the batch stream, honoring the
  /// unread-frame window.
  void publishBatchFrame(const ScanTask& task, std::string frame);
  /// Account one finished/skipped batch chunk; the last one unregisters the
  /// batch and, when abandoned, drops its unread frames.
  void finishBatchChunk(const std::shared_ptr<BatchStream>& stream);

  /// Serve a /ping read: "pong id=<id> queue=<depth> chunks=<count>\n".
  std::string pingPayload() const;
  /// Serialize chunk \p chunkId's tables (chunk, overlap, sources) as one
  /// replayable SQL script ending in a -- QSERV-MD5 trailer.
  util::Result<std::string> snapshotChunk(std::int32_t chunkId) const;
  /// Verify and replay a chunk snapshot, index the loaded tables exactly as
  /// initial placement does, then start exporting the chunk.
  util::Status installChunk(std::int32_t chunkId, const std::string& snapshot);
  /// Stop exporting \p chunkId, then drop its tables.
  util::Status dropChunk(std::int32_t chunkId);

  void addExport(std::int32_t chunkId);
  void removeExport(std::int32_t chunkId);

  /// Parse the `-- SUBCHUNKS:` header from the payload's leading comment
  /// lines; empty when absent.
  static std::vector<std::int32_t> parseSubchunksHeader(
      const std::string& payload);

  /// True when the chunk query carries the `-- QSERV-AGG` marker: its
  /// result is a scale-independent partial aggregate.
  static bool isAggregateQuery(const std::string& payload);

  /// Build a ScanTask from an arriving chunk-query payload: hash, trace id,
  /// query class (`-- QSERV-CLASS` header; header-less payloads default to
  /// scan class), and the scan memory charge.
  ScanTask makeTask(std::int32_t chunkId, std::string payload,
                    std::int64_t enqueuedUs) const;

  /// Build (or reuse) the subchunk + overlap tables needed by \p task;
  /// returns build-side execution stats.
  util::Result<sql::ExecStats> acquireSubchunks(
      std::int32_t chunkId, const std::vector<std::int32_t>& subChunks);
  void releaseSubchunks(std::int32_t chunkId,
                        const std::vector<std::int32_t>& subChunks);

  /// Paper-scale bytes per row for \p tableName (chunk/overlap/subchunk
  /// names resolve to their base table's configured width).
  double rowBytesFor(const std::string& tableName) const;

  std::string id_;
  std::shared_ptr<sql::Database> db_;

  // Per-worker queue observability (the shared-scan scheduler's judgment
  // substrate): "worker.<id>.queue_wait_seconds" / ".queue_depth" /
  // ".convoy_ratio" in the process registry, alongside the aggregated
  // "worker.*" instruments. The convoy ratio is max queue wait in a claimed
  // batch over the batch's service time — high when long scans make short
  // tasks queue behind them (a convoy).
  util::Histogram& queueWaitHist_;
  util::Gauge& queueDepthGauge_;
  util::Histogram& convoyRatioHist_;

  const CatalogConfig& catalog_;
  sphgeom::Chunker chunker_;
  /// Sorted; guarded by exportsMutex_ now that the control plane installs
  /// and drops replicas while chunk queries keep arriving.
  mutable std::mutex exportsMutex_;
  std::vector<std::int32_t> exportedChunks_;
  WorkerConfig config_;

  xrd::FileStore results_;

  ScanScheduler sched_;
  std::atomic<bool> stopping_{false};  ///< lock-free shutdown flag for waits
  std::vector<std::thread> executors_;
  std::atomic<std::uint64_t> tasksExecuted_{0};

  mutable std::mutex batchMutex_;
  std::map<std::string, std::shared_ptr<BatchStream>> batches_;

  mutable std::mutex obsMutex_;
  std::map<std::string, simio::WorkObservables> observables_;

  // Subchunk refcounting: key = "Object_CC_SS".
  std::mutex subchunkMutex_;
  std::condition_variable subchunkCv_;
  struct SubchunkState {
    int refs = 0;
    bool built = false;
    bool building = false;
  };
  std::map<std::string, SubchunkState> subchunks_;
};

}  // namespace qserv::core
