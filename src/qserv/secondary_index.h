/// \file secondary_index.h
/// \brief The frontend's objectId -> (chunkId, subChunkId) index (paper §5.5).
///
/// "This is implemented by including a three-column table in the frontend's
/// metadata database that maps objectId to chunkId and subChunkId. When a
/// query predicated on objectId ... is submitted, the frontend executes
/// queries on this table to compute the containing set of chunks." We do
/// exactly that: the index lives as an ordinary indexed SQL table in the
/// frontend's metadata Database and lookups are SQL queries against it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "datagen/partitioner.h"
#include "sql/database.h"

namespace qserv::core {

class SecondaryIndex {
 public:
  /// Creates the ObjectIndex table inside \p metadata.
  explicit SecondaryIndex(sql::Database& metadata);

  /// Bulk-load index entries (from partitioning).
  util::Status load(std::span<const datagen::SecondaryIndexEntry> entries);

  struct Location {
    std::int64_t objectId = 0;
    std::int32_t chunkId = 0;
    std::int32_t subChunkId = 0;
  };

  /// Locations of \p objectIds; missing ids produce no entry.
  util::Result<std::vector<Location>> lookup(
      std::span<const std::int64_t> objectIds) const;

  /// Distinct chunk ids containing any of \p objectIds.
  util::Result<std::vector<std::int32_t>> chunksFor(
      std::span<const std::int64_t> objectIds) const;

  std::size_t size() const;

  static constexpr const char* kTableName = "ObjectIndex";

 private:
  sql::Database& metadata_;
};

}  // namespace qserv::core
