#include "qserv/repair_controller.h"

#include <algorithm>
#include <cstdlib>
#include <future>

#include "qserv/czar.h"
#include "qserv/dump_integrity.h"
#include "sql/dump.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "xrd/paths.h"

namespace qserv::core {

using util::Result;
using util::Status;

namespace {

struct RepairMetrics {
  util::Counter& probes;
  util::Counter& probeFailures;
  util::Counter& workersDeclaredDown;
  util::Counter& workersRevived;
  util::Counter& repairRuns;
  util::Counter& chunksReplicated;
  util::Counter& copyBytes;
  util::Counter& copyFailures;
  util::Counter& checksumMismatches;
  util::Counter& rebalanceMoves;
  util::Counter& chunksIngested;
  util::Gauge& workersDown;
  util::Gauge& transfersInflight;
  util::Histogram& copySeconds;

  static RepairMetrics& instance() {
    auto& reg = util::MetricsRegistry::instance();
    static RepairMetrics* m = new RepairMetrics{
        reg.counter("repair.probes"),
        reg.counter("repair.probe_failures"),
        reg.counter("repair.workers_declared_down"),
        reg.counter("repair.workers_revived"),
        reg.counter("repair.runs"),
        reg.counter("repair.chunks_replicated"),
        reg.counter("repair.copy_bytes"),
        reg.counter("repair.copy_failures"),
        reg.counter("repair.checksum_mismatches"),
        reg.counter("repair.rebalance_moves"),
        reg.counter("repair.chunks_ingested"),
        reg.gauge("repair.workers_down"),
        reg.gauge("repair.transfers_inflight"),
        reg.histogram("repair.copy_seconds"),
    };
    return *m;
  }
};

/// Parse "pong id=w0 queue=3 chunks=12\n" fields; zero when absent.
void parsePing(const std::string& payload, std::size_t* queue,
               std::size_t* chunks) {
  *queue = 0;
  *chunks = 0;
  for (const auto& token : util::split(payload, ' ')) {
    std::string_view t = util::trim(token);
    if (util::startsWith(t, "queue=")) {
      *queue = static_cast<std::size_t>(
          std::strtoull(std::string(t.substr(6)).c_str(), nullptr, 10));
    } else if (util::startsWith(t, "chunks=")) {
      *chunks = static_cast<std::size_t>(
          std::strtoull(std::string(t.substr(7)).c_str(), nullptr, 10));
    }
  }
}

/// One replayable, checksummed script carrying a ChunkData's tables — the
/// same wire format Worker::snapshotChunk produces for worker-to-worker
/// copies, here built from freshly partitioned (not yet loaded) data.
std::string encodeChunkSnapshot(const datagen::ChunkData& chunk) {
  std::string script = util::format("-- qserv-chunk v1 %d\n", chunk.chunkId);
  if (chunk.objects) script += sql::dumpTable(*chunk.objects,
                                              chunk.objects->name());
  if (chunk.objectOverlap) {
    script += sql::dumpTable(*chunk.objectOverlap,
                             chunk.objectOverlap->name());
  }
  if (chunk.sources) script += sql::dumpTable(*chunk.sources,
                                              chunk.sources->name());
  appendDumpChecksum(script);
  return script;
}

std::uint64_t mixSeed(std::uint64_t seed, std::int32_t chunkId,
                      const std::string& dest) {
  return seed ^ (static_cast<std::uint64_t>(chunkId) * 0x9e3779b97f4a7c15ULL)
       ^ std::hash<std::string>{}(dest);
}

}  // namespace

RepairController::RepairController(RepairConfig config,
                                   xrd::RedirectorPtr redirector,
                                   CatalogConfig catalog)
    : config_(std::move(config)),
      redirector_(std::move(redirector)),
      catalog_(std::move(catalog)) {}

RepairController::~RepairController() { stop(); }

void RepairController::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  {
    std::lock_guard lock(monitorMutex_);
    stopRequested_ = false;
  }
  monitor_ = std::thread([this] { monitorLoop(); });
}

void RepairController::stop() {
  if (!running_.exchange(false)) {
    if (monitor_.joinable()) monitor_.join();
    return;
  }
  {
    std::lock_guard lock(monitorMutex_);
    stopRequested_ = true;
  }
  monitorCv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

void RepairController::monitorLoop() {
  while (true) {
    {
      std::unique_lock lock(monitorMutex_);
      monitorCv_.wait_for(lock, config_.probeInterval,
                          [&] { return stopRequested_; });
      if (stopRequested_) return;
    }
    bool newlyDown = probeOnce();
    if (newlyDown && config_.autoRepair) {
      auto repaired = repairOnce();
      if (!repaired.isOk()) {
        QLOG(kWarn, "repair")
            << "auto-repair failed: " << repaired.status().toString();
      }
    }
  }
}

bool RepairController::probeOnce() {
  auto& metrics = RepairMetrics::instance();
  bool anyNewlyDown = false;
  for (const std::string& id : redirector_->serverIds()) {
    xrd::DataServerPtr server = redirector_->findServer(id);
    if (!server) continue;
    bool ok = false;
    std::size_t queue = 0, chunks = 0;
    if (server->isUp()) {
      auto pong = server->read(std::string(xrd::kPingPath));
      if (pong.isOk()) {
        ok = true;
        parsePing(*pong, &queue, &chunks);
      }
    }
    metrics.probes.add();
    if (!ok) metrics.probeFailures.add();
    // Train the query path's breaker through its own half-open gating: the
    // control plane and the dispatcher share one health view.
    redirector_->reportProbe(id, ok);

    bool declaredDown = false;
    bool revived = false;
    {
      std::lock_guard lock(stateMutex_);
      WorkerState& state = states_[id];
      if (ok) {
        state.failStreak = 0;
        state.queueDepth = queue;
        if (state.health != WorkerHealth::kUp &&
            ++state.okStreak >= config_.upAfter) {
          revived = state.health == WorkerHealth::kDown;
          state.health = WorkerHealth::kUp;
          state.okStreak = 0;
        }
      } else {
        state.okStreak = 0;
        ++state.failStreak;
        if (state.health != WorkerHealth::kDown &&
            state.failStreak >= config_.downAfter) {
          state.health = WorkerHealth::kDown;
          declaredDown = true;
        } else if (state.health == WorkerHealth::kUp &&
                   state.failStreak >= config_.suspectAfter) {
          state.health = WorkerHealth::kSuspect;
        }
      }
    }
    if (declaredDown) {
      anyNewlyDown = true;
      metrics.workersDeclaredDown.add();
      metrics.workersDown.add(1);
      redirector_->setServerHealth(id, false);
      QLOG(kWarn, "repair") << "worker " << id << " declared DOWN after "
                            << config_.downAfter << " failed probes";
    }
    if (revived) {
      metrics.workersRevived.add();
      metrics.workersDown.add(-1);
      // Re-admit: placement may have changed while it was gone (rebalance,
      // ingest), so re-sync its exports before traffic returns.
      redirector_->refreshExports(id);
      redirector_->setServerHealth(id, true);
      QLOG(kInfo, "repair") << "worker " << id << " recovered after "
                            << config_.upAfter << " clean probes";
    }
  }
  return anyNewlyDown;
}

RepairController::WorkerHealth RepairController::health(
    const std::string& workerId) const {
  std::lock_guard lock(stateMutex_);
  auto it = states_.find(workerId);
  return it == states_.end() ? WorkerHealth::kUp : it->second.health;
}

const char* RepairController::healthName(WorkerHealth h) {
  switch (h) {
    case WorkerHealth::kUp: return "up";
    case WorkerHealth::kSuspect: return "suspect";
    case WorkerHealth::kDown: return "down";
  }
  return "?";
}

std::vector<std::string> RepairController::liveServers() const {
  std::vector<std::string> out;
  for (const std::string& id : redirector_->serverIds()) {
    xrd::DataServerPtr server = redirector_->findServer(id);
    if (!server || !server->isUp()) continue;
    if (health(id) == WorkerHealth::kDown) continue;
    out.push_back(id);
  }
  return out;  // serverIds() is sorted
}

std::map<std::string, std::size_t> RepairController::replicaLoad(
    const std::map<std::int32_t, std::vector<std::string>>& placement,
    const std::vector<std::string>& live) const {
  std::map<std::string, std::size_t> load;
  for (const std::string& id : live) load[id] = 0;
  for (const auto& [chunk, ids] : placement) {
    for (const std::string& id : ids) {
      auto it = load.find(id);
      if (it != load.end()) ++it->second;
    }
  }
  return load;
}

std::vector<std::int32_t> RepairController::underReplicatedChunks() const {
  auto placement = redirector_->placementSnapshot();
  auto live = liveServers();
  int target = std::min<int>(config_.replicationTarget,
                             static_cast<int>(live.size()));
  std::vector<std::int32_t> out;
  for (const auto& [chunk, ids] : placement) {
    int liveReplicas = 0;
    for (const std::string& id : ids) {
      if (std::binary_search(live.begin(), live.end(), id)) ++liveReplicas;
    }
    if (liveReplicas < target) out.push_back(chunk);
  }
  return out;  // placementSnapshot is an ordered map: already sorted
}

Status RepairController::replicateChunk(
    std::int32_t chunkId, const std::vector<std::string>& sourceIds,
    const std::string& destId, util::TracePtr trace) {
  auto& metrics = RepairMetrics::instance();
  if (sourceIds.empty()) {
    return Status::unavailable(
        util::format("no live source replica for chunk %d", chunkId));
  }
  util::ScopedSpan span(trace, "repair",
                       util::format("copy %d -> %s", chunkId,
                                    destId.c_str()));
  util::Stopwatch watch;
  metrics.transfersInflight.add(1);
  util::Backoff backoff(config_.copyBackoff,
                        mixSeed(config_.seed, chunkId, destId));
  Status last = Status::unavailable("no copy attempt made");
  int attempts = std::max(1, config_.copyAttempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) std::this_thread::sleep_for(backoff.next());
    // Rotate over source replicas: a sick source should not doom the copy.
    const std::string& sourceId =
        sourceIds[static_cast<std::size_t>(attempt) % sourceIds.size()];
    xrd::DataServerPtr source = redirector_->findServer(sourceId);
    xrd::DataServerPtr dest = redirector_->findServer(destId);
    if (!dest) {
      last = Status::notFound("copy destination " + destId + " unknown");
      break;
    }
    if (!source) {
      last = Status::unavailable("copy source " + sourceId + " unknown");
      continue;
    }
    auto snapshot = source->read(xrd::makeChunkPath(chunkId));
    if (!snapshot.isOk()) {
      last = snapshot.status();
      continue;
    }
    // Verify before shipping: a corrupted read from a sick source must be
    // retried from another replica, never installed.
    if (auto verified = verifyDumpChecksum(*snapshot); !verified.isOk()) {
      metrics.checksumMismatches.add();
      last = verified;
      continue;
    }
    std::size_t bytes = snapshot->size();
    auto installed =
        dest->write(xrd::makeChunkLoadPath(chunkId), std::move(*snapshot));
    if (!installed.isOk()) {
      last = installed;
      continue;
    }
    // Publish: the redirector sees the new replica atomically; the next
    // locate of this chunk may pick it.
    redirector_->refreshExports(destId);
    metrics.chunksReplicated.add();
    metrics.copyBytes.add(bytes);
    double seconds = watch.elapsedSeconds();
    metrics.copySeconds.observe(seconds);
    metrics.transfersInflight.add(-1);
    span.attr("bytes", static_cast<std::int64_t>(bytes))
        .attr("source", sourceId)
        .attr("attempts", static_cast<std::int64_t>(attempt + 1));
    // Duty-cycle pacing: idle this transfer slot in proportion to the time
    // the copy took, bounding repair's share of the machine.
    if (config_.copyDutyCycle > 0.0 && config_.copyDutyCycle < 1.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          seconds * (1.0 / config_.copyDutyCycle - 1.0)));
    }
    return Status::ok();
  }
  metrics.copyFailures.add();
  metrics.transfersInflight.add(-1);
  span.attr("failed", last.toString());
  return last;
}

Result<int> RepairController::repairOnce() {
  std::lock_guard repairLock(repairMutex_);
  auto& metrics = RepairMetrics::instance();
  auto placement = redirector_->placementSnapshot();
  auto live = liveServers();
  if (live.empty()) {
    return Status::unavailable("no live workers to repair onto");
  }
  int target = std::min<int>(config_.replicationTarget,
                             static_cast<int>(live.size()));
  auto load = replicaLoad(placement, live);

  struct CopyJob {
    std::int32_t chunkId = 0;
    std::vector<std::string> sources;
    std::string dest;
  };
  std::vector<CopyJob> jobs;
  for (const auto& [chunk, ids] : placement) {
    std::vector<std::string> liveReplicas;
    for (const std::string& id : ids) {
      if (std::binary_search(live.begin(), live.end(), id)) {
        liveReplicas.push_back(id);
      }
    }
    if (liveReplicas.empty()) continue;  // nothing to copy from
    int deficit = target - static_cast<int>(liveReplicas.size());
    for (int d = 0; d < deficit; ++d) {
      // Least-loaded live worker not already holding (or receiving) a
      // replica of this chunk; deterministic id tiebreak.
      std::string best;
      std::size_t bestLoad = 0;
      for (const std::string& candidate : live) {
        bool holds =
            std::find(ids.begin(), ids.end(), candidate) != ids.end();
        for (const auto& job : jobs) {
          holds |= job.chunkId == chunk && job.dest == candidate;
        }
        if (holds) continue;
        if (best.empty() || load[candidate] < bestLoad) {
          best = candidate;
          bestLoad = load[candidate];
        }
      }
      if (best.empty()) break;  // not enough distinct workers
      ++load[best];
      jobs.push_back(CopyJob{chunk, liveReplicas, best});
    }
  }
  if (jobs.empty()) return 0;

  util::TracePtr trace =
      util::TraceRegistry::instance().create("repair-run");
  metrics.repairRuns.add();
  QLOG(kInfo, "repair") << "re-replicating " << jobs.size()
                        << " chunk replicas (budget "
                        << config_.transferBudget << ")";
  int copied = 0;
  {
    util::ScopedSpan runSpan(trace, "repair",
                             util::format("repair-run %zu", jobs.size()));
    // The transfer budget IS the pool size: at most `transferBudget` copies
    // in flight, the rest queue — repair cannot starve query slots.
    util::ThreadPool pool(
        static_cast<std::size_t>(std::max(1, config_.transferBudget)));
    std::vector<std::future<Status>> results;
    results.reserve(jobs.size());
    for (const CopyJob& job : jobs) {
      results.push_back(pool.submit([this, job, trace] {
        return replicateChunk(job.chunkId, job.sources, job.dest, trace);
      }));
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      Status status = results[i].get();
      if (status.isOk()) {
        ++copied;
      } else {
        QLOG(kWarn, "repair")
            << "copy of chunk " << jobs[i].chunkId << " to " << jobs[i].dest
            << " failed: " << status.toString();
      }
    }
    runSpan.attr("copied", static_cast<std::int64_t>(copied));
  }
  {
    std::lock_guard lock(stateMutex_);
    lastTrace_ = trace;
  }
  util::TraceRegistry::instance().release(trace->id());
  return copied;
}

Result<int> RepairController::rebalanceOnce(int maxMoves) {
  std::lock_guard repairLock(repairMutex_);
  auto& metrics = RepairMetrics::instance();
  auto placement = redirector_->placementSnapshot();
  auto live = liveServers();
  if (live.size() < 2 || maxMoves <= 0) return 0;
  auto load = replicaLoad(placement, live);

  // Hotness = last-ping queue depth first (the convoy signal), replica
  // count as tiebreak; coldness the reverse.
  auto pressure = [&](const std::string& id) {
    std::size_t queue = 0;
    {
      std::lock_guard lock(stateMutex_);
      auto it = states_.find(id);
      if (it != states_.end()) queue = it->second.queueDepth;
    }
    return std::pair<std::size_t, std::size_t>(queue, load[id]);
  };
  std::string hot = live.front(), cold = live.front();
  for (const std::string& id : live) {
    if (pressure(id) > pressure(hot)) hot = id;
    if (pressure(id) < pressure(cold)) cold = id;
  }
  if (hot == cold || load[hot] <= load[cold] + 1) return 0;  // balanced

  // Chunks the hot worker holds and the cold one does not.
  std::vector<std::int32_t> movable;
  for (const auto& [chunk, ids] : placement) {
    bool onHot = std::find(ids.begin(), ids.end(), hot) != ids.end();
    bool onCold = std::find(ids.begin(), ids.end(), cold) != ids.end();
    if (onHot && !onCold) movable.push_back(chunk);
  }
  int moves = std::min<int>(
      {maxMoves, static_cast<int>(movable.size()),
       static_cast<int>((load[hot] - load[cold]) / 2)});
  if (moves <= 0) return 0;

  util::TracePtr trace =
      util::TraceRegistry::instance().create("rebalance-run");
  int done = 0;
  {
    util::ScopedSpan runSpan(trace, "repair",
                             util::format("rebalance %s -> %s", hot.c_str(),
                                          cold.c_str()));
    for (int i = 0; i < moves; ++i) {
      std::int32_t chunk = movable[static_cast<std::size_t>(i)];
      // Copy-then-drop: the replica count never dips below where it was.
      Status copied = replicateChunk(chunk, {hot}, cold, trace);
      if (!copied.isOk()) {
        QLOG(kWarn, "repair") << "rebalance copy of chunk " << chunk
                              << " failed: " << copied.toString();
        continue;
      }
      xrd::DataServerPtr hotServer = redirector_->findServer(hot);
      if (hotServer) {
        Status dropped =
            hotServer->write(xrd::makeChunkDropPath(chunk), "");
        if (dropped.isOk()) {
          redirector_->refreshExports(hot);
        } else {
          QLOG(kWarn, "repair")
              << "rebalance drop of chunk " << chunk << " on " << hot
              << " failed (over-replicated until repaired): "
              << dropped.toString();
        }
      }
      metrics.rebalanceMoves.add();
      ++done;
    }
    runSpan.attr("moves", static_cast<std::int64_t>(done));
  }
  {
    std::lock_guard lock(stateMutex_);
    lastTrace_ = trace;
  }
  util::TraceRegistry::instance().release(trace->id());
  return done;
}

Status RepairController::ingest(const datagen::PartitionedCatalog& catalog) {
  std::lock_guard repairLock(repairMutex_);
  auto& metrics = RepairMetrics::instance();
  if (catalog.chunks.empty()) return Status::ok();
  auto live = liveServers();
  if (live.empty()) {
    return Status::unavailable("no live workers to ingest onto");
  }
  int target = std::min<int>(config_.replicationTarget,
                             static_cast<int>(live.size()));
  auto load = replicaLoad(redirector_->placementSnapshot(), live);

  std::vector<std::int32_t> newChunks;
  newChunks.reserve(catalog.chunks.size());
  for (const datagen::ChunkData& chunk : catalog.chunks) {
    std::string snapshot = encodeChunkSnapshot(chunk);
    std::vector<std::string> placed;
    for (int r = 0; r < target; ++r) {
      std::string best;
      std::size_t bestLoad = 0;
      for (const std::string& candidate : live) {
        if (std::find(placed.begin(), placed.end(), candidate) !=
            placed.end()) {
          continue;
        }
        if (best.empty() || load[candidate] < bestLoad) {
          best = candidate;
          bestLoad = load[candidate];
        }
      }
      if (best.empty()) break;
      xrd::DataServerPtr dest = redirector_->findServer(best);
      if (!dest) {
        return Status::unavailable("ingest destination " + best + " lost");
      }
      QSERV_RETURN_IF_ERROR(
          dest->write(xrd::makeChunkLoadPath(chunk.chunkId), snapshot));
      redirector_->refreshExports(best);
      placed.push_back(best);
      ++load[best];
    }
    if (placed.empty()) {
      return Status::unavailable(
          util::format("chunk %d could not be placed", chunk.chunkId));
    }
    metrics.chunksIngested.add();
    newChunks.push_back(chunk.chunkId);
  }

  // Publish to the frontend last: index entries first (so objectId lookups
  // resolve the moment the chunks dispatch), then the atomic chunk-set
  // merge — in-flight queries keep their placement snapshot, the next
  // query sees the new chunks.
  if (QservFrontend* frontend = frontend_.load(std::memory_order_acquire)) {
    QSERV_RETURN_IF_ERROR(frontend->secondaryIndex().load(catalog.index));
    frontend->addAvailableChunks(newChunks);
  }
  QLOG(kInfo, "repair") << "ingested " << newChunks.size()
                        << " chunks at replication " << target;
  return Status::ok();
}

Result<std::size_t> RepairController::ingestCsv(
    const std::string& objectsCsv, const std::string& sourcesCsv) {
  std::vector<datagen::ObjectRow> objects;
  for (const auto& line : util::split(objectsCsv, '\n')) {
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto fields = util::split(trimmed, ',');
    if (fields.size() < 3) {
      return Status::invalidArgument(
          "object CSV needs at least objectId,ra,decl: " +
          std::string(trimmed));
    }
    datagen::ObjectRow row;
    row.objectId = std::strtoll(
        std::string(util::trim(fields[0])).c_str(), nullptr, 10);
    row.ra = std::strtod(std::string(util::trim(fields[1])).c_str(), nullptr);
    row.decl =
        std::strtod(std::string(util::trim(fields[2])).c_str(), nullptr);
    if (fields.size() > 3) {
      row.uRadius =
          std::strtod(std::string(util::trim(fields[3])).c_str(), nullptr);
    }
    for (std::size_t f = 0; f < 6 && 4 + f < fields.size(); ++f) {
      row.flux[f] = std::strtod(
          std::string(util::trim(fields[4 + f])).c_str(), nullptr);
    }
    if (fields.size() > 10) {
      row.uFluxSg =
          std::strtod(std::string(util::trim(fields[10])).c_str(), nullptr);
    }
    objects.push_back(row);
  }
  std::vector<datagen::SourceRow> sources;
  for (const auto& line : util::split(sourcesCsv, '\n')) {
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto fields = util::split(trimmed, ',');
    if (fields.size() < 4) {
      return Status::invalidArgument(
          "source CSV needs at least sourceId,objectId,ra,decl: " +
          std::string(trimmed));
    }
    datagen::SourceRow row;
    row.sourceId = std::strtoll(
        std::string(util::trim(fields[0])).c_str(), nullptr, 10);
    row.objectId = std::strtoll(
        std::string(util::trim(fields[1])).c_str(), nullptr, 10);
    row.ra = std::strtod(std::string(util::trim(fields[2])).c_str(), nullptr);
    row.decl =
        std::strtod(std::string(util::trim(fields[3])).c_str(), nullptr);
    if (fields.size() > 4) {
      row.psfFlux =
          std::strtod(std::string(util::trim(fields[4])).c_str(), nullptr);
    }
    if (fields.size() > 5) {
      row.psfFluxErr =
          std::strtod(std::string(util::trim(fields[5])).c_str(), nullptr);
    }
    if (fields.size() > 6) {
      row.taiMidPoint =
          std::strtod(std::string(util::trim(fields[6])).c_str(), nullptr);
    }
    sources.push_back(row);
  }
  if (objects.empty()) {
    return Status::invalidArgument("object CSV holds no data rows");
  }
  sphgeom::Chunker chunker = catalog_.makeChunker();
  QSERV_ASSIGN_OR_RETURN(datagen::PartitionedCatalog partitioned,
                         datagen::partitionCatalog(chunker, objects, sources));
  QSERV_RETURN_IF_ERROR(ingest(partitioned));
  return partitioned.chunks.size();
}

std::vector<RepairController::WorkerStatus> RepairController::status() const {
  auto placement = redirector_->placementSnapshot();
  std::map<std::string, std::size_t> replicaCounts;
  for (const auto& [chunk, ids] : placement) {
    for (const std::string& id : ids) ++replicaCounts[id];
  }
  std::vector<WorkerStatus> out;
  for (const std::string& id : redirector_->serverIds()) {
    WorkerStatus ws;
    ws.id = id;
    ws.chunks = replicaCounts[id];
    {
      std::lock_guard lock(stateMutex_);
      auto it = states_.find(id);
      if (it != states_.end()) {
        ws.health = it->second.health;
        ws.failStreak = it->second.failStreak;
        ws.okStreak = it->second.okStreak;
        ws.queueDepth = it->second.queueDepth;
      }
    }
    out.push_back(std::move(ws));
  }
  return out;
}

std::string RepairController::statusText() const {
  std::string out = util::format(
      "repair controller: %s, target %dx, budget %d\n",
      running() ? "monitoring" : "idle", config_.replicationTarget,
      config_.transferBudget);
  for (const WorkerStatus& ws : status()) {
    out += util::format("  %-8s %-8s chunks=%-6zu queue=%-4zu fail=%d ok=%d\n",
                        ws.id.c_str(), healthName(ws.health), ws.chunks,
                        ws.queueDepth, ws.failStreak, ws.okStreak);
  }
  auto deficit = underReplicatedChunks();
  out += util::format("  under-replicated chunks: %zu\n", deficit.size());
  return out;
}

util::TracePtr RepairController::lastTrace() const {
  std::lock_guard lock(stateMutex_);
  return lastTrace_;
}

}  // namespace qserv::core
