/// \file czar.h
/// \brief The Qserv frontend ("czar" + proxy facade).
///
/// Accepts MySQL-dialect SQL (the role the MySQL Proxy plays in the paper's
/// Fig. 1), analyzes and fragments it into chunk queries, prunes the chunk
/// set (spatial restriction -> chunker cover; objectId predicate ->
/// secondary index; otherwise full sky), dispatches over the xrd fabric,
/// merges results, and runs the final aggregation. Also reports virtual-time
/// chunk tasks so callers can feed the cluster queue simulation — alone (a
/// solo timing is included) or jointly with concurrent queries (Fig 14).
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "qserv/catalog_config.h"
#include "qserv/dispatcher.h"
#include "qserv/query_analysis.h"
#include "qserv/query_profile.h"
#include "qserv/query_rewriter.h"
#include "qserv/secondary_index.h"
#include "simio/queue_sim.h"
#include "sql/database.h"
#include "util/stopwatch.h"
#include "util/trace.h"
#include "xrd/redirector.h"

namespace qserv::core {

struct FrontendConfig {
  CatalogConfig catalog;
  simio::CostParams cost;
  int dispatchParallelism = 16;
  int dispatchMaxAttempts = 3;  ///< per chunk query, across replicas
  util::BackoffPolicy dispatchBackoff;  ///< retry sleep schedule
  /// How chunk queries reach workers: kBatched ships one request per
  /// (query, worker) and streams results back incrementally (§7.6's
  /// dispatch-overhead fix); kPerChunk is the paper's two-transaction pair
  /// per chunk.
  DispatchMode dispatchMode = DispatchMode::kBatched;
  /// Batched mode: unread result frames a worker may buffer per batch
  /// stream before it stalls (backpressure toward the merger).
  int dispatchStreamWindow = 8;
  /// Chunk results buffered between dispatch collection and the pipelined
  /// merger; a slow merger fills this and throttles collection (and, in
  /// batched mode, the workers behind it).
  int mergeQueueDepth = 8;
  /// Per-query wall-clock budget in seconds; <= 0 means unlimited. When the
  /// budget runs out, in-flight chunk attempts stop and the query fails
  /// with DEADLINE_EXCEEDED instead of hanging on a dead replica.
  double queryDeadlineSeconds = 0.0;
  /// Build a QueryProfile for every query and persist its summary into the
  /// metadata DB's QueryStats table. EXPLAIN ANALYZE profiles regardless.
  /// Initial value of the runtime toggle (setProfilingEnabled).
  bool enableProfiling = true;
  /// Queries slower than this (seconds) emit their profile summary as a
  /// structured QLOG line under component "slowquery"; <= 0 disables.
  double slowQuerySeconds = 0.0;
  /// Finished queries retained by processList() (was hard-coded at 32).
  std::size_t processListHistory = 32;
  /// Full QueryProfile objects retained for profileFor().
  std::size_t profileHistory = 64;
  /// QueryStats summary rows retained in the metadata DB. Oldest rows are
  /// evicted past the cap (like processListHistory) so a long-running
  /// frontend does not grow without bound; 0 keeps none.
  std::size_t queryStatsHistory = 1024;
};

class QservFrontend {
 public:
  /// \param availableChunks chunks that actually hold data (the test
  ///        dataset does not cover all of the sky; §6.3 also shrinks this
  ///        set to emulate smaller clusters).
  QservFrontend(FrontendConfig config, xrd::RedirectorPtr redirector,
                std::vector<std::int32_t> availableChunks);

  /// Per-chunk work accounting (for re-mapping onto simulated clusters of
  /// a different size — the paper's 150-node runs).
  struct ChunkAccounting {
    std::int32_t chunkId = 0;
    std::string workerId;
    simio::WorkObservables observables;
  };

  /// Execution record for one user query.
  struct Execution {
    sql::TablePtr result;
    std::size_t chunksDispatched = 0;
    std::uint64_t rowsMerged = 0;
    /// Dispatch strategy actually used and, in batched mode, how many
    /// batch requests were written.
    DispatchMode dispatchMode = DispatchMode::kPerChunk;
    std::size_t dispatchBatches = 0;
    std::vector<ChunkAccounting> accounting;
    /// Scheduler class the czar derived and shipped to workers (frontend-only
    /// queries are interactive: they never touch a worker queue).
    QueryClass queryClass = QueryClass::kInteractive;
    /// Virtual-time tasks (worker index, service seconds, collect seconds)
    /// for the cluster queue simulation.
    std::vector<simio::SimChunkTask> simTasks;
    /// This query simulated alone on an idle cluster.
    simio::SimQueryResult soloTiming;
    double wallSeconds = 0.0;  ///< real elapsed time of this execution
    std::uint64_t queryId = 0;  ///< process-unique id (also the trace id)
    /// Spans from every component this query touched; export with
    /// trace->toChromeJson(). Always set after query() returns OK.
    util::TracePtr trace;
    /// Per-stage resource accounting derived from the trace. Set when
    /// profiling is enabled (FrontendConfig::enableProfiling) or the
    /// statement was EXPLAIN ANALYZE; null for plain EXPLAIN.
    std::shared_ptr<const QueryProfile> profile;
  };

  /// One row of the SHOW PROCESSLIST-style view: an in-flight or recently
  /// finished query.
  struct QueryInfo {
    std::uint64_t id = 0;
    std::string sql;
    /// analyzing | rewriting | dispatching | merging | finalizing | done |
    /// failed: <status>
    std::string state;
    std::size_t chunksTotal = 0;      ///< chunk queries planned
    std::size_t chunksCompleted = 0;  ///< chunk queries finished so far
    double elapsedSeconds = 0.0;      ///< so far (live) or total (finished)
    bool finished = false;
    /// Failure Status string for failed queries; empty while running or on
    /// success (machine-readable companion of the "failed: ..." state).
    std::string failureStatus;
  };

  /// Execute \p sql end to end. `EXPLAIN <select>` returns the plan as a
  /// result table without executing; `EXPLAIN ANALYZE <select>` executes
  /// and returns the per-stage breakdown (Execution::profile is also set).
  util::Result<Execution> query(const std::string& sql);

  /// The retained profile of a finished query, or nullptr (bounded history,
  /// FrontendConfig::profileHistory; summaries persist in QueryStats).
  std::shared_ptr<const QueryProfile> profileFor(std::uint64_t id) const;

  /// Runtime toggle for per-query profiling (QueryStats rows, retained
  /// profiles, slow-query log). EXPLAIN ANALYZE still profiles when off.
  /// Atomic: may be flipped while other threads are inside query().
  void setProfilingEnabled(bool on) {
    profilingEnabled_.store(on, std::memory_order_relaxed);
  }
  bool profilingEnabled() const {
    return profilingEnabled_.load(std::memory_order_relaxed);
  }

  /// Live in-flight queries (dispatch order) followed by the most recent
  /// finished ones, newest first (bounded history).
  std::vector<QueryInfo> processList() const;

  /// The chunk set \p sql would be dispatched to, without executing
  /// (analysis/pruning introspection for tests and benches).
  util::Result<std::vector<std::int32_t>> chunksFor(const std::string& sql);

  SecondaryIndex& secondaryIndex() { return index_; }
  sql::Database& metadata() {
    flushQueryStats();  // direct readers see current QueryStats rows
    return metadata_;
  }
  const CatalogConfig& catalog() const { return config_.catalog; }
  const simio::CostParams& costParams() const { return config_.cost; }

  /// Restrict dispatch to \p chunks (the paper's §6.3 cluster-size
  /// emulation: "the frontend was configured to only dispatch queries for
  /// partitions belonging to the desired set of cluster nodes"). Thread-safe
  /// against concurrent query(): the chunk set is an immutable snapshot
  /// swapped atomically, so each query resolves against exactly one
  /// placement version.
  void setAvailableChunks(std::vector<std::int32_t> chunks);

  /// Merge newly ingested chunks into the dispatchable set (live placement:
  /// in-flight queries keep the snapshot they already resolved).
  void addAvailableChunks(std::span<const std::int32_t> chunks);

  std::vector<std::int32_t> availableChunks() const;

 private:
  /// Live bookkeeping for one executing query (backs processList()).
  struct LiveQuery {
    std::uint64_t id = 0;
    std::string sql;
    util::Stopwatch watch;
    std::atomic<std::size_t> chunksTotal{0};
    std::atomic<std::size_t> chunksCompleted{0};
    std::mutex stateMutex;
    std::string state = "queued";

    void setState(const std::string& s) {
      std::lock_guard lock(stateMutex);
      state = s;
    }
  };

  std::vector<std::int32_t> resolveChunks(const AnalyzedQuery& analyzed);
  std::shared_ptr<const std::vector<std::int32_t>> availableChunksSnapshot()
      const;
  int workerIndexOf(const std::string& workerId);

  /// EXPLAIN's one-line description of how \p specs would be dispatched
  /// (mode; in batched mode the batch count and chunks-per-batch shape).
  std::string describeDispatch(const std::vector<ChunkQuerySpec>& specs);

  /// Execute a SELECT end to end with trace/processList bookkeeping and,
  /// when enabled (or \p forceProfile), profile building + persistence.
  util::Result<Execution> runUserQuery(const std::string& sql,
                                       bool forceProfile);
  /// Plan-only EXPLAIN: analyze, prune, rewrite — never dispatch.
  util::Result<Execution> explainOnly(const sql::SelectStmt& stmt);
  /// Retain \p profile, append its summary row to the QueryStats buffer
  /// (bounded by queryStatsHistory), and emit the slow-query log line when
  /// over threshold. The registered table snapshot is rebuilt lazily by
  /// flushQueryStats() — a per-query rebuild would cost O(history) on the
  /// hot path.
  void recordProfile(const std::shared_ptr<const QueryProfile>& profile);
  /// Publish pending statsRows_ as a fresh QueryStats snapshot table (no-op
  /// when nothing changed since the last flush). Called before any frontend
  /// read of the metadata DB so readers always see current rows.
  void flushQueryStats();

  /// The body of query(); \p live and \p trace are registered by query().
  util::Result<Execution> runQuery(const std::string& sql, LiveQuery& live,
                                   const util::TracePtr& trace);
  std::shared_ptr<LiveQuery> beginQuery(std::uint64_t id,
                                        const std::string& sql);
  void endQuery(const std::shared_ptr<LiveQuery>& live,
                const util::Status& status);

  FrontendConfig config_;
  xrd::RedirectorPtr redirector_;
  /// Immutable dispatchable-chunk snapshot; the pointer (not the vector) is
  /// swapped under availableMutex_ on placement changes.
  mutable std::mutex availableMutex_;
  std::shared_ptr<const std::vector<std::int32_t>> availableChunks_;
  sql::Database metadata_;
  SecondaryIndex index_;
  sphgeom::Chunker chunker_;
  Dispatcher dispatcher_;
  std::atomic<std::uint64_t> nextQueryId_{0};
  /// Runtime profiling toggle, seeded from config_.enableProfiling.
  std::atomic<bool> profilingEnabled_;

  std::mutex workerIndexMutex_;
  std::map<std::string, int> workerIndexes_;

  mutable std::mutex processMutex_;
  std::map<std::uint64_t, std::shared_ptr<LiveQuery>> inflight_;
  std::deque<QueryInfo> recent_;  ///< finished queries, newest first
  /// Retained profiles, newest first (bounded by profileHistory).
  std::deque<std::shared_ptr<const QueryProfile>> profiles_;

  /// QueryStats rows, oldest first (bounded by queryStatsHistory). The
  /// registered "QueryStats" table is never mutated in place — database.h's
  /// contents-are-append-only invariant — so concurrent frontend SELECTs
  /// can scan it freely; flushQueryStats() rebuilds a fresh snapshot from
  /// these rows and atomically swaps it in (Database::replaceTable), but
  /// only when a metadata read needs it (statsDirty_), keeping the
  /// per-query cost of recordProfile() O(1).
  std::mutex statsMutex_;
  std::vector<std::vector<sql::Value>> statsRows_;
  bool statsDirty_ = false;
};

}  // namespace qserv::core
