/// \file czar.h
/// \brief The Qserv frontend ("czar" + proxy facade).
///
/// Accepts MySQL-dialect SQL (the role the MySQL Proxy plays in the paper's
/// Fig. 1), analyzes and fragments it into chunk queries, prunes the chunk
/// set (spatial restriction -> chunker cover; objectId predicate ->
/// secondary index; otherwise full sky), dispatches over the xrd fabric,
/// merges results, and runs the final aggregation. Also reports virtual-time
/// chunk tasks so callers can feed the cluster queue simulation — alone (a
/// solo timing is included) or jointly with concurrent queries (Fig 14).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "qserv/catalog_config.h"
#include "qserv/dispatcher.h"
#include "qserv/query_analysis.h"
#include "qserv/query_rewriter.h"
#include "qserv/secondary_index.h"
#include "simio/queue_sim.h"
#include "sql/database.h"
#include "xrd/redirector.h"

namespace qserv::core {

struct FrontendConfig {
  CatalogConfig catalog;
  simio::CostParams cost;
  int dispatchParallelism = 16;
};

class QservFrontend {
 public:
  /// \param availableChunks chunks that actually hold data (the test
  ///        dataset does not cover all of the sky; §6.3 also shrinks this
  ///        set to emulate smaller clusters).
  QservFrontend(FrontendConfig config, xrd::RedirectorPtr redirector,
                std::vector<std::int32_t> availableChunks);

  /// Per-chunk work accounting (for re-mapping onto simulated clusters of
  /// a different size — the paper's 150-node runs).
  struct ChunkAccounting {
    std::int32_t chunkId = 0;
    std::string workerId;
    simio::WorkObservables observables;
  };

  /// Execution record for one user query.
  struct Execution {
    sql::TablePtr result;
    std::size_t chunksDispatched = 0;
    std::uint64_t rowsMerged = 0;
    std::vector<ChunkAccounting> accounting;
    /// Virtual-time tasks (worker index, service seconds, collect seconds)
    /// for the cluster queue simulation.
    std::vector<simio::SimChunkTask> simTasks;
    /// This query simulated alone on an idle cluster.
    simio::SimQueryResult soloTiming;
    double wallSeconds = 0.0;  ///< real elapsed time of this execution
  };

  /// Execute \p sql end to end.
  util::Result<Execution> query(const std::string& sql);

  /// The chunk set \p sql would be dispatched to, without executing
  /// (analysis/pruning introspection for tests and benches).
  util::Result<std::vector<std::int32_t>> chunksFor(const std::string& sql);

  SecondaryIndex& secondaryIndex() { return index_; }
  sql::Database& metadata() { return metadata_; }
  const CatalogConfig& catalog() const { return config_.catalog; }
  const simio::CostParams& costParams() const { return config_.cost; }

  /// Restrict dispatch to \p chunks (the paper's §6.3 cluster-size
  /// emulation: "the frontend was configured to only dispatch queries for
  /// partitions belonging to the desired set of cluster nodes").
  void setAvailableChunks(std::vector<std::int32_t> chunks);
  const std::vector<std::int32_t>& availableChunks() const {
    return availableChunks_;
  }

 private:
  std::vector<std::int32_t> resolveChunks(const AnalyzedQuery& analyzed);
  int workerIndexOf(const std::string& workerId);

  FrontendConfig config_;
  xrd::RedirectorPtr redirector_;
  std::vector<std::int32_t> availableChunks_;
  sql::Database metadata_;
  SecondaryIndex index_;
  sphgeom::Chunker chunker_;
  Dispatcher dispatcher_;
  std::atomic<std::uint64_t> nextQueryId_{0};

  std::mutex workerIndexMutex_;
  std::map<std::string, int> workerIndexes_;
};

}  // namespace qserv::core
