/// \file repair_controller.h
/// \brief The self-healing replication control plane (ROADMAP item 4).
///
/// PR 3 gave the cluster reactive failure handling — retries, replica
/// exclude sets, circuit breakers — but replication itself stayed static
/// config: when a worker died the cluster served on with permanently reduced
/// redundancy. This controller closes the loop from detection to healing:
///
///  - Health monitor: periodic /ping probes over the xrd layer drive a
///    per-worker up/suspect/down state machine with hysteresis (suspectAfter
///    consecutive failures -> suspect, downAfter -> down, upAfter successes
///    -> up). Probe outcomes also train the redirector's per-worker circuit
///    breakers (through their own half-open gating), so the query path and
///    the control plane share one view of worker health instead of keeping
///    two.
///  - Re-replication: when a worker is declared down it is quarantined in
///    the redirector and every chunk whose live replica count fell below the
///    target is copied worker-to-worker (/chunk read -> MD5 verify ->
///    /chunkload write), throttled by a concurrent-transfer budget so repair
///    traffic does not starve queries.
///  - Rebalance: replicas migrate off hot workers (queue-depth from pings,
///    chunk-count tiebreak) copy-then-drop, so placement counts never dip.
///  - Live placement + ingest: placement changes (replica installed, worker
///    evicted, chunk ingested from CSV -> partition -> load) publish
///    atomically into the redirector's locate path and the frontend's
///    available-chunk snapshot; in-flight queries keep the placement they
///    resolved, new queries see the new one — no restarts.
///
/// Everything is observable through repair.* metrics and per-copy trace
/// spans (lastTrace()).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "datagen/partitioner.h"
#include "qserv/catalog_config.h"
#include "util/backoff.h"
#include "util/trace.h"
#include "xrd/redirector.h"

namespace qserv::core {

class QservFrontend;

struct RepairConfig {
  /// Monitor-thread probe cadence (start()). probeOnce() ignores it.
  std::chrono::milliseconds probeInterval{50};
  int suspectAfter = 1;  ///< consecutive probe failures -> suspect
  int downAfter = 3;     ///< consecutive probe failures -> down (quarantine)
  int upAfter = 2;       ///< consecutive successes -> up again (hysteresis)
  /// Desired live replicas per chunk (capped by the live worker count).
  int replicationTarget = 2;
  /// Concurrent chunk transfers during repair/rebalance/ingest. Low values
  /// keep repair traffic from starving queries (bench_repair's gate).
  int transferBudget = 2;
  /// Fraction of wall time each transfer slot may spend copying (0 < d <=
  /// 1; 1 disables pacing). After every copy the slot idles proportionally,
  /// so background repair cannot monopolize CPU or disk against the query
  /// path even on a loaded (or single-core) machine.
  double copyDutyCycle = 0.33;
  /// Re-replicate automatically when the monitor declares a worker down.
  bool autoRepair = true;
  int copyAttempts = 3;  ///< per chunk copy, rotating over source replicas
  util::BackoffPolicy copyBackoff;  ///< sleep schedule between copy retries
  std::uint64_t seed = 0x9e37ULL;   ///< decorrelates copy-retry jitter
};

class RepairController {
 public:
  enum class WorkerHealth { kUp, kSuspect, kDown };

  RepairController(RepairConfig config, xrd::RedirectorPtr redirector,
                   CatalogConfig catalog);
  ~RepairController();

  RepairController(const RepairController&) = delete;
  RepairController& operator=(const RepairController&) = delete;

  /// Wire the frontend that receives live placement updates on ingest
  /// (available-chunk merges + secondary-index loads). Optional.
  void attachFrontend(QservFrontend* frontend) { frontend_ = frontend; }

  /// Start the background monitor thread (probe every probeInterval,
  /// auto-repair on down transitions). Idempotent.
  void start();
  /// Stop and join the monitor thread. Idempotent; also run by ~.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// One synchronous probe round over every registered worker: pings each,
  /// advances the health state machine, trains the redirector breakers, and
  /// (de)quarantines on transitions. Returns true when any worker was newly
  /// declared down this round. Deterministic building block for tests; the
  /// monitor thread calls exactly this.
  bool probeOnce();

  /// Enumerate chunks whose live replica count is below target and copy
  /// them to healthy workers, throttled by the transfer budget. Returns the
  /// number of chunk replicas successfully created.
  util::Result<int> repairOnce();

  /// Migrate up to \p maxMoves chunk replicas from the most loaded live
  /// worker to the least loaded (copy to the destination, then drop the
  /// source replica — counts never dip). Returns moves performed.
  util::Result<int> rebalanceOnce(int maxMoves = 4);

  /// Copy one chunk onto \p destId from any of \p sourceIds (MD5-verified,
  /// with backoff retries rotating over sources). Publicly exposed for
  /// targeted tests; repairOnce()/rebalanceOnce() build on it.
  util::Status replicateChunk(std::int32_t chunkId,
                              const std::vector<std::string>& sourceIds,
                              const std::string& destId,
                              util::TracePtr trace = nullptr);

  /// Ingest an already partitioned catalog while serving: install every
  /// chunk on replicationTarget live workers, publish placement to the
  /// redirector, then (if a frontend is attached) load the secondary-index
  /// entries and merge the new chunk ids into the dispatchable set.
  util::Status ingest(const datagen::PartitionedCatalog& catalog);

  /// CSV -> partition -> load, concurrent with query serving. Object rows:
  /// "objectId,ra,decl[,uRadius,flux0..flux5,uFluxSg]"; source rows:
  /// "sourceId,objectId,ra,decl[,psfFlux,psfFluxErr,taiMidPoint]". Lines
  /// starting with '#' are skipped. Returns the number of chunks ingested.
  util::Result<std::size_t> ingestCsv(const std::string& objectsCsv,
                                      const std::string& sourcesCsv = "");

  WorkerHealth health(const std::string& workerId) const;
  static const char* healthName(WorkerHealth h);

  /// Chunks whose live replica count is below the effective target, sorted.
  std::vector<std::int32_t> underReplicatedChunks() const;

  struct WorkerStatus {
    std::string id;
    WorkerHealth health = WorkerHealth::kUp;
    int failStreak = 0;
    int okStreak = 0;
    std::size_t queueDepth = 0;  ///< from the last successful ping
    std::size_t chunks = 0;      ///< replicas placed per the redirector
  };
  /// Per-worker health/load view, sorted by worker id.
  std::vector<WorkerStatus> status() const;

  /// Human-readable controller status (the shell's \repair command).
  std::string statusText() const;

  /// The trace of the most recent repair/rebalance run (per-copy spans),
  /// or nullptr before the first run.
  util::TracePtr lastTrace() const;

  const RepairConfig& config() const { return config_; }

 private:
  struct WorkerState {
    WorkerHealth health = WorkerHealth::kUp;
    int failStreak = 0;
    int okStreak = 0;
    std::size_t queueDepth = 0;
  };

  void monitorLoop();
  /// Live = health not kDown and the server reports isUp(). Sorted ids.
  std::vector<std::string> liveServers() const;
  /// Replica counts per live server (servers with zero replicas included).
  std::map<std::string, std::size_t> replicaLoad(
      const std::map<std::int32_t, std::vector<std::string>>& placement,
      const std::vector<std::string>& live) const;

  const RepairConfig config_;
  xrd::RedirectorPtr redirector_;
  const CatalogConfig catalog_;
  std::atomic<QservFrontend*> frontend_{nullptr};

  mutable std::mutex stateMutex_;  ///< guards states_ and lastTrace_
  std::map<std::string, WorkerState> states_;
  util::TracePtr lastTrace_;

  /// Serializes repair/rebalance/ingest runs (the monitor thread and test
  /// callers may race).
  std::mutex repairMutex_;

  std::atomic<bool> running_{false};
  std::mutex monitorMutex_;
  std::condition_variable monitorCv_;
  bool stopRequested_ = false;
  std::thread monitor_;
};

}  // namespace qserv::core
