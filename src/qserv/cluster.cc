#include "qserv/cluster.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace qserv::core {

using util::Result;
using util::Status;

Result<datagen::PartitionedCatalog> buildSkyCatalog(
    const CatalogConfig& catalog, const SkyDataOptions& options) {
  datagen::BasePatchOptions patchOpts = options.basePatch;
  patchOpts.objectCount = options.basePatchObjects;
  datagen::BasePatchGenerator gen(patchOpts);
  std::vector<datagen::ObjectRow> baseObjects = gen.objects();
  std::vector<datagen::SourceRow> baseSources;
  if (options.withSources) baseSources = gen.sourcesFor(baseObjects);

  datagen::Duplicator dup(options.duplicator);
  auto copies = dup.copiesIntersecting(options.region);

  std::vector<datagen::ObjectRow> objects;
  std::vector<datagen::SourceRow> sources;
  objects.reserve(copies.size() * baseObjects.size());
  sources.reserve(copies.size() * baseSources.size());
  const auto baseObjectCount = static_cast<std::int64_t>(baseObjects.size());
  const auto baseSourceCount = static_cast<std::int64_t>(baseSources.size());
  const sphgeom::SphericalBox sourceRegion =
      options.sourceRegion.value_or(options.region);
  for (const auto& copy : copies) {
    std::int64_t objOffset = dup.idOffset(copy, baseObjectCount);
    std::int64_t srcOffset = dup.idOffset(copy, baseSourceCount);
    for (const auto& base : baseObjects) {
      auto p = dup.transform(copy, base.ra, base.decl);
      if (p.lat > 90.0) continue;  // top-band spill
      datagen::ObjectRow row = base;
      row.objectId = base.objectId + objOffset;
      row.ra = p.lon;
      row.decl = p.lat;
      objects.push_back(row);
    }
    if (!dup.copyBox(copy).intersects(sourceRegion)) continue;
    for (const auto& base : baseSources) {
      auto p = dup.transform(copy, base.ra, base.decl);
      if (p.lat > 90.0) continue;
      datagen::SourceRow row = base;
      row.sourceId = base.sourceId + srcOffset;
      row.objectId = base.objectId + objOffset;
      row.ra = p.lon;
      row.decl = p.lat;
      sources.push_back(row);
    }
  }

  sphgeom::Chunker chunker = catalog.makeChunker();
  return datagen::partitionCatalog(chunker, objects, sources);
}

FrontendPool::FrontendPool(const FrontendConfig& config,
                           xrd::RedirectorPtr redirector,
                           std::vector<std::int32_t> availableChunks,
                           int numFrontends) {
  int n = std::max(1, numFrontends);
  frontends_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    frontends_.push_back(std::make_unique<QservFrontend>(config, redirector,
                                                         availableChunks));
    routed_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

util::Status FrontendPool::loadIndex(
    std::span<const datagen::SecondaryIndexEntry> entries) {
  for (auto& f : frontends_) {
    QSERV_RETURN_IF_ERROR(f->secondaryIndex().load(entries));
  }
  return util::Status::ok();
}

util::Result<QservFrontend::Execution> FrontendPool::query(
    const std::string& sql) {
  std::size_t i = static_cast<std::size_t>(
      next_.fetch_add(1, std::memory_order_relaxed) % frontends_.size());
  routed_[i]->fetch_add(1, std::memory_order_relaxed);
  return frontends_[i]->query(sql);
}

std::vector<std::uint64_t> FrontendPool::routedCounts() const {
  std::vector<std::uint64_t> out;
  out.reserve(routed_.size());
  for (const auto& r : routed_) out.push_back(r->load());
  return out;
}

MiniCluster::~MiniCluster() {
  // Stop the control plane before tearing workers down: a monitor or repair
  // thread must not probe/copy against half-destroyed workers.
  if (repair_) repair_->stop();
  for (auto& w : workers_) {
    if (w) w->shutdown();
  }
}

Result<std::unique_ptr<MiniCluster>> MiniCluster::create(
    ClusterOptions options, const datagen::PartitionedCatalog& catalog) {
  if (options.numWorkers < 1) {
    return Status::invalidArgument("cluster needs at least one worker");
  }
  if (options.replication < 1 ||
      options.replication > options.numWorkers) {
    return Status::invalidArgument("replication must be in [1, numWorkers]");
  }
  auto cluster = std::unique_ptr<MiniCluster>(new MiniCluster());
  cluster->options_ = options;
  const int n = options.numWorkers;

  cluster->databases_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    cluster->databases_.push_back(
        std::make_shared<sql::Database>(util::format("worker%d", w)));
  }

  // Round-robin placement in chunkId order with `replication` copies.
  std::vector<std::vector<std::int32_t>> exported(static_cast<std::size_t>(n));
  cluster->primaryChunks_.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < catalog.chunks.size(); ++i) {
    const auto& chunk = catalog.chunks[i];
    cluster->chunkIds_.push_back(chunk.chunkId);
    for (int r = 0; r < options.replication; ++r) {
      auto w = static_cast<std::size_t>((i + static_cast<std::size_t>(r)) %
                                        static_cast<std::size_t>(n));
      QSERV_RETURN_IF_ERROR(
          datagen::loadChunkIntoDatabase(*cluster->databases_[w], chunk));
      // Index the subChunkId column too: on-the-fly subchunk builds probe
      // it instead of scanning the chunk.
      QSERV_RETURN_IF_ERROR(cluster->databases_[w]->createIndex(
          chunk.objects->name(), "subChunkId"));
      exported[w].push_back(chunk.chunkId);
      if (r == 0) cluster->primaryChunks_[w].push_back(chunk.chunkId);
    }
  }

  cluster->redirector_ = std::make_shared<xrd::Redirector>(options.breaker);
  for (int w = 0; w < n; ++w) {
    auto worker = std::make_shared<Worker>(
        util::format("w%d", w), cluster->databases_[static_cast<std::size_t>(w)],
        cluster->options_.frontend.catalog,
        exported[static_cast<std::size_t>(w)], options.worker);
    // Optionally decorate the worker with a fault injector (per-worker plan
    // overrides the cluster-wide one; an empty plan leaves the worker bare).
    std::shared_ptr<xrd::OfsPlugin> plugin = worker;
    std::shared_ptr<xrd::FaultyOfsPlugin> injector;
    const xrd::FaultPlan* plan = &options.faults;
    if (auto it = options.workerFaults.find(w);
        it != options.workerFaults.end()) {
      plan = &it->second;
    }
    if (!plan->empty()) {
      injector =
          std::make_shared<xrd::FaultyOfsPlugin>(worker, *plan, worker->id());
      plugin = injector;
    }
    auto server = std::make_shared<xrd::DataServer>(worker->id(), plugin);
    cluster->redirector_->registerServer(server);
    cluster->workers_.push_back(std::move(worker));
    cluster->injectors_.push_back(std::move(injector));
    cluster->servers_.push_back(std::move(server));
  }

  cluster->frontend_ = std::make_unique<QservFrontend>(
      cluster->options_.frontend, cluster->redirector_, cluster->chunkIds_);
  QSERV_RETURN_IF_ERROR(
      cluster->frontend_->secondaryIndex().load(catalog.index));
  cluster->repair_ = std::make_unique<RepairController>(
      cluster->options_.repair, cluster->redirector_,
      cluster->options_.frontend.catalog);
  cluster->repair_->attachFrontend(cluster->frontend_.get());
  return cluster;
}

}  // namespace qserv::core
