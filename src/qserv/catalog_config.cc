#include "qserv/catalog_config.h"

#include "datagen/schemas.h"
#include "util/strings.h"

namespace qserv::core {

const PartitionedTable* CatalogConfig::findTable(
    const std::string& name) const {
  for (const auto& t : tables) {
    if (util::iequals(t.name, name)) return &t;
  }
  return nullptr;
}

CatalogConfig CatalogConfig::lsst(int numStripes, int numSubStripes,
                                  double overlapDeg) {
  CatalogConfig cfg;
  cfg.numStripes = numStripes;
  cfg.numSubStripesPerStripe = numSubStripes;
  cfg.overlapDeg = overlapDeg;
  cfg.tables.push_back(PartitionedTable{
      "Object", "ra_PS", "decl_PS", "objectId", datagen::kObjectRowBytes,
      /*hasOverlap=*/true});
  cfg.tables.push_back(PartitionedTable{
      "Source", "ra", "decl", "objectId", datagen::kSourceRowBytes,
      /*hasOverlap=*/false});
  return cfg;
}

}  // namespace qserv::core
