#include "qserv/dispatcher.h"

#include "qserv/observables_codec.h"
#include "util/logging.h"
#include "util/md5.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace qserv::core {

using util::Result;
using util::Status;

namespace {
struct DispatchMetrics {
  util::Counter& chunksOk;
  util::Counter& chunksFailed;
  util::Counter& retries;
  util::Histogram& chunkSeconds;

  static DispatchMetrics& instance() {
    auto& reg = util::MetricsRegistry::instance();
    static DispatchMetrics* m = new DispatchMetrics{
        reg.counter("dispatch.chunks_ok"),
        reg.counter("dispatch.chunks_failed"),
        reg.counter("dispatch.retries"),
        reg.histogram("dispatch.chunk_seconds"),
    };
    return *m;
  }
};
}  // namespace

Dispatcher::Dispatcher(xrd::RedirectorPtr redirector, int parallelism,
                       int maxAttempts)
    : redirector_(std::move(redirector)),
      parallelism_(std::max(1, parallelism)),
      maxAttempts_(std::max(1, maxAttempts)) {}

Result<ChunkResult> Dispatcher::runOne(const ChunkQuerySpec& spec,
                                       const util::TracePtr& trace) {
  auto& metrics = DispatchMetrics::instance();
  util::Stopwatch watch;
  util::ScopedSpan span(trace, "dispatcher",
                        util::format("chunk %d", spec.chunkId));
  xrd::XrdClient client(redirector_);
  // The payload carries the trace id as a header comment so the worker —
  // which only ever sees the payload — can attach its spans to this query.
  std::string payload = trace ? util::traceHeaderLine(trace->id()) + spec.text
                              : spec.text;
  std::string hash = util::Md5::hex(payload);
  Status last = Status::internal("no attempt made");
  for (int attempt = 0; attempt < maxAttempts_; ++attempt) {
    if (attempt > 0) metrics.retries.add();
    Result<std::string> workerId = Status::internal("unreached");
    {
      util::ScopedSpan xrdSpan(trace, "xrd",
                               util::format("write /query2/%d", spec.chunkId));
      workerId = client.writeQuery(spec.chunkId, payload);
    }
    if (!workerId.isOk()) {
      last = workerId.status();
      if (last.code() == util::ErrorCode::kUnavailable) continue;
      metrics.chunksFailed.add();
      return last;  // non-transient: bad path, chunk unknown, ...
    }
    Result<std::string> dump = Status::internal("unreached");
    {
      util::ScopedSpan xrdSpan(
          trace, "xrd",
          util::format("read /result/%s", hash.substr(0, 8).c_str()));
      xrdSpan.attr("worker", *workerId);
      dump = client.readResult(*workerId, hash);
    }
    if (!dump.isOk()) {
      last = dump.status();
      QLOG(kWarn, "dispatch")
          << "chunk " << spec.chunkId << " on " << *workerId
          << " failed (attempt " << attempt + 1 << "): " << last.toString();
      if (last.code() == util::ErrorCode::kUnavailable) continue;
      metrics.chunksFailed.add();
      return last;
    }
    ChunkResult out;
    out.chunkId = spec.chunkId;
    out.workerId = std::move(*workerId);
    out.hash = std::move(hash);
    if (auto obs = decodeObservables(*dump)) out.observables = *obs;
    out.dump = std::move(*dump);
    span.attr("worker", out.workerId)
        .attr("attempts", static_cast<std::int64_t>(attempt + 1))
        .attr("dumpBytes", static_cast<std::int64_t>(out.dump.size()));
    metrics.chunksOk.add();
    metrics.chunkSeconds.observe(watch.elapsedSeconds());
    return out;
  }
  metrics.chunksFailed.add();
  span.attr("attempts", static_cast<std::int64_t>(maxAttempts_))
      .attr("error", last.toString());
  return last;
}

Result<std::vector<ChunkResult>> Dispatcher::run(
    const std::vector<ChunkQuerySpec>& specs, const util::TracePtr& trace,
    std::atomic<std::size_t>* completed) {
  util::ThreadPool pool(static_cast<std::size_t>(parallelism_));
  std::vector<std::future<Result<ChunkResult>>> futures;
  futures.reserve(specs.size());
  for (const auto& spec : specs) {
    futures.push_back(pool.submit([this, &spec, &trace, completed] {
      auto r = runOne(spec, trace);
      if (completed != nullptr) {
        completed->fetch_add(1, std::memory_order_relaxed);
      }
      return r;
    }));
  }
  std::vector<ChunkResult> out;
  out.reserve(specs.size());
  Status firstError = Status::ok();
  for (auto& f : futures) {
    auto r = f.get();
    if (!r.isOk()) {
      if (firstError.isOk()) firstError = r.status();
      continue;
    }
    out.push_back(std::move(r).value());
  }
  if (!firstError.isOk()) return firstError;
  return out;
}

}  // namespace qserv::core
