#include "qserv/dispatcher.h"

#include "qserv/observables_codec.h"
#include "util/logging.h"
#include "util/md5.h"
#include "util/strings.h"

namespace qserv::core {

using util::Result;
using util::Status;

Dispatcher::Dispatcher(xrd::RedirectorPtr redirector, int parallelism,
                       int maxAttempts)
    : redirector_(std::move(redirector)),
      parallelism_(std::max(1, parallelism)),
      maxAttempts_(std::max(1, maxAttempts)) {}

Result<ChunkResult> Dispatcher::runOne(const ChunkQuerySpec& spec) {
  xrd::XrdClient client(redirector_);
  std::string hash = util::Md5::hex(spec.text);
  Status last = Status::internal("no attempt made");
  for (int attempt = 0; attempt < maxAttempts_; ++attempt) {
    auto workerId = client.writeQuery(spec.chunkId, spec.text);
    if (!workerId.isOk()) {
      last = workerId.status();
      if (last.code() == util::ErrorCode::kUnavailable) continue;
      return last;  // non-transient: bad path, chunk unknown, ...
    }
    auto dump = client.readResult(*workerId, hash);
    if (!dump.isOk()) {
      last = dump.status();
      QLOG(kWarn, "dispatch")
          << "chunk " << spec.chunkId << " on " << *workerId
          << " failed (attempt " << attempt + 1 << "): " << last.toString();
      if (last.code() == util::ErrorCode::kUnavailable) continue;
      return last;
    }
    ChunkResult out;
    out.chunkId = spec.chunkId;
    out.workerId = std::move(*workerId);
    out.hash = std::move(hash);
    if (auto obs = decodeObservables(*dump)) out.observables = *obs;
    out.dump = std::move(*dump);
    return out;
  }
  return last;
}

Result<std::vector<ChunkResult>> Dispatcher::run(
    const std::vector<ChunkQuerySpec>& specs) {
  util::ThreadPool pool(static_cast<std::size_t>(parallelism_));
  std::vector<std::future<Result<ChunkResult>>> futures;
  futures.reserve(specs.size());
  for (const auto& spec : specs) {
    futures.push_back(pool.submit([this, &spec] { return runOne(spec); }));
  }
  std::vector<ChunkResult> out;
  out.reserve(specs.size());
  Status firstError = Status::ok();
  for (auto& f : futures) {
    auto r = f.get();
    if (!r.isOk()) {
      if (firstError.isOk()) firstError = r.status();
      continue;
    }
    out.push_back(std::move(r).value());
  }
  if (!firstError.isOk()) return firstError;
  return out;
}

}  // namespace qserv::core
