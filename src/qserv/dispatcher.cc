#include "qserv/dispatcher.h"

#include <algorithm>

#include "qserv/dump_integrity.h"
#include "qserv/observables_codec.h"
#include "util/logging.h"
#include "util/md5.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace qserv::core {

using util::Result;
using util::Status;

namespace {
struct DispatchMetrics {
  util::Counter& chunksOk;
  util::Counter& chunksFailed;
  util::Counter& chunksCancelled;
  util::Counter& retries;
  util::Counter& replicaExclusions;
  util::Counter& checksumMismatches;
  util::Counter& deadlineExceeded;
  util::Histogram& chunkSeconds;
  util::Histogram& backoffSeconds;

  static DispatchMetrics& instance() {
    auto& reg = util::MetricsRegistry::instance();
    static DispatchMetrics* m = new DispatchMetrics{
        reg.counter("dispatch.chunks_ok"),
        reg.counter("dispatch.chunks_failed"),
        reg.counter("dispatch.chunks_cancelled"),
        reg.counter("dispatch.retries"),
        reg.counter("dispatch.replica_exclusions"),
        reg.counter("dispatch.checksum_mismatches"),
        reg.counter("dispatch.deadline_exceeded"),
        reg.histogram("dispatch.chunk_seconds"),
        reg.histogram("dispatch.backoff_seconds"),
    };
    return *m;
  }
};

/// Is a failed attempt worth retrying on another replica?
bool isRetryable(const Status& s) {
  return s.code() == util::ErrorCode::kUnavailable ||
         s.code() == util::ErrorCode::kDataLoss;
}
}  // namespace

Dispatcher::Dispatcher(xrd::RedirectorPtr redirector, DispatcherConfig config)
    : redirector_(std::move(redirector)), config_(config) {
  config_.parallelism = std::max(1, config_.parallelism);
  config_.maxAttempts = std::max(1, config_.maxAttempts);
}

Dispatcher::Dispatcher(xrd::RedirectorPtr redirector, int parallelism,
                       int maxAttempts)
    : Dispatcher(std::move(redirector),
                 DispatcherConfig{parallelism, maxAttempts,
                                  util::BackoffPolicy{}, 0x5eedULL, false}) {}

Result<ChunkResult> Dispatcher::runOne(const ChunkQuerySpec& spec,
                                       const util::TracePtr& trace,
                                       const DispatchOptions& options,
                                       int& attemptsOut) {
  auto& metrics = DispatchMetrics::instance();
  util::Stopwatch watch;
  util::ScopedSpan span(trace, "dispatcher",
                        util::format("chunk %d", spec.chunkId));
  xrd::XrdClient client(redirector_);
  // The payload carries the trace id as a header comment so the worker —
  // which only ever sees the payload — can attach its spans to this query.
  std::string payload = trace ? util::traceHeaderLine(trace->id()) + spec.text
                              : spec.text;
  std::string hash = util::Md5::hex(payload);
  // Deterministic, per-chunk-decorrelated backoff stream.
  std::uint64_t backoffSeed =
      config_.retrySeed + 0x9e3779b97f4a7c15ULL *
                              static_cast<std::uint64_t>(spec.chunkId + 1);
  util::Backoff backoff(config_.backoff, util::splitmix64(backoffSeed));
  std::vector<std::string> exclude;  ///< replicas that failed this chunk query
  Status last = Status::internal("no attempt made");
  int attempt = 0;
  for (; attempt < config_.maxAttempts; ++attempt) {
    if (options.cancel.cancelled()) {
      last = Status::aborted("chunk query cancelled: " +
                             options.cancel.reason().message());
      break;
    }
    if (options.deadline.expired()) {
      metrics.deadlineExceeded.add();
      last = Status::deadlineExceeded(util::format(
          "chunk %d: query deadline expired after %d attempt(s)",
          spec.chunkId, attempt));
      break;
    }
    if (attempt > 0) {
      metrics.retries.add();
      auto sleep = backoff.next();
      if (options.deadline.isLimited()) {
        sleep = std::min(sleep, options.deadline.remaining());
      }
      metrics.backoffSeconds.observe(
          static_cast<double>(sleep.count()) * 1e-6);
      if (!options.cancel.sleepFor(sleep)) {
        last = Status::aborted("chunk query cancelled during backoff: " +
                               options.cancel.reason().message());
        break;
      }
      if (options.deadline.expired()) {
        metrics.deadlineExceeded.add();
        last = Status::deadlineExceeded(util::format(
            "chunk %d: query deadline expired after %d attempt(s)",
            spec.chunkId, attempt));
        break;
      }
    }
    // Named "attempt N ..." (not "chunk ...") so trace consumers keep seeing
    // exactly one "chunk <id>" dispatcher span per dispatched chunk.
    util::ScopedSpan attemptSpan(
        trace, "dispatcher",
        util::format("attempt %d chunk %d", attempt + 1, spec.chunkId));
    std::string attempted;
    Result<std::string> workerId = Status::internal("unreached");
    {
      util::ScopedSpan xrdSpan(trace, "xrd",
                               util::format("write /query2/%d", spec.chunkId));
      workerId = client.writeQuery(spec.chunkId, payload, exclude, &attempted);
      if (!workerId.isOk() &&
          workerId.status().code() == util::ErrorCode::kUnavailable &&
          attempted.empty() && !exclude.empty()) {
        // Every live replica already failed once this chunk query. Retrying
        // a previously failed replica (it may have recovered) beats giving
        // up while attempts remain.
        exclude.clear();
        workerId = client.writeQuery(spec.chunkId, payload, {}, &attempted);
      }
    }
    if (!workerId.isOk()) {
      last = workerId.status();
      attemptSpan.attr("error", last.toString());
      if (!attempted.empty()) {
        redirector_->reportFailure(spec.chunkId, attempted);
        exclude.push_back(attempted);
        metrics.replicaExclusions.add();
      }
      if (isRetryable(last)) continue;
      break;  // non-transient: bad path, chunk unknown, ...
    }
    attemptSpan.attr("worker", *workerId);
    Result<std::string> dump = Status::internal("unreached");
    {
      util::ScopedSpan xrdSpan(
          trace, "xrd",
          util::format("read /result/%s", hash.substr(0, 8).c_str()));
      xrdSpan.attr("worker", *workerId);
      dump = client.readResult(*workerId, hash, options.deadline);
    }
    Status integrity = Status::ok();
    if (dump.isOk()) {
      integrity = verifyDumpChecksum(*dump);
      if (integrity.isOk() && config_.requireDumpChecksum &&
          !hasDumpChecksum(*dump)) {
        integrity = Status::dataLoss(util::format(
            "chunk %d: dump from %s carries no integrity checksum",
            spec.chunkId, workerId->c_str()));
      }
      if (!integrity.isOk()) metrics.checksumMismatches.add();
    }
    if (!dump.isOk() || !integrity.isOk()) {
      last = dump.isOk() ? integrity : dump.status();
      QLOG(kWarn, "dispatch")
          << "chunk " << spec.chunkId << " on " << *workerId
          << " failed (attempt " << attempt + 1 << "): " << last.toString();
      attemptSpan.attr("error", last.toString());
      redirector_->reportFailure(spec.chunkId, *workerId);
      exclude.push_back(*workerId);
      metrics.replicaExclusions.add();
      if (isRetryable(last)) continue;
      break;
    }
    redirector_->reportSuccess(*workerId);
    ChunkResult out;
    out.chunkId = spec.chunkId;
    out.workerId = std::move(*workerId);
    out.hash = std::move(hash);
    if (auto obs = decodeObservables(*dump)) out.observables = *obs;
    out.dump = std::move(*dump);
    attemptsOut = attempt + 1;
    span.attr("worker", out.workerId)
        .attr("attempts", static_cast<std::int64_t>(attempt + 1))
        .attr("dumpBytes", static_cast<std::int64_t>(out.dump.size()));
    metrics.chunksOk.add();
    metrics.chunkSeconds.observe(watch.elapsedSeconds());
    return out;
  }
  attemptsOut = std::min(attempt + 1, config_.maxAttempts);
  if (last.code() == util::ErrorCode::kAborted) {
    metrics.chunksCancelled.add();
  } else {
    metrics.chunksFailed.add();
  }
  span.attr("attempts", static_cast<std::int64_t>(attemptsOut))
      .attr("error", last.toString());
  return last;
}

Result<std::vector<ChunkResult>> Dispatcher::run(
    const std::vector<ChunkQuerySpec>& specs, const util::TracePtr& trace,
    std::atomic<std::size_t>* completed, const DispatchOptions& options) {
  auto& metrics = DispatchMetrics::instance();
  util::ThreadPool pool(static_cast<std::size_t>(config_.parallelism));
  struct ChunkOutcome {
    Result<ChunkResult> result = Status::internal("not dispatched");
    int attempts = 0;
    bool skipped = false;  ///< cancelled before its first attempt
  };
  std::vector<std::future<ChunkOutcome>> futures;
  futures.reserve(specs.size());
  for (const auto& spec : specs) {
    futures.push_back(pool.submit([this, &spec, &trace, &options, completed] {
      ChunkOutcome outcome;
      if (options.cancel.cancelled()) {
        // A sibling already failed hard: don't even start.
        outcome.skipped = true;
        outcome.result = Status::aborted(
            util::format("chunk %d cancelled: %s", spec.chunkId,
                         options.cancel.reason().message().c_str()));
        DispatchMetrics::instance().chunksCancelled.add();
      } else {
        outcome.result = runOne(spec, trace, options, outcome.attempts);
        if (!outcome.result.isOk() &&
            outcome.result.status().code() != util::ErrorCode::kAborted) {
          // This query can no longer succeed: stop siblings now.
          options.cancel.cancel(outcome.result.status());
        }
      }
      if (completed != nullptr) {
        completed->fetch_add(1, std::memory_order_relaxed);
      }
      return outcome;
    }));
  }
  std::vector<ChunkResult> out;
  out.reserve(specs.size());
  struct Failure {
    std::int32_t chunkId;
    int attempts;
    Status status;
  };
  std::vector<Failure> failures;
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ChunkOutcome outcome = futures[i].get();
    if (outcome.result.isOk()) {
      out.push_back(std::move(outcome.result).value());
      continue;
    }
    if (outcome.skipped ||
        outcome.result.status().code() == util::ErrorCode::kAborted) {
      ++cancelled;
      continue;
    }
    failures.push_back(Failure{specs[i].chunkId, outcome.attempts,
                               outcome.result.status()});
  }
  if (failures.empty() && cancelled == 0) return out;
  if (failures.empty()) {
    // Only possible when the caller cancelled externally.
    Status reason = options.cancel.reason();
    return Status::aborted(util::format(
        "%zu of %zu chunk queries cancelled: %s", cancelled, specs.size(),
        reason.message().c_str()));
  }
  // Aggregate: name the failed chunks with their attempt counts, most
  // severe first (the non-transient / deadline failures callers act on).
  std::string detail;
  constexpr std::size_t kMaxListed = 4;
  for (std::size_t i = 0; i < failures.size() && i < kMaxListed; ++i) {
    if (i > 0) detail += "; ";
    detail += util::format("chunk %d after %d attempt(s): %s",
                           failures[i].chunkId, failures[i].attempts,
                           failures[i].status.toString().c_str());
  }
  if (failures.size() > kMaxListed) {
    detail += util::format("; and %zu more", failures.size() - kMaxListed);
  }
  std::string summary = util::format(
      "%zu of %zu chunk queries failed (%zu cancelled early, %zu "
      "succeeded): %s",
      failures.size(), specs.size(), cancelled, out.size(), detail.c_str());
  (void)metrics;
  return Status(failures.front().status.code(), std::move(summary));
}

}  // namespace qserv::core
