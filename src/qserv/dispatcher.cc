#include "qserv/dispatcher.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "qserv/batch_codec.h"
#include "qserv/dump_integrity.h"
#include "qserv/observables_codec.h"
#include "util/logging.h"
#include "util/md5.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "xrd/paths.h"

namespace qserv::core {

using util::Result;
using util::Status;

namespace {
struct DispatchMetrics {
  util::Counter& chunksOk;
  util::Counter& chunksFailed;
  util::Counter& chunksCancelled;
  util::Counter& retries;
  util::Counter& replicaExclusions;
  util::Counter& checksumMismatches;
  util::Counter& deadlineExceeded;
  util::Counter& batches;
  util::Counter& batchFallbackChunks;
  util::Counter& batchChunkRetries;
  util::Counter& damagedFrames;
  util::Histogram& chunkSeconds;
  util::Histogram& backoffSeconds;
  util::Histogram& batchSeconds;
  util::Histogram& batchChunks;

  static DispatchMetrics& instance() {
    auto& reg = util::MetricsRegistry::instance();
    static DispatchMetrics* m = new DispatchMetrics{
        reg.counter("dispatch.chunks_ok"),
        reg.counter("dispatch.chunks_failed"),
        reg.counter("dispatch.chunks_cancelled"),
        reg.counter("dispatch.retries"),
        reg.counter("dispatch.replica_exclusions"),
        reg.counter("dispatch.checksum_mismatches"),
        reg.counter("dispatch.deadline_exceeded"),
        reg.counter("dispatch.batches"),
        reg.counter("dispatch.batch_fallback_chunks"),
        reg.counter("dispatch.batch_chunk_retries"),
        reg.counter("dispatch.damaged_frames"),
        reg.histogram("dispatch.chunk_seconds"),
        reg.histogram("dispatch.backoff_seconds"),
        reg.histogram("dispatch.batch_seconds"),
        reg.histogram("dispatch.batch_chunks"),
    };
    return *m;
  }
};

/// Is a failed attempt worth retrying on another replica?
bool isRetryable(const Status& s) {
  return s.code() == util::ErrorCode::kUnavailable ||
         s.code() == util::ErrorCode::kDataLoss;
}

/// The payload a worker receives for \p spec. Header comments carry the
/// trace id (so the worker can attach its spans to this query) and the
/// scheduler class. Per-chunk and batched dispatch MUST build payloads
/// identically: the result hash — md5 of the payload — is how both paths
/// find the dump, and a batch chunk falling back to the per-chunk path
/// re-derives the same hash.
std::string buildChunkPayload(const ChunkQuerySpec& spec,
                              const util::TracePtr& trace) {
  std::string payload;
  if (trace) payload += util::traceHeaderLine(trace->id());
  payload += classHeaderLine(spec.queryClass);
  payload += spec.text;
  return payload;
}
}  // namespace

struct Dispatcher::ChunkFailure {
  std::int32_t chunkId = 0;
  int attempts = 0;
  Status status = Status::ok();
};

/// A chunk the batch path could not finish, queued for the per-chunk wave.
struct Dispatcher::RetryItem {
  const ChunkQuerySpec* spec = nullptr;
  std::vector<std::string> exclude;  ///< replicas burned by the batch attempt
  int priorAttempts = 0;
  Status prior = Status::internal("not attempted");
};

struct Dispatcher::BatchOutcome {
  std::vector<RetryItem> retries;
  std::vector<ChunkFailure> failures;  ///< terminal (non-retryable) chunks
  std::size_t ok = 0;
  std::size_t cancelled = 0;
};

Dispatcher::Dispatcher(xrd::RedirectorPtr redirector, DispatcherConfig config)
    : redirector_(std::move(redirector)),
      config_(config),
      pool_(static_cast<std::size_t>(std::max(1, config.parallelism))) {
  config_.parallelism = std::max(1, config_.parallelism);
  config_.maxAttempts = std::max(1, config_.maxAttempts);
}

Dispatcher::Dispatcher(xrd::RedirectorPtr redirector, int parallelism,
                       int maxAttempts)
    : Dispatcher(std::move(redirector),
                 DispatcherConfig{parallelism, maxAttempts,
                                  util::BackoffPolicy{}, 0x5eedULL, false}) {}

Result<ChunkResult> Dispatcher::runOne(const ChunkQuerySpec& spec,
                                       const util::TracePtr& trace,
                                       const DispatchOptions& options,
                                       int& attemptsOut,
                                       std::vector<std::string> initialExclude,
                                       int priorAttempts, Status prior) {
  auto& metrics = DispatchMetrics::instance();
  util::Stopwatch watch;
  util::ScopedSpan span(trace, "dispatcher",
                        util::format("chunk %d", spec.chunkId));
  xrd::XrdClient client(redirector_);
  std::string payload = buildChunkPayload(spec, trace);
  std::string hash = util::Md5::hex(payload);
  // Deterministic, per-chunk-decorrelated backoff stream.
  std::uint64_t backoffSeed =
      config_.retrySeed + 0x9e3779b97f4a7c15ULL *
                              static_cast<std::uint64_t>(spec.chunkId + 1);
  util::Backoff backoff(config_.backoff, util::splitmix64(backoffSeed));
  std::vector<std::string> exclude = std::move(initialExclude);
  Status last = std::move(prior);
  // A chunk resuming after a failed batch attempt keeps its spent attempt
  // count: the batch write+stream was attempt 1..priorAttempts, so the loop
  // resumes mid-budget and pays backoff before touching another replica.
  int attempt = std::min(priorAttempts, config_.maxAttempts);
  for (; attempt < config_.maxAttempts; ++attempt) {
    if (options.cancel.cancelled()) {
      last = Status::aborted("chunk query cancelled: " +
                             options.cancel.reason().message());
      break;
    }
    if (options.deadline.expired()) {
      metrics.deadlineExceeded.add();
      last = Status::deadlineExceeded(util::format(
          "chunk %d: query deadline expired after %d attempt(s)",
          spec.chunkId, attempt));
      break;
    }
    if (attempt > 0) {
      metrics.retries.add();
      auto sleep = backoff.next();
      if (options.deadline.isLimited()) {
        sleep = std::min(sleep, options.deadline.remaining());
      }
      metrics.backoffSeconds.observe(
          static_cast<double>(sleep.count()) * 1e-6);
      if (!options.cancel.sleepFor(sleep)) {
        last = Status::aborted("chunk query cancelled during backoff: " +
                               options.cancel.reason().message());
        break;
      }
      if (options.deadline.expired()) {
        metrics.deadlineExceeded.add();
        last = Status::deadlineExceeded(util::format(
            "chunk %d: query deadline expired after %d attempt(s)",
            spec.chunkId, attempt));
        break;
      }
    }
    // Named "attempt N ..." (not "chunk ...") so trace consumers keep seeing
    // exactly one "chunk <id>" dispatcher span per dispatched chunk.
    util::ScopedSpan attemptSpan(
        trace, "dispatcher",
        util::format("attempt %d chunk %d", attempt + 1, spec.chunkId));
    std::string attempted;
    Result<std::string> workerId = Status::internal("unreached");
    {
      util::ScopedSpan xrdSpan(trace, "xrd",
                               util::format("write /query2/%d", spec.chunkId));
      workerId = client.writeQuery(spec.chunkId, payload, exclude, &attempted);
      if (!workerId.isOk() &&
          workerId.status().code() == util::ErrorCode::kUnavailable &&
          attempted.empty() && !exclude.empty()) {
        // Every live replica already failed once this chunk query. Retrying
        // a previously failed replica (it may have recovered) beats giving
        // up while attempts remain.
        exclude.clear();
        workerId = client.writeQuery(spec.chunkId, payload, {}, &attempted);
      }
    }
    if (!workerId.isOk()) {
      last = workerId.status();
      attemptSpan.attr("error", last.toString());
      if (!attempted.empty()) {
        redirector_->reportFailure(spec.chunkId, attempted);
        exclude.push_back(attempted);
        metrics.replicaExclusions.add();
      }
      if (isRetryable(last)) continue;
      break;  // non-transient: bad path, chunk unknown, ...
    }
    attemptSpan.attr("worker", *workerId);
    Result<std::string> dump = Status::internal("unreached");
    {
      util::ScopedSpan xrdSpan(
          trace, "xrd",
          util::format("read /result/%s", hash.substr(0, 8).c_str()));
      xrdSpan.attr("worker", *workerId);
      dump = client.readResult(*workerId, hash, options.deadline);
    }
    Status integrity = Status::ok();
    if (dump.isOk()) {
      integrity = verifyDumpChecksum(*dump);
      if (integrity.isOk() && config_.requireDumpChecksum &&
          !hasDumpChecksum(*dump)) {
        integrity = Status::dataLoss(util::format(
            "chunk %d: dump from %s carries no integrity checksum",
            spec.chunkId, workerId->c_str()));
      }
      if (!integrity.isOk()) metrics.checksumMismatches.add();
    }
    if (!dump.isOk() || !integrity.isOk()) {
      last = dump.isOk() ? integrity : dump.status();
      QLOG(kWarn, "dispatch")
          << "chunk " << spec.chunkId << " on " << *workerId
          << " failed (attempt " << attempt + 1 << "): " << last.toString();
      attemptSpan.attr("error", last.toString());
      redirector_->reportFailure(spec.chunkId, *workerId);
      exclude.push_back(*workerId);
      metrics.replicaExclusions.add();
      if (isRetryable(last)) continue;
      break;
    }
    redirector_->reportSuccess(*workerId);
    ChunkResult out;
    out.chunkId = spec.chunkId;
    out.workerId = std::move(*workerId);
    out.hash = std::move(hash);
    if (auto obs = decodeObservables(*dump)) out.observables = *obs;
    out.dump = std::move(*dump);
    attemptsOut = attempt + 1;
    span.attr("worker", out.workerId)
        .attr("attempts", static_cast<std::int64_t>(attempt + 1))
        .attr("dumpBytes", static_cast<std::int64_t>(out.dump.size()));
    metrics.chunksOk.add();
    metrics.chunkSeconds.observe(watch.elapsedSeconds());
    return out;
  }
  attemptsOut = std::min(attempt + 1, config_.maxAttempts);
  if (last.code() == util::ErrorCode::kAborted) {
    metrics.chunksCancelled.add();
  } else {
    metrics.chunksFailed.add();
  }
  span.attr("attempts", static_cast<std::int64_t>(attemptsOut))
      .attr("error", last.toString());
  return last;
}

Status Dispatcher::aggregateFailures(std::vector<ChunkFailure> failures,
                                     std::size_t cancelled, std::size_t ok,
                                     std::size_t total,
                                     const Status& cancelReason) {
  if (failures.empty() && cancelled == 0) return Status::ok();
  if (failures.empty()) {
    // Only possible when the caller cancelled externally.
    return Status::aborted(util::format(
        "%zu of %zu chunk queries cancelled: %s", cancelled, total,
        cancelReason.message().c_str()));
  }
  // Aggregate: name the failed chunks with their attempt counts.
  std::string detail;
  constexpr std::size_t kMaxListed = 4;
  for (std::size_t i = 0; i < failures.size() && i < kMaxListed; ++i) {
    if (i > 0) detail += "; ";
    detail += util::format("chunk %d after %d attempt(s): %s",
                           failures[i].chunkId, failures[i].attempts,
                           failures[i].status.toString().c_str());
  }
  if (failures.size() > kMaxListed) {
    detail += util::format("; and %zu more", failures.size() - kMaxListed);
  }
  std::string summary = util::format(
      "%zu of %zu chunk queries failed (%zu cancelled early, %zu "
      "succeeded): %s",
      failures.size(), total, cancelled, ok, detail.c_str());
  return Status(failures.front().status.code(), std::move(summary));
}

Result<std::vector<ChunkResult>> Dispatcher::run(
    const std::vector<ChunkQuerySpec>& specs, const util::TracePtr& trace,
    std::atomic<std::size_t>* completed, const DispatchOptions& options) {
  // Collect through a sink wide enough to never block, then restore the
  // caller-visible ordering contract (results in spec order).
  util::MpmcQueue<ChunkResult> sink(std::max<std::size_t>(1, specs.size()));
  auto report = runStreamed(specs, sink, trace, completed, options);
  std::vector<ChunkResult> out;
  while (auto r = sink.tryPop()) out.push_back(std::move(*r));
  QSERV_RETURN_IF_ERROR(report.status());
  std::unordered_map<std::int32_t, std::size_t> order;
  order.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) order[specs[i].chunkId] = i;
  std::sort(out.begin(), out.end(),
            [&](const ChunkResult& a, const ChunkResult& b) {
              return order[a.chunkId] < order[b.chunkId];
            });
  return out;
}

Result<DispatchReport> Dispatcher::runStreamed(
    const std::vector<ChunkQuerySpec>& specs, util::MpmcQueue<ChunkResult>& sink,
    const util::TracePtr& trace, std::atomic<std::size_t>* completed,
    const DispatchOptions& options) {
  if (config_.mode == DispatchMode::kBatched) {
    return runBatched(specs, sink, trace, completed, options);
  }
  return runPerChunk(specs, sink, trace, completed, options);
}

Result<DispatchReport> Dispatcher::runPerChunk(
    const std::vector<ChunkQuerySpec>& specs, util::MpmcQueue<ChunkResult>& sink,
    const util::TracePtr& trace, std::atomic<std::size_t>* completed,
    const DispatchOptions& options) {
  struct ChunkOutcome {
    Status status = Status::internal("not dispatched");
    int attempts = 0;
    bool skipped = false;  ///< cancelled before its first attempt
  };
  std::vector<std::future<ChunkOutcome>> futures;
  futures.reserve(specs.size());
  for (const auto& spec : specs) {
    futures.push_back(
        pool_.submit([this, &spec, &trace, &options, &sink, completed] {
          ChunkOutcome outcome;
          if (options.cancel.cancelled()) {
            // A sibling already failed hard: don't even start.
            outcome.skipped = true;
            outcome.status = Status::aborted(
                util::format("chunk %d cancelled: %s", spec.chunkId,
                             options.cancel.reason().message().c_str()));
            DispatchMetrics::instance().chunksCancelled.add();
          } else {
            auto result = runOne(spec, trace, options, outcome.attempts);
            outcome.status = result.status();
            if (result.isOk()) {
              if (!sink.push(std::move(result).value())) {
                outcome.status = Status::aborted("result sink closed");
              }
            } else if (result.status().code() != util::ErrorCode::kAborted) {
              // This query can no longer succeed: stop siblings now.
              options.cancel.cancel(result.status());
            }
          }
          if (completed != nullptr) {
            completed->fetch_add(1, std::memory_order_relaxed);
          }
          return outcome;
        }));
  }
  DispatchReport report;
  report.mode = DispatchMode::kPerChunk;
  std::vector<ChunkFailure> failures;
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ChunkOutcome outcome = futures[i].get();
    if (outcome.status.isOk()) {
      ++report.chunksOk;
      continue;
    }
    if (outcome.skipped ||
        outcome.status.code() == util::ErrorCode::kAborted) {
      ++cancelled;
      continue;
    }
    failures.push_back(
        ChunkFailure{specs[i].chunkId, outcome.attempts, outcome.status});
  }
  QSERV_RETURN_IF_ERROR(aggregateFailures(std::move(failures), cancelled,
                                          report.chunksOk, specs.size(),
                                          options.cancel.reason()));
  return report;
}

std::vector<BatchPlanEntry> Dispatcher::planBatches(
    const std::vector<ChunkQuerySpec>& specs) {
  std::map<std::string, std::vector<std::int32_t>> byWorker;
  std::vector<std::int32_t> unplaced;
  for (const auto& spec : specs) {
    auto server = redirector_->locate(xrd::makeQueryPath(spec.chunkId));
    if (server.isOk()) {
      byWorker[(*server)->id()].push_back(spec.chunkId);
    } else {
      unplaced.push_back(spec.chunkId);
    }
  }
  std::vector<BatchPlanEntry> out;
  out.reserve(byWorker.size() + 1);
  for (auto& [workerId, chunkIds] : byWorker) {
    out.push_back(BatchPlanEntry{workerId, std::move(chunkIds)});
  }
  if (!unplaced.empty()) {
    out.push_back(BatchPlanEntry{{}, std::move(unplaced)});
  }
  return out;
}

Dispatcher::BatchOutcome Dispatcher::collectBatch(
    const std::string& workerId,
    const std::vector<const ChunkQuerySpec*>& chunks,
    util::MpmcQueue<ChunkResult>& sink, const util::TracePtr& trace,
    std::atomic<std::size_t>* completed, const DispatchOptions& options) {
  auto& metrics = DispatchMetrics::instance();
  BatchOutcome outcome;
  xrd::XrdClient client(redirector_);
  util::Stopwatch watch;

  struct PendingChunk {
    const ChunkQuerySpec* spec;
    std::string hash;
  };
  std::vector<BatchChunkRequest> request;
  request.reserve(chunks.size());
  std::unordered_map<std::int32_t, PendingChunk> pending;
  pending.reserve(chunks.size());
  for (const ChunkQuerySpec* spec : chunks) {
    std::string payload = buildChunkPayload(*spec, trace);
    pending.emplace(spec->chunkId, PendingChunk{spec, util::Md5::hex(payload)});
    request.push_back(BatchChunkRequest{spec->chunkId, std::move(payload)});
  }
  std::string requestBytes = encodeBatchRequest(request, config_.streamWindow);
  std::string batchId = util::Md5::hex(requestBytes);

  util::ScopedSpan span(trace, "dispatcher",
                        util::format("batch %s", workerId.c_str()));
  span.attr("chunks", static_cast<std::int64_t>(chunks.size()))
      .attr("requestBytes", static_cast<std::int64_t>(requestBytes.size()));
  std::int64_t batchStartUs = util::Trace::nowUs();

  // Every pending chunk becomes a retry item carrying \p why and excluding
  // this worker — the shared bail-out of write failures and broken streams.
  auto retryPending = [&](const Status& why) {
    for (auto& [chunkId, pc] : pending) {
      redirector_->reportFailure(chunkId, workerId);
      metrics.replicaExclusions.add();
      metrics.batchChunkRetries.add();
      outcome.retries.push_back(
          RetryItem{pc.spec, {workerId}, /*priorAttempts=*/1, why});
    }
    pending.clear();
  };

  {
    util::ScopedSpan xrdSpan(
        trace, "xrd",
        util::format("write /batch/%s", batchId.substr(0, 8).c_str()));
    xrdSpan.attr("worker", workerId);
    Status written = client.writeBatch(workerId, batchId, requestBytes);
    if (!written.isOk()) {
      QLOG(kWarn, "dispatch") << "batch " << batchId.substr(0, 8) << " to "
                              << workerId << " rejected: "
                              << written.toString();
      xrdSpan.attr("error", written.toString());
      span.attr("error", written.toString());
      retryPending(written.code() == util::ErrorCode::kUnavailable ||
                           written.code() == util::ErrorCode::kNotFound
                       ? Status::unavailable(written.message())
                       : written);
      return outcome;
    }
  }
  metrics.batches.add();
  metrics.batchChunks.observe(static_cast<double>(chunks.size()));

  std::size_t framesSeen = 0;
  std::size_t delivered = 0;
  std::int64_t streamBytes = 0;
  const std::size_t expected = chunks.size();
  while (!pending.empty()) {
    if (options.cancel.cancelled()) {
      client.cancelBatch(workerId, batchId);
      for (auto& [chunkId, pc] : pending) {
        (void)pc;
        metrics.chunksCancelled.add();
        ++outcome.cancelled;
        if (completed != nullptr) {
          completed->fetch_add(1, std::memory_order_relaxed);
        }
      }
      pending.clear();
      break;
    }
    if (framesSeen >= expected) {
      // The worker produced all its frames but some chunks never got a
      // readable one (damaged headers): re-fetch them per-chunk.
      retryPending(Status::dataLoss(util::format(
          "batch %s: result frame lost or damaged",
          batchId.substr(0, 8).c_str())));
      break;
    }
    Result<std::string> frameBytes = Status::internal("unreached");
    {
      util::ScopedSpan xrdSpan(
          trace, "xrd",
          util::format("read /bstream/%s", batchId.substr(0, 8).c_str()));
      xrdSpan.attr("worker", workerId);
      frameBytes = client.readBatchFrame(workerId, batchId, options.deadline);
    }
    if (!frameBytes.isOk()) {
      // Worker death / stream timeout / deadline: abandon the stream and
      // send the survivors through the per-chunk path (which re-checks the
      // deadline before spending another attempt).
      QLOG(kWarn, "dispatch")
          << "batch " << batchId.substr(0, 8) << " stream from " << workerId
          << " broke: " << frameBytes.status().toString();
      span.attr("error", frameBytes.status().toString());
      client.cancelBatch(workerId, batchId);
      retryPending(frameBytes.status());
      break;
    }
    ++framesSeen;
    streamBytes += static_cast<std::int64_t>(frameBytes->size());
    auto frame = decodeResultFrame(*frameBytes);
    if (!frame.isOk()) {
      // Unattributable frame: some chunk is now short one frame; it gets
      // retried when the stream runs dry.
      metrics.damagedFrames.add();
      continue;
    }
    auto it = pending.find(frame->chunkId);
    if (it == pending.end()) continue;  // duplicate or stale frame
    PendingChunk pc = std::move(it->second);
    std::int32_t chunkId = frame->chunkId;

    if (!frame->status.isOk()) {
      // The worker executed this chunk and failed.
      Status why = frame->status;
      if (isRetryable(why)) {
        redirector_->reportFailure(chunkId, workerId);
        metrics.replicaExclusions.add();
        metrics.batchChunkRetries.add();
        outcome.retries.push_back(
            RetryItem{pc.spec, {workerId}, /*priorAttempts=*/1, why});
      } else {
        metrics.chunksFailed.add();
        if (trace) {
          util::TraceSpan failSpan;
          failSpan.component = "dispatcher";
          failSpan.name = util::format("chunk %d", chunkId);
          failSpan.startUs = batchStartUs;
          failSpan.endUs = util::Trace::nowUs();
          failSpan.threadId = util::threadId();
          failSpan.attrs.emplace_back("worker", workerId);
          failSpan.attrs.emplace_back("attempts", "1");
          failSpan.attrs.emplace_back("error", why.toString());
          trace->addSpan(std::move(failSpan));
        }
        outcome.failures.push_back(ChunkFailure{chunkId, 1, why});
        options.cancel.cancel(why);
        if (completed != nullptr) {
          completed->fetch_add(1, std::memory_order_relaxed);
        }
      }
      pending.erase(it);
      continue;
    }

    std::string dump = std::move(frame->body);
    Status integrity = verifyDumpChecksum(dump);
    if (integrity.isOk() && config_.requireDumpChecksum &&
        !hasDumpChecksum(dump)) {
      integrity = Status::dataLoss(util::format(
          "chunk %d: dump from %s carries no integrity checksum", chunkId,
          workerId.c_str()));
    }
    if (!integrity.isOk()) {
      metrics.checksumMismatches.add();
      redirector_->reportFailure(chunkId, workerId);
      metrics.replicaExclusions.add();
      metrics.batchChunkRetries.add();
      QLOG(kWarn, "dispatch")
          << "chunk " << chunkId << " in batch " << batchId.substr(0, 8)
          << " from " << workerId << " damaged: " << integrity.toString();
      outcome.retries.push_back(
          RetryItem{pc.spec, {workerId}, /*priorAttempts=*/1, integrity});
      pending.erase(it);
      continue;
    }

    redirector_->reportSuccess(workerId);
    ChunkResult out;
    out.chunkId = chunkId;
    out.workerId = workerId;
    out.hash = std::move(pc.hash);
    if (auto obs = decodeObservables(dump)) out.observables = *obs;
    out.dump = std::move(dump);
    std::int64_t nowUs = util::Trace::nowUs();
    if (trace) {
      // The per-chunk dispatcher span trace consumers key on: one
      // "chunk <id>" per dispatched chunk, batched or not. It covers batch
      // write through frame arrival.
      util::TraceSpan chunkSpan;
      chunkSpan.component = "dispatcher";
      chunkSpan.name = util::format("chunk %d", chunkId);
      chunkSpan.startUs = batchStartUs;
      chunkSpan.endUs = nowUs;
      chunkSpan.threadId = util::threadId();
      chunkSpan.attrs.emplace_back("worker", workerId);
      chunkSpan.attrs.emplace_back("attempts", "1");
      chunkSpan.attrs.emplace_back("dumpBytes",
                                   std::to_string(out.dump.size()));
      trace->addSpan(std::move(chunkSpan));
    }
    metrics.chunksOk.add();
    metrics.chunkSeconds.observe(
        static_cast<double>(nowUs - batchStartUs) * 1e-6);
    ++outcome.ok;
    ++delivered;
    pending.erase(it);
    if (!sink.push(std::move(out))) {
      options.cancel.cancel(Status::aborted("result sink closed"));
    }
    if (completed != nullptr) {
      completed->fetch_add(1, std::memory_order_relaxed);
    }
  }
  span.attr("delivered", static_cast<std::int64_t>(delivered))
      .attr("streamBytes", streamBytes);
  metrics.batchSeconds.observe(watch.elapsedSeconds());
  return outcome;
}

Result<DispatchReport> Dispatcher::runBatched(
    const std::vector<ChunkQuerySpec>& specs, util::MpmcQueue<ChunkResult>& sink,
    const util::TracePtr& trace, std::atomic<std::size_t>* completed,
    const DispatchOptions& options) {
  auto& metrics = DispatchMetrics::instance();
  DispatchReport report;
  report.mode = DispatchMode::kBatched;

  // Plan: one batch per (query, worker) at the redirector's current
  // placement; chunks without a live replica go straight to the per-chunk
  // path, which owns the precise error semantics.
  std::map<std::string, std::vector<const ChunkQuerySpec*>> byWorker;
  std::vector<RetryItem> spill;
  for (const auto& spec : specs) {
    auto server = redirector_->locate(xrd::makeQueryPath(spec.chunkId));
    if (server.isOk()) {
      byWorker[(*server)->id()].push_back(&spec);
    } else {
      spill.push_back(RetryItem{&spec, {}, 0, server.status()});
    }
  }
  report.batches = byWorker.size();
  report.fallbackChunks = spill.size();
  metrics.batchFallbackChunks.add(spill.size());

  // Wave 1: collectors stream each batch concurrently; unplaced chunks run
  // per-chunk alongside them. All tasks are pool leaves — they never wait on
  // other pool work — so a shared pool cannot deadlock.
  struct SoloOutcome {
    Status status = Status::internal("not dispatched");
    std::int32_t chunkId = 0;
    int attempts = 0;
    bool skipped = false;
  };
  auto submitSolo = [&](const RetryItem item) {
    return pool_.submit([this, item, &trace, &options, &sink, completed] {
      SoloOutcome outcome;
      outcome.chunkId = item.spec->chunkId;
      if (options.cancel.cancelled()) {
        outcome.skipped = true;
        outcome.status = Status::aborted(
            util::format("chunk %d cancelled: %s", item.spec->chunkId,
                         options.cancel.reason().message().c_str()));
        DispatchMetrics::instance().chunksCancelled.add();
      } else {
        auto result = runOne(*item.spec, trace, options, outcome.attempts,
                             item.exclude, item.priorAttempts, item.prior);
        outcome.status = result.status();
        if (result.isOk()) {
          if (!sink.push(std::move(result).value())) {
            outcome.status = Status::aborted("result sink closed");
          }
        } else if (result.status().code() != util::ErrorCode::kAborted) {
          options.cancel.cancel(result.status());
        }
      }
      if (completed != nullptr) {
        completed->fetch_add(1, std::memory_order_relaxed);
      }
      return outcome;
    });
  };

  std::vector<std::future<BatchOutcome>> collectors;
  collectors.reserve(byWorker.size());
  for (auto& [workerId, chunks] : byWorker) {
    collectors.push_back(pool_.submit(
        [this, workerId = workerId, chunks = std::move(chunks), &sink, &trace,
         &options, completed] {
          return collectBatch(workerId, chunks, sink, trace, completed,
                              options);
        }));
  }
  std::vector<std::future<SoloOutcome>> solos;
  solos.reserve(spill.size());
  for (const RetryItem& item : spill) solos.push_back(submitSolo(item));

  std::vector<ChunkFailure> failures;
  std::size_t cancelled = 0;
  std::vector<RetryItem> retries;
  for (auto& f : collectors) {
    BatchOutcome outcome = f.get();
    report.chunksOk += outcome.ok;
    cancelled += outcome.cancelled;
    for (auto& failure : outcome.failures) {
      failures.push_back(std::move(failure));
    }
    for (auto& retry : outcome.retries) retries.push_back(std::move(retry));
  }

  // Wave 2: per-chunk retries for everything the batches could not deliver.
  // Submitted only after every collector finished so the caller thread never
  // waits on pool work that is itself queued behind pool work.
  std::vector<std::future<SoloOutcome>> retryWave;
  retryWave.reserve(retries.size());
  for (const RetryItem& item : retries) retryWave.push_back(submitSolo(item));

  auto drainSolos = [&](std::vector<std::future<SoloOutcome>>& wave) {
    for (auto& f : wave) {
      SoloOutcome outcome = f.get();
      if (outcome.status.isOk()) {
        ++report.chunksOk;
      } else if (outcome.skipped ||
                 outcome.status.code() == util::ErrorCode::kAborted) {
        ++cancelled;
      } else {
        failures.push_back(ChunkFailure{outcome.chunkId, outcome.attempts,
                                        outcome.status});
      }
    }
  };
  drainSolos(solos);
  drainSolos(retryWave);

  std::sort(failures.begin(), failures.end(),
            [](const ChunkFailure& a, const ChunkFailure& b) {
              return a.chunkId < b.chunkId;
            });
  QSERV_RETURN_IF_ERROR(aggregateFailures(std::move(failures), cancelled,
                                          report.chunksOk, specs.size(),
                                          options.cancel.reason()));
  return report;
}

}  // namespace qserv::core
