/// \file query_profile.h
/// \brief Structured per-query resource accounting (EXPLAIN ANALYZE,
/// QueryStats, slow-query log).
///
/// A QueryProfile is the queryable distillation of one query's Trace: the
/// czar-side stages (parse, analyze, chunk-prune, rewrite, dispatch, merge,
/// final-aggregation) become an ordered stage list, and the per-chunk
/// dispatcher/worker/xrd spans collapse into queue-wait / execute / transfer
/// distributions (min/p50/max over chunks). It is *derived from* the trace —
/// spans stay the ground truth; the profile is the summary that outlives the
/// query in the frontend's QueryStats table and feeds `\profile`,
/// `\slowlog`, and the structured slow-query log line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sql/table.h"
#include "util/trace.h"

namespace qserv::core {

/// Distribution of one per-chunk quantity (seconds) across chunk queries.
struct ProfileDist {
  std::int64_t count = 0;
  double min = 0.0, p50 = 0.0, max = 0.0, sum = 0.0;

  /// Summarize \p samples (unsorted; empty leaves the zero state).
  static ProfileDist of(std::vector<double> samples);
};

/// One czar-side stage of the query pipeline, in execution order.
struct ProfileStage {
  std::string name;     ///< parse, analyze, chunk-prune, rewrite, ...
  double seconds = 0.0;
  std::int64_t items = 0;  ///< stage-specific count (chunks, rows); 0 = n/a
  std::string detail;      ///< human-readable annotation
};

/// Per-query resource accounting built from the query's Trace.
struct QueryProfile {
  std::uint64_t queryId = 0;
  std::string sql;
  std::string status = "ok";  ///< "ok" or the failure Status string
  /// Scheduler class ("interactive"/"scan"; the caller sets it — empty when
  /// the query failed before classification).
  std::string queryClass;
  double wallSeconds = 0.0;

  std::vector<ProfileStage> stages;  ///< czar stages, execution order

  ProfileDist queueWait;  ///< per-chunk worker queue wait
  ProfileDist execute;    ///< per-chunk worker execution
  ProfileDist transfer;   ///< per-chunk result read (xrd)
  /// Per-worker batch transfer: wall seconds of each batch's write+stream
  /// interval (batched dispatch only; zero count on per-chunk queries).
  ProfileDist batchTransfer;

  std::int64_t batches = 0;   ///< batch requests written (batched dispatch)
  std::int64_t chunks = 0;    ///< chunk queries dispatched
  std::int64_t attempts = 0;  ///< total dispatch attempts across chunks
  std::int64_t retries = 0;   ///< attempts - chunks (0 when clean)
  std::int64_t faults = 0;    ///< spans that recorded an "error" attribute
  std::int64_t rowsMerged = 0;
  std::int64_t resultRows = 0;
  std::int64_t bytesTransferred = 0;  ///< dump bytes read from workers

  /// Sum of the top-level stage times (the EXPLAIN ANALYZE acceptance
  /// check: within 10% of wallSeconds for a healthy query).
  double stageSeconds() const;

  /// Hierarchical breakdown as a result table: columns (stage, seconds,
  /// count, detail); per-chunk distributions render as indented sub-rows of
  /// the dispatch stage.
  sql::TablePtr toTable() const;

  /// One-line JSON summary (the slow-query-log payload and QueryStats
  /// mirror). SQL and status are JSON-escaped.
  std::string toJson() const;
};

/// Build a profile from \p trace's spans. Fills stages, distributions, and
/// the chunk/attempt/fault/byte tallies; the caller sets wallSeconds,
/// status, and the merge-side row counts it knows directly.
QueryProfile buildQueryProfile(const util::Trace& trace);

}  // namespace qserv::core
