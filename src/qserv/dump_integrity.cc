#include "qserv/dump_integrity.h"

#include "util/md5.h"
#include "util/strings.h"

namespace qserv::core {

namespace {
constexpr std::string_view kMarker = "-- QSERV-MD5: ";
constexpr std::size_t kHexLen = 32;
// marker + 32 hex digits + '\n'
constexpr std::size_t kTrailerLen = kMarker.size() + kHexLen + 1;

/// The trailer's offset in \p dump, or npos when absent/malformed.
std::size_t trailerPos(std::string_view dump) {
  if (dump.size() < kTrailerLen || dump.back() != '\n') {
    return std::string_view::npos;
  }
  std::size_t pos = dump.size() - kTrailerLen;
  if (dump.substr(pos, kMarker.size()) != kMarker) {
    return std::string_view::npos;
  }
  return pos;
}
}  // namespace

std::string dumpChecksumTrailer(std::string_view dump) {
  return std::string(kMarker) + util::Md5::hex(dump) + "\n";
}

void appendDumpChecksum(std::string& dump) {
  dump += dumpChecksumTrailer(dump);
}

bool hasDumpChecksum(std::string_view dump) {
  return trailerPos(dump) != std::string_view::npos;
}

util::Status verifyDumpChecksum(std::string_view dump) {
  std::size_t pos = trailerPos(dump);
  if (pos == std::string_view::npos) {
    // No well-formed trailer at the end. A dump that still contains the
    // marker somewhere was checksummed by its producer and then damaged
    // (truncation chopped the tail, or flips hit the trailer itself) —
    // that is data loss, not a checksum-free producer.
    if (dump.rfind(kMarker) != std::string_view::npos) {
      return util::Status::dataLoss(util::format(
          "dump checksum trailer damaged (%zu bytes)", dump.size()));
    }
    return util::Status::ok();
  }
  std::string_view declared = dump.substr(pos + kMarker.size(), kHexLen);
  std::string actual = util::Md5::hex(dump.substr(0, pos));
  if (declared == actual) return util::Status::ok();
  return util::Status::dataLoss(util::format(
      "dump checksum mismatch: envelope declares %s, content is %s "
      "(%zu bytes)",
      std::string(declared).c_str(), actual.c_str(), dump.size()));
}

}  // namespace qserv::core
