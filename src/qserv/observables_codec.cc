#include "qserv/observables_codec.h"

#include <cinttypes>
#include <cstdio>

#include "util/strings.h"

namespace qserv::core {

namespace {
constexpr std::string_view kMarker = "-- QSERV-OBS ";
}

std::string encodeObservables(const simio::WorkObservables& w) {
  return util::format(
      "-- QSERV-OBS bytes=%.0f rows=%" PRIu64 " pairs=%" PRIu64
      " match=%" PRIu64 " built=%" PRIu64 " idx=%" PRIu64
      " rbytes=%.0f rrows=%" PRIu64 "\n",
      w.bytesScanned, w.rowsExamined, w.pairsEvaluated, w.joinMatches,
      w.rowsBuilt, w.indexLookups, w.resultBytes, w.resultRows);
}

std::optional<simio::WorkObservables> decodeObservables(
    std::string_view dump) {
  std::size_t pos = dump.rfind(kMarker);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string line(dump.substr(pos + kMarker.size()));
  simio::WorkObservables w;
  if (std::sscanf(line.c_str(),
                  "bytes=%lf rows=%" SCNu64 " pairs=%" SCNu64
                  " match=%" SCNu64 " built=%" SCNu64 " idx=%" SCNu64
                  " rbytes=%lf rrows=%" SCNu64,
                  &w.bytesScanned, &w.rowsExamined, &w.pairsEvaluated,
                  &w.joinMatches, &w.rowsBuilt, &w.indexLookups,
                  &w.resultBytes, &w.resultRows) != 8) {
    return std::nullopt;
  }
  return w;
}

}  // namespace qserv::core
