#include "qserv/worker.h"

#include <algorithm>
#include <cmath>

#include "datagen/partitioner.h"
#include "qserv/batch_codec.h"
#include "qserv/dump_integrity.h"
#include "qserv/observables_codec.h"
#include "sql/dump.h"
#include "sql/rowcodec.h"
#include "util/logging.h"
#include "util/md5.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/trace.h"
#include "xrd/paths.h"

namespace qserv::core {

using util::Result;
using util::Status;

namespace {
/// Process-wide worker instruments (all in-process workers share them, the
/// way one mysqld's counters aggregate over its connections).
struct WorkerMetrics {
  util::Counter& tasksEnqueued;
  util::Counter& tasksExecuted;
  util::Counter& taskFailures;
  util::Counter& batchesReceived;
  util::Counter& batchChunksSkipped;
  util::Counter& chunksInstalled;
  util::Counter& chunksDropped;
  util::Counter& snapshotsServed;
  util::Counter& subchunkBuilds;
  util::Counter& subchunkDrops;
  util::Counter& vectorizedScans;
  util::Counter& vectorRowsIn;
  util::Counter& vectorRowsOut;
  util::Counter& zoneMapPrunes;
  util::Counter& zoneMapRowsSkipped;
  util::Counter& spatialJoins;
  util::Counter& zoneJoinPairsPruned;
  util::Counter& zoneJoinCandidates;
  util::Gauge& queueDepth;
  util::Gauge& busySlots;
  util::Histogram& queueWaitSeconds;
  util::Histogram& interactiveQueueWaitSeconds;
  util::Histogram& scanQueueWaitSeconds;
  util::Histogram& executeSeconds;
  util::Histogram& subchunkBuildSeconds;
  util::Histogram& subchunkDropSeconds;

  static WorkerMetrics& instance() {
    auto& reg = util::MetricsRegistry::instance();
    static WorkerMetrics* m = new WorkerMetrics{
        reg.counter("worker.tasks_enqueued"),
        reg.counter("worker.tasks_executed"),
        reg.counter("worker.task_failures"),
        reg.counter("worker.batches_received"),
        reg.counter("worker.batch_chunks_skipped"),
        reg.counter("worker.chunks_installed"),
        reg.counter("worker.chunks_dropped"),
        reg.counter("worker.snapshots_served"),
        reg.counter("worker.subchunk_builds"),
        reg.counter("worker.subchunk_drops"),
        reg.counter("worker.vectorized_scans"),
        reg.counter("worker.vector_rows_in"),
        reg.counter("worker.vector_rows_out"),
        reg.counter("worker.zone_map_prunes"),
        reg.counter("worker.zone_map_rows_skipped"),
        reg.counter("worker.spatial_joins"),
        reg.counter("worker.zone_join_pairs_pruned"),
        reg.counter("worker.zone_join_candidates"),
        reg.gauge("worker.queue_depth"),
        reg.gauge("worker.busy_slots"),
        reg.histogram("worker.queue_wait_seconds"),
        reg.histogram("worker.interactive_queue_wait_seconds"),
        reg.histogram("worker.scan_queue_wait_seconds"),
        reg.histogram("worker.execute_seconds"),
        reg.histogram("worker.subchunk_build_seconds"),
        reg.histogram("worker.subchunk_drop_seconds"),
    };
    return *m;
  }
};
}  // namespace

Worker::Worker(std::string id, std::shared_ptr<sql::Database> database,
               const CatalogConfig& catalog,
               std::vector<std::int32_t> exportedChunks, WorkerConfig config)
    : id_(std::move(id)),
      db_(std::move(database)),
      queueWaitHist_(util::MetricsRegistry::instance().histogram(
          util::format("worker.%s.queue_wait_seconds", id_.c_str()))),
      queueDepthGauge_(util::MetricsRegistry::instance().gauge(
          util::format("worker.%s.queue_depth", id_.c_str()))),
      convoyRatioHist_(util::MetricsRegistry::instance().histogram(
          util::format("worker.%s.convoy_ratio", id_.c_str()))),
      catalog_(catalog),
      chunker_(catalog.makeChunker()),
      exportedChunks_(std::move(exportedChunks)),
      config_(config),
      sched_(id_, ScanSchedulerConfig{config.scheduler,
                                      config.scanMemoryBudgetBytes,
                                      config.slowScanFactor,
                                      config.startPaused}) {
  std::sort(exportedChunks_.begin(), exportedChunks_.end());
  int slots = std::max(1, config_.slots);
  executors_.reserve(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    executors_.emplace_back([this] { executorLoop(); });
  }
}

Worker::~Worker() { shutdown(); }

void Worker::resume() { sched_.resume(); }

void Worker::shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  sched_.shutdown();
  for (auto& t : executors_) {
    if (t.joinable()) t.join();
  }
  results_.abortAll();
}

std::vector<std::int32_t> Worker::exportedChunks() const {
  std::lock_guard lock(exportsMutex_);
  return exportedChunks_;
}

bool Worker::exportsChunk(std::int32_t chunkId) const {
  std::lock_guard lock(exportsMutex_);
  return std::binary_search(exportedChunks_.begin(), exportedChunks_.end(),
                            chunkId);
}

void Worker::addExport(std::int32_t chunkId) {
  std::lock_guard lock(exportsMutex_);
  auto it = std::lower_bound(exportedChunks_.begin(), exportedChunks_.end(),
                             chunkId);
  if (it == exportedChunks_.end() || *it != chunkId) {
    exportedChunks_.insert(it, chunkId);
  }
}

void Worker::removeExport(std::int32_t chunkId) {
  std::lock_guard lock(exportsMutex_);
  auto it = std::lower_bound(exportedChunks_.begin(), exportedChunks_.end(),
                             chunkId);
  if (it != exportedChunks_.end() && *it == chunkId) {
    exportedChunks_.erase(it);
  }
}

Status Worker::writeFile(const std::string& path, std::string payload) {
  if (auto batchId = xrd::parseBatchPath(path)) {
    return enqueueBatch(*batchId, std::move(payload));
  }
  if (auto batchId = xrd::parseBatchCancelPath(path)) {
    abandonBatch(*batchId);
    return Status::ok();
  }
  if (auto loadId = xrd::parseChunkLoadPath(path)) {
    return installChunk(*loadId, payload);
  }
  if (auto dropId = xrd::parseChunkDropPath(path)) {
    return dropChunk(*dropId);
  }
  auto chunkId = xrd::parseQueryPath(path);
  if (!chunkId) {
    return Status::invalidArgument(
        "worker only accepts /query2, /batch, /bcancel, /chunkload and "
        "/chunkdrop writes: " +
        path);
  }
  if (!exportsChunk(*chunkId)) {
    return Status::notFound(util::format("worker %s does not export chunk %d",
                                         id_.c_str(), *chunkId));
  }
  ScanTask task = makeTask(*chunkId, std::move(payload), util::Trace::nowUs());
  auto& metrics = WorkerMetrics::instance();
  if (!sched_.enqueue(std::move(task))) {
    return Status::unavailable("worker " + id_ + " is shutting down");
  }
  metrics.queueDepth.add(1);
  queueDepthGauge_.set(static_cast<std::int64_t>(sched_.depth()));
  metrics.tasksEnqueued.add();
  return Status::ok();
}

ScanTask Worker::makeTask(std::int32_t chunkId, std::string payload,
                          std::int64_t enqueuedUs) const {
  ScanTask task;
  task.chunkId = chunkId;
  task.hash = util::Md5::hex(payload);
  if (auto traceId = util::parseTraceHeader(payload)) task.traceId = *traceId;
  task.queryId = task.traceId;
  task.enqueuedUs = enqueuedUs;
  // Header-less payloads (raw test traffic) default to scan class — the
  // conservative choice, and the one that preserves same-chunk grouping.
  task.cls = parseClassHeader(payload).value_or(QueryClass::kScan);
  if (config_.scheduler == SchedulerMode::kSharedScan &&
      task.cls == QueryClass::kScan) {
    task.memoryBytes = chunkMemoryBytes(chunkId);
  }
  task.payload = std::move(payload);
  return task;
}

double Worker::chunkMemoryBytes(std::int32_t chunkId) const {
  double bytes = 0.0;
  for (const auto& table : catalog_.tables) {
    for (const std::string& name :
         {datagen::chunkTableName(table.name, chunkId),
          datagen::overlapTableName(table.name, chunkId)}) {
      if (sql::TablePtr t = db_->findTable(name)) {
        bytes += static_cast<double>(t->numRows()) * table.paperRowBytes *
                 config_.rowScale;
      }
    }
  }
  return bytes;
}

Status Worker::enqueueBatch(const std::string& batchId, std::string payload) {
  auto request = decodeBatchRequest(payload);
  if (!request.isOk()) return request.status();
  for (const BatchChunkRequest& chunk : request->chunks) {
    if (!exportsChunk(chunk.chunkId)) {
      // Reject the whole batch: the master's placement was stale, and the
      // per-chunk fallback path re-locates each chunk individually.
      return Status::notFound(util::format(
          "worker %s does not export chunk %d (batch %s)", id_.c_str(),
          chunk.chunkId, batchId.c_str()));
    }
  }
  auto stream = std::make_shared<BatchStream>();
  stream->id = batchId;
  stream->streamPath = xrd::makeBatchStreamPath(batchId);
  stream->window = request->streamWindow;
  stream->remaining.store(static_cast<int>(request->chunks.size()),
                          std::memory_order_release);
  std::int64_t nowUs = util::Trace::nowUs();
  std::vector<ScanTask> tasks;
  tasks.reserve(request->chunks.size());
  for (BatchChunkRequest& chunk : request->chunks) {
    ScanTask task = makeTask(chunk.chunkId, std::move(chunk.payload), nowUs);
    task.batch = stream;
    tasks.push_back(std::move(task));
  }
  const std::size_t count = tasks.size();
  auto& metrics = WorkerMetrics::instance();
  {
    std::lock_guard lock(batchMutex_);
    batches_[batchId] = stream;
  }
  if (!sched_.enqueueAll(std::move(tasks))) {
    std::lock_guard lock(batchMutex_);
    batches_.erase(batchId);
    return Status::unavailable("worker " + id_ + " is shutting down");
  }
  metrics.queueDepth.add(static_cast<std::int64_t>(count));
  queueDepthGauge_.set(static_cast<std::int64_t>(sched_.depth()));
  metrics.tasksEnqueued.add(count);
  metrics.batchesReceived.add();
  return Status::ok();
}

void Worker::abandonBatch(const std::string& batchId) {
  std::shared_ptr<BatchStream> stream;
  {
    std::lock_guard lock(batchMutex_);
    auto it = batches_.find(batchId);
    if (it != batches_.end()) stream = it->second;
  }
  if (stream) stream->abandoned.store(true, std::memory_order_release);
  // Drop unread frames even when the batch already finished and
  // unregistered — the master will not read them.
  results_.remove(xrd::makeBatchStreamPath(batchId));
}

void Worker::publishBatchFrame(const ScanTask& task, std::string frame) {
  BatchStream& stream = *task.batch;
  if (stream.window > 0) {
    // Backpressure: keep at most `window` unread frames on the stream. Poll
    // in short slices so abandonment and shutdown break the wait; after the
    // result timeout publish anyway — never block an executor slot forever.
    util::Stopwatch waited;
    auto timeoutSec =
        std::chrono::duration<double>(config_.resultTimeout).count();
    while (!stream.abandoned.load(std::memory_order_acquire) &&
           !stopping_.load(std::memory_order_acquire) &&
           waited.elapsedSeconds() < timeoutSec &&
           !results_.awaitDrain(stream.streamPath,
                                static_cast<std::size_t>(stream.window),
                                std::chrono::milliseconds(50))) {
    }
  }
  if (!stream.abandoned.load(std::memory_order_acquire)) {
    results_.publish(stream.streamPath, std::move(frame));
  }
}

void Worker::finishBatchChunk(const std::shared_ptr<BatchStream>& stream) {
  if (stream->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  {
    std::lock_guard lock(batchMutex_);
    auto it = batches_.find(stream->id);
    if (it != batches_.end() && it->second == stream) batches_.erase(it);
  }
  if (stream->abandoned.load(std::memory_order_acquire)) {
    results_.remove(stream->streamPath);
  }
}

Result<std::string> Worker::readFile(const std::string& path) {
  return readFile(path, util::Deadline::unlimited());
}

Result<std::string> Worker::readFile(const std::string& path,
                                     const util::Deadline& deadline) {
  if (path == xrd::kPingPath) return pingPayload();
  if (auto chunkId = xrd::parseChunkPath(path)) {
    return snapshotChunk(*chunkId);
  }
  auto hash = xrd::parseResultPath(path);
  if (!hash) hash = xrd::parseBatchStreamPath(path);
  if (!hash) {
    return Status::invalidArgument(
        "worker only serves /result and /bstream reads: " + path);
  }
  // waitFor consumes the payload: results are one-shot, like Qserv's
  // cleanup of delivered result files. The wait is bounded by both the
  // worker's own timeout and the caller's per-query deadline.
  auto timeout = config_.resultTimeout;
  if (deadline.isLimited()) {
    auto budget = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline.remaining());
    timeout = std::min(timeout, std::max(budget,
                                         std::chrono::milliseconds(1)));
  }
  return results_.waitFor(path, timeout);
}

std::string Worker::pingPayload() const {
  std::size_t chunks;
  {
    std::lock_guard lock(exportsMutex_);
    chunks = exportedChunks_.size();
  }
  return util::format("pong id=%s queue=%zu chunks=%zu\n", id_.c_str(),
                      queuedTasks(), chunks);
}

Result<std::string> Worker::snapshotChunk(std::int32_t chunkId) const {
  if (!exportsChunk(chunkId)) {
    return Status::notFound(util::format("worker %s does not export chunk %d",
                                         id_.c_str(), chunkId));
  }
  // One replayable script covering every table of the chunk (chunk table +
  // overlap companion per catalog table), sealed with the same -- QSERV-MD5
  // trailer result dumps carry so the copy destination verifies integrity
  // before replaying a single statement.
  std::string script = util::format("-- qserv-chunk v1 %d\n", chunkId);
  bool any = false;
  for (const auto& table : catalog_.tables) {
    std::string chunkTable = datagen::chunkTableName(table.name, chunkId);
    if (sql::TablePtr t = db_->findTable(chunkTable)) {
      script += sql::dumpTable(*t, chunkTable);
      any = true;
    }
    std::string overlapTable = datagen::overlapTableName(table.name, chunkId);
    if (sql::TablePtr t = db_->findTable(overlapTable)) {
      script += sql::dumpTable(*t, overlapTable);
    }
  }
  if (!any) {
    return Status::internal(util::format(
        "worker %s exports chunk %d but holds none of its tables",
        id_.c_str(), chunkId));
  }
  appendDumpChecksum(script);
  WorkerMetrics::instance().snapshotsServed.add();
  return script;
}

Status Worker::installChunk(std::int32_t chunkId,
                            const std::string& snapshot) {
  QSERV_RETURN_IF_ERROR(verifyDumpChecksum(snapshot));
  if (sched_.isShuttingDown()) {
    return Status::unavailable("worker " + id_ + " is shutting down");
  }
  // Replay the dump into a staging database: parsing and loading a
  // multi-thousand-row script under db_'s exclusive lock would stall every
  // concurrent chunk query on this worker for the whole replay. Staging
  // keeps db_'s lock hold to the per-table snapshot swaps below.
  sql::Database staging(id_ + "-chunkload");
  auto replayed = staging.executeScript(snapshot);
  if (!replayed.isOk()) return replayed.status();
  for (const auto& name : staging.tableNames()) {
    QSERV_RETURN_IF_ERROR(db_->replaceTable(staging.findTable(name)));
  }
  // Index the loaded tables exactly as initial placement does: the chunk
  // table by its id column (paper §5.5) and by subChunkId (on-the-fly
  // subchunk builds probe it instead of scanning the chunk).
  for (const auto& table : catalog_.tables) {
    std::string chunkTable = datagen::chunkTableName(table.name, chunkId);
    sql::TablePtr t = db_->findTable(chunkTable);
    if (!t) continue;
    std::string idColumn =
        table.idColumn.empty() ? "objectId" : table.idColumn;
    if (t->schema().indexOf(idColumn)) {
      QSERV_RETURN_IF_ERROR(db_->createIndex(chunkTable, idColumn));
    }
    if (t->schema().indexOf("subChunkId")) {
      QSERV_RETURN_IF_ERROR(db_->createIndex(chunkTable, "subChunkId"));
    }
  }
  addExport(chunkId);
  WorkerMetrics::instance().chunksInstalled.add();
  QLOG(kInfo, "worker") << id_ << " installed chunk " << chunkId;
  return Status::ok();
}

Status Worker::dropChunk(std::int32_t chunkId) {
  // Stop exporting first: new chunk queries for this chunk are refused
  // (and re-located by the dispatcher) before any table disappears.
  removeExport(chunkId);
  bool dropped = false;
  for (const auto& table : catalog_.tables) {
    std::string chunkTable = datagen::chunkTableName(table.name, chunkId);
    if (db_->hasTable(chunkTable)) {
      QSERV_RETURN_IF_ERROR(db_->dropTable(chunkTable, /*ifExists=*/true));
      dropped = true;
    }
    std::string overlapTable = datagen::overlapTableName(table.name, chunkId);
    QSERV_RETURN_IF_ERROR(db_->dropTable(overlapTable, /*ifExists=*/true));
  }
  if (dropped) {
    WorkerMetrics::instance().chunksDropped.add();
    QLOG(kInfo, "worker") << id_ << " dropped chunk " << chunkId;
  }
  return Status::ok();
}

std::optional<simio::WorkObservables> Worker::observablesFor(
    const std::string& md5Hex) const {
  std::lock_guard lock(obsMutex_);
  auto it = observables_.find(md5Hex);
  if (it == observables_.end()) return std::nullopt;
  return it->second;
}

std::size_t Worker::queuedTasks() const { return sched_.depth(); }

void Worker::executorLoop() {
  auto& metrics = WorkerMetrics::instance();
  while (true) {
    ScanScheduler::Claim claim = sched_.claim();
    if (claim.tasks.empty()) return;  // shutdown and drained
    metrics.busySlots.add(1);
    double maxWaitSec = 0.0;
    // In a shared-scan group only the first task that actually reads chunk
    // bytes pays the read; the others ride along on the same in-memory pass
    // (§4.3). Charging "the first task" by index would lose the charge
    // whenever the group leader is skipped as abandoned or zone-pruned.
    bool ioCharged = false;
    util::Stopwatch serviceWatch;
    std::int64_t claimedUs = util::Trace::nowUs();
    for (const ScanTask& task : claim.tasks) {
      runClaimedTask(task, claimedUs, ioCharged, maxWaitSec);
    }
    if (claim.passId != 0) {
      // Scans that arrived while this pass was in flight joined the group;
      // drain them until the pass closes (an empty drain closes it).
      for (;;) {
        std::vector<ScanTask> joined = sched_.takeJoined(claim.passId);
        if (joined.empty()) break;
        std::int64_t joinClaimUs = util::Trace::nowUs();
        for (const ScanTask& task : joined) {
          runClaimedTask(task, joinClaimUs, ioCharged, maxWaitSec);
        }
      }
    }
    // Convoy indicator: how long the batch's unluckiest task waited relative
    // to the service time it then received.
    double serviceSec = serviceWatch.elapsedSeconds();
    if (serviceSec > 0.0) convoyRatioHist_.observe(maxWaitSec / serviceSec);
    metrics.busySlots.add(-1);
  }
}

void Worker::runClaimedTask(const ScanTask& task, std::int64_t claimedUs,
                            bool& ioCharged, double& maxWaitSec) {
  auto& metrics = WorkerMetrics::instance();
  double waitSec = static_cast<double>(claimedUs - task.enqueuedUs) * 1e-6;
  metrics.queueWaitSeconds.observe(waitSec);
  (task.cls == QueryClass::kInteractive ? metrics.interactiveQueueWaitSeconds
                                        : metrics.scanQueueWaitSeconds)
      .observe(waitSec);
  queueWaitHist_.observe(waitSec);
  maxWaitSec = std::max(maxWaitSec, waitSec);
  if (util::TracePtr trace =
          util::TraceRegistry::instance().find(task.traceId)) {
    util::TraceSpan wait;
    wait.component = "worker";
    wait.name = util::format("queue-wait %d", task.chunkId);
    wait.startUs = task.enqueuedUs;
    wait.endUs = claimedUs;
    wait.threadId = util::threadId();
    wait.attrs.emplace_back("worker", id_);
    wait.attrs.emplace_back("class", queryClassName(task.cls));
    trace->addSpan(std::move(wait));
  }
  util::Stopwatch taskWatch;
  bool executed = executeTask(task, /*chargeScanIo=*/!ioCharged);
  if (executed && !ioCharged) {
    // The charge sticks only when the task actually read chunk bytes: a
    // zone-map-pruned task touches no table data, so the pass's physical
    // read is still unpaid and falls to the next task that really scans.
    auto obs = observablesFor(task.hash);
    if (obs && obs->bytesScanned > 0) ioCharged = true;
  }
  sched_.finishTask(task, taskWatch.elapsedSeconds(), executed);
  metrics.queueDepth.add(-1);
  queueDepthGauge_.set(static_cast<std::int64_t>(sched_.depth()));
}

std::vector<std::int32_t> Worker::parseSubchunksHeader(
    const std::string& payload) {
  std::vector<std::int32_t> out;
  constexpr std::string_view kHeader = "-- SUBCHUNKS:";
  // The header block is the run of leading `--` comment lines; other
  // headers (e.g. -- QSERV-TRACE) may precede the SUBCHUNKS line.
  std::size_t pos = 0;
  while (pos + 2 <= payload.size() && payload[pos] == '-' &&
         payload[pos + 1] == '-') {
    std::size_t eol = payload.find('\n', pos);
    std::size_t len =
        eol == std::string::npos ? payload.size() - pos : eol - pos;
    std::string_view line(payload.data() + pos, len);
    if (util::startsWith(line, kHeader)) {
      for (const auto& part : util::split(line.substr(kHeader.size()), ',')) {
        auto token = util::trim(part);
        if (token.empty()) continue;
        out.push_back(
            static_cast<std::int32_t>(std::stol(std::string(token))));
      }
      return out;
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return out;
}

bool Worker::isAggregateQuery(const std::string& payload) {
  return payload.find("-- QSERV-AGG\n") != std::string::npos;
}

double Worker::rowBytesFor(const std::string& tableName) const {
  for (const auto& t : catalog_.tables) {
    if (tableName == t.name || util::startsWith(tableName, t.name + "_") ||
        util::startsWith(tableName, t.name + "Overlap_") ||
        util::startsWith(tableName, t.name + "FullOverlap_")) {
      return t.paperRowBytes;
    }
  }
  return 256.0;  // unknown tables: a modest default width
}

Result<sql::ExecStats> Worker::acquireSubchunks(
    std::int32_t chunkId, const std::vector<std::int32_t>& subChunks) {
  sql::ExecStats buildStats;
  if (subChunks.empty()) return buildStats;
  for (const auto& table : catalog_.tables) {
    if (!table.hasOverlap) continue;
    std::string chunkTable = datagen::chunkTableName(table.name, chunkId);
    if (!db_->hasTable(chunkTable)) continue;
    std::string overlapTable = datagen::overlapTableName(table.name, chunkId);

    for (std::int32_t sc : subChunks) {
      std::string key = datagen::subChunkTableName(table.name, chunkId, sc);
      // Refcounted build: exactly one task builds; others wait, then share.
      {
        std::unique_lock lock(subchunkMutex_);
        SubchunkState& state = subchunks_[key];
        subchunkCv_.wait(lock, [&] { return !state.building; });
        if (state.built) {
          ++state.refs;
          continue;
        }
        state.building = true;
      }

      // Build outside the lock.
      std::string fullOverlap = datagen::subChunkTableName(
          table.name + "FullOverlap", chunkId, sc);
      sphgeom::SphericalBox dilated =
          chunker_.subChunkBox(chunkId, sc).dilated(chunker_.overlapDeg());
      std::string boxArgs = util::format(
          "%.17g, %.17g, %.17g, %.17g", dilated.lonMin(), dilated.latMin(),
          dilated.isFullLon() ? 360.0 : dilated.lonMax(), dilated.latMax());
      // Neighboring subchunks that can contribute overlap rows; served by
      // the subChunkId index rather than a chunk scan.
      std::vector<std::string> neighborIds;
      for (std::int32_t n : chunker_.subChunksIntersecting(chunkId, dilated)) {
        if (n != sc) neighborIds.push_back(std::to_string(n));
      }
      std::string script =
          util::format("CREATE TABLE %s AS SELECT * FROM %s WHERE "
                       "subChunkId = %d;\n",
                       key.c_str(), chunkTable.c_str(), sc);
      script += util::format("CREATE TABLE %s AS SELECT * FROM %s;\n",
                             fullOverlap.c_str(), key.c_str());
      if (!neighborIds.empty()) {
        script += util::format(
            "INSERT INTO %s SELECT * FROM %s WHERE subChunkId IN (%s) AND "
            "qserv_ptInSphericalBox(%s, %s, %s) = 1;\n",
            fullOverlap.c_str(), chunkTable.c_str(),
            util::join(neighborIds, ", ").c_str(), table.raColumn.c_str(),
            table.declColumn.c_str(), boxArgs.c_str());
      }
      if (db_->hasTable(overlapTable)) {
        script += util::format(
            "INSERT INTO %s SELECT * FROM %s WHERE "
            "qserv_ptInSphericalBox(%s, %s, %s) = 1;\n",
            fullOverlap.c_str(), overlapTable.c_str(), table.raColumn.c_str(),
            table.declColumn.c_str(), boxArgs.c_str());
      }
      auto built = db_->executeScript(script, &buildStats);

      {
        std::lock_guard lock(subchunkMutex_);
        SubchunkState& state = subchunks_[key];
        state.building = false;
        if (built.isOk()) {
          state.built = true;
          ++state.refs;
          WorkerMetrics::instance().subchunkBuilds.add();
        } else {
          subchunks_.erase(key);
        }
      }
      subchunkCv_.notify_all();
      if (!built.isOk()) return built.status();
    }
  }
  return buildStats;
}

void Worker::releaseSubchunks(std::int32_t chunkId,
                              const std::vector<std::int32_t>& subChunks) {
  if (subChunks.empty()) return;
  for (const auto& table : catalog_.tables) {
    if (!table.hasOverlap) continue;
    if (!db_->hasTable(datagen::chunkTableName(table.name, chunkId))) continue;
    for (std::int32_t sc : subChunks) {
      std::string key = datagen::subChunkTableName(table.name, chunkId, sc);
      bool drop = false;
      {
        std::lock_guard lock(subchunkMutex_);
        auto it = subchunks_.find(key);
        if (it == subchunks_.end()) continue;
        if (--it->second.refs == 0 && !config_.cacheSubchunks) {
          drop = true;
          subchunks_.erase(it);
        }
      }
      if (drop) {
        (void)db_->execute("DROP TABLE IF EXISTS " + key);
        (void)db_->execute(
            "DROP TABLE IF EXISTS " +
            datagen::subChunkTableName(table.name + "FullOverlap", chunkId, sc));
        WorkerMetrics::instance().subchunkDrops.add();
      }
    }
  }
}

bool Worker::executeTask(const ScanTask& task, bool chargeScanIo) {
  auto& metrics = WorkerMetrics::instance();
  if (task.batch && task.batch->abandoned.load(std::memory_order_acquire)) {
    // The master abandoned the batch; don't waste the slot executing.
    metrics.batchChunksSkipped.add();
    finishBatchChunk(task.batch);
    return false;
  }
  util::TracePtr trace = util::TraceRegistry::instance().find(task.traceId);
  util::ScopedSpan execSpan(trace, "worker",
                            util::format("exec %d", task.chunkId));
  execSpan.attr("worker", id_);
  util::Stopwatch execWatch;
  std::string resultPath = xrd::makeResultPath(task.hash);
  std::vector<std::int32_t> subChunks = parseSubchunksHeader(task.payload);

  util::Result<sql::ExecStats> buildStats = sql::ExecStats{};
  {
    util::ScopedSpan buildSpan(
        subChunks.empty() ? util::TracePtr() : trace, "worker",
        util::format("subchunks %d", task.chunkId));
    util::Stopwatch buildWatch;
    buildStats = acquireSubchunks(task.chunkId, subChunks);
    if (!subChunks.empty()) {
      metrics.subchunkBuildSeconds.observe(buildWatch.elapsedSeconds());
      buildSpan.attr("subchunks",
                     static_cast<std::int64_t>(subChunks.size()));
    }
  }
  if (!buildStats.isOk()) {
    metrics.taskFailures.add();
    if (task.batch) {
      publishBatchFrame(task,
                        encodeErrorFrame(task.chunkId, buildStats.status()));
      finishBatchChunk(task.batch);
    } else {
      results_.publishError(resultPath, buildStats.status());
    }
    return false;
  }

  sql::ExecStats stats;
  auto result = db_->executeScript(task.payload, &stats);
  {
    util::Stopwatch dropWatch;
    releaseSubchunks(task.chunkId, subChunks);
    if (!subChunks.empty()) {
      metrics.subchunkDropSeconds.observe(dropWatch.elapsedSeconds());
    }
  }
  if (!result.isOk()) {
    QLOG(kWarn, "worker") << id_ << " chunk " << task.chunkId
                          << " failed: " << result.status().toString();
    metrics.taskFailures.add();
    if (task.batch) {
      publishBatchFrame(task, encodeErrorFrame(task.chunkId, result.status()));
      finishBatchChunk(task.batch);
    } else {
      results_.publishError(resultPath, result.status());
    }
    return false;
  }

  std::string dump =
      config_.transfer == TransferFormat::kBinary
          ? sql::encodeTableBinary(**result, "r_" + task.hash)
          : sql::dumpTable(**result, "r_" + task.hash);

  // Work observables at paper scale (see WorkerConfig::rowScale).
  simio::WorkObservables obs;
  const double scale = config_.rowScale;
  stats.add(buildStats.value());
  if (chargeScanIo) {
    for (const auto& [tableName, rows] : stats.rowsScannedByTable) {
      obs.bytesScanned +=
          static_cast<double>(rows) * rowBytesFor(tableName) * scale;
    }
  }
  obs.rowsExamined = static_cast<std::uint64_t>(
      static_cast<double>(stats.rowsScanned) * scale);
  // Nested-loop pair counts grow with the square of row density;
  // equi-join match counts grow linearly (each source matches one object).
  obs.pairsEvaluated = static_cast<std::uint64_t>(
      static_cast<double>(stats.pairsEvaluated) * scale * scale);
  obs.joinMatches = static_cast<std::uint64_t>(
      static_cast<double>(stats.joinMatches) * scale);
  obs.rowsBuilt = static_cast<std::uint64_t>(
      static_cast<double>(stats.rowsInserted) * scale);
  obs.indexLookups = stats.indexLookups;
  // Row-returning queries produce density-proportional results (scaled to
  // paper size); aggregate partials are scale-independent. Only the INSERT
  // payload scales — the dump envelope (header, DROP, CREATE) is fixed.
  const double resultScale = isAggregateQuery(task.payload) ? 1.0 : scale;
  obs.resultRows = static_cast<std::uint64_t>(
      static_cast<double>((*result)->numRows()) * resultScale);
  std::size_t envelope;
  if (config_.transfer == TransferFormat::kBinary) {
    envelope = std::min<std::size_t>(dump.size(), 64);
  } else {
    envelope = dump.find("INSERT");
    if (envelope == std::string::npos) envelope = dump.size();
  }
  obs.resultBytes =
      static_cast<double>(envelope) +
      static_cast<double>(dump.size() - envelope) * resultScale;

  dump += encodeObservables(obs);
  // Integrity envelope: MD5 of everything above, verified by the dispatcher
  // on read so corruption in transit is retried, not merged.
  appendDumpChecksum(dump);
  {
    std::lock_guard lock(obsMutex_);
    observables_[task.hash] = obs;
  }
  tasksExecuted_.fetch_add(1, std::memory_order_relaxed);
  metrics.tasksExecuted.add();
  metrics.executeSeconds.observe(execWatch.elapsedSeconds());
  // Vectorized-scan / zone-map observability (counters are unscaled local
  // work; see README "Metrics" for the registry names).
  if (stats.vectorizedScans > 0) {
    metrics.vectorizedScans.add(stats.vectorizedScans);
    metrics.vectorRowsIn.add(stats.vectorRowsIn);
    metrics.vectorRowsOut.add(stats.vectorRowsOut);
    execSpan.attr("vectorizedScans",
                  static_cast<std::int64_t>(stats.vectorizedScans))
        .attr("vectorRowsIn", static_cast<std::int64_t>(stats.vectorRowsIn))
        .attr("vectorRowsOut",
              static_cast<std::int64_t>(stats.vectorRowsOut));
  }
  if (stats.zoneMapPrunes > 0) {
    metrics.zoneMapPrunes.add(stats.zoneMapPrunes);
    metrics.zoneMapRowsSkipped.add(stats.zoneMapRowsSkipped);
    execSpan.attr("zoneMapPrunes",
                  static_cast<std::int64_t>(stats.zoneMapPrunes))
        .attr("zoneMapRowsSkipped",
              static_cast<std::int64_t>(stats.zoneMapRowsSkipped));
  }
  if (stats.spatialJoins > 0) {
    metrics.spatialJoins.add(stats.spatialJoins);
    metrics.zoneJoinPairsPruned.add(stats.zoneJoinPairsPruned);
    metrics.zoneJoinCandidates.add(stats.zoneJoinCandidates);
    execSpan.attr("spatialJoins",
                  static_cast<std::int64_t>(stats.spatialJoins))
        .attr("zoneJoinZonesBuilt",
              static_cast<std::int64_t>(stats.zoneJoinZonesBuilt))
        .attr("zoneJoinZonesProbed",
              static_cast<std::int64_t>(stats.zoneJoinZonesProbed))
        .attr("zoneJoinCandidates",
              static_cast<std::int64_t>(stats.zoneJoinCandidates))
        .attr("zoneJoinPairsPruned",
              static_cast<std::int64_t>(stats.zoneJoinPairsPruned));
  }
  execSpan.attr("resultRows",
                static_cast<std::int64_t>((*result)->numRows()))
      .attr("dumpBytes", static_cast<std::int64_t>(dump.size()));
  // Record the span BEFORE publishing: publish() unblocks the dispatcher's
  // result read, and the czar may snapshot the trace into a QueryProfile
  // right after — an exec span recorded by the RAII destructor (after
  // publish) could miss that snapshot.
  execSpan.end();
  if (task.batch) {
    publishBatchFrame(task, encodeResultFrame(task.chunkId, dump));
    finishBatchChunk(task.batch);
  } else {
    results_.publish(resultPath, std::move(dump));
  }
  return true;
}

}  // namespace qserv::core
