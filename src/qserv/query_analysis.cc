#include "qserv/query_analysis.h"

#include <algorithm>

#include "sql/parser.h"
#include "util/strings.h"

namespace qserv::core {

namespace {

using sql::BinaryExpr;
using sql::BinOp;
using sql::ColumnRef;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::FuncCall;
using sql::InExpr;
using sql::LiteralExpr;
using sql::SelectStmt;
using sql::UnaryExpr;
using util::Result;
using util::Status;

void flattenAnd(ExprPtr expr, std::vector<ExprPtr>& out) {
  if (expr->kind() == ExprKind::kBinary) {
    auto* b = static_cast<BinaryExpr*>(expr.get());
    if (b->op == BinOp::kAnd) {
      flattenAnd(std::move(b->lhs), out);
      flattenAnd(std::move(b->rhs), out);
      return;
    }
  }
  out.push_back(std::move(expr));
}

ExprPtr rebuildAnd(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (auto& c : conjuncts) {
    if (!out) {
      out = std::move(c);
    } else {
      out = std::make_unique<BinaryExpr>(BinOp::kAnd, std::move(out),
                                         std::move(c));
    }
  }
  return out;
}

/// Evaluate a numeric literal expression (allowing unary minus).
std::optional<double> literalNumber(const Expr& e) {
  if (e.kind() == ExprKind::kLiteral) {
    const auto& lit = static_cast<const LiteralExpr&>(e);
    if (lit.value.isNumeric()) return lit.value.toDouble();
    return std::nullopt;
  }
  if (e.kind() == ExprKind::kUnary) {
    const auto& u = static_cast<const UnaryExpr&>(e);
    if (u.op == sql::UnOp::kNeg) {
      auto inner = literalNumber(*u.operand);
      if (inner) return -*inner;
    }
  }
  return std::nullopt;
}

std::optional<std::int64_t> literalInt(const Expr& e) {
  if (e.kind() == ExprKind::kLiteral) {
    const auto& lit = static_cast<const LiteralExpr&>(e);
    if (lit.value.isInt()) return lit.value.asInt();
    return std::nullopt;
  }
  if (e.kind() == ExprKind::kUnary) {
    const auto& u = static_cast<const UnaryExpr&>(e);
    if (u.op == sql::UnOp::kNeg) {
      auto inner = literalInt(*u.operand);
      if (inner) return -*inner;
    }
  }
  return std::nullopt;
}

/// True anywhere a qserv_areaspec_box call occurs in \p e.
bool containsAreaspec(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCall&>(e);
      if (util::iequals(f.name, "qserv_areaspec_box")) return true;
      for (const auto& a : f.args) {
        if (a->kind() != ExprKind::kStar && containsAreaspec(*a)) return true;
      }
      return false;
    }
    case ExprKind::kUnary:
      return containsAreaspec(*static_cast<const UnaryExpr&>(e).operand);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return containsAreaspec(*b.lhs) || containsAreaspec(*b.rhs);
    }
    case ExprKind::kBetween: {
      const auto& b = static_cast<const sql::BetweenExpr&>(e);
      return containsAreaspec(*b.expr) || containsAreaspec(*b.lo) ||
             containsAreaspec(*b.hi);
    }
    case ExprKind::kIn: {
      const auto& i = static_cast<const InExpr&>(e);
      if (containsAreaspec(*i.expr)) return true;
      for (const auto& x : i.list) {
        if (containsAreaspec(*x)) return true;
      }
      return false;
    }
    case ExprKind::kIsNull:
      return containsAreaspec(*static_cast<const sql::IsNullExpr&>(e).expr);
    default:
      return false;
  }
}

/// Does this column reference name the id column of table \p t (respecting
/// the alias)?
bool refsIdColumn(const ColumnRef& col, const AnalyzedQuery::FromTable& t) {
  if (t.partitioned == nullptr || t.partitioned->idColumn.empty()) return false;
  if (!util::iequals(col.column, t.partitioned->idColumn)) return false;
  if (col.qualifier.empty()) return true;
  return util::iequals(col.qualifier, t.ref.bindingName());
}

}  // namespace

bool exprHasAggregate(const sql::Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCall&>(expr);
      if (f.isAggregate()) return true;
      for (const auto& a : f.args) {
        if (a->kind() != ExprKind::kStar && exprHasAggregate(*a)) return true;
      }
      return false;
    }
    case ExprKind::kUnary:
      return exprHasAggregate(*static_cast<const UnaryExpr&>(expr).operand);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return exprHasAggregate(*b.lhs) || exprHasAggregate(*b.rhs);
    }
    case ExprKind::kBetween: {
      const auto& b = static_cast<const sql::BetweenExpr&>(expr);
      return exprHasAggregate(*b.expr) || exprHasAggregate(*b.lo) ||
             exprHasAggregate(*b.hi);
    }
    case ExprKind::kIn: {
      const auto& i = static_cast<const InExpr&>(expr);
      if (exprHasAggregate(*i.expr)) return true;
      for (const auto& x : i.list) {
        if (exprHasAggregate(*x)) return true;
      }
      return false;
    }
    case ExprKind::kIsNull:
      return exprHasAggregate(*static_cast<const sql::IsNullExpr&>(expr).expr);
    default:
      return false;
  }
}

Result<AnalyzedQuery> analyzeQuery(const SelectStmt& stmt,
                                   const CatalogConfig& config) {
  AnalyzedQuery out;
  out.stmt = stmt.clone();

  // ---- table references --------------------------------------------------
  int partitionedCount = 0;
  for (const auto& ref : out.stmt.from) {
    AnalyzedQuery::FromTable ft;
    ft.ref = ref;
    ft.partitioned = config.findTable(ref.table);
    if (ft.partitioned != nullptr) ++partitionedCount;
    out.from.push_back(ft);
  }

  // Near-neighbor: exactly two FROM entries naming the same partitioned
  // table.
  if (out.from.size() == 2 && out.from[0].partitioned != nullptr &&
      out.from[0].partitioned == out.from[1].partitioned) {
    if (!out.from[0].partitioned->hasOverlap) {
      return Status::unimplemented(util::format(
          "self-join on %s requires overlap data, which it does not carry",
          out.from[0].partitioned->name.c_str()));
    }
    out.isNearNeighbor = true;
  } else if (partitionedCount > 2) {
    return Status::unimplemented(
        "joins of more than two partitioned tables are not supported");
  }

  // ---- aggregates ----------------------------------------------------------
  for (const auto& item : out.stmt.items) {
    if (item.expr->kind() != ExprKind::kStar && exprHasAggregate(*item.expr)) {
      out.hasAggregates = true;
    }
  }
  // GROUP BY and HAVING also require merge-side re-aggregation: group keys
  // (and HAVING predicates) span chunks, so chunk-local groups are partial.
  if (!out.stmt.groupBy.empty() || out.stmt.having != nullptr) {
    out.hasAggregates = true;
  }
  if (out.stmt.where && exprHasAggregate(*out.stmt.where)) {
    return Status::invalidArgument("aggregates are not allowed in WHERE");
  }

  // ---- WHERE analysis ------------------------------------------------------
  if (out.stmt.where) {
    std::vector<ExprPtr> conjuncts;
    flattenAnd(std::move(out.stmt.where), conjuncts);

    std::vector<ExprPtr> kept;
    for (auto& c : conjuncts) {
      // qserv_areaspec_box as a whole top-level conjunct.
      if (c->kind() == ExprKind::kFuncCall) {
        const auto& f = static_cast<const FuncCall&>(*c);
        if (util::iequals(f.name, "qserv_areaspec_box")) {
          if (out.areaRestriction) {
            return Status::unimplemented(
                "multiple qserv_areaspec_box restrictions");
          }
          if (f.args.size() != 4) {
            return Status::invalidArgument(
                "qserv_areaspec_box takes (lonMin, latMin, lonMax, latMax)");
          }
          double v[4];
          for (int i = 0; i < 4; ++i) {
            auto num = literalNumber(*f.args[static_cast<std::size_t>(i)]);
            if (!num) {
              return Status::invalidArgument(
                  "qserv_areaspec_box arguments must be numeric literals");
            }
            v[i] = *num;
          }
          out.areaRestriction = sphgeom::SphericalBox(v[0], v[1], v[2], v[3]);
          continue;  // frontend-only: removed from the worker WHERE
        }
      }
      // areaspec anywhere else (inside OR / NOT) is not a pure restriction.
      if (containsAreaspec(*c)) {
        return Status::unimplemented(
            "qserv_areaspec_box must be a top-level AND conjunct");
      }
      // objectId index opportunity: idColumn = N or idColumn IN (N, ...).
      if (c->kind() == ExprKind::kBinary) {
        const auto& b = static_cast<const BinaryExpr&>(*c);
        if (b.op == BinOp::kEq) {
          const ColumnRef* col = nullptr;
          const Expr* lit = nullptr;
          if (b.lhs->kind() == ExprKind::kColumnRef) {
            col = static_cast<const ColumnRef*>(b.lhs.get());
            lit = b.rhs.get();
          } else if (b.rhs->kind() == ExprKind::kColumnRef) {
            col = static_cast<const ColumnRef*>(b.rhs.get());
            lit = b.lhs.get();
          }
          if (col != nullptr) {
            for (const auto& t : out.from) {
              if (refsIdColumn(*col, t)) {
                if (auto id = literalInt(*lit)) {
                  out.restrictedObjectIds.push_back(*id);
                }
                break;
              }
            }
          }
        }
      } else if (c->kind() == ExprKind::kIn) {
        const auto& in = static_cast<const InExpr&>(*c);
        if (!in.negated && in.expr->kind() == ExprKind::kColumnRef) {
          const auto& col = static_cast<const ColumnRef&>(*in.expr);
          for (const auto& t : out.from) {
            if (refsIdColumn(col, t)) {
              std::vector<std::int64_t> ids;
              bool allInts = true;
              for (const auto& item : in.list) {
                auto id = literalInt(*item);
                if (!id) {
                  allInts = false;
                  break;
                }
                ids.push_back(*id);
              }
              if (allInts) {
                out.restrictedObjectIds.insert(out.restrictedObjectIds.end(),
                                               ids.begin(), ids.end());
              }
              break;
            }
          }
        }
      }
      kept.push_back(std::move(c));
    }

    // Spatial pruning from plain predicates: `<raCol> BETWEEN a AND b` /
    // `<declCol> BETWEEN a AND b` on a partitioned table's partitioning
    // columns restrict the chunk cover just like qserv_areaspec_box (the
    // paper's LV3 runs interactively precisely because its BETWEEN box
    // "prevents spatial queries from becoming full-sky queries", §5.3).
    // The conjuncts stay in the WHERE — chunk pruning is coarse.
    if (!out.areaRestriction) {
      std::optional<std::pair<double, double>> raRange, declRange;
      for (const auto& c : kept) {
        if (c->kind() != ExprKind::kBetween) continue;
        const auto& b = static_cast<const sql::BetweenExpr&>(*c);
        if (b.negated || b.expr->kind() != ExprKind::kColumnRef) continue;
        const auto& col = static_cast<const ColumnRef&>(*b.expr);
        auto lo = literalNumber(*b.lo);
        auto hi = literalNumber(*b.hi);
        if (!lo || !hi) continue;
        for (const auto& t : out.from) {
          if (t.partitioned == nullptr) continue;
          bool qualifierOk =
              col.qualifier.empty() ||
              util::iequals(col.qualifier, t.ref.bindingName());
          if (!qualifierOk) continue;
          if (util::iequals(col.column, t.partitioned->raColumn)) {
            raRange = {*lo, *hi};
          } else if (util::iequals(col.column, t.partitioned->declColumn)) {
            declRange = {*lo, *hi};
          }
        }
      }
      if (raRange || declRange) {
        double lonMin = raRange ? raRange->first : 0.0;
        double lonMax = raRange ? raRange->second : 360.0;
        double latMin = declRange ? declRange->first : -90.0;
        double latMax = declRange ? declRange->second : 90.0;
        out.areaRestriction =
            sphgeom::SphericalBox(lonMin, latMin, lonMax, latMax);
        out.areaRestrictionIsImplicit = true;
      }
    }
    out.stmt.where = rebuildAnd(std::move(kept));
  }

  std::sort(out.restrictedObjectIds.begin(), out.restrictedObjectIds.end());
  out.restrictedObjectIds.erase(
      std::unique(out.restrictedObjectIds.begin(),
                  out.restrictedObjectIds.end()),
      out.restrictedObjectIds.end());
  return out;
}

Result<AnalyzedQuery> analyzeQuery(std::string_view sql,
                                   const CatalogConfig& config) {
  QSERV_ASSIGN_OR_RETURN(SelectStmt stmt, sql::parseSelect(sql));
  return analyzeQuery(stmt, config);
}

QueryClass deriveQueryClass(const AnalyzedQuery& analyzed,
                            std::size_t chunkCount) {
  // Frontend-only queries never reach a worker queue; classify them (and
  // anything else the pruning narrowed to a single chunk) as interactive.
  if (!analyzed.touchesPartitioned()) return QueryClass::kInteractive;
  if (!analyzed.restrictedObjectIds.empty()) return QueryClass::kInteractive;
  if (chunkCount <= 1) return QueryClass::kInteractive;
  return QueryClass::kScan;
}

}  // namespace qserv::core
