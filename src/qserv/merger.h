/// \file merger.h
/// \brief Frontend result merging (paper §5.4, "Query Results Transfer").
///
/// "The worker executes mysqldump on the result table and the resulting
/// byte stream is read byte-for-byte by the master, which executes the SQL
/// statements to load results into its local database. After each result
/// table is loaded, it is merged into a table which serves as the final
/// result table for non-aggregating queries. When aggregation is needed, an
/// aggregation query is executed on this table to produce the final result
/// table."
#pragma once

#include <string>

#include "sql/database.h"
#include "util/trace.h"

namespace qserv::core {

class ResultMerger {
 public:
  /// Merges into table \p mergeTable of a private per-query database (so
  /// concurrent user queries never collide on temp table names). When
  /// \p trace is set, per-dump replay and finalize spans are recorded under
  /// the "merger" component.
  explicit ResultMerger(std::string mergeTable,
                        util::TracePtr trace = nullptr);
  ~ResultMerger();

  ResultMerger(const ResultMerger&) = delete;
  ResultMerger& operator=(const ResultMerger&) = delete;

  /// Replay one chunk dump and fold its rows into the merge table. Accepts
  /// both the paper's SQL-dump stream and the §7.1 binary codec (the magic
  /// prefix disambiguates).
  util::Status mergeDump(const std::string& dump);

  /// Binary-only merge used by the batched streaming path: identical to
  /// mergeDump but rejects a payload that is not in rowcodec format instead
  /// of silently replaying SQL text.
  util::Status mergeBinary(const std::string& payload);

  /// Run the final SELECT (plain union passthrough or the aggregation
  /// query) against the merge table.
  util::Result<sql::TablePtr> finalize(const std::string& finalSelectSql);

  std::uint64_t rowsMerged() const { return rowsMerged_; }
  const std::string& mergeTable() const { return mergeTable_; }

 private:
  sql::Database db_;
  std::string mergeTable_;
  util::TracePtr trace_;
  bool created_ = false;
  std::uint64_t rowsMerged_ = 0;
};

}  // namespace qserv::core
