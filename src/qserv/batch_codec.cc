#include "qserv/batch_codec.h"

#include "util/strings.h"

namespace qserv::core {

using util::Result;
using util::Status;

namespace {

constexpr std::string_view kBatchHeader = "-- QSERV-BATCH ";
constexpr std::string_view kChunkHeader = "--#CHUNK ";
constexpr std::string_view kFrameHeader = "--#FRAME ";

/// Parse a non-negative decimal integer starting at \p pos; advances \p pos
/// past it. Returns -1 when no digits are present or the value overflows.
std::int64_t parseInt(const std::string& s, std::size_t& pos) {
  std::size_t start = pos;
  std::int64_t value = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    value = value * 10 + (s[pos] - '0');
    if (value > INT32_MAX) return -1;
    ++pos;
  }
  return pos == start ? -1 : value;
}

bool skipChar(const std::string& s, std::size_t& pos, char c) {
  if (pos >= s.size() || s[pos] != c) return false;
  ++pos;
  return true;
}

}  // namespace

std::string encodeBatchRequest(const std::vector<BatchChunkRequest>& chunks,
                               int streamWindow) {
  std::size_t total = 64;
  for (const auto& c : chunks) total += c.payload.size() + 32;
  std::string out;
  out.reserve(total);
  out += util::format("%s%zu %d\n", std::string(kBatchHeader).c_str(),
                      chunks.size(), streamWindow);
  for (const auto& c : chunks) {
    out += util::format("%s%d %zu\n", std::string(kChunkHeader).c_str(),
                        c.chunkId, c.payload.size());
    out += c.payload;
    out += '\n';
  }
  return out;
}

Result<BatchRequest> decodeBatchRequest(const std::string& payload) {
  std::size_t pos = 0;
  if (payload.compare(0, kBatchHeader.size(), kBatchHeader) != 0) {
    return Status::invalidArgument("batch request: missing header");
  }
  pos = kBatchHeader.size();
  std::int64_t count = parseInt(payload, pos);
  if (count < 0 || !skipChar(payload, pos, ' ')) {
    return Status::invalidArgument("batch request: bad chunk count");
  }
  std::int64_t window = parseInt(payload, pos);
  if (window < 0 || !skipChar(payload, pos, '\n')) {
    return Status::invalidArgument("batch request: bad stream window");
  }
  BatchRequest out;
  out.streamWindow = static_cast<int>(window);
  out.chunks.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    if (payload.compare(pos, kChunkHeader.size(), kChunkHeader) != 0) {
      return Status::invalidArgument(
          util::format("batch request: missing chunk frame %lld",
                       static_cast<long long>(i)));
    }
    pos += kChunkHeader.size();
    std::int64_t chunkId = parseInt(payload, pos);
    if (chunkId < 0 || !skipChar(payload, pos, ' ')) {
      return Status::invalidArgument("batch request: bad chunk id");
    }
    std::int64_t len = parseInt(payload, pos);
    if (len < 0 || !skipChar(payload, pos, '\n') ||
        pos + static_cast<std::size_t>(len) > payload.size()) {
      return Status::invalidArgument(
          util::format("batch request: bad payload length for chunk %lld",
                       static_cast<long long>(chunkId)));
    }
    BatchChunkRequest chunk;
    chunk.chunkId = static_cast<std::int32_t>(chunkId);
    chunk.payload = payload.substr(pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    if (!skipChar(payload, pos, '\n')) {
      return Status::invalidArgument("batch request: missing frame separator");
    }
    out.chunks.push_back(std::move(chunk));
  }
  if (pos != payload.size()) {
    return Status::invalidArgument("batch request: trailing bytes");
  }
  return out;
}

std::string encodeResultFrame(std::int32_t chunkId, const std::string& dump) {
  std::string out;
  out.reserve(dump.size() + 32);
  out += util::format("%s%d ok %zu\n", std::string(kFrameHeader).c_str(),
                      chunkId, dump.size());
  out += dump;
  return out;
}

std::string encodeErrorFrame(std::int32_t chunkId,
                             const util::Status& status) {
  const std::string& msg = status.message();
  std::string out;
  out.reserve(msg.size() + 32);
  out += util::format("%s%d err %d %zu\n", std::string(kFrameHeader).c_str(),
                      chunkId, static_cast<int>(status.code()), msg.size());
  out += msg;
  return out;
}

Result<BatchResultFrame> decodeResultFrame(const std::string& frame) {
  // Header damage is kDataLoss: the frame's chunk cannot be attributed and
  // must be re-fetched; body damage is caught by the per-chunk MD5 trailer.
  if (frame.compare(0, kFrameHeader.size(), kFrameHeader) != 0) {
    return Status::dataLoss("batch stream: damaged frame header");
  }
  std::size_t pos = kFrameHeader.size();
  std::int64_t chunkId = parseInt(frame, pos);
  if (chunkId < 0 || !skipChar(frame, pos, ' ')) {
    return Status::dataLoss("batch stream: damaged frame chunk id");
  }
  BatchResultFrame out;
  out.chunkId = static_cast<std::int32_t>(chunkId);
  bool ok;
  if (frame.compare(pos, 3, "ok ") == 0) {
    ok = true;
    pos += 3;
  } else if (frame.compare(pos, 4, "err ") == 0) {
    ok = false;
    pos += 4;
  } else {
    return Status::dataLoss("batch stream: damaged frame disposition");
  }
  std::int64_t code = 0;
  if (!ok) {
    code = parseInt(frame, pos);
    if (code < 0 || !skipChar(frame, pos, ' ')) {
      return Status::dataLoss("batch stream: damaged frame error code");
    }
  }
  std::int64_t len = parseInt(frame, pos);
  if (len < 0 || !skipChar(frame, pos, '\n') ||
      pos + static_cast<std::size_t>(len) != frame.size()) {
    return Status::dataLoss("batch stream: damaged frame length");
  }
  if (ok) {
    out.status = Status::ok();
    out.body = frame.substr(pos);
  } else {
    out.status = Status(static_cast<util::ErrorCode>(code), frame.substr(pos));
    if (out.status.isOk()) {
      // An error frame must not decode to OK (code damaged to 0).
      return Status::dataLoss("batch stream: error frame with ok code");
    }
  }
  return out;
}

}  // namespace qserv::core
