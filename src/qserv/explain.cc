#include "qserv/explain.h"

#include <set>

#include "sql/vector_eval.h"
#include "util/strings.h"

namespace qserv::core {

namespace {

using sql::BinaryExpr;
using sql::BinOp;
using sql::ColumnRef;
using sql::Expr;
using sql::ExprKind;
using sql::FuncCall;

/// Flatten the AND tree of \p e into conjuncts.
void splitConjuncts(const Expr& e, std::vector<const Expr*>& out) {
  if (e.kind() == ExprKind::kBinary) {
    const auto* b = static_cast<const BinaryExpr*>(&e);
    if (b->op == BinOp::kAnd) {
      splitConjuncts(*b->lhs, out);
      splitConjuncts(*b->rhs, out);
      return;
    }
  }
  out.push_back(&e);
}

/// Collect the qualifiers of every column reference under \p e (lowercased;
/// unqualified references collect as "").
void collectQualifiers(const Expr& e, std::set<std::string>& out) {
  switch (e.kind()) {
    case ExprKind::kColumnRef:
      out.insert(util::toLower(static_cast<const ColumnRef&>(e).qualifier));
      return;
    case ExprKind::kUnary:
      collectQualifiers(*static_cast<const sql::UnaryExpr&>(e).operand, out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      collectQualifiers(*b.lhs, out);
      collectQualifiers(*b.rhs, out);
      return;
    }
    case ExprKind::kFuncCall:
      for (const auto& a : static_cast<const FuncCall&>(e).args) {
        collectQualifiers(*a, out);
      }
      return;
    case ExprKind::kBetween: {
      const auto& b = static_cast<const sql::BetweenExpr&>(e);
      collectQualifiers(*b.expr, out);
      collectQualifiers(*b.lo, out);
      collectQualifiers(*b.hi, out);
      return;
    }
    case ExprKind::kIn: {
      const auto& in = static_cast<const sql::InExpr&>(e);
      collectQualifiers(*in.expr, out);
      for (const auto& item : in.list) collectQualifiers(*item, out);
      return;
    }
    case ExprKind::kIsNull:
      collectQualifiers(*static_cast<const sql::IsNullExpr&>(e).expr, out);
      return;
    default:
      return;  // literal / star / slot: no columns
  }
}

/// True when every column under \p e is qualified and all qualifiers equal
/// \p binding (lowercase) — i.e. the side references exactly one table.
bool referencesOnly(const Expr& e, const std::string& binding) {
  std::set<std::string> quals;
  collectQualifiers(e, quals);
  return quals.size() == 1 && *quals.begin() == binding;
}

bool referencesAnyColumn(const Expr& e) {
  std::set<std::string> quals;
  collectQualifiers(e, quals);
  return !quals.empty();
}

/// Numeric literal, possibly negated (the constant shapes the scan-filter
/// kernels accept without falling back to the scalar binder).
bool isNumericConst(const Expr& e) {
  if (e.kind() == ExprKind::kLiteral) {
    const auto& v = static_cast<const sql::LiteralExpr&>(e).value;
    return v.type() == sql::ValueType::kInt ||
           v.type() == sql::ValueType::kDouble;
  }
  if (e.kind() == ExprKind::kUnary) {
    const auto& u = static_cast<const sql::UnaryExpr&>(e);
    return u.op == sql::UnOp::kNeg && isNumericConst(*u.operand);
  }
  return false;
}

bool isComparisonOp(BinOp op) {
  return op == BinOp::kEq || op == BinOp::kNe || op == BinOp::kLt ||
         op == BinOp::kLe || op == BinOp::kGt || op == BinOp::kGe;
}

/// Scan-filter kernel shapes (sql/vector_eval.h): col cmp const,
/// col BETWEEN consts, col IN (consts), col IS [NOT] NULL. Returns the
/// column name when the conjunct compiles to a kernel, nullopt otherwise.
std::optional<std::string> kernelColumn(const Expr& e) {
  auto columnOf = [](const Expr& side) -> const ColumnRef* {
    return side.kind() == ExprKind::kColumnRef
               ? static_cast<const ColumnRef*>(&side)
               : nullptr;
  };
  switch (e.kind()) {
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      if (!isComparisonOp(b.op)) return std::nullopt;
      if (const auto* c = columnOf(*b.lhs); c && isNumericConst(*b.rhs)) {
        return c->column;
      }
      if (const auto* c = columnOf(*b.rhs); c && isNumericConst(*b.lhs)) {
        return c->column;
      }
      return std::nullopt;
    }
    case ExprKind::kBetween: {
      const auto& b = static_cast<const sql::BetweenExpr&>(e);
      const auto* c = columnOf(*b.expr);
      if (c && isNumericConst(*b.lo) && isNumericConst(*b.hi)) {
        return c->column;
      }
      return std::nullopt;
    }
    case ExprKind::kIn: {
      const auto& in = static_cast<const sql::InExpr&>(e);
      const auto* c = columnOf(*in.expr);
      if (!c) return std::nullopt;
      for (const auto& item : in.list) {
        if (!isNumericConst(*item)) return std::nullopt;
      }
      return c->column;
    }
    case ExprKind::kIsNull: {
      const auto* c = columnOf(*static_cast<const sql::IsNullExpr&>(e).expr);
      if (c) return c->column;
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

/// IS NULL kernels consult only the null count; range pruning needs a
/// cmp/between/in kernel.
bool isRangePrunable(const Expr& e) {
  return e.kind() == ExprKind::kBinary || e.kind() == ExprKind::kBetween ||
         e.kind() == ExprKind::kIn;
}

bool isAngSepCall(const Expr& e) {
  if (e.kind() != ExprKind::kFuncCall) return false;
  const auto& f = static_cast<const FuncCall&>(e);
  return util::iequals(f.name, "qserv_angSep") ||
         util::iequals(f.name, "scisql_angSep");
}

/// angSep(...) < r in either orientation (sql::matchSpatialJoin's shape).
bool isSpatialJoinConjunct(const Expr& e) {
  if (e.kind() != ExprKind::kBinary) return false;
  const auto& b = static_cast<const BinaryExpr&>(e);
  if ((b.op == BinOp::kLt || b.op == BinOp::kLe) && isAngSepCall(*b.lhs)) {
    return true;
  }
  if ((b.op == BinOp::kGt || b.op == BinOp::kGe) && isAngSepCall(*b.rhs)) {
    return true;
  }
  return false;
}

std::string classifyPruning(const AnalyzedQuery& analyzed,
                            std::span<const std::int32_t> chunks) {
  if (!analyzed.touchesPartitioned()) {
    return "none (frontend-only: no partitioned table)";
  }
  if (!analyzed.restrictedObjectIds.empty()) {
    return util::format("secondary-index (%zu objectIds -> %zu chunks)",
                        analyzed.restrictedObjectIds.size(), chunks.size());
  }
  if (analyzed.areaRestriction) {
    return util::format(
        "spatial cover (%s restriction -> %zu chunks)",
        analyzed.areaRestrictionIsImplicit ? "implicit predicate"
                                           : "qserv_areaspec_box",
        chunks.size());
  }
  return util::format("full sky (%zu chunks)", chunks.size());
}

std::string classifyJoin(const AnalyzedQuery& analyzed) {
  if (analyzed.from.size() < 2) return "none (single table)";
  std::vector<const Expr*> conjuncts;
  if (analyzed.stmt.where) splitConjuncts(*analyzed.stmt.where, conjuncts);

  // Mirror the executor's stage test order: equi key first, then the
  // zone-based spatial join, then the nested-loop fallback.
  for (std::size_t t = 1; t < analyzed.from.size(); ++t) {
    const std::string binding =
        util::toLower(analyzed.from[t].ref.bindingName());
    for (const Expr* c : conjuncts) {
      if (c->kind() != ExprKind::kBinary) continue;
      const auto* b = static_cast<const BinaryExpr*>(c);
      if (b->op != BinOp::kEq) continue;
      bool lhsIsT = referencesOnly(*b->lhs, binding);
      bool rhsIsT = referencesOnly(*b->rhs, binding);
      if ((lhsIsT && !rhsIsT && referencesAnyColumn(*b->rhs)) ||
          (rhsIsT && !lhsIsT && referencesAnyColumn(*b->lhs))) {
        return util::format("hash (equi key %s)", c->toSql().c_str());
      }
    }
  }
  for (const Expr* c : conjuncts) {
    if (!isSpatialJoinConjunct(*c)) continue;
    std::set<std::string> quals;
    collectQualifiers(*c, quals);
    if (quals.size() < 2) continue;  // single-table: a plain filter
    if (analyzed.isNearNeighbor) {
      return "zone (near-neighbor self-join over subchunk + overlap tables)";
    }
    return util::format("zone (%s)", c->toSql().c_str());
  }
  return "nested loop (no equi or spatial join key)";
}

void classifyFilter(const AnalyzedQuery& analyzed, ExplainPlan& plan) {
  if (!analyzed.stmt.where) {
    plan.filter = "none (no WHERE clause)";
    plan.zoneMap = "not eligible (no kernel conjuncts)";
    return;
  }
  std::vector<const Expr*> conjuncts;
  splitConjuncts(*analyzed.stmt.where, conjuncts);
  std::size_t kernels = 0, residuals = 0;
  std::set<std::string> prunableColumns;
  for (const Expr* c : conjuncts) {
    std::set<std::string> quals;
    collectQualifiers(*c, quals);
    if (quals.size() > 1) continue;  // join conjunct, not a scan filter
    if (auto col = kernelColumn(*c)) {
      ++kernels;
      if (isRangePrunable(*c)) prunableColumns.insert(*col);
    } else {
      ++residuals;
    }
  }
  std::string state =
      sql::vectorizedFilterEnabled() ? "vectorized" : "vectorization off";
  if (kernels == 0 && residuals == 0) {
    plan.filter = "none (join conjuncts only)";
  } else if (kernels == 0) {
    plan.filter = util::format(
        "scalar fallback (%zu conjuncts, none kernel-shaped)", residuals);
  } else {
    plan.filter = util::format(
        "%s (%zu kernel conjuncts, %zu scalar residuals)", state.c_str(),
        kernels, residuals);
  }
  if (prunableColumns.empty()) {
    plan.zoneMap = "not eligible (no range-prunable kernel conjunct)";
  } else {
    std::vector<std::string> cols(prunableColumns.begin(),
                                  prunableColumns.end());
    plan.zoneMap =
        util::format("eligible (%s)", util::join(cols, ", ").c_str());
  }
}

}  // namespace

ExplainPlan buildExplainPlan(const AnalyzedQuery& analyzed,
                             std::span<const std::int32_t> chunks,
                             const RewriteResult* rewrite,
                             std::string dispatchDesc) {
  ExplainPlan plan;
  plan.dispatch = std::move(dispatchDesc);
  plan.statement = analyzed.stmt.toSql();
  plan.pruning = classifyPruning(analyzed, chunks);
  plan.chunkCount = static_cast<std::int64_t>(chunks.size());
  if (rewrite && !rewrite->chunkQueries.empty()) {
    plan.chunkTemplate = rewrite->chunkQueries.front().text;
  }
  plan.joinStrategy = classifyJoin(analyzed);
  classifyFilter(analyzed, plan);
  QueryClass cls = deriveQueryClass(analyzed, chunks.size());
  plan.scheduler =
      cls == QueryClass::kInteractive
          ? "interactive (priority lane, bypasses scan groups)"
          : "scan (shared-scan lane: same-chunk passes, memory budget)";
  if (!analyzed.touchesPartitioned()) {
    plan.merge = "none (executes on the frontend metadata DB)";
  } else if (rewrite) {
    plan.merge = util::format(
        "%s: %s", rewrite->merge.hasAggregation ? "aggregate merge"
                                                : "union merge",
        rewrite->merge.finalSelectSql.c_str());
  }
  return plan;
}

sql::TablePtr ExplainPlan::toTable() const {
  sql::Schema schema({{"property", sql::ColumnType::kString},
                      {"value", sql::ColumnType::kString}});
  auto table = std::make_shared<sql::Table>("explain", schema);
  auto add = [&](const std::string& property, const std::string& value) {
    sql::Value row[] = {property, value};
    (void)table->appendRow(row);
  };
  add("statement", statement);
  add("pruning", pruning);
  add("chunks", util::format("%lld", static_cast<long long>(chunkCount)));
  add("chunk template", chunkTemplate);
  add("join strategy", joinStrategy);
  add("filter", filter);
  add("zone map", zoneMap);
  add("merge", merge);
  if (!dispatch.empty()) add("dispatch", dispatch);
  add("scheduler", scheduler);
  return table;
}

}  // namespace qserv::core
