/// \file explain.h
/// \brief Plan introspection for `EXPLAIN <select>` (no execution).
///
/// Classifies a query exactly the way the frontend and workers will treat
/// it — pruning decision (secondary index / spatial cover / full sky),
/// chunk count, rewritten chunk template, join strategy (zone / hash /
/// nested loop), and the vectorized-vs-fallback scan-filter split with
/// zone-map eligibility — by mirroring the executor's structural rules over
/// the analyzed AST. The classification is static: the worker makes the
/// final call at run time (it sees column types and data), but the shapes
/// tested here are the same ones sql/vector_eval.cc and the executor's join
/// stage test.
#pragma once

#include <span>
#include <string>

#include "qserv/query_analysis.h"
#include "qserv/query_rewriter.h"
#include "sql/table.h"

namespace qserv::core {

/// The plan `EXPLAIN` renders, one classified property per field.
struct ExplainPlan {
  std::string statement;      ///< normalized (re-serialized) SELECT
  std::string pruning;        ///< secondary-index / spatial cover / full sky
  std::int64_t chunkCount = 0;
  std::string chunkTemplate;  ///< first rewritten chunk query ("" if none)
  std::string joinStrategy;   ///< zone / hash / nested loop / none
  std::string filter;         ///< vectorized-kernel vs scalar-residual split
  std::string zoneMap;        ///< zone-map pruning eligibility
  std::string merge;          ///< merge/final-aggregation plan
  std::string dispatch;       ///< batched-vs-per-chunk strategy and shape
  std::string scheduler;      ///< worker scheduler class (interactive/scan)

  /// Two-column (property, value) result table.
  sql::TablePtr toTable() const;
};

/// Build the plan for \p analyzed. \p chunks is the pruned chunk set and
/// \p rewrite the rewrite result; pass rewrite == nullptr for frontend-only
/// queries (no partitioned table). \p dispatchDesc describes the dispatch
/// strategy (mode, batches per worker, chunks per batch); empty when the
/// query never reaches the dispatcher.
ExplainPlan buildExplainPlan(const AnalyzedQuery& analyzed,
                             std::span<const std::int32_t> chunks,
                             const RewriteResult* rewrite,
                             std::string dispatchDesc = {});

}  // namespace qserv::core
