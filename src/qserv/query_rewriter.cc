#include "qserv/query_rewriter.h"

#include <algorithm>

#include "datagen/partitioner.h"
#include "util/strings.h"

namespace qserv::core {

namespace {

using sql::BinaryExpr;
using sql::BinOp;
using sql::ColumnRef;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::FuncCall;
using sql::LiteralExpr;
using sql::SelectItem;
using sql::SelectStmt;
using sql::TableRef;
using sql::Value;
using util::Result;
using util::Status;

ExprPtr makeColumn(const std::string& name) {
  return std::make_unique<ColumnRef>("", name);
}

ExprPtr makeAggCall(const char* name, ExprPtr arg) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(arg));
  return std::make_unique<FuncCall>(name, std::move(args));
}

/// Rewrites aggregate calls inside one select-item expression.
/// For each aggregate encountered, appends chunk-side partial items to
/// \p chunkItems and returns the merge-side expression.
class AggregateSplitter {
 public:
  explicit AggregateSplitter(std::vector<SelectItem>& chunkItems)
      : chunkItems_(chunkItems) {}

  Result<ExprPtr> split(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::kFuncCall: {
        const auto& f = static_cast<const FuncCall&>(expr);
        if (f.isAggregate()) return splitAggregate(f);
        std::vector<ExprPtr> args;
        for (const auto& a : f.args) {
          QSERV_ASSIGN_OR_RETURN(auto s, split(*a));
          args.push_back(std::move(s));
        }
        return ExprPtr(std::make_unique<FuncCall>(f.name, std::move(args)));
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const sql::UnaryExpr&>(expr);
        QSERV_ASSIGN_OR_RETURN(auto s, split(*u.operand));
        return ExprPtr(std::make_unique<sql::UnaryExpr>(u.op, std::move(s)));
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        QSERV_ASSIGN_OR_RETURN(auto l, split(*b.lhs));
        QSERV_ASSIGN_OR_RETURN(auto r, split(*b.rhs));
        return ExprPtr(std::make_unique<BinaryExpr>(b.op, std::move(l),
                                                    std::move(r)));
      }
      case ExprKind::kBetween: {
        const auto& b = static_cast<const sql::BetweenExpr&>(expr);
        QSERV_ASSIGN_OR_RETURN(auto e, split(*b.expr));
        QSERV_ASSIGN_OR_RETURN(auto lo, split(*b.lo));
        QSERV_ASSIGN_OR_RETURN(auto hi, split(*b.hi));
        return ExprPtr(std::make_unique<sql::BetweenExpr>(
            std::move(e), std::move(lo), std::move(hi), b.negated));
      }
      case ExprKind::kIn: {
        const auto& i = static_cast<const sql::InExpr&>(expr);
        QSERV_ASSIGN_OR_RETURN(auto e, split(*i.expr));
        std::vector<ExprPtr> list;
        for (const auto& x : i.list) {
          QSERV_ASSIGN_OR_RETURN(auto s, split(*x));
          list.push_back(std::move(s));
        }
        return ExprPtr(std::make_unique<sql::InExpr>(std::move(e),
                                                     std::move(list),
                                                     i.negated));
      }
      case ExprKind::kIsNull: {
        const auto& n = static_cast<const sql::IsNullExpr&>(expr);
        QSERV_ASSIGN_OR_RETURN(auto e, split(*n.expr));
        return ExprPtr(std::make_unique<sql::IsNullExpr>(std::move(e),
                                                         n.negated));
      }
      default:
        return expr.clone();
    }
  }

 private:
  Result<ExprPtr> splitAggregate(const FuncCall& f) {
    if (f.args.size() != 1) {
      return Status::invalidArgument(
          util::format("%s() takes exactly one argument", f.name.c_str()));
    }
    const Expr& arg = *f.args[0];
    if (arg.kind() != ExprKind::kStar && exprHasAggregate(arg)) {
      return Status::invalidArgument("nested aggregate functions");
    }
    int k = next_++;
    std::string base = util::format("QS%d_", k);
    auto addChunkItem = [&](const char* agg, const std::string& name) {
      SelectItem item;
      item.expr = makeAggCall(agg, f.args[0]->clone());
      item.alias = name;
      chunkItems_.push_back(std::move(item));
    };
    if (util::iequals(f.name, "COUNT")) {
      addChunkItem("COUNT", base + "COUNT");
      return ExprPtr(makeAggCall("SUM", makeColumn(base + "COUNT")));
    }
    if (util::iequals(f.name, "SUM")) {
      addChunkItem("SUM", base + "SUM");
      return ExprPtr(makeAggCall("SUM", makeColumn(base + "SUM")));
    }
    if (util::iequals(f.name, "AVG")) {
      // The paper's worked example: AVG -> SUM + COUNT per chunk, then
      // SUM(`SUM(..)`) / SUM(`COUNT(..)`) at the merge.
      addChunkItem("SUM", base + "SUM");
      addChunkItem("COUNT", base + "COUNT");
      return ExprPtr(std::make_unique<BinaryExpr>(
          BinOp::kDiv, makeAggCall("SUM", makeColumn(base + "SUM")),
          makeAggCall("SUM", makeColumn(base + "COUNT"))));
    }
    if (util::iequals(f.name, "MIN")) {
      addChunkItem("MIN", base + "MIN");
      return ExprPtr(makeAggCall("MIN", makeColumn(base + "MIN")));
    }
    // MAX
    addChunkItem("MAX", base + "MAX");
    return ExprPtr(makeAggCall("MAX", makeColumn(base + "MAX")));
  }

  std::vector<SelectItem>& chunkItems_;
  int next_ = 0;
};

/// Output name of a select item (alias, or serialized expression).
std::string outName(const SelectItem& item) {
  return item.alias.empty() ? item.expr->toSql() : item.alias;
}

}  // namespace

Result<RewriteResult> QueryRewriter::rewrite(
    const AnalyzedQuery& analyzed, std::span<const std::int32_t> chunks,
    const std::string& mergeTableName) const {
  RewriteResult out;
  const SelectStmt& src = analyzed.stmt;

  // -------------------------------------------------------- select lists
  // Build the chunk-side select list and the merge-side select list.
  std::vector<SelectItem> chunkItems;
  std::vector<SelectItem> mergeItems;
  std::vector<std::string> passthroughNames;  // chunk output column names
  out.merge.hasAggregation = analyzed.hasAggregates;

  if (analyzed.hasAggregates && src.distinct) {
    return Status::unimplemented("SELECT DISTINCT with aggregates");
  }
  ExprPtr mergeHaving;
  if (analyzed.hasAggregates) {
    AggregateSplitter splitter(chunkItems);
    for (const auto& item : src.items) {
      if (item.expr->kind() == ExprKind::kStar) {
        return Status::invalidArgument("'*' cannot be mixed with aggregates");
      }
      if (exprHasAggregate(*item.expr)) {
        SelectItem mergeItem;
        QSERV_ASSIGN_OR_RETURN(mergeItem.expr, splitter.split(*item.expr));
        mergeItem.alias = outName(item);
        mergeItems.push_back(std::move(mergeItem));
      } else {
        // Group-key passthrough: ship the value per chunk, re-select at
        // the merge.
        SelectItem chunkItem = item.clone();
        std::string name = outName(item);
        chunkItem.alias = name;
        chunkItems.push_back(std::move(chunkItem));
        passthroughNames.push_back(name);
        SelectItem mergeItem;
        mergeItem.expr = makeColumn(name);
        mergeItem.alias = name;
        mergeItems.push_back(std::move(mergeItem));
      }
    }
    // HAVING filters only complete (merged) groups: chunk queries ship the
    // partials its aggregates need; the merge applies the predicate.
    if (src.having) {
      QSERV_ASSIGN_OR_RETURN(mergeHaving, splitter.split(*src.having));
    }
  } else {
    for (const auto& item : src.items) chunkItems.push_back(item.clone());
  }

  // -------------------------------------------------------- chunk template
  SelectStmt chunkTemplate;
  // Chunk-local dedup shrinks transfers; the merge re-dedups the union.
  chunkTemplate.distinct = src.distinct;
  chunkTemplate.items = std::move(chunkItems);
  chunkTemplate.from = src.from;  // table names substituted per chunk
  if (src.where) chunkTemplate.where = src.where->clone();

  // Explicit area restriction -> worker UDF conjunct on the director table.
  // (Implicit restrictions derived from BETWEEN predicates only prune the
  // chunk cover; their original predicates remain in the WHERE.)
  if (analyzed.areaRestriction && !analyzed.areaRestrictionIsImplicit) {
    const AnalyzedQuery::FromTable* director = nullptr;
    for (const auto& t : analyzed.from) {
      if (t.partitioned != nullptr) {
        director = &t;
        break;
      }
    }
    if (director == nullptr) {
      return Status::invalidArgument(
          "qserv_areaspec_box on a query without partitioned tables");
    }
    const auto& box = *analyzed.areaRestriction;
    std::vector<ExprPtr> args;
    args.push_back(std::make_unique<ColumnRef>(director->ref.bindingName(),
                                               director->partitioned->raColumn));
    args.push_back(std::make_unique<ColumnRef>(
        director->ref.bindingName(), director->partitioned->declColumn));
    for (double v : {box.lonMin(), box.latMin(),
                     box.isFullLon() ? 360.0 : box.lonMax(), box.latMax()}) {
      args.push_back(std::make_unique<LiteralExpr>(Value(v)));
    }
    ExprPtr conjunct = std::make_unique<BinaryExpr>(
        BinOp::kEq,
        std::make_unique<FuncCall>("qserv_ptInSphericalBox", std::move(args)),
        std::make_unique<LiteralExpr>(Value(1)));
    if (chunkTemplate.where) {
      chunkTemplate.where = std::make_unique<BinaryExpr>(
          BinOp::kAnd, std::move(chunkTemplate.where), std::move(conjunct));
    } else {
      chunkTemplate.where = std::move(conjunct);
    }
  }

  // Chunk-side GROUP BY mirrors the user's.
  for (const auto& g : src.groupBy) chunkTemplate.groupBy.push_back(g->clone());
  // Chunk-side top-k when a LIMIT is present on a plain row query (valid
  // with or without ORDER BY; the merge re-sorts / re-limits). Aggregating
  // queries must ship every group, and their ORDER BY may reference
  // merge-side aliases, so they take no chunk-side limit.
  if (src.limit && !analyzed.hasAggregates) {
    chunkTemplate.limit = src.limit;
    for (const auto& ob : src.orderBy) {
      chunkTemplate.orderBy.push_back(ob.clone());
    }
  }

  // Give every partitioned table an explicit alias equal to its original
  // binding name, so qualified column references keep resolving after the
  // table is renamed to its chunk table.
  for (std::size_t i = 0; i < chunkTemplate.from.size(); ++i) {
    if (analyzed.from[i].partitioned != nullptr &&
        chunkTemplate.from[i].alias.empty()) {
      chunkTemplate.from[i].alias = chunkTemplate.from[i].table;
    }
  }

  // ------------------------------------------------------------ per chunk
  for (std::int32_t chunkId : chunks) {
    ChunkQuerySpec spec;
    spec.chunkId = chunkId;

    if (analyzed.isNearNeighbor) {
      const PartitionedTable& table = *analyzed.from[0].partitioned;
      // Subchunks to visit: all of the chunk's, pruned by the area
      // restriction when present (only o1's subchunk needs to intersect).
      std::vector<std::int32_t> subChunks =
          analyzed.areaRestriction
              ? chunker_.subChunksIntersecting(chunkId,
                                               *analyzed.areaRestriction)
              : chunker_.subChunksOf(chunkId);
      if (subChunks.empty()) continue;
      spec.subChunkIds = subChunks;

      std::string text = "-- SUBCHUNKS: ";
      std::vector<std::string> ids;
      ids.reserve(subChunks.size());
      for (std::int32_t sc : subChunks) ids.push_back(std::to_string(sc));
      text += util::join(ids, ", ") + "\n";

      // Aggregating chunk queries return scale-independent partials; the
      // worker's cost accounting must not scale their result sizes.
      if (analyzed.hasAggregates) text += "-- QSERV-AGG\n";
      for (std::int32_t sc : subChunks) {
        SelectStmt stmt = chunkTemplate.clone();
        stmt.from[0].table =
            datagen::subChunkTableName(table.name, chunkId, sc);
        stmt.from[1].table = datagen::subChunkTableName(
            table.name + "FullOverlap", chunkId, sc);
        text += stmt.toSql() + ";\n";
      }
      spec.text = std::move(text);
    } else {
      SelectStmt stmt = chunkTemplate.clone();
      for (std::size_t i = 0; i < stmt.from.size(); ++i) {
        if (analyzed.from[i].partitioned != nullptr) {
          stmt.from[i].table = datagen::chunkTableName(
              analyzed.from[i].partitioned->name, chunkId);
        }
      }
      spec.text = (analyzed.hasAggregates ? "-- QSERV-AGG\n" : "") +
                  stmt.toSql() + ";\n";
    }
    out.chunkQueries.push_back(std::move(spec));
  }

  // ------------------------------------------------------------ merge plan
  SelectStmt mergeSelect;
  if (analyzed.hasAggregates) {
    mergeSelect.items = std::move(mergeItems);
    mergeSelect.from.push_back(TableRef{"", mergeTableName, ""});
    // Re-group on the passthrough columns (chunk-level groups collapse into
    // global groups).
    for (const auto& name : passthroughNames) {
      mergeSelect.groupBy.push_back(makeColumn(name));
    }
    if (!src.groupBy.empty() && passthroughNames.empty()) {
      return Status::unimplemented(
          "GROUP BY keys must appear in the select list");
    }
    mergeSelect.having = std::move(mergeHaving);
  } else {
    mergeSelect.distinct = src.distinct;
    SelectItem star;
    star.expr = std::make_unique<sql::StarExpr>();
    mergeSelect.items.push_back(std::move(star));
    mergeSelect.from.push_back(TableRef{"", mergeTableName, ""});
  }
  // ORDER BY: resolve against output column names.
  for (const auto& ob : src.orderBy) {
    std::string want = ob.expr->toSql();
    bool matched = false;
    for (const auto& item : src.items) {
      if (item.expr->kind() == ExprKind::kStar) continue;
      if (util::iequals(want, item.alias) ||
          util::iequals(want, item.expr->toSql())) {
        matched = true;
        break;
      }
    }
    // Plain column names also pass through un-aliased in SELECT *.
    if (!matched && !analyzed.hasAggregates &&
        ob.expr->kind() == ExprKind::kColumnRef) {
      matched = true;
    }
    if (!matched) {
      return Status::unimplemented(util::format(
          "ORDER BY expression %s must appear in the select list",
          want.c_str()));
    }
    sql::OrderByItem item;
    item.expr = ob.expr->kind() == ExprKind::kColumnRef
                    ? std::make_unique<ColumnRef>(
                          "", static_cast<const ColumnRef&>(*ob.expr).column)
                    : makeColumn(want);
    item.descending = ob.descending;
    mergeSelect.orderBy.push_back(std::move(item));
  }
  mergeSelect.limit = src.limit;
  out.merge.finalSelectSql = mergeSelect.toSql();
  return out;
}

}  // namespace qserv::core
