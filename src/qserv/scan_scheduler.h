/// \file scan_scheduler.h
/// \brief The worker's shared-scan task scheduler (paper §4.3, §6.4).
///
/// The paper's workers "do not implement any concept of query cost" (§6.4):
/// one FIFO queue, so interactive point lookups convoy behind full-chunk
/// scans (Fig 14). This scheduler is the fix the paper plans in §4.3 and
/// production Qserv later built (wsched::ScanScheduler + memman::MemMan +
/// wpublish::QueriesAndChunks):
///
///  - every task arrives tagged with a query class (the czar derives it
///    from analysis coverage and ships it in a `-- QSERV-CLASS` payload
///    header): `interactive` for point/secondary-index lookups, `scan` for
///    multi-chunk table scans;
///  - interactive tasks live in a priority lane and claim executor slots
///    ahead of any queued scan — they never wait behind a scan group;
///  - scan tasks on the same chunk ride one physical pass: a claim gathers
///    every queued same-chunk scan into a group, and a scan arriving while
///    the chunk's pass is in flight joins the open pass (takeJoined) and
///    shares the read instead of paying a second one;
///  - scan groups are rate-tiered (fast/slow): a query whose tasks run much
///    slower than the tier reference is evicted to the slow tier so it
///    rides its own pass instead of dragging everyone (production's
///    QueriesAndChunks "boot the slow query" move);
///  - scan claims reserve the chunk's table bytes against a MemoryBudget
///    before running (MemMan-style lock/unlock per chunk set) and block —
///    never interactive claims — until memory frees.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/memory_budget.h"

namespace qserv::core {

struct BatchStream;

enum class SchedulerMode {
  kFifo,        ///< paper behaviour: first-in-first-out, no cost concept
  kSharedScan,  ///< §4.3: class lanes, shared passes, memory budgeting
};

/// Query cost class, derived by the czar from analysis coverage and carried
/// to workers in the `-- QSERV-CLASS:` payload header.
enum class QueryClass {
  kInteractive,  ///< point / secondary-index lookup — low-volume lane
  kScan,         ///< multi-chunk table scan — shared-scan lane
};

const char* queryClassName(QueryClass cls);

/// The payload header line the dispatcher prepends: "-- QSERV-CLASS: scan\n".
std::string classHeaderLine(QueryClass cls);

/// Parse the `-- QSERV-CLASS:` header from \p payload's leading comment
/// lines; nullopt when absent (callers default to kScan — the conservative
/// class for a header-less payload).
std::optional<QueryClass> parseClassHeader(const std::string& payload);

/// One queued chunk query, as the worker sees it.
struct ScanTask {
  std::int32_t chunkId = 0;
  std::string payload;
  std::string hash;
  std::uint64_t traceId = 0;    ///< from the -- QSERV-TRACE header; 0 = none
  std::uint64_t queryId = 0;    ///< rate-tier key (the trace id today)
  std::int64_t enqueuedUs = 0;  ///< trace-clock time of arrival
  QueryClass cls = QueryClass::kScan;
  /// Paper-scale bytes this task's chunk tables occupy (scan class only);
  /// charged against the memory budget once per chunk pass.
  double memoryBytes = 0.0;
  std::shared_ptr<BatchStream> batch;  ///< null on per-chunk dispatch
};

struct ScanSchedulerConfig {
  SchedulerMode mode = SchedulerMode::kFifo;
  /// Byte budget for concurrently locked chunk sets; <= 0 = unlimited.
  double scanMemoryBudgetBytes = 0.0;
  /// A query whose per-task EWMA exceeds this multiple of the tier
  /// reference is evicted to the slow tier; <= 0 disables rating.
  double slowScanFactor = 4.0;
  bool startPaused = false;
};

/// Thread-safe task scheduler shared by a worker's executor slots. In kFifo
/// mode it degenerates to the paper's single queue (one task per claim, no
/// passes, no budget). All state, including the memory budget, is mutated
/// under one mutex, so a blocked scan claim cannot miss the wakeup that
/// frees its memory.
class ScanScheduler {
 public:
  /// What one executor slot claimed: an interactive task alone (passId 0),
  /// a scan group sharing one chunk pass (passId != 0 — keep calling
  /// takeJoined until it returns empty), or nothing (shutdown drained).
  struct Claim {
    std::vector<ScanTask> tasks;
    std::uint64_t passId = 0;
  };

  ScanScheduler(std::string workerId, ScanSchedulerConfig config);

  /// False when shutting down (the caller answers "unavailable").
  bool enqueue(ScanTask task);
  /// Atomically enqueue all-or-none (batch arrival); returns false when
  /// shutting down.
  bool enqueueAll(std::vector<ScanTask> tasks);

  /// Block until a task (group) is claimable; empty claim = shut down and
  /// drained. Interactive tasks are claimed first and never budget-blocked;
  /// a scan claim that cannot lock its chunk's memory waits here while
  /// other slots keep draining (and grabs any interactive arrival instead).
  Claim claim();

  /// Drain tasks that joined pass \p passId mid-flight. An empty return
  /// atomically closes the pass (unlocks its memory); callers loop until
  /// empty so a join racing the close is either executed or requeued as a
  /// fresh pass — never lost.
  std::vector<ScanTask> takeJoined(std::uint64_t passId);

  /// Account one finished task: in-flight depth drops, and \p execSeconds
  /// feeds the slow-scan rating when the task actually executed.
  void finishTask(const ScanTask& task, double execSeconds, bool executed);

  /// Queued plus claimed-but-unfinished tasks — the depth the repair
  /// control plane and queue_depth gauge see. (Queued alone goes to zero
  /// the instant a slot claims a large scan group, hiding its load.)
  std::size_t depth() const;
  std::size_t queuedOnly() const;

  /// Is \p queryId currently rated slow (evicted to the slow tier)?
  bool isSlowQuery(std::uint64_t queryId) const;

  bool isShuttingDown() const;
  void resume();
  /// Stop accepting work; claims drain the queue then return empty.
  void shutdown();

  util::MemoryBudget& budget() { return budget_; }

 private:
  static constexpr int kFastTier = 0;
  static constexpr int kSlowTier = 1;
  static constexpr int kNumTiers = 2;

  /// One in-flight chunk pass: the executor slot that claimed it executes
  /// `joined` arrivals until the pass closes.
  struct Pass {
    int tier = kFastTier;
    std::int32_t chunkId = 0;
    std::string memKey;  ///< budget key; empty = nothing locked
    std::deque<ScanTask> joined;
  };

  // All helpers below require mu_ held.
  bool routeTask(ScanTask&& task);
  int tierOf(std::uint64_t queryId) const;
  void rateQuery(std::uint64_t queryId, double execSeconds);
  void evictToSlowTier(std::uint64_t queryId);
  void closePass(std::map<std::uint64_t, Pass>::iterator it);

  const std::string workerId_;
  const ScanSchedulerConfig config_;
  util::MemoryBudget budget_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool paused_ = false;
  bool shuttingDown_ = false;

  /// kFifo routes every task here regardless of class (single FIFO lane);
  /// kSharedScan keeps it for the interactive priority lane only.
  std::deque<ScanTask> interactive_;
  std::deque<ScanTask> scans_[kNumTiers];

  std::map<std::uint64_t, Pass> passes_;  ///< passId -> open pass
  /// (tier, chunkId) -> open passId, so arrivals join the in-flight pass.
  std::map<std::pair<int, std::int32_t>, std::uint64_t> activePass_;
  std::uint64_t nextPassId_ = 1;
  std::size_t inflight_ = 0;  ///< claimed (incl. joined) minus finished

  /// Slow-scan rating: per-query EWMA of task seconds vs a global
  /// reference EWMA over all executed scan tasks.
  struct QueryRate {
    double ewmaSec = 0.0;
    bool slow = false;
  };
  std::map<std::uint64_t, QueryRate> rates_;
  double refSec_ = 0.0;
};

}  // namespace qserv::core
