/// \file catalog_config.h
/// \brief Frontend metadata: which tables are spatially partitioned and how.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sphgeom/chunker.h"

namespace qserv::core {

/// One spatially partitioned ("director" or child) table.
struct PartitionedTable {
  std::string name;        ///< logical name users query, e.g. "Object"
  std::string raColumn;    ///< partitioning longitude column, e.g. "ra_PS"
  std::string declColumn;  ///< partitioning latitude column, e.g. "decl_PS"
  /// Column the secondary index maps (usually objectId); empty if none.
  std::string idColumn;
  /// Paper-scale MyISAM bytes per row, for the cost model.
  double paperRowBytes = 0.0;
  /// True when the table keeps precomputed overlap rows (near-neighbor
  /// joins are only valid on such tables).
  bool hasOverlap = false;
};

struct CatalogConfig {
  int numStripes = 85;
  int numSubStripesPerStripe = 12;
  double overlapDeg = 1.0 / 60.0;  // 1 arc-minute (paper §6.1.2)
  std::vector<PartitionedTable> tables;

  sphgeom::Chunker makeChunker() const {
    return sphgeom::Chunker(numStripes, numSubStripesPerStripe, overlapDeg);
  }

  const PartitionedTable* findTable(const std::string& name) const;

  /// The paper's LSST configuration: Object and Source partitioned on the
  /// Object position, Object carrying overlap and the objectId index.
  static CatalogConfig lsst(int numStripes = 85, int numSubStripes = 12,
                            double overlapDeg = 1.0 / 60.0);
};

}  // namespace qserv::core
