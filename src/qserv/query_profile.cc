#include "qserv/query_profile.h"

#include <algorithm>
#include <cstdlib>

#include "util/strings.h"

namespace qserv::core {

namespace {

/// Attribute value by key, or empty.
const std::string* findAttr(const util::TraceSpan& span,
                            std::string_view key) {
  for (const auto& [k, v] : span.attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t intAttr(const util::TraceSpan& span, std::string_view key) {
  const std::string* v = findAttr(span, key);
  return v ? std::strtoll(v->c_str(), nullptr, 10) : 0;
}

std::string distDetail(const ProfileDist& d) {
  if (d.count == 0) return "";
  return util::format("min/p50/max = %.4g/%.4g/%.4g s over %lld chunks",
                      d.min, d.p50, d.max, static_cast<long long>(d.count));
}

std::string jsonDist(const ProfileDist& d) {
  return util::format(
      "{\"count\":%lld,\"min\":%.6g,\"p50\":%.6g,\"max\":%.6g,\"sum\":%.6g}",
      static_cast<long long>(d.count), d.min, d.p50, d.max, d.sum);
}

}  // namespace

ProfileDist ProfileDist::of(std::vector<double> samples) {
  ProfileDist d;
  if (samples.empty()) return d;
  std::sort(samples.begin(), samples.end());
  d.count = static_cast<std::int64_t>(samples.size());
  d.min = samples.front();
  d.max = samples.back();
  d.p50 = samples[samples.size() / 2];
  for (double s : samples) d.sum += s;
  return d;
}

double QueryProfile::stageSeconds() const {
  double total = 0.0;
  for (const auto& s : stages) total += s.seconds;
  return total;
}

QueryProfile buildQueryProfile(const util::Trace& trace) {
  QueryProfile p;
  p.queryId = trace.id();
  p.sql = trace.label();

  std::vector<util::TraceSpan> spans = trace.spans();
  std::vector<const util::TraceSpan*> czarSpans;
  std::vector<double> waitSamples, execSamples, transferSamples;
  std::vector<double> batchSamples;
  for (const auto& span : spans) {
    if (findAttr(span, "error") != nullptr) ++p.faults;
    if (span.component == "czar") {
      czarSpans.push_back(&span);
    } else if (span.component == "worker") {
      if (util::startsWith(span.name, "queue-wait ")) {
        waitSamples.push_back(span.durationSeconds());
      } else if (util::startsWith(span.name, "exec ")) {
        execSamples.push_back(span.durationSeconds());
        p.resultRows += intAttr(span, "resultRows");
      }
    } else if (span.component == "xrd") {
      // Per-chunk result reads and batched stream-frame reads are the same
      // quantity to the profile: one result transfer from a worker.
      if (util::startsWith(span.name, "read /result/") ||
          util::startsWith(span.name, "read /bstream/")) {
        transferSamples.push_back(span.durationSeconds());
      }
    } else if (span.component == "dispatcher") {
      if (util::startsWith(span.name, "chunk ")) {
        ++p.chunks;
        p.attempts += intAttr(span, "attempts");
        p.bytesTransferred += intAttr(span, "dumpBytes");
      } else if (util::startsWith(span.name, "batch ")) {
        ++p.batches;
        batchSamples.push_back(span.durationSeconds());
      }
    } else if (span.component == "merger") {
      if (span.name == "replay dump") p.rowsMerged += intAttr(span, "rows");
    }
  }
  p.retries = std::max<std::int64_t>(0, p.attempts - p.chunks);
  p.queueWait = ProfileDist::of(std::move(waitSamples));
  p.execute = ProfileDist::of(std::move(execSamples));
  p.transfer = ProfileDist::of(std::move(transferSamples));
  p.batchTransfer = ProfileDist::of(std::move(batchSamples));

  // Czar stages in execution (start-time) order.
  std::sort(czarSpans.begin(), czarSpans.end(),
            [](const util::TraceSpan* a, const util::TraceSpan* b) {
              return a->startUs < b->startUs;
            });
  for (const util::TraceSpan* span : czarSpans) {
    ProfileStage stage;
    stage.name = span->name;
    stage.seconds = span->durationSeconds();
    if (span->name == "chunk-prune") {
      stage.items = intAttr(*span, "chunks");
      stage.detail = util::format("%lld chunks after pruning",
                                  static_cast<long long>(stage.items));
    } else if (span->name == "rewrite") {
      stage.items = intAttr(*span, "chunkQueries");
      stage.detail = util::format("%lld chunk queries",
                                  static_cast<long long>(stage.items));
    }
    p.stages.push_back(std::move(stage));
  }
  return p;
}

sql::TablePtr QueryProfile::toTable() const {
  sql::Schema schema({{"stage", sql::ColumnType::kString},
                      {"seconds", sql::ColumnType::kDouble},
                      {"count", sql::ColumnType::kInt},
                      {"detail", sql::ColumnType::kString}});
  auto table = std::make_shared<sql::Table>(
      util::format("profile_%llu", static_cast<unsigned long long>(queryId)),
      schema);
  auto add = [&](const std::string& stage, double seconds, std::int64_t n,
                 const std::string& detail) {
    sql::Value row[] = {stage, seconds, n, detail};
    (void)table->appendRow(row);
  };
  for (const auto& s : stages) {
    add(s.name, s.seconds, s.items, s.detail);
    // The per-chunk distributions are children of the dispatch stage: that
    // is the wall interval in which workers queued, executed, and shipped.
    if (s.name == "dispatch") {
      if (batchTransfer.count > 0) {
        add("  worker batches", batchTransfer.sum, batchTransfer.count,
            util::format("min/p50/max = %.4g/%.4g/%.4g s over %lld batches",
                         batchTransfer.min, batchTransfer.p50,
                         batchTransfer.max,
                         static_cast<long long>(batchTransfer.count)));
      }
      add("  chunk queue-wait", queueWait.sum, queueWait.count,
          distDetail(queueWait));
      add("  chunk execute", execute.sum, execute.count, distDetail(execute));
      add("  chunk transfer", transfer.sum, transfer.count,
          distDetail(transfer));
    }
  }
  add("total (stages)", stageSeconds(), 0, "");
  add("wall", wallSeconds, 0, util::format("status: %s", status.c_str()));
  if (!queryClass.empty()) add("class", 0.0, 0, queryClass);
  add("chunks", 0.0, chunks,
      util::format("%lld attempts, %lld retries, %lld faults",
                   static_cast<long long>(attempts),
                   static_cast<long long>(retries),
                   static_cast<long long>(faults)));
  add("rows", 0.0, resultRows,
      util::format("%lld merged, %lld bytes transferred",
                   static_cast<long long>(rowsMerged),
                   static_cast<long long>(bytesTransferred)));
  return table;
}

std::string QueryProfile::toJson() const {
  std::string stagesJson = "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) stagesJson += ",";
    stagesJson += util::format(
        "{\"name\":\"%s\",\"seconds\":%.6g}",
        util::jsonEscape(stages[i].name).c_str(), stages[i].seconds);
  }
  stagesJson += "]";
  return util::format(
      "{\"queryId\":%llu,\"sql\":\"%s\",\"status\":\"%s\","
      "\"class\":\"%s\","
      "\"wallSeconds\":%.6g,\"stageSeconds\":%.6g,\"chunks\":%lld,"
      "\"batches\":%lld,\"attempts\":%lld,\"retries\":%lld,\"faults\":%lld,"
      "\"rowsMerged\":%lld,\"resultRows\":%lld,\"bytesTransferred\":%lld,"
      "\"queueWait\":%s,\"execute\":%s,\"transfer\":%s,"
      "\"batchTransfer\":%s,\"stages\":%s}",
      static_cast<unsigned long long>(queryId),
      util::jsonEscape(sql).c_str(), util::jsonEscape(status).c_str(),
      util::jsonEscape(queryClass).c_str(),
      wallSeconds, stageSeconds(), static_cast<long long>(chunks),
      static_cast<long long>(batches), static_cast<long long>(attempts),
      static_cast<long long>(retries), static_cast<long long>(faults),
      static_cast<long long>(rowsMerged), static_cast<long long>(resultRows),
      static_cast<long long>(bytesTransferred), jsonDist(queueWait).c_str(),
      jsonDist(execute).c_str(), jsonDist(transfer).c_str(),
      jsonDist(batchTransfer).c_str(), stagesJson.c_str());
}

}  // namespace qserv::core
