/// \file query_rewriter.h
/// \brief User query -> per-chunk queries + merge plan (paper §5.3, §5.4).
///
/// Rewrites performed, following the paper's worked example:
///  - Table references: `Object` -> `Object_CC` per chunk, with the original
///    binding name kept as an alias so column qualifiers still resolve.
///  - `qserv_areaspec_box(...)` (already extracted by analysis) -> a
///    `qserv_ptInSphericalBox(<ra>, <decl>, ...) = 1` conjunct on the
///    director table, executed by the worker-side UDF.
///  - Aggregates: AVG(x) splits into SUM(x)+COUNT(x) chunk columns with
///    stable generated names (QS<k>_SUM / QS<k>_COUNT), reassembled by the
///    merge query as SUM(`QS<k>_SUM`) / SUM(`QS<k>_COUNT`); COUNT -> SUM of
///    partial counts; SUM/MIN/MAX -> same aggregate over partials. GROUP BY
///    is applied per chunk and re-applied over the merge table.
///  - Near-neighbor self-joins: one statement per subchunk, joining the
///    subchunk table Object_CC_SS against the on-the-fly overlap table
///    ObjectFullOverlap_CC_SS, with the required subchunk list declared in
///    the `-- SUBCHUNKS:` header (§5.4 chunk query representation).
///  - ORDER BY / LIMIT move to the merge query (chunks also apply top-k
///    when a LIMIT is present).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "qserv/query_analysis.h"

namespace qserv::core {

/// One dispatchable chunk query.
struct ChunkQuerySpec {
  std::int32_t chunkId = 0;
  std::vector<std::int32_t> subChunkIds;  ///< non-empty for near-neighbor
  std::string text;                       ///< payload written to /query2/CC
  /// Scheduler class the dispatcher ships in the `-- QSERV-CLASS` header
  /// (set by the czar from deriveQueryClass; scan is the safe default).
  QueryClass queryClass = QueryClass::kScan;
};

struct MergePlan {
  bool hasAggregation = false;
  /// Final SELECT over the merge table (already named inside the SQL).
  std::string finalSelectSql;
};

struct RewriteResult {
  std::vector<ChunkQuerySpec> chunkQueries;
  MergePlan merge;
};

class QueryRewriter {
 public:
  QueryRewriter(const CatalogConfig& config, const sphgeom::Chunker& chunker)
      : config_(config), chunker_(chunker) {}

  /// Rewrite \p analyzed for execution over \p chunks, merging into
  /// \p mergeTableName on the frontend.
  util::Result<RewriteResult> rewrite(const AnalyzedQuery& analyzed,
                                      std::span<const std::int32_t> chunks,
                                      const std::string& mergeTableName) const;

 private:
  const CatalogConfig& config_;
  const sphgeom::Chunker& chunker_;
};

}  // namespace qserv::core
