#include "qserv/czar.h"

#include <algorithm>

#include "qserv/merger.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace qserv::core {

using util::Result;
using util::Status;

QservFrontend::QservFrontend(FrontendConfig config,
                             xrd::RedirectorPtr redirector,
                             std::vector<std::int32_t> availableChunks)
    : config_(std::move(config)),
      redirector_(std::move(redirector)),
      availableChunks_(std::move(availableChunks)),
      metadata_("qservMeta"),
      index_(metadata_),
      chunker_(config_.catalog.makeChunker()),
      dispatcher_(redirector_, config_.dispatchParallelism) {
  std::sort(availableChunks_.begin(), availableChunks_.end());
}

void QservFrontend::setAvailableChunks(std::vector<std::int32_t> chunks) {
  std::sort(chunks.begin(), chunks.end());
  availableChunks_ = std::move(chunks);
}

std::vector<std::int32_t> QservFrontend::resolveChunks(
    const AnalyzedQuery& analyzed) {
  // Index opportunity first: a pinned objectId set touches only the chunks
  // the secondary index names (§5.5).
  if (!analyzed.restrictedObjectIds.empty()) {
    auto chunks = index_.chunksFor(analyzed.restrictedObjectIds);
    if (chunks.isOk()) {
      std::vector<std::int32_t> out;
      for (std::int32_t c : *chunks) {
        if (std::binary_search(availableChunks_.begin(),
                               availableChunks_.end(), c)) {
          out.push_back(c);
        }
      }
      return out;
    }
  }
  // Spatial restriction: chunker cover of the region (§5.3).
  if (analyzed.areaRestriction) {
    std::vector<std::int32_t> out;
    for (std::int32_t c :
         chunker_.chunksIntersecting(*analyzed.areaRestriction)) {
      if (std::binary_search(availableChunks_.begin(), availableChunks_.end(),
                             c)) {
        out.push_back(c);
      }
    }
    return out;
  }
  // Otherwise: the full (available) sky.
  return availableChunks_;
}

int QservFrontend::workerIndexOf(const std::string& workerId) {
  std::lock_guard lock(workerIndexMutex_);
  auto it = workerIndexes_.find(workerId);
  if (it != workerIndexes_.end()) return it->second;
  int idx = static_cast<int>(workerIndexes_.size());
  workerIndexes_.emplace(workerId, idx);
  return idx;
}

Result<std::vector<std::int32_t>> QservFrontend::chunksFor(
    const std::string& sql) {
  QSERV_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                         analyzeQuery(sql, config_.catalog));
  if (!analyzed.touchesPartitioned()) return std::vector<std::int32_t>{};
  return resolveChunks(analyzed);
}

Result<QservFrontend::Execution> QservFrontend::query(const std::string& sql) {
  util::Stopwatch wall;
  Execution exec;

  QSERV_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                         analyzeQuery(sql, config_.catalog));

  // Queries that touch no partitioned table run on the frontend directly.
  if (!analyzed.touchesPartitioned()) {
    sql::ExecStats stats;
    QSERV_ASSIGN_OR_RETURN(
        exec.result, sql::executeSelect(metadata_, analyzed.stmt, stats));
    exec.soloTiming = simio::simulateQuery({}, config_.cost);
    exec.wallSeconds = wall.elapsedSeconds();
    return exec;
  }

  std::vector<std::int32_t> chunks = resolveChunks(analyzed);
  std::string mergeTable =
      util::format("qm_%llu", static_cast<unsigned long long>(
                                  nextQueryId_.fetch_add(1)));
  QueryRewriter rewriter(config_.catalog, chunker_);
  QSERV_ASSIGN_OR_RETURN(RewriteResult rewrite,
                         rewriter.rewrite(analyzed, chunks, mergeTable));

  QLOG(kInfo, "czar") << "dispatching " << rewrite.chunkQueries.size()
                      << " chunk queries for: " << sql;
  QSERV_ASSIGN_OR_RETURN(std::vector<ChunkResult> results,
                         dispatcher_.run(rewrite.chunkQueries));
  exec.chunksDispatched = results.size();

  ResultMerger merger(mergeTable);
  for (const auto& r : results) {
    QSERV_RETURN_IF_ERROR(merger.mergeDump(r.dump));
  }
  QSERV_ASSIGN_OR_RETURN(exec.result,
                         merger.finalize(rewrite.merge.finalSelectSql));
  exec.rowsMerged = merger.rowsMerged();

  // Virtual-time accounting.
  exec.simTasks.reserve(results.size());
  exec.accounting.reserve(results.size());
  for (const auto& r : results) {
    simio::SimChunkTask task;
    task.worker = workerIndexOf(r.workerId);
    task.serviceSec = simio::workerServiceSeconds(r.observables, config_.cost);
    task.collectSec = simio::masterCollectSeconds(r.observables, config_.cost);
    exec.simTasks.push_back(task);
    exec.accounting.push_back(
        ChunkAccounting{r.chunkId, r.workerId, r.observables});
  }
  exec.soloTiming = simio::simulateQuery(exec.simTasks, config_.cost);
  exec.wallSeconds = wall.elapsedSeconds();
  return exec;
}

}  // namespace qserv::core
