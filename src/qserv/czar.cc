#include "qserv/czar.h"

#include <algorithm>
#include <thread>

#include "qserv/explain.h"
#include "qserv/merger.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/mpmc_queue.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace qserv::core {

using util::Result;
using util::Status;

namespace {
struct CzarMetrics {
  util::Counter& queries;
  util::Counter& queriesFailed;
  util::Counter& chunksDispatched;
  util::Gauge& inflight;
  util::Histogram& querySeconds;

  static CzarMetrics& instance() {
    auto& reg = util::MetricsRegistry::instance();
    static CzarMetrics* m = new CzarMetrics{
        reg.counter("czar.queries"),
        reg.counter("czar.queries_failed"),
        reg.counter("czar.chunks_dispatched"),
        reg.gauge("czar.inflight_queries"),
        reg.histogram("czar.query_seconds"),
    };
    return *m;
  }
};

/// Schema of the frontend's per-query history table (CasJobs/QMeta-style):
/// one row per finished query, queryable via ordinary SQL.
sql::Schema queryStatsSchema() {
  using sql::ColumnType;
  return sql::Schema({{"queryId", ColumnType::kInt},
                      {"sql", ColumnType::kString},
                      {"status", ColumnType::kString},
                      {"class", ColumnType::kString},
                      {"wallSeconds", ColumnType::kDouble},
                      {"stageSeconds", ColumnType::kDouble},
                      {"chunks", ColumnType::kInt},
                      {"attempts", ColumnType::kInt},
                      {"retries", ColumnType::kInt},
                      {"faults", ColumnType::kInt},
                      {"rowsMerged", ColumnType::kInt},
                      {"resultRows", ColumnType::kInt},
                      {"bytesTransferred", ColumnType::kInt},
                      {"queueWaitP50", ColumnType::kDouble},
                      {"queueWaitMax", ColumnType::kDouble},
                      {"executeP50", ColumnType::kDouble},
                      {"executeMax", ColumnType::kDouble},
                      {"transferP50", ColumnType::kDouble},
                      {"transferMax", ColumnType::kDouble}});
}
}  // namespace

QservFrontend::QservFrontend(FrontendConfig config,
                             xrd::RedirectorPtr redirector,
                             std::vector<std::int32_t> availableChunks)
    : config_(std::move(config)),
      redirector_(std::move(redirector)),
      metadata_("qservMeta"),
      index_(metadata_),
      chunker_(config_.catalog.makeChunker()),
      // Real workers always append the dump integrity trailer, so the czar
      // requires it: a dump that lost its trailer is treated as damaged.
      dispatcher_(redirector_,
                  DispatcherConfig{config_.dispatchParallelism,
                                   config_.dispatchMaxAttempts,
                                   config_.dispatchBackoff,
                                   /*retrySeed=*/0x5eedULL,
                                   /*requireDumpChecksum=*/true,
                                   config_.dispatchMode,
                                   config_.dispatchStreamWindow}),
      profilingEnabled_(config_.enableProfiling) {
  std::sort(availableChunks.begin(), availableChunks.end());
  availableChunks.erase(
      std::unique(availableChunks.begin(), availableChunks.end()),
      availableChunks.end());
  availableChunks_ =
      std::make_shared<const std::vector<std::int32_t>>(
          std::move(availableChunks));
  (void)metadata_.registerTable(
      std::make_shared<sql::Table>("QueryStats", queryStatsSchema()));
}

void QservFrontend::setAvailableChunks(std::vector<std::int32_t> chunks) {
  std::sort(chunks.begin(), chunks.end());
  chunks.erase(std::unique(chunks.begin(), chunks.end()), chunks.end());
  auto snapshot =
      std::make_shared<const std::vector<std::int32_t>>(std::move(chunks));
  std::lock_guard lock(availableMutex_);
  availableChunks_ = std::move(snapshot);
}

void QservFrontend::addAvailableChunks(std::span<const std::int32_t> chunks) {
  if (chunks.empty()) return;
  std::lock_guard lock(availableMutex_);
  std::vector<std::int32_t> merged = *availableChunks_;
  merged.insert(merged.end(), chunks.begin(), chunks.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  availableChunks_ =
      std::make_shared<const std::vector<std::int32_t>>(std::move(merged));
}

std::shared_ptr<const std::vector<std::int32_t>>
QservFrontend::availableChunksSnapshot() const {
  std::lock_guard lock(availableMutex_);
  return availableChunks_;
}

std::vector<std::int32_t> QservFrontend::availableChunks() const {
  return *availableChunksSnapshot();
}

std::vector<std::int32_t> QservFrontend::resolveChunks(
    const AnalyzedQuery& analyzed) {
  // One placement snapshot per query: live-placement publishes (ingest,
  // repair) swap the snapshot pointer atomically, so a query planned before
  // the publish keeps the old chunk set end to end and the next query sees
  // the new one.
  std::shared_ptr<const std::vector<std::int32_t>> available =
      availableChunksSnapshot();
  // Index opportunity first: a pinned objectId set touches only the chunks
  // the secondary index names (§5.5).
  if (!analyzed.restrictedObjectIds.empty()) {
    auto chunks = index_.chunksFor(analyzed.restrictedObjectIds);
    if (chunks.isOk()) {
      std::vector<std::int32_t> out;
      for (std::int32_t c : *chunks) {
        if (std::binary_search(available->begin(), available->end(), c)) {
          out.push_back(c);
        }
      }
      return out;
    }
  }
  // Spatial restriction: chunker cover of the region (§5.3).
  if (analyzed.areaRestriction) {
    std::vector<std::int32_t> out;
    for (std::int32_t c :
         chunker_.chunksIntersecting(*analyzed.areaRestriction)) {
      if (std::binary_search(available->begin(), available->end(), c)) {
        out.push_back(c);
      }
    }
    return out;
  }
  // Otherwise: the full (available) sky.
  return *available;
}

int QservFrontend::workerIndexOf(const std::string& workerId) {
  std::lock_guard lock(workerIndexMutex_);
  auto it = workerIndexes_.find(workerId);
  if (it != workerIndexes_.end()) return it->second;
  int idx = static_cast<int>(workerIndexes_.size());
  workerIndexes_.emplace(workerId, idx);
  return idx;
}

std::string QservFrontend::describeDispatch(
    const std::vector<ChunkQuerySpec>& specs) {
  if (specs.empty()) return {};
  if (config_.dispatchMode == DispatchMode::kPerChunk) {
    return util::format(
        "per-chunk (%zu chunk queries, one write+read transaction pair each)",
        specs.size());
  }
  std::size_t batches = 0, placed = 0, fallback = 0;
  std::size_t minChunks = 0, maxChunks = 0;
  for (const BatchPlanEntry& entry : dispatcher_.planBatches(specs)) {
    if (entry.workerId.empty()) {
      fallback += entry.chunkIds.size();
      continue;
    }
    ++batches;
    placed += entry.chunkIds.size();
    std::size_t n = entry.chunkIds.size();
    if (batches == 1 || n < minChunks) minChunks = n;
    if (n > maxChunks) maxChunks = n;
  }
  std::string desc = util::format(
      "batched (%zu chunks in %zu per-worker batches, %zu-%zu chunks/batch, "
      "stream window %d)",
      placed, batches, minChunks, maxChunks, config_.dispatchStreamWindow);
  if (fallback > 0) {
    desc += util::format("; %zu chunks fall back to per-chunk", fallback);
  }
  return desc;
}

Result<std::vector<std::int32_t>> QservFrontend::chunksFor(
    const std::string& sql) {
  QSERV_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                         analyzeQuery(sql, config_.catalog));
  if (!analyzed.touchesPartitioned()) return std::vector<std::int32_t>{};
  return resolveChunks(analyzed);
}

std::shared_ptr<QservFrontend::LiveQuery> QservFrontend::beginQuery(
    std::uint64_t id, const std::string& sql) {
  auto live = std::make_shared<LiveQuery>();
  live->id = id;
  live->sql = sql;
  {
    std::lock_guard lock(processMutex_);
    inflight_.emplace(id, live);
  }
  CzarMetrics::instance().inflight.add(1);
  return live;
}

void QservFrontend::endQuery(const std::shared_ptr<LiveQuery>& live,
                             const Status& status) {
  QueryInfo info;
  info.id = live->id;
  info.sql = live->sql;
  info.state = status.isOk() ? "done" : "failed: " + status.toString();
  if (!status.isOk()) info.failureStatus = status.toString();
  info.chunksTotal = live->chunksTotal.load(std::memory_order_relaxed);
  info.chunksCompleted = live->chunksCompleted.load(std::memory_order_relaxed);
  info.elapsedSeconds = live->watch.elapsedSeconds();
  info.finished = true;
  {
    std::lock_guard lock(processMutex_);
    inflight_.erase(live->id);
    recent_.push_front(std::move(info));
    while (recent_.size() > config_.processListHistory) recent_.pop_back();
  }
  CzarMetrics::instance().inflight.add(-1);
}

std::vector<QservFrontend::QueryInfo> QservFrontend::processList() const {
  std::vector<QueryInfo> out;
  std::lock_guard lock(processMutex_);
  out.reserve(inflight_.size() + recent_.size());
  for (const auto& [id, live] : inflight_) {
    QueryInfo info;
    info.id = id;
    info.sql = live->sql;
    {
      std::lock_guard stateLock(live->stateMutex);
      info.state = live->state;
    }
    info.chunksTotal = live->chunksTotal.load(std::memory_order_relaxed);
    info.chunksCompleted =
        live->chunksCompleted.load(std::memory_order_relaxed);
    info.elapsedSeconds = live->watch.elapsedSeconds();
    out.push_back(std::move(info));
  }
  out.insert(out.end(), recent_.begin(), recent_.end());
  return out;
}

Result<QservFrontend::Execution> QservFrontend::query(const std::string& sql) {
  // EXPLAIN is a frontend-only statement: peel it off before the normal
  // path (workers never see it; see sql::ExplainStmt).
  if (util::startsWith(util::toLower(util::trim(sql)), "explain")) {
    QSERV_ASSIGN_OR_RETURN(sql::Statement stmt, sql::parseStatement(sql));
    if (auto* explain = std::get_if<sql::ExplainStmt>(&stmt)) {
      if (!explain->analyze) return explainOnly(*explain->select);
      // EXPLAIN ANALYZE: execute the inner SELECT with profiling forced on
      // and return the breakdown instead of the query result.
      QSERV_ASSIGN_OR_RETURN(
          Execution exec,
          runUserQuery(explain->select->toSql(), /*forceProfile=*/true));
      exec.result = exec.profile->toTable();
      return exec;
    }
    // A statement that merely starts with an EXPLAIN-like token falls
    // through to the normal path (and its normal parse error).
  }
  return runUserQuery(sql, /*forceProfile=*/false);
}

Result<QservFrontend::Execution> QservFrontend::explainOnly(
    const sql::SelectStmt& stmt) {
  QSERV_ASSIGN_OR_RETURN(AnalyzedQuery analyzed,
                         analyzeQuery(stmt, config_.catalog));
  std::vector<std::int32_t> chunks;
  RewriteResult rewrite;
  const RewriteResult* rewritePtr = nullptr;
  if (analyzed.touchesPartitioned()) {
    chunks = resolveChunks(analyzed);
    QueryRewriter rewriter(config_.catalog, chunker_);
    QSERV_ASSIGN_OR_RETURN(rewrite,
                           rewriter.rewrite(analyzed, chunks, "qm_explain"));
    rewritePtr = &rewrite;
  }
  Execution exec;
  std::string dispatchDesc =
      rewritePtr ? describeDispatch(rewrite.chunkQueries) : std::string{};
  exec.result =
      buildExplainPlan(analyzed, chunks, rewritePtr, std::move(dispatchDesc))
          .toTable();
  exec.soloTiming = simio::simulateQuery({}, config_.cost);
  return exec;
}

Result<QservFrontend::Execution> QservFrontend::runUserQuery(
    const std::string& sql, bool forceProfile) {
  auto& metrics = CzarMetrics::instance();
  metrics.queries.add();
  util::Stopwatch wall;
  // The trace id doubles as the process-unique query id; workers resolve it
  // through the registry while the query is in flight.
  util::TracePtr trace = util::TraceRegistry::instance().create(sql);
  auto live = beginQuery(trace->id(), sql);

  Result<Execution> result = runQuery(sql, *live, trace);
  util::TraceRegistry::instance().release(trace->id());
  endQuery(live, result.status());
  double wallSeconds = wall.elapsedSeconds();
  metrics.querySeconds.observe(wallSeconds);

  if (profilingEnabled_.load(std::memory_order_relaxed) || forceProfile) {
    auto profile = std::make_shared<QueryProfile>(buildQueryProfile(*trace));
    profile->wallSeconds = wallSeconds;
    if (result.isOk()) {
      profile->queryClass = queryClassName(result->queryClass);
      // The merge/result tallies the czar knows directly win over the
      // span-derived ones.
      profile->rowsMerged = static_cast<std::int64_t>(result->rowsMerged);
      if (result->result) {
        profile->resultRows =
            static_cast<std::int64_t>(result->result->numRows());
      }
    } else {
      profile->status = result.status().toString();
    }
    recordProfile(profile);
    if (result.isOk()) result->profile = profile;
  }
  if (!result.isOk()) {
    metrics.queriesFailed.add();
    return result;
  }
  result->queryId = trace->id();
  result->trace = std::move(trace);
  result->wallSeconds = wallSeconds;
  return result;
}

void QservFrontend::recordProfile(
    const std::shared_ptr<const QueryProfile>& profile) {
  {
    std::lock_guard lock(processMutex_);
    profiles_.push_front(profile);
    while (profiles_.size() > config_.profileHistory) profiles_.pop_back();
  }
  {
    const QueryProfile& p = *profile;
    std::vector<sql::Value> row = {static_cast<std::int64_t>(p.queryId),
                                   p.sql,
                                   p.status,
                                   p.queryClass,
                                   p.wallSeconds,
                                   p.stageSeconds(),
                                   p.chunks,
                                   p.attempts,
                                   p.retries,
                                   p.faults,
                                   p.rowsMerged,
                                   p.resultRows,
                                   p.bytesTransferred,
                                   p.queueWait.p50,
                                   p.queueWait.max,
                                   p.execute.p50,
                                   p.execute.max,
                                   p.transfer.p50,
                                   p.transfer.max};
    std::lock_guard lock(statsMutex_);
    statsRows_.push_back(std::move(row));
    if (statsRows_.size() > config_.queryStatsHistory) {
      statsRows_.erase(
          statsRows_.begin(),
          statsRows_.end() - static_cast<std::ptrdiff_t>(
                                 config_.queryStatsHistory));
    }
    // Rebuilding the registered snapshot here would copy the whole history
    // (19 columns x queryStatsHistory rows, SQL text included) on every
    // query; defer it to flushQueryStats() on the metadata read path.
    statsDirty_ = true;
  }
  if (config_.slowQuerySeconds > 0.0 &&
      profile->wallSeconds >= config_.slowQuerySeconds) {
    QLOG(kWarn, "slowquery") << profile->toJson();
  }
}

void QservFrontend::flushQueryStats() {
  std::lock_guard lock(statsMutex_);
  if (!statsDirty_) return;
  // The registered table may be mid-scan by a concurrent frontend SELECT,
  // and registered table contents are never mutated (database.h). Publish
  // pending rows by rebuilding a fresh snapshot and atomically swapping it
  // in; in-flight readers keep their old TablePtr.
  auto table = std::make_shared<sql::Table>("QueryStats", queryStatsSchema());
  (void)table->appendRows(statsRows_);
  (void)metadata_.replaceTable(std::move(table));
  statsDirty_ = false;
}

std::shared_ptr<const QueryProfile> QservFrontend::profileFor(
    std::uint64_t id) const {
  std::lock_guard lock(processMutex_);
  for (const auto& p : profiles_) {
    if (p->queryId == id) return p;
  }
  return nullptr;
}

Result<QservFrontend::Execution> QservFrontend::runQuery(
    const std::string& sql, LiveQuery& live, const util::TracePtr& trace) {
  Execution exec;

  live.setState("analyzing");
  sql::SelectStmt stmt;
  {
    util::ScopedSpan span(trace, "czar", "parse");
    QSERV_ASSIGN_OR_RETURN(stmt, sql::parseSelect(sql));
  }
  AnalyzedQuery analyzed;
  {
    util::ScopedSpan span(trace, "czar", "analyze");
    QSERV_ASSIGN_OR_RETURN(analyzed, analyzeQuery(stmt, config_.catalog));
  }

  // Queries that touch no partitioned table run on the frontend directly.
  if (!analyzed.touchesPartitioned()) {
    live.setState("executing on frontend");
    util::ScopedSpan span(trace, "czar", "frontend-execute");
    flushQueryStats();  // metadata read: publish pending QueryStats rows
    sql::ExecStats stats;
    QSERV_ASSIGN_OR_RETURN(
        exec.result, sql::executeSelect(metadata_, analyzed.stmt, stats));
    exec.soloTiming = simio::simulateQuery({}, config_.cost);
    return exec;
  }

  live.setState("rewriting");
  std::vector<std::int32_t> chunks;
  {
    util::ScopedSpan span(trace, "czar", "chunk-prune");
    chunks = resolveChunks(analyzed);
    span.attr("chunks", static_cast<std::int64_t>(chunks.size()));
  }
  std::string mergeTable =
      util::format("qm_%llu", static_cast<unsigned long long>(
                                  nextQueryId_.fetch_add(1)));
  QueryRewriter rewriter(config_.catalog, chunker_);
  RewriteResult rewrite;
  {
    util::ScopedSpan span(trace, "czar", "rewrite");
    QSERV_ASSIGN_OR_RETURN(rewrite,
                           rewriter.rewrite(analyzed, chunks, mergeTable));
    span.attr("chunkQueries",
              static_cast<std::int64_t>(rewrite.chunkQueries.size()));
    // Scheduler class, shipped to every worker in the -- QSERV-CLASS
    // payload header (scan_scheduler.h): point/secondary-index lookups ride
    // the interactive priority lane, multi-chunk scans the shared-scan lane.
    exec.queryClass = deriveQueryClass(analyzed, chunks.size());
    for (auto& spec : rewrite.chunkQueries) {
      spec.queryClass = exec.queryClass;
    }
    span.attr("class", queryClassName(exec.queryClass));
  }

  live.chunksTotal.store(rewrite.chunkQueries.size(),
                         std::memory_order_relaxed);
  live.setState("dispatching");
  QLOG(kInfo, "czar") << "dispatching " << rewrite.chunkQueries.size()
                      << " chunk queries for: " << sql;
  // Pipelined dispatch + merge: chunk results flow through a bounded queue
  // into the merger the moment they arrive — the czar never holds every
  // dump in memory at once, and the queue bound is the backpressure that
  // lets a slow merger throttle collection (and, in batched mode, the
  // workers' stream windows behind it). One czar span covers the whole
  // overlapped interval so the profile's stage times stay sequential.
  ResultMerger merger(mergeTable, trace);
  std::vector<ChunkResult> results;  // dumps dropped after merging
  Result<DispatchReport> report = Status::internal("dispatch never ran");
  Status mergeStatus = Status::ok();
  {
    util::ScopedSpan span(trace, "czar", "dispatch");
    DispatchOptions options;
    if (config_.queryDeadlineSeconds > 0.0) {
      options.deadline = util::Deadline::afterSeconds(
          config_.queryDeadlineSeconds);
    }
    util::MpmcQueue<ChunkResult> resultQueue(
        static_cast<std::size_t>(std::max(1, config_.mergeQueueDepth)));
    std::thread dispatchThread([&] {
      report = dispatcher_.runStreamed(rewrite.chunkQueries, resultQueue,
                                       trace, &live.chunksCompleted, options);
      resultQueue.close();
    });
    while (std::optional<ChunkResult> r = resultQueue.pop()) {
      if (mergeStatus.isOk()) {
        mergeStatus = merger.mergeDump(r->dump);
        if (!mergeStatus.isOk()) {
          // Stop the work behind the queue, but keep draining it so the
          // dispatcher is never wedged against a full sink.
          options.cancel.cancel(mergeStatus);
        }
      }
      r->dump.clear();  // merged (or abandoned); keep only the accounting
      results.push_back(std::move(*r));
    }
    dispatchThread.join();
  }
  QSERV_RETURN_IF_ERROR(mergeStatus);
  QSERV_RETURN_IF_ERROR(report.status());
  exec.chunksDispatched = results.size();
  exec.dispatchMode = report->mode;
  exec.dispatchBatches = report->batches;
  CzarMetrics::instance().chunksDispatched.add(results.size());

  live.setState("finalizing");
  {
    util::ScopedSpan span(trace, "czar", "final-aggregation");
    QSERV_ASSIGN_OR_RETURN(exec.result,
                           merger.finalize(rewrite.merge.finalSelectSql));
  }
  exec.rowsMerged = merger.rowsMerged();

  // Virtual-time accounting. Batched dispatch replaces the per-chunk master
  // overhead with the amortized per-batch cost (§7.6's fix).
  double dispatchSec = -1.0;
  if (exec.dispatchMode == DispatchMode::kBatched) {
    dispatchSec = simio::amortizedBatchDispatchSec(
        results.size(), exec.dispatchBatches, config_.cost);
  }
  exec.simTasks.reserve(results.size());
  exec.accounting.reserve(results.size());
  for (const auto& r : results) {
    simio::SimChunkTask task;
    task.worker = workerIndexOf(r.workerId);
    task.serviceSec = simio::workerServiceSeconds(r.observables, config_.cost);
    task.collectSec = simio::masterCollectSeconds(r.observables, config_.cost);
    task.dispatchSec = dispatchSec;
    task.interactive = exec.queryClass == QueryClass::kInteractive;
    exec.simTasks.push_back(task);
    exec.accounting.push_back(
        ChunkAccounting{r.chunkId, r.workerId, r.observables});
  }
  exec.soloTiming = simio::simulateQuery(exec.simTasks, config_.cost);
  return exec;
}

}  // namespace qserv::core
