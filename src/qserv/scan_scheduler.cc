#include "qserv/scan_scheduler.h"

#include <algorithm>
#include <iterator>

#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace qserv::core {

namespace {
/// Process-wide scheduler instruments (shared by all in-process workers,
/// like the other worker.* counters).
struct SchedulerMetrics {
  util::Counter& scanPasses;
  util::Counter& scanJoins;
  util::Counter& budgetWaits;
  util::Counter& slowScanEvictions;
  util::Histogram& scanGroupSize;
  util::Histogram& budgetWaitSeconds;

  static SchedulerMetrics& instance() {
    auto& reg = util::MetricsRegistry::instance();
    static SchedulerMetrics* m = new SchedulerMetrics{
        reg.counter("worker.scan_passes"),
        reg.counter("worker.scan_joins"),
        reg.counter("worker.budget_waits"),
        reg.counter("worker.slow_scan_evictions"),
        reg.histogram("worker.scan_group_size"),
        reg.histogram("worker.budget_wait_seconds"),
    };
    return *m;
  }
};

constexpr std::string_view kClassHeader = "-- QSERV-CLASS:";
}  // namespace

const char* queryClassName(QueryClass cls) {
  switch (cls) {
    case QueryClass::kInteractive:
      return "interactive";
    case QueryClass::kScan:
      return "scan";
  }
  return "scan";
}

std::string classHeaderLine(QueryClass cls) {
  return std::string("-- QSERV-CLASS: ") + queryClassName(cls) + "\n";
}

std::optional<QueryClass> parseClassHeader(const std::string& payload) {
  // The header block is the run of leading `--` comment lines; other
  // headers (-- QSERV-TRACE, -- SUBCHUNKS) may precede the CLASS line.
  std::size_t pos = 0;
  while (pos + 2 <= payload.size() && payload[pos] == '-' &&
         payload[pos + 1] == '-') {
    std::size_t eol = payload.find('\n', pos);
    std::size_t len =
        eol == std::string::npos ? payload.size() - pos : eol - pos;
    std::string_view line(payload.data() + pos, len);
    if (util::startsWith(line, kClassHeader)) {
      auto name = util::trim(line.substr(kClassHeader.size()));
      if (name == "interactive") return QueryClass::kInteractive;
      if (name == "scan") return QueryClass::kScan;
      return std::nullopt;
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return std::nullopt;
}

ScanScheduler::ScanScheduler(std::string workerId, ScanSchedulerConfig config)
    : workerId_(std::move(workerId)),
      config_(config),
      budget_(config.scanMemoryBudgetBytes) {
  paused_ = config_.startPaused;
}

bool ScanScheduler::enqueue(ScanTask task) {
  {
    std::lock_guard lock(mu_);
    if (shuttingDown_) return false;
    routeTask(std::move(task));
  }
  cv_.notify_one();
  return true;
}

bool ScanScheduler::enqueueAll(std::vector<ScanTask> tasks) {
  {
    std::lock_guard lock(mu_);
    if (shuttingDown_) return false;
    for (ScanTask& task : tasks) routeTask(std::move(task));
  }
  cv_.notify_all();
  return true;
}

bool ScanScheduler::routeTask(ScanTask&& task) {
  if (config_.mode == SchedulerMode::kFifo ||
      task.cls == QueryClass::kInteractive) {
    // kFifo: the paper's single queue, classes ignored. kSharedScan: the
    // interactive priority lane.
    interactive_.push_back(std::move(task));
    return true;
  }
  int tier = tierOf(task.queryId);
  auto active = activePass_.find({tier, task.chunkId});
  if (active != activePass_.end()) {
    // The chunk's pass is in flight: merge into the open group and share
    // the read instead of paying a second pass.
    passes_[active->second].joined.push_back(std::move(task));
    SchedulerMetrics::instance().scanJoins.add();
    return true;
  }
  scans_[tier].push_back(std::move(task));
  return true;
}

ScanScheduler::Claim ScanScheduler::claim() {
  auto& metrics = SchedulerMetrics::instance();
  std::unique_lock lock(mu_);
  bool budgetWaiting = false;
  util::Stopwatch budgetWatch;
  auto finishBudgetWait = [&] {
    if (!budgetWaiting) return;
    metrics.budgetWaitSeconds.observe(budgetWatch.elapsedSeconds());
    budgetWaiting = false;
  };
  for (;;) {
    cv_.wait(lock, [&] {
      return shuttingDown_ ||
             (!paused_ && (!interactive_.empty() ||
                           !scans_[kFastTier].empty() ||
                           !scans_[kSlowTier].empty()));
    });
    if (shuttingDown_ && interactive_.empty() &&
        scans_[kFastTier].empty() && scans_[kSlowTier].empty()) {
      return {};  // drained
    }
    // Interactive lane first: these tasks never wait behind a scan group
    // and never touch the memory budget.
    if (!interactive_.empty()) {
      finishBudgetWait();
      Claim claim;
      claim.tasks.push_back(std::move(interactive_.front()));
      interactive_.pop_front();
      ++inflight_;
      return claim;
    }
    // Scan lanes, fast tier before slow.
    for (int tier = kFastTier; tier < kNumTiers; ++tier) {
      std::deque<ScanTask>& lane = scans_[tier];
      if (lane.empty()) continue;
      std::int32_t chunk = lane.front().chunkId;
      std::string memKey;
      if (!shuttingDown_) {  // at shutdown, drain without budgeting
        memKey = "chunk:" + std::to_string(chunk);
        if (!budget_.tryLock(memKey, lane.front().memoryBytes)) {
          // Memory is full: wait for a pass to close (closePass notifies)
          // or an interactive arrival, then re-evaluate from the top.
          if (!budgetWaiting) {
            budgetWaiting = true;
            budgetWatch.reset();
            metrics.budgetWaits.add();
          }
          memKey.clear();
          continue;
        }
      }
      finishBudgetWait();
      Claim claim;
      for (auto it = lane.begin(); it != lane.end();) {
        if (it->chunkId == chunk) {
          claim.tasks.push_back(std::move(*it));
          it = lane.erase(it);
        } else {
          ++it;
        }
      }
      claim.passId = nextPassId_++;
      Pass& pass = passes_[claim.passId];
      pass.tier = tier;
      pass.chunkId = chunk;
      pass.memKey = std::move(memKey);
      activePass_[{tier, chunk}] = claim.passId;
      inflight_ += claim.tasks.size();
      metrics.scanPasses.add();
      metrics.scanGroupSize.observe(
          static_cast<double>(claim.tasks.size()));
      return claim;
    }
    if (budgetWaiting) {
      // Every claimable scan is budget-blocked and no interactive work is
      // queued: sleep until a pass closes or something arrives.
      cv_.wait(lock);
    }
  }
}

std::vector<ScanTask> ScanScheduler::takeJoined(std::uint64_t passId) {
  std::unique_lock lock(mu_);
  auto it = passes_.find(passId);
  if (it == passes_.end()) return {};
  Pass& pass = it->second;
  if (!pass.joined.empty()) {
    std::vector<ScanTask> out;
    out.reserve(pass.joined.size());
    std::move(pass.joined.begin(), pass.joined.end(),
              std::back_inserter(out));
    pass.joined.clear();
    inflight_ += out.size();
    return out;
  }
  // Empty drain closes the pass atomically: an enqueue after this point
  // finds no active pass and queues a fresh one — a join is never lost.
  closePass(it);
  lock.unlock();
  cv_.notify_all();
  return {};
}

void ScanScheduler::closePass(std::map<std::uint64_t, Pass>::iterator it) {
  Pass& pass = it->second;
  activePass_.erase({pass.tier, pass.chunkId});
  if (!pass.memKey.empty()) budget_.unlock(pass.memKey);
  passes_.erase(it);
}

void ScanScheduler::finishTask(const ScanTask& task, double execSeconds,
                               bool executed) {
  std::lock_guard lock(mu_);
  if (inflight_ > 0) --inflight_;
  if (executed && config_.mode == SchedulerMode::kSharedScan &&
      task.cls == QueryClass::kScan && config_.slowScanFactor > 0.0) {
    rateQuery(task.queryId, execSeconds);
  }
}

int ScanScheduler::tierOf(std::uint64_t queryId) const {
  auto it = rates_.find(queryId);
  return it != rates_.end() && it->second.slow ? kSlowTier : kFastTier;
}

void ScanScheduler::rateQuery(std::uint64_t queryId, double execSeconds) {
  auto& rate = rates_[queryId];
  rate.ewmaSec = rate.ewmaSec == 0.0
                     ? execSeconds
                     : 0.5 * rate.ewmaSec + 0.5 * execSeconds;
  // The reference tracks fast-tier behaviour only: a query already rated
  // slow must not drag the bar up and mask other slow queries.
  if (!rate.slow) {
    refSec_ = refSec_ == 0.0 ? execSeconds
                             : 0.8 * refSec_ + 0.2 * execSeconds;
  }
  if (!rate.slow && queryId != 0 && refSec_ > 0.0 &&
      rate.ewmaSec > config_.slowScanFactor * refSec_) {
    rate.slow = true;
    SchedulerMetrics::instance().slowScanEvictions.add();
    evictToSlowTier(queryId);
  }
  // Bound the rating table: drop fast-rated entries once it grows well past
  // any realistic concurrent-query count.
  if (rates_.size() > 2048) {
    for (auto it = rates_.begin(); it != rates_.end() && rates_.size() > 1024;) {
      if (!it->second.slow && it->first != queryId) {
        it = rates_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ScanScheduler::evictToSlowTier(std::uint64_t queryId) {
  // Queued fast-tier tasks of the newly slow query move to the slow lane so
  // they ride their own pass instead of dragging the fast tier. Tasks
  // already joined to an open pass stay: they share a read that is already
  // being paid.
  std::deque<ScanTask>& fast = scans_[kFastTier];
  for (auto it = fast.begin(); it != fast.end();) {
    if (it->queryId == queryId) {
      scans_[kSlowTier].push_back(std::move(*it));
      it = fast.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t ScanScheduler::depth() const {
  std::lock_guard lock(mu_);
  std::size_t queued = interactive_.size() + scans_[kFastTier].size() +
                       scans_[kSlowTier].size();
  for (const auto& [id, pass] : passes_) queued += pass.joined.size();
  return queued + inflight_;
}

std::size_t ScanScheduler::queuedOnly() const {
  std::lock_guard lock(mu_);
  std::size_t queued = interactive_.size() + scans_[kFastTier].size() +
                       scans_[kSlowTier].size();
  for (const auto& [id, pass] : passes_) queued += pass.joined.size();
  return queued;
}

bool ScanScheduler::isSlowQuery(std::uint64_t queryId) const {
  std::lock_guard lock(mu_);
  auto it = rates_.find(queryId);
  return it != rates_.end() && it->second.slow;
}

bool ScanScheduler::isShuttingDown() const {
  std::lock_guard lock(mu_);
  return shuttingDown_;
}

void ScanScheduler::resume() {
  {
    std::lock_guard lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void ScanScheduler::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (shuttingDown_) return;
    shuttingDown_ = true;
    paused_ = false;
  }
  cv_.notify_all();
}

}  // namespace qserv::core
