/// \file batch_codec.h
/// \brief Wire format of batched per-worker dispatch (§7.6 remedy).
///
/// Production Qserv batches all chunk tasks destined for one worker into a
/// single "UberJob" request and streams per-chunk results back over one
/// shared channel. This codec defines both directions of that protocol:
///
/// Request (written once to /batch/<md5-of-request>):
///   -- QSERV-BATCH <nChunks> <streamWindow>\n
///   --#CHUNK <chunkId> <payloadBytes>\n
///   <payloadBytes bytes: the unchanged per-chunk query payload>\n
///   ... repeated nChunks times ...
///
/// Each embedded payload is byte-identical to what per-chunk dispatch would
/// have written to /query2/<chunkId> (trace header included), so a chunk's
/// result hash — the MD5 of its payload — is the same in both modes and a
/// failed batch member can fall back to the per-chunk retry path verbatim.
///
/// Result frames (each one FileStore entry at /bstream/<batchId>):
///   --#FRAME <chunkId> ok <bodyBytes>\n<body>     body = the normal dump,
///       observables comment and MD5 integrity trailer included, or
///   --#FRAME <chunkId> err <code> <bodyBytes>\n<body>   body = the worker's
///       failure Status message, <code> its numeric ErrorCode.
///
/// Integrity: the per-chunk MD5 trailer inside each ok-frame body is
/// preserved end to end; a frame whose header fails to parse is counted as
/// damaged and its chunk is re-fetched through the per-chunk path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace qserv::core {

/// One chunk's slice of a batch request.
struct BatchChunkRequest {
  std::int32_t chunkId = 0;
  std::string payload;  ///< per-chunk query payload, unchanged
};

/// Serialize \p chunks into one batch request payload. \p streamWindow is
/// the backpressure bound the worker applies to unread result frames
/// (0 = unbounded).
std::string encodeBatchRequest(const std::vector<BatchChunkRequest>& chunks,
                               int streamWindow);

/// Parsed batch request.
struct BatchRequest {
  std::vector<BatchChunkRequest> chunks;
  int streamWindow = 0;
};

/// Decode a batch request; kInvalidArgument on any framing violation.
util::Result<BatchRequest> decodeBatchRequest(const std::string& payload);

/// One chunk's result frame on the batch stream.
struct BatchResultFrame {
  std::int32_t chunkId = 0;
  util::Status status;  ///< ok, or the worker-side failure
  std::string body;     ///< dump (ok) with trailer; empty on error frames
};

/// Serialize an ok frame carrying \p dump.
std::string encodeResultFrame(std::int32_t chunkId, const std::string& dump);

/// Serialize an error frame carrying \p status.
std::string encodeErrorFrame(std::int32_t chunkId, const util::Status& status);

/// Decode one result frame; kDataLoss when the header is damaged.
util::Result<BatchResultFrame> decodeResultFrame(const std::string& frame);

}  // namespace qserv::core
