/// \file cluster.h
/// \brief In-process Qserv cluster assembly (workers + redirector + frontend)
/// and synthetic sky-catalog construction — shared by integration tests,
/// examples, and the paper-reproduction benches.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "datagen/catalog_gen.h"
#include "datagen/partitioner.h"
#include "qserv/czar.h"
#include "qserv/repair_controller.h"
#include "qserv/worker.h"
#include "xrd/data_server.h"
#include "xrd/fault_injector.h"
#include "xrd/redirector.h"

namespace qserv::core {

/// Synthetic-sky construction parameters.
struct SkyDataOptions {
  std::int64_t basePatchObjects = 2000;
  bool withSources = true;
  /// Only duplicator copies intersecting this region are materialized.
  sphgeom::SphericalBox region = sphgeom::SphericalBox::fullSky();
  /// Sources are generated only for copies intersecting this region
  /// (empty = same as `region`). Mirrors the paper's Source clipping to
  /// +-54 deg declination for disk-space reasons.
  std::optional<sphgeom::SphericalBox> sourceRegion;
  datagen::Duplicator::Options duplicator;
  datagen::BasePatchOptions basePatch;
};

/// Generate a PT1.1-style duplicated sky and partition it (paper §6.1.2).
util::Result<datagen::PartitionedCatalog> buildSkyCatalog(
    const CatalogConfig& catalog, const SkyDataOptions& options);

struct ClusterOptions {
  int numWorkers = 4;
  int replication = 1;  ///< copies of each chunk across distinct workers
  WorkerConfig worker;
  FrontendConfig frontend;
  /// Fault plan injected into every worker's ofs plugin (empty = no
  /// injection, workers run bare). Per-server RNG streams are decorrelated
  /// from the plan seed, so one plan exercises different faults per worker.
  xrd::FaultPlan faults;
  /// Per-worker overrides by worker index; a worker listed here gets this
  /// plan instead of `faults` (use an empty plan to exempt a worker).
  std::map<int, xrd::FaultPlan> workerFaults;
  /// Circuit-breaker tuning for the redirector's per-server breakers.
  util::CircuitBreakerPolicy breaker;
  /// Self-healing control-plane tuning. The controller is always
  /// constructed (repairController()); its monitor thread only runs after
  /// an explicit start() — tests drive probeOnce()/repairOnce() directly.
  RepairConfig repair;
};

/// §7.6 "Distributed management": "One way to distribute the management
/// load is to launch multiple master instances. This is simple and requires
/// no code changes other than some logic in the MySQL proxy to load-balance
/// between different Qserv masters." FrontendPool is that proxy logic: k
/// independent frontends (each with its own metadata database, secondary
/// index, and dispatcher) sharing one worker fabric, with round-robin
/// query routing.
class FrontendPool {
 public:
  FrontendPool(const FrontendConfig& config, xrd::RedirectorPtr redirector,
               std::vector<std::int32_t> availableChunks, int numFrontends);

  /// Load the secondary index into every frontend.
  util::Status loadIndex(std::span<const datagen::SecondaryIndexEntry> entries);

  /// Route one query to the next frontend (round-robin).
  util::Result<QservFrontend::Execution> query(const std::string& sql);

  std::size_t size() const { return frontends_.size(); }
  QservFrontend& frontend(std::size_t i) { return *frontends_[i]; }

  /// Queries routed to each frontend so far.
  std::vector<std::uint64_t> routedCounts() const;

 private:
  std::vector<std::unique_ptr<QservFrontend>> frontends_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> routed_;
  std::atomic<std::uint64_t> next_{0};
};

/// A whole Qserv deployment in one process: N workers (each an Xrootd data
/// server running the Qserv ofs plugin over its own database), a redirector,
/// and a frontend. Chunks are placed round-robin over workers in chunkId
/// order — consecutive chunks land on different nodes, spreading
/// density-induced skew (paper §4.4).
class MiniCluster {
 public:
  static util::Result<std::unique_ptr<MiniCluster>> create(
      ClusterOptions options, const datagen::PartitionedCatalog& catalog);

  QservFrontend& frontend() { return *frontend_; }
  xrd::RedirectorPtr redirector() { return redirector_; }
  /// The self-healing control plane, wired to this cluster's redirector and
  /// frontend. Not monitoring until start() is called.
  RepairController& repairController() { return *repair_; }

  std::size_t numWorkers() const { return workers_.size(); }
  Worker& worker(std::size_t i) { return *workers_[i]; }
  xrd::DataServer& server(std::size_t i) { return *servers_[i]; }
  /// Worker \p i's fault injector, or nullptr when it runs without one
  /// (tests poke injected-fault counters and isDown()/revive() through it).
  xrd::FaultyOfsPlugin* injector(std::size_t i) {
    return injectors_[i].get();
  }

  /// All chunk ids holding data, ascending.
  const std::vector<std::int32_t>& chunkIds() const { return chunkIds_; }

  /// Chunks owned (primary copy) by worker \p i.
  const std::vector<std::int32_t>& chunksOfWorker(std::size_t i) const {
    return primaryChunks_[i];
  }

  ~MiniCluster();
  MiniCluster(const MiniCluster&) = delete;
  MiniCluster& operator=(const MiniCluster&) = delete;

 private:
  MiniCluster() = default;

  ClusterOptions options_;
  std::vector<std::shared_ptr<sql::Database>> databases_;
  std::vector<std::shared_ptr<Worker>> workers_;
  std::vector<std::shared_ptr<xrd::FaultyOfsPlugin>> injectors_;
  std::vector<xrd::DataServerPtr> servers_;
  xrd::RedirectorPtr redirector_;
  std::unique_ptr<QservFrontend> frontend_;
  std::unique_ptr<RepairController> repair_;
  std::vector<std::int32_t> chunkIds_;
  std::vector<std::vector<std::int32_t>> primaryChunks_;
};

}  // namespace qserv::core
