/// \file observables_codec.h
/// \brief In-band encoding of work observables inside result dumps.
///
/// The worker appends one SQL comment line to the mysqldump-style result
/// stream; comments are ignored when the master replays the dump, but the
/// dispatcher parses the line to feed the virtual-time queue simulation.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "simio/cost_model.h"

namespace qserv::core {

/// "-- QSERV-OBS bytes=... rows=... pairs=... built=... idx=... rbytes=...
///  rrows=...\n"
std::string encodeObservables(const simio::WorkObservables& w);

/// Parse the observables comment from a dump; nullopt when absent.
std::optional<simio::WorkObservables> decodeObservables(std::string_view dump);

}  // namespace qserv::core
