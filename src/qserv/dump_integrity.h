/// \file dump_integrity.h
/// \brief Content checksums on result-dump envelopes.
///
/// The paper's result transfer replays a worker's dump byte stream straight
/// into the master's database (§5.4) — a flipped bit in transit silently
/// corrupts the merged result. Workers therefore append one trailing SQL
/// comment `-- QSERV-MD5: <hex>\n` carrying the MD5 of everything before it
/// (the dump proper plus the observables comment; both SQL-dump and binary
/// transfer formats, since comments are ignored by the replay path). The
/// dispatcher verifies the trailer on read and treats a mismatch as a
/// retryable fault — the dump is re-fetched from another replica instead of
/// being replayed into the result table. Dumps without a trailer verify
/// trivially (producers other than Worker, e.g. test plugins).
#pragma once

#include <string>
#include <string_view>

#include "util/status.h"

namespace qserv::core {

/// The trailer line for \p dump: "-- QSERV-MD5: <md5 of dump>\n".
std::string dumpChecksumTrailer(std::string_view dump);

/// Append the checksum trailer to \p dump in place.
void appendDumpChecksum(std::string& dump);

/// True when \p dump ends with a checksum trailer (says nothing about
/// whether it matches).
bool hasDumpChecksum(std::string_view dump);

/// Verify a trailing checksum: OK when the trailer matches the content
/// before it, or when no trailer is present; kDataLoss on mismatch (a
/// corrupt or truncated dump).
util::Status verifyDumpChecksum(std::string_view dump);

}  // namespace qserv::core
