#include "qserv/secondary_index.h"

#include <algorithm>

#include "util/strings.h"

namespace qserv::core {

SecondaryIndex::SecondaryIndex(sql::Database& metadata) : metadata_(metadata) {
  if (!metadata_.hasTable(kTableName)) {
    auto status = metadata_.execute(
        util::format("CREATE TABLE %s (objectId BIGINT, chunkId BIGINT, "
                     "subChunkId BIGINT)",
                     kTableName));
    (void)status;  // creation can only fail on a pre-existing table
  }
}

util::Status SecondaryIndex::load(
    std::span<const datagen::SecondaryIndexEntry> entries) {
  sql::TablePtr table = metadata_.findTable(kTableName);
  if (!table) return util::Status::internal("ObjectIndex table missing");
  // Incremental loads happen while the frontend serves queries (the ingest
  // path), and concurrent lookups scan the registered table — so never
  // mutate it in place. Build a fresh snapshot (old rows + new entries) and
  // swap it in atomically; replaceTable rebuilds the objectId index over
  // the new contents.
  auto next = std::make_shared<sql::Table>(kTableName, table->schema());
  QSERV_RETURN_IF_ERROR(next->appendFrom(*table));
  for (const auto& e : entries) {
    QSERV_RETURN_IF_ERROR(next->appendRow(std::vector<sql::Value>{
        sql::Value(e.objectId), sql::Value(static_cast<std::int64_t>(e.chunkId)),
        sql::Value(static_cast<std::int64_t>(e.subChunkId))}));
  }
  QSERV_RETURN_IF_ERROR(metadata_.replaceTable(std::move(next)));
  // (Re)build the index so lookups are probes, not scans (the first load
  // creates it; replaceTable keeps it fresh on later loads).
  QSERV_RETURN_IF_ERROR(metadata_.createIndex(kTableName, "objectId"));
  return util::Status::ok();
}

util::Result<std::vector<SecondaryIndex::Location>> SecondaryIndex::lookup(
    std::span<const std::int64_t> objectIds) const {
  std::vector<Location> out;
  if (objectIds.empty()) return out;
  // The lookup is itself a SQL query on the metadata database (§5.5).
  std::vector<std::string> ids;
  ids.reserve(objectIds.size());
  for (std::int64_t id : objectIds) ids.push_back(std::to_string(id));
  std::string sql =
      util::format("SELECT objectId, chunkId, subChunkId FROM %s WHERE "
                   "objectId IN (%s)",
                   kTableName, util::join(ids, ", ").c_str());
  QSERV_ASSIGN_OR_RETURN(sql::TablePtr result, metadata_.execute(sql));
  out.reserve(result->numRows());
  for (std::size_t r = 0; r < result->numRows(); ++r) {
    out.push_back(Location{result->cell(r, 0).asInt(),
                           static_cast<std::int32_t>(result->cell(r, 1).asInt()),
                           static_cast<std::int32_t>(result->cell(r, 2).asInt())});
  }
  return out;
}

util::Result<std::vector<std::int32_t>> SecondaryIndex::chunksFor(
    std::span<const std::int64_t> objectIds) const {
  QSERV_ASSIGN_OR_RETURN(auto locations, lookup(objectIds));
  std::vector<std::int32_t> out;
  out.reserve(locations.size());
  for (const auto& loc : locations) out.push_back(loc.chunkId);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t SecondaryIndex::size() const {
  sql::TablePtr table = metadata_.findTable(kTableName);
  return table ? table->numRows() : 0;
}

}  // namespace qserv::core
