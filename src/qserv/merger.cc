#include "qserv/merger.h"

#include "qserv/dump_integrity.h"
#include "sql/dump.h"
#include "sql/rowcodec.h"
#include "util/metrics.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace qserv::core {

namespace {
struct MergerMetrics {
  util::Counter& rowsMerged;
  util::Counter& dumpsReplayed;
  util::Counter& checksumRejects;
  util::Counter& binaryPayloads;
  util::Histogram& dumpReplaySeconds;

  static MergerMetrics& instance() {
    auto& reg = util::MetricsRegistry::instance();
    static MergerMetrics* m = new MergerMetrics{
        reg.counter("merger.rows_merged"),
        reg.counter("merger.dumps_replayed"),
        reg.counter("merger.checksum_rejects"),
        reg.counter("merger.binary_payloads"),
        reg.histogram("merger.dump_replay_seconds"),
    };
    return *m;
  }
};
}  // namespace

ResultMerger::ResultMerger(std::string mergeTable, util::TracePtr trace)
    : db_("merge"), mergeTable_(std::move(mergeTable)),
      trace_(std::move(trace)) {}

ResultMerger::~ResultMerger() {
  (void)db_.execute("DROP TABLE IF EXISTS " + mergeTable_);
}

util::Status ResultMerger::mergeDump(const std::string& dump) {
  auto& metrics = MergerMetrics::instance();
  util::Stopwatch watch;
  util::ScopedSpan span(trace_, "merger", "replay dump");
  span.attr("dumpBytes", static_cast<std::int64_t>(dump.size()));
  // Last line of defense: the dispatcher already verifies-and-retries, but a
  // corrupt dump must never reach the result table through any path.
  if (util::Status integrity = verifyDumpChecksum(dump); !integrity.isOk()) {
    metrics.checksumRejects.add();
    span.attr("error", integrity.toString());
    return integrity;
  }
  // Workers may ship either the paper's SQL-dump stream or the §7.1 binary
  // codec; the magic prefix disambiguates.
  sql::TablePtr loaded;
  if (sql::isBinaryTablePayload(dump)) {
    metrics.binaryPayloads.add();
    QSERV_ASSIGN_OR_RETURN(loaded, sql::loadBinaryTable(db_, dump));
  } else {
    QSERV_ASSIGN_OR_RETURN(loaded, sql::loadDump(db_, dump));
  }
  std::string tmp = loaded->name();
  util::Status status = util::Status::ok();
  if (!created_) {
    // Adopt the first dump's table as the merge table: a rename in the
    // catalog, not a row copy.
    status = db_.renameTable(tmp, mergeTable_);
    created_ = status.isOk();
  } else {
    sql::TablePtr merge = db_.findTable(mergeTable_);
    if (!merge) {
      status = util::Status::internal(
          util::format("merge table %s disappeared", mergeTable_.c_str()));
    } else {
      // Typed column-to-column append; rejects mismatched schemas exactly
      // like the old INSERT ... SELECT did.
      status = merge->appendFrom(*loaded);
    }
  }
  if (status.isOk()) {
    rowsMerged_ += loaded->numRows();
    metrics.rowsMerged.add(loaded->numRows());
  }
  // No-op after a successful adopt (tmp was renamed away).
  (void)db_.execute("DROP TABLE IF EXISTS " + tmp);
  metrics.dumpsReplayed.add();
  metrics.dumpReplaySeconds.observe(watch.elapsedSeconds());
  span.attr("rows", static_cast<std::int64_t>(loaded->numRows()));
  return status;
}

util::Status ResultMerger::mergeBinary(const std::string& payload) {
  if (!sql::isBinaryTablePayload(payload)) {
    return util::Status::invalidArgument(
        "mergeBinary: payload is not in binary rowcodec format");
  }
  return mergeDump(payload);
}

util::Result<sql::TablePtr> ResultMerger::finalize(
    const std::string& finalSelectSql) {
  util::ScopedSpan span(trace_, "merger", "finalize");
  if (!created_) {
    // No chunk produced anything (e.g. zero chunks dispatched): an empty
    // result with no schema.
    return std::make_shared<sql::Table>("result", sql::Schema{});
  }
  return db_.execute(finalSelectSql);
}

}  // namespace qserv::core
