#include "qserv/merger.h"

#include "sql/dump.h"
#include "sql/rowcodec.h"
#include "util/strings.h"

namespace qserv::core {

ResultMerger::ResultMerger(std::string mergeTable)
    : db_("merge"), mergeTable_(std::move(mergeTable)) {}

ResultMerger::~ResultMerger() {
  (void)db_.execute("DROP TABLE IF EXISTS " + mergeTable_);
}

util::Status ResultMerger::mergeDump(const std::string& dump) {
  // Workers may ship either the paper's SQL-dump stream or the §7.1 binary
  // codec; the magic prefix disambiguates.
  sql::TablePtr loaded;
  if (sql::isBinaryTablePayload(dump)) {
    QSERV_ASSIGN_OR_RETURN(loaded, sql::loadBinaryTable(db_, dump));
  } else {
    QSERV_ASSIGN_OR_RETURN(loaded, sql::loadDump(db_, dump));
  }
  std::string tmp = loaded->name();
  util::Status status = util::Status::ok();
  if (!created_) {
    auto r = db_.execute(
        util::format("CREATE TABLE %s AS SELECT * FROM %s",
                     mergeTable_.c_str(), tmp.c_str()));
    status = r.status();
    created_ = status.isOk();
  } else {
    auto r = db_.execute(util::format("INSERT INTO %s SELECT * FROM %s",
                                      mergeTable_.c_str(), tmp.c_str()));
    status = r.status();
  }
  if (status.isOk()) rowsMerged_ += loaded->numRows();
  (void)db_.execute("DROP TABLE IF EXISTS " + tmp);
  return status;
}

util::Result<sql::TablePtr> ResultMerger::finalize(
    const std::string& finalSelectSql) {
  if (!created_) {
    // No chunk produced anything (e.g. zero chunks dispatched): an empty
    // result with no schema.
    return std::make_shared<sql::Table>("result", sql::Schema{});
  }
  return db_.execute(finalSelectSql);
}

}  // namespace qserv::core
