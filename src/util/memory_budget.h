/// \file memory_budget.h
/// \brief MemMan-style chunk-memory accounting for shared scans.
///
/// The production Qserv worker reserves the memory a scan group's chunk
/// tables occupy before letting the group run (memman::MemMan /
/// MemFileSet): co-scheduled scans on *different* chunks must not reserve
/// more than the configured budget, while scans sharing one chunk pass
/// share one reservation. This is the same idea at `util` level: a keyed,
/// refcounted lock table. `tryLock(key, bytes)` charges `bytes` the first
/// time a key is locked and is free for every additional lock of the same
/// key (the co-scheduled scans riding one pass); `unlock` releases the
/// charge when the last holder lets go.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace qserv::util {

/// Thread-safe keyed byte budget. Capacity <= 0 means unlimited (every
/// tryLock succeeds). Callers decide what a key means — the worker
/// scheduler uses "chunk:<id>" so all tables of one chunk pass count once.
class MemoryBudget {
 public:
  explicit MemoryBudget(double capacityBytes = 0.0)
      : capacity_(capacityBytes) {}

  /// Reserve \p bytes under \p key. Re-locking an already-locked key always
  /// succeeds and charges nothing (the bytes are already resident).
  /// Anti-starvation rule: when nothing else is locked, a single
  /// over-budget set still proceeds — a scan larger than the whole budget
  /// must not wedge the worker forever.
  bool tryLock(const std::string& key, double bytes) {
    std::lock_guard lock(mu_);
    auto it = sets_.find(key);
    if (it != sets_.end()) {
      ++it->second.refs;
      return true;
    }
    if (capacity_ > 0.0 && lockedBytes_ + bytes > capacity_ &&
        !sets_.empty()) {
      return false;
    }
    sets_[key] = Set{bytes, 1};
    lockedBytes_ += bytes;
    return true;
  }

  /// Drop one reference on \p key; the byte charge is released when the
  /// last reference goes. Unknown keys are ignored (idempotent unlock).
  void unlock(const std::string& key) {
    std::lock_guard lock(mu_);
    auto it = sets_.find(key);
    if (it == sets_.end()) return;
    if (--it->second.refs > 0) return;
    lockedBytes_ -= it->second.bytes;
    if (lockedBytes_ < 0.0) lockedBytes_ = 0.0;
    sets_.erase(it);
  }

  double capacityBytes() const { return capacity_; }

  double lockedBytes() const {
    std::lock_guard lock(mu_);
    return lockedBytes_;
  }

  std::size_t lockedSets() const {
    std::lock_guard lock(mu_);
    return sets_.size();
  }

 private:
  struct Set {
    double bytes = 0.0;
    int refs = 0;
  };

  const double capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Set> sets_;
  double lockedBytes_ = 0.0;
};

}  // namespace qserv::util
