/// \file backoff.h
/// \brief Exponential retry backoff with decorrelated jitter.
///
/// The dispatcher retried failed chunk queries instantly, which hammers a
/// recovering replica and synchronizes retry storms across chunks. Backoff
/// spreads retries out: each sleep is drawn uniformly from
/// [base, multiplier * previous] and capped ("decorrelated jitter",
/// Brooker's variant of full jitter), so concurrent retries decorrelate
/// instead of marching in lockstep. Deterministic under a supplied seed —
/// the fault sweep in EXPERIMENTS.md replays byte-identical schedules.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "util/rng.h"

namespace qserv::util {

/// Tuning for one retry loop.
struct BackoffPolicy {
  std::chrono::microseconds base{5'000};   ///< first (and minimum) sleep
  std::chrono::microseconds cap{500'000};  ///< never sleep longer than this
  double multiplier = 3.0;                 ///< growth of the jitter window
};

/// One retry loop's backoff state. Not thread-safe; make one per retrying
/// operation (they are a few dozen bytes).
class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy, std::uint64_t seed)
      : policy_(policy), rng_(seed), prev_(policy.base) {}

  /// The next sleep duration. First call returns `base` exactly (a cheap,
  /// predictable first retry); later calls decorrelate.
  std::chrono::microseconds next() {
    if (attempts_++ == 0) return prev_;
    auto lo = static_cast<double>(policy_.base.count());
    auto hi = std::max(lo, static_cast<double>(prev_.count()) *
                               policy_.multiplier);
    auto sleep = std::chrono::microseconds(
        static_cast<std::int64_t>(rng_.uniform(lo, hi)));
    prev_ = std::min(sleep, policy_.cap);
    return prev_;
  }

  /// Sleeps handed out so far.
  int attempts() const { return attempts_; }

  /// Restart the schedule (e.g. after a success in a long-lived loop).
  void reset() {
    attempts_ = 0;
    prev_ = policy_.base;
  }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  std::chrono::microseconds prev_;
  int attempts_ = 0;
};

}  // namespace qserv::util
