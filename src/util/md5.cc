#include "util/md5.h"

#include <cassert>
#include <cstring>

namespace qserv::util {

namespace {

// Per-round shift amounts (RFC 1321).
constexpr std::uint32_t kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i+1))) (RFC 1321).
constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

inline std::uint32_t rotl(std::uint32_t x, std::uint32_t n) {
  return (x << n) | (x >> (32 - n));
}

inline std::uint32_t load32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void store32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

Md5::Md5() : a_(0x67452301), b_(0xefcdab89), c_(0x98badcfe), d_(0x10325476) {}

void Md5::processBlock(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load32le(block + 4 * i);

  std::uint32_t a = a_, b = b_, c = c_, d = d_;
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint32_t f, g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }
  a_ += a;
  b_ += b;
  c_ += c;
  d_ += d;
}

void Md5::update(std::string_view data) { update(data.data(), data.size()); }

void Md5::update(const void* data, std::size_t len) {
  assert(!finalized_ && "Md5::update after digest()");
  const auto* p = static_cast<const std::uint8_t*>(data);
  totalLen_ += len;
  if (bufferLen_ > 0) {
    std::size_t take = std::min(len, buffer_.size() - bufferLen_);
    std::memcpy(buffer_.data() + bufferLen_, p, take);
    bufferLen_ += take;
    p += take;
    len -= take;
    if (bufferLen_ == buffer_.size()) {
      processBlock(buffer_.data());
      bufferLen_ = 0;
    }
  }
  while (len >= 64) {
    processBlock(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_.data(), p, len);
    bufferLen_ = len;
  }
}

std::array<std::uint8_t, 16> Md5::digest() {
  assert(!finalized_ && "Md5::digest called twice");
  finalized_ = true;
  std::uint64_t bitLen = totalLen_ * 8;

  // Pad: 0x80, zeros, then 8-byte little-endian bit length.
  std::uint8_t pad[72] = {0x80};
  std::size_t padLen = (bufferLen_ < 56) ? 56 - bufferLen_ : 120 - bufferLen_;
  // Append padding then length through the normal buffered path, but avoid
  // the finalized_ assertion by inlining the buffered logic here.
  std::uint8_t tail[8];
  for (int i = 0; i < 8; ++i)
    tail[i] = static_cast<std::uint8_t>(bitLen >> (8 * i));

  finalized_ = false;  // allow update() for the padding bytes
  update(pad, padLen);
  update(tail, 8);
  finalized_ = true;
  assert(bufferLen_ == 0);

  std::array<std::uint8_t, 16> out{};
  store32le(out.data() + 0, a_);
  store32le(out.data() + 4, b_);
  store32le(out.data() + 8, c_);
  store32le(out.data() + 12, d_);
  return out;
}

std::string Md5::hex(std::string_view data) {
  Md5 h;
  h.update(data);
  auto d = h.digest();
  return toHex(d.data(), d.size());
}

std::string toHex(const std::uint8_t* data, std::size_t len) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 15]);
  }
  return out;
}

}  // namespace qserv::util
