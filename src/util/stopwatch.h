/// \file stopwatch.h
/// \brief Wall-clock stopwatch for instrumentation.
#pragma once

#include <chrono>

namespace qserv::util {

/// Measures elapsed wall time since construction or the last reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsedMillis() const { return elapsedSeconds() * 1e3; }
  std::int64_t elapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qserv::util
