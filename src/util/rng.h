/// \file rng.h
/// \brief Deterministic, seedable random number generation.
///
/// All synthetic-data generation and randomized workloads use this generator
/// so every experiment in EXPERIMENTS.md is exactly reproducible from its
/// seed. The core is splitmix64 feeding xoshiro256**.
#pragma once

#include <cstdint>

namespace qserv::util {

/// splitmix64 step; good for seeding and cheap hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d5ad9bull) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free-enough reduction; bias is
    // negligible for our n << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Approximate standard normal via sum of uniforms is too crude; use
  /// Box-Muller (one value per call, the pair's twin is discarded for
  /// simplicity and determinism).
  double normal(double mean = 0.0, double stddev = 1.0);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace qserv::util
