#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace qserv::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string toUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args2);
    return {};
  }
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string humanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1000.0 && unit < 5) {
    bytes /= 1000.0;
    ++unit;
  }
  return format("%.2f %s", bytes, kUnits[unit]);
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace qserv::util
