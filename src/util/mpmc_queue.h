/// \file mpmc_queue.h
/// \brief Blocking multi-producer/multi-consumer queue.
///
/// Used for worker FIFO task queues and the master's result-collection
/// channel. Supports closing: after close(), producers fail and consumers
/// drain remaining items then observe emptiness.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace qserv::util {

template <typename T>
class MpmcQueue {
 public:
  /// \param maxSize bound on queued items; 0 means unbounded.
  explicit MpmcQueue(std::size_t maxSize = 0) : maxSize_(maxSize) {}

  /// Enqueue \p item; blocks while full. Returns false if closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    notFull_.wait(lock, [&] {
      return closed_ || maxSize_ == 0 || items_.size() < maxSize_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    notEmpty_.notify_one();
    return true;
  }

  /// Enqueue without blocking. Returns false if full or closed.
  bool tryPush(T item) {
    std::lock_guard lock(mutex_);
    if (closed_ || (maxSize_ != 0 && items_.size() >= maxSize_)) return false;
    items_.push_back(std::move(item));
    notEmpty_.notify_one();
    return true;
  }

  /// Blocking dequeue. Returns nullopt when the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    notEmpty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    notFull_.notify_one();
    return item;
  }

  /// Non-blocking dequeue.
  std::optional<T> tryPop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    notFull_.notify_one();
    return item;
  }

  /// Close the queue: pending/future pushes fail, pops drain then end.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    notEmpty_.notify_all();
    notFull_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::deque<T> items_;
  std::size_t maxSize_;
  bool closed_ = false;
};

}  // namespace qserv::util
