/// \file thread_pool.h
/// \brief Fixed-size thread pool with future-returning submission.
///
/// Each Qserv worker runs its chunk-query executors on a pool sized to the
/// node's configured query slots (the paper's clusters ran 4 per node); the
/// master uses a pool for parallel dispatch and result collection.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mpmc_queue.h"

namespace qserv::util {

class ThreadPool {
 public:
  /// Starts \p numThreads workers immediately.
  explicit ThreadPool(std::size_t numThreads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedule \p fn; returns a future for its result. Throws
  /// std::runtime_error if the pool is already shut down.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    if (!queue_.push([task] { (*task)(); })) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    return fut;
  }

  /// Stop accepting tasks, finish queued ones, join threads. Idempotent.
  void shutdown();

  std::size_t numThreads() const { return threads_.size(); }

 private:
  void workerLoop();

  MpmcQueue<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
};

}  // namespace qserv::util
