/// \file strings.h
/// \brief Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qserv::util {

/// Split \p s on \p sep; empty fields are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Lowercase (ASCII only).
std::string toLower(std::string_view s);
/// Uppercase (ASCII only).
std::string toUpper(std::string_view s);

/// Case-insensitive equality (ASCII only).
bool iequals(std::string_view a, std::string_view b);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/// Join \p parts with \p sep.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Render a byte count as a human-readable string ("1.82 TB").
std::string humanBytes(double bytes);

/// Escape \p s for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string jsonEscape(std::string_view s);

}  // namespace qserv::util
