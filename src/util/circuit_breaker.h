/// \file circuit_breaker.h
/// \brief Error-rate circuit breaker for steering work away from sick nodes.
///
/// A worker that is up but failing most requests (disk errors, an injected
/// fault plan, a wedged mysqld) passes the redirector's isUp() check and
/// keeps receiving chunk queries, each of which burns a dispatch attempt.
/// The breaker watches a sliding window of outcomes per worker: when the
/// error rate crosses the threshold it OPENS (requests are steered away),
/// after a cooldown it goes HALF-OPEN (a limited number of probe requests
/// pass), and a probe success closes it again while a probe failure reopens
/// it. All methods take an explicit time point so tests are deterministic;
/// production callers use the steady-clock default.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace qserv::util {

struct CircuitBreakerPolicy {
  int windowSize = 16;      ///< outcomes remembered per node
  int minSamples = 8;       ///< don't judge before this many outcomes
  double openErrorRate = 0.5;  ///< open when window error rate reaches this
  std::chrono::milliseconds openDuration{1000};  ///< cooldown before probing
  int halfOpenProbes = 1;   ///< concurrent probes allowed while half-open
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(CircuitBreakerPolicy policy = {})
      : policy_(policy), window_(static_cast<std::size_t>(
                             std::max(1, policy.windowSize))) {}

  /// May a request be sent to this node now? While half-open, each allowed
  /// call consumes one probe slot (released by the outcome it reports).
  bool allowRequest(Clock::time_point now = Clock::now()) {
    std::lock_guard lock(mutex_);
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (now - openedAt_ < policy_.openDuration) return false;
        state_ = State::kHalfOpen;
        probesInFlight_ = 0;
        [[fallthrough]];
      case State::kHalfOpen:
        if (probesInFlight_ >= policy_.halfOpenProbes) return false;
        ++probesInFlight_;
        return true;
    }
    return true;
  }

  void recordSuccess(Clock::time_point now = Clock::now()) {
    record(true, now);
  }

  void recordFailure(Clock::time_point now = Clock::now()) {
    record(false, now);
  }

  State state() const {
    std::lock_guard lock(mutex_);
    return state_;
  }

 private:
  void record(bool ok, Clock::time_point now) {
    std::lock_guard lock(mutex_);
    if (state_ == State::kHalfOpen) {
      if (probesInFlight_ > 0) --probesInFlight_;
      if (ok) {
        // Probe succeeded: the node recovered. Forget the sick window.
        state_ = State::kClosed;
        filled_ = 0;
        head_ = 0;
        return;
      }
      state_ = State::kOpen;
      openedAt_ = now;
      return;
    }
    window_[head_] = ok;
    head_ = (head_ + 1) % window_.size();
    if (filled_ < window_.size()) ++filled_;
    if (state_ == State::kClosed && shouldOpen()) {
      state_ = State::kOpen;
      openedAt_ = now;
    }
  }

  bool shouldOpen() const {
    if (filled_ < static_cast<std::size_t>(policy_.minSamples)) return false;
    std::size_t failures = 0;
    for (std::size_t i = 0; i < filled_; ++i) {
      if (!window_[i]) ++failures;
    }
    return static_cast<double>(failures) >=
           policy_.openErrorRate * static_cast<double>(filled_);
  }

  const CircuitBreakerPolicy policy_;
  mutable std::mutex mutex_;
  std::vector<bool> window_;
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  State state_ = State::kClosed;
  Clock::time_point openedAt_{};
  int probesInFlight_ = 0;
};

}  // namespace qserv::util
