/// \file stats.h
/// \brief Running statistics and fixed-bucket histograms for benchmarks.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace qserv::util {

/// Accumulates count/mean/min/max/variance in one pass (Welford).
class RunningStats {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  std::string toString() const;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over a stored sample set (fine for bench-sized data).
/// Queries use linear interpolation between adjacent ranks.
class Percentiles {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  /// \p p in [0,100]. Returns NaN when empty. Sorts lazily; const-safe so
  /// snapshot paths (e.g. metrics histograms) need no mutable copy. Not
  /// safe against concurrent add() — callers synchronize externally.
  double percentile(double p) const;
  std::size_t size() const { return values_.size(); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace qserv::util
