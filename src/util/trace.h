/// \file trace.h
/// \brief Per-query distributed tracing (czar -> dispatcher -> xrd -> worker
/// -> merger).
///
/// A Trace collects timed spans from every component a query touches. The
/// czar creates one per user query and registers it in the process-wide
/// TraceRegistry under a fresh trace id; the dispatcher stamps that id into
/// each chunk-query payload as a leading SQL comment (`-- QSERV-TRACE: <id>`)
/// so workers — which receive only the payload through the xrd fabric, just
/// like a remote node would receive a request header — can look the trace up
/// and attach their queue-wait/execute spans. All spans share one process
/// clock (microseconds since first use), so a finished trace renders as a
/// single aligned timeline: toChromeJson() emits Chrome trace_event
/// format that opens directly in chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace qserv::util {

/// One timed operation inside a trace.
struct TraceSpan {
  std::string component;  ///< layer: czar, dispatcher, xrd, worker, merger
  std::string name;       ///< operation: parse, dispatch, "chunk 1234", ...
  std::int64_t startUs = 0;  ///< trace-clock microseconds (see Trace::nowUs)
  std::int64_t endUs = 0;
  std::uint64_t threadId = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  double durationSeconds() const {
    return static_cast<double>(endUs - startUs) * 1e-6;
  }
};

/// Thread-safe span collection for one user query.
class Trace {
 public:
  Trace(std::uint64_t id, std::string label)
      : id_(id), label_(std::move(label)) {}

  std::uint64_t id() const { return id_; }
  const std::string& label() const { return label_; }

  void addSpan(TraceSpan span);
  std::size_t spanCount() const;
  /// Snapshot of all spans recorded so far, in completion order.
  std::vector<TraceSpan> spans() const;
  /// Distinct components seen, sorted.
  std::vector<std::string> components() const;

  /// Chrome trace_event JSON ("ph":"X" complete events). Loadable in
  /// chrome://tracing and Perfetto.
  std::string toChromeJson() const;

  /// Microseconds on the shared process trace clock (steady, starts at 0 on
  /// first use). All spans in all traces use this clock.
  static std::int64_t nowUs();

 private:
  const std::uint64_t id_;
  const std::string label_;
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
};

using TracePtr = std::shared_ptr<Trace>;

/// RAII span: starts timing at construction, records into the trace at
/// destruction (or end()). Safe to use with a null trace — all ops no-op.
class ScopedSpan {
 public:
  ScopedSpan(TracePtr trace, std::string component, std::string name);
  ~ScopedSpan() { end(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ScopedSpan& attr(std::string key, std::string value);
  ScopedSpan& attr(std::string key, std::int64_t value);

  /// Record the span now instead of at destruction.
  void end();

 private:
  TracePtr trace_;
  TraceSpan span_;
  bool done_ = false;
};

/// Process-wide id -> in-flight trace map. Components that receive a trace
/// id out-of-band (workers, via the payload header) use it to find the
/// query's trace; ids of finished queries are released by the czar, after
/// which worker spans for them are silently dropped (the query is gone).
class TraceRegistry {
 public:
  static TraceRegistry& instance();

  /// Create and register a trace with a fresh process-unique id.
  TracePtr create(std::string label);
  /// The registered trace, or nullptr.
  TracePtr find(std::uint64_t id) const;
  /// Unregister (the trace itself lives on with its owners).
  void release(std::uint64_t id);

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, TracePtr> traces_;
  std::uint64_t nextId_ = 1;
};

/// "-- QSERV-TRACE: <id>\n" — the payload header carrying the trace id.
std::string traceHeaderLine(std::uint64_t traceId);

/// Trace id from a payload's leading comment lines, if present.
std::optional<std::uint64_t> parseTraceHeader(const std::string& payload);

}  // namespace qserv::util
