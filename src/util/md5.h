/// \file md5.h
/// \brief Self-contained MD5 (RFC 1321) used for Qserv result addressing.
///
/// The Qserv master reads chunk-query results from Xrootd paths of the form
/// `/result/<H>` where H is the MD5 of the chunk-query text, "represented via
/// 32 hexadecimal digits in ASCII" (paper §5.4). This module provides exactly
/// that digest. It is not used for any security purpose.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace qserv::util {

/// Incremental MD5 hasher.
class Md5 {
 public:
  Md5();

  /// Absorb \p data.
  void update(std::string_view data);
  void update(const void* data, std::size_t len);

  /// Finalize and return the 16-byte digest. The hasher must not be reused
  /// after calling digest().
  std::array<std::uint8_t, 16> digest();

  /// One-shot digest of \p data as 32 lowercase hex characters.
  static std::string hex(std::string_view data);

 private:
  void processBlock(const std::uint8_t* block);

  std::uint32_t a_, b_, c_, d_;
  std::uint64_t totalLen_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t bufferLen_ = 0;
  bool finalized_ = false;
};

/// Convert a binary digest to lowercase hex.
std::string toHex(const std::uint8_t* data, std::size_t len);

}  // namespace qserv::util
