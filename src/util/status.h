/// \file status.h
/// \brief Lightweight error propagation types (Status / Result<T>).
///
/// Qserv components report recoverable failures (bad SQL, missing chunk,
/// worker fault) through these types rather than exceptions, keeping error
/// paths explicit on the hot dispatch path. Irrecoverable programming errors
/// still use assertions/exceptions.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace qserv::util {

/// Error category for a failed operation.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed (e.g. bad SQL)
  kNotFound,          ///< named entity (table, chunk, path) does not exist
  kAlreadyExists,     ///< creation collided with an existing entity
  kUnavailable,       ///< transient: worker down, path not yet published
  kFailedPrecondition,///< call sequence violated (e.g. read before close)
  kUnimplemented,     ///< feature intentionally unsupported (e.g. subqueries)
  kInternal,          ///< invariant violation inside the system
  kAborted,           ///< operation cancelled (e.g. shutdown)
  kDeadlineExceeded,  ///< per-query time budget ran out before completion
  kDataLoss,          ///< payload failed integrity verification (corruption)
};

/// Human-readable name for an ErrorCode.
inline const char* errorCodeName(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

/// Status of an operation that returns no value.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  /// Constructs a status with \p code and \p message (non-OK expected).
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalidArgument(std::string m) { return {ErrorCode::kInvalidArgument, std::move(m)}; }
  static Status notFound(std::string m) { return {ErrorCode::kNotFound, std::move(m)}; }
  static Status alreadyExists(std::string m) { return {ErrorCode::kAlreadyExists, std::move(m)}; }
  static Status unavailable(std::string m) { return {ErrorCode::kUnavailable, std::move(m)}; }
  static Status failedPrecondition(std::string m) { return {ErrorCode::kFailedPrecondition, std::move(m)}; }
  static Status unimplemented(std::string m) { return {ErrorCode::kUnimplemented, std::move(m)}; }
  static Status internal(std::string m) { return {ErrorCode::kInternal, std::move(m)}; }
  static Status aborted(std::string m) { return {ErrorCode::kAborted, std::move(m)}; }
  static Status deadlineExceeded(std::string m) { return {ErrorCode::kDeadlineExceeded, std::move(m)}; }
  static Status dataLoss(std::string m) { return {ErrorCode::kDataLoss, std::move(m)}; }

  bool isOk() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return isOk(); }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message".
  std::string toString() const {
    if (isOk()) return "OK";
    return std::string(errorCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& o) const {
    return code_ == o.code_ && message_ == o.message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Value-or-Status. Holds either a T (success) or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Success.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Failure; \p s must be non-OK.
  Result(Status s) : v_(std::move(s)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(v_).isOk() && "Result constructed from OK status");
  }

  bool isOk() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return isOk(); }

  /// The error status; OK when the result holds a value.
  Status status() const {
    if (isOk()) return Status::ok();
    return std::get<Status>(v_);
  }

  /// Access the held value. Precondition: isOk().
  const T& value() const& { assert(isOk()); return std::get<T>(v_); }
  T& value() & { assert(isOk()); return std::get<T>(v_); }
  T&& value() && { assert(isOk()); return std::get<T>(std::move(v_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Value if OK, else \p fallback.
  T valueOr(T fallback) const {
    return isOk() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

/// Propagate a non-OK Status from an expression. Usage:
///   QSERV_RETURN_IF_ERROR(doThing());
#define QSERV_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::qserv::util::Status _st = (expr);              \
    if (!_st.isOk()) return _st;                     \
  } while (false)

/// Assign a Result's value to `lhs` or propagate its Status. Usage:
///   QSERV_ASSIGN_OR_RETURN(auto x, makeX());
#define QSERV_ASSIGN_OR_RETURN(lhs, rexpr)           \
  QSERV_ASSIGN_OR_RETURN_IMPL_(                      \
      QSERV_RESULT_CONCAT_(_res, __LINE__), lhs, rexpr)
#define QSERV_RESULT_CONCAT_INNER_(a, b) a##b
#define QSERV_RESULT_CONCAT_(a, b) QSERV_RESULT_CONCAT_INNER_(a, b)
#define QSERV_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.isOk()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace qserv::util
