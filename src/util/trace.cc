#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/logging.h"
#include "util/strings.h"

namespace qserv::util {

std::int64_t Trace::nowUs() {
  using namespace std::chrono;
  static const steady_clock::time_point epoch = steady_clock::now();
  return duration_cast<microseconds>(steady_clock::now() - epoch).count();
}

void Trace::addSpan(TraceSpan span) {
  std::lock_guard lock(mutex_);
  spans_.push_back(std::move(span));
}

std::size_t Trace::spanCount() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

std::vector<TraceSpan> Trace::spans() const {
  std::lock_guard lock(mutex_);
  return spans_;
}

std::vector<std::string> Trace::components() const {
  std::vector<std::string> out;
  {
    std::lock_guard lock(mutex_);
    for (const auto& s : spans_) out.push_back(s.component);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Trace::toChromeJson() const {
  std::vector<TraceSpan> spans = this->spans();
  // Stable timeline: earliest span first.
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return a.startUs < b.startUs;
            });
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) out += ",";
    first = false;
    out += format(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%lld,"
        "\"dur\":%lld,\"pid\":1,\"tid\":%llu",
        jsonEscape(s.name).c_str(), jsonEscape(s.component).c_str(),
        static_cast<long long>(s.startUs),
        static_cast<long long>(std::max<std::int64_t>(s.endUs - s.startUs, 0)),
        static_cast<unsigned long long>(s.threadId));
    out += ",\"args\":{\"component\":\"" + jsonEscape(s.component) + "\"";
    for (const auto& [k, v] : s.attrs) {
      out += ",\"" + jsonEscape(k) + "\":\"" + jsonEscape(v) + "\"";
    }
    out += "}}";
  }
  out += format(
      "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"traceId\":%llu,"
      "\"query\":\"%s\"}}",
      static_cast<unsigned long long>(id_), jsonEscape(label_).c_str());
  return out;
}

ScopedSpan::ScopedSpan(TracePtr trace, std::string component, std::string name)
    : trace_(std::move(trace)) {
  if (!trace_) return;
  span_.component = std::move(component);
  span_.name = std::move(name);
  span_.threadId = threadId();
  span_.startUs = Trace::nowUs();
}

ScopedSpan& ScopedSpan::attr(std::string key, std::string value) {
  if (trace_) span_.attrs.emplace_back(std::move(key), std::move(value));
  return *this;
}

ScopedSpan& ScopedSpan::attr(std::string key, std::int64_t value) {
  return attr(std::move(key), std::to_string(value));
}

void ScopedSpan::end() {
  if (!trace_ || done_) return;
  done_ = true;
  span_.endUs = Trace::nowUs();
  trace_->addSpan(std::move(span_));
}

TraceRegistry& TraceRegistry::instance() {
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

TracePtr TraceRegistry::create(std::string label) {
  std::lock_guard lock(mutex_);
  std::uint64_t id = nextId_++;
  auto trace = std::make_shared<Trace>(id, std::move(label));
  traces_.emplace(id, trace);
  return trace;
}

TracePtr TraceRegistry::find(std::uint64_t id) const {
  std::lock_guard lock(mutex_);
  auto it = traces_.find(id);
  return it == traces_.end() ? nullptr : it->second;
}

void TraceRegistry::release(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  traces_.erase(id);
}

std::size_t TraceRegistry::size() const {
  std::lock_guard lock(mutex_);
  return traces_.size();
}

std::string traceHeaderLine(std::uint64_t traceId) {
  return format("-- QSERV-TRACE: %llu\n",
                static_cast<unsigned long long>(traceId));
}

std::optional<std::uint64_t> parseTraceHeader(const std::string& payload) {
  constexpr std::string_view kPrefix = "-- QSERV-TRACE: ";
  // Scan only the leading comment lines (the header block).
  std::size_t pos = 0;
  while (pos + 2 <= payload.size() && payload[pos] == '-' &&
         payload[pos + 1] == '-') {
    std::size_t eol = payload.find('\n', pos);
    std::size_t len = eol == std::string::npos ? payload.size() - pos
                                               : eol - pos;
    std::string_view line(payload.data() + pos, len);
    if (startsWith(line, kPrefix)) {
      auto digits = trim(line.substr(kPrefix.size()));
      if (!digits.empty()) {
        std::uint64_t id = 0;
        for (char c : digits) {
          if (c < '0' || c > '9') return std::nullopt;
          auto digit = static_cast<std::uint64_t>(c - '0');
          // Reject ids that overflow uint64 instead of silently wrapping.
          constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
          if (id > kMax / 10 || id * 10 > kMax - digit) return std::nullopt;
          id = id * 10 + digit;
        }
        return id;
      }
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return std::nullopt;
}

}  // namespace qserv::util
