#include "util/thread_pool.h"

namespace qserv::util {

ThreadPool::ThreadPool(std::size_t numThreads) {
  if (numThreads == 0) numThreads = 1;
  threads_.reserve(numThreads);
  for (std::size_t i = 0; i < numThreads; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  queue_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::workerLoop() {
  while (auto task = queue_.pop()) {
    (*task)();
  }
}

}  // namespace qserv::util
