/// \file metrics.h
/// \brief Process-wide registry of named counters, gauges, and latency
/// histograms.
///
/// Every Qserv layer records its behaviour here under dotted names
/// ("worker.queue_wait_seconds", "xrd.redirector.cache_hits", ...) so one
/// snapshot shows where a workload's time and work went. Handles returned by
/// the registry are stable for the life of the process — instrument once,
/// hammer from any thread:
///
///   static util::Counter& tasks =
///       util::MetricsRegistry::instance().counter("worker.tasks");
///   tasks.add();
///
/// Counters and gauges are single atomics (safe everywhere); histograms take
/// a short lock per observation. snapshot() is consistent per-instrument and
/// exports as aligned text or JSON (see DESIGN.md "Observability").
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/stats.h"

namespace qserv::util {

/// Monotonically increasing event/quantity count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, busy slots); may go up and down.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Latency/size distribution: running moments + exact percentiles + fixed
/// log-spaced buckets (1-2.5-5 decades, 1e-6 .. 5e8) for the Prometheus
/// exposition format, which wants cumulative bucket counts.
class Histogram {
 public:
  /// Upper bounds of the fixed buckets (ascending). Values above the last
  /// bound land only in the implicit +Inf bucket (== count).
  static const std::vector<double>& bucketBounds();

  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0.0, mean = 0.0, min = 0.0, max = 0.0;
    double p50 = 0.0, p90 = 0.0, p95 = 0.0, p99 = 0.0;
    /// Cumulative count per bucketBounds() entry: observations <= bound.
    std::vector<std::int64_t> cumulative;
  };

  void observe(double x);
  Snapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  RunningStats stats_;
  Percentiles percentiles_;
  std::vector<std::int64_t> bucketCounts_;  ///< per-bucket (non-cumulative)
};

/// Point-in-time copy of every instrument in a registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  /// Aligned human-readable listing (one instrument per line).
  std::string toText() const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}
  /// Names are JSON-escaped; non-finite values render as null.
  std::string toJson() const;
  /// Prometheus text exposition format. Dotted names become
  /// `qserv_<name with non-alphanumerics as _>`; counters/gauges emit one
  /// sample, histograms emit a cumulative `_bucket{le=...}` series for
  /// every fixed bound on every scrape (stable series set) plus
  /// `_sum`/`_count` and a companion `<name>_quantiles` summary
  /// (p50/p90/p95/p99 with its own `_sum`/`_count`).
  std::string toPrometheus() const;
};

/// Named-instrument registry. Instruments are created on first use and never
/// destroyed, so returned references stay valid for the process lifetime.
class MetricsRegistry {
 public:
  /// The process-wide registry every Qserv component records into.
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Zero all counters and gauges and clear histograms (tests/benches).
  /// Existing handles remain valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace qserv::util
