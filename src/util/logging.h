/// \file logging.h
/// \brief Minimal leveled, thread-safe logger for Qserv components.
///
/// Default level is WARN so tests and benchmarks stay quiet; examples raise
/// it to INFO to narrate the distributed flow.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace qserv::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit one line ("<ISO-8601 UTC> LEVEL [tid N] component: message") to
/// stderr, thread-safely.
void logMessage(LogLevel level, const std::string& component,
                const std::string& message);

/// Small dense id for the calling thread (1, 2, 3, ... in first-use order) —
/// far more readable in interleaved multi-worker logs than pthread handles.
std::uint64_t threadId();

/// Stream-style log statement builder used by the QLOG macro.
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { logMessage(level_, component_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace qserv::util

/// Log at \p level for \p component with stream syntax:
///   QLOG(kInfo, "master") << "dispatching " << n << " chunk queries";
#define QLOG(level, component)                                     \
  if (::qserv::util::logLevel() <= ::qserv::util::LogLevel::level) \
  ::qserv::util::LogLine(::qserv::util::LogLevel::level, (component))
