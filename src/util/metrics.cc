#include "util/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace qserv::util {

namespace {
/// Render a double for JSON: non-finite values (which %g would print as
/// "nan"/"inf" — invalid JSON) become null.
std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return format("%.17g", v);
}

/// Prometheus metric name from a dotted registry name: qserv_ prefix, any
/// character outside [a-zA-Z0-9_:] replaced with '_'.
std::string promName(const std::string& name) {
  std::string out = "qserv_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Prometheus sample values: non-finite renders as NaN (allowed there).
std::string promNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return format("%.17g", v);
}

/// Bucket-bound labels: short form so le="0.005", not the 17-digit repr of
/// the nearest double (labels are identifiers, and scrapes group by them).
std::string promBound(double v) { return format("%g", v); }
}  // namespace

const std::vector<double>& Histogram::bucketBounds() {
  // 1 / 2.5 / 5 per decade, 1e-6 .. 5e8: covers microsecond latencies
  // through multi-hundred-MB byte counts in 45 buckets.
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>;
    for (int exp = -6; exp <= 8; ++exp) {
      double decade = std::pow(10.0, exp);
      b->push_back(decade);
      b->push_back(2.5 * decade);
      b->push_back(5.0 * decade);
    }
    return b;
  }();
  return *bounds;
}

void Histogram::observe(double x) {
  const auto& bounds = bucketBounds();
  std::lock_guard lock(mutex_);
  stats_.add(x);
  percentiles_.add(x);
  if (bucketCounts_.empty()) bucketCounts_.assign(bounds.size(), 0);
  auto it = std::lower_bound(bounds.begin(), bounds.end(), x);
  if (it != bounds.end()) {
    ++bucketCounts_[static_cast<std::size_t>(it - bounds.begin())];
  }
  // x above the last bound counts only toward the implicit +Inf bucket.
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot s;
  s.count = stats_.count();
  if (s.count == 0) return s;
  s.sum = stats_.sum();
  s.mean = stats_.mean();
  s.min = stats_.min();
  s.max = stats_.max();
  s.p50 = percentiles_.percentile(50);
  s.p90 = percentiles_.percentile(90);
  s.p95 = percentiles_.percentile(95);
  s.p99 = percentiles_.percentile(99);
  s.cumulative.assign(bucketBounds().size(), 0);
  std::int64_t running = 0;
  for (std::size_t i = 0; i < bucketCounts_.size(); ++i) {
    running += bucketCounts_[i];
    s.cumulative[i] = running;
  }
  return s;
}

void Histogram::reset() {
  std::lock_guard lock(mutex_);
  stats_ = RunningStats();
  percentiles_ = Percentiles();
  bucketCounts_.clear();
}

std::string MetricsSnapshot::toText() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    out += format("%-44s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : gauges) {
    out += format("%-44s %lld\n", name.c_str(), static_cast<long long>(v));
  }
  for (const auto& [name, h] : histograms) {
    out += format(
        "%-44s n=%lld mean=%.4g min=%.4g max=%.4g p50=%.4g p90=%.4g "
        "p95=%.4g p99=%.4g\n",
        name.c_str(), static_cast<long long>(h.count), h.mean, h.min, h.max,
        h.p50, h.p90, h.p95, h.p99);
  }
  return out;
}

std::string MetricsSnapshot::toJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += format("\"%s\":%llu", jsonEscape(name).c_str(),
                  static_cast<unsigned long long>(v));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += format("\"%s\":%lld", jsonEscape(name).c_str(),
                  static_cast<long long>(v));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += format(
        "\"%s\":{\"count\":%lld,\"sum\":%s,\"mean\":%s,\"min\":%s,"
        "\"max\":%s,\"p50\":%s,\"p90\":%s,\"p95\":%s,\"p99\":%s}",
        jsonEscape(name).c_str(), static_cast<long long>(h.count),
        jsonNumber(h.sum).c_str(), jsonNumber(h.mean).c_str(),
        jsonNumber(h.min).c_str(), jsonNumber(h.max).c_str(),
        jsonNumber(h.p50).c_str(), jsonNumber(h.p90).c_str(),
        jsonNumber(h.p95).c_str(), jsonNumber(h.p99).c_str());
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::toPrometheus() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    std::string p = promName(name);
    out += format("# TYPE %s counter\n%s %llu\n", p.c_str(), p.c_str(),
                  static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : gauges) {
    std::string p = promName(name);
    out += format("# TYPE %s gauge\n%s %lld\n", p.c_str(), p.c_str(),
                  static_cast<long long>(v));
  }
  const auto& bounds = Histogram::bucketBounds();
  for (const auto& [name, h] : histograms) {
    std::string p = promName(name);
    out += format("# TYPE %s histogram\n", p.c_str());
    // Every finite bound is emitted on every scrape (an empty histogram's
    // snapshot has no cumulative vector — all buckets are 0): the set of
    // `le` series must stay stable across scrapes, or downstream
    // rate()/histogram_quantile() sees series appear and disappear as
    // observations move between buckets.
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      std::int64_t c = i < h.cumulative.size() ? h.cumulative[i] : 0;
      out += format("%s_bucket{le=\"%s\"} %lld\n", p.c_str(),
                    promBound(bounds[i]).c_str(), static_cast<long long>(c));
    }
    out += format("%s_bucket{le=\"+Inf\"} %lld\n", p.c_str(),
                  static_cast<long long>(h.count));
    out += format("%s_sum %s\n", p.c_str(), promNumber(h.sum).c_str());
    out += format("%s_count %lld\n", p.c_str(),
                  static_cast<long long>(h.count));
    // Exact percentiles travel as a companion summary family: Prometheus
    // histograms only carry buckets, but we have the real quantiles.
    out += format("# TYPE %s_quantiles summary\n", p.c_str());
    const std::pair<const char*, double> qs[] = {
        {"0.5", h.p50}, {"0.9", h.p90}, {"0.95", h.p95}, {"0.99", h.p99}};
    for (const auto& [q, v] : qs) {
      out += format("%s_quantiles{quantile=\"%s\"} %s\n", p.c_str(), q,
                    promNumber(v).c_str());
    }
    // A summary family carries _sum/_count samples of its own; strict
    // exposition-format parsers expect them.
    out += format("%s_quantiles_sum %s\n", p.c_str(),
                  promNumber(h.sum).c_str());
    out += format("%s_quantiles_count %lld\n", p.c_str(),
                  static_cast<long long>(h.count));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->snapshot();
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->set(0);
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace qserv::util
