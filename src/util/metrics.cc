#include "util/metrics.h"

#include "util/strings.h"

namespace qserv::util {

void Histogram::observe(double x) {
  std::lock_guard lock(mutex_);
  stats_.add(x);
  percentiles_.add(x);
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot s;
  s.count = stats_.count();
  if (s.count == 0) return s;
  s.sum = stats_.sum();
  s.mean = stats_.mean();
  s.min = stats_.min();
  s.max = stats_.max();
  s.p50 = percentiles_.percentile(50);
  s.p90 = percentiles_.percentile(90);
  s.p99 = percentiles_.percentile(99);
  return s;
}

void Histogram::reset() {
  std::lock_guard lock(mutex_);
  stats_ = RunningStats();
  percentiles_ = Percentiles();
}

std::string MetricsSnapshot::toText() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    out += format("%-44s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : gauges) {
    out += format("%-44s %lld\n", name.c_str(), static_cast<long long>(v));
  }
  for (const auto& [name, h] : histograms) {
    out += format(
        "%-44s n=%lld mean=%.4g min=%.4g max=%.4g p50=%.4g p90=%.4g "
        "p99=%.4g\n",
        name.c_str(), static_cast<long long>(h.count), h.mean, h.min, h.max,
        h.p50, h.p90, h.p99);
  }
  return out;
}

std::string MetricsSnapshot::toJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += format("\"%s\":%llu", jsonEscape(name).c_str(),
                  static_cast<unsigned long long>(v));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += format("\"%s\":%lld", jsonEscape(name).c_str(),
                  static_cast<long long>(v));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += format(
        "\"%s\":{\"count\":%lld,\"sum\":%.17g,\"mean\":%.17g,\"min\":%.17g,"
        "\"max\":%.17g,\"p50\":%.17g,\"p90\":%.17g,\"p99\":%.17g}",
        jsonEscape(name).c_str(), static_cast<long long>(h.count), h.sum,
        h.mean, h.min, h.max, h.p50, h.p90, h.p99);
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->snapshot();
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->set(0);
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace qserv::util
