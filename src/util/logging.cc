#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace qserv::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel logLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void logMessage(LogLevel level, const std::string& component,
                const std::string& message) {
  if (level < logLevel()) return;
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "%-5s %s: %s\n", levelName(level), component.c_str(),
               message.c_str());
}

}  // namespace qserv::util
