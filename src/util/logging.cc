#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace qserv::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// "2026-08-06T12:34:56.789Z" (UTC, millisecond precision).
void formatTimestamp(char* buf, std::size_t size) {
  using namespace std::chrono;
  auto now = system_clock::now();
  std::time_t secs = system_clock::to_time_t(now);
  auto millis = duration_cast<milliseconds>(now.time_since_epoch()) % 1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  std::size_t n = std::strftime(buf, size, "%FT%T", &tm);
  std::snprintf(buf + n, size - n, ".%03dZ", static_cast<int>(millis.count()));
}
}  // namespace

std::uint64_t threadId() {
  static std::atomic<std::uint64_t> next{1};
  thread_local std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void setLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel logLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void logMessage(LogLevel level, const std::string& component,
                const std::string& message) {
  if (level < logLevel()) return;
  char ts[40];
  formatTimestamp(ts, sizeof(ts));
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "%s %-5s [tid %llu] %s: %s\n", ts, levelName(level),
               static_cast<unsigned long long>(threadId()), component.c_str(),
               message.c_str());
}

}  // namespace qserv::util
