#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/strings.h"

namespace qserv::util {

void RunningStats::add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::toString() const {
  return format("n=%lld mean=%.4g min=%.4g max=%.4g sd=%.4g",
                static_cast<long long>(count_), mean_, min_, max_, stddev());
}

double Percentiles::percentile(double p) const {
  if (values_.empty()) return std::nan("");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

// Box-Muller; lives here to keep <cmath> out of the rng header.
double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  double u2 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

}  // namespace qserv::util
