/// \file deadline.h
/// \brief Monotonic per-query deadlines and cooperative cancellation.
///
/// A Deadline is a point on the steady clock every attempt of a query checks
/// before doing more work; it travels czar -> dispatcher -> xrd client ->
/// worker result wait, so one time budget bounds the whole failure-handling
/// pipeline. A CancelToken is shared by all chunk queries of one user query:
/// a hard chunk failure cancels the siblings still queued instead of letting
/// them run to completion, and interruptible sleeps (backoff) wake early.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "util/status.h"

namespace qserv::util {

/// A fixed point on the steady clock. Copyable, trivially cheap to check.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline: never expires, infinite remaining time.
  Deadline() = default;

  static Deadline unlimited() { return Deadline(); }

  static Deadline after(std::chrono::microseconds budget) {
    Deadline d;
    d.at_ = Clock::now() + budget;
    d.limited_ = true;
    return d;
  }

  static Deadline afterSeconds(double seconds) {
    return after(std::chrono::microseconds(
        static_cast<std::int64_t>(seconds * 1e6)));
  }

  bool isLimited() const { return limited_; }

  bool expired() const { return limited_ && Clock::now() >= at_; }

  /// Time left, clamped at zero. Very large when unlimited.
  std::chrono::microseconds remaining() const {
    if (!limited_) return std::chrono::microseconds::max();
    auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        at_ - Clock::now());
    return std::max(left, std::chrono::microseconds(0));
  }

 private:
  Clock::time_point at_{};
  bool limited_ = false;
};

/// Cooperative cancellation flag shared across the tasks of one query.
/// Copying a token shares the underlying state; all copies observe the same
/// cancel() and its reason. Thread-safe.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  /// First cancel wins: later calls keep the original reason.
  void cancel(Status reason) const {
    std::lock_guard lock(state_->mutex);
    if (state_->cancelled) return;
    state_->cancelled = true;
    state_->reason = std::move(reason);
    state_->cv.notify_all();
  }

  bool cancelled() const {
    std::lock_guard lock(state_->mutex);
    return state_->cancelled;
  }

  /// The cancel reason; OK while not cancelled.
  Status reason() const {
    std::lock_guard lock(state_->mutex);
    return state_->cancelled ? state_->reason : Status::ok();
  }

  /// Sleep up to \p d, waking early on cancellation. Returns true when the
  /// full duration elapsed, false when cancelled first.
  bool sleepFor(std::chrono::microseconds d) const {
    std::unique_lock lock(state_->mutex);
    return !state_->cv.wait_for(lock, d,
                                [&] { return state_->cancelled; });
  }

 private:
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool cancelled = false;
    Status reason;
  };
  std::shared_ptr<State> state_;
};

}  // namespace qserv::util
