#include "datagen/catalog_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sphgeom/angle.h"

namespace qserv::datagen {

using sphgeom::SphericalBox;

sphgeom::SphericalBox pt11PatchBox() {
  return SphericalBox(358.0, -7.0, 5.0, 7.0);
}

namespace {

/// AB magnitude -> flux in erg s^-1 cm^-2 Hz^-1.
double magToFlux(double mag) { return std::pow(10.0, -(mag + 48.6) / 2.5); }

}  // namespace

BasePatchGenerator::BasePatchGenerator(BasePatchOptions options)
    : options_(options), rng_(options.seed) {}

std::vector<ObjectRow> BasePatchGenerator::objects() {
  std::vector<ObjectRow> out;
  out.reserve(static_cast<std::size_t>(options_.objectCount));
  const double sinLo = std::sin(sphgeom::degToRad(-7.0));
  const double sinHi = std::sin(sphgeom::degToRad(7.0));
  for (std::int64_t i = 0; i < options_.objectCount; ++i) {
    ObjectRow row;
    row.objectId = i;
    // Uniform per solid angle over the wrapping patch RA 358..365.
    row.ra = sphgeom::normalizeLonDeg(358.0 + rng_.uniform(0.0, kPatchRaWidthDeg));
    row.decl = sphgeom::radToDeg(
        std::asin(rng_.uniform(sinLo, sinHi)));
    // Magnitudes: r-band skewed faint, colors correlated.
    double mr = 16.0 + 11.0 * std::sqrt(rng_.uniform());
    double gr = rng_.normal(0.6, 0.3);
    double ug = rng_.normal(1.2, 0.4);
    double ri = rng_.normal(0.3, 0.2);
    double iz = rng_.normal(0.15, 0.15);
    double zy = rng_.normal(0.1, 0.1);
    // Rare red-outlier tail so the HV2 cut (i-z > 4) selects a tiny
    // fraction, like the paper's ~70k of 1.7e9 rows.
    if (rng_.uniform() < options_.redOutlierFraction) {
      iz += rng_.uniform(3.5, 5.0);
    }
    double mg = mr + gr;
    double mu = mg + ug;
    double mi = mr - ri;
    double mz = mi - iz;
    double my = mz - zy;
    row.flux[0] = magToFlux(mu);
    row.flux[1] = magToFlux(mg);
    row.flux[2] = magToFlux(mr);
    row.flux[3] = magToFlux(mi);
    row.flux[4] = magToFlux(mz);
    row.flux[5] = magToFlux(my);
    row.uFluxSg = row.flux[0] * (1.0 + rng_.normal(0.0, 0.05));
    row.uRadius = std::fabs(rng_.normal(0.05, 0.03));
    out.push_back(row);
  }
  return out;
}

std::vector<SourceRow> BasePatchGenerator::sourcesFor(
    const std::vector<ObjectRow>& objects) {
  std::vector<SourceRow> out;
  out.reserve(objects.size() *
              static_cast<std::size_t>(options_.sourcesPerObjectMean));
  std::int64_t sid = 0;
  for (const ObjectRow& obj : objects) {
    auto n = static_cast<std::int64_t>(
        std::max(1.0, std::round(rng_.normal(options_.sourcesPerObjectMean,
                                             options_.sourcesPerObjectMean / 7))));
    for (std::int64_t k = 0; k < n; ++k) {
      SourceRow s;
      s.sourceId = sid++;
      s.objectId = obj.objectId;
      double scatter = options_.sourceScatterDeg;
      if (rng_.uniform() < options_.straySourceFraction) {
        // Mis-association / moving object: far from the host object. These
        // are what SHV2's angSep > 0.0045 deg filter finds.
        scatter = rng_.uniform(0.005, 0.02);
        double angle = rng_.uniform(0.0, 2.0 * sphgeom::kPi);
        s.ra = sphgeom::normalizeLonDeg(
            obj.ra + scatter * std::cos(angle) /
                         std::max(0.05, std::cos(sphgeom::degToRad(obj.decl))));
        s.decl = sphgeom::clampLatDeg(obj.decl + scatter * std::sin(angle));
      } else {
        s.ra = sphgeom::normalizeLonDeg(obj.ra + rng_.normal(0.0, scatter));
        s.decl = sphgeom::clampLatDeg(obj.decl + rng_.normal(0.0, scatter));
      }
      s.psfFlux = obj.flux[2] * std::exp(rng_.normal(0.0, 0.1));
      s.psfFluxErr = s.psfFlux * std::fabs(rng_.normal(0.07, 0.02));
      s.taiMidPoint = rng_.uniform(50000.0, 53650.0);
      out.push_back(s);
    }
  }
  return out;
}

// ----------------------------------------------------------------- Duplicator

Duplicator::Duplicator() : Duplicator(Options{}) {}

Duplicator::Duplicator(Options options) : options_(options) {
  assert(options_.decMin < options_.decMax);
  const int totalBands =
      static_cast<int>(std::ceil(180.0 / kPatchDecHeightDeg));
  firstBand_ = std::clamp(
      static_cast<int>(std::floor((options_.decMin + 90.0) / kPatchDecHeightDeg)),
      0, totalBands - 1);
  lastBand_ = std::clamp(
      static_cast<int>(std::floor((options_.decMax + 90.0 - 1e-9) /
                                  kPatchDecHeightDeg)),
      firstBand_, totalBands - 1);
  slotsPerBand_.resize(static_cast<std::size_t>(lastBand_ - firstBand_ + 1));
  cumulativeCopies_.resize(slotsPerBand_.size() + 1, 0);
  for (int b = firstBand_; b <= lastBand_; ++b) {
    double decCenter = -90.0 + b * kPatchDecHeightDeg + kPatchDecHeightDeg / 2;
    decCenter = std::clamp(decCenter, -89.0, 89.0);
    double cosc = std::cos(sphgeom::degToRad(decCenter));
    int slots = std::max(
        1, static_cast<int>(std::floor(360.0 * cosc / kPatchRaWidthDeg)));
    slotsPerBand_[static_cast<std::size_t>(b - firstBand_)] = slots;
    cumulativeCopies_[static_cast<std::size_t>(b - firstBand_ + 1)] =
        cumulativeCopies_[static_cast<std::size_t>(b - firstBand_)] + slots;
  }
}

int Duplicator::bandCount() const { return lastBand_ - firstBand_ + 1; }

int Duplicator::slotsInBand(int band) const {
  assert(band >= firstBand_ && band <= lastBand_);
  return slotsPerBand_[static_cast<std::size_t>(band - firstBand_)];
}

std::int64_t Duplicator::totalCopies() const {
  return cumulativeCopies_.back();
}

std::int64_t Duplicator::copyIndex(const Copy& c) const {
  assert(c.band >= firstBand_ && c.band <= lastBand_);
  return cumulativeCopies_[static_cast<std::size_t>(c.band - firstBand_)] +
         c.slot;
}

sphgeom::SphericalBox Duplicator::copyBox(const Copy& c) const {
  int slots = slotsInBand(c.band);
  double width = 360.0 / slots;  // stretched patch width in this band
  double lonMin = c.slot * width;
  double lonMax = (c.slot + 1 == slots) ? 360.0 : lonMin + width;
  double latMin = -90.0 + c.band * kPatchDecHeightDeg;
  double latMax = std::min(90.0, latMin + kPatchDecHeightDeg);
  return SphericalBox(lonMin, latMin, lonMax, latMax);
}

std::vector<Duplicator::Copy> Duplicator::copiesIntersecting(
    const SphericalBox& region) const {
  std::vector<Copy> out;
  for (int b = firstBand_; b <= lastBand_; ++b) {
    for (int s = 0; s < slotsInBand(b); ++s) {
      Copy c{b, s};
      if (region.intersects(copyBox(c))) out.push_back(c);
    }
  }
  return out;
}

sphgeom::LonLat Duplicator::transform(const Copy& c, double raBase,
                                      double decBase) const {
  // Patch-relative coordinates: RA measured from 358 deg, Dec from -7.
  // Source positions can jitter slightly below the patch's west edge; treat
  // near-360 relative RA as a small negative offset instead of a wrap.
  double relRa = sphgeom::normalizeLonDeg(raBase - 358.0);
  if (relRa > 180.0) relRa -= 360.0;
  double relDec = decBase + kPatchDecHeightDeg / 2;
  int slots = slotsInBand(c.band);
  // Density-preserving stretch: the band's circumference is shared evenly
  // by `slots` copies, so each base degree of RA spans `stretch` degrees
  // here. stretch grows toward the poles — the paper's "non-linear
  // transformation of right-ascension as a function of declination".
  double stretch = 360.0 / (slots * kPatchRaWidthDeg);
  double lon = sphgeom::normalizeLonDeg((c.slot * kPatchRaWidthDeg + relRa) *
                                        stretch);
  double lat = -90.0 + c.band * kPatchDecHeightDeg + relDec;
  return {lon, lat};  // lat may exceed 90 in the top band; callers drop those
}

std::int64_t Duplicator::idOffset(const Copy& c, std::int64_t baseCount) const {
  return copyIndex(c) * baseCount;
}

}  // namespace qserv::datagen
