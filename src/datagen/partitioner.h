/// \file partitioner.h
/// \brief Two-level spatial partitioning of catalog rows into chunk tables.
///
/// Produces, per chunk CC (paper §5.2):
///   Object_CC        — objects whose position falls in the chunk; rows carry
///                      chunkId and subChunkId columns (HV3 groups by chunkId,
///                      subchunk builds filter on subChunkId).
///   ObjectOverlap_CC — objects that do NOT belong to CC but lie within the
///                      overlap margin of its boundary (§4.4 "Overlap"), so
///                      near-neighbor joins never need other nodes' data.
///   Source_CC        — sources co-located with their host object's chunk
///                      (time-series joins stay node-local).
/// plus the secondary-index entries objectId -> (chunkId, subChunkId) used by
/// the frontend (§5.5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "datagen/catalog_gen.h"
#include "sphgeom/chunker.h"
#include "sql/database.h"

namespace qserv::datagen {

std::string chunkTableName(const std::string& base, std::int32_t chunkId);
std::string overlapTableName(const std::string& base, std::int32_t chunkId);
std::string subChunkTableName(const std::string& base, std::int32_t chunkId,
                              std::int32_t subChunkId);

struct SecondaryIndexEntry {
  std::int64_t objectId = 0;
  std::int32_t chunkId = 0;
  std::int32_t subChunkId = 0;
};

struct ChunkData {
  std::int32_t chunkId = 0;
  sql::TablePtr objects;        // Object_CC
  sql::TablePtr objectOverlap;  // ObjectOverlap_CC
  sql::TablePtr sources;        // Source_CC (may be empty)
};

struct PartitionedCatalog {
  std::vector<ChunkData> chunks;  // ascending chunkId, non-empty chunks only
  std::vector<SecondaryIndexEntry> index;
};

/// Partition \p objects and \p sources with \p chunker. Sources whose
/// objectId has no partitioned object are dropped (mirrors the paper's
/// clipped Source coverage producing null LV2 results). Rows outside
/// [-90, 90] latitude (top-band duplicator spill) are dropped.
util::Result<PartitionedCatalog> partitionCatalog(
    const sphgeom::Chunker& chunker, std::span<const ObjectRow> objects,
    std::span<const SourceRow> sources);

/// Register one chunk's tables into \p db and index Object_CC by objectId
/// (paper §5.5: "Chunk tables on workers' MySQL instances are also indexed
/// by objectId"). Source_CC is indexed by objectId as well.
util::Status loadChunkIntoDatabase(sql::Database& db, const ChunkData& chunk);

}  // namespace qserv::datagen
