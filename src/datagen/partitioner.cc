#include "datagen/partitioner.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "datagen/schemas.h"
#include "util/strings.h"

namespace qserv::datagen {

std::string chunkTableName(const std::string& base, std::int32_t chunkId) {
  return base + "_" + std::to_string(chunkId);
}

std::string overlapTableName(const std::string& base, std::int32_t chunkId) {
  return base + "Overlap_" + std::to_string(chunkId);
}

std::string subChunkTableName(const std::string& base, std::int32_t chunkId,
                              std::int32_t subChunkId) {
  return base + "_" + std::to_string(chunkId) + "_" +
         std::to_string(subChunkId);
}

namespace {

std::vector<sql::Value> objectValues(const ObjectRow& o, std::int32_t chunkId,
                                     std::int32_t subChunkId) {
  std::vector<sql::Value> row(kObjNumCols);
  row[kObjObjectId] = sql::Value(o.objectId);
  row[kObjRaPs] = sql::Value(o.ra);
  row[kObjDeclPs] = sql::Value(o.decl);
  row[kObjURadiusPs] = sql::Value(o.uRadius);
  row[kObjUFluxPs] = sql::Value(o.flux[0]);
  row[kObjGFluxPs] = sql::Value(o.flux[1]);
  row[kObjRFluxPs] = sql::Value(o.flux[2]);
  row[kObjIFluxPs] = sql::Value(o.flux[3]);
  row[kObjZFluxPs] = sql::Value(o.flux[4]);
  row[kObjYFluxPs] = sql::Value(o.flux[5]);
  row[kObjUFluxSg] = sql::Value(o.uFluxSg);
  row[kObjChunkId] = sql::Value(static_cast<std::int64_t>(chunkId));
  row[kObjSubChunkId] = sql::Value(static_cast<std::int64_t>(subChunkId));
  return row;
}

std::vector<sql::Value> sourceValues(const SourceRow& s, std::int32_t chunkId,
                                     std::int32_t subChunkId) {
  std::vector<sql::Value> row(kSrcNumCols);
  row[kSrcSourceId] = sql::Value(s.sourceId);
  row[kSrcObjectId] = sql::Value(s.objectId);
  row[kSrcRa] = sql::Value(s.ra);
  row[kSrcDecl] = sql::Value(s.decl);
  row[kSrcPsfFlux] = sql::Value(s.psfFlux);
  row[kSrcPsfFluxErr] = sql::Value(s.psfFluxErr);
  row[kSrcTaiMidPoint] = sql::Value(s.taiMidPoint);
  row[kSrcChunkId] = sql::Value(static_cast<std::int64_t>(chunkId));
  row[kSrcSubChunkId] = sql::Value(static_cast<std::int64_t>(subChunkId));
  return row;
}

}  // namespace

util::Result<PartitionedCatalog> partitionCatalog(
    const sphgeom::Chunker& chunker, std::span<const ObjectRow> objects,
    std::span<const SourceRow> sources) {
  PartitionedCatalog out;
  std::map<std::int32_t, ChunkData> chunks;  // ordered by chunkId

  auto chunkFor = [&](std::int32_t chunkId) -> ChunkData& {
    auto it = chunks.find(chunkId);
    if (it == chunks.end()) {
      ChunkData data;
      data.chunkId = chunkId;
      data.objects = std::make_shared<sql::Table>(
          chunkTableName("Object", chunkId), objectSchema());
      data.objectOverlap = std::make_shared<sql::Table>(
          overlapTableName("Object", chunkId), objectSchema());
      data.sources = std::make_shared<sql::Table>(
          chunkTableName("Source", chunkId), sourceSchema());
      it = chunks.emplace(chunkId, std::move(data)).first;
    }
    return it->second;
  };

  struct ObjectHome {
    std::int32_t chunkId;
    std::int32_t subChunkId;
  };
  std::unordered_map<std::int64_t, ObjectHome> homes;
  homes.reserve(objects.size());

  const double overlap = chunker.overlapDeg();
  for (const ObjectRow& o : objects) {
    if (o.decl < -90.0 || o.decl > 90.0) continue;  // duplicator spill
    std::int32_t chunkId = chunker.chunkAt(o.ra, o.decl);
    std::int32_t subChunkId = chunker.subChunkAt(chunkId, o.ra, o.decl);
    QSERV_RETURN_IF_ERROR(
        chunkFor(chunkId).objects->appendRow(objectValues(o, chunkId,
                                                          subChunkId)));
    homes[o.objectId] = {chunkId, subChunkId};
    out.index.push_back({o.objectId, chunkId, subChunkId});

    // Overlap assignment: the row also lands in the overlap table of every
    // *other* chunk whose dilated box contains it. The candidate search must
    // use the *chunk's* longitude margin, which can exceed the point's own
    // (a more polar chunk dilates wider); bound it by the worst latitude a
    // candidate chunk edge can have: |dec| + overlap + one stripe height.
    if (overlap > 0.0) {
      double worstLat = std::min(89.99, std::fabs(o.decl) + overlap +
                                            chunker.stripeHeightDeg());
      double lonMargin =
          overlap / std::max(1e-6, std::cos(sphgeom::degToRad(worstLat)));
      lonMargin = std::min(lonMargin, 180.0);
      sphgeom::SphericalBox pointNbhd(o.ra - lonMargin, o.decl - overlap,
                                      o.ra + lonMargin, o.decl + overlap);
      for (std::int32_t cand : chunker.chunksIntersecting(pointNbhd)) {
        if (cand == chunkId) continue;
        if (chunker.chunkBox(cand).dilated(overlap).contains(o.ra, o.decl)) {
          QSERV_RETURN_IF_ERROR(chunkFor(cand).objectOverlap->appendRow(
              objectValues(o, chunkId, subChunkId)));
        }
      }
    }
  }

  std::uint64_t dropped = 0;
  for (const SourceRow& s : sources) {
    auto it = homes.find(s.objectId);
    if (it == homes.end()) {
      ++dropped;
      continue;
    }
    QSERV_RETURN_IF_ERROR(chunkFor(it->second.chunkId)
                              .sources->appendRow(sourceValues(
                                  s, it->second.chunkId,
                                  it->second.subChunkId)));
  }
  (void)dropped;

  out.chunks.reserve(chunks.size());
  for (auto& [id, data] : chunks) out.chunks.push_back(std::move(data));
  std::sort(out.index.begin(), out.index.end(),
            [](const auto& a, const auto& b) { return a.objectId < b.objectId; });
  return out;
}

util::Status loadChunkIntoDatabase(sql::Database& db, const ChunkData& chunk) {
  QSERV_RETURN_IF_ERROR(db.registerTable(chunk.objects));
  QSERV_RETURN_IF_ERROR(db.registerTable(chunk.objectOverlap));
  QSERV_RETURN_IF_ERROR(db.registerTable(chunk.sources));
  QSERV_RETURN_IF_ERROR(db.createIndex(chunk.objects->name(), "objectId"));
  QSERV_RETURN_IF_ERROR(db.createIndex(chunk.sources->name(), "objectId"));
  return util::Status::ok();
}

}  // namespace qserv::datagen
