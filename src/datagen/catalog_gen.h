/// \file catalog_gen.h
/// \brief Synthetic PT1.1-like base patch and the sky duplicator (paper §6.1.2).
///
/// The paper's test data was made by "spatially replicating the dataset from
/// a recent LSST data challenge ('PT1.1')": a patch with RA in [358, 5] and
/// Dec in [-7, 7], "replicated over the sky by transforming duplicate rows'
/// RA and declination columns, taking care to maintain spatial distance and
/// density by a non-linear transformation of right-ascension as a function
/// of declination". We synthesize the base patch (LSST's PT1.1 itself is not
/// available here) and reproduce that duplication scheme: 14-degree
/// declination bands, each tiled by RA copies whose width is stretched by
/// the band's 1/cos(dec) meridian-convergence factor.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sphgeom/spherical_box.h"
#include "util/rng.h"

namespace qserv::datagen {

struct ObjectRow {
  std::int64_t objectId = 0;
  double ra = 0.0;
  double decl = 0.0;
  double uRadius = 0.0;
  double flux[6] = {0, 0, 0, 0, 0, 0};  // u, g, r, i, z, y
  double uFluxSg = 0.0;
};

struct SourceRow {
  std::int64_t sourceId = 0;
  std::int64_t objectId = 0;
  double ra = 0.0;
  double decl = 0.0;
  double psfFlux = 0.0;
  double psfFluxErr = 0.0;
  double taiMidPoint = 0.0;
};

/// The PT1.1 patch footprint: RA 358..5 (wrapping), Dec -7..7.
sphgeom::SphericalBox pt11PatchBox();

struct BasePatchOptions {
  std::int64_t objectCount = 5000;
  double sourcesPerObjectMean = 41.0;   ///< paper: k ~= 41
  double sourceScatterDeg = 1.0 / 7200; ///< 0.5 arcsec astrometric scatter
  /// Fraction of sources displaced far (>16 arcsec) from their object —
  /// the population SHV2's "sources not near objects" query finds.
  double straySourceFraction = 0.02;
  /// Fraction of objects given an extreme red color (i-z boosted by 3.5-5
  /// magnitudes) — the population HV2's full-sky cut selects. The paper's
  /// catalog had ~4e-5; small base patches may need a larger fraction so at
  /// least a few outliers exist before duplication.
  double redOutlierFraction = 1e-4;
  std::uint64_t seed = 20110901;        ///< default: fully deterministic
};

/// Generates the synthetic base patch.
class BasePatchGenerator {
 public:
  explicit BasePatchGenerator(BasePatchOptions options);

  /// Objects uniformly distributed (per solid angle) over the PT1.1 box,
  /// with correlated magnitudes so color cuts select small fractions.
  std::vector<ObjectRow> objects();

  /// ~41 detections per object, jittered around the object position.
  std::vector<SourceRow> sourcesFor(const std::vector<ObjectRow>& objects);

 private:
  BasePatchOptions options_;
  util::Rng rng_;
};

/// Replicates the base patch over the sky.
class Duplicator {
 public:
  struct Options {
    double decMin = -90.0;
    double decMax = 90.0;
  };

  Duplicator();
  explicit Duplicator(Options options);

  /// One placement of the base patch.
  struct Copy {
    int band = 0;  ///< declination band index
    int slot = 0;  ///< RA position within the band
  };

  int bandCount() const;
  int slotsInBand(int band) const;

  /// Total number of copies over the configured declination range.
  std::int64_t totalCopies() const;

  /// All copies whose footprint intersects \p region.
  std::vector<Copy> copiesIntersecting(const sphgeom::SphericalBox& region) const;

  /// Footprint of a copy on the sky.
  sphgeom::SphericalBox copyBox(const Copy& c) const;

  /// Map a base-patch position into copy \p c. The RA stretch is the band's
  /// density-preserving (non-linear in dec) factor.
  sphgeom::LonLat transform(const Copy& c, double raBase, double decBase) const;

  /// Unique id offset for rows of copy \p c (ids never collide).
  std::int64_t idOffset(const Copy& c, std::int64_t baseCount) const;

  /// Index of a copy in enumeration order.
  std::int64_t copyIndex(const Copy& c) const;

 private:
  Options options_;
  int firstBand_ = 0;
  int lastBand_ = 0;                 // inclusive
  std::vector<int> slotsPerBand_;    // indexed by band - firstBand_
  std::vector<std::int64_t> cumulativeCopies_;
};

/// Paper band/patch geometry: the patch is 7 deg of RA x 14 deg of Dec.
inline constexpr double kPatchRaWidthDeg = 7.0;
inline constexpr double kPatchDecHeightDeg = 14.0;

}  // namespace qserv::datagen
