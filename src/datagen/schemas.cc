#include "datagen/schemas.h"

namespace qserv::datagen {

using sql::ColumnDef;
using sql::ColumnType;
using sql::Schema;

Schema objectSchema() {
  return Schema({
      ColumnDef{"objectId", ColumnType::kInt},
      ColumnDef{"ra_PS", ColumnType::kDouble},
      ColumnDef{"decl_PS", ColumnType::kDouble},
      ColumnDef{"uRadius_PS", ColumnType::kDouble},
      ColumnDef{"uFlux_PS", ColumnType::kDouble},
      ColumnDef{"gFlux_PS", ColumnType::kDouble},
      ColumnDef{"rFlux_PS", ColumnType::kDouble},
      ColumnDef{"iFlux_PS", ColumnType::kDouble},
      ColumnDef{"zFlux_PS", ColumnType::kDouble},
      ColumnDef{"yFlux_PS", ColumnType::kDouble},
      ColumnDef{"uFlux_SG", ColumnType::kDouble},
      ColumnDef{"chunkId", ColumnType::kInt},
      ColumnDef{"subChunkId", ColumnType::kInt},
  });
}

Schema sourceSchema() {
  return Schema({
      ColumnDef{"sourceId", ColumnType::kInt},
      ColumnDef{"objectId", ColumnType::kInt},
      ColumnDef{"ra", ColumnType::kDouble},
      ColumnDef{"decl", ColumnType::kDouble},
      ColumnDef{"psfFlux", ColumnType::kDouble},
      ColumnDef{"psfFluxErr", ColumnType::kDouble},
      ColumnDef{"taiMidPoint", ColumnType::kDouble},
      ColumnDef{"chunkId", ColumnType::kInt},
      ColumnDef{"subChunkId", ColumnType::kInt},
  });
}

}  // namespace qserv::datagen
