/// \file schemas.h
/// \brief PT1.1-like catalog schemas and paper-scale size constants.
///
/// The real PT1.1 Object table has hundreds of columns (~2 kB/row); we carry
/// the columns the paper's queries touch plus the partitioning metadata, and
/// keep the *paper-scale* row byte sizes as constants so the cost model can
/// charge full-width MyISAM scans (Table 1: Object 2 kB/row, Source 650 B/row,
/// ForcedSource 30 B/row).
#pragma once

#include <cstdint>

#include "sql/schema.h"

namespace qserv::datagen {

/// Paper Table 1 row sizes (raw storage bytes).
inline constexpr double kObjectRowBytes = 2048.0;
inline constexpr double kSourceRowBytes = 650.0;
inline constexpr double kForcedSourceRowBytes = 30.0;

/// Paper Table 1 row counts for the final data release.
inline constexpr double kObjectRowsFinal = 26e9;
inline constexpr double kSourceRowsFinal = 1.8e12;
inline constexpr double kForcedSourceRowsFinal = 21e12;

/// Paper §6.1.2 test dataset sizes.
inline constexpr double kTestObjectRows = 1.7e9;
inline constexpr double kTestSourceRows = 55e9;
inline constexpr double kTestObjectBytes = 1.824e12;  // §6.2 HV2 MyISAM .MYD
inline constexpr double kTestSourceBytes = 30e12;

/// Average Source rows per Object (paper §6.2 SHV2: k ~= 41).
inline constexpr double kSourcesPerObject = 41.0;

/// Object table schema (subset of PT1.1).
sql::Schema objectSchema();

/// Source table schema (subset of PT1.1).
sql::Schema sourceSchema();

/// Column order of objectSchema(), for row construction.
enum ObjectCol : std::size_t {
  kObjObjectId = 0,
  kObjRaPs,
  kObjDeclPs,
  kObjURadiusPs,
  kObjUFluxPs,
  kObjGFluxPs,
  kObjRFluxPs,
  kObjIFluxPs,
  kObjZFluxPs,
  kObjYFluxPs,
  kObjUFluxSg,
  kObjChunkId,
  kObjSubChunkId,
  kObjNumCols,
};

enum SourceCol : std::size_t {
  kSrcSourceId = 0,
  kSrcObjectId,
  kSrcRa,
  kSrcDecl,
  kSrcPsfFlux,
  kSrcPsfFluxErr,
  kSrcTaiMidPoint,
  kSrcChunkId,
  kSrcSubChunkId,
  kSrcNumCols,
};

}  // namespace qserv::datagen
