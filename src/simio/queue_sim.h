/// \file queue_sim.h
/// \brief Virtual-time simulation of worker FIFO queues and master overhead.
///
/// Reproduces the scheduling behaviour the paper describes in §6.4: "worker
/// nodes maintain first-in-first-out queues for queries and do not implement
/// any concept of query cost", so long scan tasks convoy short interactive
/// tasks behind them (Fig 14). Each worker node runs `slotsPerNode` executor
/// slots; chunk-query tasks start in arrival order on the earliest free slot.
///
/// The master dispatches a query's chunk tasks serially (fixed per-chunk
/// cost — the §7.6 single-master bottleneck and the linear trend of HV1 in
/// Fig 11) and loads results serially as they arrive.
#pragma once

#include <cstdint>
#include <vector>

#include "simio/cost_model.h"

namespace qserv::simio {

/// One chunk query to simulate.
struct SimChunkTask {
  int worker = 0;           ///< node that owns the chunk
  double serviceSec = 0.0;  ///< worker execution time (workerServiceSeconds)
  double collectSec = 0.0;  ///< master load time (masterCollectSeconds)
  /// Master dispatch cost of this task; < 0 means "use the default
  /// masterPerChunkOverheadSec". Batched dispatch sets the amortized
  /// per-chunk cost here (amortizedBatchDispatchSec).
  double dispatchSec = -1.0;
  /// Interactive-class task (point/secondary-index lookup). Only consulted
  /// when CostParams::workerPriorityLane is on: interactive tasks then claim
  /// a free slot ahead of any queued scan task (the §4.3 scheduler fix);
  /// otherwise the queue is the paper's pure FIFO.
  bool interactive = false;
};

/// One user query: submitted at \p submitSec, fanning out \p tasks.
struct SimQuery {
  double submitSec = 0.0;
  std::vector<SimChunkTask> tasks;
};

struct SimQueryResult {
  double submitSec = 0.0;
  double dispatchDoneSec = 0.0;   ///< last chunk query written
  double lastResultSec = 0.0;     ///< last worker completion
  double completionSec = 0.0;     ///< result table ready at the frontend
  double elapsedSec() const { return completionSec - submitSec; }
};

/// Simulate \p queries sharing one cluster. Queries interact only through
/// worker FIFO queues and the serialized master collect stage, which is how
/// the real system couples them.
std::vector<SimQueryResult> simulateQueries(const std::vector<SimQuery>& queries,
                                            const CostParams& params);

/// Convenience for one query starting at t=0.
SimQueryResult simulateQuery(const std::vector<SimChunkTask>& tasks,
                             const CostParams& params);

}  // namespace qserv::simio
