/// \file cost_model.h
/// \brief Calibrated cluster cost model (virtual time).
///
/// We cannot run the paper's 150-node cluster, so every experiment runs the
/// real Qserv code path on scaled-down data while this model converts *work
/// observables* (paper-scale bytes scanned, rows examined, join pairs,
/// result bytes) into virtual service seconds per chunk query. A FIFO/K-slot
/// queue simulation (queue_sim.h) then turns service times into completion
/// times. Calibration anchors, all from the paper:
///
///  - §6.1.1: 150 nodes, 2x quad-core Xeon X5355, 16 GB RAM, one 500 GB
///    7200RPM SATA disk; gigabit Ethernet.
///  - §6.2 HV2: theoretical disk rate 98 MB/s; measured 76 MB/s/node when
///    (partially) cached, 27 MB/s/node aggregate under 4-way concurrent
///    scanning ("each node was configured to execute up to 4 queries in
///    parallel").
///  - §6.2 LV1-3: ~4 s floor for point queries => per-query fixed frontend
///    overhead (proxy, parse, two xrootd file transactions, result load).
///  - §6.2 HV1: 20-30 s for a trivial full-sky query over 8983 chunks =>
///    ~2.8 ms of master-side work per chunk query (dispatch + collect).
///  - §6.2 SHV1: ~660 s for a 100 deg^2 near-neighbor join producing 3-5e9
///    pairs => ~2.5 us per evaluated pair (UDF trig on MySQL).
#pragma once

#include <cstdint>

namespace qserv::simio {

struct CostParams {
  // Cluster shape.
  int nodeCount = 150;
  int slotsPerNode = 4;  ///< concurrent chunk queries per worker (paper: 4)

  // Disk model (bytes/second). `seqBandwidth` applies when a worker runs a
  // single scan stream; under concurrent scanning the whole disk degrades to
  // `contendedBandwidth` shared across streams (seek thrash, §6.2 HV2).
  double seqBandwidthBytesPerSec = 76e6;
  double contendedBandwidthBytesPerSec = 27e6;
  double seekSeconds = 0.010;
  /// Concurrent scan streams assumed per node when pricing disk reads:
  /// 0 = slotsPerNode (the saturated operating point, right for full-sky
  /// scans); callers simulating a lone small query set the actual number
  /// of its tasks co-resident per node (1 for an LV query).
  int scanStreams = 0;

  // Master / frontend.
  double perQueryFixedOverheadSec = 3.5;    ///< proxy+parse+dispatch+collect
  double masterPerChunkOverheadSec = 0.0028;///< per chunk query (HV1 anchor)
  double resultTransferBytesPerSec = 20e6;  ///< mysqldump stream + reload
  double resultPerRowOverheadSec = 2e-6;    ///< INSERT replay on frontend

  // Batched (UberJob-style) dispatch: one request per (query, worker) pays
  // the full per-request master cost once; each chunk inside the batch only
  // costs its serialization slice. The §7.6 2.8 ms/chunk anchor becomes the
  // per-batch term; the residual per-chunk term is the measured cost of
  // framing one more chunk into an already-open request.
  double masterPerBatchOverheadSec = 0.0028;
  double masterBatchedPerChunkOverheadSec = 0.0002;

  // Worker CPU.
  double cpuPerRowSec = 1.0e-6;        ///< per row examined by a filter scan
  double cpuPerPairSec = 2.5e-6;       ///< per nested-loop pair (SHV1 anchor)
  /// Per equi-join matched row. MySQL 5.1 executes Object x Source as an
  /// indexed nested-loop whose B-tree probes seek an out-of-cache table;
  /// SHV2's 2-5.3 h over ~150 deg^2 with k ~= 41 anchors this near 1 ms.
  double cpuPerMatchSec = 8.0e-4;
  double cpuPerRowBuiltSec = 2.0e-6;   ///< per row written by CTAS builds
  double indexLookupSeekSec = 0.05;    ///< index probe incl. disk touches

  /// Fraction of scanned bytes served from the page cache (0 = cold).
  double cacheFraction = 0.0;

  /// Scheduler policy, not hardware: when on, simulated workers run the
  /// shared-scan scheduler's priority lane (interactive SimChunkTasks claim
  /// free slots ahead of queued scans) instead of the paper's pure FIFO.
  bool workerPriorityLane = false;

  /// The paper's 150-node configuration (cold cache).
  static CostParams paper150() { return CostParams{}; }

  /// Same hardware, different node count (weak scaling experiments).
  static CostParams paperNodes(int nodes) {
    CostParams p;
    p.nodeCount = nodes;
    return p;
  }
};

/// Work observables for one chunk query, at *paper scale*. The Qserv worker
/// translates its real ExecStats into these using the scale factor between
/// its scaled-down tables and the paper's table sizes.
struct WorkObservables {
  double bytesScanned = 0;       ///< MyISAM bytes a full execution would read
  std::uint64_t rowsExamined = 0;
  std::uint64_t pairsEvaluated = 0;  ///< nested-loop pairs (scale ~ density^2)
  std::uint64_t joinMatches = 0;     ///< equi-join matches (scale ~ density)
  std::uint64_t rowsBuilt = 0;   ///< rows written into on-the-fly subchunks
  std::uint64_t indexLookups = 0;
  double resultBytes = 0;        ///< dump bytes shipped to the master
  std::uint64_t resultRows = 0;
};

/// Virtual service seconds for one chunk query on one worker slot.
/// Scans are charged at the contended per-stream rate
/// (contendedBandwidth / slotsPerNode) because the system's stated operating
/// point is 4 concurrent scan streams per node; single-stream callers may
/// override via params.slotsPerNode = 1.
double workerServiceSeconds(const WorkObservables& w, const CostParams& p);

/// Master-side virtual seconds to collect and load one chunk result.
double masterCollectSeconds(const WorkObservables& w, const CostParams& p);

/// Per-chunk master dispatch seconds under batched dispatch: \p batches
/// requests amortized over \p chunks chunk queries plus the per-chunk
/// framing slice. Falls back to the per-chunk cost when nothing was batched.
double amortizedBatchDispatchSec(std::size_t chunks, std::size_t batches,
                                 const CostParams& p);

}  // namespace qserv::simio
