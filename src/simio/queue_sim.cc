#include "simio/queue_sim.h"

#include <algorithm>
#include <deque>
#include <queue>

namespace qserv::simio {

namespace {

struct PendingTask {
  double arrivalSec = 0.0;
  double serviceSec = 0.0;
  double collectSec = 0.0;
  std::size_t queryIdx = 0;
  std::size_t seq = 0;  // global tie-break for deterministic FIFO order
  bool interactive = false;
};

}  // namespace

std::vector<SimQueryResult> simulateQueries(const std::vector<SimQuery>& queries,
                                            const CostParams& params) {
  std::vector<SimQueryResult> results(queries.size());
  const double preDispatch = params.perQueryFixedOverheadSec * 0.5;
  const double postCollect = params.perQueryFixedOverheadSec * 0.5;

  // Phase 1: master dispatch — serial per query, concurrent across queries
  // (each session has its own frontend thread; the shared cost is modeled in
  // the serialized collect stage below).
  std::vector<std::vector<PendingTask>> perWorker(
      static_cast<std::size_t>(std::max(1, params.nodeCount)));
  std::size_t seq = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const SimQuery& query = queries[q];
    results[q].submitSec = query.submitSec;
    double dispatchStart = query.submitSec + preDispatch;
    double t = dispatchStart;
    for (const SimChunkTask& task : query.tasks) {
      t += task.dispatchSec >= 0 ? task.dispatchSec
                                 : params.masterPerChunkOverheadSec;
      PendingTask p;
      p.arrivalSec = t;
      p.serviceSec = task.serviceSec;
      p.collectSec = task.collectSec;
      p.queryIdx = q;
      p.seq = seq++;
      p.interactive = task.interactive;
      std::size_t w = static_cast<std::size_t>(task.worker) %
                      perWorker.size();
      perWorker[w].push_back(p);
    }
    results[q].dispatchDoneSec = t;
    if (query.tasks.empty()) {
      results[q].lastResultSec = t;
      results[q].completionSec = t + postCollect;
    }
  }

  // Phase 2: worker FIFO queues with K slots each.
  struct Finished {
    double readySec;
    double collectSec;
    std::size_t queryIdx;
    std::size_t seq;
  };
  std::vector<Finished> finished;
  for (auto& tasks : perWorker) {
    if (tasks.empty()) continue;
    std::sort(tasks.begin(), tasks.end(), [](const auto& a, const auto& b) {
      if (a.arrivalSec != b.arrivalSec) return a.arrivalSec < b.arrivalSec;
      return a.seq < b.seq;
    });
    // Min-heap of slot free times.
    std::priority_queue<double, std::vector<double>, std::greater<>> slots;
    for (int s = 0; s < std::max(1, params.slotsPerNode); ++s) slots.push(0.0);
    if (!params.workerPriorityLane) {
      for (const PendingTask& p : tasks) {
        double free = slots.top();
        slots.pop();
        double start = std::max(free, p.arrivalSec);
        double end = start + p.serviceSec;
        slots.push(end);
        finished.push_back({end, p.collectSec, p.queryIdx, p.seq});
      }
      continue;
    }
    // Priority lane (the §4.3 scheduler): event-driven — each time a slot
    // frees, every task that has arrived by then is admitted into its class
    // queue, and the slot takes the earliest interactive task if any is
    // waiting, else the earliest scan. Identical to FIFO when no task is
    // marked interactive and arrivals never queue.
    std::deque<const PendingTask*> lanes[2];  // [0]=interactive, [1]=scan
    std::size_t cursor = 0;
    std::size_t remaining = tasks.size();
    while (remaining > 0) {
      double now = slots.top();
      auto admitUpTo = [&](double t) {
        while (cursor < tasks.size() && tasks[cursor].arrivalSec <= t) {
          const PendingTask& p = tasks[cursor++];
          lanes[p.interactive ? 0 : 1].push_back(&p);
        }
      };
      admitUpTo(now);
      if (lanes[0].empty() && lanes[1].empty()) {
        // Slot idle until the next arrival.
        now = tasks[cursor].arrivalSec;
        admitUpTo(now);
      }
      std::deque<const PendingTask*>& lane =
          lanes[0].empty() ? lanes[1] : lanes[0];
      const PendingTask* p = lane.front();
      lane.pop_front();
      slots.pop();
      double start = std::max(now, p->arrivalSec);
      double end = start + p->serviceSec;
      slots.push(end);
      finished.push_back({end, p->collectSec, p->queryIdx, p->seq});
      --remaining;
    }
  }

  // Phase 3: master collect — a single serialized loader (mysqldump replay
  // into the frontend database), processing results in ready order.
  std::sort(finished.begin(), finished.end(), [](const auto& a, const auto& b) {
    if (a.readySec != b.readySec) return a.readySec < b.readySec;
    return a.seq < b.seq;
  });
  double masterFree = 0.0;
  for (const Finished& f : finished) {
    double start = std::max(masterFree, f.readySec);
    double end = start + f.collectSec;
    masterFree = end;
    SimQueryResult& r = results[f.queryIdx];
    r.lastResultSec = std::max(r.lastResultSec, f.readySec);
    r.completionSec = std::max(r.completionSec, end + postCollect);
  }
  return results;
}

SimQueryResult simulateQuery(const std::vector<SimChunkTask>& tasks,
                             const CostParams& params) {
  SimQuery q;
  q.tasks = tasks;
  return simulateQueries({q}, params)[0];
}

}  // namespace qserv::simio
