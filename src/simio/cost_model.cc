#include "simio/cost_model.h"

#include <algorithm>

namespace qserv::simio {

double workerServiceSeconds(const WorkObservables& w, const CostParams& p) {
  double seconds = 0.0;

  // Disk: bytes not served from cache stream at the contended per-stream
  // rate (the disk is shared by up to slotsPerNode concurrent scans).
  double coldBytes = w.bytesScanned * (1.0 - std::clamp(p.cacheFraction, 0.0, 1.0));
  if (coldBytes > 0) {
    int streams = p.scanStreams > 0 ? p.scanStreams : std::max(1, p.slotsPerNode);
    double perStream =
        (streams > 1 ? p.contendedBandwidthBytesPerSec / streams
                     : p.seqBandwidthBytesPerSec);
    seconds += coldBytes / perStream;
    seconds += p.seekSeconds;  // initial positioning
  }

  // Index probes pay seeks even when the bulk scan is skipped.
  seconds += static_cast<double>(w.indexLookups) * p.indexLookupSeekSec;

  // CPU.
  seconds += static_cast<double>(w.rowsExamined) * p.cpuPerRowSec;
  seconds += static_cast<double>(w.pairsEvaluated) * p.cpuPerPairSec;
  seconds += static_cast<double>(w.joinMatches) * p.cpuPerMatchSec;
  seconds += static_cast<double>(w.rowsBuilt) * p.cpuPerRowBuiltSec;

  return seconds;
}

double masterCollectSeconds(const WorkObservables& w, const CostParams& p) {
  double seconds = 0.0;
  if (w.resultBytes > 0 && p.resultTransferBytesPerSec > 0) {
    seconds += w.resultBytes / p.resultTransferBytesPerSec;
  }
  seconds += static_cast<double>(w.resultRows) * p.resultPerRowOverheadSec;
  return seconds;
}

double amortizedBatchDispatchSec(std::size_t chunks, std::size_t batches,
                                 const CostParams& p) {
  if (chunks == 0) return 0.0;
  if (batches == 0) return p.masterPerChunkOverheadSec;
  return p.masterPerBatchOverheadSec * static_cast<double>(batches) /
             static_cast<double>(chunks) +
         p.masterBatchedPerChunkOverheadSec;
}

}  // namespace qserv::simio
