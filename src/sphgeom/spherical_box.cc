#include "sphgeom/spherical_box.h"

#include <algorithm>
#include <cmath>

#include "sphgeom/angle.h"
#include "util/strings.h"

namespace qserv::sphgeom {

SphericalBox::SphericalBox(double lonMin, double latMin, double lonMax,
                           double latMax) {
  latMin_ = clampLatDeg(latMin);
  latMax_ = clampLatDeg(latMax);
  if (latMin_ > latMax_) {
    empty_ = true;
    return;
  }
  empty_ = false;
  if (lonMax - lonMin >= 360.0) {
    fullLon_ = true;
    lonMin_ = 0.0;
    lonMax_ = 360.0;
  } else {
    fullLon_ = false;
    lonMin_ = normalizeLonDeg(lonMin);
    lonMax_ = normalizeLonDeg(lonMax);
    // A zero-width input that normalizes to identical endpoints is a line,
    // not a full circle; keep as-is (lonContains handles equality).
  }
}

double SphericalBox::lonExtent() const {
  if (empty_) return 0.0;
  if (fullLon_) return 360.0;
  double e = lonMax_ - lonMin_;
  if (e < 0.0) e += 360.0;
  return e;
}

bool SphericalBox::lonContains(double lon) const {
  if (fullLon_) return true;
  lon = normalizeLonDeg(lon);
  if (lonMin_ <= lonMax_) return lon >= lonMin_ && lon <= lonMax_;
  return lon >= lonMin_ || lon <= lonMax_;  // wraps
}

bool SphericalBox::contains(double lonDeg, double latDeg) const {
  if (empty_) return false;
  if (latDeg < latMin_ || latDeg > latMax_) return false;
  return lonContains(lonDeg);
}

bool SphericalBox::intersects(const SphericalBox& other) const {
  if (empty_ || other.empty_) return false;
  if (latMax_ < other.latMin_ || other.latMax_ < latMin_) return false;
  if (fullLon_ || other.fullLon_) return true;
  // Interval intersection on the circle: A and B intersect iff A contains
  // B's start, or B contains A's start.
  return lonContains(other.lonMin_) || other.lonContains(lonMin_);
}

SphericalBox SphericalBox::dilated(double radiusDeg) const {
  if (empty_ || radiusDeg <= 0.0) return *this;
  double latMin = latMin_ - radiusDeg;
  double latMax = latMax_ + radiusDeg;
  // Latitude of the box edge closest to a pole governs meridian convergence.
  double maxAbsLat =
      std::max(std::fabs(clampLatDeg(latMin)), std::fabs(clampLatDeg(latMax)));
  SphericalBox out;
  out.empty_ = false;
  out.latMin_ = clampLatDeg(latMin);
  out.latMax_ = clampLatDeg(latMax);
  if (fullLon_ || maxAbsLat + radiusDeg >= 90.0 - 1e-9) {
    out.fullLon_ = true;
    out.lonMin_ = 0.0;
    out.lonMax_ = 360.0;
    return out;
  }
  double cosLat = std::cos(degToRad(maxAbsLat));
  double lonMargin = (cosLat > 1e-12) ? radiusDeg / cosLat : 360.0;
  if (lonExtent() + 2.0 * lonMargin >= 360.0) {
    out.fullLon_ = true;
    out.lonMin_ = 0.0;
    out.lonMax_ = 360.0;
  } else {
    out.fullLon_ = false;
    out.lonMin_ = normalizeLonDeg(lonMin_ - lonMargin);
    out.lonMax_ = normalizeLonDeg(lonMax_ + lonMargin);
  }
  return out;
}

double SphericalBox::area() const {
  if (empty_) return 0.0;
  double dlon = degToRad(lonExtent());
  double band = std::sin(degToRad(latMax_)) - std::sin(degToRad(latMin_));
  return dlon * band * kDegPerRad * kDegPerRad;
}

std::string SphericalBox::toString() const {
  if (empty_) return "box(empty)";
  return util::format("box(lon[%.4f,%.4f]%s lat[%.4f,%.4f])", lonMin_, lonMax_,
                      fullLon_ ? " full" : (wraps() ? " wrap" : ""), latMin_,
                      latMax_);
}

bool SphericalBox::operator==(const SphericalBox& o) const {
  if (empty_ != o.empty_) return false;
  if (empty_) return true;
  return fullLon_ == o.fullLon_ && lonMin_ == o.lonMin_ &&
         lonMax_ == o.lonMax_ && latMin_ == o.latMin_ && latMax_ == o.latMax_;
}

}  // namespace qserv::sphgeom
