/// \file coords.h
/// \brief Spherical <-> Cartesian conversion and angular separation.
#pragma once

#include "sphgeom/vector3d.h"

namespace qserv::sphgeom {

/// A point on the unit sphere: lon = RA, lat = Dec, both in degrees.
struct LonLat {
  double lon = 0.0;
  double lat = 0.0;
};

/// Unit vector for (lon, lat) degrees.
Vector3d toXyz(double lonDeg, double latDeg);
inline Vector3d toXyz(const LonLat& p) { return toXyz(p.lon, p.lat); }

/// Inverse of toXyz; lon normalized to [0, 360).
LonLat toLonLat(const Vector3d& v);

/// Great-circle separation between two points, in degrees.
/// Uses the haversine form for numerical stability at small separations —
/// this is the reference implementation of the paper's qserv_angSep UDF.
double angSepDeg(double lon1, double lat1, double lon2, double lat2);

}  // namespace qserv::sphgeom
