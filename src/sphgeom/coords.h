/// \file coords.h
/// \brief Spherical <-> Cartesian conversion and angular separation.
#pragma once

#include "sphgeom/vector3d.h"

namespace qserv::sphgeom {

/// A point on the unit sphere: lon = RA, lat = Dec, both in degrees.
struct LonLat {
  double lon = 0.0;
  double lat = 0.0;
};

/// Unit vector for (lon, lat) degrees.
Vector3d toXyz(double lonDeg, double latDeg);
inline Vector3d toXyz(const LonLat& p) { return toXyz(p.lon, p.lat); }

/// Inverse of toXyz; lon normalized to [0, 360).
LonLat toLonLat(const Vector3d& v);

/// Great-circle separation between two points, in degrees.
/// Uses the haversine form for numerical stability at small separations —
/// this is the reference implementation of the paper's qserv_angSep UDF.
double angSepDeg(double lon1, double lat1, double lon2, double lat2);

/// Half-width, in degrees of RA, of the smallest RA interval centered on a
/// point at declination \p decDeg containing every point within angular
/// distance \p rDeg of it (the zone algorithm's search window, Gray et al.).
/// The textbook widening is r / cos(dec); that undershoots by up to an
/// arcsin, so this returns the exact bound
///   alpha = atan(sin r / sqrt(cos(dec - r) * cos(dec + r)))
/// which is >= r / cos(dec) and tight. Returns 180 when the cap touches a
/// pole (|dec| + r >= 90: every RA can match) and 0 for r <= 0 or NaN.
double raSearchWindowDeg(double rDeg, double decDeg);

}  // namespace qserv::sphgeom
