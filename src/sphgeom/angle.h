/// \file angle.h
/// \brief Angle conversions and normalization on the sphere.
///
/// Positions follow the astronomical convention of the paper: longitude is
/// right ascension (RA, phi) in [0, 360) degrees and latitude is declination
/// (Dec, theta) in [-90, +90] degrees.
#pragma once

#include <cmath>

namespace qserv::sphgeom {

inline constexpr double kPi = 3.141592653589793238462643383279502884;
inline constexpr double kDegPerRad = 180.0 / kPi;
inline constexpr double kRadPerDeg = kPi / 180.0;
/// One arc-minute in degrees (the paper's overlap is 1 arcmin = 0.01667 deg).
inline constexpr double kArcminDeg = 1.0 / 60.0;

inline double degToRad(double deg) { return deg * kRadPerDeg; }
inline double radToDeg(double rad) { return rad * kDegPerRad; }

/// Normalize a longitude to [0, 360).
inline double normalizeLonDeg(double lon) {
  lon = std::fmod(lon, 360.0);
  if (lon < 0.0) lon += 360.0;
  // fmod can return 360.0 - epsilon rounding back up; pin exact 360 to 0.
  if (lon >= 360.0) lon = 0.0;
  return lon;
}

/// Clamp a latitude to [-90, 90].
inline double clampLatDeg(double lat) {
  if (lat < -90.0) return -90.0;
  if (lat > 90.0) return 90.0;
  return lat;
}

}  // namespace qserv::sphgeom
