#include "sphgeom/chunker.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "sphgeom/angle.h"

namespace qserv::sphgeom {

Chunker::Chunker(int numStripes, int numSubStripesPerStripe, double overlapDeg)
    : numStripes_(numStripes),
      numSubStripes_(numSubStripesPerStripe),
      overlapDeg_(overlapDeg) {
  if (numStripes < 1 || numSubStripesPerStripe < 1) {
    throw std::invalid_argument("Chunker: stripe counts must be >= 1");
  }
  if (overlapDeg < 0.0) {
    throw std::invalid_argument("Chunker: overlap must be >= 0");
  }
  stripeHeight_ = 180.0 / numStripes_;
  double subHeight = stripeHeight_ / numSubStripes_;
  stripes_.resize(static_cast<std::size_t>(numStripes_));
  for (int s = 0; s < numStripes_; ++s) {
    Stripe& st = stripes_[static_cast<std::size_t>(s)];
    st.latMin = -90.0 + s * stripeHeight_;
    st.latMax = (s + 1 == numStripes_) ? 90.0 : st.latMin + stripeHeight_;
    st.numChunks = segments(st.latMin, st.latMax, stripeHeight_);
    st.chunkWidth = 360.0 / st.numChunks;
    st.subChunkCols.resize(static_cast<std::size_t>(numSubStripes_));
    for (int t = 0; t < numSubStripes_; ++t) {
      double ssLatMin = st.latMin + t * subHeight;
      double ssLatMax = ssLatMin + subHeight;
      // Subchunk columns tile the chunk exactly: divide the global segment
      // count for this sub-stripe evenly over the stripe's chunks, rounding
      // up so subchunks are never wider than their target.
      int globalSegs = segments(ssLatMin, ssLatMax, subHeight);
      int cols = (globalSegs + st.numChunks - 1) / st.numChunks;
      st.subChunkCols[static_cast<std::size_t>(t)] = std::max(1, cols);
    }
    st.maxSubChunkCols =
        *std::max_element(st.subChunkCols.begin(), st.subChunkCols.end());
    totalChunks_ += st.numChunks;
  }
}

int Chunker::segments(double lat1Deg, double lat2Deg, double widthDeg) {
  double lat = std::max(std::fabs(degToRad(lat1Deg)),
                        std::fabs(degToRad(lat2Deg)));
  double width = degToRad(widthDeg);
  double cw = std::cos(width);
  double sl = std::sin(lat);
  double cl = std::cos(lat);
  // Longitude difference dlon at which two points on latitude `lat` are
  // separated by `width` of arc: cos(width) = sin^2(lat) + cos^2(lat) cos(dlon).
  double x = cw - sl * sl;
  double u = cl * cl;
  if (u < 1e-12 || x >= u) {
    // Polar cap (or width so small it exceeds the circle at this latitude
    // in the degenerate direction): a single segment.
    return 1;
  }
  double cosDlon = std::clamp(x / u, -1.0, 1.0);
  double dlon = std::acos(cosDlon);
  int n = static_cast<int>(std::floor(2.0 * kPi / dlon));
  return std::max(1, n);
}

int Chunker::stripeIndexOf(double latDeg) const {
  latDeg = clampLatDeg(latDeg);
  int s = static_cast<int>(std::floor((latDeg + 90.0) / stripeHeight_));
  return std::clamp(s, 0, numStripes_ - 1);
}

std::int32_t Chunker::chunkAt(double lonDeg, double latDeg) const {
  int s = stripeIndexOf(latDeg);
  const Stripe& st = stripes_[static_cast<std::size_t>(s)];
  double lon = normalizeLonDeg(lonDeg);
  int c = static_cast<int>(std::floor(lon / st.chunkWidth));
  c = std::clamp(c, 0, st.numChunks - 1);
  return static_cast<std::int32_t>(s * 2 * numStripes_ + c);
}

std::int32_t Chunker::subChunkAt(std::int32_t chunkId, double lonDeg,
                                 double latDeg) const {
  assert(isValidChunk(chunkId));
  int s = stripeOf(chunkId);
  int c = chunkInStripe(chunkId);
  const Stripe& st = stripes_[static_cast<std::size_t>(s)];
  double subHeight = stripeHeight_ / numSubStripes_;
  int t = static_cast<int>(
      std::floor((clampLatDeg(latDeg) - st.latMin) / subHeight));
  t = std::clamp(t, 0, numSubStripes_ - 1);
  int cols = st.subChunkCols[static_cast<std::size_t>(t)];
  double chunkLonMin = c * st.chunkWidth;
  double lon = normalizeLonDeg(lonDeg);
  double off = lon - chunkLonMin;
  if (off < 0.0) off += 360.0;
  double colWidth = st.chunkWidth / cols;
  int col = static_cast<int>(std::floor(off / colWidth));
  col = std::clamp(col, 0, cols - 1);
  return static_cast<std::int32_t>(t * st.maxSubChunkCols + col);
}

bool Chunker::isValidChunk(std::int32_t chunkId) const {
  if (chunkId < 0) return false;
  int s = chunkId / (2 * numStripes_);
  if (s >= numStripes_) return false;
  int c = chunkId % (2 * numStripes_);
  return c < stripes_[static_cast<std::size_t>(s)].numChunks;
}

bool Chunker::isValidSubChunk(std::int32_t chunkId,
                              std::int32_t subChunkId) const {
  if (!isValidChunk(chunkId) || subChunkId < 0) return false;
  const Stripe& st = stripes_[static_cast<std::size_t>(stripeOf(chunkId))];
  int t = subChunkId / st.maxSubChunkCols;
  if (t >= numSubStripes_) return false;
  int col = subChunkId % st.maxSubChunkCols;
  return col < st.subChunkCols[static_cast<std::size_t>(t)];
}

SphericalBox Chunker::chunkBox(std::int32_t chunkId) const {
  assert(isValidChunk(chunkId));
  int s = stripeOf(chunkId);
  int c = chunkInStripe(chunkId);
  const Stripe& st = stripes_[static_cast<std::size_t>(s)];
  double lonMin = c * st.chunkWidth;
  double lonMax = (c + 1 == st.numChunks) ? 360.0 : lonMin + st.chunkWidth;
  return SphericalBox(lonMin, st.latMin, lonMax, st.latMax);
}

SphericalBox Chunker::subChunkBox(std::int32_t chunkId,
                                  std::int32_t subChunkId) const {
  assert(isValidSubChunk(chunkId, subChunkId));
  int s = stripeOf(chunkId);
  int c = chunkInStripe(chunkId);
  const Stripe& st = stripes_[static_cast<std::size_t>(s)];
  int t = subChunkId / st.maxSubChunkCols;
  int col = subChunkId % st.maxSubChunkCols;
  int cols = st.subChunkCols[static_cast<std::size_t>(t)];
  double subHeight = stripeHeight_ / numSubStripes_;
  double latMin = st.latMin + t * subHeight;
  double latMax = (t + 1 == numSubStripes_) ? st.latMax : latMin + subHeight;
  double chunkLonMin = c * st.chunkWidth;
  double colWidth = st.chunkWidth / cols;
  double lonMin = chunkLonMin + col * colWidth;
  double lonMax = (col + 1 == cols) ? chunkLonMin + st.chunkWidth
                                    : lonMin + colWidth;
  return SphericalBox(lonMin, latMin, lonMax, latMax);
}

std::vector<std::int32_t> Chunker::allChunks() const {
  std::vector<std::int32_t> out;
  out.reserve(static_cast<std::size_t>(totalChunks_));
  for (int s = 0; s < numStripes_; ++s) {
    const Stripe& st = stripes_[static_cast<std::size_t>(s)];
    for (int c = 0; c < st.numChunks; ++c) {
      out.push_back(static_cast<std::int32_t>(s * 2 * numStripes_ + c));
    }
  }
  return out;
}

std::vector<std::int32_t> Chunker::subChunksOf(std::int32_t chunkId) const {
  assert(isValidChunk(chunkId));
  const Stripe& st = stripes_[static_cast<std::size_t>(stripeOf(chunkId))];
  std::vector<std::int32_t> out;
  for (int t = 0; t < numSubStripes_; ++t) {
    int cols = st.subChunkCols[static_cast<std::size_t>(t)];
    for (int col = 0; col < cols; ++col) {
      out.push_back(static_cast<std::int32_t>(t * st.maxSubChunkCols + col));
    }
  }
  return out;
}

std::vector<std::int32_t> Chunker::chunksIntersecting(
    const SphericalBox& box) const {
  std::vector<std::int32_t> out;
  if (box.isEmpty()) return out;
  for (int s = 0; s < numStripes_; ++s) {
    const Stripe& st = stripes_[static_cast<std::size_t>(s)];
    if (st.latMax < box.latMin() || st.latMin > box.latMax()) continue;
    auto emit = [&](int c) {
      out.push_back(static_cast<std::int32_t>(s * 2 * numStripes_ + c));
    };
    if (box.isFullLon() || st.numChunks == 1) {
      for (int c = 0; c < st.numChunks; ++c) emit(c);
      continue;
    }
    // Chunk-column range from the box's longitude interval (O(output),
    // needed when covering point neighborhoods over ~9000 chunks).
    int cMin = static_cast<int>(std::floor(box.lonMin() / st.chunkWidth));
    int cMax = static_cast<int>(std::floor(box.lonMax() / st.chunkWidth));
    cMin = std::clamp(cMin, 0, st.numChunks - 1);
    cMax = std::clamp(cMax, 0, st.numChunks - 1);
    // A box whose west edge sits exactly on a column boundary also touches
    // the previous column (closed-interval semantics).
    if (box.lonMin() == cMin * st.chunkWidth) {
      cMin = (cMin + st.numChunks - 1) % st.numChunks;
    }
    if (!box.wraps() && cMin <= cMax) {
      for (int c = cMin; c <= cMax; ++c) emit(c);
    } else {
      // The interval wraps (either the box wraps, or rounding produced
      // cMin > cMax): [cMin, end) then [0, cMax].
      for (int c = cMin; c < st.numChunks; ++c) emit(c);
      for (int c = 0; c <= cMax && c < cMin; ++c) emit(c);
    }
  }
  return out;
}

std::vector<std::int32_t> Chunker::subChunksIntersecting(
    std::int32_t chunkId, const SphericalBox& box) const {
  std::vector<std::int32_t> out;
  if (box.isEmpty()) return out;
  for (std::int32_t sc : subChunksOf(chunkId)) {
    if (box.intersects(subChunkBox(chunkId, sc))) out.push_back(sc);
  }
  return out;
}

}  // namespace qserv::sphgeom
