/// \file chunker.h
/// \brief Two-level spherical partitioning (paper §4.4, §5.2).
///
/// The sphere is divided into `numStripes` latitude stripes of equal height.
/// Each stripe is cut into chunks whose longitude width is chosen so a chunk
/// is roughly square (in great-circle terms) at the stripe's worst latitude;
/// chunks per stripe therefore shrink toward the poles, keeping chunk areas
/// roughly equal. Each stripe is further divided into
/// `numSubStripesPerStripe` sub-stripes, and each chunk into subchunk columns
/// the same way, yielding the two-level chunk/subchunk scheme Qserv uses for
/// query fragmentation (chunks) and near-neighbor joins (subchunks).
///
/// The paper's test configuration — 85 stripes, 12 sub-stripes — produces
/// stripes ~2.11 deg tall, chunks of ~4.5 deg^2, subchunks of ~0.031 deg^2
/// and ~9000 chunks over the full sky (the paper reports 8983).
///
/// Chunk ids are `stripe * 2 * numStripes + chunkInStripe` (a stripe never
/// holds more than 2*numStripes chunks). Subchunk ids are local to a chunk:
/// `subStripeInStripe * maxSubChunkColsInStripe + col`, matching the
/// Object_CC_SS naming used on workers.
#pragma once

#include <cstdint>
#include <vector>

#include "sphgeom/angle.h"
#include "sphgeom/spherical_box.h"

namespace qserv::sphgeom {

class Chunker {
 public:
  /// \param numStripes latitude stripes over [-90, 90]; must be >= 1.
  /// \param numSubStripesPerStripe sub-stripes per stripe; must be >= 1.
  /// \param overlapDeg overlap margin for near-neighbor joins, degrees.
  Chunker(int numStripes, int numSubStripesPerStripe,
          double overlapDeg = kArcminDeg);

  int numStripes() const { return numStripes_; }
  int numSubStripesPerStripe() const { return numSubStripes_; }
  double overlapDeg() const { return overlapDeg_; }
  double stripeHeightDeg() const { return stripeHeight_; }
  double subStripeHeightDeg() const { return stripeHeight_ / numSubStripes_; }

  /// Number of chunks over the whole sphere.
  int totalChunkCount() const { return totalChunks_; }

  /// Chunk containing (lon, lat) degrees.
  std::int32_t chunkAt(double lonDeg, double latDeg) const;

  /// Subchunk (within its chunk) containing (lon, lat). Precondition:
  /// the point lies in \p chunkId (callers may pass any point; the result is
  /// clamped to the chunk's subchunk grid).
  std::int32_t subChunkAt(std::int32_t chunkId, double lonDeg,
                          double latDeg) const;

  /// True when \p chunkId names an existing chunk.
  bool isValidChunk(std::int32_t chunkId) const;
  bool isValidSubChunk(std::int32_t chunkId, std::int32_t subChunkId) const;

  /// Bounding box of a chunk. Precondition: isValidChunk(chunkId).
  SphericalBox chunkBox(std::int32_t chunkId) const;

  /// Bounding box of a subchunk. Precondition: valid ids.
  SphericalBox subChunkBox(std::int32_t chunkId,
                           std::int32_t subChunkId) const;

  /// All chunk ids, ascending.
  std::vector<std::int32_t> allChunks() const;

  /// All subchunk ids of a chunk, ascending.
  std::vector<std::int32_t> subChunksOf(std::int32_t chunkId) const;

  /// Chunks whose boxes intersect \p box (conservative: exact for boxes).
  /// This implements areaspec-based chunk pruning (paper §5.3).
  std::vector<std::int32_t> chunksIntersecting(const SphericalBox& box) const;

  /// Subchunks of \p chunkId whose boxes intersect \p box.
  std::vector<std::int32_t> subChunksIntersecting(
      std::int32_t chunkId, const SphericalBox& box) const;

  /// Stripe index of a chunk id.
  int stripeOf(std::int32_t chunkId) const {
    return chunkId / (2 * numStripes_);
  }
  /// Position of a chunk within its stripe.
  int chunkInStripe(std::int32_t chunkId) const {
    return chunkId % (2 * numStripes_);
  }

 private:
  struct Stripe {
    double latMin = 0.0;
    double latMax = 0.0;
    int numChunks = 0;
    double chunkWidth = 0.0;  // degrees of longitude
    /// Subchunk columns per chunk, one entry per sub-stripe.
    std::vector<int> subChunkCols;
    int maxSubChunkCols = 0;
  };

  /// Number of equal segments of longitude at a stripe spanning latitudes
  /// [lat1, lat2] such that each segment subtends at least \p widthDeg of
  /// great-circle arc at the stripe's worst (most polar) latitude.
  static int segments(double lat1Deg, double lat2Deg, double widthDeg);

  int stripeIndexOf(double latDeg) const;

  int numStripes_;
  int numSubStripes_;
  double overlapDeg_;
  double stripeHeight_;
  std::vector<Stripe> stripes_;
  int totalChunks_ = 0;
};

}  // namespace qserv::sphgeom
