/// \file vector3d.h
/// \brief Minimal 3-vector for spherical computations (HTM side tests,
/// angular separation).
#pragma once

#include <cmath>

namespace qserv::sphgeom {

struct Vector3d {
  double x = 0.0, y = 0.0, z = 0.0;

  Vector3d operator+(const Vector3d& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vector3d operator-(const Vector3d& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vector3d operator*(double s) const { return {x * s, y * s, z * s}; }

  double dot(const Vector3d& o) const { return x * o.x + y * o.y + z * o.z; }

  Vector3d cross(const Vector3d& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  double norm() const { return std::sqrt(dot(*this)); }

  /// Unit vector in the same direction. Precondition: norm() > 0.
  Vector3d normalized() const {
    double n = norm();
    return {x / n, y / n, z / n};
  }
};

}  // namespace qserv::sphgeom
