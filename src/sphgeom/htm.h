/// \file htm.h
/// \brief Hierarchical Triangular Mesh (Szalay et al.), the alternate
/// partitioning scheme discussed in paper §7.5.
///
/// The sphere is split into 8 root spherical triangles ("trixels"); each
/// trixel subdivides into 4 children at every level. Trixel ids follow the
/// standard HTM convention: roots are 8..15 (S0..S3, N0..N3) and a child id
/// is parent*4 + k, so a level-L id occupies 4 + 2L bits.
///
/// Qserv-style uses: mapping a point to its partition id at a subdivision
/// level, and covering a spherical box with trixels for query pruning. The
/// `bench_htm` ablation compares HTM against the stripe/chunk scheme on
/// partition-area variance and pruning precision.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sphgeom/spherical_box.h"
#include "sphgeom/vector3d.h"

namespace qserv::sphgeom::htm {

using TrixelId = std::uint64_t;

/// Deepest supported subdivision level.
inline constexpr int kMaxLevel = 24;

/// Subdivision level encoded in \p id (0 for a root trixel).
int levelOf(TrixelId id);

/// True when \p id is a structurally valid trixel id.
bool isValid(TrixelId id);

/// Unit-vector vertices of trixel \p id, in counterclockwise order.
std::array<Vector3d, 3> trixelVertices(TrixelId id);

/// Trixel at \p level containing unit vector \p v.
TrixelId pointToTrixel(const Vector3d& v, int level);

/// Trixel at \p level containing (lon, lat) in degrees.
TrixelId pointToTrixel(double lonDeg, double latDeg, int level);

/// True when \p v lies inside trixel \p id (boundary inclusive).
bool trixelContains(TrixelId id, const Vector3d& v);

/// Solid angle of trixel \p id in square degrees (L'Huilier's theorem).
double trixelArea(TrixelId id);

/// Conservative cover: trixels at \p level whose extent may intersect
/// \p box. Guaranteed superset of the exact cover (no false negatives), so
/// it is safe for partition pruning; may include near-miss trixels.
std::vector<TrixelId> coverBox(const SphericalBox& box, int level);

/// Inclusive id range [first, last].
struct TrixelRange {
  TrixelId first = 0;
  TrixelId last = 0;
};

/// coverBox() compressed into sorted, merged id ranges. This is the §7.5
/// payoff: "mapping spherical regions to partition ID sets" whose members
/// are contiguous, so data "stored in partition ID order" is read with few
/// seeks — small spatial queries become a handful of range scans.
std::vector<TrixelRange> coverBoxRanges(const SphericalBox& box, int level);

/// Parent of a non-root trixel.
inline TrixelId parentOf(TrixelId id) { return id >> 2; }

/// Children of a trixel.
inline std::array<TrixelId, 4> childrenOf(TrixelId id) {
  return {id * 4 + 0, id * 4 + 1, id * 4 + 2, id * 4 + 3};
}

}  // namespace qserv::sphgeom::htm
