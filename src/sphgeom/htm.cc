#include "sphgeom/htm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sphgeom/angle.h"
#include "sphgeom/coords.h"

namespace qserv::sphgeom::htm {

namespace {

// The six axis vertices of the HTM root octahedron.
const Vector3d kV0{0, 0, 1};   // north pole
const Vector3d kV1{1, 0, 0};
const Vector3d kV2{0, 1, 0};
const Vector3d kV3{-1, 0, 0};
const Vector3d kV4{0, -1, 0};
const Vector3d kV5{0, 0, -1};  // south pole

// Root trixels in id order 8..15 (S0..S3 then N0..N3), vertices CCW as seen
// from outside the sphere.
const std::array<std::array<Vector3d, 3>, 8> kRoots = {{
    {kV1, kV5, kV2},  // S0 = 8
    {kV2, kV5, kV3},  // S1 = 9
    {kV3, kV5, kV4},  // S2 = 10
    {kV4, kV5, kV1},  // S3 = 11
    {kV1, kV0, kV4},  // N0 = 12
    {kV4, kV0, kV3},  // N1 = 13
    {kV3, kV0, kV2},  // N2 = 14
    {kV2, kV0, kV1},  // N3 = 15
}};

constexpr double kEps = 1e-12;

// p inside the spherical triangle (a,b,c) iff it is on the inner side of all
// three great-circle edges (CCW order => inner side is non-negative).
bool inside(const Vector3d& a, const Vector3d& b, const Vector3d& c,
            const Vector3d& p) {
  return a.cross(b).dot(p) >= -kEps && b.cross(c).dot(p) >= -kEps &&
         c.cross(a).dot(p) >= -kEps;
}

// Midpoint of the great-circle arc (a, b), normalized to the sphere.
Vector3d mid(const Vector3d& a, const Vector3d& b) {
  return (a + b).normalized();
}

// Children of triangle (v0,v1,v2) in the standard HTM order.
void childVertices(const std::array<Vector3d, 3>& t, int k,
                   std::array<Vector3d, 3>& out) {
  Vector3d w0 = mid(t[1], t[2]);
  Vector3d w1 = mid(t[0], t[2]);
  Vector3d w2 = mid(t[0], t[1]);
  switch (k) {
    case 0: out = {t[0], w2, w1}; break;
    case 1: out = {t[1], w0, w2}; break;
    case 2: out = {t[2], w1, w0}; break;
    default: out = {w0, w1, w2}; break;
  }
}

// Angular separation in radians between unit vectors.
double angSepRad(const Vector3d& a, const Vector3d& b) {
  double d = (a - b).norm() * 0.5;
  if (d > 1.0) d = 1.0;
  return 2.0 * std::asin(d);
}

void coverRecurse(TrixelId id, const std::array<Vector3d, 3>& verts,
                  const SphericalBox& box, int targetLevel,
                  std::vector<TrixelId>& out) {
  // Bounding circle of the trixel.
  Vector3d center = (verts[0] + verts[1] + verts[2]).normalized();
  double radius = 0.0;
  for (const auto& v : verts) radius = std::max(radius, angSepRad(center, v));
  LonLat c = toLonLat(center);
  // Conservative reject: the box dilated by the circle radius must contain
  // the circle center for any intersection to be possible.
  if (!box.dilated(radToDeg(radius) + 1e-9).contains(c.lon, c.lat)) return;
  if (levelOf(id) == targetLevel) {
    out.push_back(id);
    return;
  }
  for (int k = 0; k < 4; ++k) {
    std::array<Vector3d, 3> child;
    childVertices(verts, k, child);
    coverRecurse(id * 4 + static_cast<TrixelId>(k), child, box, targetLevel,
                 out);
  }
}

}  // namespace

int levelOf(TrixelId id) {
  assert(id >= 8);
  int bits = 64 - __builtin_clzll(id);
  return (bits - 4) / 2;
}

bool isValid(TrixelId id) {
  if (id < 8) return false;
  int bits = 64 - __builtin_clzll(id);
  if ((bits - 4) % 2 != 0) return false;
  return (bits - 4) / 2 <= kMaxLevel;
}

std::array<Vector3d, 3> trixelVertices(TrixelId id) {
  assert(isValid(id));
  int level = levelOf(id);
  // Extract the child path from the id, root first.
  TrixelId root = id >> (2 * level);
  std::array<Vector3d, 3> verts = kRoots[static_cast<std::size_t>(root - 8)];
  for (int l = level - 1; l >= 0; --l) {
    int k = static_cast<int>((id >> (2 * l)) & 3);
    std::array<Vector3d, 3> next;
    childVertices(verts, k, next);
    verts = next;
  }
  return verts;
}

TrixelId pointToTrixel(const Vector3d& v, int level) {
  assert(level >= 0 && level <= kMaxLevel);
  Vector3d p = v.normalized();
  TrixelId id = 0;
  std::array<Vector3d, 3> verts{};
  for (std::size_t r = 0; r < kRoots.size(); ++r) {
    if (inside(kRoots[r][0], kRoots[r][1], kRoots[r][2], p)) {
      id = 8 + r;
      verts = kRoots[r];
      break;
    }
  }
  assert(id != 0 && "point not contained in any HTM root");
  for (int l = 0; l < level; ++l) {
    bool found = false;
    for (int k = 0; k < 4; ++k) {
      std::array<Vector3d, 3> child;
      childVertices(verts, k, child);
      if (inside(child[0], child[1], child[2], p)) {
        id = id * 4 + static_cast<TrixelId>(k);
        verts = child;
        found = true;
        break;
      }
    }
    // Boundary points may fail all strict tests due to rounding; fall into
    // the center child which always borders all edges.
    if (!found) {
      std::array<Vector3d, 3> child;
      childVertices(verts, 3, child);
      id = id * 4 + 3;
      verts = child;
    }
  }
  return id;
}

TrixelId pointToTrixel(double lonDeg, double latDeg, int level) {
  return pointToTrixel(toXyz(lonDeg, latDeg), level);
}

bool trixelContains(TrixelId id, const Vector3d& v) {
  auto verts = trixelVertices(id);
  return inside(verts[0], verts[1], verts[2], v.normalized());
}

double trixelArea(TrixelId id) {
  auto verts = trixelVertices(id);
  // L'Huilier: tan(E/4) = sqrt(tan(s/2) tan((s-a)/2) tan((s-b)/2) tan((s-c)/2))
  double a = angSepRad(verts[1], verts[2]);
  double b = angSepRad(verts[0], verts[2]);
  double c = angSepRad(verts[0], verts[1]);
  double s = 0.5 * (a + b + c);
  double t = std::tan(s * 0.5) * std::tan((s - a) * 0.5) *
             std::tan((s - b) * 0.5) * std::tan((s - c) * 0.5);
  if (t < 0.0) t = 0.0;
  double excess = 4.0 * std::atan(std::sqrt(t));
  return excess * kDegPerRad * kDegPerRad;
}

std::vector<TrixelId> coverBox(const SphericalBox& box, int level) {
  std::vector<TrixelId> out;
  if (box.isEmpty()) return out;
  for (std::size_t r = 0; r < kRoots.size(); ++r) {
    coverRecurse(8 + r, kRoots[r], box, level, out);
  }
  return out;
}

std::vector<TrixelRange> coverBoxRanges(const SphericalBox& box, int level) {
  std::vector<TrixelId> ids = coverBox(box, level);
  std::sort(ids.begin(), ids.end());
  std::vector<TrixelRange> out;
  for (TrixelId id : ids) {
    if (!out.empty() && out.back().last + 1 == id) {
      out.back().last = id;
    } else {
      out.push_back(TrixelRange{id, id});
    }
  }
  return out;
}

}  // namespace qserv::sphgeom::htm

namespace qserv::sphgeom {
// (nothing)
}
