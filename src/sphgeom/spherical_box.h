/// \file spherical_box.h
/// \brief Longitude/latitude boxes on the sphere, with RA wraparound.
///
/// This is the geometric primitive behind the paper's
/// `qserv_areaspec_box(lonMin, latMin, lonMax, latMax)` restriction and
/// behind chunk/subchunk boundaries. A box may wrap in longitude
/// (lonMin > lonMax spans the 0/360 meridian — the PT1.1 patch itself wraps,
/// RA 358..5), and a box whose longitude extent is >= 360 covers all RA.
#pragma once

#include <string>
#include <vector>

#include "sphgeom/coords.h"

namespace qserv::sphgeom {

class SphericalBox {
 public:
  /// Constructs an empty box.
  SphericalBox() = default;

  /// Box over [lonMin, lonMax] x [latMin, latMax] degrees. Longitudes are
  /// normalized; lonMin > lonMax (after normalization) means the box wraps
  /// across 0/360. Latitudes are clamped to [-90, 90]. If the input lon
  /// extent is >= 360 the box covers the full circle.
  SphericalBox(double lonMin, double latMin, double lonMax, double latMax);

  static SphericalBox fullSky() { return SphericalBox(0.0, -90.0, 360.0, 90.0); }

  bool isEmpty() const { return empty_; }
  bool isFullLon() const { return fullLon_; }

  double lonMin() const { return lonMin_; }
  double lonMax() const { return lonMax_; }
  double latMin() const { return latMin_; }
  double latMax() const { return latMax_; }

  /// Longitude extent in degrees (360 for full-circle boxes).
  double lonExtent() const;
  double latExtent() const { return empty_ ? 0.0 : latMax_ - latMin_; }

  bool wraps() const { return !fullLon_ && lonMin_ > lonMax_; }

  /// True when (lon, lat) lies inside (boundary inclusive).
  bool contains(double lonDeg, double latDeg) const;
  bool contains(const LonLat& p) const { return contains(p.lon, p.lat); }

  /// True when the two boxes share at least a boundary point.
  bool intersects(const SphericalBox& other) const;

  /// Returns this box grown by \p radiusDeg on every side, accounting for
  /// the convergence of meridians: the longitude margin is scaled by
  /// 1/cos(maxAbsLat) and the box becomes full-longitude near a pole. This
  /// implements the paper's overlap expansion for near-neighbor joins.
  SphericalBox dilated(double radiusDeg) const;

  /// Solid angle in square degrees.
  double area() const;

  std::string toString() const;

  bool operator==(const SphericalBox& o) const;

 private:
  bool lonContains(double lon) const;

  double lonMin_ = 0.0, lonMax_ = 0.0;
  double latMin_ = 0.0, latMax_ = 0.0;
  bool fullLon_ = false;
  bool empty_ = true;
};

}  // namespace qserv::sphgeom
