#include "sphgeom/coords.h"

#include "sphgeom/angle.h"

namespace qserv::sphgeom {

Vector3d toXyz(double lonDeg, double latDeg) {
  double lon = degToRad(lonDeg);
  double lat = degToRad(latDeg);
  double cl = std::cos(lat);
  return {cl * std::cos(lon), cl * std::sin(lon), std::sin(lat)};
}

LonLat toLonLat(const Vector3d& v) {
  double lon = radToDeg(std::atan2(v.y, v.x));
  double lat = radToDeg(std::atan2(v.z, std::sqrt(v.x * v.x + v.y * v.y)));
  return {normalizeLonDeg(lon), clampLatDeg(lat)};
}

double raSearchWindowDeg(double rDeg, double decDeg) {
  if (!(rDeg > 0.0)) return 0.0;  // negative, zero, or NaN radius
  if (rDeg >= 90.0) return 180.0;
  if (std::fabs(decDeg) + rDeg >= 90.0) return 180.0;
  double d = degToRad(rDeg);
  double c = degToRad(decDeg);
  // cos(c-d)*cos(c+d) = cos^2(c) - sin^2(d); the guard above keeps it > 0
  // in exact arithmetic, but rounding near the pole can still cross zero.
  double x = std::cos(c - d) * std::cos(c + d);
  if (x <= 0.0) return 180.0;
  return radToDeg(std::atan(std::sin(d) / std::sqrt(x)));
}

double angSepDeg(double lon1, double lat1, double lon2, double lat2) {
  double p1 = degToRad(lat1), p2 = degToRad(lat2);
  double dp = p2 - p1;
  double dl = degToRad(lon2 - lon1);
  double sdp = std::sin(dp * 0.5);
  double sdl = std::sin(dl * 0.5);
  double a = sdp * sdp + std::cos(p1) * std::cos(p2) * sdl * sdl;
  if (a < 0.0) a = 0.0;
  if (a > 1.0) a = 1.0;
  return radToDeg(2.0 * std::asin(std::sqrt(a)));
}

}  // namespace qserv::sphgeom
