#include "sql/parser.h"

#include <set>

#include "sql/lexer.h"
#include "util/strings.h"

namespace qserv::sql {

namespace {

using util::Result;
using util::Status;

/// Words that cannot be used as bare identifiers in expressions.
bool isReservedWord(const Token& t) {
  static const char* kReserved[] = {
      "SELECT", "FROM",  "WHERE",  "GROUP", "BY",     "ORDER", "LIMIT",
      "AS",     "ON",    "JOIN",   "INNER", "AND",    "OR",    "NOT",
      "BETWEEN", "IN",   "IS",     "HAVING", "UNION", "CREATE", "TABLE",
      "INSERT", "INTO",  "VALUES", "DROP",  "DESC",   "ASC",   "EXISTS",
      "IF",     "DISTINCT"};
  for (const char* k : kReserved) {
    if (t.is(k)) return true;
  }
  return false;
}

/// Keywords that terminate an implicit (AS-less) alias.
bool isAliasStopKeyword(const Token& t) {
  static const char* kStops[] = {"FROM",  "WHERE", "GROUP", "ORDER", "LIMIT",
                                 "AS",    "ON",    "JOIN",  "INNER", "AND",
                                 "OR",    "NOT",   "BETWEEN", "IN",  "IS",
                                 "HAVING", "UNION", "DESC",  "ASC", "VALUES"};
  for (const char* k : kStops) {
    if (t.is(k)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> parseOneStatement() {
    auto stmt = parseStatementInner();
    if (!stmt.isOk()) return stmt;
    accept(TokenType::kSemicolon);
    if (!atEnd()) return errorHere("trailing input after statement");
    return stmt;
  }

  Result<std::vector<Statement>> parseAll() {
    std::vector<Statement> out;
    while (!atEnd()) {
      if (accept(TokenType::kSemicolon)) continue;
      auto stmt = parseStatementInner();
      if (!stmt.isOk()) return stmt.status();
      out.push_back(std::move(stmt).value());
      if (!atEnd() && !accept(TokenType::kSemicolon)) {
        return errorHere("expected ';' between statements");
      }
    }
    return out;
  }

  Result<ExprPtr> parseSingleExpression() {
    auto e = parseExpr();
    if (!e.isOk()) return e;
    if (!atEnd()) return errorHere("trailing input after expression");
    return e;
  }

 private:
  // ------------------------------------------------------------- utilities
  const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool atEnd() const { return peek().type == TokenType::kEnd; }
  const Token& advance() { return tokens_[pos_++]; }

  bool accept(TokenType t) {
    if (peek().type == t) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool acceptKeyword(std::string_view kw) {
    if (peek().is(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status errorHere(std::string_view what) const {
    return Status::invalidArgument(util::format(
        "parse error at offset %zu (near '%s'): %.*s", peek().offset,
        peek().text.c_str(), static_cast<int>(what.size()), what.data()));
  }

  Status expect(TokenType t, std::string_view what) {
    if (accept(t)) return Status::ok();
    return errorHere(what);
  }
  Status expectKeyword(std::string_view kw) {
    if (acceptKeyword(kw)) return Status::ok();
    return errorHere(util::format("expected %.*s",
                                  static_cast<int>(kw.size()), kw.data()));
  }

  // ------------------------------------------------------------ statements
  Result<Statement> parseStatementInner() {
    if (peek().is("SELECT")) {
      auto s = parseSelectStmt();
      if (!s.isOk()) return s.status();
      return Statement(std::move(s).value());
    }
    if (peek().is("CREATE")) return parseCreate();
    if (peek().is("INSERT")) return parseInsert();
    if (peek().is("DROP")) return parseDrop();
    if (peek().is("EXPLAIN")) return parseExplain();
    return errorHere("expected SELECT, CREATE, INSERT, DROP, or EXPLAIN");
  }

  Result<Statement> parseExplain() {
    QSERV_RETURN_IF_ERROR(expectKeyword("EXPLAIN"));
    ExplainStmt stmt;
    stmt.analyze = acceptKeyword("ANALYZE");
    auto s = parseSelectStmt();
    if (!s.isOk()) return s.status();
    stmt.select = std::make_unique<SelectStmt>(std::move(s).value());
    return Statement(std::move(stmt));
  }

  Result<SelectStmt> parseSelectStmt() {
    QSERV_RETURN_IF_ERROR(expectKeyword("SELECT"));
    SelectStmt stmt;
    if (acceptKeyword("DISTINCT")) stmt.distinct = true;
    // Select list.
    do {
      SelectItem item;
      auto e = parseSelectListExpr();
      if (!e.isOk()) return e.status();
      item.expr = std::move(e).value();
      if (acceptKeyword("AS")) {
        if (peek().type != TokenType::kIdentifier) {
          return errorHere("expected alias after AS");
        }
        item.alias = advance().text;
      } else if (peek().type == TokenType::kIdentifier &&
                 !isAliasStopKeyword(peek())) {
        item.alias = advance().text;
      }
      stmt.items.push_back(std::move(item));
    } while (accept(TokenType::kComma));

    // FROM.
    if (acceptKeyword("FROM")) {
      std::vector<ExprPtr> joinConds;
      auto first = parseTableRef();
      if (!first.isOk()) return first.status();
      stmt.from.push_back(std::move(first).value());
      while (true) {
        if (accept(TokenType::kComma)) {
          auto t = parseTableRef();
          if (!t.isOk()) return t.status();
          stmt.from.push_back(std::move(t).value());
          continue;
        }
        bool isJoin = false;
        if (peek().is("INNER") && peek(1).is("JOIN")) {
          pos_ += 2;
          isJoin = true;
        } else if (acceptKeyword("JOIN")) {
          isJoin = true;
        }
        if (!isJoin) break;
        auto t = parseTableRef();
        if (!t.isOk()) return t.status();
        stmt.from.push_back(std::move(t).value());
        QSERV_RETURN_IF_ERROR(expectKeyword("ON"));
        auto cond = parseExpr();
        if (!cond.isOk()) return cond.status();
        joinConds.push_back(std::move(cond).value());
      }
      // Fold JOIN..ON conditions into WHERE (comma-join canonical form).
      if (acceptKeyword("WHERE")) {
        auto w = parseExpr();
        if (!w.isOk()) return w.status();
        stmt.where = std::move(w).value();
      }
      for (auto& c : joinConds) {
        if (stmt.where) {
          stmt.where = std::make_unique<BinaryExpr>(
              BinOp::kAnd, std::move(stmt.where), std::move(c));
        } else {
          stmt.where = std::move(c);
        }
      }
    } else if (acceptKeyword("WHERE")) {
      return errorHere("WHERE without FROM");
    }

    // GROUP BY.
    if (acceptKeyword("GROUP")) {
      QSERV_RETURN_IF_ERROR(expectKeyword("BY"));
      do {
        auto e = parseExpr();
        if (!e.isOk()) return e.status();
        stmt.groupBy.push_back(std::move(e).value());
      } while (accept(TokenType::kComma));
    }

    // HAVING.
    if (acceptKeyword("HAVING")) {
      if (stmt.groupBy.empty()) {
        return errorHere("HAVING requires GROUP BY");
      }
      auto h = parseExpr();
      if (!h.isOk()) return h.status();
      stmt.having = std::move(h).value();
    }

    // ORDER BY.
    if (acceptKeyword("ORDER")) {
      QSERV_RETURN_IF_ERROR(expectKeyword("BY"));
      do {
        OrderByItem item;
        auto e = parseExpr();
        if (!e.isOk()) return e.status();
        item.expr = std::move(e).value();
        if (acceptKeyword("DESC")) {
          item.descending = true;
        } else {
          acceptKeyword("ASC");
        }
        stmt.orderBy.push_back(std::move(item));
      } while (accept(TokenType::kComma));
    }

    // LIMIT.
    if (acceptKeyword("LIMIT")) {
      if (peek().type != TokenType::kInt) {
        return errorHere("expected integer after LIMIT");
      }
      stmt.limit = advance().intValue;
      if (stmt.limit < 0) return errorHere("LIMIT must be non-negative");
    }
    return stmt;
  }

  Result<TableRef> parseTableRef() {
    if (peek().type != TokenType::kIdentifier) {
      return errorHere("expected table name");
    }
    TableRef ref;
    ref.table = advance().text;
    if (accept(TokenType::kDot)) {
      if (peek().type != TokenType::kIdentifier) {
        return errorHere("expected table name after database qualifier");
      }
      ref.database = ref.table;
      ref.table = advance().text;
    }
    if (acceptKeyword("AS")) {
      if (peek().type != TokenType::kIdentifier) {
        return errorHere("expected alias after AS");
      }
      ref.alias = advance().text;
    } else if (peek().type == TokenType::kIdentifier &&
               !isAliasStopKeyword(peek())) {
      ref.alias = advance().text;
    }
    return ref;
  }

  Result<Statement> parseCreate() {
    QSERV_RETURN_IF_ERROR(expectKeyword("CREATE"));
    QSERV_RETURN_IF_ERROR(expectKeyword("TABLE"));
    CreateTableStmt stmt;
    if (peek().is("IF")) {
      ++pos_;
      QSERV_RETURN_IF_ERROR(expectKeyword("NOT"));
      QSERV_RETURN_IF_ERROR(expectKeyword("EXISTS"));
      stmt.ifNotExists = true;
    }
    auto name = parseQualifiedName();
    if (!name.isOk()) return name.status();
    stmt.table = std::move(name).value();
    if (acceptKeyword("AS")) {
      auto sel = parseSelectStmt();
      if (!sel.isOk()) return sel.status();
      stmt.asSelect = std::make_unique<SelectStmt>(std::move(sel).value());
      return Statement(std::move(stmt));
    }
    QSERV_RETURN_IF_ERROR(expect(TokenType::kLParen, "expected '('"));
    do {
      if (peek().type != TokenType::kIdentifier) {
        return errorHere("expected column name");
      }
      ColumnDef col;
      col.name = advance().text;
      if (peek().type != TokenType::kIdentifier) {
        return errorHere("expected column type");
      }
      std::string ty = util::toUpper(advance().text);
      if (ty == "BIGINT" || ty == "INT" || ty == "INTEGER" ||
          ty == "SMALLINT" || ty == "TINYINT") {
        col.type = ColumnType::kInt;
      } else if (ty == "DOUBLE" || ty == "FLOAT" || ty == "REAL" ||
                 ty == "DECIMAL") {
        col.type = ColumnType::kDouble;
      } else if (ty == "VARCHAR" || ty == "CHAR" || ty == "TEXT") {
        col.type = ColumnType::kString;
      } else {
        return errorHere(util::format("unknown column type %s", ty.c_str()));
      }
      // Optional length/precision: VARCHAR(80), DECIMAL(10,2).
      if (accept(TokenType::kLParen)) {
        if (!accept(TokenType::kRParen)) {
          if (peek().type != TokenType::kInt) {
            return errorHere("expected length in type");
          }
          ++pos_;
          if (accept(TokenType::kComma)) {
            if (peek().type != TokenType::kInt) {
              return errorHere("expected scale in type");
            }
            ++pos_;
          }
          QSERV_RETURN_IF_ERROR(expect(TokenType::kRParen, "expected ')'"));
        }
      }
      // Optional and ignored: NOT NULL / NULL / PRIMARY KEY.
      if (acceptKeyword("NOT")) QSERV_RETURN_IF_ERROR(expectKeyword("NULL"));
      else acceptKeyword("NULL");
      if (acceptKeyword("PRIMARY")) QSERV_RETURN_IF_ERROR(expectKeyword("KEY"));
      stmt.schema.addColumn(std::move(col));
    } while (accept(TokenType::kComma));
    QSERV_RETURN_IF_ERROR(expect(TokenType::kRParen, "expected ')'"));
    return Statement(std::move(stmt));
  }

  Result<Statement> parseInsert() {
    QSERV_RETURN_IF_ERROR(expectKeyword("INSERT"));
    QSERV_RETURN_IF_ERROR(expectKeyword("INTO"));
    InsertStmt stmt;
    auto name = parseQualifiedName();
    if (!name.isOk()) return name.status();
    stmt.table = std::move(name).value();
    if (peek().is("SELECT")) {
      auto sel = parseSelectStmt();
      if (!sel.isOk()) return sel.status();
      stmt.select = std::make_unique<SelectStmt>(std::move(sel).value());
      return Statement(std::move(stmt));
    }
    QSERV_RETURN_IF_ERROR(expectKeyword("VALUES"));
    do {
      QSERV_RETURN_IF_ERROR(expect(TokenType::kLParen, "expected '('"));
      std::vector<Value> row;
      if (!accept(TokenType::kRParen)) {
        do {
          auto v = parseLiteralValue();
          if (!v.isOk()) return v.status();
          row.push_back(std::move(v).value());
        } while (accept(TokenType::kComma));
        QSERV_RETURN_IF_ERROR(expect(TokenType::kRParen, "expected ')'"));
      }
      stmt.rows.push_back(std::move(row));
    } while (accept(TokenType::kComma));
    return Statement(std::move(stmt));
  }

  Result<Statement> parseDrop() {
    QSERV_RETURN_IF_ERROR(expectKeyword("DROP"));
    QSERV_RETURN_IF_ERROR(expectKeyword("TABLE"));
    DropTableStmt stmt;
    if (peek().is("IF")) {
      ++pos_;
      QSERV_RETURN_IF_ERROR(expectKeyword("EXISTS"));
      stmt.ifExists = true;
    }
    auto name = parseQualifiedName();
    if (!name.isOk()) return name.status();
    stmt.table = std::move(name).value();
    return Statement(std::move(stmt));
  }

  /// name or db.name, joined with '.' (the engine treats the database
  /// qualifier as part of the table key; see Database).
  Result<std::string> parseQualifiedName() {
    if (peek().type != TokenType::kIdentifier) {
      return errorHere("expected name");
    }
    std::string name = advance().text;
    if (accept(TokenType::kDot)) {
      if (peek().type != TokenType::kIdentifier) {
        return errorHere("expected name after '.'");
      }
      name += "." + advance().text;
    }
    return name;
  }

  Result<Value> parseLiteralValue() {
    bool neg = false;
    if (accept(TokenType::kMinus)) neg = true;
    const Token& t = peek();
    switch (t.type) {
      case TokenType::kInt: {
        ++pos_;
        return Value(neg ? -t.intValue : t.intValue);
      }
      case TokenType::kDouble: {
        ++pos_;
        return Value(neg ? -t.doubleValue : t.doubleValue);
      }
      case TokenType::kString: {
        if (neg) return errorHere("cannot negate a string");
        ++pos_;
        return Value(t.text);
      }
      case TokenType::kIdentifier:
        if (t.is("NULL")) {
          if (neg) return errorHere("cannot negate NULL");
          ++pos_;
          return Value::null();
        }
        return errorHere("expected literal");
      default:
        return errorHere("expected literal");
    }
  }

  // ----------------------------------------------------------- expressions
  /// Select-list entry: '*', 'alias.*', or an expression.
  Result<ExprPtr> parseSelectListExpr() {
    if (peek().type == TokenType::kStar) {
      ++pos_;
      return ExprPtr(std::make_unique<StarExpr>());
    }
    if (peek().type == TokenType::kIdentifier &&
        peek(1).type == TokenType::kDot && peek(2).type == TokenType::kStar) {
      std::string qual = advance().text;
      pos_ += 2;
      return ExprPtr(std::make_unique<StarExpr>(qual));
    }
    return parseExpr();
  }

  Result<ExprPtr> parseExpr() { return parseOr(); }

  Result<ExprPtr> parseOr() {
    auto lhs = parseAnd();
    if (!lhs.isOk()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (acceptKeyword("OR")) {
      auto rhs = parseAnd();
      if (!rhs.isOk()) return rhs;
      e = std::make_unique<BinaryExpr>(BinOp::kOr, std::move(e),
                                       std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> parseAnd() {
    auto lhs = parseNot();
    if (!lhs.isOk()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (peek().is("AND")) {
      ++pos_;
      auto rhs = parseNot();
      if (!rhs.isOk()) return rhs;
      e = std::make_unique<BinaryExpr>(BinOp::kAnd, std::move(e),
                                       std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> parseNot() {
    if (acceptKeyword("NOT")) {
      auto inner = parseNot();
      if (!inner.isOk()) return inner;
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnOp::kNot, std::move(inner).value()));
    }
    return parsePredicate();
  }

  Result<ExprPtr> parsePredicate() {
    auto lhs = parseAdditive();
    if (!lhs.isOk()) return lhs;
    ExprPtr e = std::move(lhs).value();

    bool negated = false;
    if (peek().is("NOT") &&
        (peek(1).is("BETWEEN") || peek(1).is("IN"))) {
      ++pos_;
      negated = true;
    }

    if (acceptKeyword("BETWEEN")) {
      auto lo = parseAdditive();
      if (!lo.isOk()) return lo;
      QSERV_RETURN_IF_ERROR(expectKeyword("AND"));
      auto hi = parseAdditive();
      if (!hi.isOk()) return hi;
      return ExprPtr(std::make_unique<BetweenExpr>(
          std::move(e), std::move(lo).value(), std::move(hi).value(),
          negated));
    }
    if (acceptKeyword("IN")) {
      QSERV_RETURN_IF_ERROR(expect(TokenType::kLParen, "expected '('"));
      std::vector<ExprPtr> list;
      do {
        auto item = parseAdditive();
        if (!item.isOk()) return item;
        list.push_back(std::move(item).value());
      } while (accept(TokenType::kComma));
      QSERV_RETURN_IF_ERROR(expect(TokenType::kRParen, "expected ')'"));
      return ExprPtr(
          std::make_unique<InExpr>(std::move(e), std::move(list), negated));
    }
    if (negated) return errorHere("expected BETWEEN or IN after NOT");
    if (acceptKeyword("IS")) {
      bool isNot = acceptKeyword("NOT");
      QSERV_RETURN_IF_ERROR(expectKeyword("NULL"));
      return ExprPtr(std::make_unique<IsNullExpr>(std::move(e), isNot));
    }

    BinOp op;
    switch (peek().type) {
      case TokenType::kEq: op = BinOp::kEq; break;
      case TokenType::kNe: op = BinOp::kNe; break;
      case TokenType::kLt: op = BinOp::kLt; break;
      case TokenType::kLe: op = BinOp::kLe; break;
      case TokenType::kGt: op = BinOp::kGt; break;
      case TokenType::kGe: op = BinOp::kGe; break;
      default: return e;
    }
    ++pos_;
    auto rhs = parseAdditive();
    if (!rhs.isOk()) return rhs;
    return ExprPtr(std::make_unique<BinaryExpr>(op, std::move(e),
                                                std::move(rhs).value()));
  }

  Result<ExprPtr> parseAdditive() {
    auto lhs = parseMultiplicative();
    if (!lhs.isOk()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (true) {
      BinOp op;
      if (peek().type == TokenType::kPlus) op = BinOp::kAdd;
      else if (peek().type == TokenType::kMinus) op = BinOp::kSub;
      else break;
      ++pos_;
      auto rhs = parseMultiplicative();
      if (!rhs.isOk()) return rhs;
      e = std::make_unique<BinaryExpr>(op, std::move(e),
                                       std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> parseMultiplicative() {
    auto lhs = parseUnary();
    if (!lhs.isOk()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (true) {
      BinOp op;
      if (peek().type == TokenType::kStar) op = BinOp::kMul;
      else if (peek().type == TokenType::kSlash) op = BinOp::kDiv;
      else if (peek().type == TokenType::kPercent) op = BinOp::kMod;
      else break;
      ++pos_;
      auto rhs = parseUnary();
      if (!rhs.isOk()) return rhs;
      e = std::make_unique<BinaryExpr>(op, std::move(e),
                                       std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> parseUnary() {
    if (accept(TokenType::kMinus)) {
      auto inner = parseUnary();
      if (!inner.isOk()) return inner;
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnOp::kNeg, std::move(inner).value()));
    }
    if (accept(TokenType::kPlus)) return parseUnary();
    return parsePrimary();
  }

  Result<ExprPtr> parsePrimary() {
    const Token& t = peek();
    switch (t.type) {
      case TokenType::kInt: {
        ++pos_;
        return ExprPtr(std::make_unique<LiteralExpr>(Value(t.intValue)));
      }
      case TokenType::kDouble: {
        ++pos_;
        return ExprPtr(std::make_unique<LiteralExpr>(Value(t.doubleValue)));
      }
      case TokenType::kString: {
        ++pos_;
        return ExprPtr(std::make_unique<LiteralExpr>(Value(t.text)));
      }
      case TokenType::kLParen: {
        ++pos_;
        auto e = parseExpr();
        if (!e.isOk()) return e;
        QSERV_RETURN_IF_ERROR(expect(TokenType::kRParen, "expected ')'"));
        return e;
      }
      case TokenType::kIdentifier: {
        if (t.is("NULL")) {
          ++pos_;
          return ExprPtr(std::make_unique<LiteralExpr>(Value::null()));
        }
        if (isReservedWord(t)) {
          return errorHere(util::format("unexpected keyword %s",
                                        t.text.c_str()));
        }
        // Function call.
        if (peek(1).type == TokenType::kLParen) {
          std::string name = advance().text;
          ++pos_;  // '('
          std::vector<ExprPtr> args;
          if (!accept(TokenType::kRParen)) {
            do {
              if (peek().type == TokenType::kStar) {
                // COUNT(*).
                ++pos_;
                args.push_back(std::make_unique<StarExpr>());
              } else {
                auto a = parseExpr();
                if (!a.isOk()) return a;
                args.push_back(std::move(a).value());
              }
            } while (accept(TokenType::kComma));
            QSERV_RETURN_IF_ERROR(expect(TokenType::kRParen, "expected ')'"));
          }
          return ExprPtr(
              std::make_unique<FuncCall>(std::move(name), std::move(args)));
        }
        // Column reference: column or qualifier.column.
        std::string first = advance().text;
        if (accept(TokenType::kDot)) {
          if (peek().type != TokenType::kIdentifier) {
            return errorHere("expected column after '.'");
          }
          std::string second = advance().text;
          return ExprPtr(std::make_unique<ColumnRef>(first, second));
        }
        return ExprPtr(std::make_unique<ColumnRef>("", first));
      }
      default:
        return errorHere("expected expression");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Result<Statement> parseStatement(std::string_view sql) {
  QSERV_ASSIGN_OR_RETURN(auto tokens, tokenize(sql));
  Parser p(std::move(tokens));
  return p.parseOneStatement();
}

util::Result<std::vector<Statement>> parseScript(std::string_view sql) {
  QSERV_ASSIGN_OR_RETURN(auto tokens, tokenize(sql));
  Parser p(std::move(tokens));
  return p.parseAll();
}

util::Result<SelectStmt> parseSelect(std::string_view sql) {
  QSERV_ASSIGN_OR_RETURN(auto stmt, parseStatement(sql));
  if (auto* sel = std::get_if<SelectStmt>(&stmt)) {
    return std::move(*sel);
  }
  return util::Status::invalidArgument("statement is not a SELECT");
}

util::Result<ExprPtr> parseExpression(std::string_view sql) {
  QSERV_ASSIGN_OR_RETURN(auto tokens, tokenize(sql));
  Parser p(std::move(tokens));
  return p.parseSingleExpression();
}

}  // namespace qserv::sql
