/// \file dump.h
/// \brief SQL-statement table serialization — the `mysqldump` analogue.
///
/// The paper (§5.4): "Results from a chunk query are transferred as SQL
/// statements. The worker executes mysqldump on the result table and the
/// resulting byte stream is read byte-for-byte by the master, which executes
/// the SQL statements to load results into its local database." This module
/// produces and replays exactly such a byte stream:
///
///   -- qserv-dump v1
///   DROP TABLE IF EXISTS `target`;
///   CREATE TABLE `target` (...);
///   INSERT INTO `target` VALUES (...),(...);   -- batched
#pragma once

#include <string>

#include "sql/database.h"
#include "sql/table.h"
#include "util/status.h"

namespace qserv::sql {

/// Serialize \p table as a replayable SQL script creating \p targetName.
/// \p batchRows caps rows per INSERT statement (mysqldump batches too).
std::string dumpTable(const Table& table, const std::string& targetName,
                      std::size_t batchRows = 500);

/// Replay a dump script into \p db. Returns the loaded table.
util::Result<TablePtr> loadDump(Database& db, std::string_view dump);

}  // namespace qserv::sql
