/// \file functions.h
/// \brief Scalar function (UDF) registry.
///
/// Provides the worker-side user-defined functions the paper's queries rely
/// on (§5.3, §6.2):
///   - fluxToAbMag(flux): AB magnitude from calibrated flux,
///     m = -2.5 log10(f) - 48.6 (f in erg s^-1 cm^-2 Hz^-1).
///   - qserv_angSep(ra1, dec1, ra2, dec2): great-circle separation, degrees.
///   - qserv_ptInSphericalBox(ra, dec, lonMin, latMin, lonMax, latMax):
///     1/0 point-in-box with RA wraparound — what qserv_areaspec_box is
///     rewritten to on workers.
/// plus ordinary math builtins. The frontend-only pseudo-function
/// qserv_areaspec_box is deliberately NOT registered: a chunk query that
/// reaches a worker without being rewritten fails loudly.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>

#include "sql/value.h"

namespace qserv::sql {

/// Scalar function: values in, value out. Domain errors yield NULL.
using ScalarFn = std::function<Value(std::span<const Value>)>;

struct FunctionDef {
  ScalarFn fn;
  int arity = -1;  ///< exact argument count; -1 = variadic
};

class FunctionRegistry {
 public:
  /// Registry preloaded with math builtins and the Qserv UDFs.
  static const FunctionRegistry& builtins();

  /// Adds or replaces \p name (case-insensitive).
  void add(const std::string& name, int arity, ScalarFn fn);

  /// Looks up \p name (case-insensitive); nullptr when absent.
  const FunctionDef* find(const std::string& name) const;

 private:
  std::unordered_map<std::string, FunctionDef> fns_;
};

}  // namespace qserv::sql
