#include "sql/database.h"

#include "sql/executor.h"
#include "sql/parser.h"
#include "util/strings.h"

namespace qserv::sql {

void ExecStats::add(const ExecStats& o) {
  rowsScanned += o.rowsScanned;
  pairsEvaluated += o.pairsEvaluated;
  joinMatches += o.joinMatches;
  rowsOutput += o.rowsOutput;
  rowsInserted += o.rowsInserted;
  indexLookups += o.indexLookups;
  statements += o.statements;
  vectorizedScans += o.vectorizedScans;
  vectorRowsIn += o.vectorRowsIn;
  vectorRowsOut += o.vectorRowsOut;
  fallbackRows += o.fallbackRows;
  zoneMapPrunes += o.zoneMapPrunes;
  zoneMapRowsSkipped += o.zoneMapRowsSkipped;
  spatialJoins += o.spatialJoins;
  zoneJoinZonesBuilt += o.zoneJoinZonesBuilt;
  zoneJoinZonesProbed += o.zoneJoinZonesProbed;
  zoneJoinCandidates += o.zoneJoinCandidates;
  zoneJoinPairsPruned += o.zoneJoinPairsPruned;
  for (const auto& [table, rows] : o.rowsScannedByTable) {
    rowsScannedByTable[table] += rows;
  }
}

Database::Database(std::string name)
    : name_(std::move(name)), registry_(FunctionRegistry::builtins()) {}

util::Status Database::registerTable(TablePtr table) {
  std::unique_lock lock(mutex_);
  auto [it, inserted] = tables_.emplace(table->name(), table);
  if (!inserted) {
    return util::Status::alreadyExists(
        util::format("table %s already exists", table->name().c_str()));
  }
  return util::Status::ok();
}

util::Status Database::replaceTable(TablePtr table) {
  std::unique_lock lock(mutex_);
  auto& slot = tables_[table->name()];
  slot = std::move(table);
  // Existing indexes snapshot the replaced contents: rebuild them over the
  // new table so probes keep agreeing with scans.
  auto it = indexes_.find(slot->name());
  if (it != indexes_.end()) {
    for (auto& [colName, index] : it->second) {
      auto col = slot->schema().indexOf(colName);
      if (!col) continue;
      index = std::make_shared<OrderedIndex>(*slot, *col);
    }
  }
  return util::Status::ok();
}

util::Status Database::dropTable(const std::string& table, bool ifExists) {
  std::unique_lock lock(mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    if (ifExists) return util::Status::ok();
    return util::Status::notFound(
        util::format("unknown table %s", table.c_str()));
  }
  tables_.erase(it);
  indexes_.erase(table);
  return util::Status::ok();
}

util::Status Database::renameTable(const std::string& from,
                                   const std::string& to) {
  std::unique_lock lock(mutex_);
  auto it = tables_.find(from);
  if (it == tables_.end()) {
    return util::Status::notFound(
        util::format("unknown table %s", from.c_str()));
  }
  if (tables_.count(to) != 0) {
    return util::Status::alreadyExists(
        util::format("table %s already exists", to.c_str()));
  }
  TablePtr table = std::move(it->second);
  tables_.erase(it);
  table->rename(to);
  tables_.emplace(to, std::move(table));
  auto idx = indexes_.find(from);
  if (idx != indexes_.end()) {
    auto moved = std::move(idx->second);
    indexes_.erase(idx);
    indexes_.emplace(to, std::move(moved));
  }
  return util::Status::ok();
}

TablePtr Database::findTable(const std::string& table) const {
  std::shared_lock lock(mutex_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second;
}

std::vector<std::string> Database::tableNames() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

util::Status Database::createIndex(const std::string& table,
                                   const std::string& column) {
  TablePtr t = findTable(table);
  if (!t) {
    return util::Status::notFound(
        util::format("unknown table %s", table.c_str()));
  }
  auto col = t->schema().indexOf(column);
  if (!col) {
    return util::Status::notFound(
        util::format("unknown column %s.%s", table.c_str(), column.c_str()));
  }
  auto index = std::make_shared<OrderedIndex>(*t, *col);
  std::unique_lock lock(mutex_);
  indexes_[table][util::toLower(column)] = std::move(index);
  return util::Status::ok();
}

std::shared_ptr<const OrderedIndex> Database::findIndex(
    const std::string& table, const std::string& column) const {
  std::shared_lock lock(mutex_);
  auto it = indexes_.find(table);
  if (it == indexes_.end()) return nullptr;
  auto jt = it->second.find(util::toLower(column));
  return jt == it->second.end() ? nullptr : jt->second;
}

void Database::refreshIndexes(const std::string& table) {
  TablePtr t = findTable(table);
  if (!t) return;
  std::unique_lock lock(mutex_);
  auto it = indexes_.find(table);
  if (it == indexes_.end()) return;
  // Rebuild each index as an immutable snapshot over the current rows.
  for (auto& [colName, index] : it->second) {
    auto col = t->schema().indexOf(colName);
    if (!col) continue;
    index = std::make_shared<OrderedIndex>(*t, *col);
  }
}

util::Result<TablePtr> Database::execute(std::string_view sql,
                                         ExecStats* stats) {
  QSERV_ASSIGN_OR_RETURN(Statement stmt, parseStatement(sql));
  ExecStats local;
  QSERV_ASSIGN_OR_RETURN(TablePtr result,
                         executeStatement(*this, stmt, local));
  if (stats != nullptr) stats->add(local);
  return result;
}

util::Result<TablePtr> Database::executeScript(std::string_view sql,
                                               ExecStats* stats) {
  QSERV_ASSIGN_OR_RETURN(auto stmts, parseScript(sql));
  ExecStats local;
  TablePtr combined;
  for (const Statement& stmt : stmts) {
    QSERV_ASSIGN_OR_RETURN(TablePtr result,
                           executeStatement(*this, stmt, local));
    if (!std::holds_alternative<SelectStmt>(stmt)) continue;
    if (!combined) {
      combined = result;
      continue;
    }
    if (result->numColumns() != combined->numColumns()) {
      return util::Status::invalidArgument(
          "script SELECTs produce different column counts");
    }
    QSERV_RETURN_IF_ERROR(combined->appendFrom(*result));
  }
  if (stats != nullptr) stats->add(local);
  if (!combined) combined = std::make_shared<Table>("result", Schema{});
  return combined;
}

}  // namespace qserv::sql
