#include "sql/value.h"

#include <cmath>
#include <functional>

#include "util/strings.h"

namespace qserv::sql {

const char* valueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "?";
}

int Value::compare(const Value& other) const {
  bool an = isNull(), bn = other.isNull();
  if (an || bn) {
    if (an && bn) return 0;
    return an ? -1 : 1;
  }
  if (isNumeric() && other.isNumeric()) {
    // Avoid precision loss when both are ints.
    if (isInt() && other.isInt()) {
      std::int64_t a = asInt(), b = other.asInt();
      return (a < b) ? -1 : (a > b) ? 1 : 0;
    }
    double a = toDouble(), b = other.toDouble();
    return (a < b) ? -1 : (a > b) ? 1 : 0;
  }
  if (isString() && other.isString()) {
    int c = asString().compare(other.asString());
    return (c < 0) ? -1 : (c > 0) ? 1 : 0;
  }
  // Cross-type: numerics before strings.
  int ra = isString() ? 1 : 0;
  int rb = other.isString() ? 1 : 0;
  return (ra < rb) ? -1 : 1;
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) {
    // int/double of the same numeric value are structurally different,
    // matching test expectations for exact dumps.
    return false;
  }
  return v_ == other.v_;
}

std::string Value::toSqlLiteral() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(asInt());
    case ValueType::kDouble: {
      double d = asDouble();
      if (std::isnan(d)) return "NULL";  // SQL has no NaN literal
      std::string s = util::format("%.17g", d);
      // Ensure it reads back as a double, not an int.
      if (s.find_first_of(".eE") == std::string::npos &&
          s.find("inf") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueType::kString: {
      std::string out;
      out.reserve(asString().size() + 2);
      out.push_back('\'');
      for (char c : asString()) {
        if (c == '\'') out.push_back('\'');  // double the quote
        if (c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out.push_back('\'');
      return out;
    }
  }
  return "NULL";
}

std::string Value::toDisplayString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return std::to_string(asInt());
    case ValueType::kDouble: return util::format("%.10g", asDouble());
    case ValueType::kString: return asString();
  }
  return "NULL";
}

std::size_t Value::hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt: {
      // Hash ints through double when exactly representable so that
      // sqlEquals-equal values hash equal (2 == 2.0).
      double d = static_cast<double>(asInt());
      if (static_cast<std::int64_t>(d) == asInt()) {
        return std::hash<double>{}(d);
      }
      return std::hash<std::int64_t>{}(asInt());
    }
    case ValueType::kDouble:
      return std::hash<double>{}(asDouble());
    case ValueType::kString:
      return std::hash<std::string>{}(asString());
  }
  return 0;
}

}  // namespace qserv::sql
