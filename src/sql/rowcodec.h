/// \file rowcodec.h
/// \brief Compact binary table serialization — the "more efficient method"
/// of result transfer the paper wants to replace mysqldump with (§5.4,
/// §7.1: mysqldump's "costs in speed, disk, network, and database
/// transactions are strong motivations to explore a more efficient
/// method").
///
/// Format (all integers little-endian):
///   magic  "QBN1"            4 bytes
///   name   u16 len + bytes
///   ncols  u16
///   per column: u8 type (0=int,1=double,2=string), u16 name len + bytes
///   nrows  u64
///   row data, column-major per row: u8 null flag, then payload
///     (int64 / double raw 8 bytes; string u32 len + bytes)
#pragma once

#include <string>
#include <string_view>

#include "sql/database.h"
#include "sql/table.h"

namespace qserv::sql {

/// Magic prefix distinguishing binary payloads from SQL-dump text.
inline constexpr std::string_view kRowCodecMagic = "QBN1";

/// True when \p payload starts with the binary magic.
bool isBinaryTablePayload(std::string_view payload);

/// Serialize \p table under \p targetName.
std::string encodeTableBinary(const Table& table,
                              const std::string& targetName);

/// Decode a binary payload and register the table in \p db (replacing any
/// same-named table, like a dump's DROP + CREATE).
util::Result<TablePtr> loadBinaryTable(Database& db,
                                       std::string_view payload);

}  // namespace qserv::sql
