/// \file executor.h
/// \brief Statement execution against a Database.
///
/// The SELECT pipeline: resolve FROM tables -> expand `*` -> extract
/// aggregates into slots -> split WHERE into per-table filters, equi-join
/// keys, and residual predicates -> enumerate joined tuples (index probe,
/// filtered scan, hash join, or nested loop) -> aggregate/group ->
/// project -> order -> limit. This covers every query shape in the paper's
/// evaluation (§6.2), including the near-neighbor self-join and the
/// Object x Source equi-join with a residual spatial predicate.
#pragma once

#include "sql/ast.h"
#include "sql/database.h"

namespace qserv::sql {

/// Execute \p stmt against \p db. SELECT returns its result table (named
/// "result"); other statements return an empty zero-column table.
util::Result<TablePtr> executeStatement(Database& db, const Statement& stmt,
                                        ExecStats& stats);

/// Execute a parsed SELECT.
util::Result<TablePtr> executeSelect(Database& db, const SelectStmt& sel,
                                     ExecStats& stats);

}  // namespace qserv::sql
