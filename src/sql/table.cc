#include "sql/table.h"

#include <cassert>

#include "util/strings.h"

namespace qserv::sql {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.resize(schema_.numColumns());
  for (std::size_t i = 0; i < schema_.numColumns(); ++i) {
    columns_[i].type = schema_.column(i).type;
  }
}

util::Status Table::appendRow(std::span<const Value> values) {
  if (values.size() != schema_.numColumns()) {
    return util::Status::invalidArgument(util::format(
        "table %s: row has %zu values, schema has %zu columns", name_.c_str(),
        values.size(), schema_.numColumns()));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!valueMatches(columns_[i].type, values[i])) {
      return util::Status::invalidArgument(util::format(
          "table %s column %s: %s value does not match declared type %s",
          name_.c_str(), schema_.column(i).name.c_str(),
          valueTypeName(values[i].type()), columnTypeName(columns_[i].type)));
    }
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    Column& c = columns_[i];
    const Value& v = values[i];
    c.nulls.push_back(v.isNull() ? 1 : 0);
    switch (c.type) {
      case ColumnType::kInt:
        c.ints.push_back(v.isNull() ? 0 : v.asInt());
        break;
      case ColumnType::kDouble:
        c.doubles.push_back(v.isNull() ? 0.0 : v.toDouble());
        break;
      case ColumnType::kString:
        c.strings.push_back(v.isNull() ? std::string() : v.asString());
        break;
    }
  }
  ++numRows_;
  return util::Status::ok();
}

Value Table::cell(std::size_t row, std::size_t col) const {
  assert(row < numRows_ && col < columns_.size());
  const Column& c = columns_[col];
  if (c.nulls[row]) return Value::null();
  switch (c.type) {
    case ColumnType::kInt: return Value(c.ints[row]);
    case ColumnType::kDouble: return Value(c.doubles[row]);
    case ColumnType::kString: return Value(c.strings[row]);
  }
  return Value::null();
}

std::vector<Value> Table::row(std::size_t r) const {
  std::vector<Value> out;
  out.reserve(numColumns());
  for (std::size_t c = 0; c < numColumns(); ++c) out.push_back(cell(r, c));
  return out;
}

const std::vector<std::int64_t>& Table::intColumn(std::size_t col) const {
  assert(columns_[col].type == ColumnType::kInt);
  return columns_[col].ints;
}

const std::vector<double>& Table::doubleColumn(std::size_t col) const {
  assert(columns_[col].type == ColumnType::kDouble);
  return columns_[col].doubles;
}

const std::vector<std::string>& Table::stringColumn(std::size_t col) const {
  assert(columns_[col].type == ColumnType::kString);
  return columns_[col].strings;
}

bool Table::isNull(std::size_t row, std::size_t col) const {
  assert(row < numRows_ && col < columns_.size());
  return columns_[col].nulls[row] != 0;
}

std::size_t Table::payloadBytes() const {
  std::size_t total = 0;
  for (const Column& c : columns_) {
    switch (c.type) {
      case ColumnType::kInt: total += c.ints.size() * sizeof(std::int64_t); break;
      case ColumnType::kDouble: total += c.doubles.size() * sizeof(double); break;
      case ColumnType::kString:
        for (const auto& s : c.strings) total += s.size() + 1;
        break;
    }
    total += c.nulls.size();
  }
  return total;
}

}  // namespace qserv::sql
