#include "sql/table.h"

#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace qserv::sql {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.resize(schema_.numColumns());
  for (std::size_t i = 0; i < schema_.numColumns(); ++i) {
    columns_[i].type = schema_.column(i).type;
  }
}

void Table::Column::append(const Value& v) {
  nulls.push_back(v.isNull() ? 1 : 0);
  if (v.isNull()) {
    ++zone.nullCount;
    switch (type) {
      case ColumnType::kInt: ints.push_back(0); break;
      case ColumnType::kDouble: doubles.push_back(0.0); break;
      case ColumnType::kString: strings.push_back(std::string()); break;
    }
    return;
  }
  switch (type) {
    case ColumnType::kInt: {
      std::int64_t x = v.asInt();
      ints.push_back(x);
      if (!zone.hasValue) {
        zone.hasValue = true;
        zone.intMin = zone.intMax = x;
      } else {
        if (x < zone.intMin) zone.intMin = x;
        if (x > zone.intMax) zone.intMax = x;
      }
      break;
    }
    case ColumnType::kDouble: {
      double x = v.toDouble();
      doubles.push_back(x);
      if (std::isnan(x)) {
        zone.hasNaN = true;
      } else if (!zone.hasValue) {
        zone.hasValue = true;
        zone.dblMin = zone.dblMax = x;
      } else {
        if (x < zone.dblMin) zone.dblMin = x;
        if (x > zone.dblMax) zone.dblMax = x;
      }
      break;
    }
    case ColumnType::kString:
      strings.push_back(v.asString());
      zone.hasValue = true;  // strings get no min/max; nullCount stays useful
      break;
  }
}

void Table::Column::reserveMore(std::size_t n) {
  nulls.reserve(nulls.size() + n);
  switch (type) {
    case ColumnType::kInt: ints.reserve(ints.size() + n); break;
    case ColumnType::kDouble: doubles.reserve(doubles.size() + n); break;
    case ColumnType::kString: strings.reserve(strings.size() + n); break;
  }
}

util::Status Table::appendRow(std::span<const Value> values) {
  if (values.size() != schema_.numColumns()) {
    return util::Status::invalidArgument(util::format(
        "table %s: row has %zu values, schema has %zu columns", name_.c_str(),
        values.size(), schema_.numColumns()));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!valueMatches(columns_[i].type, values[i])) {
      return util::Status::invalidArgument(util::format(
          "table %s column %s: %s value does not match declared type %s",
          name_.c_str(), schema_.column(i).name.c_str(),
          valueTypeName(values[i].type()), columnTypeName(columns_[i].type)));
    }
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    columns_[i].append(values[i]);
  }
  ++numRows_;
  return util::Status::ok();
}

util::Status Table::appendRows(std::span<const std::vector<Value>> rows) {
  // Validate everything before touching column storage so a bad row in the
  // middle of a batch cannot leave the table half-appended.
  for (const auto& values : rows) {
    if (values.size() != schema_.numColumns()) {
      return util::Status::invalidArgument(util::format(
          "table %s: row has %zu values, schema has %zu columns", name_.c_str(),
          values.size(), schema_.numColumns()));
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (!valueMatches(columns_[i].type, values[i])) {
        return util::Status::invalidArgument(util::format(
            "table %s column %s: %s value does not match declared type %s",
            name_.c_str(), schema_.column(i).name.c_str(),
            valueTypeName(values[i].type()), columnTypeName(columns_[i].type)));
      }
    }
  }
  for (Column& c : columns_) c.reserveMore(rows.size());
  for (const auto& values : rows) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      columns_[i].append(values[i]);
    }
  }
  numRows_ += rows.size();
  return util::Status::ok();
}

util::Status Table::appendFrom(const Table& src) {
  if (src.numColumns() != numColumns()) {
    return util::Status::invalidArgument(util::format(
        "table %s: cannot append from %s: %zu columns vs %zu", name_.c_str(),
        src.name_.c_str(), src.numColumns(), numColumns()));
  }
  std::size_t n = src.numRows();
  for (std::size_t i = 0; i < numColumns(); ++i) {
    const Column& s = src.columns_[i];
    if (s.type == columns_[i].type) continue;
    if (columns_[i].type == ColumnType::kDouble && s.type == ColumnType::kInt) {
      continue;  // widened below
    }
    if (s.zone.nullCount == n) continue;  // all-NULL source feeds any type
    return util::Status::invalidArgument(util::format(
        "table %s column %s: cannot append %s column %s of type %s",
        name_.c_str(), schema_.column(i).name.c_str(), src.name_.c_str(),
        src.schema_.column(i).name.c_str(), columnTypeName(s.type)));
  }
  for (std::size_t i = 0; i < numColumns(); ++i) {
    Column& d = columns_[i];
    const Column& s = src.columns_[i];
    d.reserveMore(n);
    d.nulls.insert(d.nulls.end(), s.nulls.begin(), s.nulls.end());
    d.zone.nullCount += s.zone.nullCount;
    if (s.zone.nullCount == n && s.type != d.type) {
      // All-NULL mismatched column: append typed padding only.
      switch (d.type) {
        case ColumnType::kInt: d.ints.resize(d.ints.size() + n, 0); break;
        case ColumnType::kDouble:
          d.doubles.resize(d.doubles.size() + n, 0.0);
          break;
        case ColumnType::kString:
          d.strings.resize(d.strings.size() + n);
          break;
      }
      continue;
    }
    switch (d.type) {
      case ColumnType::kInt:
        d.ints.insert(d.ints.end(), s.ints.begin(), s.ints.end());
        if (s.zone.hasValue) {
          if (!d.zone.hasValue) {
            d.zone.hasValue = true;
            d.zone.intMin = s.zone.intMin;
            d.zone.intMax = s.zone.intMax;
          } else {
            if (s.zone.intMin < d.zone.intMin) d.zone.intMin = s.zone.intMin;
            if (s.zone.intMax > d.zone.intMax) d.zone.intMax = s.zone.intMax;
          }
        }
        break;
      case ColumnType::kDouble: {
        if (s.type == ColumnType::kInt) {
          for (std::int64_t x : s.ints) {
            d.doubles.push_back(static_cast<double>(x));
          }
          if (s.zone.hasValue) {
            double lo = static_cast<double>(s.zone.intMin);
            double hi = static_cast<double>(s.zone.intMax);
            if (!d.zone.hasValue) {
              d.zone.hasValue = true;
              d.zone.dblMin = lo;
              d.zone.dblMax = hi;
            } else {
              if (lo < d.zone.dblMin) d.zone.dblMin = lo;
              if (hi > d.zone.dblMax) d.zone.dblMax = hi;
            }
          }
        } else {
          d.doubles.insert(d.doubles.end(), s.doubles.begin(), s.doubles.end());
          if (s.zone.hasNaN) d.zone.hasNaN = true;
          if (s.zone.hasValue) {
            if (!d.zone.hasValue) {
              d.zone.hasValue = true;
              d.zone.dblMin = s.zone.dblMin;
              d.zone.dblMax = s.zone.dblMax;
            } else {
              if (s.zone.dblMin < d.zone.dblMin) d.zone.dblMin = s.zone.dblMin;
              if (s.zone.dblMax > d.zone.dblMax) d.zone.dblMax = s.zone.dblMax;
            }
          }
        }
        break;
      }
      case ColumnType::kString:
        d.strings.insert(d.strings.end(), s.strings.begin(), s.strings.end());
        if (s.zone.hasValue) d.zone.hasValue = true;
        break;
    }
  }
  numRows_ += n;
  return util::Status::ok();
}

Value Table::cell(std::size_t row, std::size_t col) const {
  assert(row < numRows_ && col < columns_.size());
  const Column& c = columns_[col];
  if (c.nulls[row]) return Value::null();
  switch (c.type) {
    case ColumnType::kInt: return Value(c.ints[row]);
    case ColumnType::kDouble: return Value(c.doubles[row]);
    case ColumnType::kString: return Value(c.strings[row]);
  }
  return Value::null();
}

std::vector<Value> Table::row(std::size_t r) const {
  std::vector<Value> out;
  out.reserve(numColumns());
  for (std::size_t c = 0; c < numColumns(); ++c) out.push_back(cell(r, c));
  return out;
}

const std::vector<std::int64_t>& Table::intColumn(std::size_t col) const {
  assert(columns_[col].type == ColumnType::kInt);
  return columns_[col].ints;
}

const std::vector<double>& Table::doubleColumn(std::size_t col) const {
  assert(columns_[col].type == ColumnType::kDouble);
  return columns_[col].doubles;
}

const std::vector<std::string>& Table::stringColumn(std::size_t col) const {
  assert(columns_[col].type == ColumnType::kString);
  return columns_[col].strings;
}

bool Table::isNull(std::size_t row, std::size_t col) const {
  assert(row < numRows_ && col < columns_.size());
  return columns_[col].nulls[row] != 0;
}

const std::vector<std::uint8_t>& Table::nullMask(std::size_t col) const {
  assert(col < columns_.size());
  return columns_[col].nulls;
}

const ZoneMap& Table::zoneMap(std::size_t col) const {
  assert(col < columns_.size());
  return columns_[col].zone;
}

std::size_t Table::payloadBytes() const {
  std::size_t total = 0;
  for (const Column& c : columns_) {
    switch (c.type) {
      case ColumnType::kInt: total += c.ints.size() * sizeof(std::int64_t); break;
      case ColumnType::kDouble: total += c.doubles.size() * sizeof(double); break;
      case ColumnType::kString:
        for (const auto& s : c.strings) total += s.size() + 1;
        break;
    }
    total += c.nulls.size();
  }
  return total;
}

}  // namespace qserv::sql
