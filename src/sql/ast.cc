#include "sql/ast.h"

#include <cctype>

#include "util/strings.h"

namespace qserv::sql {

std::string quoteIdentIfNeeded(const std::string& name) {
  bool plain = !name.empty() &&
               (std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_');
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      plain = false;
      break;
    }
  }
  if (plain) return name;
  return "`" + name + "`";
}

const char* binOpSql(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

std::string ColumnRef::toSql() const {
  if (qualifier.empty()) return quoteIdentIfNeeded(column);
  return quoteIdentIfNeeded(qualifier) + "." + quoteIdentIfNeeded(column);
}

std::string BinaryExpr::toSql() const {
  // Fully parenthesized output keeps round-trips precedence-safe.
  return "(" + lhs->toSql() + " " + binOpSql(op) + " " + rhs->toSql() + ")";
}

ExprPtr FuncCall::clone() const {
  std::vector<ExprPtr> clonedArgs;
  clonedArgs.reserve(args.size());
  for (const auto& a : args) clonedArgs.push_back(a->clone());
  return std::make_unique<FuncCall>(name, std::move(clonedArgs));
}

std::string FuncCall::toSql() const {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const auto& a : args) parts.push_back(a->toSql());
  return name + "(" + util::join(parts, ", ") + ")";
}

bool FuncCall::isAggregate() const {
  return util::iequals(name, "COUNT") || util::iequals(name, "SUM") ||
         util::iequals(name, "AVG") || util::iequals(name, "MIN") ||
         util::iequals(name, "MAX");
}

std::string BetweenExpr::toSql() const {
  return "(" + expr->toSql() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
         lo->toSql() + " AND " + hi->toSql() + ")";
}

ExprPtr InExpr::clone() const {
  std::vector<ExprPtr> clonedList;
  clonedList.reserve(list.size());
  for (const auto& e : list) clonedList.push_back(e->clone());
  return std::make_unique<InExpr>(expr->clone(), std::move(clonedList),
                                  negated);
}

std::string InExpr::toSql() const {
  std::vector<std::string> parts;
  parts.reserve(list.size());
  for (const auto& e : list) parts.push_back(e->toSql());
  return "(" + expr->toSql() + (negated ? " NOT IN (" : " IN (") +
         util::join(parts, ", ") + "))";
}

std::string SelectItem::toSql() const {
  if (alias.empty()) return expr->toSql();
  return expr->toSql() + " AS " + quoteIdentIfNeeded(alias);
}

std::string TableRef::toSql() const {
  std::string out;
  if (!database.empty()) out += database + ".";
  out += table;
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

SelectStmt SelectStmt::clone() const {
  SelectStmt out;
  out.distinct = distinct;
  out.items.reserve(items.size());
  for (const auto& i : items) out.items.push_back(i.clone());
  out.from = from;
  if (where) out.where = where->clone();
  out.groupBy.reserve(groupBy.size());
  for (const auto& g : groupBy) out.groupBy.push_back(g->clone());
  if (having) out.having = having->clone();
  out.orderBy.reserve(orderBy.size());
  for (const auto& o : orderBy) out.orderBy.push_back(o.clone());
  out.limit = limit;
  return out;
}

std::string SelectStmt::toSql() const {
  std::vector<std::string> itemSql;
  itemSql.reserve(items.size());
  for (const auto& i : items) itemSql.push_back(i.toSql());
  std::string out =
      (distinct ? "SELECT DISTINCT " : "SELECT ") + util::join(itemSql, ", ");
  if (!from.empty()) {
    std::vector<std::string> fromSql;
    fromSql.reserve(from.size());
    for (const auto& t : from) fromSql.push_back(t.toSql());
    out += " FROM " + util::join(fromSql, ", ");
  }
  if (where) out += " WHERE " + where->toSql();
  if (!groupBy.empty()) {
    std::vector<std::string> g;
    g.reserve(groupBy.size());
    for (const auto& e : groupBy) g.push_back(e->toSql());
    out += " GROUP BY " + util::join(g, ", ");
  }
  if (having) out += " HAVING " + having->toSql();
  if (!orderBy.empty()) {
    std::vector<std::string> o;
    o.reserve(orderBy.size());
    for (const auto& item : orderBy) {
      o.push_back(item.expr->toSql() + (item.descending ? " DESC" : ""));
    }
    out += " ORDER BY " + util::join(o, ", ");
  }
  if (limit) out += " LIMIT " + std::to_string(*limit);
  return out;
}

std::string CreateTableStmt::toSql() const {
  std::string out = "CREATE TABLE ";
  if (ifNotExists) out += "IF NOT EXISTS ";
  out += table;
  if (asSelect) {
    out += " AS " + asSelect->toSql();
  } else {
    out += " " + schema.toSql();
  }
  return out;
}

std::string InsertStmt::toSql() const {
  std::string out = "INSERT INTO " + table;
  if (select) {
    out += " " + select->toSql();
    return out;
  }
  out += " VALUES ";
  std::vector<std::string> rowSql;
  rowSql.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> vals;
    vals.reserve(row.size());
    for (const auto& v : row) vals.push_back(v.toSqlLiteral());
    rowSql.push_back("(" + util::join(vals, ", ") + ")");
  }
  out += util::join(rowSql, ", ");
  return out;
}

std::string DropTableStmt::toSql() const {
  std::string out = "DROP TABLE ";
  if (ifExists) out += "IF EXISTS ";
  out += table;
  return out;
}

std::string ExplainStmt::toSql() const {
  std::string out = "EXPLAIN ";
  if (analyze) out += "ANALYZE ";
  if (select) out += select->toSql();
  return out;
}

std::string statementToSql(const Statement& stmt) {
  return std::visit([](const auto& s) { return s.toSql(); }, stmt);
}

}  // namespace qserv::sql
