#include "sql/vector_eval.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace qserv::sql {

namespace {

std::atomic<bool> g_vectorEnabled{true};

/// Value::compare's numeric formula, reproduced exactly: NaN compares equal
/// to everything (both <' and >' are false), which makes `x = NaN` true for
/// every non-null row. Kernels must not "fix" this — parity with the scalar
/// path is the contract.
inline int dcmp(double a, double b) { return (a < b) ? -1 : (a > b) ? 1 : 0; }

inline bool dEq(double a, double b) { return !(a < b) && !(a > b); }

NumBound makeBound(const Value& v) {
  NumBound b;
  if (v.isInt()) {
    b.isInt = true;
    b.i = v.asInt();
    b.d = static_cast<double>(v.asInt());
  } else {
    b.d = v.asDouble();
  }
  return b;
}

}  // namespace

void setVectorizedFilterEnabled(bool enabled) {
  g_vectorEnabled.store(enabled, std::memory_order_relaxed);
}

bool vectorizedFilterEnabled() {
  return g_vectorEnabled.load(std::memory_order_relaxed);
}

// ------------------------------------------------------------- compilation

namespace {

/// Strip NOT wrappers, tracking parity. NULL operands make NOT yield NULL,
/// which drops the row exactly like the un-negated NULL would, so flipping
/// the inner predicate preserves filter semantics.
const Expr* stripNot(const Expr* e, bool& negated) {
  while (e->kind() == ExprKind::kUnary) {
    const auto* u = static_cast<const UnaryExpr*>(e);
    if (u->op != UnOp::kNot) break;
    negated = !negated;
    e = u->operand.get();
  }
  return e;
}

}  // namespace

util::Result<ScanFilter> compileScanFilter(
    std::span<const Expr* const> conjuncts, std::span<const ScopeTable> scope,
    std::size_t tableIdx, const FunctionRegistry& registry) {
  ScanFilter sf;
  using Kind = ScanFilter::Kind;
  using CmpOp = ScanFilter::CmpOp;
  using Kernel = ScanFilter::Kernel;

  const Table& table = *scope[tableIdx].table;

  // Resolve a ColumnRef belonging to our table; nullopt → residual.
  auto ownColumn = [&](const Expr& e) -> std::optional<std::size_t> {
    if (e.kind() != ExprKind::kColumnRef) return std::nullopt;
    auto slot = resolveColumn(static_cast<const ColumnRef&>(e), scope);
    if (!slot.isOk() || slot->tableIdx != tableIdx) return std::nullopt;
    return slot->columnIdx;
  };
  auto constValue = [&](const Expr& e) -> std::optional<Value> {
    if (!isConstExpr(e)) return std::nullopt;
    auto v = evalConstExpr(e, registry);
    if (!v.isOk()) return std::nullopt;  // scalar path will surface the error
    return std::move(*v);
  };
  auto pushIsNull = [&](std::size_t col, bool negated) {
    Kernel k;
    k.kind = Kind::kIsNull;
    k.col = col;
    k.colType = table.schema().column(col).type;
    k.negated = negated;
    sf.kernels_.push_back(std::move(k));
  };
  auto pushNever = [&] {
    sf.kernels_.push_back(Kernel{});  // default kind is kNever
  };
  // A predicate whose truth is the same for every non-null row collapses to
  // IS NOT NULL (truth) or to a never-true kernel.
  auto pushConstTruth = [&](std::size_t col, bool truth) {
    if (truth) {
      pushIsNull(col, /*negated=*/true);
    } else {
      pushNever();
    }
  };

  for (std::size_t ci = 0; ci < conjuncts.size(); ++ci) {
    bool negated = false;
    const Expr* e = stripNot(conjuncts[ci], negated);
    bool compiled = false;

    if (e->kind() == ExprKind::kBinary) {
      const auto* b = static_cast<const BinaryExpr*>(e);
      CmpOp op;
      bool isCmp = true;
      switch (b->op) {
        case BinOp::kEq: op = CmpOp::kEq; break;
        case BinOp::kNe: op = CmpOp::kNe; break;
        case BinOp::kLt: op = CmpOp::kLt; break;
        case BinOp::kLe: op = CmpOp::kLe; break;
        case BinOp::kGt: op = CmpOp::kGt; break;
        case BinOp::kGe: op = CmpOp::kGe; break;
        default: isCmp = false; break;
      }
      if (isCmp) {
        std::optional<std::size_t> col = ownColumn(*b->lhs);
        const Expr* constSide = b->rhs.get();
        if (!col) {
          col = ownColumn(*b->rhs);
          constSide = b->lhs.get();
          // Flip the operator when the column sits on the right-hand side.
          switch (op) {
            case CmpOp::kLt: op = CmpOp::kGt; break;
            case CmpOp::kLe: op = CmpOp::kGe; break;
            case CmpOp::kGt: op = CmpOp::kLt; break;
            case CmpOp::kGe: op = CmpOp::kLe; break;
            default: break;
          }
        }
        if (negated) {
          switch (op) {
            case CmpOp::kEq: op = CmpOp::kNe; break;
            case CmpOp::kNe: op = CmpOp::kEq; break;
            case CmpOp::kLt: op = CmpOp::kGe; break;
            case CmpOp::kLe: op = CmpOp::kGt; break;
            case CmpOp::kGt: op = CmpOp::kLe; break;
            case CmpOp::kGe: op = CmpOp::kLt; break;
          }
        }
        std::optional<Value> v;
        if (col) v = constValue(*constSide);
        ColumnType ct = col ? table.schema().column(*col).type
                            : ColumnType::kString;
        if (col && v && ct != ColumnType::kString) {
          auto holds = [](CmpOp o, int c) {
            switch (o) {
              case CmpOp::kEq: return c == 0;
              case CmpOp::kNe: return c != 0;
              case CmpOp::kLt: return c < 0;
              case CmpOp::kLe: return c <= 0;
              case CmpOp::kGt: return c > 0;
              case CmpOp::kGe: return c >= 0;
            }
            return false;
          };
          if (v->isNull()) {
            pushNever();  // col <op> NULL is NULL for every row
          } else if (v->isString()) {
            // Numeric vs string compares by type rank: numeric < string,
            // constantly, for every non-null row.
            pushConstTruth(*col, holds(op, -1));
          } else if (v->isDouble() && std::isnan(v->asDouble())) {
            // compare() yields 0 against NaN for every value.
            pushConstTruth(*col, holds(op, 0));
          } else {
            Kernel k;
            k.kind = Kind::kCmp;
            k.col = *col;
            k.colType = ct;
            k.op = op;
            k.lo = makeBound(*v);
            sf.kernels_.push_back(std::move(k));
          }
          compiled = true;
        }
      }
    } else if (e->kind() == ExprKind::kBetween) {
      const auto* bt = static_cast<const BetweenExpr*>(e);
      bool neg = negated != bt->negated;
      auto col = ownColumn(*bt->expr);
      ColumnType ct = col ? table.schema().column(*col).type
                          : ColumnType::kString;
      std::optional<Value> lo, hi;
      if (col && ct != ColumnType::kString) {
        lo = constValue(*bt->lo);
        hi = constValue(*bt->hi);
      }
      if (lo && hi) {
        if (lo->isNull() || hi->isNull()) {
          pushNever();  // any NULL bound makes BETWEEN NULL, negated or not
        } else {
          // Reduce each side to: constant truth, or a real numeric bound.
          // `v >= lo` with a string lo is constantly false (numeric < string);
          // with a NaN lo it is constantly true (compare yields 0).
          auto sideTruth = [](const Value& bound,
                              bool isLow) -> std::optional<bool> {
            if (bound.isString()) return isLow ? false : true;
            if (bound.isDouble() && std::isnan(bound.asDouble())) return true;
            return std::nullopt;
          };
          std::optional<bool> loT = sideTruth(*lo, true);
          std::optional<bool> hiT = sideTruth(*hi, false);
          if ((loT && !*loT) || (hiT && !*hiT)) {
            pushConstTruth(*col, neg);  // `in` is constantly false
          } else if (loT && hiT) {
            pushConstTruth(*col, !neg);  // `in` is constantly true
          } else if (loT || hiT) {
            // One real side remains: v >= lo  or  v <= hi.
            Kernel k;
            k.kind = Kind::kCmp;
            k.col = *col;
            k.colType = ct;
            if (hiT) {
              k.op = neg ? CmpOp::kLt : CmpOp::kGe;
              k.lo = makeBound(*lo);
            } else {
              k.op = neg ? CmpOp::kGt : CmpOp::kLe;
              k.lo = makeBound(*hi);
            }
            sf.kernels_.push_back(std::move(k));
          } else if (lo->compare(*hi) > 0) {
            pushConstTruth(*col, neg);  // empty range: `in` constantly false
          } else {
            Kernel k;
            k.kind = Kind::kBetween;
            k.col = *col;
            k.colType = ct;
            k.negated = neg;
            k.lo = makeBound(*lo);
            k.hi = makeBound(*hi);
            sf.kernels_.push_back(std::move(k));
          }
        }
        compiled = true;
      }
    } else if (e->kind() == ExprKind::kIn) {
      const auto* in = static_cast<const InExpr*>(e);
      bool neg = negated != in->negated;
      auto col = ownColumn(*in->expr);
      ColumnType ct = col ? table.schema().column(*col).type
                          : ColumnType::kString;
      if (col && ct != ColumnType::kString) {
        std::vector<Value> items;
        bool allConst = true;
        for (const auto& item : in->list) {
          auto v = constValue(*item);
          if (!v) {
            allConst = false;
            break;
          }
          items.push_back(std::move(*v));
        }
        if (allConst) {
          bool sawNull = false, sawNaN = false;
          std::vector<NumBound> set;
          for (const Value& v : items) {
            if (v.isNull()) {
              sawNull = true;
            } else if (v.isDouble() && std::isnan(v.asDouble())) {
              sawNaN = true;  // compare() matches NaN against everything
            } else if (v.isNumeric()) {
              set.push_back(makeBound(v));
            }
            // String items never match a numeric column value.
          }
          if (sawNaN) {
            // Every non-null row "matches" the NaN item.
            pushConstTruth(*col, !neg);
          } else if (neg && sawNull) {
            // NOT IN with a NULL item is never true: a non-match yields NULL.
            pushNever();
          } else if (set.empty()) {
            // No numeric item can match. IN: non-match is false (or NULL
            // with a NULL item) — never keeps. NOT IN: a NULL item was
            // handled above, so a non-match is plainly true.
            pushConstTruth(*col, neg);
          } else {
            Kernel k;
            k.kind = Kind::kIn;
            k.col = *col;
            k.colType = ct;
            k.negated = neg;
            k.set = std::move(set);
            sf.kernels_.push_back(std::move(k));
          }
          compiled = true;
        }
      }
    } else if (e->kind() == ExprKind::kIsNull) {
      const auto* n = static_cast<const IsNullExpr*>(e);
      auto col = ownColumn(*n->expr);
      if (col) {
        pushIsNull(*col, negated != n->negated);
        compiled = true;
      }
    }

    if (!compiled) sf.residuals_.push_back(ci);
  }

  sf.order_.resize(sf.kernels_.size());
  for (std::size_t i = 0; i < sf.order_.size(); ++i) sf.order_[i] = i;
  for (const auto& k : sf.kernels_) {
    if (k.kind == Kind::kNever) continue;
    if (std::find(sf.columns_.begin(), sf.columns_.end(), k.col) ==
        sf.columns_.end()) {
      sf.columns_.push_back(k.col);
    }
  }
  return sf;
}

// -------------------------------------------------------------- evaluation

namespace {

template <typename Pred>
std::size_t filterWith(const std::vector<std::uint8_t>& nulls,
                       std::uint32_t* sel, std::size_t n, Pred pred) {
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t r = sel[i];
    sel[m] = r;
    m += (!nulls[r] && pred(r)) ? 1 : 0;
  }
  return m;
}

}  // namespace

std::size_t ScanFilter::filterBlock(const Table& table, const Kernel& k,
                                    std::uint32_t* sel, std::size_t n) const {
  const auto& nulls = table.nullMask(k.col);
  switch (k.kind) {
    case Kind::kNever:
      return 0;
    case Kind::kIsNull: {
      bool wantNull = !k.negated;
      std::size_t m = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t r = sel[i];
        sel[m] = r;
        m += ((nulls[r] != 0) == wantNull) ? 1 : 0;
      }
      return m;
    }
    case Kind::kCmp: {
      if (k.colType == ColumnType::kInt && k.lo.isInt) {
        const auto& v = table.intColumn(k.col);
        const std::int64_t c = k.lo.i;
        switch (k.op) {
          case CmpOp::kEq:
            return filterWith(nulls, sel, n, [&](auto r) { return v[r] == c; });
          case CmpOp::kNe:
            return filterWith(nulls, sel, n, [&](auto r) { return v[r] != c; });
          case CmpOp::kLt:
            return filterWith(nulls, sel, n, [&](auto r) { return v[r] < c; });
          case CmpOp::kLe:
            return filterWith(nulls, sel, n, [&](auto r) { return v[r] <= c; });
          case CmpOp::kGt:
            return filterWith(nulls, sel, n, [&](auto r) { return v[r] > c; });
          case CmpOp::kGe:
            return filterWith(nulls, sel, n, [&](auto r) { return v[r] >= c; });
        }
        return 0;
      }
      // Any double involved: compare through doubles exactly as
      // Value::compare does (note the !(a<b)&&!(a>b) equality form — NaN
      // column values compare equal to everything, by design).
      const double c = k.lo.d;
      auto value = [&](std::uint32_t r) -> double {
        return k.colType == ColumnType::kInt
                   ? static_cast<double>(table.intColumn(k.col)[r])
                   : table.doubleColumn(k.col)[r];
      };
      switch (k.op) {
        case CmpOp::kEq:
          return filterWith(nulls, sel, n, [&](auto r) {
            double a = value(r);
            return !(a < c) && !(a > c);
          });
        case CmpOp::kNe:
          return filterWith(nulls, sel, n, [&](auto r) {
            double a = value(r);
            return (a < c) || (a > c);
          });
        case CmpOp::kLt:
          return filterWith(nulls, sel, n,
                            [&](auto r) { return value(r) < c; });
        case CmpOp::kLe:
          return filterWith(nulls, sel, n,
                            [&](auto r) { return !(value(r) > c); });
        case CmpOp::kGt:
          return filterWith(nulls, sel, n,
                            [&](auto r) { return value(r) > c; });
        case CmpOp::kGe:
          return filterWith(nulls, sel, n,
                            [&](auto r) { return !(value(r) < c); });
      }
      return 0;
    }
    case Kind::kBetween: {
      auto inRange = [&](std::uint32_t r) {
        bool ge, le;
        if (k.colType == ColumnType::kInt) {
          std::int64_t v = table.intColumn(k.col)[r];
          ge = k.lo.isInt ? (v >= k.lo.i)
                          : !(static_cast<double>(v) < k.lo.d);
          le = k.hi.isInt ? (v <= k.hi.i)
                          : !(static_cast<double>(v) > k.hi.d);
        } else {
          double v = table.doubleColumn(k.col)[r];
          ge = !(v < k.lo.d);
          le = !(v > k.hi.d);
        }
        return ge && le;
      };
      if (k.negated) {
        return filterWith(nulls, sel, n,
                          [&](auto r) { return !inRange(r); });
      }
      return filterWith(nulls, sel, n, inRange);
    }
    case Kind::kIn: {
      auto matches = [&](std::uint32_t r) {
        if (k.colType == ColumnType::kInt) {
          std::int64_t v = table.intColumn(k.col)[r];
          for (const NumBound& b : k.set) {
            if (b.isInt ? (v == b.i) : dEq(static_cast<double>(v), b.d)) {
              return true;
            }
          }
        } else {
          double v = table.doubleColumn(k.col)[r];
          for (const NumBound& b : k.set) {
            if (dEq(v, b.d)) return true;
          }
        }
        return false;
      };
      if (k.negated) {
        return filterWith(nulls, sel, n,
                          [&](auto r) { return !matches(r); });
      }
      return filterWith(nulls, sel, n, matches);
    }
  }
  return 0;
}

bool ScanFilter::kernelPrunes(const Table& table, const Kernel& k) const {
  if (k.kind == Kind::kNever) return true;
  const ZoneMap& z = table.zoneMap(k.col);
  const std::size_t numRows = table.numRows();
  if (k.kind == Kind::kIsNull) {
    return k.negated ? (z.nullCount == numRows) : (z.nullCount == 0);
  }
  // Value kernels: all-NULL columns never satisfy them.
  if (z.nullCount == numRows) return true;
  // Range reasoning needs a trustworthy [min,max]: NaN values never enter it
  // (and compare equal to everything), so their presence disables pruning.
  if (!z.hasValue) return false;
  if (k.colType == ColumnType::kDouble && z.hasNaN) return false;

  const bool intDomain = k.colType == ColumnType::kInt;
  const std::int64_t iMin = z.intMin, iMax = z.intMax;
  const double dMin = intDomain ? static_cast<double>(z.intMin) : z.dblMin;
  const double dMax = intDomain ? static_cast<double>(z.intMax) : z.dblMax;
  // Per-side checks in the same numeric domain the row comparison uses:
  // exact int64 when both column and bound are ints, doubles otherwise.
  auto allBelow = [&](const NumBound& b) {  // zoneMax < b
    return (intDomain && b.isInt) ? (iMax < b.i) : (dMax < b.d);
  };
  auto allAbove = [&](const NumBound& b) {  // zoneMin > b
    return (intDomain && b.isInt) ? (iMin > b.i) : (dMin > b.d);
  };
  auto allAtLeast = [&](const NumBound& b) {  // zoneMin >= b
    return (intDomain && b.isInt) ? (iMin >= b.i) : !(dMin < b.d);
  };
  auto allAtMost = [&](const NumBound& b) {  // zoneMax <= b
    return (intDomain && b.isInt) ? (iMax <= b.i) : !(dMax > b.d);
  };
  auto singleValueEquals = [&](const NumBound& b) {
    if (intDomain) {
      if (iMin != iMax) return false;
      return b.isInt ? (iMin == b.i) : dEq(static_cast<double>(iMin), b.d);
    }
    return dEq(dMin, dMax) && dEq(dMin, b.d);
  };

  switch (k.kind) {
    case Kind::kCmp:
      switch (k.op) {
        case CmpOp::kEq: return allBelow(k.lo) || allAbove(k.lo);
        case CmpOp::kNe: return singleValueEquals(k.lo);
        case CmpOp::kLt: return allAtLeast(k.lo);
        case CmpOp::kLe: return allAbove(k.lo);
        case CmpOp::kGt: return allAtMost(k.lo);
        case CmpOp::kGe: return allBelow(k.lo);
      }
      return false;
    case Kind::kBetween:
      if (k.negated) {
        // Rows pass when outside [lo,hi]; a zone fully inside never does.
        return allAtLeast(k.lo) && allAtMost(k.hi);
      }
      return allBelow(k.lo) || allAbove(k.hi);
    case Kind::kIn: {
      if (k.negated) {
        for (const NumBound& b : k.set) {
          if (singleValueEquals(b)) return true;
        }
        return false;
      }
      for (const NumBound& b : k.set) {
        if (!(allBelow(b) || allAbove(b))) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

bool ScanFilter::prunes(const Table& table) const {
  if (table.numRows() == 0) return false;
  for (const Kernel& k : kernels_) {
    if (kernelPrunes(table, k)) return true;
  }
  return false;
}

std::size_t ScanFilter::runBlocks(const Table& table,
                                  std::vector<std::size_t>* out) {
  constexpr std::size_t kBlock = 4096;
  const std::size_t numRows = table.numRows();
  std::size_t total = 0;
  sel_.resize(kBlock);
  for (std::size_t base = 0; base < numRows; base += kBlock) {
    std::size_t n = std::min(kBlock, numRows - base);
    for (std::size_t i = 0; i < n; ++i) {
      sel_[i] = static_cast<std::uint32_t>(base + i);
    }
    for (std::size_t idx : order_) {
      Kernel& k = kernels_[idx];
      k.seen += n;
      n = filterBlock(table, k, sel_.data(), n);
      k.passed += n;
      if (n == 0) break;
    }
    if (out != nullptr) {
      for (std::size_t i = 0; i < n; ++i) out->push_back(sel_[i]);
    }
    total += n;
    // Adaptive ordering: run the most selective kernel (lowest observed pass
    // rate) first on the next block.
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       const Kernel& ka = kernels_[a];
                       const Kernel& kb = kernels_[b];
                       double ra = static_cast<double>(ka.passed + 1) /
                                   static_cast<double>(ka.seen + 1);
                       double rb = static_cast<double>(kb.passed + 1) /
                                   static_cast<double>(kb.seen + 1);
                       return ra < rb;
                     });
  }
  return total;
}

void ScanFilter::run(const Table& table, std::vector<std::size_t>& out) {
  runBlocks(table, &out);
}

std::size_t ScanFilter::count(const Table& table) {
  return runBlocks(table, nullptr);
}

}  // namespace qserv::sql
