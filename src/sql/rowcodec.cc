#include "sql/rowcodec.h"

#include <cstring>

#include "util/strings.h"

namespace qserv::sql {

namespace {

void putU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool take(void* out, std::size_t n) {
    if (pos_ + n > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool u8(std::uint8_t& v) { return take(&v, 1); }
  bool u16(std::uint16_t& v) {
    std::uint8_t b[2];
    if (!take(b, 2)) return false;
    v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint8_t b[4];
    if (!take(b, 4)) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
    return true;
  }
  bool u64(std::uint64_t& v) {
    std::uint8_t b[8];
    if (!take(b, 8)) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return true;
  }
  bool str(std::string& out, std::size_t n) {
    if (pos_ + n > data_.size()) return false;
    out.assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

bool isBinaryTablePayload(std::string_view payload) {
  return payload.size() >= kRowCodecMagic.size() &&
         payload.substr(0, kRowCodecMagic.size()) == kRowCodecMagic;
}

std::string encodeTableBinary(const Table& table,
                              const std::string& targetName) {
  std::string out;
  out.reserve(64 + table.numRows() * table.numColumns() * 9);
  out.append(kRowCodecMagic);
  putU16(out, static_cast<std::uint16_t>(targetName.size()));
  out.append(targetName);
  putU16(out, static_cast<std::uint16_t>(table.numColumns()));
  for (std::size_t c = 0; c < table.numColumns(); ++c) {
    const ColumnDef& col = table.schema().column(c);
    std::uint8_t type = col.type == ColumnType::kInt      ? 0
                        : col.type == ColumnType::kDouble ? 1
                                                          : 2;
    out.push_back(static_cast<char>(type));
    putU16(out, static_cast<std::uint16_t>(col.name.size()));
    out.append(col.name);
  }
  putU64(out, table.numRows());
  for (std::size_t r = 0; r < table.numRows(); ++r) {
    for (std::size_t c = 0; c < table.numColumns(); ++c) {
      Value v = table.cell(r, c);
      out.push_back(v.isNull() ? 1 : 0);
      if (v.isNull()) continue;
      switch (table.schema().column(c).type) {
        case ColumnType::kInt: {
          putU64(out, static_cast<std::uint64_t>(v.asInt()));
          break;
        }
        case ColumnType::kDouble: {
          double d = v.toDouble();
          std::uint64_t bits;
          std::memcpy(&bits, &d, 8);
          putU64(out, bits);
          break;
        }
        case ColumnType::kString: {
          putU32(out, static_cast<std::uint32_t>(v.asString().size()));
          out.append(v.asString());
          break;
        }
      }
    }
  }
  return out;
}

util::Result<TablePtr> loadBinaryTable(Database& db,
                                       std::string_view payload) {
  if (!isBinaryTablePayload(payload)) {
    return util::Status::invalidArgument("not a binary table payload");
  }
  Reader reader(payload.substr(kRowCodecMagic.size()));
  auto corrupt = [] {
    return util::Status::invalidArgument("truncated binary table payload");
  };

  std::uint16_t nameLen = 0;
  std::string name;
  if (!reader.u16(nameLen) || !reader.str(name, nameLen)) return corrupt();
  std::uint16_t ncols = 0;
  if (!reader.u16(ncols)) return corrupt();
  Schema schema;
  for (std::uint16_t c = 0; c < ncols; ++c) {
    std::uint8_t type = 0;
    std::uint16_t len = 0;
    std::string colName;
    if (!reader.u8(type) || !reader.u16(len) || !reader.str(colName, len)) {
      return corrupt();
    }
    if (type > 2) {
      return util::Status::invalidArgument("unknown column type in payload");
    }
    ColumnType t = type == 0   ? ColumnType::kInt
                   : type == 1 ? ColumnType::kDouble
                               : ColumnType::kString;
    schema.addColumn(ColumnDef{std::move(colName), t});
  }
  std::uint64_t nrows = 0;
  if (!reader.u64(nrows)) return corrupt();

  auto table = std::make_shared<Table>(name, schema);
  // Decode into batches and bulk-append: one type-check + reserve pass per
  // batch instead of per-row appendRow overhead.
  constexpr std::size_t kBatchRows = 4096;
  std::vector<std::vector<Value>> batch;
  batch.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
      nrows, kBatchRows)));
  std::vector<Value> row(schema.numColumns());
  for (std::uint64_t r = 0; r < nrows; ++r) {
    for (std::size_t c = 0; c < schema.numColumns(); ++c) {
      std::uint8_t null = 0;
      if (!reader.u8(null)) return corrupt();
      if (null) {
        row[c] = Value::null();
        continue;
      }
      switch (schema.column(c).type) {
        case ColumnType::kInt: {
          std::uint64_t v = 0;
          if (!reader.u64(v)) return corrupt();
          row[c] = Value(static_cast<std::int64_t>(v));
          break;
        }
        case ColumnType::kDouble: {
          std::uint64_t bits = 0;
          if (!reader.u64(bits)) return corrupt();
          double d;
          std::memcpy(&d, &bits, 8);
          row[c] = Value(d);
          break;
        }
        case ColumnType::kString: {
          std::uint32_t len = 0;
          std::string s;
          if (!reader.u32(len) || !reader.str(s, len)) return corrupt();
          row[c] = Value(std::move(s));
          break;
        }
      }
    }
    batch.push_back(std::move(row));
    row.assign(schema.numColumns(), Value());
    if (batch.size() == kBatchRows) {
      QSERV_RETURN_IF_ERROR(table->appendRows(batch));
      batch.clear();
    }
  }
  if (!batch.empty()) QSERV_RETURN_IF_ERROR(table->appendRows(batch));
  QSERV_RETURN_IF_ERROR(db.dropTable(name, /*ifExists=*/true));
  QSERV_RETURN_IF_ERROR(db.registerTable(table));
  return table;
}

}  // namespace qserv::sql
