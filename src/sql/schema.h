/// \file schema.h
/// \brief Column and table schema descriptions.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sql/value.h"

namespace qserv::sql {

/// Declared column type. Values are still dynamically typed; the declared
/// type selects columnar storage and dump rendering.
enum class ColumnType { kInt, kDouble, kString };

const char* columnTypeName(ColumnType t);

/// Declared type matching a runtime value type (NULL matches any).
bool valueMatches(ColumnType t, const Value& v);

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kDouble;

  bool operator==(const ColumnDef&) const = default;
};

/// Ordered list of columns with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  std::size_t numColumns() const { return columns_.size(); }
  const ColumnDef& column(std::size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  void addColumn(ColumnDef def) { columns_.push_back(std::move(def)); }

  /// Index of column \p name (case-insensitive), or nullopt.
  std::optional<std::size_t> indexOf(std::string_view name) const;

  /// "(`a` BIGINT, `b` DOUBLE)" — CREATE TABLE column list.
  std::string toSql() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace qserv::sql
