#include "sql/index.h"

namespace qserv::sql {

OrderedIndex::OrderedIndex(const Table& table, std::size_t col) {
  for (std::size_t r = 0; r < table.numRows(); ++r) {
    insert(table.cell(r, col), r);
  }
}

void OrderedIndex::insert(const Value& key, std::size_t row) {
  if (key.isNull()) return;  // NULL keys are unreachable via = / BETWEEN
  map_.emplace(key, row);
}

std::vector<std::size_t> OrderedIndex::lookup(const Value& key) const {
  std::vector<std::size_t> out;
  if (key.isNull()) return out;
  auto [lo, hi] = map_.equal_range(key);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

std::vector<std::size_t> OrderedIndex::lookupRange(const Value& lo,
                                                   const Value& hi) const {
  std::vector<std::size_t> out;
  if (lo.isNull() || hi.isNull()) return out;
  auto begin = map_.lower_bound(lo);
  auto end = map_.upper_bound(hi);
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  return out;
}

}  // namespace qserv::sql
