/// \file value.h
/// \brief Runtime SQL values: NULL, 64-bit integer, double, string.
///
/// These are the cell values flowing through the expression evaluator and
/// executor of the embedded SQL engine (the MySQL substitute, see DESIGN.md).
/// Numeric comparisons and arithmetic follow MySQL-like coercion: int op
/// double -> double; NULL propagates through arithmetic and comparisons
/// (three-valued logic collapses to "not true" at filter boundaries).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/status.h"

namespace qserv::sql {

enum class ValueType { kNull = 0, kInt, kDouble, kString };

const char* valueTypeName(ValueType t);

class Value {
 public:
  /// NULL.
  Value() : v_(std::monostate{}) {}
  Value(std::int64_t i) : v_(i) {}          // NOLINT(google-explicit-constructor)
  Value(int i) : v_(std::int64_t{i}) {}     // NOLINT(google-explicit-constructor)
  Value(double d) : v_(d) {}                // NOLINT(google-explicit-constructor)
  Value(std::string s) : v_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* s) : v_(std::string(s)) {}  // NOLINT(google-explicit-constructor)
  Value(bool) = delete;  // booleans are represented as int 0/1 explicitly

  static Value null() { return Value(); }
  static Value boolean(bool b) { return Value(std::int64_t{b ? 1 : 0}); }

  ValueType type() const {
    return static_cast<ValueType>(v_.index());
  }
  bool isNull() const { return type() == ValueType::kNull; }
  bool isInt() const { return type() == ValueType::kInt; }
  bool isDouble() const { return type() == ValueType::kDouble; }
  bool isString() const { return type() == ValueType::kString; }
  bool isNumeric() const { return isInt() || isDouble(); }

  /// Integer payload. Precondition: isInt().
  std::int64_t asInt() const { return std::get<std::int64_t>(v_); }
  /// Double payload. Precondition: isDouble().
  double asDouble() const { return std::get<double>(v_); }
  /// String payload. Precondition: isString().
  const std::string& asString() const { return std::get<std::string>(v_); }

  /// Numeric value as double (int widened). Precondition: isNumeric().
  double toDouble() const {
    return isInt() ? static_cast<double>(asInt()) : asDouble();
  }

  /// SQL truthiness: non-zero numeric. NULL and strings are not true.
  bool isTrue() const {
    if (isInt()) return asInt() != 0;
    if (isDouble()) return asDouble() != 0.0;
    return false;
  }

  /// Three-way comparison for ORDER BY / index keys: NULL sorts first,
  /// numerics compare numerically across int/double, strings lexically.
  /// Cross-type (string vs numeric) compares by type rank. Returns -1/0/1.
  int compare(const Value& other) const;

  /// SQL equality (used by = and hash joins). NULL never equals anything.
  bool sqlEquals(const Value& other) const {
    if (isNull() || other.isNull()) return false;
    return compare(other) == 0;
  }

  /// Exact structural equality (NULL == NULL), for tests and dedup.
  bool operator==(const Value& other) const;

  /// SQL literal rendering: NULL, 42, 1.5e10, 'escaped ''string'''.
  /// Doubles round-trip exactly (%.17g).
  std::string toSqlLiteral() const;

  /// Human-readable rendering (no quotes on strings).
  std::string toDisplayString() const;

  /// Hash consistent with sqlEquals for non-null values (int 2.0 == 2).
  std::size_t hash() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> v_;
};

}  // namespace qserv::sql
