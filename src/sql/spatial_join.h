/// \file spatial_join.h
/// \brief Zone-based spatial join for the near-neighbor hot path.
///
/// The paper's heaviest query shape (§6.2, SHV1/SHV2) is the spatial
/// near-neighbor join `qserv_angSep(ra1, dec1, ra2, dec2) < r` between two
/// subchunk tables. Evaluated as a nested loop it is O(n^2); the zones
/// algorithm (Nieto-Santisteban, Szalay & Gray, "Large-Scale Query and
/// XMatch, Entering the Parallel Zone") buckets the inner side by declination
/// band of height r, so each outer row probes only the zones intersecting
/// [dec - r, dec + r] and, within a zone, only the RA interval
/// [ra - w, ra + w] where w widens with 1/cos(dec) toward the poles (see
/// sphgeom::raSearchWindowDeg; it clamps to 180 at the poles and the probe
/// wraps across 0/360).
///
/// The window is a strict superset of the true matches, so the executor
/// applies the exact `sphgeom::angSepDeg` comparison as a residual to every
/// candidate pair — results are bit-identical to the nested loop, which
/// remains the fallback for conjuncts this detector does not recognize.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sql/ast.h"
#include "sql/expr_eval.h"
#include "sql/functions.h"
#include "sql/table.h"
#include "util/status.h"

namespace qserv::sql {

/// Process-wide switch for the zone-join path (default on). Benches and
/// parity tests flip it to compare against the nested-loop baseline.
void setSpatialJoinEnabled(bool enabled);
bool spatialJoinEnabled();

/// A recognized near-neighbor conjunct
///   qserv_angSep(ra1, dec1, ra2, dec2) < r     (also <=, and the mirrored
///   r > qserv_angSep(...), r >= ...; scisql_angSep is an alias)
/// where r const-folds to a finite double, one coordinate pair references
/// only already-joined tables (< stage) and the other references exactly the
/// stage table.
struct SpatialJoinSpec {
  const Expr* conjunct = nullptr;  ///< the whole comparison, for exclusion
  const Expr* outerRa = nullptr;   ///< pair bound to tables < stage
  const Expr* outerDec = nullptr;
  const Expr* innerRa = nullptr;   ///< pair bound to exactly the stage table
  const Expr* innerDec = nullptr;
  bool innerIsFirstPair = false;   ///< inner pair is args[0..1] of the call
  double radiusDeg = 0.0;
  bool inclusive = false;          ///< <= rather than <

  /// Exact residual: does a pair at these coordinates match? Evaluates
  /// angSepDeg in the call's original argument order so the result is
  /// bit-identical to the scalar expression path.
  bool matches(double outerRaV, double outerDecV, double innerRaV,
               double innerDecV) const;
};

/// Try to recognize \p conjunct as a near-neighbor join usable at join stage
/// \p stageTable. Returns nullopt for any other shape (including coordinate
/// pairs that mix tables, an un-foldable radius, or a NULL/string radius —
/// those fall back to the nested loop). Never fails on shape; only internal
/// resolution errors surface as a status.
util::Result<std::optional<SpatialJoinSpec>> matchSpatialJoin(
    const Expr& conjunct, std::span<const ScopeTable> scope,
    std::size_t stageTable, const FunctionRegistry& registry);

/// Declination-banded index over the stage table's candidate rows.
///
/// Entries are sorted by (zone, normalized ra) so a probe touches at most
/// three zones (zone height == radius) and binary-searches one or two RA
/// intervals per zone. Rows whose coordinates are NULL or non-finite are
/// dropped at build time — they can never satisfy the exact residual (NULL
/// never joins, matching the hash-join convention).
class ZoneIndex {
 public:
  struct Entry {
    double raNorm;  ///< normalized to [0, 360) for window search
    double raOrig;  ///< original value, for the bit-exact residual
    double dec;
    std::uint32_t row;  ///< row id in the stage table
  };

  /// Build over \p candidateRows of the stage table. Coordinates come
  /// straight from columnar storage when the inner expressions are plain
  /// DOUBLE/INT column references; otherwise they are evaluated through the
  /// scalar expression path once per candidate row.
  static util::Result<ZoneIndex> build(
      const SpatialJoinSpec& spec, std::span<const ScopeTable> scope,
      std::size_t stageTable, std::span<const Table* const> tables,
      std::span<const std::size_t> candidateRows,
      const FunctionRegistry& registry);

  std::size_t numZones() const { return zoneIds_.size(); }
  std::size_t numEntries() const { return entries_.size(); }
  const Entry& entry(std::size_t i) const { return entries_[i]; }

  /// Append to \p out the entry indices whose zone and RA window contain the
  /// probe point — a superset of the rows within the radius of
  /// (raDeg, decDeg). Increments \p zonesProbed per zone bucket inspected.
  /// Non-finite probe coordinates yield no candidates.
  void probe(double raDeg, double decDeg, std::vector<std::uint32_t>& out,
             std::uint64_t& zonesProbed) const;

 private:
  /// Zone of a declination; bands of height_ degrees starting at dec -90.
  std::int64_t zoneOf(double dec) const;
  /// Entries of zone \p id with raNorm in [lo, hi], appended to \p out.
  void scanZoneRange(std::size_t zoneIdx, double lo, double hi,
                     std::vector<std::uint32_t>& out) const;

  double height_ = 1.0;      ///< zone height in degrees (== search radius)
  double searchRadius_ = 0;  ///< radius + epsilon pad (superset guarantee)
  /// Zoned entries first (sorted by zone, then raNorm), then entries whose
  /// declination falls outside [-90, 90] — those are checked on every probe
  /// because the dec-band bound does not hold for them.
  std::vector<Entry> entries_;
  std::size_t zonedCount_ = 0;
  std::vector<std::int64_t> zoneIds_;      // ascending, unique
  std::vector<std::size_t> zoneBegin_;     // size numZones()+1, into entries_
};

}  // namespace qserv::sql
