/// \file index.h
/// \brief Ordered secondary index over one column of a table.
///
/// The paper limits worker-side indexing to objectId (§4.3, §5.5): chunk
/// tables are indexed by objectId so point queries on the containing chunk
/// use indexed execution instead of a scan. This is that index.
#pragma once

#include <map>
#include <vector>

#include "sql/table.h"

namespace qserv::sql {

class OrderedIndex {
 public:
  OrderedIndex() = default;

  /// Build over \p table's column \p col (all current rows).
  OrderedIndex(const Table& table, std::size_t col);

  void insert(const Value& key, std::size_t row);

  /// Rows whose key equals \p key (sqlEquals semantics; NULL matches none).
  std::vector<std::size_t> lookup(const Value& key) const;

  /// Rows with lo <= key <= hi (inclusive).
  std::vector<std::size_t> lookupRange(const Value& lo, const Value& hi) const;

  std::size_t size() const { return map_.size(); }

 private:
  struct Cmp {
    bool operator()(const Value& a, const Value& b) const {
      return a.compare(b) < 0;
    }
  };
  std::multimap<Value, std::size_t, Cmp> map_;
};

}  // namespace qserv::sql
