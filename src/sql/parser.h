/// \file parser.h
/// \brief Recursive-descent SQL parser.
///
/// Covers the dialect Qserv needs (paper §5.3, §6.2): SELECT with expressions,
/// aliases, comma joins and INNER JOIN..ON, WHERE with AND/OR/NOT, BETWEEN,
/// IN, IS [NOT] NULL, arithmetic and function calls (including the
/// qserv_areaspec_box pseudo-function), GROUP BY / ORDER BY / LIMIT, plus the
/// DDL/DML needed by workers and the result merger: CREATE TABLE (schema or
/// AS SELECT), INSERT .. VALUES / INSERT .. SELECT, DROP TABLE.
/// SQL subqueries are unsupported, matching the paper.
#pragma once

#include <string_view>
#include <vector>

#include "sql/ast.h"
#include "util/status.h"

namespace qserv::sql {

/// Parse exactly one statement (a trailing semicolon is allowed).
util::Result<Statement> parseStatement(std::string_view sql);

/// Parse a semicolon-separated script; empty statements are skipped.
util::Result<std::vector<Statement>> parseScript(std::string_view sql);

/// Parse one statement that must be a SELECT.
util::Result<SelectStmt> parseSelect(std::string_view sql);

/// Parse a standalone scalar/boolean expression (for tests and tools).
util::Result<ExprPtr> parseExpression(std::string_view sql);

}  // namespace qserv::sql
