#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace qserv::sql {

bool Token::is(std::string_view keyword) const {
  return type == TokenType::kIdentifier && util::iequals(text, keyword);
}

namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

util::Result<std::vector<Token>> tokenize(std::string_view sql) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = sql.size();

  auto push = [&](TokenType t, std::size_t off, std::string text = {}) {
    Token tok;
    tok.type = t;
    tok.text = std::move(text);
    tok.offset = off;
    out.push_back(std::move(tok));
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      std::size_t end = sql.find("*/", i + 2);
      if (end == std::string_view::npos) {
        return util::Status::invalidArgument(
            util::format("unterminated block comment at offset %zu", i));
      }
      i = end + 2;
      continue;
    }
    std::size_t start = i;
    // Identifiers and keywords.
    if (isIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < n && isIdentChar(sql[j])) ++j;
      push(TokenType::kIdentifier, start, std::string(sql.substr(i, j - i)));
      i = j;
      continue;
    }
    // Backquoted identifiers.
    if (c == '`') {
      std::size_t end = sql.find('`', i + 1);
      if (end == std::string_view::npos) {
        return util::Status::invalidArgument(
            util::format("unterminated quoted identifier at offset %zu", i));
      }
      push(TokenType::kIdentifier, start,
           std::string(sql.substr(i + 1, end - i - 1)));
      i = end + 1;
      continue;
    }
    // String literals with '' and \' escapes.
    if (c == '\'') {
      std::string text;
      std::size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\\' && j + 1 < n) {
          text.push_back(sql[j + 1]);
          j += 2;
          continue;
        }
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return util::Status::invalidArgument(
            util::format("unterminated string literal at offset %zu", i));
      }
      Token tok;
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      tok.offset = start;
      out.push_back(std::move(tok));
      i = j;
      continue;
    }
    // Numbers: 123, 1.5, .5, 1e-3, 0.5e10. A leading +/- is a separate
    // operator token (the parser folds unary minus).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::size_t j = i;
      bool isDouble = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        isDouble = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(sql[k]))) {
          isDouble = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
        }
      }
      std::string text(sql.substr(i, j - i));
      Token tok;
      tok.offset = start;
      tok.text = text;
      if (isDouble) {
        tok.type = TokenType::kDouble;
        tok.doubleValue = std::strtod(text.c_str(), nullptr);
      } else {
        errno = 0;
        char* endp = nullptr;
        long long v = std::strtoll(text.c_str(), &endp, 10);
        if (errno == ERANGE) {
          // Out-of-range integer literal degrades to double, like MySQL.
          tok.type = TokenType::kDouble;
          tok.doubleValue = std::strtod(text.c_str(), nullptr);
        } else {
          tok.type = TokenType::kInt;
          tok.intValue = v;
        }
      }
      out.push_back(std::move(tok));
      i = j;
      continue;
    }
    // Operators and punctuation.
    switch (c) {
      case ',': push(TokenType::kComma, start); ++i; continue;
      case '.': push(TokenType::kDot, start); ++i; continue;
      case ';': push(TokenType::kSemicolon, start); ++i; continue;
      case '(': push(TokenType::kLParen, start); ++i; continue;
      case ')': push(TokenType::kRParen, start); ++i; continue;
      case '*': push(TokenType::kStar, start); ++i; continue;
      case '+': push(TokenType::kPlus, start); ++i; continue;
      case '-': push(TokenType::kMinus, start); ++i; continue;
      case '/': push(TokenType::kSlash, start); ++i; continue;
      case '%': push(TokenType::kPercent, start); ++i; continue;
      case '=': push(TokenType::kEq, start); ++i; continue;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kNe, start);
          i += 2;
          continue;
        }
        return util::Status::invalidArgument(
            util::format("stray '!' at offset %zu", i));
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kLe, start);
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          push(TokenType::kLt, start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(TokenType::kGe, start);
          i += 2;
        } else {
          push(TokenType::kGt, start);
          ++i;
        }
        continue;
      default:
        return util::Status::invalidArgument(util::format(
            "unexpected character '%c' (0x%02x) at offset %zu", c,
            static_cast<unsigned char>(c), i));
    }
  }
  push(TokenType::kEnd, n);
  return out;
}

}  // namespace qserv::sql
