#include "sql/expr_eval.h"

#include <cmath>

#include "util/strings.h"

namespace qserv::sql {

namespace {

using util::Result;
using util::Status;

// Three-valued truth.
enum class Truth { kFalse, kTrue, kNull };

Truth truthOf(const Value& v) {
  if (v.isNull()) return Truth::kNull;
  return v.isTrue() ? Truth::kTrue : Truth::kFalse;
}

class ConstNode final : public CompiledExpr {
 public:
  explicit ConstNode(Value v) : value_(std::move(v)) {}
  Value eval(const EvalCtx&) const override { return value_; }

 private:
  Value value_;
};

class ColumnNode final : public CompiledExpr {
 public:
  ColumnNode(std::size_t tableIdx, std::size_t colIdx)
      : tableIdx_(tableIdx), colIdx_(colIdx) {}
  Value eval(const EvalCtx& ctx) const override {
    return ctx.tables[tableIdx_]->cell(ctx.rows[tableIdx_], colIdx_);
  }

 private:
  std::size_t tableIdx_;
  std::size_t colIdx_;
};

class UnaryNode final : public CompiledExpr {
 public:
  UnaryNode(UnOp op, CompiledExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}
  Value eval(const EvalCtx& ctx) const override {
    Value v = operand_->eval(ctx);
    if (op_ == UnOp::kNot) {
      Truth t = truthOf(v);
      if (t == Truth::kNull) return Value::null();
      return Value::boolean(t == Truth::kFalse);
    }
    // Negation.
    if (v.isNull()) return Value::null();
    if (v.isInt()) return Value(-v.asInt());
    if (v.isDouble()) return Value(-v.asDouble());
    return Value::null();  // -'string' has no meaning here
  }

 private:
  UnOp op_;
  CompiledExprPtr operand_;
};

class BinaryNode final : public CompiledExpr {
 public:
  BinaryNode(BinOp op, CompiledExprPtr lhs, CompiledExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value eval(const EvalCtx& ctx) const override {
    // Short-circuiting logical operators with 3VL.
    if (op_ == BinOp::kAnd) {
      Truth a = truthOf(lhs_->eval(ctx));
      if (a == Truth::kFalse) return Value::boolean(false);
      Truth b = truthOf(rhs_->eval(ctx));
      if (b == Truth::kFalse) return Value::boolean(false);
      if (a == Truth::kNull || b == Truth::kNull) return Value::null();
      return Value::boolean(true);
    }
    if (op_ == BinOp::kOr) {
      Truth a = truthOf(lhs_->eval(ctx));
      if (a == Truth::kTrue) return Value::boolean(true);
      Truth b = truthOf(rhs_->eval(ctx));
      if (b == Truth::kTrue) return Value::boolean(true);
      if (a == Truth::kNull || b == Truth::kNull) return Value::null();
      return Value::boolean(false);
    }

    Value a = lhs_->eval(ctx);
    Value b = rhs_->eval(ctx);
    if (a.isNull() || b.isNull()) return Value::null();

    switch (op_) {
      case BinOp::kEq: return Value::boolean(a.compare(b) == 0);
      case BinOp::kNe: return Value::boolean(a.compare(b) != 0);
      case BinOp::kLt: return Value::boolean(a.compare(b) < 0);
      case BinOp::kLe: return Value::boolean(a.compare(b) <= 0);
      case BinOp::kGt: return Value::boolean(a.compare(b) > 0);
      case BinOp::kGe: return Value::boolean(a.compare(b) >= 0);
      default: break;
    }

    // Arithmetic: strings do not participate.
    if (!a.isNumeric() || !b.isNumeric()) return Value::null();
    bool bothInt = a.isInt() && b.isInt();
    switch (op_) {
      case BinOp::kAdd:
        if (bothInt) return Value(a.asInt() + b.asInt());
        return Value(a.toDouble() + b.toDouble());
      case BinOp::kSub:
        if (bothInt) return Value(a.asInt() - b.asInt());
        return Value(a.toDouble() - b.toDouble());
      case BinOp::kMul:
        if (bothInt) return Value(a.asInt() * b.asInt());
        return Value(a.toDouble() * b.toDouble());
      case BinOp::kDiv: {
        double d = b.toDouble();
        if (d == 0.0) return Value::null();
        return Value(a.toDouble() / d);
      }
      case BinOp::kMod: {
        if (bothInt) {
          if (b.asInt() == 0) return Value::null();
          return Value(a.asInt() % b.asInt());
        }
        double d = b.toDouble();
        if (d == 0.0) return Value::null();
        return Value(std::fmod(a.toDouble(), d));
      }
      default:
        return Value::null();
    }
  }

 private:
  BinOp op_;
  CompiledExprPtr lhs_;
  CompiledExprPtr rhs_;
};

class FuncNode final : public CompiledExpr {
 public:
  FuncNode(const FunctionDef* def, std::vector<CompiledExprPtr> args)
      : def_(def), args_(std::move(args)) {}
  Value eval(const EvalCtx& ctx) const override {
    std::vector<Value> vals;
    vals.reserve(args_.size());
    for (const auto& a : args_) vals.push_back(a->eval(ctx));
    return def_->fn(vals);
  }

 private:
  const FunctionDef* def_;
  std::vector<CompiledExprPtr> args_;
};

class BetweenNode final : public CompiledExpr {
 public:
  BetweenNode(CompiledExprPtr e, CompiledExprPtr lo, CompiledExprPtr hi,
              bool negated)
      : e_(std::move(e)), lo_(std::move(lo)), hi_(std::move(hi)),
        negated_(negated) {}
  Value eval(const EvalCtx& ctx) const override {
    Value v = e_->eval(ctx);
    Value lo = lo_->eval(ctx);
    Value hi = hi_->eval(ctx);
    if (v.isNull() || lo.isNull() || hi.isNull()) return Value::null();
    bool in = v.compare(lo) >= 0 && v.compare(hi) <= 0;
    return Value::boolean(negated_ ? !in : in);
  }

 private:
  CompiledExprPtr e_, lo_, hi_;
  bool negated_;
};

class InNode final : public CompiledExpr {
 public:
  InNode(CompiledExprPtr e, std::vector<CompiledExprPtr> list, bool negated)
      : e_(std::move(e)), list_(std::move(list)), negated_(negated) {}
  Value eval(const EvalCtx& ctx) const override {
    Value v = e_->eval(ctx);
    if (v.isNull()) return Value::null();
    bool sawNull = false;
    for (const auto& item : list_) {
      Value x = item->eval(ctx);
      if (x.isNull()) {
        sawNull = true;
        continue;
      }
      if (v.compare(x) == 0) {
        return Value::boolean(!negated_);
      }
    }
    if (sawNull) return Value::null();
    return Value::boolean(negated_);
  }

 private:
  CompiledExprPtr e_;
  std::vector<CompiledExprPtr> list_;
  bool negated_;
};

class IsNullNode final : public CompiledExpr {
 public:
  IsNullNode(CompiledExprPtr e, bool negated)
      : e_(std::move(e)), negated_(negated) {}
  Value eval(const EvalCtx& ctx) const override {
    bool isNull = e_->eval(ctx).isNull();
    return Value::boolean(negated_ ? !isNull : isNull);
  }

 private:
  CompiledExprPtr e_;
  bool negated_;
};

class SlotRefNode final : public CompiledExpr {
 public:
  explicit SlotRefNode(std::size_t slot) : slot_(slot) {}
  Value eval(const EvalCtx& ctx) const override {
    return slot_ < ctx.extra.size() ? ctx.extra[slot_] : Value::null();
  }

 private:
  std::size_t slot_;
};

class Binder {
 public:
  Binder(std::span<const ScopeTable> scope, const FunctionRegistry& registry)
      : scope_(scope), registry_(registry) {}

  Result<CompiledExprPtr> bind(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::kLiteral: {
        const auto& e = static_cast<const LiteralExpr&>(expr);
        return CompiledExprPtr(std::make_unique<ConstNode>(e.value));
      }
      case ExprKind::kColumnRef: {
        const auto& e = static_cast<const ColumnRef&>(expr);
        QSERV_ASSIGN_OR_RETURN(ColumnSlot slot, resolveColumn(e, scope_));
        return CompiledExprPtr(
            std::make_unique<ColumnNode>(slot.tableIdx, slot.columnIdx));
      }
      case ExprKind::kStar:
        return Status::invalidArgument(
            "'*' is only valid in a select list or COUNT(*)");
      case ExprKind::kUnary: {
        const auto& e = static_cast<const UnaryExpr&>(expr);
        QSERV_ASSIGN_OR_RETURN(auto operand, bind(*e.operand));
        return CompiledExprPtr(
            std::make_unique<UnaryNode>(e.op, std::move(operand)));
      }
      case ExprKind::kBinary: {
        const auto& e = static_cast<const BinaryExpr&>(expr);
        QSERV_ASSIGN_OR_RETURN(auto lhs, bind(*e.lhs));
        QSERV_ASSIGN_OR_RETURN(auto rhs, bind(*e.rhs));
        return CompiledExprPtr(std::make_unique<BinaryNode>(
            e.op, std::move(lhs), std::move(rhs)));
      }
      case ExprKind::kFuncCall: {
        const auto& e = static_cast<const FuncCall&>(expr);
        if (e.isAggregate()) {
          return Status::invalidArgument(util::format(
              "aggregate %s() not allowed in this context", e.name.c_str()));
        }
        const FunctionDef* def = registry_.find(e.name);
        if (def == nullptr) {
          return Status::notFound(
              util::format("unknown function %s()", e.name.c_str()));
        }
        if (def->arity >= 0 &&
            def->arity != static_cast<int>(e.args.size())) {
          return Status::invalidArgument(util::format(
              "%s() expects %d arguments, got %zu", e.name.c_str(),
              def->arity, e.args.size()));
        }
        std::vector<CompiledExprPtr> args;
        args.reserve(e.args.size());
        for (const auto& a : e.args) {
          QSERV_ASSIGN_OR_RETURN(auto bound, bind(*a));
          args.push_back(std::move(bound));
        }
        return CompiledExprPtr(
            std::make_unique<FuncNode>(def, std::move(args)));
      }
      case ExprKind::kBetween: {
        const auto& e = static_cast<const BetweenExpr&>(expr);
        QSERV_ASSIGN_OR_RETURN(auto v, bind(*e.expr));
        QSERV_ASSIGN_OR_RETURN(auto lo, bind(*e.lo));
        QSERV_ASSIGN_OR_RETURN(auto hi, bind(*e.hi));
        return CompiledExprPtr(std::make_unique<BetweenNode>(
            std::move(v), std::move(lo), std::move(hi), e.negated));
      }
      case ExprKind::kIn: {
        const auto& e = static_cast<const InExpr&>(expr);
        QSERV_ASSIGN_OR_RETURN(auto v, bind(*e.expr));
        std::vector<CompiledExprPtr> list;
        list.reserve(e.list.size());
        for (const auto& item : e.list) {
          QSERV_ASSIGN_OR_RETURN(auto bound, bind(*item));
          list.push_back(std::move(bound));
        }
        return CompiledExprPtr(std::make_unique<InNode>(
            std::move(v), std::move(list), e.negated));
      }
      case ExprKind::kIsNull: {
        const auto& e = static_cast<const IsNullExpr&>(expr);
        QSERV_ASSIGN_OR_RETURN(auto v, bind(*e.expr));
        return CompiledExprPtr(
            std::make_unique<IsNullNode>(std::move(v), e.negated));
      }
      case ExprKind::kSlotRef: {
        const auto& e = static_cast<const SlotRefExpr&>(expr);
        return CompiledExprPtr(std::make_unique<SlotRefNode>(e.slot));
      }
    }
    return Status::internal("unhandled expression kind");
  }

 private:
  std::span<const ScopeTable> scope_;
  const FunctionRegistry& registry_;
};

}  // namespace

Result<ColumnSlot> resolveColumn(const ColumnRef& ref,
                                 std::span<const ScopeTable> scope) {
  std::optional<ColumnSlot> found;
  for (std::size_t t = 0; t < scope.size(); ++t) {
    if (!ref.qualifier.empty() &&
        !util::iequals(ref.qualifier, scope[t].bindingName)) {
      continue;
    }
    auto col = scope[t].table->schema().indexOf(ref.column);
    if (!col) continue;
    if (found) {
      return Status::invalidArgument(
          util::format("ambiguous column reference %s", ref.toSql().c_str()));
    }
    found = ColumnSlot{t, *col};
  }
  if (!found) {
    return Status::notFound(
        util::format("unknown column %s", ref.toSql().c_str()));
  }
  return *found;
}

Result<CompiledExprPtr> bindExpr(const Expr& expr,
                                 std::span<const ScopeTable> scope,
                                 const FunctionRegistry& registry) {
  Binder b(scope, registry);
  return b.bind(expr);
}

Result<Value> evalConstExpr(const Expr& expr,
                            const FunctionRegistry& registry) {
  QSERV_ASSIGN_OR_RETURN(auto compiled, bindExpr(expr, {}, registry));
  EvalCtx ctx{{}, {}, {}};
  return compiled->eval(ctx);
}

Status collectReferencedTables(const Expr& expr,
                               std::span<const ScopeTable> scope,
                               std::vector<bool>& used) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      QSERV_ASSIGN_OR_RETURN(
          ColumnSlot slot,
          resolveColumn(static_cast<const ColumnRef&>(expr), scope));
      used[slot.tableIdx] = true;
      return Status::ok();
    }
    case ExprKind::kUnary:
      return collectReferencedTables(
          *static_cast<const UnaryExpr&>(expr).operand, scope, used);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      QSERV_RETURN_IF_ERROR(collectReferencedTables(*b.lhs, scope, used));
      return collectReferencedTables(*b.rhs, scope, used);
    }
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCall&>(expr);
      for (const auto& a : f.args) {
        if (a->kind() == ExprKind::kStar) continue;
        QSERV_RETURN_IF_ERROR(collectReferencedTables(*a, scope, used));
      }
      return Status::ok();
    }
    case ExprKind::kBetween: {
      const auto& b = static_cast<const BetweenExpr&>(expr);
      QSERV_RETURN_IF_ERROR(collectReferencedTables(*b.expr, scope, used));
      QSERV_RETURN_IF_ERROR(collectReferencedTables(*b.lo, scope, used));
      return collectReferencedTables(*b.hi, scope, used);
    }
    case ExprKind::kIn: {
      const auto& i = static_cast<const InExpr&>(expr);
      QSERV_RETURN_IF_ERROR(collectReferencedTables(*i.expr, scope, used));
      for (const auto& e : i.list) {
        QSERV_RETURN_IF_ERROR(collectReferencedTables(*e, scope, used));
      }
      return Status::ok();
    }
    case ExprKind::kIsNull:
      return collectReferencedTables(
          *static_cast<const IsNullExpr&>(expr).expr, scope, used);
    default:
      return Status::ok();
  }
}

bool isConstExpr(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
    case ExprKind::kStar:
      return false;
    case ExprKind::kUnary:
      return isConstExpr(*static_cast<const UnaryExpr&>(expr).operand);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return isConstExpr(*b.lhs) && isConstExpr(*b.rhs);
    }
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCall&>(expr);
      for (const auto& a : f.args) {
        if (!isConstExpr(*a)) return false;
      }
      return true;
    }
    case ExprKind::kBetween: {
      const auto& b = static_cast<const BetweenExpr&>(expr);
      return isConstExpr(*b.expr) && isConstExpr(*b.lo) && isConstExpr(*b.hi);
    }
    case ExprKind::kIn: {
      const auto& i = static_cast<const InExpr&>(expr);
      if (!isConstExpr(*i.expr)) return false;
      for (const auto& e : i.list) {
        if (!isConstExpr(*e)) return false;
      }
      return true;
    }
    case ExprKind::kIsNull:
      return isConstExpr(*static_cast<const IsNullExpr&>(expr).expr);
    default:
      return true;
  }
}

}  // namespace qserv::sql
