/// \file table.h
/// \brief Append-only columnar table storage.
///
/// Columns are stored as typed vectors with a null mask — a decomposition
/// storage model in the spirit of the columnar organization the paper
/// contemplates in §7.4, chosen here for scan speed on wide tables.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sql/schema.h"
#include "util/status.h"

namespace qserv::sql {

class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  std::size_t numRows() const { return numRows_; }
  std::size_t numColumns() const { return schema_.numColumns(); }

  /// Append a row; values must match the schema's declared types
  /// (ints are accepted into DOUBLE columns and widened).
  util::Status appendRow(std::span<const Value> values);

  /// Value of a cell. Preconditions: row < numRows(), col < numColumns().
  Value cell(std::size_t row, std::size_t col) const;

  /// Materialize a full row.
  std::vector<Value> row(std::size_t r) const;

  /// Raw typed column access for hot scan loops. The vectors are only
  /// meaningful for the column's declared type; null entries hold 0 / "" and
  /// must be checked through isNull().
  const std::vector<std::int64_t>& intColumn(std::size_t col) const;
  const std::vector<double>& doubleColumn(std::size_t col) const;
  const std::vector<std::string>& stringColumn(std::size_t col) const;
  bool isNull(std::size_t row, std::size_t col) const;

  /// In-memory payload bytes (column data only, no metadata).
  std::size_t payloadBytes() const;

 private:
  struct Column {
    ColumnType type;
    std::vector<std::int64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string> strings;
    std::vector<std::uint8_t> nulls;  // 1 = NULL
  };

  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  std::size_t numRows_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace qserv::sql
