/// \file table.h
/// \brief Append-only columnar table storage.
///
/// Columns are stored as typed vectors with a null mask — a decomposition
/// storage model in the spirit of the columnar organization the paper
/// contemplates in §7.4, chosen here for scan speed on wide tables.
///
/// Every append also maintains a per-column *zone map* (min/max over non-null
/// values plus a null count): a scan whose predicate range cannot intersect a
/// column's zone is skipped without touching a row (see sql/vector_eval.h and
/// DESIGN.md "Scan pipeline").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sql/schema.h"
#include "util/status.h"

namespace qserv::sql {

/// Append-maintained summary of one column, for scan pruning. `intMin/Max`
/// are meaningful for INT columns, `dblMin/Max` for DOUBLE columns; both are
/// valid only when `hasValue` is set. `hasNaN` disables range-based pruning
/// for DOUBLE columns (NaN never enters min/max, so the range would lie).
struct ZoneMap {
  bool hasValue = false;     ///< at least one non-null value appended
  bool hasNaN = false;       ///< a DOUBLE column saw a NaN value
  std::int64_t intMin = 0;
  std::int64_t intMax = 0;
  double dblMin = 0.0;
  double dblMax = 0.0;
  std::size_t nullCount = 0;
};

class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  std::size_t numRows() const { return numRows_; }
  std::size_t numColumns() const { return schema_.numColumns(); }

  /// Append a row; values must match the schema's declared types
  /// (ints are accepted into DOUBLE columns and widened).
  util::Status appendRow(std::span<const Value> values);

  /// Bulk append: every row is type-checked up front, column storage is
  /// reserved once, and nothing is appended unless all rows validate
  /// (all-or-nothing, unlike a loop of appendRow which stops mid-way).
  util::Status appendRows(std::span<const std::vector<Value>> rows);

  /// Append every row of \p src by typed column-to-column copy (no Value
  /// boxing). Column counts must match; an INT source column widens into a
  /// DOUBLE destination, and an all-NULL source column feeds any type.
  util::Status appendFrom(const Table& src);

  /// Value of a cell. Preconditions: row < numRows(), col < numColumns().
  Value cell(std::size_t row, std::size_t col) const;

  /// Materialize a full row.
  std::vector<Value> row(std::size_t r) const;

  /// Raw typed column access for hot scan loops. The vectors are only
  /// meaningful for the column's declared type; null entries hold 0 / "" and
  /// must be checked through isNull().
  const std::vector<std::int64_t>& intColumn(std::size_t col) const;
  const std::vector<double>& doubleColumn(std::size_t col) const;
  const std::vector<std::string>& stringColumn(std::size_t col) const;
  bool isNull(std::size_t row, std::size_t col) const;

  /// Raw null mask of a column (1 = NULL), for vectorized kernels.
  const std::vector<std::uint8_t>& nullMask(std::size_t col) const;

  /// Append-maintained min/max/null summary of a column.
  const ZoneMap& zoneMap(std::size_t col) const;

  /// Rename in place (Database::renameTable; the merger adopts the first
  /// chunk dump's table as its merge table instead of copying it).
  void rename(std::string newName) { name_ = std::move(newName); }

  /// In-memory payload bytes (column data only, no metadata).
  std::size_t payloadBytes() const;

 private:
  struct Column {
    ColumnType type;
    std::vector<std::int64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string> strings;
    std::vector<std::uint8_t> nulls;  // 1 = NULL
    ZoneMap zone;

    void append(const Value& v);  // no type check; updates the zone map
    void reserveMore(std::size_t n);
  };

  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  std::size_t numRows_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace qserv::sql
