/// \file lexer.h
/// \brief SQL tokenizer for the embedded engine and the Qserv frontend.
///
/// Comments (`-- ...` and `/* ... */`) are skipped; the worker extracts the
/// `-- SUBCHUNKS:` protocol header from raw text before parsing, so the
/// lexer never sees it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace qserv::sql {

enum class TokenType {
  kEnd,
  kIdentifier,   // bare or `quoted`
  kInt,
  kDouble,
  kString,       // 'literal'
  kComma,
  kDot,
  kSemicolon,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,           // =
  kNe,           // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;        // identifier name (unquoted) or raw spelling
  std::int64_t intValue = 0;
  double doubleValue = 0.0;
  std::size_t offset = 0;  // byte offset in the input, for error messages

  /// Case-insensitive keyword match (identifiers only).
  bool is(std::string_view keyword) const;
};

/// Tokenize \p sql fully. Returns kInvalidArgument on malformed input
/// (unterminated string/quote, bad number, stray character).
util::Result<std::vector<Token>> tokenize(std::string_view sql);

}  // namespace qserv::sql
