#include "sql/functions.h"

#include <cmath>

#include "sphgeom/coords.h"
#include "sphgeom/spherical_box.h"
#include "util/strings.h"

namespace qserv::sql {

namespace {

/// Extract a finite double from \p v; nullopt for NULL/string/NaN.
std::optional<double> numArg(const Value& v) {
  if (!v.isNumeric()) return std::nullopt;
  double d = v.toDouble();
  if (std::isnan(d)) return std::nullopt;
  return d;
}

Value wrap(double d) {
  if (std::isnan(d) || std::isinf(d)) return Value::null();
  return Value(d);
}

/// Adapt a unary double function.
ScalarFn unary(double (*f)(double)) {
  return [f](std::span<const Value> args) -> Value {
    auto x = numArg(args[0]);
    if (!x) return Value::null();
    return wrap(f(*x));
  };
}

}  // namespace

void FunctionRegistry::add(const std::string& name, int arity, ScalarFn fn) {
  fns_[util::toLower(name)] = FunctionDef{std::move(fn), arity};
}

const FunctionDef* FunctionRegistry::find(const std::string& name) const {
  auto it = fns_.find(util::toLower(name));
  return it == fns_.end() ? nullptr : &it->second;
}

const FunctionRegistry& FunctionRegistry::builtins() {
  static const FunctionRegistry* kRegistry = [] {
    auto* r = new FunctionRegistry();

    r->add("abs", 1, unary(std::fabs));
    r->add("sqrt", 1, unary(std::sqrt));
    r->add("log", 1, unary(std::log));
    r->add("log10", 1, unary(std::log10));
    r->add("exp", 1, unary(std::exp));
    r->add("floor", 1, unary(std::floor));
    r->add("ceil", 1, unary(std::ceil));
    r->add("sin", 1, unary(std::sin));
    r->add("cos", 1, unary(std::cos));
    r->add("radians", 1, unary([](double d) { return d * M_PI / 180.0; }));
    r->add("degrees", 1, unary([](double d) { return d * 180.0 / M_PI; }));
    r->add("pow", 2, [](std::span<const Value> args) -> Value {
      auto a = numArg(args[0]);
      auto b = numArg(args[1]);
      if (!a || !b) return Value::null();
      return wrap(std::pow(*a, *b));
    });
    r->add("greatest", -1, [](std::span<const Value> args) -> Value {
      Value best = Value::null();
      for (const auto& v : args) {
        if (v.isNull()) return Value::null();
        if (best.isNull() || v.compare(best) > 0) best = v;
      }
      return best;
    });
    r->add("least", -1, [](std::span<const Value> args) -> Value {
      Value best = Value::null();
      for (const auto& v : args) {
        if (v.isNull()) return Value::null();
        if (best.isNull() || v.compare(best) < 0) best = v;
      }
      return best;
    });

    // ---- LSST / Qserv UDFs --------------------------------------------
    // AB magnitude from flux in erg s^-1 cm^-2 Hz^-1 (standard AB zero
    // point). Non-positive flux has no magnitude -> NULL.
    r->add("fluxToAbMag", 1, [](std::span<const Value> args) -> Value {
      auto f = numArg(args[0]);
      if (!f || *f <= 0.0) return Value::null();
      return wrap(-2.5 * std::log10(*f) - 48.6);
    });
    r->add("fluxToAbMagSigma", 2, [](std::span<const Value> args) -> Value {
      // sigma_m = 2.5 / ln(10) * sigma_f / f
      auto f = numArg(args[0]);
      auto s = numArg(args[1]);
      if (!f || !s || *f <= 0.0) return Value::null();
      return wrap(2.5 / std::log(10.0) * (*s / *f));
    });

    r->add("qserv_angSep", 4, [](std::span<const Value> args) -> Value {
      auto ra1 = numArg(args[0]), dec1 = numArg(args[1]);
      auto ra2 = numArg(args[2]), dec2 = numArg(args[3]);
      if (!ra1 || !dec1 || !ra2 || !dec2) return Value::null();
      return wrap(sphgeom::angSepDeg(*ra1, *dec1, *ra2, *dec2));
    });
    // scisql alias used by later versions of the loader.
    r->add("scisql_angSep", 4, *&r->find("qserv_angSep")->fn);

    r->add("qserv_ptInSphericalBox", 6,
           [](std::span<const Value> args) -> Value {
             auto ra = numArg(args[0]), dec = numArg(args[1]);
             auto lonMin = numArg(args[2]), latMin = numArg(args[3]);
             auto lonMax = numArg(args[4]), latMax = numArg(args[5]);
             if (!ra || !dec || !lonMin || !latMin || !lonMax || !latMax) {
               return Value::null();
             }
             sphgeom::SphericalBox box(*lonMin, *latMin, *lonMax, *latMax);
             return Value::boolean(box.contains(*ra, *dec));
           });
    return r;
  }();
  return *kRegistry;
}

}  // namespace qserv::sql
