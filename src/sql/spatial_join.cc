#include "sql/spatial_join.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "sphgeom/angle.h"
#include "sphgeom/coords.h"
#include "util/strings.h"

namespace qserv::sql {

namespace {

using util::Result;
using util::Status;

std::atomic<bool> g_spatialJoinEnabled{true};

/// Epsilon pad on the search radius so the zone/RA window stays a superset
/// of the exact residual even when angSepDeg rounds a boundary pair inward
/// by an ulp. Pruning loses nothing measurable: the pad is nanodegrees.
double paddedRadius(double radiusDeg) {
  return radiusDeg + 1e-9 + radiusDeg * 1e-12;
}

bool isAngSepCall(const Expr& e) {
  if (e.kind() != ExprKind::kFuncCall) return false;
  const auto& f = static_cast<const FuncCall&>(e);
  if (f.args.size() != 4) return false;
  return util::iequals(f.name, "qserv_angSep") ||
         util::iequals(f.name, "scisql_angSep");
}

/// Scope tables referenced by \p e, as a sorted index list.
Result<std::vector<int>> referencedTables(const Expr& e,
                                          std::span<const ScopeTable> scope) {
  std::vector<bool> used(scope.size(), false);
  QSERV_RETURN_IF_ERROR(collectReferencedTables(e, scope, used));
  std::vector<int> out;
  for (std::size_t i = 0; i < used.size(); ++i) {
    if (used[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace

void setSpatialJoinEnabled(bool enabled) {
  g_spatialJoinEnabled.store(enabled, std::memory_order_relaxed);
}

bool spatialJoinEnabled() {
  return g_spatialJoinEnabled.load(std::memory_order_relaxed);
}

bool SpatialJoinSpec::matches(double outerRaV, double outerDecV,
                              double innerRaV, double innerDecV) const {
  // Keep the call's original argument order: angSepDeg is symmetric in real
  // arithmetic but bit-identical results require the same evaluation order
  // as the scalar path.
  double sep = innerIsFirstPair
                   ? sphgeom::angSepDeg(innerRaV, innerDecV, outerRaV,
                                        outerDecV)
                   : sphgeom::angSepDeg(outerRaV, outerDecV, innerRaV,
                                        innerDecV);
  return inclusive ? sep <= radiusDeg : sep < radiusDeg;
}

Result<std::optional<SpatialJoinSpec>> matchSpatialJoin(
    const Expr& conjunct, std::span<const ScopeTable> scope,
    std::size_t stageTable, const FunctionRegistry& registry) {
  if (conjunct.kind() != ExprKind::kBinary) {
    return std::optional<SpatialJoinSpec>();
  }
  const auto& b = static_cast<const BinaryExpr&>(conjunct);

  // angSep(...) < r | angSep(...) <= r | r > angSep(...) | r >= angSep(...)
  const Expr* call = nullptr;
  const Expr* radius = nullptr;
  bool inclusive = false;
  if ((b.op == BinOp::kLt || b.op == BinOp::kLe) && isAngSepCall(*b.lhs) &&
      isConstExpr(*b.rhs)) {
    call = b.lhs.get();
    radius = b.rhs.get();
    inclusive = b.op == BinOp::kLe;
  } else if ((b.op == BinOp::kGt || b.op == BinOp::kGe) &&
             isAngSepCall(*b.rhs) && isConstExpr(*b.lhs)) {
    call = b.rhs.get();
    radius = b.lhs.get();
    inclusive = b.op == BinOp::kGe;
  } else {
    return std::optional<SpatialJoinSpec>();
  }

  QSERV_ASSIGN_OR_RETURN(Value r, evalConstExpr(*radius, registry));
  if (!r.isNumeric()) return std::optional<SpatialJoinSpec>();  // never true
  double radiusDeg = r.toDouble();
  // Negative and non-finite radii keep nested-loop semantics (a negative or
  // NaN radius never matches; +inf matches everything) — not worth zoning.
  if (!std::isfinite(radiusDeg) || radiusDeg < 0.0) {
    return std::optional<SpatialJoinSpec>();
  }

  const auto& f = static_cast<const FuncCall&>(*call);
  QSERV_ASSIGN_OR_RETURN(auto firstPairTables,
                         referencedTables(*f.args[0], scope));
  {
    QSERV_ASSIGN_OR_RETURN(auto t1, referencedTables(*f.args[1], scope));
    firstPairTables.insert(firstPairTables.end(), t1.begin(), t1.end());
  }
  QSERV_ASSIGN_OR_RETURN(auto secondPairTables,
                         referencedTables(*f.args[2], scope));
  {
    QSERV_ASSIGN_OR_RETURN(auto t3, referencedTables(*f.args[3], scope));
    secondPairTables.insert(secondPairTables.end(), t3.begin(), t3.end());
  }
  auto dedupe = [](std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedupe(firstPairTables);
  dedupe(secondPairTables);

  const int stage = static_cast<int>(stageTable);
  auto onlyStage = [&](const std::vector<int>& v) {
    return v.size() == 1 && v[0] == stage;
  };
  auto allBelowStage = [&](const std::vector<int>& v) {
    return !v.empty() && v.back() < stage;
  };

  SpatialJoinSpec spec;
  spec.conjunct = &conjunct;
  spec.radiusDeg = radiusDeg;
  spec.inclusive = inclusive;
  if (onlyStage(firstPairTables) && allBelowStage(secondPairTables)) {
    spec.innerRa = f.args[0].get();
    spec.innerDec = f.args[1].get();
    spec.outerRa = f.args[2].get();
    spec.outerDec = f.args[3].get();
    spec.innerIsFirstPair = true;
  } else if (onlyStage(secondPairTables) && allBelowStage(firstPairTables)) {
    spec.outerRa = f.args[0].get();
    spec.outerDec = f.args[1].get();
    spec.innerRa = f.args[2].get();
    spec.innerDec = f.args[3].get();
    spec.innerIsFirstPair = false;
  } else {
    // Pairs mix tables, or neither binds to the stage.
    return std::optional<SpatialJoinSpec>();
  }
  return std::optional<SpatialJoinSpec>(spec);
}

std::int64_t ZoneIndex::zoneOf(double dec) const {
  return static_cast<std::int64_t>(std::floor((dec + 90.0) / height_));
}

Result<ZoneIndex> ZoneIndex::build(const SpatialJoinSpec& spec,
                                   std::span<const ScopeTable> scope,
                                   std::size_t stageTable,
                                   std::span<const Table* const> tables,
                                   std::span<const std::size_t> candidateRows,
                                   const FunctionRegistry& registry) {
  ZoneIndex index;
  index.searchRadius_ = paddedRadius(spec.radiusDeg);
  index.height_ = std::max(index.searchRadius_, 1e-12);

  const Table& table = *tables[stageTable];

  // Coordinate readers: straight columnar access when the inner expressions
  // are plain numeric column references, the scalar path otherwise.
  const std::vector<double>* raDbl = nullptr;
  const std::vector<double>* decDbl = nullptr;
  const std::vector<std::int64_t>* raInt = nullptr;
  const std::vector<std::int64_t>* decInt = nullptr;
  std::size_t raCol = 0, decCol = 0;
  bool columnar = false;
  if (spec.innerRa->kind() == ExprKind::kColumnRef &&
      spec.innerDec->kind() == ExprKind::kColumnRef) {
    auto raSlot =
        resolveColumn(static_cast<const ColumnRef&>(*spec.innerRa), scope);
    auto decSlot =
        resolveColumn(static_cast<const ColumnRef&>(*spec.innerDec), scope);
    if (raSlot.isOk() && decSlot.isOk() &&
        raSlot->tableIdx == stageTable && decSlot->tableIdx == stageTable) {
      raCol = raSlot->columnIdx;
      decCol = decSlot->columnIdx;
      ColumnType raType = table.schema().column(raCol).type;
      ColumnType decType = table.schema().column(decCol).type;
      if ((raType == ColumnType::kDouble || raType == ColumnType::kInt) &&
          (decType == ColumnType::kDouble || decType == ColumnType::kInt)) {
        columnar = true;
        if (raType == ColumnType::kDouble) raDbl = &table.doubleColumn(raCol);
        else raInt = &table.intColumn(raCol);
        if (decType == ColumnType::kDouble) {
          decDbl = &table.doubleColumn(decCol);
        } else {
          decInt = &table.intColumn(decCol);
        }
      }
    }
  }

  CompiledExprPtr raExpr, decExpr;
  std::vector<std::size_t> rowCursor;
  if (!columnar) {
    QSERV_ASSIGN_OR_RETURN(raExpr, bindExpr(*spec.innerRa, scope, registry));
    QSERV_ASSIGN_OR_RETURN(decExpr, bindExpr(*spec.innerDec, scope, registry));
    rowCursor.assign(tables.size(), 0);
  }

  struct Keyed {
    std::int64_t zone;
    Entry entry;
  };
  std::vector<Keyed> zoned;
  std::vector<Entry> unzoned;  // |dec| > 90: the zone bound does not apply
  zoned.reserve(candidateRows.size());
  for (std::size_t r : candidateRows) {
    double ra, dec;
    if (columnar) {
      if (table.isNull(r, raCol) || table.isNull(r, decCol)) continue;
      ra = raDbl ? (*raDbl)[r] : static_cast<double>((*raInt)[r]);
      dec = decDbl ? (*decDbl)[r] : static_cast<double>((*decInt)[r]);
    } else {
      rowCursor[stageTable] = r;
      EvalCtx ctx{tables, rowCursor, {}};
      Value raV = raExpr->eval(ctx);
      Value decV = decExpr->eval(ctx);
      if (!raV.isNumeric() || !decV.isNumeric()) continue;
      ra = raV.toDouble();
      dec = decV.toDouble();
    }
    // NULL or non-finite coordinates never satisfy the exact residual
    // (angSep yields NULL/NaN): drop them here, like the hash join drops
    // NULL keys.
    if (!std::isfinite(ra) || !std::isfinite(dec)) continue;
    Entry e{sphgeom::normalizeLonDeg(ra), ra, dec,
            static_cast<std::uint32_t>(r)};
    if (dec < -90.0 || dec > 90.0) {
      unzoned.push_back(e);
    } else {
      zoned.push_back({index.zoneOf(dec), e});
    }
  }

  std::sort(zoned.begin(), zoned.end(), [](const Keyed& a, const Keyed& b) {
    if (a.zone != b.zone) return a.zone < b.zone;
    if (a.entry.raNorm != b.entry.raNorm) {
      return a.entry.raNorm < b.entry.raNorm;
    }
    return a.entry.row < b.entry.row;
  });

  index.entries_.reserve(zoned.size() + unzoned.size());
  for (const Keyed& k : zoned) {
    if (index.zoneIds_.empty() || index.zoneIds_.back() != k.zone) {
      index.zoneIds_.push_back(k.zone);
      index.zoneBegin_.push_back(index.entries_.size());
    }
    index.entries_.push_back(k.entry);
  }
  index.zoneBegin_.push_back(index.entries_.size());
  index.zonedCount_ = index.entries_.size();
  index.entries_.insert(index.entries_.end(), unzoned.begin(), unzoned.end());
  return index;
}

void ZoneIndex::scanZoneRange(std::size_t zoneIdx, double lo, double hi,
                              std::vector<std::uint32_t>& out) const {
  const std::size_t begin = zoneBegin_[zoneIdx];
  const std::size_t end = zoneBegin_[zoneIdx + 1];
  auto first = std::lower_bound(
      entries_.begin() + static_cast<std::ptrdiff_t>(begin),
      entries_.begin() + static_cast<std::ptrdiff_t>(end), lo,
      [](const Entry& e, double v) { return e.raNorm < v; });
  for (auto it = first;
       it != entries_.begin() + static_cast<std::ptrdiff_t>(end) &&
       it->raNorm <= hi;
       ++it) {
    out.push_back(static_cast<std::uint32_t>(it - entries_.begin()));
  }
}

void ZoneIndex::probe(double raDeg, double decDeg,
                      std::vector<std::uint32_t>& out,
                      std::uint64_t& zonesProbed) const {
  if (!std::isfinite(raDeg) || !std::isfinite(decDeg)) return;
  if (decDeg < -90.0 || decDeg > 90.0) {
    // Out-of-range probe declination: the dec-band bound does not apply, so
    // every entry is a candidate (the exact residual still filters).
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out.push_back(static_cast<std::uint32_t>(i));
    }
    return;
  }

  const std::int64_t zLo = zoneOf(decDeg - searchRadius_);
  const std::int64_t zHi = zoneOf(decDeg + searchRadius_);
  double w = sphgeom::raSearchWindowDeg(searchRadius_, decDeg);
  const bool wholeZone = w >= 180.0;
  if (!wholeZone) w += 1e-9;  // absolute pad against boundary rounding
  const double raNorm = sphgeom::normalizeLonDeg(raDeg);

  for (std::int64_t z = zLo; z <= zHi; ++z) {
    auto it = std::lower_bound(zoneIds_.begin(), zoneIds_.end(), z);
    if (it == zoneIds_.end() || *it != z) continue;
    const std::size_t zi =
        static_cast<std::size_t>(it - zoneIds_.begin());
    ++zonesProbed;
    if (wholeZone) {
      scanZoneRange(zi, 0.0, 360.0, out);
      continue;
    }
    const double lo = raNorm - w;
    const double hi = raNorm + w;
    if (lo < 0.0) {
      // Window wraps below 0: [lo+360, 360) and [0, hi].
      scanZoneRange(zi, lo + 360.0, 360.0, out);
      scanZoneRange(zi, 0.0, hi, out);
    } else if (hi >= 360.0) {
      // Window wraps past 360: [lo, 360) and [0, hi-360].
      scanZoneRange(zi, lo, 360.0, out);
      scanZoneRange(zi, 0.0, hi - 360.0, out);
    } else {
      scanZoneRange(zi, lo, hi, out);
    }
  }

  // Entries with out-of-range declinations are candidates for every probe.
  for (std::size_t i = zonedCount_; i < entries_.size(); ++i) {
    out.push_back(static_cast<std::uint32_t>(i));
  }
}

}  // namespace qserv::sql
