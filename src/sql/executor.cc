#include "sql/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "sql/expr_eval.h"
#include "sql/spatial_join.h"
#include "sql/vector_eval.h"
#include "util/strings.h"

namespace qserv::sql {

namespace {

using util::Result;
using util::Status;

// ------------------------------------------------------------- aggregates

enum class AggKind { kCountStar, kCount, kSum, kAvg, kMin, kMax };

struct AggSpec {
  AggKind kind;
  ExprPtr arg;  // null for COUNT(*)
};

/// Replace aggregate FuncCall nodes in \p expr with SlotRefExpr nodes,
/// appending their specs to \p aggs. Fails on nested aggregates.
Result<ExprPtr> extractAggregates(ExprPtr expr, std::vector<AggSpec>& aggs,
                                  bool insideAggregate = false) {
  switch (expr->kind()) {
    case ExprKind::kFuncCall: {
      auto* f = static_cast<FuncCall*>(expr.get());
      if (f->isAggregate()) {
        if (insideAggregate) {
          return Status::invalidArgument("nested aggregate functions");
        }
        if (f->args.size() != 1) {
          return Status::invalidArgument(
              util::format("%s() takes exactly one argument", f->name.c_str()));
        }
        AggSpec spec;
        bool star = f->args[0]->kind() == ExprKind::kStar;
        if (util::iequals(f->name, "COUNT")) {
          spec.kind = star ? AggKind::kCountStar : AggKind::kCount;
        } else if (star) {
          return Status::invalidArgument(
              util::format("%s(*) is not valid", f->name.c_str()));
        } else if (util::iequals(f->name, "SUM")) {
          spec.kind = AggKind::kSum;
        } else if (util::iequals(f->name, "AVG")) {
          spec.kind = AggKind::kAvg;
        } else if (util::iequals(f->name, "MIN")) {
          spec.kind = AggKind::kMin;
        } else {
          spec.kind = AggKind::kMax;
        }
        if (!star) {
          QSERV_ASSIGN_OR_RETURN(
              spec.arg,
              extractAggregates(std::move(f->args[0]), aggs, true));
          // A column must appear somewhere inside an aggregate arg; a pure
          // nested aggregate was already rejected above.
        }
        aggs.push_back(std::move(spec));
        return ExprPtr(std::make_unique<SlotRefExpr>(aggs.size() - 1));
      }
      for (auto& a : f->args) {
        QSERV_ASSIGN_OR_RETURN(a,
                               extractAggregates(std::move(a), aggs,
                                                 insideAggregate));
      }
      return expr;
    }
    case ExprKind::kUnary: {
      auto* u = static_cast<UnaryExpr*>(expr.get());
      QSERV_ASSIGN_OR_RETURN(
          u->operand, extractAggregates(std::move(u->operand), aggs,
                                        insideAggregate));
      return expr;
    }
    case ExprKind::kBinary: {
      auto* b = static_cast<BinaryExpr*>(expr.get());
      QSERV_ASSIGN_OR_RETURN(
          b->lhs, extractAggregates(std::move(b->lhs), aggs, insideAggregate));
      QSERV_ASSIGN_OR_RETURN(
          b->rhs, extractAggregates(std::move(b->rhs), aggs, insideAggregate));
      return expr;
    }
    case ExprKind::kBetween: {
      auto* b = static_cast<BetweenExpr*>(expr.get());
      QSERV_ASSIGN_OR_RETURN(
          b->expr, extractAggregates(std::move(b->expr), aggs, insideAggregate));
      QSERV_ASSIGN_OR_RETURN(
          b->lo, extractAggregates(std::move(b->lo), aggs, insideAggregate));
      QSERV_ASSIGN_OR_RETURN(
          b->hi, extractAggregates(std::move(b->hi), aggs, insideAggregate));
      return expr;
    }
    case ExprKind::kIn: {
      auto* i = static_cast<InExpr*>(expr.get());
      QSERV_ASSIGN_OR_RETURN(
          i->expr, extractAggregates(std::move(i->expr), aggs, insideAggregate));
      for (auto& item : i->list) {
        QSERV_ASSIGN_OR_RETURN(
            item, extractAggregates(std::move(item), aggs, insideAggregate));
      }
      return expr;
    }
    case ExprKind::kIsNull: {
      auto* n = static_cast<IsNullExpr*>(expr.get());
      QSERV_ASSIGN_OR_RETURN(
          n->expr, extractAggregates(std::move(n->expr), aggs, insideAggregate));
      return expr;
    }
    default:
      return expr;
  }
}

bool containsAggregate(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCall&>(expr);
      if (f.isAggregate()) return true;
      for (const auto& a : f.args) {
        if (containsAggregate(*a)) return true;
      }
      return false;
    }
    case ExprKind::kUnary:
      return containsAggregate(*static_cast<const UnaryExpr&>(expr).operand);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return containsAggregate(*b.lhs) || containsAggregate(*b.rhs);
    }
    case ExprKind::kBetween: {
      const auto& b = static_cast<const BetweenExpr&>(expr);
      return containsAggregate(*b.expr) || containsAggregate(*b.lo) ||
             containsAggregate(*b.hi);
    }
    case ExprKind::kIn: {
      const auto& i = static_cast<const InExpr&>(expr);
      if (containsAggregate(*i.expr)) return true;
      for (const auto& e : i.list) {
        if (containsAggregate(*e)) return true;
      }
      return false;
    }
    case ExprKind::kIsNull:
      return containsAggregate(*static_cast<const IsNullExpr&>(expr).expr);
    default:
      return false;
  }
}

/// Running accumulator for one aggregate over one group.
struct AggAccumulator {
  std::int64_t count = 0;
  std::int64_t intSum = 0;
  double doubleSum = 0.0;
  bool sawDouble = false;
  Value extreme;  // MIN/MAX

  void accumulate(AggKind kind, const Value& v) {
    switch (kind) {
      case AggKind::kCountStar:
        ++count;
        return;
      case AggKind::kCount:
        if (!v.isNull()) ++count;
        return;
      case AggKind::kSum:
      case AggKind::kAvg:
        if (v.isNull() || !v.isNumeric()) return;
        ++count;
        if (v.isInt() && !sawDouble) {
          intSum += v.asInt();
        } else {
          if (!sawDouble) {
            doubleSum = static_cast<double>(intSum);
            sawDouble = true;
          }
          doubleSum += v.toDouble();
        }
        return;
      case AggKind::kMin:
        if (v.isNull()) return;
        if (extreme.isNull() || v.compare(extreme) < 0) extreme = v;
        return;
      case AggKind::kMax:
        if (v.isNull()) return;
        if (extreme.isNull() || v.compare(extreme) > 0) extreme = v;
        return;
    }
  }

  Value finalize(AggKind kind) const {
    switch (kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        return Value(count);
      case AggKind::kSum:
        if (count == 0) return Value::null();
        return sawDouble ? Value(doubleSum) : Value(intSum);
      case AggKind::kAvg: {
        if (count == 0) return Value::null();
        double s = sawDouble ? doubleSum : static_cast<double>(intSum);
        return Value(s / static_cast<double>(count));
      }
      case AggKind::kMin:
      case AggKind::kMax:
        return extreme;
    }
    return Value::null();
  }
};

// ------------------------------------------------------------- where split

/// Flatten an AND tree into conjuncts (borrowed pointers into the tree).
void flattenConjuncts(const Expr* expr, std::vector<const Expr*>& out) {
  if (expr->kind() == ExprKind::kBinary) {
    const auto* b = static_cast<const BinaryExpr*>(expr);
    if (b->op == BinOp::kAnd) {
      flattenConjuncts(b->lhs.get(), out);
      flattenConjuncts(b->rhs.get(), out);
      return;
    }
  }
  out.push_back(expr);
}

struct Conjunct {
  const Expr* expr = nullptr;
  std::vector<int> tables;  // referenced scope-table indices, ascending
  int maxTable = -1;        // highest referenced index (-1: constant)
};

struct EquiJoin {
  const Expr* lhs = nullptr;  // references tables < rhsTable only
  const Expr* rhs = nullptr;  // references rhsTable only
  int rhsTable = -1;
};

// --------------------------------------------------------------- group key

struct GroupKey {
  std::vector<Value> values;

  bool operator==(const GroupKey& o) const {
    if (values.size() != o.values.size()) return false;
    for (std::size_t i = 0; i < values.size(); ++i) {
      bool an = values[i].isNull(), bn = o.values[i].isNull();
      if (an != bn) return false;
      if (!an && values[i].compare(o.values[i]) != 0) return false;
    }
    return true;
  }
};

struct GroupKeyHash {
  std::size_t operator()(const GroupKey& k) const {
    std::size_t h = 1469598103934665603ULL;
    for (const auto& v : k.values) {
      h ^= v.hash();
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct ValueKeyHash {
  std::size_t operator()(const GroupKey& k) const { return GroupKeyHash{}(k); }
};

/// Replace every ColumnRef in a clone of \p expr with NULL — used to
/// evaluate select items over an empty group (global aggregates on empty
/// input behave like MySQL: COUNT=0, other columns NULL).
ExprPtr cloneWithColumnsAsNull(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
      return std::make_unique<LiteralExpr>(Value::null());
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      return std::make_unique<UnaryExpr>(u.op, cloneWithColumnsAsNull(*u.operand));
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      return std::make_unique<BinaryExpr>(b.op, cloneWithColumnsAsNull(*b.lhs),
                                          cloneWithColumnsAsNull(*b.rhs));
    }
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCall&>(expr);
      std::vector<ExprPtr> args;
      args.reserve(f.args.size());
      for (const auto& a : f.args) args.push_back(cloneWithColumnsAsNull(*a));
      return std::make_unique<FuncCall>(f.name, std::move(args));
    }
    case ExprKind::kBetween: {
      const auto& b = static_cast<const BetweenExpr&>(expr);
      return std::make_unique<BetweenExpr>(
          cloneWithColumnsAsNull(*b.expr), cloneWithColumnsAsNull(*b.lo),
          cloneWithColumnsAsNull(*b.hi), b.negated);
    }
    case ExprKind::kIn: {
      const auto& i = static_cast<const InExpr&>(expr);
      std::vector<ExprPtr> list;
      list.reserve(i.list.size());
      for (const auto& e : i.list) list.push_back(cloneWithColumnsAsNull(*e));
      return std::make_unique<InExpr>(cloneWithColumnsAsNull(*i.expr),
                                      std::move(list), i.negated);
    }
    case ExprKind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(expr);
      return std::make_unique<IsNullExpr>(cloneWithColumnsAsNull(*n.expr),
                                          n.negated);
    }
    default:
      return expr.clone();
  }
}

// --------------------------------------------------------------- executor

class SelectExec {
 public:
  SelectExec(Database& db, const SelectStmt& sel, ExecStats& stats)
      : db_(db), sel_(sel), stats_(stats),
        registry_(db.functions()) {}

  /// Static output type of \p expr, or nullopt when undeterminable.
  /// Keeps empty result sets carrying correct column types — essential for
  /// dump/replay (an empty chunk result must not demote BIGINT columns).
  std::optional<ColumnType> inferType(const Expr& expr) const {
    switch (expr.kind()) {
      case ExprKind::kLiteral: {
        const auto& v = static_cast<const LiteralExpr&>(expr).value;
        switch (v.type()) {
          case ValueType::kInt: return ColumnType::kInt;
          case ValueType::kDouble: return ColumnType::kDouble;
          case ValueType::kString: return ColumnType::kString;
          case ValueType::kNull: return std::nullopt;
        }
        return std::nullopt;
      }
      case ExprKind::kColumnRef: {
        auto slot = resolveColumn(static_cast<const ColumnRef&>(expr), scope_);
        if (!slot.isOk()) return std::nullopt;
        return scope_[slot->tableIdx].table->schema().column(slot->columnIdx)
            .type;
      }
      case ExprKind::kSlotRef: {
        std::size_t k = static_cast<const SlotRefExpr&>(expr).slot;
        if (k >= aggs_.size()) return std::nullopt;
        switch (aggs_[k].kind) {
          case AggKind::kCountStar:
          case AggKind::kCount:
            return ColumnType::kInt;
          case AggKind::kAvg:
            return ColumnType::kDouble;
          case AggKind::kSum:
          case AggKind::kMin:
          case AggKind::kMax:
            return aggs_[k].arg ? inferType(*aggs_[k].arg) : std::nullopt;
        }
        return std::nullopt;
      }
      case ExprKind::kUnary: {
        const auto& u = static_cast<const UnaryExpr&>(expr);
        if (u.op == UnOp::kNot) return ColumnType::kInt;
        return inferType(*u.operand);
      }
      case ExprKind::kBinary: {
        const auto& b = static_cast<const BinaryExpr&>(expr);
        switch (b.op) {
          case BinOp::kEq: case BinOp::kNe: case BinOp::kLt: case BinOp::kLe:
          case BinOp::kGt: case BinOp::kGe: case BinOp::kAnd: case BinOp::kOr:
            return ColumnType::kInt;
          case BinOp::kDiv:
            return ColumnType::kDouble;
          case BinOp::kAdd: case BinOp::kSub: case BinOp::kMul:
          case BinOp::kMod: {
            auto l = inferType(*b.lhs);
            auto r = inferType(*b.rhs);
            if (l == ColumnType::kInt && r == ColumnType::kInt) {
              return ColumnType::kInt;
            }
            if (l && r) return ColumnType::kDouble;
            return std::nullopt;
          }
        }
        return std::nullopt;
      }
      case ExprKind::kBetween:
      case ExprKind::kIn:
      case ExprKind::kIsNull:
        return ColumnType::kInt;
      case ExprKind::kFuncCall:
        // Scalar functions are numeric; all builtins return doubles (the
        // boolean-ish qserv_ptInSphericalBox yields 0/1 ints, which a
        // DOUBLE column accepts).
        return ColumnType::kDouble;
      default:
        return std::nullopt;
    }
  }

  Result<TablePtr> run() {
    QSERV_RETURN_IF_ERROR(resolveFrom());
    QSERV_RETURN_IF_ERROR(expandItems());
    QSERV_RETURN_IF_ERROR(planWhere());
    // MyISAM-style shortcut: unrestricted COUNT(*) on one table answers
    // from row-count metadata without a scan (paper relies on this for the
    // cheap full-sky HV1 count; see DESIGN.md).
    if (isAggregateQuery_ && scope_.size() == 1 && !sel_.where &&
        sel_.groupBy.empty() && aggs_.size() == 1 &&
        aggs_[0].kind == AggKind::kCountStar && items_.size() == 1 &&
        items_[0].expr->kind() == ExprKind::kSlotRef) {
      resultRows_.push_back(
          {Value(static_cast<std::int64_t>(tablesRaw_[0]->numRows()))});
      QSERV_RETURN_IF_ERROR(orderAndLimit());
      return buildResultTable();
    }
    // Filtered COUNT(*) over one table with a fully kernelizable WHERE:
    // count survivors straight off the selection vectors, skipping tuple
    // materialization and the aggregate hash (the scan-heavy paper queries
    // are mostly of this shape).
    if (isAggregateQuery_ && scope_.size() == 1 && sel_.where &&
        sel_.groupBy.empty() && aggs_.size() == 1 &&
        aggs_[0].kind == AggKind::kCountStar && items_.size() == 1 &&
        items_[0].expr->kind() == ExprKind::kSlotRef &&
        vectorizedFilterEnabled()) {
      QSERV_ASSIGN_OR_RETURN(bool done, tryCountPushdown());
      if (done) {
        QSERV_RETURN_IF_ERROR(orderAndLimit());
        return buildResultTable();
      }
    }
    QSERV_RETURN_IF_ERROR(enumerateTuples());
    QSERV_RETURN_IF_ERROR(isAggregateQuery_ ? consumeAggregate()
                                            : consumeProjection());
    QSERV_RETURN_IF_ERROR(orderAndLimit());
    return buildResultTable();
  }

 private:
  Status resolveFrom() {
    for (const TableRef& ref : sel_.from) {
      std::string key =
          ref.database.empty() ? ref.table : ref.database + "." + ref.table;
      TablePtr t = db_.findTable(key);
      if (!t && !ref.database.empty()) t = db_.findTable(ref.table);
      if (!t) {
        return Status::notFound(
            util::format("unknown table %s", key.c_str()));
      }
      tableKeys_.push_back(key);
      pins_.push_back(t);
      scope_.push_back(ScopeTable{ref.bindingName(), t.get()});
      tablesRaw_.push_back(t.get());
    }
    return Status::ok();
  }

  Status expandItems() {
    for (const SelectItem& item : sel_.items) {
      if (item.expr->kind() == ExprKind::kStar) {
        const auto& star = static_cast<const StarExpr&>(*item.expr);
        if (!item.alias.empty()) {
          return Status::invalidArgument("'*' cannot be aliased");
        }
        bool matched = false;
        for (const auto& st : scope_) {
          if (!star.qualifier.empty() &&
              !util::iequals(star.qualifier, st.bindingName)) {
            continue;
          }
          matched = true;
          for (const auto& col : st.table->schema().columns()) {
            SelectItem expanded;
            expanded.expr = std::make_unique<ColumnRef>(
                scope_.size() > 1 ? st.bindingName : "", col.name);
            expanded.alias = col.name;
            items_.push_back(std::move(expanded));
          }
        }
        if (!matched) {
          return Status::notFound(util::format(
              "'%s.*' does not match any table", star.qualifier.c_str()));
        }
        continue;
      }
      items_.push_back(item.clone());
    }
    if (items_.empty()) {
      return Status::invalidArgument("empty select list");
    }

    // Output column names.
    for (const auto& item : items_) {
      outputNames_.push_back(item.alias.empty() ? item.expr->toSql()
                                                : item.alias);
    }

    // Aggregate extraction.
    bool anyAgg = false;
    for (const auto& item : items_) {
      if (containsAggregate(*item.expr)) anyAgg = true;
    }
    isAggregateQuery_ = anyAgg || !sel_.groupBy.empty();
    if (sel_.having && !isAggregateQuery_) {
      return Status::invalidArgument("HAVING requires GROUP BY");
    }
    if (isAggregateQuery_) {
      for (auto& item : items_) {
        QSERV_ASSIGN_OR_RETURN(item.expr,
                               extractAggregates(std::move(item.expr), aggs_));
      }
      // HAVING may reference aggregates; its calls share the same slot list
      // so they accumulate alongside the select items'.
      if (sel_.having) {
        QSERV_ASSIGN_OR_RETURN(
            havingExpr_, extractAggregates(sel_.having->clone(), aggs_));
      }
      // Compile aggregate args and group-by keys.
      for (const auto& spec : aggs_) {
        if (spec.arg) {
          QSERV_ASSIGN_OR_RETURN(auto compiled,
                                 bindExpr(*spec.arg, scope_, registry_));
          aggArgCompiled_.push_back(std::move(compiled));
        } else {
          aggArgCompiled_.push_back(nullptr);
        }
      }
      for (const auto& g : sel_.groupBy) {
        if (containsAggregate(*g)) {
          return Status::invalidArgument("aggregate in GROUP BY");
        }
        QSERV_ASSIGN_OR_RETURN(auto compiled,
                               bindExpr(*g, scope_, registry_));
        groupKeyCompiled_.push_back(std::move(compiled));
      }
    }
    // Compile item expressions (slot refs resolve through EvalCtx.extra).
    for (const auto& item : items_) {
      QSERV_ASSIGN_OR_RETURN(auto compiled,
                             bindExpr(*item.expr, scope_, registry_));
      itemCompiled_.push_back(std::move(compiled));
      declaredTypes_.push_back(inferType(*item.expr));
    }
    if (havingExpr_) {
      QSERV_ASSIGN_OR_RETURN(havingCompiled_,
                             bindExpr(*havingExpr_, scope_, registry_));
    }
    return Status::ok();
  }

  Status planWhere() {
    if (sel_.where && containsAggregate(*sel_.where)) {
      return Status::invalidArgument("aggregates are not allowed in WHERE");
    }
    if (!sel_.where) return Status::ok();
    std::vector<const Expr*> flat;
    flattenConjuncts(sel_.where.get(), flat);
    for (const Expr* e : flat) {
      Conjunct c;
      c.expr = e;
      std::vector<bool> used(scope_.size(), false);
      QSERV_RETURN_IF_ERROR(collectReferencedTables(*e, scope_, used));
      for (std::size_t t = 0; t < used.size(); ++t) {
        if (used[t]) {
          c.tables.push_back(static_cast<int>(t));
          c.maxTable = static_cast<int>(t);
        }
      }
      conjuncts_.push_back(std::move(c));
    }
    return Status::ok();
  }

  /// COUNT(*) pushdown attempt: true when the result row was produced.
  /// Applies only when every conjunct is a single-table kernel shape and no
  /// ordered index could serve one of the kernel columns (an index probe
  /// reads fewer rows than even a vectorized scan).
  Result<bool> tryCountPushdown() {
    std::vector<const Expr*> mine;
    for (const auto& c : conjuncts_) {
      if (c.tables.size() != 1 || c.tables[0] != 0) return false;
      mine.push_back(c.expr);
    }
    if (mine.empty()) return false;
    QSERV_ASSIGN_OR_RETURN(
        ScanFilter sf, compileScanFilter(mine, scope_, 0, registry_));
    if (!sf.hasKernels() || !sf.residuals().empty()) return false;
    const Table& table = *tablesRaw_[0];
    for (std::size_t col : sf.kernelColumns()) {
      if (db_.findIndex(tableKeys_[0], table.schema().column(col).name)) {
        return false;
      }
    }
    std::int64_t count = 0;
    if (sf.prunes(table)) {
      ++stats_.zoneMapPrunes;
      stats_.zoneMapRowsSkipped += table.numRows();
    } else {
      stats_.rowsScanned += table.numRows();
      stats_.rowsScannedByTable[tableKeys_[0]] += table.numRows();
      ++stats_.vectorizedScans;
      stats_.vectorRowsIn += table.numRows();
      count = static_cast<std::int64_t>(sf.count(table));
      stats_.vectorRowsOut += static_cast<std::uint64_t>(count);
    }
    resultRows_.push_back({Value(count)});
    return true;
  }

  /// Candidate row list for table \p t: applies its single-table conjuncts,
  /// using an ordered index for equality / IN / BETWEEN when available.
  Result<std::vector<std::size_t>> candidateRows(std::size_t t) {
    const Table& table = *tablesRaw_[t];
    // Gather this table's single-table conjuncts.
    std::vector<const Expr*> mine;
    for (const auto& c : conjuncts_) {
      if (c.tables.size() == 1 && c.tables[0] == static_cast<int>(t)) {
        mine.push_back(c.expr);
      }
    }

    // Vectorized pre-pass: compile the kernelizable conjuncts. A zone-map
    // contradiction (predicate range outside the column's [min,max], or a
    // NULL test the null counts rule out) skips the scan — and the index
    // probe — without touching a row.
    std::optional<ScanFilter> scanFilter;
    if (vectorizedFilterEnabled()) {
      QSERV_ASSIGN_OR_RETURN(ScanFilter sf,
                             compileScanFilter(mine, scope_, t, registry_));
      if (sf.hasKernels() && sf.prunes(table)) {
        ++stats_.zoneMapPrunes;
        stats_.zoneMapRowsSkipped += table.numRows();
        return std::vector<std::size_t>{};
      }
      scanFilter = std::move(sf);
    }

    // Try an index probe: col = const | col IN (consts) | col BETWEEN.
    std::vector<std::size_t> rows;
    bool indexed = false;
    std::size_t indexConjunct = 0;
    for (std::size_t ci = 0; ci < mine.size() && !indexed; ++ci) {
      const Expr* e = mine[ci];
      const ColumnRef* col = nullptr;
      std::vector<Value> eqKeys;
      Value lo, hi;
      bool isRange = false;
      if (e->kind() == ExprKind::kBinary) {
        const auto* b = static_cast<const BinaryExpr*>(e);
        if (b->op == BinOp::kEq) {
          const Expr *cr = nullptr, *lit = nullptr;
          if (b->lhs->kind() == ExprKind::kColumnRef && isConstExpr(*b->rhs)) {
            cr = b->lhs.get();
            lit = b->rhs.get();
          } else if (b->rhs->kind() == ExprKind::kColumnRef &&
                     isConstExpr(*b->lhs)) {
            cr = b->rhs.get();
            lit = b->lhs.get();
          }
          if (cr != nullptr) {
            QSERV_ASSIGN_OR_RETURN(Value v, evalConstExpr(*lit, registry_));
            col = static_cast<const ColumnRef*>(cr);
            eqKeys.push_back(std::move(v));
          }
        }
      } else if (e->kind() == ExprKind::kIn) {
        const auto* in = static_cast<const InExpr*>(e);
        if (!in->negated && in->expr->kind() == ExprKind::kColumnRef) {
          bool allConst = true;
          for (const auto& item : in->list) {
            if (!isConstExpr(*item)) allConst = false;
          }
          if (allConst) {
            col = static_cast<const ColumnRef*>(in->expr.get());
            for (const auto& item : in->list) {
              QSERV_ASSIGN_OR_RETURN(Value v, evalConstExpr(*item, registry_));
              eqKeys.push_back(std::move(v));
            }
          }
        }
      } else if (e->kind() == ExprKind::kBetween) {
        const auto* bt = static_cast<const BetweenExpr*>(e);
        if (!bt->negated && bt->expr->kind() == ExprKind::kColumnRef &&
            isConstExpr(*bt->lo) && isConstExpr(*bt->hi)) {
          col = static_cast<const ColumnRef*>(bt->expr.get());
          QSERV_ASSIGN_OR_RETURN(lo, evalConstExpr(*bt->lo, registry_));
          QSERV_ASSIGN_OR_RETURN(hi, evalConstExpr(*bt->hi, registry_));
          isRange = true;
        }
      }
      if (col == nullptr) continue;
      // The column must belong to this table.
      auto slot = resolveColumn(*col, scope_);
      if (!slot.isOk() || slot.value().tableIdx != t) continue;
      auto index = db_.findIndex(tableKeys_[t], col->column);
      if (!index) continue;
      if (isRange) {
        rows = index->lookupRange(lo, hi);
      } else {
        for (const auto& k : eqKeys) {
          auto hits = index->lookup(k);
          rows.insert(rows.end(), hits.begin(), hits.end());
        }
        std::sort(rows.begin(), rows.end());
        rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
      }
      indexed = true;
      indexConjunct = ci;
      ++stats_.indexLookups;
    }

    std::vector<std::size_t> out;
    std::vector<std::size_t> rowCursor(scope_.size(), 0);
    EvalCtx ctx{tablesRaw_, rowCursor, {}};
    std::vector<CompiledExprPtr> filters;
    auto keep = [&](std::size_t r) {
      rowCursor[t] = r;
      for (const auto& f : filters) {
        if (!f->eval(ctx).isTrue()) return false;
      }
      return true;
    };
    if (indexed) {
      // Index-probed rows are point reads, not part of a sequential scan;
      // they are charged through indexLookups in the cost model and are
      // deliberately absent from rowsScannedByTable (which feeds
      // density-scaled scan-bandwidth accounting). The probe already
      // applied its conjunct; the rest run row-at-a-time (probes return
      // few rows, not worth vectorizing).
      for (std::size_t ci = 0; ci < mine.size(); ++ci) {
        if (ci == indexConjunct) continue;
        QSERV_ASSIGN_OR_RETURN(auto compiled,
                               bindExpr(*mine[ci], scope_, registry_));
        filters.push_back(std::move(compiled));
      }
      stats_.rowsScanned += rows.size();
      for (std::size_t r : rows) {
        if (keep(r)) out.push_back(r);
      }
      return out;
    }

    stats_.rowsScanned += table.numRows();
    stats_.rowsScannedByTable[tableKeys_[t]] += table.numRows();
    if (scanFilter && scanFilter->hasKernels()) {
      // Batch path: kernels compact a selection vector over the typed
      // columns; conjuncts outside the kernel shapes run per surviving row
      // through the scalar path (identical semantics, see vector_eval.h).
      ++stats_.vectorizedScans;
      stats_.vectorRowsIn += table.numRows();
      std::vector<std::size_t> survivors;
      scanFilter->run(table, survivors);
      stats_.vectorRowsOut += survivors.size();
      if (scanFilter->residuals().empty()) return survivors;
      for (std::size_t ci : scanFilter->residuals()) {
        QSERV_ASSIGN_OR_RETURN(auto compiled,
                               bindExpr(*mine[ci], scope_, registry_));
        filters.push_back(std::move(compiled));
      }
      stats_.fallbackRows += survivors.size();
      for (std::size_t r : survivors) {
        if (keep(r)) out.push_back(r);
      }
      return out;
    }

    // Row-at-a-time scan (vectorization disabled or nothing kernelized).
    for (const Expr* e : mine) {
      QSERV_ASSIGN_OR_RETURN(auto compiled, bindExpr(*e, scope_, registry_));
      filters.push_back(std::move(compiled));
    }
    out.reserve(table.numRows());
    for (std::size_t r = 0; r < table.numRows(); ++r) {
      if (keep(r)) out.push_back(r);
    }
    return out;
  }

  Status enumerateTuples() {
    const std::size_t k = scope_.size();
    // Constant conjuncts (no column references) are bound — surfacing
    // unknown-function errors, e.g. an unrewritten qserv_areaspec_box — and
    // evaluated once; a non-true constant predicate empties the result.
    for (const auto& c : conjuncts_) {
      if (!c.tables.empty()) continue;
      QSERV_ASSIGN_OR_RETURN(auto compiled,
                             bindExpr(*c.expr, scope_, registry_));
      EvalCtx ctx{{}, {}, {}};
      if (!compiled->eval(ctx).isTrue()) return Status::ok();
    }
    if (k == 0) {
      // SELECT without FROM: one empty tuple, unless WHERE rejects it.
      if (sel_.where) {
        QSERV_ASSIGN_OR_RETURN(auto w,
                               bindExpr(*sel_.where, scope_, registry_));
        EvalCtx ctx{{}, {}, {}};
        if (!w->eval(ctx).isTrue()) return Status::ok();
      }
      tuples_.push_back({});
      return Status::ok();
    }

    // Stage 0.
    QSERV_ASSIGN_OR_RETURN(auto rows0, candidateRows(0));
    tuples_.reserve(rows0.size());
    for (std::size_t r : rows0) tuples_.push_back({r});

    // Residual conjuncts spanning >1 table, indexed by their max table.
    for (std::size_t t = 1; t < k && !tuples_.empty(); ++t) {
      QSERV_ASSIGN_OR_RETURN(auto rows, candidateRows(t));

      // Find equi-join conjuncts usable at this stage: expr(lhs over
      // tables < t) = expr(rhs over exactly {t}).
      std::vector<std::pair<const Expr*, const Expr*>> joinKeys;
      for (const auto& c : conjuncts_) {
        if (c.expr->kind() != ExprKind::kBinary) continue;
        const auto* b = static_cast<const BinaryExpr*>(c.expr);
        if (b->op != BinOp::kEq) continue;
        if (c.maxTable != static_cast<int>(t) || c.tables.size() < 2) continue;
        auto sideTables = [&](const Expr& e) -> Result<std::vector<int>> {
          std::vector<bool> used(scope_.size(), false);
          QSERV_RETURN_IF_ERROR(collectReferencedTables(e, scope_, used));
          std::vector<int> out;
          for (std::size_t i = 0; i < used.size(); ++i) {
            if (used[i]) out.push_back(static_cast<int>(i));
          }
          return out;
        };
        QSERV_ASSIGN_OR_RETURN(auto lhsTables, sideTables(*b->lhs));
        QSERV_ASSIGN_OR_RETURN(auto rhsTables, sideTables(*b->rhs));
        auto onlyT = [&](const std::vector<int>& v) {
          return v.size() == 1 && v[0] == static_cast<int>(t);
        };
        auto allBelowT = [&](const std::vector<int>& v) {
          return !v.empty() && v.back() < static_cast<int>(t);
        };
        if (onlyT(rhsTables) && allBelowT(lhsTables)) {
          joinKeys.emplace_back(b->lhs.get(), b->rhs.get());
        } else if (onlyT(lhsTables) && allBelowT(rhsTables)) {
          joinKeys.emplace_back(b->rhs.get(), b->lhs.get());
        }
      }

      // Zone-based spatial join: when no equi key hashes this stage, look
      // for a near-neighbor conjunct (qserv_angSep/scisql_angSep < r)
      // before falling back to the nested loop (see sql/spatial_join.h).
      std::optional<SpatialJoinSpec> spatial;
      if (joinKeys.empty() && spatialJoinEnabled()) {
        for (const auto& c : conjuncts_) {
          if (c.maxTable != static_cast<int>(t) || c.tables.size() < 2) {
            continue;
          }
          QSERV_ASSIGN_OR_RETURN(
              auto m, matchSpatialJoin(*c.expr, scope_, t, registry_));
          if (m) {
            spatial = std::move(m);
            break;
          }
        }
      }

      // Residual conjuncts fully bound at this stage (excluding per-table
      // conjuncts, already applied; equi keys, already used; and the
      // spatial conjunct, applied exactly during the probe).
      std::vector<CompiledExprPtr> residual;
      for (const auto& c : conjuncts_) {
        if (c.maxTable != static_cast<int>(t) || c.tables.size() < 2) continue;
        if (spatial && c.expr == spatial->conjunct) continue;
        bool usedAsJoinKey = false;
        for (auto& [probe, build] : joinKeys) {
          if (c.expr->kind() == ExprKind::kBinary) {
            const auto* b = static_cast<const BinaryExpr*>(c.expr);
            if ((b->lhs.get() == probe && b->rhs.get() == build) ||
                (b->rhs.get() == probe && b->lhs.get() == build)) {
              usedAsJoinKey = true;
            }
          }
        }
        if (usedAsJoinKey) continue;
        QSERV_ASSIGN_OR_RETURN(auto compiled,
                               bindExpr(*c.expr, scope_, registry_));
        residual.push_back(std::move(compiled));
      }

      std::vector<std::vector<std::size_t>> next;
      std::vector<std::size_t> rowCursor(k, 0);
      EvalCtx ctx{tablesRaw_, rowCursor, {}};
      // Residuals stream per pair: emit() completes the cursor (the caller
      // has set rowCursor[0..t-1] from the tuple), runs the filters, and
      // materializes the extended tuple only when every one passes — peak
      // memory is O(surviving pairs), never the O(n^2) cross product.
      auto setTupleCursor = [&](const std::vector<std::size_t>& tup) {
        for (std::size_t i = 0; i < tup.size(); ++i) rowCursor[i] = tup[i];
      };
      auto emit = [&](const std::vector<std::size_t>& tup, std::size_t r) {
        rowCursor[t] = r;
        for (const auto& f : residual) {
          if (!f->eval(ctx).isTrue()) return;
        }
        auto extended = tup;
        extended.push_back(r);
        next.push_back(std::move(extended));
      };

      if (!joinKeys.empty()) {
        // Hash join: build on table t's candidates.
        std::vector<CompiledExprPtr> buildKeys, probeKeys;
        for (auto& [probe, build] : joinKeys) {
          QSERV_ASSIGN_OR_RETURN(auto bk, bindExpr(*build, scope_, registry_));
          QSERV_ASSIGN_OR_RETURN(auto pk, bindExpr(*probe, scope_, registry_));
          buildKeys.push_back(std::move(bk));
          probeKeys.push_back(std::move(pk));
        }
        std::unordered_map<GroupKey, std::vector<std::size_t>, ValueKeyHash>
            hash;
        for (std::size_t r : rows) {
          rowCursor[t] = r;
          GroupKey key;
          bool hasNull = false;
          for (const auto& bk : buildKeys) {
            Value v = bk->eval(ctx);
            if (v.isNull()) hasNull = true;
            key.values.push_back(std::move(v));
          }
          if (hasNull) continue;  // NULL never joins
          hash[std::move(key)].push_back(r);
        }
        for (const auto& tup : tuples_) {
          setTupleCursor(tup);
          GroupKey key;
          bool hasNull = false;
          for (const auto& pk : probeKeys) {
            Value v = pk->eval(ctx);
            if (v.isNull()) hasNull = true;
            key.values.push_back(std::move(v));
          }
          if (hasNull) continue;
          auto it = hash.find(key);
          if (it == hash.end()) continue;
          for (std::size_t r : it->second) {
            ++stats_.joinMatches;
            emit(tup, r);
          }
        }
      } else if (spatial) {
        // Zone join: dec-banded index over table t's candidates, probed
        // with an RA window per outer tuple; the exact angSep comparison
        // runs on every candidate so results match the nested loop
        // bit-for-bit (candidates are re-sorted by row id so even the
        // emission order is identical).
        ++stats_.spatialJoins;
        QSERV_ASSIGN_OR_RETURN(
            ZoneIndex zindex,
            ZoneIndex::build(*spatial, scope_, t, tablesRaw_, rows,
                             registry_));
        stats_.zoneJoinZonesBuilt += zindex.numZones();
        QSERV_ASSIGN_OR_RETURN(auto outerRa,
                               bindExpr(*spatial->outerRa, scope_, registry_));
        QSERV_ASSIGN_OR_RETURN(
            auto outerDec, bindExpr(*spatial->outerDec, scope_, registry_));
        const std::uint64_t totalPairs =
            static_cast<std::uint64_t>(tuples_.size()) * rows.size();
        std::uint64_t candidates = 0;
        std::vector<std::uint32_t> hits;
        for (const auto& tup : tuples_) {
          setTupleCursor(tup);
          Value raV = outerRa->eval(ctx);
          Value decV = outerDec->eval(ctx);
          // NULL/non-numeric/non-finite outer coordinates never join.
          if (!raV.isNumeric() || !decV.isNumeric()) continue;
          double ra = raV.toDouble();
          double dec = decV.toDouble();
          if (!std::isfinite(ra) || !std::isfinite(dec)) continue;
          hits.clear();
          zindex.probe(ra, dec, hits, stats_.zoneJoinZonesProbed);
          candidates += hits.size();
          std::sort(hits.begin(), hits.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      return zindex.entry(a).row < zindex.entry(b).row;
                    });
          for (std::uint32_t h : hits) {
            const ZoneIndex::Entry& e = zindex.entry(h);
            if (!spatial->matches(ra, dec, e.raOrig, e.dec)) continue;
            emit(tup, e.row);
          }
        }
        // The cost model charges pairs actually examined; the pruned
        // remainder of the cross product is the zone algorithm's win.
        stats_.pairsEvaluated += candidates;
        stats_.zoneJoinCandidates += candidates;
        stats_.zoneJoinPairsPruned += totalPairs - candidates;
      } else {
        // Streamed nested loop.
        stats_.pairsEvaluated += tuples_.size() * rows.size();
        for (const auto& tup : tuples_) {
          setTupleCursor(tup);
          for (std::size_t r : rows) emit(tup, r);
        }
      }
      tuples_ = std::move(next);
    }
    return Status::ok();
  }

  Status consumeProjection() {
    std::vector<std::size_t> rowCursor(scope_.size(), 0);
    EvalCtx ctx{tablesRaw_, rowCursor, {}};
    bool canShortCircuit = sel_.limit && sel_.orderBy.empty();
    for (const auto& tup : tuples_) {
      if (canShortCircuit &&
          static_cast<std::int64_t>(resultRows_.size()) >= *sel_.limit) {
        break;
      }
      for (std::size_t i = 0; i < tup.size(); ++i) rowCursor[i] = tup[i];
      std::vector<Value> row;
      row.reserve(itemCompiled_.size());
      for (const auto& item : itemCompiled_) row.push_back(item->eval(ctx));
      resultRows_.push_back(std::move(row));
    }
    return Status::ok();
  }

  Status consumeAggregate() {
    struct Group {
      std::vector<AggAccumulator> accs;
      std::vector<std::size_t> representative;
    };
    std::unordered_map<GroupKey, Group, GroupKeyHash> groups;
    std::vector<GroupKey> order;  // first-seen group order

    std::vector<std::size_t> rowCursor(scope_.size(), 0);
    EvalCtx ctx{tablesRaw_, rowCursor, {}};
    for (const auto& tup : tuples_) {
      for (std::size_t i = 0; i < tup.size(); ++i) rowCursor[i] = tup[i];
      GroupKey key;
      for (const auto& g : groupKeyCompiled_) {
        key.values.push_back(g->eval(ctx));
      }
      auto it = groups.find(key);
      if (it == groups.end()) {
        Group g;
        g.accs.resize(aggs_.size());
        g.representative = tup;
        it = groups.emplace(key, std::move(g)).first;
        order.push_back(key);
      }
      Group& g = it->second;
      for (std::size_t a = 0; a < aggs_.size(); ++a) {
        Value v;
        if (aggArgCompiled_[a]) v = aggArgCompiled_[a]->eval(ctx);
        g.accs[a].accumulate(aggs_[a].kind, v);
      }
    }

    if (groups.empty() && sel_.groupBy.empty()) {
      // Global aggregate over empty input: one row; COUNT()=0, others NULL.
      std::vector<Value> aggValues;
      AggAccumulator empty;
      for (const auto& spec : aggs_) {
        aggValues.push_back(empty.finalize(spec.kind));
      }
      std::vector<Value> row;
      for (const auto& item : items_) {
        ExprPtr nulled = cloneWithColumnsAsNull(*item.expr);
        QSERV_ASSIGN_OR_RETURN(auto compiled,
                               bindExpr(*nulled, {}, registry_));
        EvalCtx ectx{{}, {}, aggValues};
        row.push_back(compiled->eval(ectx));
      }
      resultRows_.push_back(std::move(row));
      return Status::ok();
    }

    for (const GroupKey& key : order) {
      const Group& g = groups.at(key);
      std::vector<Value> aggValues;
      aggValues.reserve(aggs_.size());
      for (std::size_t a = 0; a < aggs_.size(); ++a) {
        aggValues.push_back(g.accs[a].finalize(aggs_[a].kind));
      }
      for (std::size_t i = 0; i < g.representative.size(); ++i) {
        rowCursor[i] = g.representative[i];
      }
      EvalCtx gctx{tablesRaw_, rowCursor, aggValues};
      if (havingCompiled_ && !havingCompiled_->eval(gctx).isTrue()) continue;
      std::vector<Value> row;
      row.reserve(itemCompiled_.size());
      for (const auto& item : itemCompiled_) row.push_back(item->eval(gctx));
      resultRows_.push_back(std::move(row));
    }
    return Status::ok();
  }

  Status orderAndLimit() {
    if (sel_.distinct) {
      // Deduplicate rows (sqlEquals semantics via the group-key hash),
      // keeping first occurrences.
      std::unordered_map<GroupKey, bool, GroupKeyHash> seen;
      std::vector<std::vector<Value>> unique;
      unique.reserve(resultRows_.size());
      for (auto& row : resultRows_) {
        GroupKey key;
        key.values = row;
        if (seen.emplace(std::move(key), true).second) {
          unique.push_back(std::move(row));
        }
      }
      resultRows_ = std::move(unique);
    }
    if (!sel_.orderBy.empty()) {
      // Resolve each ORDER BY expression to an output column: by alias, by
      // output name, or by serialized expression text.
      std::vector<std::pair<std::size_t, bool>> keys;  // (column, desc)
      for (const auto& ob : sel_.orderBy) {
        std::string want = ob.expr->toSql();
        std::optional<std::size_t> found;
        for (std::size_t i = 0; i < outputNames_.size(); ++i) {
          if (util::iequals(outputNames_[i], want) ||
              util::iequals(items_[i].alias, want)) {
            found = i;
            break;
          }
        }
        if (!found) {
          return Status::unimplemented(util::format(
              "ORDER BY expression %s must appear in the select list",
              want.c_str()));
        }
        keys.emplace_back(*found, ob.descending);
      }
      std::stable_sort(resultRows_.begin(), resultRows_.end(),
                       [&](const auto& a, const auto& b) {
                         for (auto [col, desc] : keys) {
                           int c = a[col].compare(b[col]);
                           if (c != 0) return desc ? c > 0 : c < 0;
                         }
                         return false;
                       });
    }
    if (sel_.limit &&
        static_cast<std::int64_t>(resultRows_.size()) > *sel_.limit) {
      resultRows_.resize(static_cast<std::size_t>(*sel_.limit));
    }
    return Status::ok();
  }

  Result<TablePtr> buildResultTable() {
    // Column types come from static inference where possible (so empty
    // results keep correct declared types across dump/replay); actual
    // values can only widen INT to DOUBLE. A column mixing strings with
    // numerics is an error; a fully undeterminable all-NULL column defaults
    // to DOUBLE.
    Schema schema;
    const std::size_t ncols = outputNames_.size();
    for (std::size_t c = 0; c < ncols; ++c) {
      bool hasInt = false, hasDouble = false, hasString = false;
      for (const auto& row : resultRows_) {
        switch (row[c].type()) {
          case ValueType::kInt: hasInt = true; break;
          case ValueType::kDouble: hasDouble = true; break;
          case ValueType::kString: hasString = true; break;
          case ValueType::kNull: break;
        }
      }
      if (hasString && (hasInt || hasDouble)) {
        return Status::internal(util::format(
            "column %s mixes string and numeric values",
            outputNames_[c].c_str()));
      }
      std::optional<ColumnType> declared =
          c < declaredTypes_.size() ? declaredTypes_[c] : std::nullopt;
      ColumnType t;
      if (declared) {
        t = *declared;
        if (t == ColumnType::kInt && hasDouble) t = ColumnType::kDouble;
        if (t != ColumnType::kString && hasString) t = ColumnType::kString;
      } else {
        t = hasString ? ColumnType::kString
            : hasDouble ? ColumnType::kDouble
            : hasInt    ? ColumnType::kInt
                        : ColumnType::kDouble;
      }
      schema.addColumn(ColumnDef{outputNames_[c], t});
    }
    auto table = std::make_shared<Table>("result", std::move(schema));
    for (const auto& row : resultRows_) {
      QSERV_RETURN_IF_ERROR(table->appendRow(row));
    }
    stats_.rowsOutput += resultRows_.size();
    return table;
  }

  Database& db_;
  const SelectStmt& sel_;
  ExecStats& stats_;
  const FunctionRegistry& registry_;

  std::vector<std::string> tableKeys_;
  std::vector<TablePtr> pins_;
  std::vector<ScopeTable> scope_;
  std::vector<const Table*> tablesRaw_;

  std::vector<SelectItem> items_;
  std::vector<std::string> outputNames_;
  std::vector<CompiledExprPtr> itemCompiled_;
  std::vector<std::optional<ColumnType>> declaredTypes_;

  bool isAggregateQuery_ = false;
  std::vector<AggSpec> aggs_;
  std::vector<CompiledExprPtr> aggArgCompiled_;
  std::vector<CompiledExprPtr> groupKeyCompiled_;
  ExprPtr havingExpr_;  // aggregate calls replaced with slot refs
  CompiledExprPtr havingCompiled_;

  std::vector<Conjunct> conjuncts_;
  std::vector<std::vector<std::size_t>> tuples_;
  std::vector<std::vector<Value>> resultRows_;
};

Result<TablePtr> emptyResult() {
  return std::make_shared<Table>("result", Schema{});
}

}  // namespace

Result<TablePtr> executeSelect(Database& db, const SelectStmt& sel,
                               ExecStats& stats) {
  ++stats.statements;
  SelectExec exec(db, sel, stats);
  return exec.run();
}

Result<TablePtr> executeStatement(Database& db, const Statement& stmt,
                                  ExecStats& stats) {
  if (const auto* sel = std::get_if<SelectStmt>(&stmt)) {
    return executeSelect(db, *sel, stats);
  }
  ++stats.statements;
  if (const auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    if (db.hasTable(create->table)) {
      if (create->ifNotExists) return emptyResult();
      return Status::alreadyExists(
          util::format("table %s already exists", create->table.c_str()));
    }
    if (create->asSelect) {
      ExecStats inner;
      QSERV_ASSIGN_OR_RETURN(TablePtr result,
                             executeSelect(db, *create->asSelect, inner));
      stats.add(inner);
      stats.rowsInserted += result->numRows();
      auto table = std::make_shared<Table>(create->table, result->schema());
      QSERV_RETURN_IF_ERROR(table->appendFrom(*result));
      QSERV_RETURN_IF_ERROR(db.registerTable(std::move(table)));
      return emptyResult();
    }
    if (create->schema.numColumns() == 0) {
      return Status::invalidArgument("CREATE TABLE with no columns");
    }
    QSERV_RETURN_IF_ERROR(db.registerTable(
        std::make_shared<Table>(create->table, create->schema)));
    return emptyResult();
  }
  if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
    TablePtr table = db.findTable(insert->table);
    if (!table) {
      return Status::notFound(
          util::format("unknown table %s", insert->table.c_str()));
    }
    if (insert->select) {
      ExecStats inner;
      QSERV_ASSIGN_OR_RETURN(TablePtr result,
                             executeSelect(db, *insert->select, inner));
      stats.add(inner);
      if (result->numColumns() != table->numColumns()) {
        return Status::invalidArgument(util::format(
            "INSERT ... SELECT: %zu columns into %zu-column table",
            result->numColumns(), table->numColumns()));
      }
      QSERV_RETURN_IF_ERROR(table->appendFrom(*result));
      stats.rowsInserted += result->numRows();
    } else {
      // Bulk append: one validate+reserve pass over the whole VALUES list
      // (this is the dump-replay hot path, see sql/dump.cc).
      QSERV_RETURN_IF_ERROR(table->appendRows(insert->rows));
      stats.rowsInserted += insert->rows.size();
    }
    db.refreshIndexes(insert->table);
    return emptyResult();
  }
  if (const auto* drop = std::get_if<DropTableStmt>(&stmt)) {
    QSERV_RETURN_IF_ERROR(db.dropTable(drop->table, drop->ifExists));
    return emptyResult();
  }
  if (std::get_if<ExplainStmt>(&stmt)) {
    // Plan introspection is a frontend concern; chunk executors only ever
    // receive rewritten SELECTs.
    return Status::invalidArgument(
        "EXPLAIN is handled by the frontend, not the chunk executor");
  }
  return Status::internal("unhandled statement type");
}

}  // namespace qserv::sql
