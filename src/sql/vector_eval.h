/// \file vector_eval.h
/// \brief Vectorized scan-filter kernels with zone-map pruning.
///
/// The row-at-a-time executor evaluates each WHERE conjunct through a virtual
/// CompiledExpr::eval per row over boxed Values. For the predicate shapes that
/// dominate the paper's scan workload — `col <op> const`, `col BETWEEN a AND
/// b`, `col IN (...)`, `col IS [NOT] NULL` over INT/DOUBLE columns, and ANDs
/// of these — compileScanFilter() instead builds typed kernels that run
/// directly over Table::intColumn()/doubleColumn() storage with the column
/// null mask, compacting a selection vector block by block. Kernels are
/// reordered between blocks by observed selectivity so the cheapest-to-fail
/// predicate runs first. Conjuncts outside these shapes (strings, UDFs,
/// cross-column comparisons) are reported as *residuals* and must be applied
/// by the caller per surviving row through the scalar path — semantics are
/// identical by construction (see the parity tests in
/// tests/sql/vector_eval_test.cc).
///
/// Each kernel can also test the table's append-maintained zone map
/// (Table::zoneMap): when a predicate's value range cannot intersect the
/// column's [min,max] (or needs NULLs a column does not have), the whole scan
/// is skipped without touching a row. NaN handling is conservative: a DOUBLE
/// column that ever saw NaN disables range-based pruning for that column.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/expr_eval.h"
#include "sql/functions.h"
#include "sql/table.h"
#include "util/status.h"

namespace qserv::sql {

/// Process-wide switch for the vectorized scan path (default on). Benches
/// and parity tests flip it to compare against the row-at-a-time baseline.
void setVectorizedFilterEnabled(bool enabled);
bool vectorizedFilterEnabled();

/// A numeric constant that remembers whether it was an integer, so an
/// INT-column comparison against an INT constant stays exact 64-bit while
/// anything involving a double compares through Value::compare's widening.
struct NumBound {
  bool isInt = false;
  std::int64_t i = 0;
  double d = 0.0;
};

/// Compiled conjunction of typed filter kernels over one table.
class ScanFilter {
 public:
  /// True when at least one conjunct compiled into a kernel.
  bool hasKernels() const { return !kernels_.empty(); }
  std::size_t numKernels() const { return kernels_.size(); }

  /// Indices (into the conjunct span given to compileScanFilter) of the
  /// conjuncts that did NOT compile into kernels; the caller must apply them
  /// per surviving row through the scalar expression path.
  const std::vector<std::size_t>& residuals() const { return residuals_; }

  /// Schema column indices referenced by the kernels (deduplicated). The
  /// executor uses these to detect an applicable ordered index, which wins
  /// over a vectorized scan.
  const std::vector<std::size_t>& kernelColumns() const { return columns_; }

  /// True when the table's zone maps prove no row can satisfy every kernel:
  /// the scan can be skipped entirely. Never true for an empty table (an
  /// empty scan is already free, and stats stay comparable).
  bool prunes(const Table& table) const;

  /// Run the kernels over all rows of \p table, appending surviving row ids
  /// to \p out in ascending order. Updates per-kernel selectivity counters
  /// and reorders kernels between blocks (cheapest-to-fail first).
  void run(const Table& table, std::vector<std::size_t>& out);

  /// Count surviving rows without materializing row ids (COUNT(*) pushdown;
  /// only meaningful when residuals() is empty).
  std::size_t count(const Table& table);

 private:
  friend util::Result<ScanFilter> compileScanFilter(
      std::span<const Expr* const> conjuncts,
      std::span<const ScopeTable> scope, std::size_t tableIdx,
      const FunctionRegistry& registry);

  enum class Kind : std::uint8_t {
    kNever,    ///< statically false/NULL for every row (e.g. col < NULL)
    kCmp,      ///< col <op> numeric-const
    kBetween,  ///< col [NOT] BETWEEN numeric consts (lo <= hi)
    kIn,       ///< col [NOT] IN (numeric consts)
    kIsNull,   ///< col IS [NOT] NULL (any column type)
  };
  enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

  struct Kernel {
    Kind kind = Kind::kNever;
    std::size_t col = 0;
    ColumnType colType = ColumnType::kInt;
    CmpOp op = CmpOp::kEq;
    bool negated = false;        // kBetween / kIn / kIsNull
    NumBound lo, hi;             // kCmp uses lo; kBetween uses both
    std::vector<NumBound> set;   // kIn
    // Adaptive ordering state: fraction passed/seen so far.
    std::uint64_t seen = 0;
    std::uint64_t passed = 0;
  };

  std::size_t filterBlock(const Table& table, const Kernel& k,
                          std::uint32_t* sel, std::size_t n) const;
  bool kernelPrunes(const Table& table, const Kernel& k) const;
  std::size_t runBlocks(const Table& table, std::vector<std::size_t>* out);

  std::vector<Kernel> kernels_;
  std::vector<std::size_t> order_;      // kernel evaluation order
  std::vector<std::size_t> residuals_;
  std::vector<std::size_t> columns_;
  std::vector<std::uint32_t> sel_;      // block selection scratch
};

/// Compile the subset of \p conjuncts (all referencing only scope table
/// \p tableIdx) that match the supported kernel shapes; the rest come back
/// as residuals. Compilation never fails on an unsupported shape — only on
/// internal errors (a constant subexpression that cannot be bound is treated
/// as residual so the scalar path surfaces its error).
util::Result<ScanFilter> compileScanFilter(
    std::span<const Expr* const> conjuncts, std::span<const ScopeTable> scope,
    std::size_t tableIdx, const FunctionRegistry& registry);

}  // namespace qserv::sql
