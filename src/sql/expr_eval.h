/// \file expr_eval.h
/// \brief Expression binding (name resolution) and row-at-a-time evaluation.
///
/// Binding happens once per statement: column references resolve to
/// (table index, column index) slots against a scope of FROM tables, and
/// function names resolve against a FunctionRegistry. The compiled tree is
/// then evaluated per row with MySQL-like semantics: NULL propagates through
/// arithmetic and comparisons, AND/OR use three-valued logic, and `/` always
/// yields a double (division by zero yields NULL).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/functions.h"
#include "sql/table.h"
#include "util/status.h"

namespace qserv::sql {

/// A FROM-clause table visible to name resolution.
struct ScopeTable {
  std::string bindingName;  ///< alias if present, else table name
  const Table* table = nullptr;
};

/// Evaluation context: the current row in each scope table. `rows[i]` indexes
/// into `tables[i]`. `extra` carries out-of-row values referenced by
/// SlotRefExpr nodes (per-group aggregate results).
struct EvalCtx {
  std::span<const Table* const> tables;
  std::span<const std::size_t> rows;
  std::span<const Value> extra;
};

/// A bound, evaluable expression.
class CompiledExpr {
 public:
  virtual ~CompiledExpr() = default;
  virtual Value eval(const EvalCtx& ctx) const = 0;
};

using CompiledExprPtr = std::unique_ptr<CompiledExpr>;

/// Binds \p expr against \p scope. Fails on unknown/ambiguous columns,
/// unknown functions, arity mismatches, `*` outside COUNT(*), and aggregate
/// calls (the executor extracts aggregates before binding).
util::Result<CompiledExprPtr> bindExpr(const Expr& expr,
                                       std::span<const ScopeTable> scope,
                                       const FunctionRegistry& registry);

/// Convenience: bind and evaluate a constant expression (empty scope).
util::Result<Value> evalConstExpr(const Expr& expr,
                                  const FunctionRegistry& registry);

/// True when \p expr references no columns (safe for evalConstExpr).
/// Shared by the executor's index-probe planning and the vectorized
/// scan-filter compiler (sql/vector_eval.h).
bool isConstExpr(const Expr& expr);

/// Resolved column slot, exposed for executor planning (index lookups,
/// hash-join key extraction).
struct ColumnSlot {
  std::size_t tableIdx = 0;
  std::size_t columnIdx = 0;
};

/// Resolve a column reference against a scope without compiling.
util::Result<ColumnSlot> resolveColumn(const ColumnRef& ref,
                                       std::span<const ScopeTable> scope);

/// Mark in \p used (size == scope.size()) every scope table referenced by a
/// column inside \p expr. Fails on unknown/ambiguous columns. Shared by the
/// executor's join planning and the spatial-join detector
/// (sql/spatial_join.h).
util::Status collectReferencedTables(const Expr& expr,
                                     std::span<const ScopeTable> scope,
                                     std::vector<bool>& used);

}  // namespace qserv::sql
