/// \file ast.h
/// \brief SQL abstract syntax tree.
///
/// All nodes support deep clone() and toSql() serialization: the Qserv
/// frontend rewrites user queries by cloning the parsed tree, mutating table
/// references / aggregates / spatial pseudo-functions, and re-serializing
/// one query per chunk (paper §5.3).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "sql/schema.h"
#include "sql/value.h"

namespace qserv::sql {

// ---------------------------------------------------------------- expressions

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kStar,
  kUnary,
  kBinary,
  kFuncCall,
  kBetween,
  kIn,
  kIsNull,
  kSlotRef,
};

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};
enum class UnOp { kNeg, kNot };

const char* binOpSql(BinOp op);

/// Backquote \p name unless it is a plain identifier ([A-Za-z_][A-Za-z0-9_]*).
std::string quoteIdentIfNeeded(const std::string& name);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }
  virtual ExprPtr clone() const = 0;
  virtual std::string toSql() const = 0;

 private:
  ExprKind kind_;
};

/// Literal constant.
class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  ExprPtr clone() const override { return std::make_unique<LiteralExpr>(value); }
  std::string toSql() const override { return value.toSqlLiteral(); }

  Value value;
};

/// Column reference, optionally qualified: column | qualifier.column.
/// The qualifier is a table name or alias (Qserv does not use db.table.col
/// column references; database qualifiers appear only in table refs).
class ColumnRef final : public Expr {
 public:
  ColumnRef(std::string qualifier, std::string column)
      : Expr(ExprKind::kColumnRef),
        qualifier(std::move(qualifier)),
        column(std::move(column)) {}
  ExprPtr clone() const override {
    return std::make_unique<ColumnRef>(qualifier, column);
  }
  std::string toSql() const override;

  std::string qualifier;  // may be empty
  std::string column;
};

/// `*` or `alias.*` in a select list or COUNT(*).
class StarExpr final : public Expr {
 public:
  explicit StarExpr(std::string qualifier = {})
      : Expr(ExprKind::kStar), qualifier(std::move(qualifier)) {}
  ExprPtr clone() const override { return std::make_unique<StarExpr>(qualifier); }
  std::string toSql() const override {
    return qualifier.empty() ? "*" : qualifier + ".*";
  }

  std::string qualifier;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnOp op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op(op), operand(std::move(operand)) {}
  ExprPtr clone() const override {
    return std::make_unique<UnaryExpr>(op, operand->clone());
  }
  std::string toSql() const override {
    return (op == UnOp::kNeg ? "-" : "NOT ") + std::string("(") +
           operand->toSql() + ")";
  }

  UnOp op;
  ExprPtr operand;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kBinary), op(op), lhs(std::move(lhs)), rhs(std::move(rhs)) {}
  ExprPtr clone() const override {
    return std::make_unique<BinaryExpr>(op, lhs->clone(), rhs->clone());
  }
  std::string toSql() const override;

  BinOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// Function call: scalar UDFs, Qserv pseudo-functions (qserv_areaspec_box),
/// and aggregates (COUNT/SUM/AVG/MIN/MAX — recognized by name).
class FuncCall final : public Expr {
 public:
  FuncCall(std::string name, std::vector<ExprPtr> args)
      : Expr(ExprKind::kFuncCall), name(std::move(name)), args(std::move(args)) {}
  ExprPtr clone() const override;
  std::string toSql() const override;

  /// True when `name` is an aggregate function.
  bool isAggregate() const;

  std::string name;
  std::vector<ExprPtr> args;
};

class BetweenExpr final : public Expr {
 public:
  BetweenExpr(ExprPtr expr, ExprPtr lo, ExprPtr hi, bool negated)
      : Expr(ExprKind::kBetween),
        expr(std::move(expr)), lo(std::move(lo)), hi(std::move(hi)),
        negated(negated) {}
  ExprPtr clone() const override {
    return std::make_unique<BetweenExpr>(expr->clone(), lo->clone(),
                                         hi->clone(), negated);
  }
  std::string toSql() const override;

  ExprPtr expr, lo, hi;
  bool negated;
};

class InExpr final : public Expr {
 public:
  InExpr(ExprPtr expr, std::vector<ExprPtr> list, bool negated)
      : Expr(ExprKind::kIn), expr(std::move(expr)), list(std::move(list)),
        negated(negated) {}
  ExprPtr clone() const override;
  std::string toSql() const override;

  ExprPtr expr;
  std::vector<ExprPtr> list;
  bool negated;
};

/// Internal node: reads slot \p slot of the EvalCtx `extra` span. The
/// executor substitutes aggregate calls with slot refs so outer expressions
/// (e.g. the merger's SUM(a)/SUM(b)) can be evaluated over per-group
/// aggregate results. Never produced by the parser; toSql() output is for
/// diagnostics only.
class SlotRefExpr final : public Expr {
 public:
  explicit SlotRefExpr(std::size_t slot) : Expr(ExprKind::kSlotRef), slot(slot) {}
  ExprPtr clone() const override { return std::make_unique<SlotRefExpr>(slot); }
  std::string toSql() const override {
    return "$slot" + std::to_string(slot);
  }

  std::size_t slot;
};

class IsNullExpr final : public Expr {
 public:
  IsNullExpr(ExprPtr expr, bool negated)
      : Expr(ExprKind::kIsNull), expr(std::move(expr)), negated(negated) {}
  ExprPtr clone() const override {
    return std::make_unique<IsNullExpr>(expr->clone(), negated);
  }
  std::string toSql() const override {
    return "(" + expr->toSql() + (negated ? " IS NOT NULL)" : " IS NULL)");
  }

  ExprPtr expr;
  bool negated;
};

// ---------------------------------------------------------------- statements

/// One select-list item: expression with optional alias.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none

  SelectItem clone() const { return {expr->clone(), alias}; }
  std::string toSql() const;
};

/// A table in the FROM clause: [db.]table [AS] alias.
struct TableRef {
  std::string database;  // empty if unqualified
  std::string table;
  std::string alias;     // empty if none

  /// Alias if present, else table name — the name columns bind against.
  const std::string& bindingName() const { return alias.empty() ? table : alias; }
  std::string toSql() const;
};

struct OrderByItem {
  ExprPtr expr;
  bool descending = false;

  OrderByItem clone() const { return {expr->clone(), descending}; }
};

struct SelectStmt {
  bool distinct = false;  ///< SELECT DISTINCT: result rows deduplicated
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;                     // null if absent
  std::vector<ExprPtr> groupBy;
  ExprPtr having;                    // null if absent; may contain aggregates
  std::vector<OrderByItem> orderBy;
  std::optional<std::int64_t> limit;

  SelectStmt clone() const;
  std::string toSql() const;
};

struct CreateTableStmt {
  std::string table;
  bool ifNotExists = false;
  Schema schema;                           // used when asSelect is absent
  std::unique_ptr<SelectStmt> asSelect;    // CREATE TABLE ... AS SELECT

  std::string toSql() const;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<Value>> rows;    // VALUES form (literals only)
  std::unique_ptr<SelectStmt> select;      // INSERT ... SELECT form

  std::string toSql() const;
};

struct DropTableStmt {
  std::string table;
  bool ifExists = false;

  std::string toSql() const;
};

/// EXPLAIN [ANALYZE] <select>: plan introspection. Handled entirely by the
/// frontend (czar) — the chunk executor rejects it, since workers only ever
/// see rewritten chunk SELECTs.
struct ExplainStmt {
  bool analyze = false;              ///< EXPLAIN ANALYZE: execute + profile
  std::unique_ptr<SelectStmt> select;

  std::string toSql() const;
};

using Statement = std::variant<SelectStmt, CreateTableStmt, InsertStmt,
                               DropTableStmt, ExplainStmt>;

std::string statementToSql(const Statement& stmt);

}  // namespace qserv::sql
