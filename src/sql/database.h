/// \file database.h
/// \brief An embedded SQL database: named tables, indexes, and execution.
///
/// Each Qserv worker hosts one Database holding its chunk tables
/// (Object_CC, Source_CC, overlap tables); the master hosts one for result
/// merging. The table map is thread-safe so a worker can execute several
/// chunk queries concurrently (distinct queries create distinct
/// task-scoped subchunk tables); table *contents* are append-only and only
/// written by their creating statement.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sql/functions.h"
#include "sql/index.h"
#include "sql/table.h"
#include "util/status.h"

namespace qserv::sql {

/// Work observables from one statement/script execution; the simio cost
/// model converts these into virtual time.
struct ExecStats {
  std::uint64_t rowsScanned = 0;    ///< base-table rows read (scan or index)
  std::uint64_t pairsEvaluated = 0; ///< nested-loop join pairs examined
  std::uint64_t joinMatches = 0;    ///< equi-join (hash) matches emitted
  std::uint64_t rowsOutput = 0;     ///< result rows produced
  std::uint64_t rowsInserted = 0;   ///< rows written by INSERT/CTAS
  std::uint64_t indexLookups = 0;   ///< executions served by an index probe
  std::uint64_t statements = 0;     ///< statements executed
  // Vectorized scan path (sql/vector_eval.h):
  std::uint64_t vectorizedScans = 0;   ///< full scans run through kernels
  std::uint64_t vectorRowsIn = 0;      ///< rows entering the kernel pipeline
  std::uint64_t vectorRowsOut = 0;     ///< rows surviving all kernels
  std::uint64_t fallbackRows = 0;      ///< survivors re-checked row-at-a-time
  std::uint64_t zoneMapPrunes = 0;     ///< scans skipped via zone maps
  std::uint64_t zoneMapRowsSkipped = 0;  ///< rows those scans never touched
  // Zone-based spatial join (sql/spatial_join.h):
  std::uint64_t spatialJoins = 0;        ///< join stages run through zones
  std::uint64_t zoneJoinZonesBuilt = 0;  ///< dec bands across built indexes
  std::uint64_t zoneJoinZonesProbed = 0; ///< zone buckets inspected by probes
  std::uint64_t zoneJoinCandidates = 0;  ///< pairs reaching the exact test
  std::uint64_t zoneJoinPairsPruned = 0; ///< pairs the window never examined
  /// Base-table rows read, broken down by table name — the cost model
  /// charges different paper-scale row widths per table.
  std::map<std::string, std::uint64_t> rowsScannedByTable;

  void add(const ExecStats& o);
};

class Database {
 public:
  explicit Database(std::string name = "db");

  const std::string& name() const { return name_; }

  /// Register an externally built table (data loading path). Fails with
  /// kAlreadyExists when the name is taken.
  util::Status registerTable(TablePtr table);

  /// Atomically replace a registered table with a new snapshot (registering
  /// it when absent) and rebuild its indexes over the new contents. This is
  /// the supported way to publish contents that evolve after registration
  /// (e.g. the frontend's QueryStats history) without violating the
  /// append-only invariant: readers that already hold the previous TablePtr
  /// keep scanning an unchanging table.
  util::Status replaceTable(TablePtr table);

  /// Remove a table and its indexes.
  util::Status dropTable(const std::string& table, bool ifExists = false);

  /// Rename a table in place, carrying its indexes along. Fails with
  /// kNotFound when \p from is absent and kAlreadyExists when \p to is
  /// taken. The merger uses this to adopt the first chunk dump's table as
  /// the merge table instead of copying it row by row.
  util::Status renameTable(const std::string& from, const std::string& to);

  /// Find a table; nullptr when absent. Lookup is exact (case-sensitive),
  /// like MySQL table names on Unix.
  TablePtr findTable(const std::string& table) const;

  bool hasTable(const std::string& table) const {
    return findTable(table) != nullptr;
  }

  std::vector<std::string> tableNames() const;

  /// Build an ordered index over \p column of \p table.
  util::Status createIndex(const std::string& table,
                           const std::string& column);

  /// Find an index; nullptr when absent.
  std::shared_ptr<const OrderedIndex> findIndex(
      const std::string& table, const std::string& column) const;

  /// Re-extend indexes of \p table for rows appended since they were built.
  void refreshIndexes(const std::string& table);

  /// Mutable registry: callers may add custom UDFs before executing.
  FunctionRegistry& functions() { return registry_; }
  const FunctionRegistry& functions() const { return registry_; }

  /// Execute one SQL statement. SELECTs return their result table; DDL/DML
  /// return an empty zero-column table. \p stats (optional) accumulates
  /// work observables.
  util::Result<TablePtr> execute(std::string_view sql,
                                 ExecStats* stats = nullptr);

  /// Execute a semicolon-separated script. The rows of every SELECT are
  /// appended into a single result table (the chunk-query protocol runs one
  /// SELECT per subchunk and unions the outputs, paper §5.4).
  util::Result<TablePtr> executeScript(std::string_view sql,
                                       ExecStats* stats = nullptr);

 private:
  friend class Executor;

  std::string name_;
  FunctionRegistry registry_;

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, TablePtr> tables_;
  /// table -> column (lowercased) -> index. Indexes are immutable snapshots,
  /// replaced wholesale by refreshIndexes.
  std::unordered_map<std::string,
                     std::unordered_map<std::string,
                                        std::shared_ptr<const OrderedIndex>>>
      indexes_;
};

}  // namespace qserv::sql
