#include "sql/schema.h"

#include "util/strings.h"

namespace qserv::sql {

const char* columnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt: return "BIGINT";
    case ColumnType::kDouble: return "DOUBLE";
    case ColumnType::kString: return "VARCHAR";
  }
  return "?";
}

bool valueMatches(ColumnType t, const Value& v) {
  if (v.isNull()) return true;
  switch (t) {
    case ColumnType::kInt: return v.isInt();
    case ColumnType::kDouble: return v.isNumeric();
    case ColumnType::kString: return v.isString();
  }
  return false;
}

std::optional<std::size_t> Schema::indexOf(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (util::iequals(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::string Schema::toSql() const {
  std::string out = "(";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "`" + columns_[i].name + "` " + columnTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace qserv::sql
