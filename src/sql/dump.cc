#include "sql/dump.h"

#include "util/strings.h"

namespace qserv::sql {

std::string dumpTable(const Table& table, const std::string& targetName,
                      std::size_t batchRows) {
  if (batchRows == 0) batchRows = 1;
  std::string out = "-- qserv-dump v1\n";
  out += "DROP TABLE IF EXISTS `" + targetName + "`;\n";
  out += "CREATE TABLE `" + targetName + "` ";
  // VARCHAR needs a length to read back.
  std::string cols = "(";
  for (std::size_t i = 0; i < table.numColumns(); ++i) {
    if (i > 0) cols += ", ";
    const ColumnDef& c = table.schema().column(i);
    cols += "`" + c.name + "` ";
    switch (c.type) {
      case ColumnType::kInt: cols += "BIGINT"; break;
      case ColumnType::kDouble: cols += "DOUBLE"; break;
      case ColumnType::kString: cols += "VARCHAR(255)"; break;
    }
  }
  cols += ")";
  out += cols + ";\n";

  for (std::size_t start = 0; start < table.numRows(); start += batchRows) {
    std::size_t end = std::min(start + batchRows, table.numRows());
    out += "INSERT INTO `" + targetName + "` VALUES ";
    for (std::size_t r = start; r < end; ++r) {
      if (r > start) out += ",";
      out += "(";
      for (std::size_t c = 0; c < table.numColumns(); ++c) {
        if (c > 0) out += ",";
        out += table.cell(r, c).toSqlLiteral();
      }
      out += ")";
    }
    out += ";\n";
  }
  return out;
}

util::Result<TablePtr> loadDump(Database& db, std::string_view dump) {
  ExecStats stats;
  QSERV_ASSIGN_OR_RETURN(TablePtr result, db.executeScript(dump, &stats));
  (void)result;  // dumps contain no SELECTs
  // The dump creates exactly one table, named in its CREATE TABLE header.
  std::size_t pos = dump.find("CREATE TABLE `");
  if (pos == std::string_view::npos) {
    return util::Status::invalidArgument("dump has no CREATE TABLE");
  }
  pos += 14;
  std::size_t end = dump.find('`', pos);
  if (end == std::string_view::npos) {
    return util::Status::invalidArgument("malformed CREATE TABLE in dump");
  }
  std::string name(dump.substr(pos, end - pos));
  TablePtr table = db.findTable(name);
  if (!table) {
    return util::Status::internal("dump replay did not create " + name);
  }
  return table;
}

}  // namespace qserv::sql
