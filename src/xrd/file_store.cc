#include "xrd/file_store.h"

namespace qserv::xrd {

void FileStore::publish(const std::string& path, std::string bytes) {
  {
    std::lock_guard lock(mutex_);
    files_[path].push_back(Entry{std::move(bytes), util::Status::ok(), false});
  }
  cv_.notify_all();
}

void FileStore::publishError(const std::string& path, util::Status error) {
  {
    std::lock_guard lock(mutex_);
    files_[path].push_back(Entry{{}, std::move(error), true});
  }
  cv_.notify_all();
}

util::Result<std::string> FileStore::waitFor(const std::string& path,
                                             std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  bool ready = cv_.wait_for(lock, timeout, [&] {
    auto it = files_.find(path);
    return aborted_ || (it != files_.end() && !it->second.empty());
  });
  if (aborted_) {
    return util::Status::aborted("file store shut down");
  }
  if (!ready) {
    return util::Status::unavailable("timed out waiting for " + path);
  }
  auto it = files_.find(path);
  Entry entry = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) files_.erase(it);
  lock.unlock();
  // Consumption opens window slots for awaitDrain publishers.
  cv_.notify_all();
  if (entry.failed) return entry.error;
  return std::move(entry.bytes);
}

bool FileStore::awaitDrain(const std::string& path, std::size_t maxQueued,
                           std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  return cv_.wait_for(lock, timeout, [&] {
    if (aborted_) return true;
    auto it = files_.find(path);
    return it == files_.end() || it->second.size() < maxQueued;
  }) && !aborted_;
}

std::optional<std::string> FileStore::tryGet(const std::string& path) const {
  std::lock_guard lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end() || it->second.empty() || it->second.front().failed) {
    return std::nullopt;
  }
  return it->second.front().bytes;
}

void FileStore::remove(const std::string& path) {
  {
    std::lock_guard lock(mutex_);
    files_.erase(path);
  }
  cv_.notify_all();
}

std::size_t FileStore::size() const {
  std::lock_guard lock(mutex_);
  return files_.size();
}

void FileStore::abortAll() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

}  // namespace qserv::xrd
