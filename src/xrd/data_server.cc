#include "xrd/data_server.h"

namespace qserv::xrd {

DataServer::DataServer(std::string id, std::shared_ptr<OfsPlugin> plugin)
    : id_(std::move(id)), plugin_(std::move(plugin)) {}

util::Status DataServer::write(const std::string& path, std::string payload) {
  if (!isUp()) {
    return util::Status::unavailable("data server " + id_ + " is down");
  }
  bytesWritten_.fetch_add(payload.size(), std::memory_order_relaxed);
  return plugin_->writeFile(path, std::move(payload));
}

util::Result<std::string> DataServer::read(const std::string& path) {
  if (!isUp()) {
    return util::Status::unavailable("data server " + id_ + " is down");
  }
  auto result = plugin_->readFile(path);
  if (result.isOk()) {
    bytesRead_.fetch_add(result->size(), std::memory_order_relaxed);
  }
  return result;
}

}  // namespace qserv::xrd
