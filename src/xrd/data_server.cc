#include "xrd/data_server.h"

#include "util/metrics.h"
#include "util/strings.h"
#include "xrd/paths.h"

namespace qserv::xrd {

namespace {
/// Process-wide transaction counters over all data servers (paper §5.4's
/// open/write/close and open/read/close file transactions).
struct XrdMetrics {
  util::Counter& writeTransactions;
  util::Counter& readTransactions;
  util::Counter& bytesWritten;
  util::Counter& bytesRead;
  util::Counter& refusedDown;
  util::Counter& failures;
  util::Counter& batchWrites;
  util::Counter& streamReads;

  static XrdMetrics& instance() {
    auto& reg = util::MetricsRegistry::instance();
    static XrdMetrics* m = new XrdMetrics{
        reg.counter("xrd.write_transactions"),
        reg.counter("xrd.read_transactions"),
        reg.counter("xrd.bytes_written"),
        reg.counter("xrd.bytes_read"),
        reg.counter("xrd.refused_down"),
        reg.counter("xrd.failed_transactions"),
        reg.counter("xrd.batch_writes"),
        reg.counter("xrd.stream_reads"),
    };
    return *m;
  }
};
}  // namespace

DataServer::DataServer(std::string id, std::shared_ptr<OfsPlugin> plugin)
    : id_(std::move(id)), plugin_(std::move(plugin)) {}

util::Status DataServer::write(const std::string& path, std::string payload) {
  auto& metrics = XrdMetrics::instance();
  metrics.writeTransactions.add();
  if (util::startsWith(path, kBatchPrefix)) metrics.batchWrites.add();
  if (!isUp()) {
    metrics.refusedDown.add();
    return util::Status::unavailable("data server " + id_ + " is down");
  }
  std::size_t size = payload.size();
  util::Status status = plugin_->writeFile(path, std::move(payload));
  if (status.isOk()) {
    bytesWritten_.fetch_add(size, std::memory_order_relaxed);
    metrics.bytesWritten.add(size);
  } else {
    metrics.failures.add();
  }
  return status;
}

util::Result<std::string> DataServer::read(const std::string& path,
                                           const util::Deadline& deadline) {
  auto& metrics = XrdMetrics::instance();
  metrics.readTransactions.add();
  if (util::startsWith(path, kBatchStreamPrefix)) metrics.streamReads.add();
  if (!isUp()) {
    metrics.refusedDown.add();
    return util::Status::unavailable("data server " + id_ + " is down");
  }
  auto result = plugin_->readFile(path, deadline);
  if (result.isOk()) {
    bytesRead_.fetch_add(result->size(), std::memory_order_relaxed);
    metrics.bytesRead.add(result->size());
  } else {
    metrics.failures.add();
  }
  return result;
}

}  // namespace qserv::xrd
