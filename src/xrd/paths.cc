#include "xrd/paths.h"

#include <cctype>

#include "util/strings.h"

namespace qserv::xrd {

namespace {

/// Shared shape of every chunk-addressed path kind: prefix + decimal id.
std::optional<std::int32_t> parseIdPath(std::string_view path,
                                        std::string_view prefix) {
  if (!util::startsWith(path, prefix)) return std::nullopt;
  std::string_view rest = path.substr(prefix.size());
  if (rest.empty() || rest.size() > 10) return std::nullopt;
  std::int64_t value = 0;
  for (char c : rest) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    value = value * 10 + (c - '0');
  }
  if (value > INT32_MAX) return std::nullopt;
  return static_cast<std::int32_t>(value);
}

}  // namespace

std::string makeQueryPath(std::int32_t chunkId) {
  return std::string(kQueryPrefix) + std::to_string(chunkId);
}

std::string makeResultPath(std::string_view md5Hex) {
  return std::string(kResultPrefix) + std::string(md5Hex);
}

std::optional<std::int32_t> parseQueryPath(std::string_view path) {
  return parseIdPath(path, kQueryPrefix);
}

std::string makeChunkPath(std::int32_t chunkId) {
  return std::string(kChunkPrefix) + std::to_string(chunkId);
}

std::string makeChunkLoadPath(std::int32_t chunkId) {
  return std::string(kChunkLoadPrefix) + std::to_string(chunkId);
}

std::string makeChunkDropPath(std::int32_t chunkId) {
  return std::string(kChunkDropPrefix) + std::to_string(chunkId);
}

std::optional<std::int32_t> parseChunkPath(std::string_view path) {
  return parseIdPath(path, kChunkPrefix);
}

std::optional<std::int32_t> parseChunkLoadPath(std::string_view path) {
  return parseIdPath(path, kChunkLoadPrefix);
}

std::optional<std::int32_t> parseChunkDropPath(std::string_view path) {
  return parseIdPath(path, kChunkDropPrefix);
}

namespace {

/// Shared shape of every hash-addressed path kind: prefix + 32 hex digits.
std::optional<std::string> parseHashPath(std::string_view path,
                                         std::string_view prefix) {
  if (!util::startsWith(path, prefix)) return std::nullopt;
  std::string_view rest = path.substr(prefix.size());
  if (rest.size() != 32) return std::nullopt;
  for (char c : rest) {
    bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return std::nullopt;
  }
  return std::string(rest);
}

}  // namespace

std::string makeBatchPath(std::string_view batchId) {
  return std::string(kBatchPrefix) + std::string(batchId);
}

std::string makeBatchStreamPath(std::string_view batchId) {
  return std::string(kBatchStreamPrefix) + std::string(batchId);
}

std::string makeBatchCancelPath(std::string_view batchId) {
  return std::string(kBatchCancelPrefix) + std::string(batchId);
}

std::optional<std::string> parseResultPath(std::string_view path) {
  return parseHashPath(path, kResultPrefix);
}

std::optional<std::string> parseBatchPath(std::string_view path) {
  return parseHashPath(path, kBatchPrefix);
}

std::optional<std::string> parseBatchStreamPath(std::string_view path) {
  return parseHashPath(path, kBatchStreamPrefix);
}

std::optional<std::string> parseBatchCancelPath(std::string_view path) {
  return parseHashPath(path, kBatchCancelPrefix);
}

}  // namespace qserv::xrd
