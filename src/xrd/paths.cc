#include "xrd/paths.h"

#include <cctype>

#include "util/strings.h"

namespace qserv::xrd {

std::string makeQueryPath(std::int32_t chunkId) {
  return std::string(kQueryPrefix) + std::to_string(chunkId);
}

std::string makeResultPath(std::string_view md5Hex) {
  return std::string(kResultPrefix) + std::string(md5Hex);
}

std::optional<std::int32_t> parseQueryPath(std::string_view path) {
  if (!util::startsWith(path, kQueryPrefix)) return std::nullopt;
  std::string_view rest = path.substr(kQueryPrefix.size());
  if (rest.empty() || rest.size() > 10) return std::nullopt;
  std::int64_t value = 0;
  for (char c : rest) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    value = value * 10 + (c - '0');
  }
  if (value > INT32_MAX) return std::nullopt;
  return static_cast<std::int32_t>(value);
}

std::optional<std::string> parseResultPath(std::string_view path) {
  if (!util::startsWith(path, kResultPrefix)) return std::nullopt;
  std::string_view rest = path.substr(kResultPrefix.size());
  if (rest.size() != 32) return std::nullopt;
  for (char c : rest) {
    bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return std::nullopt;
  }
  return std::string(rest);
}

}  // namespace qserv::xrd
