/// \file paths.h
/// \brief Qserv's Xrootd path scheme (paper §5.4).
///
/// Chunk queries are written to partition-addressed paths
///   /query2/<chunkId>
/// and results are read from hash-addressed paths
///   /result/<32-hex-digit MD5 of the chunk query text>.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace qserv::xrd {

inline constexpr std::string_view kQueryPrefix = "/query2/";
inline constexpr std::string_view kResultPrefix = "/result/";

/// "/query2/<chunkId>".
std::string makeQueryPath(std::int32_t chunkId);

/// "/result/<hash>"; \p md5Hex must be 32 lowercase hex digits.
std::string makeResultPath(std::string_view md5Hex);

/// Chunk id from a query path, or nullopt if \p path is not one.
std::optional<std::int32_t> parseQueryPath(std::string_view path);

/// Hash from a result path, or nullopt if \p path is not one.
std::optional<std::string> parseResultPath(std::string_view path);

}  // namespace qserv::xrd
