/// \file paths.h
/// \brief Qserv's Xrootd path scheme (paper §5.4).
///
/// Chunk queries are written to partition-addressed paths
///   /query2/<chunkId>
/// and results are read from hash-addressed paths
///   /result/<32-hex-digit MD5 of the chunk query text>.
///
/// Batched dispatch (the §7.6 remedy) adds three hash-addressed path kinds,
/// all keyed by the MD5 of the batch request payload:
///   /batch/<batchId>    one write carries a whole chunk list for one worker
///   /bstream/<batchId>  per-chunk result frames stream back over this path
///   /bcancel/<batchId>  the master abandons the batch (stops the stream)
///
/// The replication control plane adds four administrative path kinds, served
/// by the same data servers so fault injection and liveness apply to repair
/// traffic exactly as to query traffic:
///   /ping                health probe; read returns a liveness/load line
///   /chunk/<chunkId>     read a self-verifying snapshot of one chunk's tables
///   /chunkload/<chunkId> write a snapshot to install the chunk (new replica)
///   /chunkdrop/<chunkId> write to drop the chunk's replica (rebalance source)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace qserv::xrd {

inline constexpr std::string_view kQueryPrefix = "/query2/";
inline constexpr std::string_view kResultPrefix = "/result/";
inline constexpr std::string_view kBatchPrefix = "/batch/";
inline constexpr std::string_view kBatchStreamPrefix = "/bstream/";
inline constexpr std::string_view kBatchCancelPrefix = "/bcancel/";
inline constexpr std::string_view kPingPath = "/ping";
inline constexpr std::string_view kChunkPrefix = "/chunk/";
inline constexpr std::string_view kChunkLoadPrefix = "/chunkload/";
inline constexpr std::string_view kChunkDropPrefix = "/chunkdrop/";

/// "/query2/<chunkId>".
std::string makeQueryPath(std::int32_t chunkId);

/// "/result/<hash>"; \p md5Hex must be 32 lowercase hex digits.
std::string makeResultPath(std::string_view md5Hex);

/// "/batch/<batchId>"; \p batchId must be 32 lowercase hex digits.
std::string makeBatchPath(std::string_view batchId);

/// "/bstream/<batchId>" — the shared result-frame stream of one batch.
std::string makeBatchStreamPath(std::string_view batchId);

/// "/bcancel/<batchId>" — master-side abandonment of one batch.
std::string makeBatchCancelPath(std::string_view batchId);

/// Chunk id from a query path, or nullopt if \p path is not one.
std::optional<std::int32_t> parseQueryPath(std::string_view path);

/// Hash from a result path, or nullopt if \p path is not one.
std::optional<std::string> parseResultPath(std::string_view path);

/// Batch id from a batch path, or nullopt if \p path is not one.
std::optional<std::string> parseBatchPath(std::string_view path);

/// Batch id from a batch-stream path, or nullopt if \p path is not one.
std::optional<std::string> parseBatchStreamPath(std::string_view path);

/// Batch id from a batch-cancel path, or nullopt if \p path is not one.
std::optional<std::string> parseBatchCancelPath(std::string_view path);

/// "/chunk/<chunkId>" — chunk-snapshot read (replica copy source).
std::string makeChunkPath(std::int32_t chunkId);

/// "/chunkload/<chunkId>" — chunk-snapshot install write (new replica).
std::string makeChunkLoadPath(std::int32_t chunkId);

/// "/chunkdrop/<chunkId>" — replica drop write (rebalance source side).
std::string makeChunkDropPath(std::int32_t chunkId);

/// Chunk id from a chunk-snapshot path, or nullopt if \p path is not one.
std::optional<std::int32_t> parseChunkPath(std::string_view path);

/// Chunk id from a chunk-load path, or nullopt if \p path is not one.
std::optional<std::int32_t> parseChunkLoadPath(std::string_view path);

/// Chunk id from a chunk-drop path, or nullopt if \p path is not one.
std::optional<std::int32_t> parseChunkDropPath(std::string_view path);

}  // namespace qserv::xrd
