/// \file file_store.h
/// \brief Blocking path -> bytes store with publish/wait semantics.
///
/// Backs result files on workers: the master's read of /result/<hash> blocks
/// until the worker finishes the chunk query and publishes the dump — the
/// same observable behaviour as an Xrootd file appearing when written.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/status.h"

namespace qserv::xrd {

/// Each path holds a QUEUE of published payloads: identical chunk queries
/// from concurrent user queries hash to the same result path, and every
/// write transaction is answered by exactly one execution, so readers
/// consume one payload each — no publish can be lost to an overwrite or a
/// double read.
class FileStore {
 public:
  /// Append \p bytes at \p path and wake a waiter.
  void publish(const std::string& path, std::string bytes);

  /// Append a failure at \p path; one waiter receives \p error.
  void publishError(const std::string& path, util::Status error);

  /// Block until a payload is available at \p path, then consume it.
  util::Result<std::string> waitFor(
      const std::string& path,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(30000));

  /// Block until fewer than \p maxQueued payloads sit unconsumed at \p path
  /// (publisher-side backpressure for streamed batch results). Returns true
  /// when the queue drained below the bound, false on timeout or abort.
  bool awaitDrain(const std::string& path, std::size_t maxQueued,
                  std::chrono::milliseconds timeout);

  /// Non-blocking peek (does not consume).
  std::optional<std::string> tryGet(const std::string& path) const;

  /// Drop all payloads queued at \p path.
  void remove(const std::string& path);

  /// Number of paths with pending payloads.
  std::size_t size() const;

  /// Fail all current and future waits with kAborted (shutdown).
  void abortAll();

 private:
  struct Entry {
    std::string bytes;
    util::Status error;  // non-OK when the production failed
    bool failed = false;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::string, std::deque<Entry>> files_;
  bool aborted_ = false;
};

}  // namespace qserv::xrd
