/// \file ofs.h
/// \brief The "ofs plugin" interface (paper §5.1.2).
///
/// Xrootd data servers become Qserv workers "by plugging custom code into
/// Xrootd as a custom file system ('ofs plugin') implementation". This is
/// that contract: a data server delegates file-level write and read
/// transactions to its plugin. Reads may block until the addressed content
/// exists (results appear when a chunk query finishes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/deadline.h"
#include "util/status.h"

namespace qserv::xrd {

class OfsPlugin {
 public:
  virtual ~OfsPlugin() = default;

  /// Write transaction: open \p path for writing, deliver \p payload, close.
  virtual util::Status writeFile(const std::string& path,
                                 std::string payload) = 0;

  /// Read transaction: open \p path for reading, read until EOF, close.
  /// May block until the content is published.
  virtual util::Result<std::string> readFile(const std::string& path) = 0;

  /// Deadline-bounded read transaction: like readFile(path) but a blocking
  /// plugin must give up (kUnavailable/kDeadlineExceeded) once \p deadline
  /// expires. The default forwards to the unbounded overload — correct for
  /// plugins that never block.
  virtual util::Result<std::string> readFile(const std::string& path,
                                             const util::Deadline& deadline) {
    (void)deadline;
    return readFile(path);
  }

  /// Chunks this plugin exports; the redirector routes /query2/<CC> paths to
  /// a server whose plugin exports CC.
  virtual std::vector<std::int32_t> exportedChunks() const = 0;
};

}  // namespace qserv::xrd
