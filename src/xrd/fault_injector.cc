#include "xrd/fault_injector.h"

#include <cstdlib>
#include <thread>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace qserv::xrd {

namespace {
/// Process-wide injected-fault counters (summed over all injectors).
struct InjectorMetrics {
  util::Counter& writeFaults;
  util::Counter& readFaults;
  util::Counter& corruptions;
  util::Counter& delays;
  util::Counter& downs;

  static InjectorMetrics& instance() {
    auto& reg = util::MetricsRegistry::instance();
    static InjectorMetrics* m = new InjectorMetrics{
        reg.counter("faultinj.write_faults"),
        reg.counter("faultinj.read_faults"),
        reg.counter("faultinj.corruptions"),
        reg.counter("faultinj.delays"),
        reg.counter("faultinj.downs"),
    };
    return *m;
  }
};

/// Stable (process-independent) string hash for per-server RNG seeding.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

const char* opName(FaultOp op) {
  return op == FaultOp::kWrite ? "write" : "read";
}

util::Result<util::ErrorCode> parseCode(std::string_view name) {
  if (name == "unavailable") return util::ErrorCode::kUnavailable;
  if (name == "internal") return util::ErrorCode::kInternal;
  if (name == "notfound") return util::ErrorCode::kNotFound;
  if (name == "dataloss") return util::ErrorCode::kDataLoss;
  return util::Status::invalidArgument("unknown fault error code: " +
                                       std::string(name));
}
}  // namespace

util::Result<FaultPlan> FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const auto& rawClause : util::split(spec, ';')) {
    std::string clause(util::trim(rawClause));
    if (clause.empty()) continue;
    if (util::startsWith(clause, "seed=")) {
      plan.seed = std::strtoull(clause.c_str() + 5, nullptr, 10);
      continue;
    }
    std::size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      return util::Status::invalidArgument(
          "fault clause needs '<op>:<keys>' form: " + clause);
    }
    std::string op(util::trim(std::string_view(clause).substr(0, colon)));
    FaultRule rule;
    if (op == "write") {
      rule.op = FaultOp::kWrite;
    } else if (op == "read") {
      rule.op = FaultOp::kRead;
    } else {
      return util::Status::invalidArgument("fault op must be write|read: " +
                                           op);
    }
    int actions = 0;
    for (const auto& rawKv :
         util::split(std::string_view(clause).substr(colon + 1), ',')) {
      std::string kv(util::trim(rawKv));
      if (kv.empty()) continue;
      std::size_t eq = kv.find('=');
      std::string key = kv.substr(0, eq);
      std::string value =
          eq == std::string::npos ? std::string() : kv.substr(eq + 1);
      if (key == "p" || key == "prob") {
        rule.probability = std::strtod(value.c_str(), nullptr);
        if (rule.probability < 0.0 || rule.probability > 1.0) {
          return util::Status::invalidArgument("fault p must be in [0,1]: " +
                                               kv);
        }
      } else if (key == "after") {
        rule.afterOps = std::atoi(value.c_str());
      } else if (key == "path") {
        rule.pathPattern = value;
      } else if (key == "fail") {
        rule.fail = true;
        ++actions;
        if (!value.empty()) {
          QSERV_ASSIGN_OR_RETURN(rule.errorCode, parseCode(value));
        }
      } else if (key == "corrupt") {
        rule.corrupt = true;
        ++actions;
        if (value == "truncate") {
          rule.truncate = true;
        } else if (!value.empty() && value != "flip") {
          return util::Status::invalidArgument(
              "corrupt mode must be flip|truncate: " + kv);
        }
      } else if (key == "flips") {
        rule.bitFlips = std::max(1, std::atoi(value.c_str()));
      } else if (key == "delay") {
        rule.delay = std::chrono::milliseconds(std::atoi(value.c_str()));
        ++actions;
      } else if (key == "down") {
        rule.down = true;
        ++actions;
      } else {
        return util::Status::invalidArgument("unknown fault key: " + kv);
      }
    }
    if (actions != 1) {
      return util::Status::invalidArgument(
          "fault clause needs exactly one action (fail|corrupt|delay|down): " +
          clause);
    }
    if (rule.corrupt && rule.op == FaultOp::kWrite) {
      return util::Status::invalidArgument(
          "corrupt applies to read transactions only: " + clause);
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

FaultyOfsPlugin::FaultyOfsPlugin(std::shared_ptr<OfsPlugin> inner,
                                 FaultPlan plan, const std::string& id)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      id_(id),
      rng_(plan_.seed ^ fnv1a(id)),
      opCounts_(plan_.rules.size(), 0) {}

bool FaultyOfsPlugin::fires(FaultRule& rule, std::size_t ruleIndex,
                            FaultOp op, const std::string& path) {
  if (rule.op != op) return false;
  if (!rule.pathPattern.empty() &&
      path.find(rule.pathPattern) == std::string::npos) {
    return false;
  }
  std::uint64_t seen = opCounts_[ruleIndex]++;
  if (seen < static_cast<std::uint64_t>(rule.afterOps)) return false;
  if (rule.probability >= 1.0) return true;
  return rng_.uniform() < rule.probability;
}

util::Status FaultyOfsPlugin::preTransaction(FaultOp op,
                                             const std::string& path) {
  auto& metrics = InjectorMetrics::instance();
  if (isDown()) {
    return util::Status::unavailable("server " + id_ +
                                     " is down (injected)");
  }
  std::chrono::milliseconds delay{0};
  util::Status fail = util::Status::ok();
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
      FaultRule& rule = plan_.rules[i];
      if (rule.corrupt) continue;  // post-read pass handles corruption
      if (!fires(rule, i, op, path)) continue;
      if (rule.down) {
        if (rule.downFired) continue;
        rule.downFired = true;
        down_.store(true, std::memory_order_release);
        metrics.downs.add();
        QLOG(kWarn, "faultinj")
            << id_ << " taken down after " << opCounts_[i] << " "
            << opName(op) << " ops";
        return util::Status::unavailable("server " + id_ +
                                         " is down (injected)");
      }
      if (rule.delay.count() > 0) delay += rule.delay;
      if (rule.fail && fail.isOk()) {
        fail = util::Status(
            rule.errorCode,
            util::format("injected %s fault on %s at %s", opName(op),
                         path.c_str(), id_.c_str()));
      }
    }
  }
  if (delay.count() > 0) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    metrics.delays.add();
    std::this_thread::sleep_for(delay);
  }
  if (!fail.isOk()) {
    if (op == FaultOp::kWrite) {
      writeFaults_.fetch_add(1, std::memory_order_relaxed);
      metrics.writeFaults.add();
    } else {
      readFaults_.fetch_add(1, std::memory_order_relaxed);
      metrics.readFaults.add();
    }
  }
  return fail;
}

void FaultyOfsPlugin::maybeCorrupt(const std::string& path,
                                   std::string& payload) {
  if (payload.empty()) return;
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    FaultRule& rule = plan_.rules[i];
    if (!rule.corrupt) continue;
    if (!fires(rule, i, FaultOp::kRead, path)) continue;
    if (rule.truncate) {
      payload.resize(payload.size() / 2);
    } else {
      for (int f = 0; f < rule.bitFlips; ++f) {
        std::uint64_t bit = rng_.below(payload.size() * 8);
        payload[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(payload[bit / 8]) ^
            (1u << (bit % 8)));
      }
    }
    corruptions_.fetch_add(1, std::memory_order_relaxed);
    InjectorMetrics::instance().corruptions.add();
    QLOG(kDebug, "faultinj")
        << id_ << " corrupted " << path << " ("
        << (rule.truncate ? "truncation" : "bit flips") << ")";
    if (payload.empty()) return;
  }
}

util::Status FaultyOfsPlugin::writeFile(const std::string& path,
                                        std::string payload) {
  QSERV_RETURN_IF_ERROR(preTransaction(FaultOp::kWrite, path));
  return inner_->writeFile(path, std::move(payload));
}

util::Result<std::string> FaultyOfsPlugin::readFile(const std::string& path) {
  return readFile(path, util::Deadline::unlimited());
}

util::Result<std::string> FaultyOfsPlugin::readFile(
    const std::string& path, const util::Deadline& deadline) {
  QSERV_RETURN_IF_ERROR(preTransaction(FaultOp::kRead, path));
  auto result = inner_->readFile(path, deadline);
  if (result.isOk()) maybeCorrupt(path, *result);
  return result;
}

}  // namespace qserv::xrd
