/// \file redirector.h
/// \brief The Scalla/Xrootd redirector: a caching namespace lookup service.
///
/// "A client connects to a redirector, which acts as a caching namespace
/// look-up service that redirects clients to appropriate data servers"
/// (paper §5.1.2). Query paths (/query2/CC) resolve to a live server whose
/// plugin exports chunk CC; with replication, several servers export the
/// same chunk and the redirector balances among them and fails over when a
/// server goes down.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "xrd/data_server.h"

namespace qserv::xrd {

class Redirector {
 public:
  /// Register \p server and index its exported chunks.
  void registerServer(DataServerPtr server);

  /// Remove \p serverId from the cluster entirely.
  void deregisterServer(const std::string& serverId);

  /// Server by id (for direct reads of /result paths), or nullptr.
  DataServerPtr findServer(const std::string& serverId) const;

  /// Resolve \p path (/query2/CC) to a live server exporting that chunk.
  /// Successive lookups of the same chunk hit an internal cache; a cached
  /// server that has gone down is evicted and another replica chosen.
  util::Result<DataServerPtr> locate(const std::string& path);

  /// All live servers exporting \p chunkId (replicas).
  std::vector<DataServerPtr> replicasOf(std::int32_t chunkId) const;

  std::vector<std::string> serverIds() const;

  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t cacheHits() const { return cacheHits_; }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, DataServerPtr> servers_;
  std::unordered_map<std::int32_t, std::vector<DataServerPtr>> chunkMap_;
  std::unordered_map<std::int32_t, DataServerPtr> cache_;
  std::unordered_map<std::int32_t, std::size_t> rrCounter_;
  std::uint64_t lookups_ = 0;
  std::uint64_t cacheHits_ = 0;
};

using RedirectorPtr = std::shared_ptr<Redirector>;

}  // namespace qserv::xrd
