/// \file redirector.h
/// \brief The Scalla/Xrootd redirector: a caching namespace lookup service.
///
/// "A client connects to a redirector, which acts as a caching namespace
/// look-up service that redirects clients to appropriate data servers"
/// (paper §5.1.2). Query paths (/query2/CC) resolve to a live server whose
/// plugin exports chunk CC; with replication, several servers export the
/// same chunk and the redirector balances among them and fails over when a
/// server goes down.
///
/// Failure handling (the czar "manages transient errors", §5.2):
/// - locate() takes an exclude set so a retry never re-reads the cached
///   replica that just failed;
/// - reportFailure() evicts the failed server from the lookup cache (an
///   up-but-erroring replica used to be pinned there forever) and feeds a
///   per-server circuit breaker;
/// - the breaker (error-rate window -> open -> half-open probe) steers
///   lookups away from sick-but-up servers, falling back to them only when
///   no healthy replica remains.
///
/// Live placement (the replication control plane): the repair controller
/// quarantines servers it has declared down (setServerHealth) — they are
/// skipped like breaker-open servers, with the same degraded fallback — and
/// publishes placement changes through refreshExports(), which re-syncs a
/// server's chunk map entries from its plugin's current export list and
/// evicts stale cache pins. Both take effect atomically under the
/// redirector's lock: in-flight queries keep the replica they already
/// resolved, new lookups see the new placement.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/circuit_breaker.h"
#include "xrd/data_server.h"

namespace qserv::xrd {

class Redirector {
 public:
  explicit Redirector(util::CircuitBreakerPolicy breakerPolicy = {})
      : breakerPolicy_(breakerPolicy) {}

  /// Register \p server and index its exported chunks.
  void registerServer(DataServerPtr server);

  /// Remove \p serverId from the cluster entirely.
  void deregisterServer(const std::string& serverId);

  /// Server by id (for direct reads of /result paths), or nullptr.
  DataServerPtr findServer(const std::string& serverId) const;

  /// Resolve \p path (/query2/CC) to a live server exporting that chunk,
  /// never one named in \p exclude (the replicas that already failed this
  /// chunk query). Successive lookups of the same chunk hit an internal
  /// cache; a cached server that has gone down, failed, or is excluded is
  /// skipped and another replica chosen. Servers whose circuit breaker is
  /// open are avoided while a healthy replica exists.
  util::Result<DataServerPtr> locate(
      const std::string& path,
      std::span<const std::string> exclude = {});

  /// Record that \p serverId failed a transaction for \p chunkId: evicts the
  /// cached chunk->server mapping (so the next lookup re-balances) and feeds
  /// the server's circuit breaker.
  void reportFailure(std::int32_t chunkId, const std::string& serverId);

  /// Record a successful transaction on \p serverId (closes a half-open
  /// breaker, keeps the error-rate window honest). When the success closes
  /// a non-closed breaker (the server recovered), cache entries pinning the
  /// server's chunks to *other* replicas are evicted so traffic rebalances
  /// back to it instead of staying pinned to the failover replica forever.
  void reportSuccess(const std::string& serverId);

  /// Feed a health-probe outcome into \p serverId's breaker, honoring the
  /// breaker's own gating: an open breaker inside its cooldown ignores the
  /// probe (the window stays honest), a probe through a half-open breaker
  /// closes or reopens it, and a closed breaker records normally. Returns
  /// the breaker state after the report.
  util::CircuitBreaker::State reportProbe(const std::string& serverId,
                                          bool ok);

  /// Administrative health override (the repair controller's down/up
  /// verdict). Unhealthy servers are skipped by locate() like breaker-open
  /// ones — with the same degraded fallback, so an operator mistake cannot
  /// self-inflict an outage — and their cache pins are evicted immediately.
  /// Marking a server healthy again also evicts other-replica pins of its
  /// chunks so it starts receiving traffic.
  void setServerHealth(const std::string& serverId, bool healthy);

  /// True when setServerHealth(serverId, false) is in effect.
  bool isQuarantined(const std::string& serverId) const;

  /// Re-sync \p serverId's chunk-map entries from its plugin's current
  /// exportedChunks() — the live-placement publish point after a replica is
  /// installed (repair, rebalance, ingest) or dropped. Stale cache pins on
  /// dropped chunks are evicted. No-op for unknown servers.
  void refreshExports(const std::string& serverId);

  /// Registered replica placement: chunkId -> server ids (sorted), whether
  /// the servers are currently up or not. The repair controller diffs this
  /// against its own health view to find replication deficits.
  std::map<std::int32_t, std::vector<std::string>> placementSnapshot() const;

  /// The server's breaker state (kClosed when unknown).
  util::CircuitBreaker::State breakerState(const std::string& serverId) const;

  /// All live servers exporting \p chunkId (replicas).
  std::vector<DataServerPtr> replicasOf(std::int32_t chunkId) const;

  std::vector<std::string> serverIds() const;

  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t cacheHits() const { return cacheHits_; }

 private:
  util::CircuitBreaker& breakerFor(const std::string& serverId);
  /// Evict cache entries for chunks \p serverId exports that pin a
  /// *different* server (call with mutex_ held). Returns evictions.
  std::size_t evictForeignPinsLocked(const std::string& serverId);

  const util::CircuitBreakerPolicy breakerPolicy_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, DataServerPtr> servers_;
  std::unordered_map<std::int32_t, std::vector<DataServerPtr>> chunkMap_;
  std::unordered_map<std::int32_t, DataServerPtr> cache_;
  std::unordered_map<std::int32_t, std::size_t> rrCounter_;
  /// Breakers are internally synchronized; the map itself is guarded by
  /// mutex_ and entries live for the registry's lifetime.
  std::unordered_map<std::string, std::unique_ptr<util::CircuitBreaker>>
      breakers_;
  /// Servers the control plane has declared down (setServerHealth).
  std::unordered_set<std::string> quarantined_;
  std::uint64_t lookups_ = 0;
  std::uint64_t cacheHits_ = 0;
};

using RedirectorPtr = std::shared_ptr<Redirector>;

}  // namespace qserv::xrd
