#include "xrd/redirector.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/strings.h"
#include "xrd/paths.h"

namespace qserv::xrd {

void Redirector::registerServer(DataServerPtr server) {
  std::lock_guard lock(mutex_);
  const std::string& id = server->id();
  servers_[id] = server;
  for (std::int32_t chunk : server->exportedChunks()) {
    auto& replicas = chunkMap_[chunk];
    bool present = std::any_of(replicas.begin(), replicas.end(),
                               [&](const auto& s) { return s->id() == id; });
    if (!present) replicas.push_back(server);
  }
}

void Redirector::deregisterServer(const std::string& serverId) {
  std::lock_guard lock(mutex_);
  servers_.erase(serverId);
  for (auto& [chunk, replicas] : chunkMap_) {
    std::erase_if(replicas,
                  [&](const auto& s) { return s->id() == serverId; });
  }
  std::erase_if(cache_,
                [&](const auto& kv) { return kv.second->id() == serverId; });
}

DataServerPtr Redirector::findServer(const std::string& serverId) const {
  std::lock_guard lock(mutex_);
  auto it = servers_.find(serverId);
  return it == servers_.end() ? nullptr : it->second;
}

util::Result<DataServerPtr> Redirector::locate(const std::string& path) {
  auto chunkId = parseQueryPath(path);
  if (!chunkId) {
    return util::Status::invalidArgument(
        "redirector only resolves /query2/<chunkId> paths: " + path);
  }
  auto& reg = util::MetricsRegistry::instance();
  static util::Counter& lookupCounter =
      reg.counter("xrd.redirector.lookups");
  static util::Counter& hitCounter =
      reg.counter("xrd.redirector.cache_hits");
  static util::Counter& missCounter =
      reg.counter("xrd.redirector.cache_misses");
  std::lock_guard lock(mutex_);
  ++lookups_;
  lookupCounter.add();
  auto cached = cache_.find(*chunkId);
  if (cached != cache_.end()) {
    if (cached->second->isUp()) {
      ++cacheHits_;
      hitCounter.add();
      return cached->second;
    }
    cache_.erase(cached);  // evict the dead replica
  }
  missCounter.add();
  auto it = chunkMap_.find(*chunkId);
  if (it == chunkMap_.end() || it->second.empty()) {
    return util::Status::notFound(
        util::format("no data server exports chunk %d", *chunkId));
  }
  // Round-robin over live replicas.
  const auto& replicas = it->second;
  std::size_t& rr = rrCounter_[*chunkId];
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    DataServerPtr candidate = replicas[(rr + i) % replicas.size()];
    if (candidate->isUp()) {
      rr = (rr + i + 1) % replicas.size();
      cache_[*chunkId] = candidate;
      return candidate;
    }
  }
  return util::Status::unavailable(
      util::format("all replicas of chunk %d are down", *chunkId));
}

std::vector<DataServerPtr> Redirector::replicasOf(std::int32_t chunkId) const {
  std::lock_guard lock(mutex_);
  auto it = chunkMap_.find(chunkId);
  if (it == chunkMap_.end()) return {};
  std::vector<DataServerPtr> out;
  for (const auto& s : it->second) {
    if (s->isUp()) out.push_back(s);
  }
  return out;
}

std::vector<std::string> Redirector::serverIds() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(servers_.size());
  for (const auto& [id, _] : servers_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace qserv::xrd
