#include "xrd/redirector.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/strings.h"
#include "xrd/paths.h"

namespace qserv::xrd {

namespace {
struct RedirectorMetrics {
  util::Counter& lookups;
  util::Counter& cacheHits;
  util::Counter& cacheMisses;
  util::Counter& failureEvictions;
  util::Counter& breakerSkips;
  util::Counter& breakerOverrides;
  util::Counter& recoveryEvictions;
  util::Counter& quarantineSkips;
  util::Counter& exportRefreshes;

  static RedirectorMetrics& instance() {
    auto& reg = util::MetricsRegistry::instance();
    static RedirectorMetrics* m = new RedirectorMetrics{
        reg.counter("xrd.redirector.lookups"),
        reg.counter("xrd.redirector.cache_hits"),
        reg.counter("xrd.redirector.cache_misses"),
        reg.counter("xrd.redirector.failure_evictions"),
        reg.counter("xrd.redirector.breaker_skips"),
        reg.counter("xrd.redirector.breaker_overrides"),
        reg.counter("xrd.redirector.recovery_evictions"),
        reg.counter("xrd.redirector.quarantine_skips"),
        reg.counter("xrd.redirector.export_refreshes"),
    };
    return *m;
  }
};

bool contains(std::span<const std::string> ids, const std::string& id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}
}  // namespace

void Redirector::registerServer(DataServerPtr server) {
  std::lock_guard lock(mutex_);
  const std::string& id = server->id();
  servers_[id] = server;
  for (std::int32_t chunk : server->exportedChunks()) {
    auto& replicas = chunkMap_[chunk];
    bool present = std::any_of(replicas.begin(), replicas.end(),
                               [&](const auto& s) { return s->id() == id; });
    if (!present) replicas.push_back(server);
  }
}

void Redirector::deregisterServer(const std::string& serverId) {
  std::lock_guard lock(mutex_);
  servers_.erase(serverId);
  for (auto& [chunk, replicas] : chunkMap_) {
    std::erase_if(replicas,
                  [&](const auto& s) { return s->id() == serverId; });
  }
  std::erase_if(cache_,
                [&](const auto& kv) { return kv.second->id() == serverId; });
  breakers_.erase(serverId);
  quarantined_.erase(serverId);
}

DataServerPtr Redirector::findServer(const std::string& serverId) const {
  std::lock_guard lock(mutex_);
  auto it = servers_.find(serverId);
  return it == servers_.end() ? nullptr : it->second;
}

util::CircuitBreaker& Redirector::breakerFor(const std::string& serverId) {
  auto it = breakers_.find(serverId);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(serverId,
                      std::make_unique<util::CircuitBreaker>(breakerPolicy_))
             .first;
  }
  return *it->second;
}

util::Result<DataServerPtr> Redirector::locate(
    const std::string& path, std::span<const std::string> exclude) {
  auto chunkId = parseQueryPath(path);
  if (!chunkId) {
    return util::Status::invalidArgument(
        "redirector only resolves /query2/<chunkId> paths: " + path);
  }
  auto& metrics = RedirectorMetrics::instance();
  std::lock_guard lock(mutex_);
  ++lookups_;
  metrics.lookups.add();
  auto cached = cache_.find(*chunkId);
  if (cached != cache_.end()) {
    const std::string& id = cached->second->id();
    if (cached->second->isUp() && !contains(exclude, id) &&
        !quarantined_.contains(id) && breakerFor(id).allowRequest()) {
      ++cacheHits_;
      metrics.cacheHits.add();
      return cached->second;
    }
    cache_.erase(cached);  // dead, excluded, quarantined, or breaker-open
  }
  metrics.cacheMisses.add();
  auto it = chunkMap_.find(*chunkId);
  if (it == chunkMap_.end() || it->second.empty()) {
    return util::Status::notFound(
        util::format("no data server exports chunk %d", *chunkId));
  }
  const auto& replicas = it->second;
  std::size_t& rr = rrCounter_[*chunkId];
  // First pass (round-robin): live, not excluded, not quarantined, breaker
  // allows.
  DataServerPtr degraded;  // sick-server fallback if no healthy replica
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    DataServerPtr candidate = replicas[(rr + i) % replicas.size()];
    if (!candidate->isUp() || contains(exclude, candidate->id())) continue;
    if (quarantined_.contains(candidate->id())) {
      metrics.quarantineSkips.add();
      if (!degraded) degraded = candidate;
      continue;
    }
    if (!breakerFor(candidate->id()).allowRequest()) {
      metrics.breakerSkips.add();
      if (!degraded) degraded = candidate;
      continue;
    }
    rr = (rr + i + 1) % replicas.size();
    cache_[*chunkId] = candidate;
    return candidate;
  }
  // Every live, non-excluded replica has an open breaker: probing a sick
  // server beats returning nothing (and its outcome retrains the breaker).
  if (degraded) {
    metrics.breakerOverrides.add();
    return degraded;
  }
  bool anyUp = std::any_of(replicas.begin(), replicas.end(),
                           [](const auto& s) { return s->isUp(); });
  if (anyUp && !exclude.empty()) {
    return util::Status::unavailable(util::format(
        "all live replicas of chunk %d already failed this query", *chunkId));
  }
  return util::Status::unavailable(
      util::format("all replicas of chunk %d are down", *chunkId));
}

void Redirector::reportFailure(std::int32_t chunkId,
                               const std::string& serverId) {
  std::lock_guard lock(mutex_);
  auto cached = cache_.find(chunkId);
  if (cached != cache_.end() && cached->second->id() == serverId) {
    cache_.erase(cached);
    RedirectorMetrics::instance().failureEvictions.add();
  }
  breakerFor(serverId).recordFailure();
}

std::size_t Redirector::evictForeignPinsLocked(const std::string& serverId) {
  std::size_t evicted = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second->id() != serverId) {
      auto replicas = chunkMap_.find(it->first);
      bool exports =
          replicas != chunkMap_.end() &&
          std::any_of(replicas->second.begin(), replicas->second.end(),
                      [&](const auto& s) { return s->id() == serverId; });
      if (exports) {
        it = cache_.erase(it);
        ++evicted;
        continue;
      }
    }
    ++it;
  }
  if (evicted > 0) {
    RedirectorMetrics::instance().recoveryEvictions.add(evicted);
  }
  return evicted;
}

void Redirector::reportSuccess(const std::string& serverId) {
  std::lock_guard lock(mutex_);
  util::CircuitBreaker& breaker = breakerFor(serverId);
  bool wasClosed = breaker.state() == util::CircuitBreaker::State::kClosed;
  breaker.recordSuccess();
  // Recovery: a half-open probe success closed the breaker. The lookup
  // cache still pins this server's chunks to the replicas that covered for
  // it while it was sick — without eviction the recovered server never sees
  // traffic again (every lookup is a cache hit on the failover replica).
  if (!wasClosed &&
      breaker.state() == util::CircuitBreaker::State::kClosed) {
    evictForeignPinsLocked(serverId);
  }
}

util::CircuitBreaker::State Redirector::reportProbe(
    const std::string& serverId, bool ok) {
  std::lock_guard lock(mutex_);
  util::CircuitBreaker& breaker = breakerFor(serverId);
  util::CircuitBreaker::State before = breaker.state();
  if (before == util::CircuitBreaker::State::kClosed) {
    ok ? breaker.recordSuccess() : breaker.recordFailure();
  } else if (breaker.allowRequest()) {
    // The cooldown elapsed: this probe occupies the half-open slot and its
    // outcome closes or reopens the breaker.
    ok ? breaker.recordSuccess() : breaker.recordFailure();
    if (ok) evictForeignPinsLocked(serverId);
  }
  // Inside the open cooldown the probe outcome is dropped: the breaker's
  // own schedule decides when the server gets another chance.
  return breaker.state();
}

void Redirector::setServerHealth(const std::string& serverId, bool healthy) {
  std::lock_guard lock(mutex_);
  if (healthy) {
    if (quarantined_.erase(serverId) > 0) {
      evictForeignPinsLocked(serverId);
    }
  } else {
    quarantined_.insert(serverId);
    std::erase_if(cache_, [&](const auto& kv) {
      return kv.second->id() == serverId;
    });
  }
}

bool Redirector::isQuarantined(const std::string& serverId) const {
  std::lock_guard lock(mutex_);
  return quarantined_.contains(serverId);
}

void Redirector::refreshExports(const std::string& serverId) {
  std::lock_guard lock(mutex_);
  auto it = servers_.find(serverId);
  if (it == servers_.end()) return;
  DataServerPtr server = it->second;
  std::vector<std::int32_t> exports = server->exportedChunks();
  std::sort(exports.begin(), exports.end());
  // Add the server to newly exported chunks' replica lists.
  for (std::int32_t chunk : exports) {
    auto& replicas = chunkMap_[chunk];
    bool present =
        std::any_of(replicas.begin(), replicas.end(),
                    [&](const auto& s) { return s->id() == serverId; });
    if (!present) replicas.push_back(server);
  }
  // Remove it from chunks it no longer exports, evicting stale cache pins.
  for (auto& [chunk, replicas] : chunkMap_) {
    if (std::binary_search(exports.begin(), exports.end(), chunk)) continue;
    auto before = replicas.size();
    std::erase_if(replicas,
                  [&](const auto& s) { return s->id() == serverId; });
    if (replicas.size() != before) {
      auto cached = cache_.find(chunk);
      if (cached != cache_.end() && cached->second->id() == serverId) {
        cache_.erase(cached);
      }
    }
  }
  RedirectorMetrics::instance().exportRefreshes.add();
}

std::map<std::int32_t, std::vector<std::string>>
Redirector::placementSnapshot() const {
  std::lock_guard lock(mutex_);
  std::map<std::int32_t, std::vector<std::string>> out;
  for (const auto& [chunk, replicas] : chunkMap_) {
    auto& ids = out[chunk];
    ids.reserve(replicas.size());
    for (const auto& s : replicas) ids.push_back(s->id());
    std::sort(ids.begin(), ids.end());
  }
  return out;
}

util::CircuitBreaker::State Redirector::breakerState(
    const std::string& serverId) const {
  std::lock_guard lock(mutex_);
  auto it = breakers_.find(serverId);
  if (it == breakers_.end()) return util::CircuitBreaker::State::kClosed;
  return it->second->state();
}

std::vector<DataServerPtr> Redirector::replicasOf(std::int32_t chunkId) const {
  std::lock_guard lock(mutex_);
  auto it = chunkMap_.find(chunkId);
  if (it == chunkMap_.end()) return {};
  std::vector<DataServerPtr> out;
  for (const auto& s : it->second) {
    if (s->isUp()) out.push_back(s);
  }
  return out;
}

std::vector<std::string> Redirector::serverIds() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(servers_.size());
  for (const auto& [id, _] : servers_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace qserv::xrd
