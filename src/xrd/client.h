/// \file client.h
/// \brief Client-side two-transaction protocol (paper §5.4).
///
/// "The first transaction consists of opening a particular path for writing,
/// writing the chunk query, and closing the file. ... The second transaction
/// reads query results and consists of opening a path for reading, reading
/// until EOF, and closing the file." The write goes through the redirector
/// (chunk-addressed); the result read goes directly to the worker that
/// accepted the query (the result path names the worker, not the manager).
///
/// Failure handling: the write transaction accepts an exclude set (replicas
/// that already failed this chunk query are never re-picked) and reports the
/// server it attempted, so the dispatcher can feed the redirector's cache
/// eviction and circuit breakers even when the transaction fails. Reads are
/// deadline-bounded so a per-query time budget caps the blocking wait for a
/// result dump.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "util/deadline.h"
#include "xrd/redirector.h"

namespace qserv::xrd {

class XrdClient {
 public:
  explicit XrdClient(RedirectorPtr redirector)
      : redirector_(std::move(redirector)) {}

  /// Transaction 1: write \p chunkQuery to /query2/<chunkId>. On success
  /// returns the id of the data server that accepted it — the server the
  /// result must be read back from. Servers named in \p exclude are never
  /// picked. When \p attemptedServer is non-null it receives the id of the
  /// server the write was sent to (set even on failure, empty when no
  /// replica could be located at all).
  util::Result<std::string> writeQuery(
      std::int32_t chunkId, std::string chunkQuery,
      std::span<const std::string> exclude = {},
      std::string* attemptedServer = nullptr);

  /// Transaction 2: read /result/<md5Hex> from \p serverId until EOF,
  /// giving up when \p deadline expires.
  util::Result<std::string> readResult(
      const std::string& serverId, const std::string& md5Hex,
      const util::Deadline& deadline = util::Deadline::unlimited());

  /// Batched dispatch: write one batch request (a whole chunk list for one
  /// worker) to /batch/<batchId> on \p serverId. Unlike writeQuery the
  /// target server is already known — batches are planned against the
  /// redirector's placement before any write happens.
  util::Status writeBatch(const std::string& serverId,
                          const std::string& batchId, std::string payload);

  /// Read the next result frame from /bstream/<batchId> on \p serverId.
  /// Each read consumes exactly one per-chunk frame.
  util::Result<std::string> readBatchFrame(
      const std::string& serverId, const std::string& batchId,
      const util::Deadline& deadline = util::Deadline::unlimited());

  /// Tell \p serverId the master has abandoned batch \p batchId so its
  /// executors stop producing (and stop waiting on) result frames.
  /// Best-effort: failures are swallowed — the worker's stream timeout is
  /// the fallback.
  void cancelBatch(const std::string& serverId, const std::string& batchId);

  Redirector& redirector() { return *redirector_; }

 private:
  RedirectorPtr redirector_;
};

}  // namespace qserv::xrd
