/// \file client.h
/// \brief Client-side two-transaction protocol (paper §5.4).
///
/// "The first transaction consists of opening a particular path for writing,
/// writing the chunk query, and closing the file. ... The second transaction
/// reads query results and consists of opening a path for reading, reading
/// until EOF, and closing the file." The write goes through the redirector
/// (chunk-addressed); the result read goes directly to the worker that
/// accepted the query (the result path names the worker, not the manager).
#pragma once

#include <memory>
#include <string>

#include "xrd/redirector.h"

namespace qserv::xrd {

class XrdClient {
 public:
  explicit XrdClient(RedirectorPtr redirector)
      : redirector_(std::move(redirector)) {}

  /// Transaction 1: write \p chunkQuery to /query2/<chunkId>. On success
  /// returns the id of the data server that accepted it — the server the
  /// result must be read back from.
  util::Result<std::string> writeQuery(std::int32_t chunkId,
                                       std::string chunkQuery);

  /// Transaction 2: read /result/<md5Hex> from \p serverId until EOF.
  util::Result<std::string> readResult(const std::string& serverId,
                                       const std::string& md5Hex);

  Redirector& redirector() { return *redirector_; }

 private:
  RedirectorPtr redirector_;
};

}  // namespace qserv::xrd
