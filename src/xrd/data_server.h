/// \file data_server.h
/// \brief An Xrootd-like data server wrapping an ofs plugin.
///
/// Adds liveness (for fault-injection and failover tests) and transfer
/// accounting on top of the plugin.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "xrd/ofs.h"

namespace qserv::xrd {

class DataServer {
 public:
  DataServer(std::string id, std::shared_ptr<OfsPlugin> plugin);

  const std::string& id() const { return id_; }

  bool isUp() const { return up_.load(std::memory_order_acquire); }
  /// Mark the server up/down (fault injection). Down servers refuse
  /// transactions with kUnavailable.
  void setUp(bool up) { up_.store(up, std::memory_order_release); }

  util::Status write(const std::string& path, std::string payload);
  util::Result<std::string> read(
      const std::string& path,
      const util::Deadline& deadline = util::Deadline::unlimited());

  std::vector<std::int32_t> exportedChunks() const {
    return plugin_->exportedChunks();
  }

  std::uint64_t bytesWritten() const { return bytesWritten_.load(); }
  std::uint64_t bytesRead() const { return bytesRead_.load(); }

 private:
  std::string id_;
  std::shared_ptr<OfsPlugin> plugin_;
  std::atomic<bool> up_{true};
  std::atomic<std::uint64_t> bytesWritten_{0};
  std::atomic<std::uint64_t> bytesRead_{0};
};

using DataServerPtr = std::shared_ptr<DataServer>;

}  // namespace qserv::xrd
