/// \file fault_injector.h
/// \brief Deterministic, scriptable fault injection at the ofs-plugin layer.
///
/// The czar is responsible for "managing transient errors" (paper §5.2), and
/// at LSST scale partial failure is the normal operating mode — so the test
/// suite needs a way to *create* failures on demand, not just survive the
/// ones we thought of. FaultyOfsPlugin decorates any OfsPlugin (a Worker, a
/// test plugin) and injects faults per file transaction according to a
/// FaultPlan: fail writes/reads with a chosen error code, corrupt result
/// dumps (bit flips or truncation), add artificial delay, or take the server
/// "down" after N operations (it stays registered and isUp(), i.e.
/// sick-but-up — the case the circuit breaker exists for). Every decision is
/// drawn from a seeded RNG, so a failing fault-sweep run replays exactly
/// from its seed. Injected faults are counted in the metrics registry under
/// `faultinj.*` and per-injector accessors.
///
/// Plans are scriptable from a one-line spec (shell: QSERV_FAULTS env var):
///
///   seed=42; write:p=0.01,fail; read:p=0.005,corrupt; read:after=100,down
///
/// Clauses are ';'-separated. `seed=N` sets the plan seed; other clauses are
/// `<op>:<key>[=<value>],...` with op `write` or `read` and keys:
///   p=<0..1>       firing probability per matching transaction (default 1)
///   after=<N>      arm only after N matching transactions (default 0)
///   path=<substr>  only transactions whose path contains <substr>
///   fail[=<code>]  fail with error code: unavailable (default) | internal |
///                  notfound | dataloss
///   corrupt[=truncate]  flip bits in (or truncate) the returned payload
///   flips=<N>      number of bit flips per corruption (default 3)
///   delay=<ms>     sleep this many milliseconds before forwarding
///   down           permanently refuse transactions once fired
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/rng.h"
#include "xrd/ofs.h"

namespace qserv::xrd {

enum class FaultOp { kWrite, kRead };

/// One injection rule; see the file comment for the spec syntax.
struct FaultRule {
  FaultOp op = FaultOp::kWrite;
  std::string pathPattern;  ///< substring match on the path; empty = any
  double probability = 1.0;
  int afterOps = 0;  ///< only fire after this many matching transactions

  // Actions (combinable; `fail` and `corrupt` are mutually exclusive in
  // practice since a failed transaction returns no payload to corrupt).
  bool fail = false;
  util::ErrorCode errorCode = util::ErrorCode::kUnavailable;
  bool corrupt = false;            ///< read-side payload corruption
  bool truncate = false;           ///< corrupt by truncation, not bit flips
  int bitFlips = 3;                ///< flips per corruption event
  std::chrono::milliseconds delay{0};
  bool down = false;  ///< once fired, the server refuses everything
  bool downFired = false;  ///< runtime latch: a down rule fires only once,
                           ///< so revive() actually restores service
};

/// A seeded set of rules, applied per server.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  /// Parse the one-line spec syntax documented above.
  static util::Result<FaultPlan> parse(const std::string& spec);
};

/// OfsPlugin decorator applying a FaultPlan to every transaction before
/// (and, for corruption, after) forwarding to the wrapped plugin.
/// Thread-safe; the RNG and rule counters are guarded by one mutex.
class FaultyOfsPlugin : public OfsPlugin {
 public:
  /// \param id used to decorrelate this injector's RNG from other servers
  ///        sharing the same plan (seed ^ hash(id)) and for log lines.
  FaultyOfsPlugin(std::shared_ptr<OfsPlugin> inner, FaultPlan plan,
                  const std::string& id);

  util::Status writeFile(const std::string& path,
                         std::string payload) override;
  util::Result<std::string> readFile(const std::string& path) override;
  util::Result<std::string> readFile(const std::string& path,
                                     const util::Deadline& deadline) override;
  std::vector<std::int32_t> exportedChunks() const override {
    return inner_->exportedChunks();
  }

  const std::string& id() const { return id_; }

  /// True once a `down` rule has fired (the server refuses everything).
  bool isDown() const { return down_.load(std::memory_order_acquire); }
  /// Revive a downed server (tests of recovery / half-open probes).
  void revive() { down_.store(false, std::memory_order_release); }

  // Per-injector fault counts (process-wide totals are in the metrics
  // registry under faultinj.*).
  std::uint64_t injectedWriteFaults() const { return writeFaults_.load(); }
  std::uint64_t injectedReadFaults() const { return readFaults_.load(); }
  std::uint64_t injectedCorruptions() const { return corruptions_.load(); }
  std::uint64_t injectedDelays() const { return delays_.load(); }

 private:
  /// The fail/delay/down decision for one transaction; OK = let it through.
  util::Status preTransaction(FaultOp op, const std::string& path);
  /// Post-read corruption pass; mutates \p payload when a rule fires.
  void maybeCorrupt(const std::string& path, std::string& payload);
  /// Does \p rule match this transaction, and does the RNG fire it?
  bool fires(FaultRule& rule, std::size_t ruleIndex, FaultOp op,
             const std::string& path);

  std::shared_ptr<OfsPlugin> inner_;
  FaultPlan plan_;
  std::string id_;

  std::mutex mutex_;               ///< guards rng_ and opCounts_
  util::Rng rng_;
  std::vector<std::uint64_t> opCounts_;  ///< matching transactions per rule

  std::atomic<bool> down_{false};
  std::atomic<std::uint64_t> writeFaults_{0};
  std::atomic<std::uint64_t> readFaults_{0};
  std::atomic<std::uint64_t> corruptions_{0};
  std::atomic<std::uint64_t> delays_{0};
};

}  // namespace qserv::xrd
