#include "xrd/client.h"

#include "xrd/paths.h"

namespace qserv::xrd {

util::Result<std::string> XrdClient::writeQuery(
    std::int32_t chunkId, std::string chunkQuery,
    std::span<const std::string> exclude, std::string* attemptedServer) {
  if (attemptedServer != nullptr) attemptedServer->clear();
  std::string path = makeQueryPath(chunkId);
  QSERV_ASSIGN_OR_RETURN(DataServerPtr server,
                         redirector_->locate(path, exclude));
  if (attemptedServer != nullptr) *attemptedServer = server->id();
  QSERV_RETURN_IF_ERROR(server->write(path, std::move(chunkQuery)));
  return server->id();
}

util::Result<std::string> XrdClient::readResult(
    const std::string& serverId, const std::string& md5Hex,
    const util::Deadline& deadline) {
  DataServerPtr server = redirector_->findServer(serverId);
  if (!server) {
    return util::Status::notFound("unknown data server " + serverId);
  }
  return server->read(makeResultPath(md5Hex), deadline);
}

util::Status XrdClient::writeBatch(const std::string& serverId,
                                   const std::string& batchId,
                                   std::string payload) {
  DataServerPtr server = redirector_->findServer(serverId);
  if (!server) {
    return util::Status::notFound("unknown data server " + serverId);
  }
  return server->write(makeBatchPath(batchId), std::move(payload));
}

util::Result<std::string> XrdClient::readBatchFrame(
    const std::string& serverId, const std::string& batchId,
    const util::Deadline& deadline) {
  DataServerPtr server = redirector_->findServer(serverId);
  if (!server) {
    return util::Status::notFound("unknown data server " + serverId);
  }
  return server->read(makeBatchStreamPath(batchId), deadline);
}

void XrdClient::cancelBatch(const std::string& serverId,
                            const std::string& batchId) {
  DataServerPtr server = redirector_->findServer(serverId);
  if (!server) return;
  util::Status status = server->write(makeBatchCancelPath(batchId), {});
  (void)status;
}

}  // namespace qserv::xrd
