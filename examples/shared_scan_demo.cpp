/// \file shared_scan_demo.cpp
/// \brief Shared scanning (§4.3) — "planned" in the paper, implemented here.
///
/// Two schedulers are compared on the same worker with the same three
/// concurrent full-scan chunk queries:
///  - FIFO (the paper's deployed behaviour): every query pays its own scan;
///  - shared scan: queued queries touching the same chunk ride one read
///    ("the table is read in pieces, and all concerning queries operate on
///    that piece while it is in memory").
/// The demo shows the I/O accounting per query and the modeled node time.
#include <cstdio>

#include "datagen/partitioner.h"
#include "example_util.h"
#include "qserv/cluster.h"
#include "qserv/worker.h"
#include "util/md5.h"
#include "util/strings.h"
#include "xrd/paths.h"

int main() {
  using namespace qserv;

  core::CatalogConfig catalog = core::CatalogConfig::lsst(18, 6, 0.05);
  core::SkyDataOptions data;
  data.basePatchObjects = 3000;
  data.withSources = false;
  data.region = sphgeom::SphericalBox(0, -7, 7, 7);
  auto sky = core::buildSkyCatalog(catalog, data);
  if (!sky.isOk()) return 1;

  // One worker database holding every chunk.
  auto db = std::make_shared<sql::Database>("w0");
  std::vector<std::int32_t> chunks;
  std::int32_t densest = -1;
  std::size_t best = 0;
  for (const auto& chunk : sky->chunks) {
    if (!datagen::loadChunkIntoDatabase(*db, chunk).isOk()) return 1;
    chunks.push_back(chunk.chunkId);
    if (chunk.objects->numRows() > best) {
      best = chunk.objects->numRows();
      densest = chunk.chunkId;
    }
  }
  std::printf("worker holds %zu chunks; scanning chunk %d (%zu rows) with 3 "
              "concurrent analysis queries\n\n",
              chunks.size(), densest, best);

  const char* predicates[] = {
      "fluxToAbMag(gFlux_PS) - fluxToAbMag(rFlux_PS) > 0.8",
      "uRadius_PS > 0.05",
      "decl_PS > 0",
  };

  for (auto mode : {core::SchedulerMode::kFifo, core::SchedulerMode::kSharedScan}) {
    core::WorkerConfig wc;
    wc.slots = 1;  // a single disk arm, in effect
    wc.scheduler = mode;
    wc.rowScale = 41;  // pretend the chunk is paper-sized (~200 MB MyISAM)
    wc.startPaused = true;
    core::Worker worker("w0", db, catalog, chunks, wc);

    std::vector<std::string> queries;
    for (const char* pred : predicates) {
      queries.push_back(util::format(
          "SELECT COUNT(*) AS c FROM Object_%d WHERE %s;", densest, pred));
      if (!worker.writeFile(xrd::makeQueryPath(densest), queries.back())
               .isOk()) {
        return 1;
      }
    }
    worker.resume();

    simio::CostParams params = simio::CostParams::paper150();
    double nodeSeconds = 0;
    std::printf("%s scheduler:\n",
                mode == core::SchedulerMode::kFifo ? "FIFO" : "shared-scan");
    for (const auto& q : queries) {
      auto dump = worker.readFile(xrd::makeResultPath(util::Md5::hex(q)));
      if (!dump.isOk()) return 1;
      auto obs = worker.observablesFor(util::Md5::hex(q));
      double service = simio::workerServiceSeconds(*obs, params);
      nodeSeconds += service;
      std::printf("  query pays %s of disk -> %.1f s of node time\n",
                  util::humanBytes(obs->bytesScanned).c_str(), service);
    }
    std::printf("  total node time for the 3 queries: %.1f s\n\n",
                nodeSeconds);
  }

  std::printf("shared scanning returns results from many full-scan queries "
              "in little more than the time of a single scan (§4.3).\n");
  return 0;
}
