/// \file quickstart.cpp
/// \brief Build a 4-worker Qserv cluster over a synthetic sky and run the
/// paper's query shapes through the public API.
///
/// Flow (mirrors the paper's Fig 1): generate a PT1.1-like catalog, shard
/// it into chunk tables over worker databases, wire workers to an
/// Xrootd-style redirector, stand up the frontend, and submit ordinary SQL.
#include <cstdio>

#include "example_util.h"
#include "qserv/cluster.h"
#include "util/logging.h"
#include "util/strings.h"

int main() {
  using namespace qserv;
  using namespace qserv::examples;
  util::setLogLevel(util::LogLevel::kInfo);

  // 1. Catalog metadata: which tables are partitioned and how (the paper's
  //    LSST setup: Object is the director table with overlap + objectId
  //    index; Source is co-partitioned).
  core::CatalogConfig catalog = core::CatalogConfig::lsst(/*numStripes=*/18,
                                                          /*numSubStripes=*/6,
                                                          /*overlapDeg=*/0.05);

  // 2. Synthesize and partition a patch of sky.
  core::SkyDataOptions data;
  data.basePatchObjects = 1500;
  data.withSources = true;
  data.region = sphgeom::SphericalBox(0, -7, 30, 7);
  auto sky = core::buildSkyCatalog(catalog, data);
  if (!sky.isOk()) {
    std::fprintf(stderr, "catalog: %s\n", sky.status().toString().c_str());
    return 1;
  }
  std::printf("generated %zu chunks of Object+Source data\n",
              sky->chunks.size());

  // 3. Assemble the cluster: 4 workers, redirector, frontend.
  core::ClusterOptions opts;
  opts.numWorkers = 4;
  opts.frontend.catalog = catalog;
  auto cluster = core::MiniCluster::create(opts, *sky);
  if (!cluster.isOk()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().toString().c_str());
    return 1;
  }
  core::QservFrontend& qserv = (*cluster)->frontend();

  // 4. Submit SQL, exactly as a mysql client would through the proxy.
  const char* queries[] = {
      // Full-sky count (HV1 shape).
      "SELECT COUNT(*) FROM Object",
      // Spatial restriction + aggregation (the §5.3 worked example).
      "SELECT AVG(uFlux_SG) FROM Object "
      "WHERE qserv_areaspec_box(0.0, 0.0, 10.0, 6.0) AND uRadius_PS > 0.04",
      // Density map (HV3 shape).
      "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId FROM Object "
      "GROUP BY chunkId ORDER BY n DESC LIMIT 5",
      // Color-filtered objects (HV2 shape).
      "SELECT objectId, ra_PS, decl_PS FROM Object "
      "WHERE fluxToAbMag(gFlux_PS) - fluxToAbMag(rFlux_PS) > 1.2 "
      "ORDER BY objectId LIMIT 5",
  };
  for (const char* sql : queries) {
    std::printf("\nqserv> %s\n", sql);
    auto result = qserv.query(sql);
    if (!result.isOk()) {
      std::fprintf(stderr, "error: %s\n", result.status().toString().c_str());
      return 1;
    }
    printTable(*result->result);
    std::printf("  [%zu chunk queries, %.1f ms wall, %.2f s on the paper's "
                "150-node cluster]\n",
                result->chunksDispatched, result->wallSeconds * 1e3,
                result->soloTiming.elapsedSec());
  }

  // 5. Point lookup through the secondary index (LV1 shape).
  auto index = qserv.metadata().findTable(core::SecondaryIndex::kTableName);
  std::int64_t someId = index->cell(index->numRows() / 2, 0).asInt();
  std::string lv1 =
      "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = " +
      std::to_string(someId);
  std::printf("\nqserv> %s\n", lv1.c_str());
  auto point = qserv.query(lv1);
  if (!point.isOk()) return 1;
  printTable(*point->result);
  std::printf("  [index pruning: %zu of %zu chunks dispatched]\n",
              point->chunksDispatched, (*cluster)->chunkIds().size());
  return 0;
}
