/// \file near_neighbor.cpp
/// \brief The paper's flagship spatial workload (SHV1): find pairs of
/// objects within an angular radius, executed as a subchunked O(kn) join
/// with precomputed overlap — and verified against a brute-force O(n^2)
/// pass over the same region.
///
/// Demonstrates §4.4's mechanism end to end: the frontend fragments the
/// self-join into per-subchunk statements with a `-- SUBCHUNKS:` header,
/// workers build Object_CC_SS and ObjectFullOverlap_CC_SS on the fly, and
/// no inter-node data exchange ever happens.
#include <cstdio>

#include "datagen/schemas.h"
#include "example_util.h"
#include "qserv/cluster.h"
#include "sphgeom/coords.h"
#include "util/stopwatch.h"
#include "util/strings.h"

int main() {
  using namespace qserv;
  using namespace qserv::examples;

  const double kRadiusDeg = 0.04;
  core::CatalogConfig catalog = core::CatalogConfig::lsst(18, 6,
                                                          /*overlapDeg=*/0.05);

  core::SkyDataOptions data;
  data.basePatchObjects = 4000;
  data.withSources = false;
  data.region = sphgeom::SphericalBox(0, -7, 14, 7);
  auto sky = core::buildSkyCatalog(catalog, data);
  if (!sky.isOk()) return 1;

  core::ClusterOptions opts;
  opts.numWorkers = 4;
  opts.frontend.catalog = catalog;
  auto cluster = core::MiniCluster::create(opts, *sky);
  if (!cluster.isOk()) return 1;
  core::QservFrontend& qserv = (*cluster)->frontend();

  std::string sql = util::format(
      "SELECT count(*) FROM Object o1, Object o2 "
      "WHERE qserv_areaspec_box(2, -5, 12, 5) "
      "AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < %.17g",
      kRadiusDeg);
  std::printf("qserv> %s\n", sql.c_str());

  util::Stopwatch watch;
  auto result = qserv.query(sql);
  if (!result.isOk()) {
    std::fprintf(stderr, "error: %s\n", result.status().toString().c_str());
    return 1;
  }
  std::int64_t distributed = result->result->cell(0, 0).asInt();
  double distMs = watch.elapsedMillis();
  std::printf("  distributed O(kn) answer: %lld ordered pairs "
              "(%.1f ms, %zu chunk queries)\n",
              static_cast<long long>(distributed), distMs,
              result->chunksDispatched);

  // Brute force over the same region: gather every object from the chunk
  // tables, test o1 in box x all o2.
  watch.reset();
  sphgeom::SphericalBox box(2, -5, 12, 5);
  std::vector<std::pair<double, double>> all;
  std::vector<std::pair<double, double>> inBox;
  for (const auto& chunk : sky->chunks) {
    for (std::size_t r = 0; r < chunk.objects->numRows(); ++r) {
      double ra = chunk.objects->cell(r, datagen::kObjRaPs).asDouble();
      double dec = chunk.objects->cell(r, datagen::kObjDeclPs).asDouble();
      all.emplace_back(ra, dec);
      if (box.contains(ra, dec)) inBox.emplace_back(ra, dec);
    }
  }
  std::int64_t brute = 0;
  for (const auto& [ra1, dec1] : inBox) {
    for (const auto& [ra2, dec2] : all) {
      if (sphgeom::angSepDeg(ra1, dec1, ra2, dec2) < kRadiusDeg) ++brute;
    }
  }
  double bruteMs = watch.elapsedMillis();
  std::printf("  brute force O(n^2) answer:  %lld ordered pairs (%.1f ms, "
              "%zu x %zu candidates)\n",
              static_cast<long long>(brute), bruteMs, inBox.size(),
              all.size());

  if (distributed != brute) {
    std::fprintf(stderr, "MISMATCH — overlap handling is broken!\n");
    return 1;
  }
  std::printf("  answers match: overlap tables make the partitioned join "
              "exact (radius %.3f deg < overlap %.3f deg)\n",
              kRadiusDeg, catalog.overlapDeg);

  // Show what a chunk query actually looks like.
  auto analyzed = core::analyzeQuery(sql, catalog);
  sphgeom::Chunker chunker = catalog.makeChunker();
  core::QueryRewriter rw(catalog, chunker);
  auto chunks = qserv.chunksFor(sql);
  auto rewrite = rw.rewrite(*analyzed, {chunks->data(), 1}, "merged");
  std::printf("\nfirst chunk query sent to a worker:\n");
  std::string text = rewrite->chunkQueries[0].text;
  std::size_t secondStmt = text.find(";\n");
  secondStmt = text.find(";\n", secondStmt + 1);
  std::printf("%s;\n  ... (%zu statements, one per subchunk)\n",
              text.substr(0, secondStmt).c_str(),
              rewrite->chunkQueries[0].subChunkIds.size());
  return 0;
}
