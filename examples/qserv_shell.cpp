/// \file qserv_shell.cpp
/// \brief Interactive SQL shell against an in-process Qserv cluster — the
/// experience the paper's astronomers get through the MySQL proxy (§5.4),
/// here with per-query execution diagnostics and live observability.
///
/// Usage: qserv_shell [numWorkers] [basePatchObjects]
/// Then type SQL (single line, `;` optional). Commands: \chunks, \workers,
/// \metrics, \processlist, \explain <sql>, \profile <id>, \slowlog [sec],
/// \trace <file>, \quit. EXPLAIN / EXPLAIN ANALYZE work as plain SQL too.
///
/// Set QSERV_SLOW_QUERY_SECONDS to emit a structured log line for every
/// query slower than the threshold (the same summary `\slowlog` queries out
/// of the QueryStats table).
///
/// Set QSERV_SCHEDULER=shared to run workers under the §4.3 shared-scan
/// scheduler (interactive priority lane, same-chunk scan passes, slow-scan
/// eviction), and QSERV_SCAN_BUDGET_GB to cap concurrently locked chunk
/// memory (DESIGN.md §12). EXPLAIN's `scheduler` row shows each query's
/// class; per-class queue waits land under `worker.*` in \metrics.
///
/// Fault injection: set QSERV_FAULTS to a fault-plan spec (see
/// xrd/fault_injector.h) to wrap every worker in an injector, e.g.
///   QSERV_FAULTS='seed=7; read:p=0.05,fail' qserv_shell 4
/// and QSERV_REPLICATION / QSERV_DEADLINE_SECONDS to see failover and
/// per-query deadlines in action. Injected-fault totals show under
/// `faultinj.*` in \metrics.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "example_util.h"
#include "qserv/cluster.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/trace.h"

int main(int argc, char** argv) {
  using namespace qserv;
  using namespace qserv::examples;

  int numWorkers = argc > 1 ? std::atoi(argv[1]) : 4;
  std::int64_t baseObjects = argc > 2 ? std::atoll(argv[2]) : 1200;

  core::CatalogConfig catalog = core::CatalogConfig::lsst(18, 6, 0.05);
  core::SkyDataOptions data;
  data.basePatchObjects = baseObjects;
  data.withSources = true;
  data.region = sphgeom::SphericalBox(0, -7, 30, 7);
  std::printf("generating synthetic sky (%lld objects/patch, region %s)...\n",
              static_cast<long long>(baseObjects), data.region.toString().c_str());
  auto sky = core::buildSkyCatalog(catalog, data);
  if (!sky.isOk()) {
    std::fprintf(stderr, "%s\n", sky.status().toString().c_str());
    return 1;
  }
  core::ClusterOptions opts;
  opts.numWorkers = numWorkers;
  opts.frontend.catalog = catalog;
  if (const char* rep = std::getenv("QSERV_REPLICATION")) {
    opts.replication = std::max(1, std::atoi(rep));
  }
  if (const char* deadline = std::getenv("QSERV_DEADLINE_SECONDS")) {
    opts.frontend.queryDeadlineSeconds = std::atof(deadline);
  }
  if (const char* sched = std::getenv("QSERV_SCHEDULER")) {
    if (std::string(sched) == "shared") {
      opts.worker.scheduler = core::SchedulerMode::kSharedScan;
      std::printf("shared-scan scheduler on: interactive priority lane, "
                  "same-chunk scan passes, memory budget\n");
    }
  }
  if (const char* budget = std::getenv("QSERV_SCAN_BUDGET_GB")) {
    opts.worker.scanMemoryBudgetBytes = std::atof(budget) * 1e9;
  }
  if (const char* slow = std::getenv("QSERV_SLOW_QUERY_SECONDS")) {
    opts.frontend.slowQuerySeconds = std::atof(slow);
    std::printf("slow-query log armed: threshold %.3f s\n",
                opts.frontend.slowQuerySeconds);
  }
  if (const char* spec = std::getenv("QSERV_FAULTS")) {
    auto plan = xrd::FaultPlan::parse(spec);
    if (!plan.isOk()) {
      std::fprintf(stderr, "bad QSERV_FAULTS: %s\n",
                   plan.status().toString().c_str());
      return 1;
    }
    opts.faults = std::move(*plan);
    std::printf("fault injection armed: %s (%zu rules, seed %llu)\n", spec,
                opts.faults.rules.size(),
                static_cast<unsigned long long>(opts.faults.seed));
  }
  auto cluster = core::MiniCluster::create(opts, *sky);
  if (!cluster.isOk()) {
    std::fprintf(stderr, "%s\n", cluster.status().toString().c_str());
    return 1;
  }
  if (const char* monitor = std::getenv("QSERV_REPAIR")) {
    if (std::atoi(monitor) != 0) {
      (*cluster)->repairController().start();
      std::printf("repair monitor started: probe every %lld ms, "
                  "auto-repair %s\n",
                  static_cast<long long>((*cluster)
                                             ->repairController()
                                             .config()
                                             .probeInterval.count()),
                  (*cluster)->repairController().config().autoRepair
                      ? "on"
                      : "off");
    }
  }
  std::printf("qserv ready: %d workers, %zu chunks. Tables: Object, Source. "
              "UDFs: qserv_areaspec_box, qserv_angSep, fluxToAbMag, ...\n"
              "commands: \\chunks \\workers \\metrics \\processlist "
              "\\explain <sql> \\profile <id> \\slowlog [sec] "
              "\\repair [run|rebalance] \\trace <file> \\quit\n",
              numWorkers, (*cluster)->chunkIds().size());

  util::TracePtr lastTrace;
  std::string line;
  while (true) {
    std::printf("qserv> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (trimmed == "\\quit" || trimmed == "\\q" || trimmed == "exit") break;
    if (trimmed == "\\chunks") {
      std::printf("%zu chunks with data\n", (*cluster)->chunkIds().size());
      continue;
    }
    if (trimmed == "\\workers") {
      for (std::size_t w = 0; w < (*cluster)->numWorkers(); ++w) {
        std::printf("  %s: %zu primary chunks, %llu tasks executed\n",
                    (*cluster)->worker(w).id().c_str(),
                    (*cluster)->chunksOfWorker(w).size(),
                    static_cast<unsigned long long>(
                        (*cluster)->worker(w).tasksExecuted()));
      }
      continue;
    }
    if (trimmed == "\\metrics") {
      std::printf("%s",
                  util::MetricsRegistry::instance().snapshot().toText().c_str());
      continue;
    }
    if (trimmed == "\\processlist" || trimmed == "\\pl") {
      auto list = (*cluster)->frontend().processList();
      if (list.empty()) {
        std::printf("no queries yet\n");
        continue;
      }
      std::printf("  %-4s %-12s %9s %7s  %s\n", "id", "state", "chunks",
                  "sec", "sql");
      for (const auto& q : list) {
        std::printf("  %-4llu %-12s %4zu/%-4zu %7.3f  %s\n",
                    static_cast<unsigned long long>(q.id),
                    q.state.c_str(), q.chunksCompleted, q.chunksTotal,
                    q.elapsedSeconds, q.sql.c_str());
      }
      continue;
    }
    if (util::startsWith(trimmed, "\\explain")) {
      std::string inner(util::trim(trimmed.substr(8)));
      if (inner.empty()) {
        std::printf("usage: \\explain <select>\n");
        continue;
      }
      auto plan = (*cluster)->frontend().query("EXPLAIN " + inner);
      if (!plan.isOk()) {
        std::printf("ERROR: %s\n", plan.status().toString().c_str());
        continue;
      }
      printTable(*plan->result, 50);
      continue;
    }
    if (util::startsWith(trimmed, "\\profile")) {
      std::string arg(util::trim(trimmed.substr(8)));
      if (arg.empty()) {
        std::printf("usage: \\profile <query id> (see \\processlist)\n");
        continue;
      }
      auto profile = (*cluster)->frontend().profileFor(
          static_cast<std::uint64_t>(std::atoll(arg.c_str())));
      if (!profile) {
        std::printf("no retained profile for query %s (bounded history; "
                    "summaries live in the QueryStats table)\n", arg.c_str());
        continue;
      }
      printTable(*profile->toTable(), 50);
      continue;
    }
    if (util::startsWith(trimmed, "\\slowlog")) {
      std::string arg(util::trim(trimmed.substr(8)));
      double threshold = arg.empty() ? 0.0 : std::atof(arg.c_str());
      // Dogfood: the slow-query view is ordinary SQL over QueryStats.
      auto rows = (*cluster)->frontend().query(util::format(
          "SELECT queryId, wallSeconds, chunks, retries, faults, status, "
          "sql FROM QueryStats WHERE wallSeconds >= %.6f "
          "ORDER BY wallSeconds DESC", threshold));
      if (!rows.isOk()) {
        std::printf("ERROR: %s\n", rows.status().toString().c_str());
        continue;
      }
      printTable(*rows->result, 50);
      continue;
    }
    if (util::startsWith(trimmed, "\\repair")) {
      auto& repair = (*cluster)->repairController();
      std::string arg(util::trim(trimmed.substr(7)));
      if (arg == "run") {
        auto copied = repair.repairOnce();
        if (!copied.isOk()) {
          std::printf("ERROR: %s\n", copied.status().toString().c_str());
        } else {
          std::printf("repair pass: %d chunk replicas created\n", *copied);
        }
        continue;
      }
      if (arg == "rebalance") {
        auto moves = repair.rebalanceOnce();
        if (!moves.isOk()) {
          std::printf("ERROR: %s\n", moves.status().toString().c_str());
        } else {
          std::printf("rebalance pass: %d replicas moved\n", *moves);
        }
        continue;
      }
      if (!arg.empty()) {
        std::printf("usage: \\repair [run|rebalance]\n");
        continue;
      }
      std::printf("%s", repair.statusText().c_str());
      continue;
    }
    if (util::startsWith(trimmed, "\\trace")) {
      if (!lastTrace) {
        std::printf("no traced query yet — run a query first\n");
        continue;
      }
      std::string path(util::trim(trimmed.substr(6)));
      if (path.empty()) path = "qserv_trace.json";
      std::ofstream out(path, std::ios::trunc);
      if (!out) {
        std::printf("cannot open %s for writing\n", path.c_str());
        continue;
      }
      out << lastTrace->toChromeJson();
      std::printf("wrote %zu spans of query %llu to %s "
                  "(open in chrome://tracing or ui.perfetto.dev)\n",
                  lastTrace->spanCount(),
                  static_cast<unsigned long long>(lastTrace->id()),
                  path.c_str());
      continue;
    }
    auto result = (*cluster)->frontend().query(std::string(trimmed));
    if (!result.isOk()) {
      std::printf("ERROR: %s\n", result.status().toString().c_str());
      continue;
    }
    lastTrace = result->trace;
    printTable(*result->result, 20);
    std::printf("(%zu rows; %zu chunk queries; %.1f ms; ~%.2f s on the "
                "paper's 150-node cluster; query id %llu, %zu trace spans)\n",
                result->result->numRows(), result->chunksDispatched,
                result->wallSeconds * 1e3, result->soloTiming.elapsedSec(),
                static_cast<unsigned long long>(result->queryId),
                result->trace ? result->trace->spanCount() : 0);
  }
  return 0;
}
