/// \file qserv_shell.cpp
/// \brief Interactive SQL shell against an in-process Qserv cluster — the
/// experience the paper's astronomers get through the MySQL proxy (§5.4),
/// here with per-query execution diagnostics.
///
/// Usage: qserv_shell [numWorkers] [basePatchObjects]
/// Then type SQL (single line, `;` optional). Commands: \chunks, \workers,
/// \quit.
#include <cstdio>
#include <iostream>
#include <string>

#include "example_util.h"
#include "qserv/cluster.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace qserv;
  using namespace qserv::examples;

  int numWorkers = argc > 1 ? std::atoi(argv[1]) : 4;
  std::int64_t baseObjects = argc > 2 ? std::atoll(argv[2]) : 1200;

  core::CatalogConfig catalog = core::CatalogConfig::lsst(18, 6, 0.05);
  core::SkyDataOptions data;
  data.basePatchObjects = baseObjects;
  data.withSources = true;
  data.region = sphgeom::SphericalBox(0, -7, 30, 7);
  std::printf("generating synthetic sky (%lld objects/patch, region %s)...\n",
              static_cast<long long>(baseObjects), data.region.toString().c_str());
  auto sky = core::buildSkyCatalog(catalog, data);
  if (!sky.isOk()) {
    std::fprintf(stderr, "%s\n", sky.status().toString().c_str());
    return 1;
  }
  core::ClusterOptions opts;
  opts.numWorkers = numWorkers;
  opts.frontend.catalog = catalog;
  auto cluster = core::MiniCluster::create(opts, *sky);
  if (!cluster.isOk()) {
    std::fprintf(stderr, "%s\n", cluster.status().toString().c_str());
    return 1;
  }
  std::printf("qserv ready: %d workers, %zu chunks. Tables: Object, Source. "
              "UDFs: qserv_areaspec_box, qserv_angSep, fluxToAbMag, ...\n",
              numWorkers, (*cluster)->chunkIds().size());

  std::string line;
  while (true) {
    std::printf("qserv> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (trimmed == "\\quit" || trimmed == "\\q" || trimmed == "exit") break;
    if (trimmed == "\\chunks") {
      std::printf("%zu chunks with data\n", (*cluster)->chunkIds().size());
      continue;
    }
    if (trimmed == "\\workers") {
      for (std::size_t w = 0; w < (*cluster)->numWorkers(); ++w) {
        std::printf("  %s: %zu primary chunks, %llu tasks executed\n",
                    (*cluster)->worker(w).id().c_str(),
                    (*cluster)->chunksOfWorker(w).size(),
                    static_cast<unsigned long long>(
                        (*cluster)->worker(w).tasksExecuted()));
      }
      continue;
    }
    auto result = (*cluster)->frontend().query(std::string(trimmed));
    if (!result.isOk()) {
      std::printf("ERROR: %s\n", result.status().toString().c_str());
      continue;
    }
    printTable(*result->result, 20);
    std::printf("(%zu rows; %zu chunk queries; %.1f ms; ~%.2f s on the "
                "paper's 150-node cluster)\n",
                result->result->numRows(), result->chunksDispatched,
                result->wallSeconds * 1e3, result->soloTiming.elapsedSec());
  }
  return 0;
}
