/// \file example_util.h
/// \brief Small helpers shared by the runnable examples.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "sql/table.h"

namespace qserv::examples {

/// Pretty-print (up to \p maxRows of) a result table.
inline void printTable(const sql::Table& table, std::size_t maxRows = 10) {
  std::vector<std::size_t> widths;
  for (std::size_t c = 0; c < table.numColumns(); ++c) {
    widths.push_back(table.schema().column(c).name.size());
  }
  std::size_t shown = std::min(maxRows, table.numRows());
  std::vector<std::vector<std::string>> cells;
  for (std::size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < table.numColumns(); ++c) {
      row.push_back(table.cell(r, c).toDisplayString());
      widths[c] = std::max(widths[c], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  std::printf("  ");
  for (std::size_t c = 0; c < table.numColumns(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]),
                table.schema().column(c).name.c_str());
  }
  std::printf("\n");
  for (const auto& row : cells) {
    std::printf("  ");
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  if (table.numRows() > shown) {
    std::printf("  ... (%zu rows total)\n", table.numRows());
  }
}

}  // namespace qserv::examples
