/// \file time_series.cpp
/// \brief The paper's LV2 workload as an astronomer would use it: pick an
/// object, pull every detection of it from the Source table (a light
/// curve), and compute variability statistics — all through the secondary
/// index, touching exactly one chunk.
#include <cmath>
#include <cstdio>

#include "example_util.h"
#include "qserv/cluster.h"
#include "util/stats.h"
#include "util/strings.h"

int main() {
  using namespace qserv;
  using namespace qserv::examples;

  core::CatalogConfig catalog = core::CatalogConfig::lsst(18, 6, 0.05);
  core::SkyDataOptions data;
  data.basePatchObjects = 800;
  data.withSources = true;
  data.region = sphgeom::SphericalBox(0, -7, 14, 7);
  auto sky = core::buildSkyCatalog(catalog, data);
  if (!sky.isOk()) return 1;

  core::ClusterOptions opts;
  opts.numWorkers = 3;
  opts.frontend.catalog = catalog;
  auto cluster = core::MiniCluster::create(opts, *sky);
  if (!cluster.isOk()) return 1;
  core::QservFrontend& qserv = (*cluster)->frontend();

  // Pick a few objects through the index.
  auto index = qserv.metadata().findTable(core::SecondaryIndex::kTableName);
  for (std::size_t pick = 0; pick < 3; ++pick) {
    std::int64_t objectId =
        index->cell((pick * 7919 + 13) % index->numRows(), 0).asInt();

    // The paper's LV2 query, verbatim shape.
    std::string sql = util::format(
        "SELECT taiMidPoint, fluxToAbMag(psfFlux), fluxToAbMag(psfFluxErr), "
        "ra, decl FROM Source WHERE objectId = %lld ORDER BY taiMidPoint",
        static_cast<long long>(objectId));
    std::printf("qserv> %s\n", sql.c_str());
    auto result = qserv.query(sql);
    if (!result.isOk()) {
      std::fprintf(stderr, "error: %s\n", result.status().toString().c_str());
      return 1;
    }
    const sql::Table& lc = *result->result;
    printTable(lc, 5);

    // Light-curve statistics: epochs, baseline, magnitude scatter.
    util::RunningStats mag;
    double tMin = 1e18, tMax = -1e18;
    for (std::size_t r = 0; r < lc.numRows(); ++r) {
      double t = lc.cell(r, 0).asDouble();
      tMin = std::min(tMin, t);
      tMax = std::max(tMax, t);
      if (!lc.cell(r, 1).isNull()) mag.add(lc.cell(r, 1).asDouble());
    }
    std::printf("  object %lld: %zu epochs over %.0f days, "
                "<m>=%.2f mag, rms=%.3f mag  [%zu chunk touched]\n\n",
                static_cast<long long>(objectId), lc.numRows(),
                lc.numRows() ? tMax - tMin : 0.0, mag.mean(), mag.stddev(),
                result->chunksDispatched);
  }
  return 0;
}
