
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/ast.cc" "src/sql/CMakeFiles/qserv_sql.dir/ast.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/ast.cc.o.d"
  "/root/repo/src/sql/database.cc" "src/sql/CMakeFiles/qserv_sql.dir/database.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/database.cc.o.d"
  "/root/repo/src/sql/dump.cc" "src/sql/CMakeFiles/qserv_sql.dir/dump.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/dump.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/sql/CMakeFiles/qserv_sql.dir/executor.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/executor.cc.o.d"
  "/root/repo/src/sql/expr_eval.cc" "src/sql/CMakeFiles/qserv_sql.dir/expr_eval.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/expr_eval.cc.o.d"
  "/root/repo/src/sql/functions.cc" "src/sql/CMakeFiles/qserv_sql.dir/functions.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/functions.cc.o.d"
  "/root/repo/src/sql/index.cc" "src/sql/CMakeFiles/qserv_sql.dir/index.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/index.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/sql/CMakeFiles/qserv_sql.dir/lexer.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/qserv_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/rowcodec.cc" "src/sql/CMakeFiles/qserv_sql.dir/rowcodec.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/rowcodec.cc.o.d"
  "/root/repo/src/sql/schema.cc" "src/sql/CMakeFiles/qserv_sql.dir/schema.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/schema.cc.o.d"
  "/root/repo/src/sql/table.cc" "src/sql/CMakeFiles/qserv_sql.dir/table.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/table.cc.o.d"
  "/root/repo/src/sql/value.cc" "src/sql/CMakeFiles/qserv_sql.dir/value.cc.o" "gcc" "src/sql/CMakeFiles/qserv_sql.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sphgeom/CMakeFiles/qserv_sphgeom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
