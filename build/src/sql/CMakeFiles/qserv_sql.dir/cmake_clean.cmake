file(REMOVE_RECURSE
  "CMakeFiles/qserv_sql.dir/ast.cc.o"
  "CMakeFiles/qserv_sql.dir/ast.cc.o.d"
  "CMakeFiles/qserv_sql.dir/database.cc.o"
  "CMakeFiles/qserv_sql.dir/database.cc.o.d"
  "CMakeFiles/qserv_sql.dir/dump.cc.o"
  "CMakeFiles/qserv_sql.dir/dump.cc.o.d"
  "CMakeFiles/qserv_sql.dir/executor.cc.o"
  "CMakeFiles/qserv_sql.dir/executor.cc.o.d"
  "CMakeFiles/qserv_sql.dir/expr_eval.cc.o"
  "CMakeFiles/qserv_sql.dir/expr_eval.cc.o.d"
  "CMakeFiles/qserv_sql.dir/functions.cc.o"
  "CMakeFiles/qserv_sql.dir/functions.cc.o.d"
  "CMakeFiles/qserv_sql.dir/index.cc.o"
  "CMakeFiles/qserv_sql.dir/index.cc.o.d"
  "CMakeFiles/qserv_sql.dir/lexer.cc.o"
  "CMakeFiles/qserv_sql.dir/lexer.cc.o.d"
  "CMakeFiles/qserv_sql.dir/parser.cc.o"
  "CMakeFiles/qserv_sql.dir/parser.cc.o.d"
  "CMakeFiles/qserv_sql.dir/rowcodec.cc.o"
  "CMakeFiles/qserv_sql.dir/rowcodec.cc.o.d"
  "CMakeFiles/qserv_sql.dir/schema.cc.o"
  "CMakeFiles/qserv_sql.dir/schema.cc.o.d"
  "CMakeFiles/qserv_sql.dir/table.cc.o"
  "CMakeFiles/qserv_sql.dir/table.cc.o.d"
  "CMakeFiles/qserv_sql.dir/value.cc.o"
  "CMakeFiles/qserv_sql.dir/value.cc.o.d"
  "libqserv_sql.a"
  "libqserv_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qserv_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
