file(REMOVE_RECURSE
  "libqserv_sql.a"
)
