# Empty compiler generated dependencies file for qserv_sql.
# This may be replaced when dependencies are built.
