file(REMOVE_RECURSE
  "CMakeFiles/qserv_simio.dir/cost_model.cc.o"
  "CMakeFiles/qserv_simio.dir/cost_model.cc.o.d"
  "CMakeFiles/qserv_simio.dir/queue_sim.cc.o"
  "CMakeFiles/qserv_simio.dir/queue_sim.cc.o.d"
  "libqserv_simio.a"
  "libqserv_simio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qserv_simio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
