file(REMOVE_RECURSE
  "libqserv_simio.a"
)
