
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simio/cost_model.cc" "src/simio/CMakeFiles/qserv_simio.dir/cost_model.cc.o" "gcc" "src/simio/CMakeFiles/qserv_simio.dir/cost_model.cc.o.d"
  "/root/repo/src/simio/queue_sim.cc" "src/simio/CMakeFiles/qserv_simio.dir/queue_sim.cc.o" "gcc" "src/simio/CMakeFiles/qserv_simio.dir/queue_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
