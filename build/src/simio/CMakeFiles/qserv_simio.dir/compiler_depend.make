# Empty compiler generated dependencies file for qserv_simio.
# This may be replaced when dependencies are built.
