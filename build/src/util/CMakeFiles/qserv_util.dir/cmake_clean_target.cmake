file(REMOVE_RECURSE
  "libqserv_util.a"
)
