file(REMOVE_RECURSE
  "CMakeFiles/qserv_util.dir/logging.cc.o"
  "CMakeFiles/qserv_util.dir/logging.cc.o.d"
  "CMakeFiles/qserv_util.dir/md5.cc.o"
  "CMakeFiles/qserv_util.dir/md5.cc.o.d"
  "CMakeFiles/qserv_util.dir/stats.cc.o"
  "CMakeFiles/qserv_util.dir/stats.cc.o.d"
  "CMakeFiles/qserv_util.dir/strings.cc.o"
  "CMakeFiles/qserv_util.dir/strings.cc.o.d"
  "CMakeFiles/qserv_util.dir/thread_pool.cc.o"
  "CMakeFiles/qserv_util.dir/thread_pool.cc.o.d"
  "libqserv_util.a"
  "libqserv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qserv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
