# Empty compiler generated dependencies file for qserv_util.
# This may be replaced when dependencies are built.
