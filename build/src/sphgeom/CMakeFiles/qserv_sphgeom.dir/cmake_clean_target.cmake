file(REMOVE_RECURSE
  "libqserv_sphgeom.a"
)
