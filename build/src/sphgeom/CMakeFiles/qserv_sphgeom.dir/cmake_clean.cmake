file(REMOVE_RECURSE
  "CMakeFiles/qserv_sphgeom.dir/chunker.cc.o"
  "CMakeFiles/qserv_sphgeom.dir/chunker.cc.o.d"
  "CMakeFiles/qserv_sphgeom.dir/coords.cc.o"
  "CMakeFiles/qserv_sphgeom.dir/coords.cc.o.d"
  "CMakeFiles/qserv_sphgeom.dir/htm.cc.o"
  "CMakeFiles/qserv_sphgeom.dir/htm.cc.o.d"
  "CMakeFiles/qserv_sphgeom.dir/spherical_box.cc.o"
  "CMakeFiles/qserv_sphgeom.dir/spherical_box.cc.o.d"
  "libqserv_sphgeom.a"
  "libqserv_sphgeom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qserv_sphgeom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
