# Empty compiler generated dependencies file for qserv_sphgeom.
# This may be replaced when dependencies are built.
