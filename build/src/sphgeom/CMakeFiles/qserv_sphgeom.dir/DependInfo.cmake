
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sphgeom/chunker.cc" "src/sphgeom/CMakeFiles/qserv_sphgeom.dir/chunker.cc.o" "gcc" "src/sphgeom/CMakeFiles/qserv_sphgeom.dir/chunker.cc.o.d"
  "/root/repo/src/sphgeom/coords.cc" "src/sphgeom/CMakeFiles/qserv_sphgeom.dir/coords.cc.o" "gcc" "src/sphgeom/CMakeFiles/qserv_sphgeom.dir/coords.cc.o.d"
  "/root/repo/src/sphgeom/htm.cc" "src/sphgeom/CMakeFiles/qserv_sphgeom.dir/htm.cc.o" "gcc" "src/sphgeom/CMakeFiles/qserv_sphgeom.dir/htm.cc.o.d"
  "/root/repo/src/sphgeom/spherical_box.cc" "src/sphgeom/CMakeFiles/qserv_sphgeom.dir/spherical_box.cc.o" "gcc" "src/sphgeom/CMakeFiles/qserv_sphgeom.dir/spherical_box.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
