file(REMOVE_RECURSE
  "libqserv_xrd.a"
)
