file(REMOVE_RECURSE
  "CMakeFiles/qserv_xrd.dir/client.cc.o"
  "CMakeFiles/qserv_xrd.dir/client.cc.o.d"
  "CMakeFiles/qserv_xrd.dir/data_server.cc.o"
  "CMakeFiles/qserv_xrd.dir/data_server.cc.o.d"
  "CMakeFiles/qserv_xrd.dir/file_store.cc.o"
  "CMakeFiles/qserv_xrd.dir/file_store.cc.o.d"
  "CMakeFiles/qserv_xrd.dir/paths.cc.o"
  "CMakeFiles/qserv_xrd.dir/paths.cc.o.d"
  "CMakeFiles/qserv_xrd.dir/redirector.cc.o"
  "CMakeFiles/qserv_xrd.dir/redirector.cc.o.d"
  "libqserv_xrd.a"
  "libqserv_xrd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qserv_xrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
