
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xrd/client.cc" "src/xrd/CMakeFiles/qserv_xrd.dir/client.cc.o" "gcc" "src/xrd/CMakeFiles/qserv_xrd.dir/client.cc.o.d"
  "/root/repo/src/xrd/data_server.cc" "src/xrd/CMakeFiles/qserv_xrd.dir/data_server.cc.o" "gcc" "src/xrd/CMakeFiles/qserv_xrd.dir/data_server.cc.o.d"
  "/root/repo/src/xrd/file_store.cc" "src/xrd/CMakeFiles/qserv_xrd.dir/file_store.cc.o" "gcc" "src/xrd/CMakeFiles/qserv_xrd.dir/file_store.cc.o.d"
  "/root/repo/src/xrd/paths.cc" "src/xrd/CMakeFiles/qserv_xrd.dir/paths.cc.o" "gcc" "src/xrd/CMakeFiles/qserv_xrd.dir/paths.cc.o.d"
  "/root/repo/src/xrd/redirector.cc" "src/xrd/CMakeFiles/qserv_xrd.dir/redirector.cc.o" "gcc" "src/xrd/CMakeFiles/qserv_xrd.dir/redirector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
