# Empty dependencies file for qserv_xrd.
# This may be replaced when dependencies are built.
