file(REMOVE_RECURSE
  "CMakeFiles/qserv_core.dir/catalog_config.cc.o"
  "CMakeFiles/qserv_core.dir/catalog_config.cc.o.d"
  "CMakeFiles/qserv_core.dir/cluster.cc.o"
  "CMakeFiles/qserv_core.dir/cluster.cc.o.d"
  "CMakeFiles/qserv_core.dir/czar.cc.o"
  "CMakeFiles/qserv_core.dir/czar.cc.o.d"
  "CMakeFiles/qserv_core.dir/dispatcher.cc.o"
  "CMakeFiles/qserv_core.dir/dispatcher.cc.o.d"
  "CMakeFiles/qserv_core.dir/merger.cc.o"
  "CMakeFiles/qserv_core.dir/merger.cc.o.d"
  "CMakeFiles/qserv_core.dir/observables_codec.cc.o"
  "CMakeFiles/qserv_core.dir/observables_codec.cc.o.d"
  "CMakeFiles/qserv_core.dir/query_analysis.cc.o"
  "CMakeFiles/qserv_core.dir/query_analysis.cc.o.d"
  "CMakeFiles/qserv_core.dir/query_rewriter.cc.o"
  "CMakeFiles/qserv_core.dir/query_rewriter.cc.o.d"
  "CMakeFiles/qserv_core.dir/secondary_index.cc.o"
  "CMakeFiles/qserv_core.dir/secondary_index.cc.o.d"
  "CMakeFiles/qserv_core.dir/worker.cc.o"
  "CMakeFiles/qserv_core.dir/worker.cc.o.d"
  "libqserv_core.a"
  "libqserv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qserv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
