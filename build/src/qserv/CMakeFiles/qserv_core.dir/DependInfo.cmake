
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qserv/catalog_config.cc" "src/qserv/CMakeFiles/qserv_core.dir/catalog_config.cc.o" "gcc" "src/qserv/CMakeFiles/qserv_core.dir/catalog_config.cc.o.d"
  "/root/repo/src/qserv/cluster.cc" "src/qserv/CMakeFiles/qserv_core.dir/cluster.cc.o" "gcc" "src/qserv/CMakeFiles/qserv_core.dir/cluster.cc.o.d"
  "/root/repo/src/qserv/czar.cc" "src/qserv/CMakeFiles/qserv_core.dir/czar.cc.o" "gcc" "src/qserv/CMakeFiles/qserv_core.dir/czar.cc.o.d"
  "/root/repo/src/qserv/dispatcher.cc" "src/qserv/CMakeFiles/qserv_core.dir/dispatcher.cc.o" "gcc" "src/qserv/CMakeFiles/qserv_core.dir/dispatcher.cc.o.d"
  "/root/repo/src/qserv/merger.cc" "src/qserv/CMakeFiles/qserv_core.dir/merger.cc.o" "gcc" "src/qserv/CMakeFiles/qserv_core.dir/merger.cc.o.d"
  "/root/repo/src/qserv/observables_codec.cc" "src/qserv/CMakeFiles/qserv_core.dir/observables_codec.cc.o" "gcc" "src/qserv/CMakeFiles/qserv_core.dir/observables_codec.cc.o.d"
  "/root/repo/src/qserv/query_analysis.cc" "src/qserv/CMakeFiles/qserv_core.dir/query_analysis.cc.o" "gcc" "src/qserv/CMakeFiles/qserv_core.dir/query_analysis.cc.o.d"
  "/root/repo/src/qserv/query_rewriter.cc" "src/qserv/CMakeFiles/qserv_core.dir/query_rewriter.cc.o" "gcc" "src/qserv/CMakeFiles/qserv_core.dir/query_rewriter.cc.o.d"
  "/root/repo/src/qserv/secondary_index.cc" "src/qserv/CMakeFiles/qserv_core.dir/secondary_index.cc.o" "gcc" "src/qserv/CMakeFiles/qserv_core.dir/secondary_index.cc.o.d"
  "/root/repo/src/qserv/worker.cc" "src/qserv/CMakeFiles/qserv_core.dir/worker.cc.o" "gcc" "src/qserv/CMakeFiles/qserv_core.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/qserv_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/xrd/CMakeFiles/qserv_xrd.dir/DependInfo.cmake"
  "/root/repo/build/src/simio/CMakeFiles/qserv_simio.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/qserv_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/sphgeom/CMakeFiles/qserv_sphgeom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
