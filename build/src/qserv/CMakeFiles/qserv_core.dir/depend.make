# Empty dependencies file for qserv_core.
# This may be replaced when dependencies are built.
