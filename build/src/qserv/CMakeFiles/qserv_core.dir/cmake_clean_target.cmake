file(REMOVE_RECURSE
  "libqserv_core.a"
)
