file(REMOVE_RECURSE
  "CMakeFiles/qserv_datagen.dir/catalog_gen.cc.o"
  "CMakeFiles/qserv_datagen.dir/catalog_gen.cc.o.d"
  "CMakeFiles/qserv_datagen.dir/partitioner.cc.o"
  "CMakeFiles/qserv_datagen.dir/partitioner.cc.o.d"
  "CMakeFiles/qserv_datagen.dir/schemas.cc.o"
  "CMakeFiles/qserv_datagen.dir/schemas.cc.o.d"
  "libqserv_datagen.a"
  "libqserv_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qserv_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
