
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/catalog_gen.cc" "src/datagen/CMakeFiles/qserv_datagen.dir/catalog_gen.cc.o" "gcc" "src/datagen/CMakeFiles/qserv_datagen.dir/catalog_gen.cc.o.d"
  "/root/repo/src/datagen/partitioner.cc" "src/datagen/CMakeFiles/qserv_datagen.dir/partitioner.cc.o" "gcc" "src/datagen/CMakeFiles/qserv_datagen.dir/partitioner.cc.o.d"
  "/root/repo/src/datagen/schemas.cc" "src/datagen/CMakeFiles/qserv_datagen.dir/schemas.cc.o" "gcc" "src/datagen/CMakeFiles/qserv_datagen.dir/schemas.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/qserv_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/sphgeom/CMakeFiles/qserv_sphgeom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
