file(REMOVE_RECURSE
  "libqserv_datagen.a"
)
