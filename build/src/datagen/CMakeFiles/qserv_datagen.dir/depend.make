# Empty dependencies file for qserv_datagen.
# This may be replaced when dependencies are built.
