file(REMOVE_RECURSE
  "CMakeFiles/near_neighbor.dir/near_neighbor.cpp.o"
  "CMakeFiles/near_neighbor.dir/near_neighbor.cpp.o.d"
  "near_neighbor"
  "near_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/near_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
