# Empty dependencies file for near_neighbor.
# This may be replaced when dependencies are built.
