# Empty dependencies file for qserv_shell.
# This may be replaced when dependencies are built.
