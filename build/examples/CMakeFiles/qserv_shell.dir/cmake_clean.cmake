file(REMOVE_RECURSE
  "CMakeFiles/qserv_shell.dir/qserv_shell.cpp.o"
  "CMakeFiles/qserv_shell.dir/qserv_shell.cpp.o.d"
  "qserv_shell"
  "qserv_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qserv_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
