file(REMOVE_RECURSE
  "CMakeFiles/shared_scan_demo.dir/shared_scan_demo.cpp.o"
  "CMakeFiles/shared_scan_demo.dir/shared_scan_demo.cpp.o.d"
  "shared_scan_demo"
  "shared_scan_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_scan_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
