# Empty compiler generated dependencies file for shared_scan_demo.
# This may be replaced when dependencies are built.
