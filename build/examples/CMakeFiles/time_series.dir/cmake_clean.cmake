file(REMOVE_RECURSE
  "CMakeFiles/time_series.dir/time_series.cpp.o"
  "CMakeFiles/time_series.dir/time_series.cpp.o.d"
  "time_series"
  "time_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
