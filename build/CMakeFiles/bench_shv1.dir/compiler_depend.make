# Empty compiler generated dependencies file for bench_shv1.
# This may be replaced when dependencies are built.
