file(REMOVE_RECURSE
  "CMakeFiles/bench_shv1.dir/bench/bench_shv1.cc.o"
  "CMakeFiles/bench_shv1.dir/bench/bench_shv1.cc.o.d"
  "bench/bench_shv1"
  "bench/bench_shv1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shv1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
