
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_shv1.cc" "CMakeFiles/bench_shv1.dir/bench/bench_shv1.cc.o" "gcc" "CMakeFiles/bench_shv1.dir/bench/bench_shv1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qserv/CMakeFiles/qserv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/qserv_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/xrd/CMakeFiles/qserv_xrd.dir/DependInfo.cmake"
  "/root/repo/build/src/simio/CMakeFiles/qserv_simio.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/qserv_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/sphgeom/CMakeFiles/qserv_sphgeom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qserv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
