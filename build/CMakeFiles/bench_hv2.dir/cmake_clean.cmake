file(REMOVE_RECURSE
  "CMakeFiles/bench_hv2.dir/bench/bench_hv2.cc.o"
  "CMakeFiles/bench_hv2.dir/bench/bench_hv2.cc.o.d"
  "bench/bench_hv2"
  "bench/bench_hv2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hv2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
