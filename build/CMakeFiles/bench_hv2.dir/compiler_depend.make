# Empty compiler generated dependencies file for bench_hv2.
# This may be replaced when dependencies are built.
