file(REMOVE_RECURSE
  "CMakeFiles/bench_shared_scan.dir/bench/bench_shared_scan.cc.o"
  "CMakeFiles/bench_shared_scan.dir/bench/bench_shared_scan.cc.o.d"
  "bench/bench_shared_scan"
  "bench/bench_shared_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shared_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
