file(REMOVE_RECURSE
  "CMakeFiles/bench_subchunks.dir/bench/bench_subchunks.cc.o"
  "CMakeFiles/bench_subchunks.dir/bench/bench_subchunks.cc.o.d"
  "bench/bench_subchunks"
  "bench/bench_subchunks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subchunks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
