# Empty dependencies file for bench_subchunks.
# This may be replaced when dependencies are built.
