file(REMOVE_RECURSE
  "CMakeFiles/bench_lv3.dir/bench/bench_lv3.cc.o"
  "CMakeFiles/bench_lv3.dir/bench/bench_lv3.cc.o.d"
  "bench/bench_lv3"
  "bench/bench_lv3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lv3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
