# Empty dependencies file for bench_lv3.
# This may be replaced when dependencies are built.
