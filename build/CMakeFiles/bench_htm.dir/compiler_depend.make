# Empty compiler generated dependencies file for bench_htm.
# This may be replaced when dependencies are built.
