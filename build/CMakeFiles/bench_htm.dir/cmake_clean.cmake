file(REMOVE_RECURSE
  "CMakeFiles/bench_htm.dir/bench/bench_htm.cc.o"
  "CMakeFiles/bench_htm.dir/bench/bench_htm.cc.o.d"
  "bench/bench_htm"
  "bench/bench_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
