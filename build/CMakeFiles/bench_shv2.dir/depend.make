# Empty dependencies file for bench_shv2.
# This may be replaced when dependencies are built.
