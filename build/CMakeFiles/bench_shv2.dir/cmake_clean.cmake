file(REMOVE_RECURSE
  "CMakeFiles/bench_shv2.dir/bench/bench_shv2.cc.o"
  "CMakeFiles/bench_shv2.dir/bench/bench_shv2.cc.o.d"
  "bench/bench_shv2"
  "bench/bench_shv2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shv2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
