file(REMOVE_RECURSE
  "CMakeFiles/bench_hv1.dir/bench/bench_hv1.cc.o"
  "CMakeFiles/bench_hv1.dir/bench/bench_hv1.cc.o.d"
  "bench/bench_hv1"
  "bench/bench_hv1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hv1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
