# Empty dependencies file for bench_hv1.
# This may be replaced when dependencies are built.
