file(REMOVE_RECURSE
  "CMakeFiles/bench_transfer.dir/bench/bench_transfer.cc.o"
  "CMakeFiles/bench_transfer.dir/bench/bench_transfer.cc.o.d"
  "bench/bench_transfer"
  "bench/bench_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
