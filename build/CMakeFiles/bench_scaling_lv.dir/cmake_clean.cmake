file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_lv.dir/bench/bench_scaling_lv.cc.o"
  "CMakeFiles/bench_scaling_lv.dir/bench/bench_scaling_lv.cc.o.d"
  "bench/bench_scaling_lv"
  "bench/bench_scaling_lv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_lv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
