# Empty compiler generated dependencies file for bench_scaling_lv.
# This may be replaced when dependencies are built.
