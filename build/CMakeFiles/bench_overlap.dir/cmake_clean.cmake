file(REMOVE_RECURSE
  "CMakeFiles/bench_overlap.dir/bench/bench_overlap.cc.o"
  "CMakeFiles/bench_overlap.dir/bench/bench_overlap.cc.o.d"
  "bench/bench_overlap"
  "bench/bench_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
