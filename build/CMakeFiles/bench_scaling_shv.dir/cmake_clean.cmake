file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_shv.dir/bench/bench_scaling_shv.cc.o"
  "CMakeFiles/bench_scaling_shv.dir/bench/bench_scaling_shv.cc.o.d"
  "bench/bench_scaling_shv"
  "bench/bench_scaling_shv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_shv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
