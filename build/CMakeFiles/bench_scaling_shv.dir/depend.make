# Empty dependencies file for bench_scaling_shv.
# This may be replaced when dependencies are built.
