# Empty dependencies file for bench_lv1.
# This may be replaced when dependencies are built.
