file(REMOVE_RECURSE
  "CMakeFiles/bench_lv1.dir/bench/bench_lv1.cc.o"
  "CMakeFiles/bench_lv1.dir/bench/bench_lv1.cc.o.d"
  "bench/bench_lv1"
  "bench/bench_lv1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lv1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
