# Empty compiler generated dependencies file for bench_hv3.
# This may be replaced when dependencies are built.
