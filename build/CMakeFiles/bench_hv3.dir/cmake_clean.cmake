file(REMOVE_RECURSE
  "CMakeFiles/bench_hv3.dir/bench/bench_hv3.cc.o"
  "CMakeFiles/bench_hv3.dir/bench/bench_hv3.cc.o.d"
  "bench/bench_hv3"
  "bench/bench_hv3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hv3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
