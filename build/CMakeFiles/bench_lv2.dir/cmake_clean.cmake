file(REMOVE_RECURSE
  "CMakeFiles/bench_lv2.dir/bench/bench_lv2.cc.o"
  "CMakeFiles/bench_lv2.dir/bench/bench_lv2.cc.o.d"
  "bench/bench_lv2"
  "bench/bench_lv2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lv2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
