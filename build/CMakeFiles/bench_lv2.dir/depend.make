# Empty dependencies file for bench_lv2.
# This may be replaced when dependencies are built.
