file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_hv.dir/bench/bench_scaling_hv.cc.o"
  "CMakeFiles/bench_scaling_hv.dir/bench/bench_scaling_hv.cc.o.d"
  "bench/bench_scaling_hv"
  "bench/bench_scaling_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
