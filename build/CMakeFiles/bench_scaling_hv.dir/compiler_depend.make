# Empty compiler generated dependencies file for bench_scaling_hv.
# This may be replaced when dependencies are built.
