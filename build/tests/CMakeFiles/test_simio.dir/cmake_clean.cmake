file(REMOVE_RECURSE
  "CMakeFiles/test_simio.dir/simio/cost_model_test.cc.o"
  "CMakeFiles/test_simio.dir/simio/cost_model_test.cc.o.d"
  "CMakeFiles/test_simio.dir/simio/queue_sim_test.cc.o"
  "CMakeFiles/test_simio.dir/simio/queue_sim_test.cc.o.d"
  "test_simio"
  "test_simio.pdb"
  "test_simio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
