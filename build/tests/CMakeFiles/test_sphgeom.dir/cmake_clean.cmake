file(REMOVE_RECURSE
  "CMakeFiles/test_sphgeom.dir/sphgeom/chunker_test.cc.o"
  "CMakeFiles/test_sphgeom.dir/sphgeom/chunker_test.cc.o.d"
  "CMakeFiles/test_sphgeom.dir/sphgeom/coords_test.cc.o"
  "CMakeFiles/test_sphgeom.dir/sphgeom/coords_test.cc.o.d"
  "CMakeFiles/test_sphgeom.dir/sphgeom/htm_test.cc.o"
  "CMakeFiles/test_sphgeom.dir/sphgeom/htm_test.cc.o.d"
  "CMakeFiles/test_sphgeom.dir/sphgeom/spherical_box_test.cc.o"
  "CMakeFiles/test_sphgeom.dir/sphgeom/spherical_box_test.cc.o.d"
  "test_sphgeom"
  "test_sphgeom.pdb"
  "test_sphgeom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sphgeom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
