# Empty dependencies file for test_sphgeom.
# This may be replaced when dependencies are built.
