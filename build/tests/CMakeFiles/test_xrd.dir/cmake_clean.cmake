file(REMOVE_RECURSE
  "CMakeFiles/test_xrd.dir/xrd/xrd_test.cc.o"
  "CMakeFiles/test_xrd.dir/xrd/xrd_test.cc.o.d"
  "test_xrd"
  "test_xrd.pdb"
  "test_xrd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
