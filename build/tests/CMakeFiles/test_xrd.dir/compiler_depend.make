# Empty compiler generated dependencies file for test_xrd.
# This may be replaced when dependencies are built.
