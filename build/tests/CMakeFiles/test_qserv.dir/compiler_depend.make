# Empty compiler generated dependencies file for test_qserv.
# This may be replaced when dependencies are built.
