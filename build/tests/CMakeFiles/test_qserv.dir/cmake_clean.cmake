file(REMOVE_RECURSE
  "CMakeFiles/test_qserv.dir/qserv/analysis_test.cc.o"
  "CMakeFiles/test_qserv.dir/qserv/analysis_test.cc.o.d"
  "CMakeFiles/test_qserv.dir/qserv/cluster_test.cc.o"
  "CMakeFiles/test_qserv.dir/qserv/cluster_test.cc.o.d"
  "CMakeFiles/test_qserv.dir/qserv/czar_test.cc.o"
  "CMakeFiles/test_qserv.dir/qserv/czar_test.cc.o.d"
  "CMakeFiles/test_qserv.dir/qserv/merger_dispatcher_test.cc.o"
  "CMakeFiles/test_qserv.dir/qserv/merger_dispatcher_test.cc.o.d"
  "CMakeFiles/test_qserv.dir/qserv/rewriter_test.cc.o"
  "CMakeFiles/test_qserv.dir/qserv/rewriter_test.cc.o.d"
  "CMakeFiles/test_qserv.dir/qserv/secondary_index_test.cc.o"
  "CMakeFiles/test_qserv.dir/qserv/secondary_index_test.cc.o.d"
  "CMakeFiles/test_qserv.dir/qserv/worker_test.cc.o"
  "CMakeFiles/test_qserv.dir/qserv/worker_test.cc.o.d"
  "test_qserv"
  "test_qserv.pdb"
  "test_qserv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qserv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
