# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_qserv[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_datagen[1]_include.cmake")
include("/root/repo/build/tests/test_xrd[1]_include.cmake")
include("/root/repo/build/tests/test_simio[1]_include.cmake")
include("/root/repo/build/tests/test_sql[1]_include.cmake")
include("/root/repo/build/tests/test_sphgeom[1]_include.cmake")
