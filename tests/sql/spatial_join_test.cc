/// Tests for the zone-based spatial join (sql/spatial_join.h): path
/// selection, edge cases the RA window math must survive (wraparound at
/// 0/360, polar caps, NULL coordinates), and randomized bit-identical
/// parity against the nested-loop fallback.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sql/executor.h"
#include "sql/spatial_join.h"
#include "util/rng.h"
#include "util/strings.h"

namespace qserv::sql {
namespace {

/// RAII guard so a test that disables the zone path can't leak the
/// process-wide toggle into later tests.
class ZoneToggle {
 public:
  explicit ZoneToggle(bool enabled) { setSpatialJoinEnabled(enabled); }
  ~ZoneToggle() { setSpatialJoinEnabled(true); }
};

Schema objectSchema() {
  return Schema({{"id", ColumnType::kInt},
                 {"ra", ColumnType::kDouble},
                 {"decl", ColumnType::kDouble}});
}

void appendPoint(Table& t, std::int64_t id, Value ra, Value dec) {
  std::vector<Value> row{Value(id), std::move(ra), std::move(dec)};
  ASSERT_TRUE(t.appendRow(row).isOk());
}

void appendRow2(Table& t, Value a, Value b) {
  std::vector<Value> row{std::move(a), std::move(b)};
  ASSERT_TRUE(t.appendRow(row).isOk());
}

/// Runs \p sql once with the zone join enabled and once with it disabled
/// (nested-loop oracle) and requires bit-identical result tables: same
/// rows, same order, same cell values. Returns the zone-path stats.
ExecStats expectParity(Database& db, const std::string& sql) {
  ExecStats zoneStats;
  ExecStats loopStats;
  TablePtr zoneResult;
  TablePtr loopResult;
  {
    ZoneToggle on(true);
    auto r = db.execute(sql, &zoneStats);
    EXPECT_TRUE(r.isOk()) << r.status().toString() << " for " << sql;
    if (r.isOk()) zoneResult = *r;
  }
  {
    ZoneToggle off(false);
    auto r = db.execute(sql, &loopStats);
    EXPECT_TRUE(r.isOk()) << r.status().toString() << " for " << sql;
    if (r.isOk()) loopResult = *r;
  }
  if (!zoneResult || !loopResult) return zoneStats;
  EXPECT_EQ(loopStats.spatialJoins, 0u) << sql;
  EXPECT_EQ(zoneResult->numRows(), loopResult->numRows()) << sql;
  EXPECT_EQ(zoneResult->numColumns(), loopResult->numColumns()) << sql;
  if (zoneResult->numRows() == loopResult->numRows() &&
      zoneResult->numColumns() == loopResult->numColumns()) {
    for (std::size_t r = 0; r < zoneResult->numRows(); ++r) {
      for (std::size_t c = 0; c < zoneResult->numColumns(); ++c) {
        if (zoneResult->cell(r, c) != loopResult->cell(r, c)) {
          ADD_FAILURE() << sql << ": cell mismatch at " << r << "," << c;
          return zoneStats;  // first divergence is enough
        }
      }
    }
  }
  return zoneStats;
}

TEST(SpatialJoin, QservAngSepTakesZonePath) {
  Database db;
  auto t = std::make_shared<Table>("Obj", objectSchema());
  appendPoint(*t, 1, Value(10.0), Value(20.0));
  appendPoint(*t, 2, Value(10.005), Value(20.005));
  appendPoint(*t, 3, Value(50.0), Value(-30.0));
  ASSERT_TRUE(db.registerTable(t).isOk());

  ExecStats stats = expectParity(
      db,
      "SELECT a.id, b.id FROM Obj a, Obj b "
      "WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) < 0.1 AND a.id < b.id "
      "ORDER BY a.id, b.id");
  EXPECT_EQ(stats.spatialJoins, 1u);
  EXPECT_GT(stats.zoneJoinZonesBuilt, 0u);
}

TEST(SpatialJoin, ScisqlAliasTakesZonePath) {
  Database db;
  auto t = std::make_shared<Table>("Obj", objectSchema());
  for (int i = 0; i < 16; ++i) {
    appendPoint(*t, i, Value(100.0 + 0.01 * i), Value(5.0 + 0.01 * i));
  }
  ASSERT_TRUE(db.registerTable(t).isOk());

  ExecStats stats = expectParity(
      db,
      "SELECT COUNT(*) FROM Obj a, Obj b "
      "WHERE scisql_angSep(a.ra, a.decl, b.ra, b.decl) < 0.02");
  EXPECT_EQ(stats.spatialJoins, 1u)
      << "scisql_angSep alias must reach the zone path";
}

TEST(SpatialJoin, MirroredAndInclusiveComparisons) {
  Database db;
  auto t = std::make_shared<Table>("Obj", objectSchema());
  appendPoint(*t, 1, Value(0.0), Value(0.0));
  appendPoint(*t, 2, Value(0.25), Value(0.0));  // exactly 0.25 deg apart
  ASSERT_TRUE(db.registerTable(t).isOk());

  // r > angSep(...) is the same predicate with the call on the right.
  ExecStats stats = expectParity(
      db,
      "SELECT a.id, b.id FROM Obj a, Obj b "
      "WHERE 0.3 > qserv_angSep(a.ra, a.decl, b.ra, b.decl) "
      "ORDER BY a.id, b.id");
  EXPECT_EQ(stats.spatialJoins, 1u);

  // <= at the exact boundary distance: inclusive keeps the pair, strict
  // drops it, and both must agree with the nested loop bit for bit.
  stats = expectParity(db,
                       "SELECT COUNT(*) FROM Obj a, Obj b "
                       "WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) "
                       "<= 0.25");
  EXPECT_EQ(stats.spatialJoins, 1u);
  stats = expectParity(db,
                       "SELECT COUNT(*) FROM Obj a, Obj b "
                       "WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) "
                       "< 0.25");
  EXPECT_EQ(stats.spatialJoins, 1u);
}

TEST(SpatialJoin, AntiJoinShapeStaysOnNestedLoop) {
  Database db;
  auto t = std::make_shared<Table>("Obj", objectSchema());
  appendPoint(*t, 1, Value(10.0), Value(10.0));
  appendPoint(*t, 2, Value(11.0), Value(11.0));
  ASSERT_TRUE(db.registerTable(t).isOk());

  // angSep > r selects *distant* pairs — a zone index cannot serve it.
  ExecStats stats;
  auto r = db.execute(
      "SELECT COUNT(*) FROM Obj a, Obj b "
      "WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) > 0.5",
      &stats);
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(stats.spatialJoins, 0u);
  EXPECT_EQ((*r)->cell(0, 0).asInt(), 2);
}

TEST(SpatialJoin, RaWraparoundAtZero) {
  Database db;
  auto t = std::make_shared<Table>("Obj", objectSchema());
  // Pairs straddling the 0/360 seam, plus decoys mid-sky. 359.95 and 0.03
  // are 0.08 deg apart; a window that fails to wrap would miss them.
  appendPoint(*t, 1, Value(359.95), Value(12.0));
  appendPoint(*t, 2, Value(0.03), Value(12.0));
  appendPoint(*t, 3, Value(359.99), Value(12.05));
  appendPoint(*t, 4, Value(0.005), Value(11.96));
  appendPoint(*t, 5, Value(180.0), Value(12.0));
  // Same sky positions expressed outside [0, 360): the residual must see
  // the original values while the index normalizes for bucketing.
  appendPoint(*t, 6, Value(-0.05), Value(12.0));
  appendPoint(*t, 7, Value(360.02), Value(12.01));
  ASSERT_TRUE(db.registerTable(t).isOk());

  ExecStats stats = expectParity(
      db,
      "SELECT a.id, b.id FROM Obj a, Obj b "
      "WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) < 0.1 AND a.id < b.id "
      "ORDER BY a.id, b.id");
  EXPECT_EQ(stats.spatialJoins, 1u);

  ZoneToggle on(true);
  auto r = db.execute(
      "SELECT COUNT(*) FROM Obj a, Obj b "
      "WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) < 0.1 AND a.id < b.id");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  // {1,2,3,4,6,7} are mutually within 0.1 deg -> C(6,2) pairs; 5 is alone.
  EXPECT_EQ((*r)->cell(0, 0).asInt(), 15);
}

TEST(SpatialJoin, PolarCapCosDecVanishes) {
  Database db;
  auto t = std::make_shared<Table>("Obj", objectSchema());
  // Near the pole every RA is close to every other RA: points 180 deg
  // apart in RA at dec 89.98 are ~0.04 deg apart on the sphere. A naive
  // r/cos(dec) window overflows here; the clamp must widen to all RA.
  appendPoint(*t, 1, Value(10.0), Value(89.98));
  appendPoint(*t, 2, Value(190.0), Value(89.98));
  appendPoint(*t, 3, Value(300.0), Value(89.99));
  appendPoint(*t, 4, Value(45.0), Value(-89.99));
  appendPoint(*t, 5, Value(225.0), Value(-89.985));
  appendPoint(*t, 6, Value(45.0), Value(0.0));
  ASSERT_TRUE(db.registerTable(t).isOk());

  ExecStats stats = expectParity(
      db,
      "SELECT a.id, b.id FROM Obj a, Obj b "
      "WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) < 0.1 AND a.id < b.id "
      "ORDER BY a.id, b.id");
  EXPECT_EQ(stats.spatialJoins, 1u);

  ZoneToggle on(true);
  auto r = db.execute(
      "SELECT COUNT(*) FROM Obj a, Obj b "
      "WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) < 0.1 AND a.id < b.id");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  // {1,2,3} cluster at the north pole, {4,5} at the south: 3 + 1 pairs.
  EXPECT_EQ((*r)->cell(0, 0).asInt(), 4);
}

TEST(SpatialJoin, NullCoordinatesNeverJoin) {
  Database db;
  auto t = std::make_shared<Table>("Obj", objectSchema());
  appendPoint(*t, 1, Value(10.0), Value(20.0));
  appendPoint(*t, 2, Value(10.001), Value(20.001));
  appendPoint(*t, 3, Value::null(), Value(20.0));   // NULL ra
  appendPoint(*t, 4, Value(10.0), Value::null());   // NULL dec
  appendPoint(*t, 5, Value::null(), Value::null());
  ASSERT_TRUE(db.registerTable(t).isOk());

  ExecStats stats = expectParity(
      db,
      "SELECT a.id, b.id FROM Obj a, Obj b "
      "WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) < 0.1 "
      "ORDER BY a.id, b.id");
  EXPECT_EQ(stats.spatialJoins, 1u);

  // NULL coordinates compare as SQL NULL in angSep, which is never < r —
  // same convention as the hash-join path. Only 1 and 2 pair up (plus the
  // two self-pairs).
  ZoneToggle on(true);
  auto r = db.execute(
      "SELECT COUNT(*) FROM Obj a, Obj b "
      "WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) < 0.1");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ((*r)->cell(0, 0).asInt(), 4);
}

TEST(SpatialJoin, ThreeWayJoinZonesTheOuterPair) {
  Database db;
  auto obj = std::make_shared<Table>("Obj", objectSchema());
  appendPoint(*obj, 1, Value(10.0), Value(20.0));
  appendPoint(*obj, 2, Value(10.004), Value(20.004));
  appendPoint(*obj, 3, Value(90.0), Value(20.0));
  ASSERT_TRUE(db.registerTable(obj).isOk());
  auto src = std::make_shared<Table>(
      "Src", Schema({{"objId", ColumnType::kInt},
                     {"flux", ColumnType::kDouble}}));
  appendRow2(*src, Value(1), Value(1.5));
  appendRow2(*src, Value(2), Value(2.5));
  appendRow2(*src, Value(2), Value(3.5));
  ASSERT_TRUE(db.registerTable(src).isOk());

  // The spatial conjunct binds (a, b); the Src equi-join rides along as a
  // later stage. Zone detection must pick the pair whose inner table is
  // exactly the stage table.
  ExecStats stats = expectParity(
      db,
      "SELECT a.id, b.id, s.flux FROM Obj a, Obj b, Src s "
      "WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) < 0.05 "
      "AND s.objId = b.id AND a.id < b.id "
      "ORDER BY a.id, b.id, s.flux");
  EXPECT_EQ(stats.spatialJoins, 1u);
}

TEST(SpatialJoin, RandomizedParitySweep) {
  // >= 10k rows spread over a dense strip plus the 0/360 seam and both
  // poles, so every windowing branch sees traffic. Bit-identical parity
  // with the nested loop, including emission order.
  util::Rng rng(0x5ca1ab1eULL);
  Database db;
  auto t = std::make_shared<Table>("Obj", objectSchema());
  std::int64_t id = 0;
  for (int i = 0; i < 9000; ++i) {  // dense equatorial strip
    appendPoint(*t, id++, Value(rng.uniform(30.0, 32.0)),
                Value(rng.uniform(-1.0, 1.0)));
  }
  for (int i = 0; i < 600; ++i) {  // seam strip
    double ra = rng.uniform(-0.15, 0.15);
    if (ra < 0 && rng.below(2) == 0) ra += 360.0;
    appendPoint(*t, id++, Value(ra), Value(rng.uniform(-1.0, 1.0)));
  }
  for (int i = 0; i < 300; ++i) {  // polar caps
    double dec = rng.uniform(89.9, 90.0);
    if (rng.below(2) == 0) dec = -dec;
    appendPoint(*t, id++, Value(rng.uniform(0.0, 360.0)), Value(dec));
  }
  for (int i = 0; i < 200; ++i) {  // sprinkle NULLs
    appendPoint(*t, id++,
                rng.below(2) == 0 ? Value::null()
                                  : Value(rng.uniform(0.0, 360.0)),
                rng.below(3) == 0 ? Value::null()
                                  : Value(rng.uniform(-90.0, 90.0)));
  }
  ASSERT_EQ(t->numRows(), 10100u);
  ASSERT_TRUE(db.registerTable(t).isOk());

  for (double radius : {0.01, 0.05}) {
    ExecStats stats = expectParity(
        db, util::format("SELECT a.id, b.id FROM Obj a, Obj b "
                         "WHERE qserv_angSep(a.ra, a.decl, b.ra, b.decl) "
                         "< %g AND a.id < b.id ORDER BY a.id, b.id",
                         radius));
    EXPECT_EQ(stats.spatialJoins, 1u);
    // The window must prune the overwhelming majority of the 10100^2
    // cross product or the zone path is not doing its job.
    EXPECT_LT(stats.zoneJoinCandidates, stats.zoneJoinPairsPruned / 50);
  }
}

}  // namespace
}  // namespace qserv::sql
