#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace qserv::sql {
namespace {

std::vector<Token> lex(std::string_view s) {
  auto r = tokenize(s);
  EXPECT_TRUE(r.isOk()) << r.status().toString();
  return std::move(r).value();
}

TEST(Lexer, EmptyInput) {
  auto t = lex("");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].type, TokenType::kEnd);
}

TEST(Lexer, IdentifiersAndKeywords) {
  auto t = lex("SELECT objectId FROM Object_123");
  ASSERT_EQ(t.size(), 5u);
  EXPECT_TRUE(t[0].is("select"));
  EXPECT_EQ(t[1].text, "objectId");
  EXPECT_TRUE(t[2].is("FROM"));
  EXPECT_EQ(t[3].text, "Object_123");
}

TEST(Lexer, QuotedIdentifiers) {
  auto t = lex("SELECT `SUM(uFlux_SG)` FROM x");
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_EQ(t[1].text, "SUM(uFlux_SG)");
}

TEST(Lexer, Numbers) {
  auto t = lex("1 2.5 .5 1e3 2.5e-2 0.176");
  EXPECT_EQ(t[0].type, TokenType::kInt);
  EXPECT_EQ(t[0].intValue, 1);
  EXPECT_EQ(t[1].type, TokenType::kDouble);
  EXPECT_DOUBLE_EQ(t[1].doubleValue, 2.5);
  EXPECT_DOUBLE_EQ(t[2].doubleValue, 0.5);
  EXPECT_DOUBLE_EQ(t[3].doubleValue, 1000.0);
  EXPECT_DOUBLE_EQ(t[4].doubleValue, 0.025);
  EXPECT_DOUBLE_EQ(t[5].doubleValue, 0.176);
}

TEST(Lexer, HugeIntegerDegradesToDouble) {
  auto t = lex("99999999999999999999999");
  EXPECT_EQ(t[0].type, TokenType::kDouble);
}

TEST(Lexer, NegativeNumberIsMinusThenNumber) {
  auto t = lex("-5");
  EXPECT_EQ(t[0].type, TokenType::kMinus);
  EXPECT_EQ(t[1].type, TokenType::kInt);
}

TEST(Lexer, StringsWithEscapes) {
  auto t = lex("'hello' 'it''s' 'a\\'b'");
  EXPECT_EQ(t[0].text, "hello");
  EXPECT_EQ(t[1].text, "it's");
  EXPECT_EQ(t[2].text, "a'b");
}

TEST(Lexer, Operators) {
  auto t = lex("= != <> < <= > >= + - * / %");
  EXPECT_EQ(t[0].type, TokenType::kEq);
  EXPECT_EQ(t[1].type, TokenType::kNe);
  EXPECT_EQ(t[2].type, TokenType::kNe);
  EXPECT_EQ(t[3].type, TokenType::kLt);
  EXPECT_EQ(t[4].type, TokenType::kLe);
  EXPECT_EQ(t[5].type, TokenType::kGt);
  EXPECT_EQ(t[6].type, TokenType::kGe);
  EXPECT_EQ(t[7].type, TokenType::kPlus);
  EXPECT_EQ(t[8].type, TokenType::kMinus);
  EXPECT_EQ(t[9].type, TokenType::kStar);
  EXPECT_EQ(t[10].type, TokenType::kSlash);
  EXPECT_EQ(t[11].type, TokenType::kPercent);
}

TEST(Lexer, CommentsAreSkipped) {
  auto t = lex("SELECT 1 -- trailing comment\n , 2 /* block */ , 3");
  // SELECT 1 , 2 , 3 END
  ASSERT_EQ(t.size(), 7u);
  EXPECT_EQ(t[1].intValue, 1);
  EXPECT_EQ(t[3].intValue, 2);
  EXPECT_EQ(t[5].intValue, 3);
}

TEST(Lexer, SubchunksHeaderIsComment) {
  auto t = lex("-- SUBCHUNKS: 1, 2, 3\nSELECT 1");
  EXPECT_TRUE(t[0].is("SELECT"));
}

TEST(Lexer, Punctuation) {
  auto t = lex("f(a, b.c);");
  EXPECT_EQ(t[0].text, "f");
  EXPECT_EQ(t[1].type, TokenType::kLParen);
  EXPECT_EQ(t[3].type, TokenType::kComma);
  EXPECT_EQ(t[5].type, TokenType::kDot);
  EXPECT_EQ(t[7].type, TokenType::kRParen);
  EXPECT_EQ(t[8].type, TokenType::kSemicolon);
}

TEST(Lexer, ErrorOnUnterminatedString) {
  EXPECT_FALSE(tokenize("SELECT 'oops").isOk());
}

TEST(Lexer, ErrorOnUnterminatedQuote) {
  EXPECT_FALSE(tokenize("SELECT `oops").isOk());
}

TEST(Lexer, ErrorOnUnterminatedBlockComment) {
  EXPECT_FALSE(tokenize("SELECT 1 /* oops").isOk());
}

TEST(Lexer, ErrorOnStrayCharacter) {
  EXPECT_FALSE(tokenize("SELECT #").isOk());
  EXPECT_FALSE(tokenize("SELECT a ! b").isOk());
}

TEST(Lexer, OffsetsPointIntoInput) {
  auto t = lex("SELECT x");
  EXPECT_EQ(t[0].offset, 0u);
  EXPECT_EQ(t[1].offset, 7u);
}

}  // namespace
}  // namespace qserv::sql
