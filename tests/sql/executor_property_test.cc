/// Property-based differential tests for the SQL executor: randomized
/// predicates run through different execution paths (index probe vs full
/// scan, count vs materialize, grouped vs global, dump/replay) must agree.
#include <gtest/gtest.h>

#include "sql/dump.h"
#include "sql/executor.h"
#include "util/rng.h"
#include "util/strings.h"

namespace qserv::sql {
namespace {

/// Builds two identical databases, one with indexes and one without.
class ExecutorProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Schema schema({{"id", ColumnType::kInt},
                   {"k", ColumnType::kInt},
                   {"x", ColumnType::kDouble},
                   {"y", ColumnType::kDouble}});
    auto a = std::make_shared<Table>("T", schema);
    auto b = std::make_shared<Table>("T", schema);
    util::Rng rng(GetParam());
    const int rows = 400;
    for (int i = 0; i < rows; ++i) {
      std::vector<Value> row(4);
      row[0] = Value(i);
      row[1] = Value(static_cast<std::int64_t>(rng.below(7)));
      row[2] = rng.below(20) == 0 ? Value::null()
                                  : Value(rng.uniform(-100.0, 100.0));
      row[3] = Value(rng.uniform(0.0, 1.0));
      ASSERT_TRUE(a->appendRow(row).isOk());
      ASSERT_TRUE(b->appendRow(row).isOk());
    }
    ASSERT_TRUE(indexed_.registerTable(a).isOk());
    ASSERT_TRUE(plain_.registerTable(b).isOk());
    ASSERT_TRUE(indexed_.createIndex("T", "id").isOk());
    ASSERT_TRUE(indexed_.createIndex("T", "k").isOk());
  }

  /// Run on both databases and require identical results (same row
  /// multiset in the same order for deterministic queries).
  void expectSame(const std::string& sql) {
    ExecStats si, sp;
    auto ri = indexed_.execute(sql, &si);
    auto rp = plain_.execute(sql, &sp);
    ASSERT_TRUE(ri.isOk()) << ri.status().toString() << " for " << sql;
    ASSERT_TRUE(rp.isOk()) << rp.status().toString() << " for " << sql;
    ASSERT_EQ((*ri)->numRows(), (*rp)->numRows()) << sql;
    ASSERT_EQ((*ri)->numColumns(), (*rp)->numColumns()) << sql;
    for (std::size_t r = 0; r < (*ri)->numRows(); ++r) {
      for (std::size_t c = 0; c < (*ri)->numColumns(); ++c) {
        ASSERT_EQ((*ri)->cell(r, c), (*rp)->cell(r, c))
            << sql << " at " << r << "," << c;
      }
    }
  }

  Database indexed_{"indexed"};
  Database plain_{"plain"};
};

TEST_P(ExecutorProperty, IndexAndScanPathsAgree) {
  util::Rng rng(GetParam() * 31 + 1);
  for (int trial = 0; trial < 12; ++trial) {
    std::int64_t v = rng.range(-10, 410);
    expectSame(util::format("SELECT * FROM T WHERE id = %lld ORDER BY id",
                            static_cast<long long>(v)));
    expectSame(util::format(
        "SELECT * FROM T WHERE id BETWEEN %lld AND %lld ORDER BY id",
        static_cast<long long>(v), static_cast<long long>(v + 25)));
    expectSame(util::format(
        "SELECT COUNT(*) FROM T WHERE id IN (%lld, %lld, %lld)",
        static_cast<long long>(v), static_cast<long long>(v + 3),
        static_cast<long long>(rng.range(0, 399))));
    expectSame(util::format("SELECT COUNT(*), SUM(x) FROM T WHERE k = %llu",
                            static_cast<unsigned long long>(rng.below(9))));
  }
}

TEST_P(ExecutorProperty, CountStarEqualsMaterializedRowCount) {
  util::Rng rng(GetParam() * 31 + 2);
  for (int trial = 0; trial < 8; ++trial) {
    double cut = rng.uniform(-120.0, 120.0);
    std::string where = util::format("x > %.17g AND y < %.17g", cut,
                                     rng.uniform(0.0, 1.0));
    auto count =
        indexed_.execute("SELECT COUNT(*) FROM T WHERE " + where);
    auto rows = indexed_.execute("SELECT id FROM T WHERE " + where);
    ASSERT_TRUE(count.isOk() && rows.isOk());
    EXPECT_EQ((*count)->cell(0, 0).asInt(),
              static_cast<std::int64_t>((*rows)->numRows()));
  }
}

TEST_P(ExecutorProperty, GroupSumsEqualGlobalSum) {
  auto grouped = indexed_.execute(
      "SELECT k, SUM(y), COUNT(*) FROM T GROUP BY k");
  auto global = indexed_.execute("SELECT SUM(y), COUNT(*) FROM T");
  ASSERT_TRUE(grouped.isOk() && global.isOk());
  double sum = 0;
  std::int64_t n = 0;
  for (std::size_t r = 0; r < (*grouped)->numRows(); ++r) {
    sum += (*grouped)->cell(r, 1).asDouble();
    n += (*grouped)->cell(r, 2).asInt();
  }
  EXPECT_NEAR(sum, (*global)->cell(0, 0).asDouble(), 1e-9);
  EXPECT_EQ(n, (*global)->cell(0, 1).asInt());
}

TEST_P(ExecutorProperty, OrderByIsSortedAndLimitIsPrefix) {
  auto full = indexed_.execute("SELECT id, x FROM T ORDER BY x DESC, id");
  auto top = indexed_.execute("SELECT id, x FROM T ORDER BY x DESC, id LIMIT 10");
  ASSERT_TRUE(full.isOk() && top.isOk());
  // Sorted (NULLs first ascending => last in DESC order per compare()).
  for (std::size_t r = 1; r < (*full)->numRows(); ++r) {
    int c = (*full)->cell(r - 1, 1).compare((*full)->cell(r, 1));
    EXPECT_GE(c, 0) << "row " << r;
  }
  ASSERT_EQ((*top)->numRows(), 10u);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_EQ((*top)->cell(r, 0), (*full)->cell(r, 0));
  }
}

TEST_P(ExecutorProperty, DumpReplayPreservesQueryResults) {
  auto result = indexed_.execute(
      "SELECT k, COUNT(*) AS n, SUM(y) AS s FROM T GROUP BY k ORDER BY k");
  ASSERT_TRUE(result.isOk());
  Database fresh;
  auto loaded = loadDump(fresh, dumpTable(**result, "replayed"));
  ASSERT_TRUE(loaded.isOk());
  // Aggregations over the replayed table equal direct recomputation.
  auto viaReplay = fresh.execute("SELECT SUM(n), SUM(s) FROM replayed");
  auto direct = indexed_.execute("SELECT COUNT(*), SUM(y) FROM T");
  ASSERT_TRUE(viaReplay.isOk() && direct.isOk());
  EXPECT_EQ((*viaReplay)->cell(0, 0).asInt(), (*direct)->cell(0, 0).asInt());
  EXPECT_NEAR((*viaReplay)->cell(0, 1).asDouble(),
              (*direct)->cell(0, 1).asDouble(), 1e-9);
}

TEST_P(ExecutorProperty, SelfJoinPairCountSymmetry) {
  // count of (a,b) pairs with a.x < b.x equals pairs with a.x > b.x.
  auto lt = indexed_.execute(
      "SELECT COUNT(*) FROM T a, T b WHERE a.x < b.x");
  auto gt = indexed_.execute(
      "SELECT COUNT(*) FROM T a, T b WHERE a.x > b.x");
  ASSERT_TRUE(lt.isOk() && gt.isOk());
  EXPECT_EQ((*lt)->cell(0, 0).asInt(), (*gt)->cell(0, 0).asInt());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorProperty,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

}  // namespace
}  // namespace qserv::sql
