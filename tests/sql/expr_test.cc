#include "sql/expr_eval.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sql/parser.h"

namespace qserv::sql {
namespace {

/// Evaluate a constant expression through parse + bind + eval.
Value evalConst(std::string_view sql) {
  auto expr = parseExpression(sql);
  EXPECT_TRUE(expr.isOk()) << expr.status().toString() << " for: " << sql;
  auto v = evalConstExpr(**expr, FunctionRegistry::builtins());
  EXPECT_TRUE(v.isOk()) << v.status().toString() << " for: " << sql;
  return std::move(v).value();
}

TEST(ExprEval, Arithmetic) {
  EXPECT_EQ(evalConst("1 + 2").asInt(), 3);
  EXPECT_EQ(evalConst("7 - 10").asInt(), -3);
  EXPECT_EQ(evalConst("6 * 7").asInt(), 42);
  EXPECT_DOUBLE_EQ(evalConst("1 + 2.5").asDouble(), 3.5);
  EXPECT_DOUBLE_EQ(evalConst("7 / 2").asDouble(), 3.5);  // / is always real
  EXPECT_EQ(evalConst("7 % 3").asInt(), 1);
  EXPECT_DOUBLE_EQ(evalConst("7.5 % 2").asDouble(), 1.5);
}

TEST(ExprEval, DivisionByZeroIsNull) {
  EXPECT_TRUE(evalConst("1 / 0").isNull());
  EXPECT_TRUE(evalConst("1 % 0").isNull());
  EXPECT_TRUE(evalConst("1.0 / 0.0").isNull());
}

TEST(ExprEval, NullPropagation) {
  EXPECT_TRUE(evalConst("NULL + 1").isNull());
  EXPECT_TRUE(evalConst("NULL = NULL").isNull());
  EXPECT_TRUE(evalConst("1 < NULL").isNull());
  EXPECT_TRUE(evalConst("-(NULL)").isNull());
}

TEST(ExprEval, ThreeValuedLogic) {
  // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
  EXPECT_EQ(evalConst("0 AND NULL").asInt(), 0);
  EXPECT_TRUE(evalConst("1 AND NULL").isNull());
  // TRUE OR NULL = TRUE; FALSE OR NULL = NULL.
  EXPECT_EQ(evalConst("1 OR NULL").asInt(), 1);
  EXPECT_TRUE(evalConst("0 OR NULL").isNull());
  // NOT NULL = NULL.
  EXPECT_TRUE(evalConst("NOT NULL").isNull());
  EXPECT_EQ(evalConst("NOT 0").asInt(), 1);
  EXPECT_EQ(evalConst("NOT 3").asInt(), 0);
}

TEST(ExprEval, Comparisons) {
  EXPECT_EQ(evalConst("1 < 2").asInt(), 1);
  EXPECT_EQ(evalConst("2 <= 2").asInt(), 1);
  EXPECT_EQ(evalConst("3 != 3").asInt(), 0);
  EXPECT_EQ(evalConst("2 = 2.0").asInt(), 1);
  EXPECT_EQ(evalConst("'abc' < 'abd'").asInt(), 1);
}

TEST(ExprEval, Between) {
  EXPECT_EQ(evalConst("2 BETWEEN 1 AND 3").asInt(), 1);
  EXPECT_EQ(evalConst("1 BETWEEN 1 AND 3").asInt(), 1);  // inclusive
  EXPECT_EQ(evalConst("0 BETWEEN 1 AND 3").asInt(), 0);
  EXPECT_EQ(evalConst("0 NOT BETWEEN 1 AND 3").asInt(), 1);
  EXPECT_TRUE(evalConst("NULL BETWEEN 1 AND 3").isNull());
}

TEST(ExprEval, In) {
  EXPECT_EQ(evalConst("2 IN (1, 2, 3)").asInt(), 1);
  EXPECT_EQ(evalConst("5 IN (1, 2, 3)").asInt(), 0);
  EXPECT_EQ(evalConst("5 NOT IN (1, 2, 3)").asInt(), 1);
  EXPECT_TRUE(evalConst("NULL IN (1, 2)").isNull());
  // No match but a NULL in the list -> NULL (SQL semantics).
  EXPECT_TRUE(evalConst("5 IN (1, NULL)").isNull());
  EXPECT_EQ(evalConst("1 IN (1, NULL)").asInt(), 1);
}

TEST(ExprEval, IsNull) {
  EXPECT_EQ(evalConst("NULL IS NULL").asInt(), 1);
  EXPECT_EQ(evalConst("1 IS NULL").asInt(), 0);
  EXPECT_EQ(evalConst("1 IS NOT NULL").asInt(), 1);
}

TEST(ExprEval, MathFunctions) {
  EXPECT_DOUBLE_EQ(evalConst("abs(-2.5)").asDouble(), 2.5);
  EXPECT_DOUBLE_EQ(evalConst("sqrt(16)").asDouble(), 4.0);
  EXPECT_DOUBLE_EQ(evalConst("log10(1000)").asDouble(), 3.0);
  EXPECT_DOUBLE_EQ(evalConst("pow(2, 10)").asDouble(), 1024.0);
  EXPECT_DOUBLE_EQ(evalConst("floor(2.7)").asDouble(), 2.0);
  EXPECT_DOUBLE_EQ(evalConst("ceil(2.1)").asDouble(), 3.0);
  EXPECT_EQ(evalConst("greatest(1, 5, 3)").asInt(), 5);
  EXPECT_EQ(evalConst("least(1, 5, 3)").asInt(), 1);
}

TEST(ExprEval, DomainErrorsYieldNull) {
  EXPECT_TRUE(evalConst("sqrt(-1)").isNull());
  EXPECT_TRUE(evalConst("log10(0)").isNull());
  EXPECT_TRUE(evalConst("log10(-5)").isNull());
}

TEST(ExprEval, FluxToAbMag) {
  // m = -2.5 log10(f) - 48.6. A flux of 10^(-((20)+48.6)/2.5) has mag 20.
  double f = std::pow(10.0, -(20.0 + 48.6) / 2.5);
  auto expr = parseExpression("fluxToAbMag(x)");
  ASSERT_TRUE(expr.isOk());
  // Constant-fold through a literal instead: build the SQL directly.
  Value v = evalConst("fluxToAbMag(" + Value(f).toSqlLiteral() + ")");
  EXPECT_NEAR(v.asDouble(), 20.0, 1e-9);
  EXPECT_TRUE(evalConst("fluxToAbMag(0)").isNull());
  EXPECT_TRUE(evalConst("fluxToAbMag(-1)").isNull());
  EXPECT_TRUE(evalConst("fluxToAbMag(NULL)").isNull());
}

TEST(ExprEval, QservAngSep) {
  EXPECT_NEAR(evalConst("qserv_angSep(10, 0, 25, 0)").asDouble(), 15.0, 1e-9);
  EXPECT_NEAR(evalConst("qserv_angSep(0, -5, 0, 5)").asDouble(), 10.0, 1e-9);
  EXPECT_TRUE(evalConst("qserv_angSep(0, 0, NULL, 0)").isNull());
  // scisql alias.
  EXPECT_NEAR(evalConst("scisql_angSep(10, 0, 25, 0)").asDouble(), 15.0, 1e-9);
}

TEST(ExprEval, QservPtInSphericalBox) {
  EXPECT_EQ(evalConst("qserv_ptInSphericalBox(5, 5, 0, 0, 10, 10)").asInt(), 1);
  EXPECT_EQ(evalConst("qserv_ptInSphericalBox(15, 5, 0, 0, 10, 10)").asInt(), 0);
  // Wrapping box (PT1.1 patch shape).
  EXPECT_EQ(evalConst("qserv_ptInSphericalBox(359, 0, 358, -7, 5, 7)").asInt(), 1);
  EXPECT_EQ(evalConst("qserv_ptInSphericalBox(180, 0, 358, -7, 5, 7)").asInt(), 0);
}

TEST(ExprEval, AreaspecBoxIsNotAWorkerFunction) {
  // qserv_areaspec_box must be rewritten by the frontend; binding it on a
  // worker fails loudly.
  auto expr = parseExpression("qserv_areaspec_box(0, 0, 10, 10)");
  ASSERT_TRUE(expr.isOk());
  auto v = evalConstExpr(**expr, FunctionRegistry::builtins());
  EXPECT_FALSE(v.isOk());
  EXPECT_EQ(v.status().code(), util::ErrorCode::kNotFound);
}

TEST(ExprEval, UnknownFunctionAndArity) {
  auto e1 = parseExpression("nosuchfn(1)");
  ASSERT_TRUE(e1.isOk());
  EXPECT_FALSE(evalConstExpr(**e1, FunctionRegistry::builtins()).isOk());
  auto e2 = parseExpression("sqrt(1, 2)");
  ASSERT_TRUE(e2.isOk());
  EXPECT_FALSE(evalConstExpr(**e2, FunctionRegistry::builtins()).isOk());
}

TEST(ExprEval, ColumnBindingAgainstTable) {
  Schema schema({{"id", ColumnType::kInt}, {"ra", ColumnType::kDouble}});
  Table t("t", schema);
  ASSERT_TRUE(t.appendRow(std::vector<Value>{Value(7), Value(1.5)}).isOk());
  ASSERT_TRUE(t.appendRow(std::vector<Value>{Value(8), Value::null()}).isOk());

  ScopeTable scope[] = {{"t", &t}};
  auto expr = parseExpression("ra * 2 + id");
  ASSERT_TRUE(expr.isOk());
  auto compiled = bindExpr(**expr, scope, FunctionRegistry::builtins());
  ASSERT_TRUE(compiled.isOk()) << compiled.status().toString();

  const Table* tables[] = {&t};
  std::size_t rows[] = {0};
  EvalCtx ctx{tables, rows, {}};
  EXPECT_DOUBLE_EQ((*compiled)->eval(ctx).asDouble(), 10.0);
  rows[0] = 1;
  EXPECT_TRUE((*compiled)->eval(ctx).isNull());  // NULL ra propagates
}

TEST(ExprEval, UnknownAndAmbiguousColumns) {
  Schema schema({{"x", ColumnType::kInt}});
  Table a("a", schema), b("b", schema);
  ScopeTable scope[] = {{"a", &a}, {"b", &b}};

  auto unknown = parseExpression("nothere");
  ASSERT_TRUE(unknown.isOk());
  EXPECT_EQ(bindExpr(**unknown, scope, FunctionRegistry::builtins())
                .status().code(),
            util::ErrorCode::kNotFound);

  auto ambiguous = parseExpression("x + 1");
  ASSERT_TRUE(ambiguous.isOk());
  EXPECT_EQ(bindExpr(**ambiguous, scope, FunctionRegistry::builtins())
                .status().code(),
            util::ErrorCode::kInvalidArgument);

  auto qualified = parseExpression("a.x + b.x");
  ASSERT_TRUE(qualified.isOk());
  EXPECT_TRUE(bindExpr(**qualified, scope, FunctionRegistry::builtins()).isOk());
}

TEST(ExprEval, AggregateRejectedOutsideExecutor) {
  auto e = parseExpression("SUM(x)");
  ASSERT_TRUE(e.isOk());
  EXPECT_FALSE(evalConstExpr(**e, FunctionRegistry::builtins()).isOk());
}

TEST(ExprEval, DoubleNegation) {
  EXPECT_EQ(evalConst("- -5").asInt(), 5);
  EXPECT_DOUBLE_EQ(evalConst("-(-2.5)").asDouble(), 2.5);
}

}  // namespace
}  // namespace qserv::sql
