#include "sql/value.h"

#include <gtest/gtest.h>

namespace qserv::sql {
namespace {

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value().isNull());
  EXPECT_TRUE(Value(42).isInt());
  EXPECT_EQ(Value(42).asInt(), 42);
  EXPECT_TRUE(Value(1.5).isDouble());
  EXPECT_DOUBLE_EQ(Value(1.5).asDouble(), 1.5);
  EXPECT_TRUE(Value("x").isString());
  EXPECT_EQ(Value("x").asString(), "x");
  EXPECT_TRUE(Value(42).isNumeric());
  EXPECT_TRUE(Value(1.5).isNumeric());
  EXPECT_FALSE(Value("x").isNumeric());
}

TEST(Value, Truthiness) {
  EXPECT_TRUE(Value(1).isTrue());
  EXPECT_TRUE(Value(-3).isTrue());
  EXPECT_FALSE(Value(0).isTrue());
  EXPECT_TRUE(Value(0.1).isTrue());
  EXPECT_FALSE(Value(0.0).isTrue());
  EXPECT_FALSE(Value().isTrue());
  EXPECT_FALSE(Value("yes").isTrue());
}

TEST(Value, CompareNumericCrossType) {
  EXPECT_EQ(Value(2).compare(Value(2.0)), 0);
  EXPECT_LT(Value(2).compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.5).compare(Value(3)), 0);
}

TEST(Value, CompareLargeIntsExactly) {
  // Values above 2^53 lose precision as doubles; int-int comparison must
  // stay exact (objectIds are large int64s).
  std::int64_t a = (1LL << 60) + 1;
  std::int64_t b = (1LL << 60) + 2;
  EXPECT_LT(Value(a).compare(Value(b)), 0);
  EXPECT_GT(Value(b).compare(Value(a)), 0);
  EXPECT_EQ(Value(a).compare(Value(a)), 0);
}

TEST(Value, CompareStrings) {
  EXPECT_LT(Value("abc").compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc").compare(Value("abc")), 0);
}

TEST(Value, NullSortsFirst) {
  EXPECT_LT(Value().compare(Value(-1000)), 0);
  EXPECT_LT(Value().compare(Value("")), 0);
  EXPECT_EQ(Value().compare(Value()), 0);
}

TEST(Value, SqlEqualsNullNeverEqual) {
  EXPECT_FALSE(Value().sqlEquals(Value()));
  EXPECT_FALSE(Value(1).sqlEquals(Value()));
  EXPECT_TRUE(Value(2).sqlEquals(Value(2.0)));
}

TEST(Value, SqlLiteralRoundTripForms) {
  EXPECT_EQ(Value().toSqlLiteral(), "NULL");
  EXPECT_EQ(Value(42).toSqlLiteral(), "42");
  EXPECT_EQ(Value(-7).toSqlLiteral(), "-7");
  // Doubles always read back as doubles.
  EXPECT_EQ(Value(2.0).toSqlLiteral(), "2.0");
  EXPECT_EQ(Value("it's").toSqlLiteral(), "'it''s'");
}

TEST(Value, DoubleLiteralRoundTripsExactly) {
  for (double d : {0.1, 1.0 / 3.0, 1e-300, 3.141592653589793, 1e17}) {
    std::string lit = Value(d).toSqlLiteral();
    EXPECT_DOUBLE_EQ(std::stod(lit), d) << lit;
  }
}

TEST(Value, HashConsistentWithSqlEquals) {
  EXPECT_EQ(Value(2).hash(), Value(2.0).hash());
  EXPECT_EQ(Value("abc").hash(), Value("abc").hash());
}

TEST(Value, StructuralEquality) {
  EXPECT_EQ(Value(2), Value(2));
  EXPECT_FALSE(Value(2) == Value(2.0));  // structural, not SQL
  EXPECT_EQ(Value(), Value());
}

}  // namespace
}  // namespace qserv::sql
