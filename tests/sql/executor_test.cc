#include "sql/executor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sql/dump.h"
#include "sql/parser.h"

namespace qserv::sql {
namespace {

/// Build a small Object-like chunk table.
TablePtr makeObjects() {
  Schema schema({{"objectId", ColumnType::kInt},
                 {"ra_PS", ColumnType::kDouble},
                 {"decl_PS", ColumnType::kDouble},
                 {"gFlux_PS", ColumnType::kDouble},
                 {"chunkId", ColumnType::kInt},
                 {"subChunkId", ColumnType::kInt}});
  auto t = std::make_shared<Table>("Object", schema);
  auto add = [&](std::int64_t id, double ra, double dec, double flux,
                 std::int64_t chunk, std::int64_t sub) {
    EXPECT_TRUE(t->appendRow(std::vector<Value>{Value(id), Value(ra),
                                                Value(dec), Value(flux),
                                                Value(chunk), Value(sub)})
                    .isOk());
  };
  add(1, 1.0, 1.0, 1e-28, 10, 0);
  add(2, 1.5, 1.2, 2e-28, 10, 0);
  add(3, 2.0, 1.4, 3e-28, 10, 1);
  add(4, 5.0, 2.0, 4e-28, 11, 0);
  add(5, 5.5, 2.2, 5e-28, 11, 1);
  add(6, 9.0, 3.0, 6e-28, 12, 0);
  return t;
}

TablePtr makeSources() {
  Schema schema({{"sourceId", ColumnType::kInt},
                 {"objectId", ColumnType::kInt},
                 {"ra", ColumnType::kDouble},
                 {"decl", ColumnType::kDouble},
                 {"psfFlux", ColumnType::kDouble},
                 {"taiMidPoint", ColumnType::kDouble}});
  auto t = std::make_shared<Table>("Source", schema);
  std::int64_t sid = 100;
  for (std::int64_t oid : {1, 1, 1, 2, 2, 3, 4, 4, 5, 6, 6, 6}) {
    EXPECT_TRUE(t->appendRow(std::vector<Value>{
                       Value(sid++), Value(oid), Value(1.0 + 0.01 * sid),
                       Value(1.0), Value(1e-28), Value(50000.0 + sid)})
                    .isOk());
  }
  return t;
}

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.registerTable(makeObjects()).isOk());
    ASSERT_TRUE(db_.registerTable(makeSources()).isOk());
  }

  TablePtr run(std::string_view sql) {
    ExecStats stats;
    auto r = db_.execute(sql, &stats);
    EXPECT_TRUE(r.isOk()) << r.status().toString() << " for: " << sql;
    if (!r.isOk()) return nullptr;
    lastStats_ = stats;
    return *r;
  }

  Database db_;
  ExecStats lastStats_;
};

TEST_F(ExecutorTest, SelectStarReturnsAllRowsAndColumns) {
  auto t = run("SELECT * FROM Object");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->numRows(), 6u);
  EXPECT_EQ(t->numColumns(), 6u);
  EXPECT_EQ(t->schema().column(0).name, "objectId");
}

TEST_F(ExecutorTest, PointLookup) {
  auto t = run("SELECT * FROM Object WHERE objectId = 4");
  ASSERT_TRUE(t);
  ASSERT_EQ(t->numRows(), 1u);
  EXPECT_EQ(t->cell(0, 0).asInt(), 4);
  EXPECT_DOUBLE_EQ(t->cell(0, 1).asDouble(), 5.0);
}

TEST_F(ExecutorTest, ProjectionAndAlias) {
  auto t = run("SELECT ra_PS AS ra, decl_PS FROM Object WHERE objectId = 1");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->schema().column(0).name, "ra");
  EXPECT_EQ(t->schema().column(1).name, "decl_PS");
  EXPECT_DOUBLE_EQ(t->cell(0, 0).asDouble(), 1.0);
}

TEST_F(ExecutorTest, ComputedColumns) {
  auto t = run("SELECT objectId * 10 + 1 AS k FROM Object WHERE objectId = 3");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->cell(0, 0).asInt(), 31);
}

TEST_F(ExecutorTest, WhereFiltering) {
  auto t = run("SELECT objectId FROM Object WHERE ra_PS BETWEEN 1 AND 2.5 "
               "AND decl_PS > 1.1");
  ASSERT_TRUE(t);
  ASSERT_EQ(t->numRows(), 2u);
  EXPECT_EQ(t->cell(0, 0).asInt(), 2);
  EXPECT_EQ(t->cell(1, 0).asInt(), 3);
}

TEST_F(ExecutorTest, CountStar) {
  auto t = run("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(t);
  ASSERT_EQ(t->numRows(), 1u);
  EXPECT_EQ(t->cell(0, 0).asInt(), 6);
}

TEST_F(ExecutorTest, CountWithFilter) {
  auto t = run("SELECT COUNT(*) FROM Object WHERE chunkId = 11");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->cell(0, 0).asInt(), 2);
}

TEST_F(ExecutorTest, AggregatesSumAvgMinMax) {
  auto t = run("SELECT SUM(objectId), AVG(objectId), MIN(ra_PS), MAX(ra_PS) "
               "FROM Object");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->cell(0, 0).asInt(), 21);
  EXPECT_DOUBLE_EQ(t->cell(0, 1).asDouble(), 3.5);
  EXPECT_DOUBLE_EQ(t->cell(0, 2).asDouble(), 1.0);
  EXPECT_DOUBLE_EQ(t->cell(0, 3).asDouble(), 9.0);
}

TEST_F(ExecutorTest, AggregateOverEmptyInput) {
  auto t = run("SELECT COUNT(*), SUM(objectId), AVG(ra_PS) FROM Object "
               "WHERE objectId > 1000");
  ASSERT_TRUE(t);
  ASSERT_EQ(t->numRows(), 1u);
  EXPECT_EQ(t->cell(0, 0).asInt(), 0);
  EXPECT_TRUE(t->cell(0, 1).isNull());
  EXPECT_TRUE(t->cell(0, 2).isNull());
}

TEST_F(ExecutorTest, GroupBy) {
  auto t = run("SELECT chunkId, COUNT(*) AS n, AVG(ra_PS) FROM Object "
               "GROUP BY chunkId ORDER BY chunkId");
  ASSERT_TRUE(t);
  ASSERT_EQ(t->numRows(), 3u);
  EXPECT_EQ(t->cell(0, 0).asInt(), 10);
  EXPECT_EQ(t->cell(0, 1).asInt(), 3);
  EXPECT_NEAR(t->cell(0, 2).asDouble(), 1.5, 1e-12);
  EXPECT_EQ(t->cell(2, 0).asInt(), 12);
  EXPECT_EQ(t->cell(2, 1).asInt(), 1);
}

TEST_F(ExecutorTest, HavingFiltersGroups) {
  auto t = run("SELECT chunkId, COUNT(*) AS n FROM Object GROUP BY chunkId "
               "HAVING COUNT(*) > 1 ORDER BY chunkId");
  ASSERT_TRUE(t);
  // chunk 10 has 3 objects, 11 has 2, 12 has 1 -> 12 filtered out.
  ASSERT_EQ(t->numRows(), 2u);
  EXPECT_EQ(t->cell(0, 0).asInt(), 10);
  EXPECT_EQ(t->cell(1, 0).asInt(), 11);
}

TEST_F(ExecutorTest, HavingAggregateNotInSelectList) {
  auto t = run("SELECT chunkId FROM Object GROUP BY chunkId "
               "HAVING MAX(ra_PS) > 4 ORDER BY chunkId");
  ASSERT_TRUE(t);
  // max ra per chunk: 10 -> 2.0, 11 -> 5.5, 12 -> 9.0.
  ASSERT_EQ(t->numRows(), 2u);
  EXPECT_EQ(t->cell(0, 0).asInt(), 11);
  EXPECT_EQ(t->cell(1, 0).asInt(), 12);
}

TEST_F(ExecutorTest, HavingOnGroupKey) {
  auto t = run("SELECT chunkId FROM Object GROUP BY chunkId "
               "HAVING chunkId > 10 ORDER BY chunkId");
  ASSERT_TRUE(t);
  ASSERT_EQ(t->numRows(), 2u);
}

TEST_F(ExecutorTest, GroupByWithoutAggregatesDeduplicates) {
  auto t = run("SELECT chunkId FROM Object GROUP BY chunkId ORDER BY chunkId");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->numRows(), 3u);
}

TEST_F(ExecutorTest, AggregateExpressionOverSlots) {
  // The merger's form: SUM(a)/SUM(b) as one expression.
  auto t = run("SELECT SUM(gFlux_PS) / COUNT(gFlux_PS) AS m, AVG(gFlux_PS) "
               "FROM Object");
  ASSERT_TRUE(t);
  EXPECT_NEAR(t->cell(0, 0).asDouble(), t->cell(0, 1).asDouble(), 1e-40);
}

TEST_F(ExecutorTest, OrderByDescendingAndLimit) {
  auto t = run("SELECT objectId FROM Object ORDER BY objectId DESC LIMIT 3");
  ASSERT_TRUE(t);
  ASSERT_EQ(t->numRows(), 3u);
  EXPECT_EQ(t->cell(0, 0).asInt(), 6);
  EXPECT_EQ(t->cell(2, 0).asInt(), 4);
}

TEST_F(ExecutorTest, OrderByAlias) {
  auto t = run("SELECT chunkId, COUNT(*) AS n FROM Object GROUP BY chunkId "
               "ORDER BY n DESC, chunkId");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->cell(0, 0).asInt(), 10);  // 3 rows
}

TEST_F(ExecutorTest, LimitZero) {
  auto t = run("SELECT * FROM Object LIMIT 0");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->numRows(), 0u);
}

TEST_F(ExecutorTest, EquiJoinObjectSource) {
  auto t = run("SELECT o.objectId, s.sourceId FROM Object o, Source s "
               "WHERE o.objectId = s.objectId ORDER BY s.sourceId");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->numRows(), 12u);  // every source matches an object
}

TEST_F(ExecutorTest, EquiJoinWithPerTableFilter) {
  auto t = run("SELECT o.objectId, s.sourceId FROM Object o, Source s "
               "WHERE o.objectId = s.objectId AND o.chunkId = 10");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->numRows(), 6u);  // objects 1,2,3 have 3+2+1 sources
}

TEST_F(ExecutorTest, JoinOnSyntax) {
  auto t = run("SELECT COUNT(*) FROM Object o JOIN Source s "
               "ON o.objectId = s.objectId");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->cell(0, 0).asInt(), 12);
}

TEST_F(ExecutorTest, SelfJoinWithSpatialPredicate) {
  // Near-neighbor shape: nested loop with angSep residual.
  auto t = run("SELECT COUNT(*) FROM Object o1, Object o2 "
               "WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) "
               "< 0.6");
  ASSERT_TRUE(t);
  // Pairs within 0.6 deg: (1,2) sep ~0.54, (2,3) sep ~0.54, (4,5) ~0.54,
  // plus 6 self-pairs: total 6 + 2*3 = 12 ordered pairs.
  EXPECT_EQ(t->cell(0, 0).asInt(), 12);
}

TEST_F(ExecutorTest, CrossJoinCountsAllPairs) {
  auto t = run("SELECT COUNT(*) FROM Object o1, Object o2");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->cell(0, 0).asInt(), 36);
  EXPECT_GE(lastStats_.pairsEvaluated, 36u);
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  auto t = run("SELECT COUNT(*) FROM Object o, Source s, Source s2 "
               "WHERE o.objectId = s.objectId AND s.sourceId = s2.sourceId");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->cell(0, 0).asInt(), 12);
}

TEST_F(ExecutorTest, FunctionInWhere) {
  auto t = run("SELECT objectId FROM Object "
               "WHERE qserv_ptInSphericalBox(ra_PS, decl_PS, 0, 0, 3, 2) = 1 "
               "ORDER BY objectId");
  ASSERT_TRUE(t);
  ASSERT_EQ(t->numRows(), 3u);
  EXPECT_EQ(t->cell(2, 0).asInt(), 3);
}

TEST_F(ExecutorTest, SelectDistinct) {
  auto t = run("SELECT DISTINCT chunkId FROM Object ORDER BY chunkId");
  ASSERT_TRUE(t);
  ASSERT_EQ(t->numRows(), 3u);
  EXPECT_EQ(t->cell(0, 0).asInt(), 10);
  EXPECT_EQ(t->cell(2, 0).asInt(), 12);
}

TEST_F(ExecutorTest, SelectDistinctMultiColumn) {
  auto t = run("SELECT DISTINCT chunkId, subChunkId FROM Object "
               "ORDER BY chunkId, subChunkId");
  ASSERT_TRUE(t);
  // Pairs present: (10,0) x2, (10,1), (11,0), (11,1), (12,0).
  EXPECT_EQ(t->numRows(), 5u);
}

TEST_F(ExecutorTest, DistinctWithLimit) {
  auto t = run("SELECT DISTINCT chunkId FROM Object ORDER BY chunkId LIMIT 2");
  ASSERT_TRUE(t);
  ASSERT_EQ(t->numRows(), 2u);
  EXPECT_EQ(t->cell(0, 0).asInt(), 10);
  EXPECT_EQ(t->cell(1, 0).asInt(), 11);
}

TEST_F(ExecutorTest, DistinctTreatsNullsAsEqual) {
  ASSERT_TRUE(db_.execute("CREATE TABLE nn (a BIGINT)").isOk());
  ASSERT_TRUE(
      db_.execute("INSERT INTO nn VALUES (NULL), (NULL), (1), (1)").isOk());
  auto t = run("SELECT DISTINCT a FROM nn");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->numRows(), 2u);
  ASSERT_TRUE(db_.execute("DROP TABLE nn").isOk());
}

TEST_F(ExecutorTest, SelectWithoutFrom) {
  auto t = run("SELECT 1 + 1 AS two, 'x' AS s");
  ASSERT_TRUE(t);
  ASSERT_EQ(t->numRows(), 1u);
  EXPECT_EQ(t->cell(0, 0).asInt(), 2);
  EXPECT_EQ(t->cell(0, 1).asString(), "x");
}

TEST_F(ExecutorTest, IndexAcceleratesPointQuery) {
  ASSERT_TRUE(db_.createIndex("Object", "objectId").isOk());
  ExecStats stats;
  auto r = db_.execute("SELECT * FROM Object WHERE objectId = 4", &stats);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ((*r)->numRows(), 1u);
  EXPECT_EQ(stats.indexLookups, 1u);
  EXPECT_EQ(stats.rowsScanned, 1u);  // only the indexed row is touched
}

TEST_F(ExecutorTest, IndexInListLookup) {
  ASSERT_TRUE(db_.createIndex("Object", "objectId").isOk());
  ExecStats stats;
  auto r = db_.execute(
      "SELECT objectId FROM Object WHERE objectId IN (2, 4, 999)", &stats);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ((*r)->numRows(), 2u);
  EXPECT_EQ(stats.indexLookups, 1u);
}

TEST_F(ExecutorTest, IndexRangeLookup) {
  ASSERT_TRUE(db_.createIndex("Object", "objectId").isOk());
  ExecStats stats;
  auto r = db_.execute(
      "SELECT COUNT(*) FROM Object WHERE objectId BETWEEN 2 AND 5", &stats);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ((*r)->cell(0, 0).asInt(), 4);
  EXPECT_EQ(stats.indexLookups, 1u);
}

TEST_F(ExecutorTest, StatsCountScans) {
  run("SELECT objectId FROM Object WHERE ra_PS > 0");
  EXPECT_EQ(lastStats_.rowsScanned, 6u);
  EXPECT_EQ(lastStats_.rowsScannedByTable.at("Object"), 6u);
}

TEST_F(ExecutorTest, UnrestrictedCountStarSkipsTheScan) {
  // MyISAM-style metadata count: no rows are read (the paper's HV1 is
  // dispatch-overhead-bound, not scan-bound).
  auto t = run("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->cell(0, 0).asInt(), 6);
  EXPECT_EQ(lastStats_.rowsScanned, 0u);
}

TEST_F(ExecutorTest, CountStarWithWhereStillScans) {
  auto t = run("SELECT COUNT(*) FROM Object WHERE ra_PS > 0");
  ASSERT_TRUE(t);
  EXPECT_EQ(t->cell(0, 0).asInt(), 6);
  EXPECT_EQ(lastStats_.rowsScanned, 6u);
}

TEST_F(ExecutorTest, CreateInsertDrop) {
  auto r1 = db_.execute("CREATE TABLE tmp (a BIGINT, b DOUBLE)");
  ASSERT_TRUE(r1.isOk()) << r1.status().toString();
  ASSERT_TRUE(db_.execute("INSERT INTO tmp VALUES (1, 2.5), (3, NULL)").isOk());
  auto t = run("SELECT * FROM tmp ORDER BY a");
  ASSERT_TRUE(t);
  ASSERT_EQ(t->numRows(), 2u);
  EXPECT_TRUE(t->cell(1, 1).isNull());
  ASSERT_TRUE(db_.execute("DROP TABLE tmp").isOk());
  EXPECT_FALSE(db_.execute("SELECT * FROM tmp").isOk());
}

TEST_F(ExecutorTest, CreateTableAsSelect) {
  ASSERT_TRUE(db_.execute("CREATE TABLE Object_10_0 AS SELECT * FROM Object "
                          "WHERE chunkId = 10 AND subChunkId = 0")
                  .isOk());
  auto t = run("SELECT COUNT(*) FROM Object_10_0");
  EXPECT_EQ(t->cell(0, 0).asInt(), 2);
}

TEST_F(ExecutorTest, InsertSelectMerging) {
  ASSERT_TRUE(db_.execute("CREATE TABLE merged (objectId BIGINT)").isOk());
  ASSERT_TRUE(db_.execute("INSERT INTO merged SELECT objectId FROM Object "
                          "WHERE chunkId = 10")
                  .isOk());
  ASSERT_TRUE(db_.execute("INSERT INTO merged SELECT objectId FROM Object "
                          "WHERE chunkId = 11")
                  .isOk());
  auto t = run("SELECT COUNT(*) FROM merged");
  EXPECT_EQ(t->cell(0, 0).asInt(), 5);
}

TEST_F(ExecutorTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(db_.execute("SELECT nosuchcol FROM Object").isOk());
  EXPECT_FALSE(db_.execute("SELECT * FROM NoSuchTable").isOk());
  EXPECT_FALSE(db_.execute("SELECT COUNT(*) FROM Object WHERE SUM(ra_PS) > 1").isOk());
  EXPECT_FALSE(db_.execute("CREATE TABLE Object (x INT)").isOk());
  EXPECT_FALSE(db_.execute("DROP TABLE NoSuchTable").isOk());
  EXPECT_TRUE(db_.execute("DROP TABLE IF EXISTS NoSuchTable").isOk());
  EXPECT_FALSE(db_.execute("INSERT INTO Object VALUES (1)").isOk());
  EXPECT_FALSE(db_.execute("SELECT SUM(COUNT(ra_PS)) FROM Object").isOk());
}

TEST_F(ExecutorTest, ScriptUnionsSelectResults) {
  // Chunk-query protocol: one SELECT per subchunk, results unioned.
  ExecStats stats;
  auto r = db_.executeScript(
      "SELECT COUNT(*) FROM Object WHERE subChunkId = 0;\n"
      "SELECT COUNT(*) FROM Object WHERE subChunkId = 1;\n",
      &stats);
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  ASSERT_EQ((*r)->numRows(), 2u);
  EXPECT_EQ((*r)->cell(0, 0).asInt(), 4);
  EXPECT_EQ((*r)->cell(1, 0).asInt(), 2);
  EXPECT_EQ(stats.statements, 2u);
}

TEST_F(ExecutorTest, ScriptWithDdlAndSelect) {
  auto r = db_.executeScript(
      "CREATE TABLE sub AS SELECT * FROM Object WHERE chunkId = 10;\n"
      "SELECT COUNT(*) FROM sub;\n"
      "DROP TABLE sub;\n");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ((*r)->cell(0, 0).asInt(), 3);
  EXPECT_FALSE(db_.hasTable("sub"));
}

TEST_F(ExecutorTest, DumpAndReplayRoundTrip) {
  auto t = run("SELECT objectId, ra_PS, decl_PS FROM Object ORDER BY objectId");
  ASSERT_TRUE(t);
  std::string dump = dumpTable(*t, "replayed", 2);
  Database other;
  auto loaded = loadDump(other, dump);
  ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
  ASSERT_EQ((*loaded)->numRows(), t->numRows());
  for (std::size_t r = 0; r < t->numRows(); ++r) {
    for (std::size_t c = 0; c < t->numColumns(); ++c) {
      EXPECT_EQ(t->cell(r, c).compare((*loaded)->cell(r, c)), 0)
          << "cell " << r << "," << c;
    }
  }
}

TEST_F(ExecutorTest, DumpPreservesNullsAndStrings) {
  ASSERT_TRUE(db_.execute("CREATE TABLE s (a BIGINT, b VARCHAR(20))").isOk());
  ASSERT_TRUE(
      db_.execute("INSERT INTO s VALUES (1, 'it''s'), (NULL, NULL)").isOk());
  auto t = run("SELECT * FROM s");
  std::string dump = dumpTable(*t, "s2");
  Database other;
  auto loaded = loadDump(other, dump);
  ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
  EXPECT_EQ((*loaded)->cell(0, 1).asString(), "it's");
  EXPECT_TRUE((*loaded)->cell(1, 0).isNull());
}

TEST_F(ExecutorTest, EmptyTableDumpReplaysToEmptyTable) {
  auto t = run("SELECT objectId FROM Object WHERE objectId > 100");
  std::string dump = dumpTable(*t, "empty");
  Database other;
  auto loaded = loadDump(other, dump);
  ASSERT_TRUE(loaded.isOk());
  EXPECT_EQ((*loaded)->numRows(), 0u);
  EXPECT_EQ((*loaded)->numColumns(), 1u);
}

// The §5.3 worked example, executed end to end on a single table: AVG
// rewritten by hand into the chunk/merge pair must equal direct AVG.
TEST_F(ExecutorTest, AvgSplitMatchesDirectAvg) {
  auto direct = run("SELECT AVG(gFlux_PS) FROM Object");
  auto chunk = run("SELECT SUM(gFlux_PS) AS `SUM(gFlux_PS)`, "
                   "COUNT(gFlux_PS) AS `COUNT(gFlux_PS)` FROM Object");
  ASSERT_TRUE(direct && chunk);
  std::string dump = dumpTable(*chunk, "partials");
  ASSERT_TRUE(loadDump(db_, dump).isOk());
  auto merged = run("SELECT SUM(`SUM(gFlux_PS)`) / SUM(`COUNT(gFlux_PS)`) "
                    "FROM partials");
  EXPECT_NEAR(merged->cell(0, 0).asDouble(), direct->cell(0, 0).asDouble(),
              1e-40);
}

}  // namespace
}  // namespace qserv::sql
