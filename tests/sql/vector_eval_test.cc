/// Tests for the vectorized scan-filter path (sql/vector_eval.h): golden
/// NULL-comparison and INT/DOUBLE coercion semantics, randomized parity
/// against the row-at-a-time executor, zone-map pruning stats, and the bulk
/// append paths (Table::appendRows / appendFrom) the scan pipeline rides on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sql/database.h"
#include "sql/parser.h"
#include "sql/vector_eval.h"
#include "util/rng.h"
#include "util/strings.h"

namespace qserv::sql {
namespace {

/// Restores the global vectorized-filter switch after each test.
class VectorEval : public ::testing::Test {
 protected:
  void TearDown() override { setVectorizedFilterEnabled(true); }

  /// Run \p sql with the vectorized path on and off; require identical
  /// results cell by cell. Returns the (shared) result row count.
  std::size_t expectParity(Database& db, const std::string& sql) {
    setVectorizedFilterEnabled(true);
    ExecStats sv, sr;
    auto vec = db.execute(sql, &sv);
    setVectorizedFilterEnabled(false);
    auto row = db.execute(sql, &sr);
    setVectorizedFilterEnabled(true);
    EXPECT_TRUE(vec.isOk()) << vec.status().toString() << " for " << sql;
    EXPECT_TRUE(row.isOk()) << row.status().toString() << " for " << sql;
    if (!vec.isOk() || !row.isOk()) return 0;
    EXPECT_EQ((*vec)->numRows(), (*row)->numRows()) << sql;
    EXPECT_EQ((*vec)->numColumns(), (*row)->numColumns()) << sql;
    if ((*vec)->numRows() != (*row)->numRows()) return 0;
    for (std::size_t r = 0; r < (*vec)->numRows(); ++r) {
      for (std::size_t c = 0; c < (*vec)->numColumns(); ++c) {
        EXPECT_EQ((*vec)->cell(r, c), (*row)->cell(r, c))
            << sql << " at " << r << "," << c;
      }
    }
    return (*vec)->numRows();
  }

  /// The ids surviving `SELECT id FROM T WHERE <where> ORDER BY id`, with
  /// parity between both paths asserted along the way.
  std::vector<std::int64_t> idsWhere(Database& db, const std::string& where) {
    std::string sql = "SELECT id FROM T WHERE " + where + " ORDER BY id";
    expectParity(db, sql);
    auto r = db.execute(sql);
    EXPECT_TRUE(r.isOk()) << where;
    std::vector<std::int64_t> ids;
    if (r.isOk()) {
      for (std::size_t i = 0; i < (*r)->numRows(); ++i) {
        ids.push_back((*r)->cell(i, 0).asInt());
      }
    }
    return ids;
  }
};

using Ids = std::vector<std::int64_t>;

/// id INT, a INT (NULLs at ids 2 and 5), x DOUBLE (NULL at id 3), s STRING.
std::unique_ptr<Database> goldenDb() {
  auto db = std::make_unique<Database>("golden");
  Schema schema({{"id", ColumnType::kInt},
                 {"a", ColumnType::kInt},
                 {"x", ColumnType::kDouble},
                 {"s", ColumnType::kString}});
  auto t = std::make_shared<Table>("T", schema);
  auto row = [&](std::int64_t id, Value a, Value x, const char* s) {
    std::vector<Value> r{Value(id), std::move(a), std::move(x),
                         Value(std::string(s))};
    ASSERT_TRUE(t->appendRow(r).isOk());
  };
  row(0, Value(std::int64_t{10}), Value(1.5), "aa");
  row(1, Value(std::int64_t{20}), Value(2.0), "bb");
  row(2, Value::null(), Value(2.5), "cc");
  row(3, Value(std::int64_t{30}), Value::null(), "dd");
  row(4, Value(std::int64_t{20}), Value(5.0), "ee");
  row(5, Value::null(), Value(-1.0), "ff");
  EXPECT_TRUE(db->registerTable(t).isOk());
  return db;
}

TEST_F(VectorEval, NullComparisonGoldens) {
  auto db = goldenDb();
  // NULL never satisfies a comparison — `a != 20` does NOT keep NULL rows.
  EXPECT_EQ(idsWhere(*db, "a = 20"), (Ids{1, 4}));
  EXPECT_EQ(idsWhere(*db, "a != 20"), (Ids{0, 3}));
  EXPECT_EQ(idsWhere(*db, "a < 30"), (Ids{0, 1, 4}));
  EXPECT_EQ(idsWhere(*db, "NOT a < 30"), (Ids{3}));
  EXPECT_EQ(idsWhere(*db, "a IS NULL"), (Ids{2, 5}));
  EXPECT_EQ(idsWhere(*db, "a IS NOT NULL"), (Ids{0, 1, 3, 4}));
  EXPECT_EQ(idsWhere(*db, "x IS NULL"), (Ids{3}));
  // Comparison against a NULL constant is NULL for every row.
  EXPECT_EQ(idsWhere(*db, "a = NULL"), Ids{});
  EXPECT_EQ(idsWhere(*db, "a != NULL"), Ids{});
  EXPECT_EQ(idsWhere(*db, "x BETWEEN 1 AND NULL"), Ids{});
  EXPECT_EQ(idsWhere(*db, "x NOT BETWEEN 1 AND NULL"), Ids{});
  // IN keeps matches even with a NULL item; NOT IN with a NULL item keeps
  // nothing (the non-match outcome is NULL, not true).
  EXPECT_EQ(idsWhere(*db, "a IN (20, NULL)"), (Ids{1, 4}));
  EXPECT_EQ(idsWhere(*db, "a NOT IN (20, NULL)"), Ids{});
  EXPECT_EQ(idsWhere(*db, "a NOT IN (20, 30)"), (Ids{0}));
  EXPECT_EQ(idsWhere(*db, "x NOT BETWEEN 1.5 AND 2.5"), (Ids{4, 5}));
  EXPECT_EQ(idsWhere(*db, "a IN (NULL)"), Ids{});
}

TEST_F(VectorEval, IntDoubleCoercionGoldens) {
  auto db = goldenDb();
  // INT column against DOUBLE constants: compare through widening.
  EXPECT_EQ(idsWhere(*db, "a < 25.5"), (Ids{0, 1, 4}));
  EXPECT_EQ(idsWhere(*db, "a = 20.0"), (Ids{1, 4}));
  EXPECT_EQ(idsWhere(*db, "a BETWEEN 15.5 AND 29.9"), (Ids{1, 4}));
  EXPECT_EQ(idsWhere(*db, "a IN (10.0, 30)"), (Ids{0, 3}));
  // DOUBLE column against INT constants.
  EXPECT_EQ(idsWhere(*db, "x = 2"), (Ids{1}));
  EXPECT_EQ(idsWhere(*db, "x >= 2"), (Ids{1, 2, 4}));
  EXPECT_EQ(idsWhere(*db, "x BETWEEN -1 AND 2"), (Ids{0, 1, 5}));
  // Inverted range: BETWEEN with lo > hi holds for nothing, NOT BETWEEN for
  // every non-null row.
  EXPECT_EQ(idsWhere(*db, "x BETWEEN 3 AND 2"), Ids{});
  EXPECT_EQ(idsWhere(*db, "x NOT BETWEEN 3 AND 2"), (Ids{0, 1, 2, 4, 5}));
  // A string constant against a numeric column compares by type rank
  // (numeric sorts before string) — constant truth per non-null row.
  EXPECT_EQ(idsWhere(*db, "a < 'zz'"), (Ids{0, 1, 3, 4}));
  EXPECT_EQ(idsWhere(*db, "a > 'zz'"), Ids{});
}

TEST_F(VectorEval, NaNColumnValuesKeepParityAndDisablePruning) {
  Database db("nan");
  Schema schema({{"id", ColumnType::kInt}, {"x", ColumnType::kDouble}});
  auto t = std::make_shared<Table>("T", schema);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  ASSERT_TRUE(t->appendRow(std::vector<Value>{Value(std::int64_t{0}), Value(1.0)}).isOk());
  ASSERT_TRUE(t->appendRow(std::vector<Value>{Value(std::int64_t{1}), Value(nan)}).isOk());
  ASSERT_TRUE(t->appendRow(std::vector<Value>{Value(std::int64_t{2}), Value(2.0)}).isOk());
  ASSERT_TRUE(db.registerTable(t).isOk());
  // Value::compare treats NaN as equal to everything, so the NaN row
  // satisfies `x = 1e300` even though no finite value does. Zone pruning
  // must not "win" here: hasNaN disables the range check.
  EXPECT_EQ(idsWhere(db, "x = 1e300"), (Ids{1}));
  EXPECT_EQ(idsWhere(db, "x BETWEEN 100 AND 200"), (Ids{1}));
  EXPECT_EQ(idsWhere(db, "x > 1e300"), Ids{});
  EXPECT_EQ(idsWhere(db, "x < 1.5"), (Ids{0}));
  setVectorizedFilterEnabled(true);
  ExecStats stats;
  auto r = db.execute("SELECT COUNT(*) FROM T WHERE x = 1e300", &stats);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ((*r)->cell(0, 0).asInt(), 1);
  EXPECT_EQ(stats.zoneMapPrunes, 0u);
}

TEST_F(VectorEval, RandomizedParityTenThousandRows) {
  Database db("fuzz");
  Schema schema({{"id", ColumnType::kInt},
                 {"a", ColumnType::kInt},
                 {"x", ColumnType::kDouble},
                 {"y", ColumnType::kDouble},
                 {"z", ColumnType::kDouble},   // all NULL
                 {"s", ColumnType::kString}});
  auto t = std::make_shared<Table>("T", schema);
  util::Rng rng(20260806);
  const std::size_t kRows = 12000;  // > 2 kernel blocks, exercises reordering
  std::vector<std::vector<Value>> rows;
  rows.reserve(kRows);
  const char* words[] = {"lsst", "qserv", "czar", "chunk"};
  for (std::size_t i = 0; i < kRows; ++i) {
    std::vector<Value> row(6);
    row[0] = Value(static_cast<std::int64_t>(i));
    if (rng.below(10) != 0) {
      row[1] = Value(static_cast<std::int64_t>(rng.range(-50, 50)));
    }
    if (rng.below(8) != 0) row[2] = Value(rng.uniform(-100.0, 100.0));
    row[3] = Value(rng.uniform(0.0, 1.0));
    // row[4] (z) stays NULL for every row.
    row[5] = Value(std::string(words[rng.below(4)]));
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE(t->appendRows(rows).isOk());
  ASSERT_TRUE(db.registerTable(t).isOk());

  // Every supported kernel shape with randomized constants, plus residual
  // shapes (strings, cross-column, arithmetic) mixed into conjunctions.
  const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
  for (int trial = 0; trial < 25; ++trial) {
    long long ia = rng.range(-55, 55);
    double dx = rng.uniform(-110.0, 110.0);
    double dy = rng.uniform(-0.1, 1.1);
    const char* op = ops[rng.below(6)];
    expectParity(db, util::format(
        "SELECT id FROM T WHERE a %s %lld ORDER BY id", op, ia));
    expectParity(db, util::format(
        "SELECT id, x FROM T WHERE x %s %.17g ORDER BY id", op, dx));
    expectParity(db, util::format(
        "SELECT COUNT(*) FROM T WHERE a BETWEEN %lld AND %lld", ia, ia + 20));
    expectParity(db, util::format(
        "SELECT id FROM T WHERE x NOT BETWEEN %.17g AND %.17g ORDER BY id",
        dx, dx + 30.0));
    expectParity(db, util::format(
        "SELECT COUNT(*) FROM T WHERE a IN (%lld, %lld, %lld)", ia, ia + 1,
        static_cast<long long>(rng.range(-55, 55))));
    expectParity(db, util::format(
        "SELECT COUNT(*) FROM T WHERE a NOT IN (%lld, %lld)", ia, ia + 2));
    // Conjunctions across columns, including the all-NULL column and
    // residual conjuncts that force the per-row fallback on survivors.
    expectParity(db, util::format(
        "SELECT id FROM T WHERE a > %lld AND x < %.17g AND y %s %.17g "
        "ORDER BY id", ia, dx, op, dy));
    expectParity(db, util::format(
        "SELECT id FROM T WHERE x > %.17g AND s = 'qserv' ORDER BY id", dx));
    expectParity(db, util::format(
        "SELECT id FROM T WHERE a IS NOT NULL AND x < y * 100 AND "
        "x > %.17g ORDER BY id", dx));
    expectParity(db, util::format(
        "SELECT COUNT(*) FROM T WHERE z IS NULL AND a < %lld", ia));
    expectParity(db, util::format(
        "SELECT COUNT(*) FROM T WHERE z > %.17g", dx));
  }
}

TEST_F(VectorEval, EmptyAndAllNullTables) {
  Database db("edges");
  Schema schema({{"id", ColumnType::kInt}, {"x", ColumnType::kDouble}});
  ASSERT_TRUE(
      db.registerTable(std::make_shared<Table>("T", schema)).isOk());
  EXPECT_EQ(idsWhere(db, "x < 5"), Ids{});
  EXPECT_EQ(idsWhere(db, "x IS NULL"), Ids{});
  setVectorizedFilterEnabled(true);
  ExecStats stats;
  auto r = db.execute("SELECT COUNT(*) FROM T WHERE x < 5", &stats);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ((*r)->cell(0, 0).asInt(), 0);
  // An empty table is never "pruned": there is nothing to skip.
  EXPECT_EQ(stats.zoneMapPrunes, 0u);

  auto allNull = std::make_shared<Table>("N", schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        allNull->appendRow(std::vector<Value>{Value(std::int64_t{i}), Value::null()}).isOk());
  }
  ASSERT_TRUE(db.registerTable(allNull).isOk());
  expectParity(db, "SELECT COUNT(*) FROM N WHERE x < 5");
  expectParity(db, "SELECT id FROM N WHERE x IS NULL ORDER BY id");
  expectParity(db, "SELECT COUNT(*) FROM N WHERE x IS NOT NULL");
}

TEST_F(VectorEval, ZoneMapPruneReportsZeroRowsScanned) {
  auto db = goldenDb();  // id in [0,5], a in [10,30], x in [-1,5]
  setVectorizedFilterEnabled(true);
  struct Case {
    const char* sql;
    bool prunes;
  };
  const Case cases[] = {
      {"SELECT COUNT(*) FROM T WHERE id = 999", true},
      {"SELECT id FROM T WHERE a > 100", true},
      {"SELECT COUNT(*) FROM T WHERE x BETWEEN 50.5 AND 60", true},
      {"SELECT COUNT(*) FROM T WHERE a IN (99, 101)", true},
      {"SELECT COUNT(*) FROM T WHERE id >= 0", false},
      {"SELECT COUNT(*) FROM T WHERE x < 100", false},
  };
  for (const Case& c : cases) {
    ExecStats stats;
    auto r = db->execute(c.sql, &stats);
    ASSERT_TRUE(r.isOk()) << c.sql;
    if (c.prunes) {
      EXPECT_EQ(stats.zoneMapPrunes, 1u) << c.sql;
      EXPECT_EQ(stats.rowsScanned, 0u) << c.sql;
      EXPECT_EQ(stats.zoneMapRowsSkipped, 6u) << c.sql;
    } else {
      EXPECT_EQ(stats.zoneMapPrunes, 0u) << c.sql;
      EXPECT_EQ(stats.rowsScanned, 6u) << c.sql;
    }
    expectParity(*db, c.sql);
  }
}

TEST_F(VectorEval, VectorStatsAndResidualFallback) {
  auto db = goldenDb();
  setVectorizedFilterEnabled(true);
  ExecStats stats;
  auto r = db->execute(
      "SELECT id FROM T WHERE x >= 2 AND s != 'cc' ORDER BY id", &stats);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ((*r)->numRows(), 2u);  // ids 1 and 4 (id 2 killed by residual)
  EXPECT_EQ(stats.vectorizedScans, 1u);
  EXPECT_EQ(stats.vectorRowsIn, 6u);
  EXPECT_EQ(stats.vectorRowsOut, 3u);   // x >= 2 keeps ids 1, 2, 4
  EXPECT_EQ(stats.fallbackRows, 3u);    // residual re-checks the survivors
  EXPECT_EQ(stats.rowsScanned, 6u);     // cost-model accounting is unchanged

  ExecStats pure;
  auto r2 = db->execute("SELECT id FROM T WHERE x >= 2 ORDER BY id", &pure);
  ASSERT_TRUE(r2.isOk());
  EXPECT_EQ(pure.vectorizedScans, 1u);
  EXPECT_EQ(pure.fallbackRows, 0u);  // fully kernelized, no residuals

  setVectorizedFilterEnabled(false);
  ExecStats off;
  ASSERT_TRUE(db->execute("SELECT id FROM T WHERE x >= 2", &off).isOk());
  EXPECT_EQ(off.vectorizedScans, 0u);
  EXPECT_EQ(off.rowsScanned, 6u);
}

TEST_F(VectorEval, CountStarPushdownMatchesAndYieldsToIndexes) {
  Database db("count");
  Schema schema({{"id", ColumnType::kInt}, {"x", ColumnType::kDouble}});
  auto t = std::make_shared<Table>("T", schema);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->appendRow(std::vector<Value>{Value(std::int64_t{i}),
                              Value(static_cast<double>(i) / 10.0)}).isOk());
  }
  ASSERT_TRUE(db.registerTable(t).isOk());
  setVectorizedFilterEnabled(true);
  ExecStats stats;
  auto r = db.execute("SELECT COUNT(*) FROM T WHERE x < 2.05", &stats);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ((*r)->cell(0, 0).asInt(), 21);
  EXPECT_EQ(stats.vectorizedScans, 1u);
  EXPECT_EQ(stats.rowsScanned, 100u);
  expectParity(db, "SELECT COUNT(*) FROM T WHERE x < 2.05");
  expectParity(db, "SELECT COUNT(*) FROM T WHERE id BETWEEN 10 AND 19");

  // With an index on the filtered column, the index probe must win (the
  // pushdown would otherwise bypass indexLookups accounting).
  ASSERT_TRUE(db.createIndex("T", "id").isOk());
  ExecStats idx;
  auto ri = db.execute("SELECT COUNT(*) FROM T WHERE id BETWEEN 10 AND 19",
                       &idx);
  ASSERT_TRUE(ri.isOk());
  EXPECT_EQ((*ri)->cell(0, 0).asInt(), 10);
  EXPECT_EQ(idx.indexLookups, 1u);
  EXPECT_EQ(idx.vectorizedScans, 0u);
}

TEST_F(VectorEval, CompileShapesAndResiduals) {
  auto db = goldenDb();
  TablePtr t = db->findTable("T");
  std::vector<ScopeTable> scope{{"T", t.get()}};
  auto whereOf = [](const char* sql) {
    auto stmt = parseStatement(sql);
    EXPECT_TRUE(stmt.isOk()) << sql;
    return std::move(std::get<SelectStmt>(*stmt).where);
  };
  struct Case {
    const char* where;
    bool kernel;  // compiles to a kernel (vs residual)
  };
  const Case cases[] = {
      {"SELECT * FROM T WHERE a < 5", true},
      {"SELECT * FROM T WHERE 5 > a", true},  // flipped operand order
      {"SELECT * FROM T WHERE x BETWEEN 1 AND 2", true},
      {"SELECT * FROM T WHERE a IN (1, 2, 3)", true},
      {"SELECT * FROM T WHERE x IS NOT NULL", true},
      {"SELECT * FROM T WHERE a < 1 + 2", true},  // constant-folded rhs
      {"SELECT * FROM T WHERE s = 'aa'", false},      // string column
      {"SELECT * FROM T WHERE a < x", false},         // cross-column
      {"SELECT * FROM T WHERE a + 1 < 5", false},     // arithmetic on column
      {"SELECT * FROM T WHERE a < 5 OR x < 1", false},  // disjunction
  };
  for (const Case& c : cases) {
    auto where = whereOf(c.where);
    ASSERT_TRUE(where != nullptr) << c.where;
    const Expr* pred = where.get();
    auto sf = compileScanFilter({&pred, 1}, scope, 0, db->functions());
    ASSERT_TRUE(sf.isOk()) << c.where;
    EXPECT_EQ(sf->hasKernels(), c.kernel) << c.where;
    EXPECT_EQ(sf->residuals().size(), c.kernel ? 0u : 1u) << c.where;
    if (c.kernel) {
      EXPECT_EQ(sf->kernelColumns().size(), 1u) << c.where;
    }
  }
  // An empty table never prunes.
  Table empty("E", t->schema());
  auto where = whereOf("SELECT * FROM T WHERE a > 100");
  const Expr* pred = where.get();
  auto sf = compileScanFilter({&pred, 1}, scope, 0, db->functions());
  ASSERT_TRUE(sf.isOk());
  EXPECT_TRUE(sf->prunes(*t));
  EXPECT_FALSE(sf->prunes(empty));
}

TEST_F(VectorEval, AppendRowsIsAllOrNothing) {
  Schema schema({{"id", ColumnType::kInt}, {"x", ColumnType::kDouble}});
  Table t("T", schema);
  std::vector<std::vector<Value>> good;
  good.push_back({Value(std::int64_t{1}), Value(1.5)});
  good.push_back({Value(std::int64_t{2}), Value::null()});
  good.push_back({Value(std::int64_t{3}), Value(std::int64_t{7})});  // widens
  ASSERT_TRUE(t.appendRows(good).isOk());
  EXPECT_EQ(t.numRows(), 3u);
  EXPECT_EQ(t.cell(2, 1), Value(7.0));

  // A bad row in the middle rejects the whole batch: nothing is appended.
  std::vector<std::vector<Value>> bad;
  bad.push_back({Value(std::int64_t{4}), Value(4.0)});
  bad.push_back({Value(std::string("oops")), Value(5.0)});
  bad.push_back({Value(std::int64_t{6}), Value(6.0)});
  EXPECT_FALSE(t.appendRows(bad).isOk());
  EXPECT_EQ(t.numRows(), 3u);
  std::vector<std::vector<Value>> shortRow;
  shortRow.push_back({Value(std::int64_t{9})});
  EXPECT_FALSE(t.appendRows(shortRow).isOk());
  EXPECT_EQ(t.numRows(), 3u);

  // Zone maps reflect only the accepted rows.
  const ZoneMap& id = t.zoneMap(0);
  EXPECT_TRUE(id.hasValue);
  EXPECT_EQ(id.intMin, 1);
  EXPECT_EQ(id.intMax, 3);
  const ZoneMap& x = t.zoneMap(1);
  EXPECT_EQ(x.nullCount, 1u);
  EXPECT_EQ(x.dblMin, 1.5);
  EXPECT_EQ(x.dblMax, 7.0);
}

TEST_F(VectorEval, AppendFromWidensAndMergesZones) {
  Schema intSchema({{"id", ColumnType::kInt}, {"v", ColumnType::kInt}});
  Schema dblSchema({{"id", ColumnType::kInt}, {"v", ColumnType::kDouble}});
  Table src("S", intSchema);
  ASSERT_TRUE(src.appendRow(std::vector<Value>{Value(std::int64_t{1}),
                             Value(std::int64_t{100})}).isOk());
  ASSERT_TRUE(src.appendRow(std::vector<Value>{Value(std::int64_t{2}), Value::null()}).isOk());

  Table dst("D", dblSchema);
  ASSERT_TRUE(dst.appendRow(std::vector<Value>{Value(std::int64_t{0}), Value(0.5)}).isOk());
  ASSERT_TRUE(dst.appendFrom(src).isOk());  // INT source widens into DOUBLE
  EXPECT_EQ(dst.numRows(), 3u);
  EXPECT_EQ(dst.cell(1, 1), Value(100.0));
  EXPECT_TRUE(dst.isNull(2, 1));
  const ZoneMap& z = dst.zoneMap(1);
  EXPECT_EQ(z.dblMin, 0.5);
  EXPECT_EQ(z.dblMax, 100.0);
  EXPECT_EQ(z.nullCount, 1u);

  // Incompatible types fail (and leave the destination untouched) unless
  // the source column is entirely NULL.
  Schema strSchema({{"id", ColumnType::kInt}, {"v", ColumnType::kString}});
  Table strSrc("SS", strSchema);
  ASSERT_TRUE(strSrc.appendRow(std::vector<Value>{Value(std::int64_t{9}),
                                Value(std::string("nope"))}).isOk());
  EXPECT_FALSE(dst.appendFrom(strSrc).isOk());
  EXPECT_EQ(dst.numRows(), 3u);

  Table nullSrc("NS", strSchema);
  ASSERT_TRUE(nullSrc.appendRow(std::vector<Value>{Value(std::int64_t{7}),
                                 Value::null()}).isOk());
  EXPECT_TRUE(dst.appendFrom(nullSrc).isOk());
  EXPECT_EQ(dst.numRows(), 4u);
  EXPECT_TRUE(dst.isNull(3, 1));
  EXPECT_EQ(dst.zoneMap(1).nullCount, 2u);
}

TEST_F(VectorEval, RenameTableCarriesIndexes) {
  Database db("rename");
  Schema schema({{"id", ColumnType::kInt}});
  auto t = std::make_shared<Table>("old", schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t->appendRow(std::vector<Value>{Value(std::int64_t{i})}).isOk());
  }
  ASSERT_TRUE(db.registerTable(t).isOk());
  ASSERT_TRUE(db.createIndex("old", "id").isOk());
  EXPECT_FALSE(db.renameTable("missing", "other").isOk());
  ASSERT_TRUE(db.renameTable("old", "fresh").isOk());
  EXPECT_EQ(db.findTable("old"), nullptr);
  ASSERT_NE(db.findTable("fresh"), nullptr);
  EXPECT_EQ(db.findTable("fresh")->name(), "fresh");
  ExecStats stats;
  auto r = db.execute("SELECT * FROM fresh WHERE id = 3", &stats);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ((*r)->numRows(), 1u);
  EXPECT_EQ(stats.indexLookups, 1u);  // the index followed the rename
  // Renaming onto an existing name fails.
  auto other = std::make_shared<Table>("taken", schema);
  ASSERT_TRUE(db.registerTable(other).isOk());
  EXPECT_FALSE(db.renameTable("fresh", "taken").isOk());
}

}  // namespace
}  // namespace qserv::sql
