#include "sql/rowcodec.h"

#include <gtest/gtest.h>

#include "sql/dump.h"
#include "util/rng.h"

namespace qserv::sql {
namespace {

TablePtr sampleTable() {
  Schema schema({{"id", ColumnType::kInt},
                 {"ra", ColumnType::kDouble},
                 {"name", ColumnType::kString}});
  auto t = std::make_shared<Table>("src", schema);
  EXPECT_TRUE(t->appendRow(std::vector<Value>{Value(1), Value(1.5), Value("a")}).isOk());
  EXPECT_TRUE(t->appendRow(std::vector<Value>{Value(-7), Value::null(), Value("it's")}).isOk());
  EXPECT_TRUE(t->appendRow(std::vector<Value>{Value::null(), Value(0.25), Value::null()}).isOk());
  return t;
}

TEST(RowCodec, MagicDetection) {
  auto t = sampleTable();
  std::string bin = encodeTableBinary(*t, "out");
  EXPECT_TRUE(isBinaryTablePayload(bin));
  EXPECT_FALSE(isBinaryTablePayload(dumpTable(*t, "out")));
  EXPECT_FALSE(isBinaryTablePayload(""));
  EXPECT_FALSE(isBinaryTablePayload("QB"));
}

TEST(RowCodec, RoundTripPreservesEverything) {
  auto t = sampleTable();
  std::string bin = encodeTableBinary(*t, "decoded");
  Database db;
  auto loaded = loadBinaryTable(db, bin);
  ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
  EXPECT_EQ((*loaded)->name(), "decoded");
  ASSERT_EQ((*loaded)->numRows(), t->numRows());
  ASSERT_EQ((*loaded)->numColumns(), t->numColumns());
  for (std::size_t c = 0; c < t->numColumns(); ++c) {
    EXPECT_EQ((*loaded)->schema().column(c), t->schema().column(c));
  }
  for (std::size_t r = 0; r < t->numRows(); ++r) {
    for (std::size_t c = 0; c < t->numColumns(); ++c) {
      EXPECT_EQ((*loaded)->cell(r, c), t->cell(r, c)) << r << "," << c;
    }
  }
  EXPECT_TRUE(db.hasTable("decoded"));
}

TEST(RowCodec, DoubleBitsExact) {
  Schema schema({{"x", ColumnType::kDouble}});
  auto t = std::make_shared<Table>("t", schema);
  for (double d : {0.1, 1.0 / 3.0, 1e-300, -0.0, 2.2250738585072014e-308}) {
    ASSERT_TRUE(t->appendRow(std::vector<Value>{Value(d)}).isOk());
  }
  Database db;
  auto loaded = loadBinaryTable(db, encodeTableBinary(*t, "t2"));
  ASSERT_TRUE(loaded.isOk());
  for (std::size_t r = 0; r < t->numRows(); ++r) {
    EXPECT_EQ((*loaded)->cell(r, 0).asDouble(), t->cell(r, 0).asDouble());
  }
}

TEST(RowCodec, EmptyTable) {
  Schema schema({{"a", ColumnType::kInt}});
  Table t("t", schema);
  Database db;
  auto loaded = loadBinaryTable(db, encodeTableBinary(t, "empty"));
  ASSERT_TRUE(loaded.isOk());
  EXPECT_EQ((*loaded)->numRows(), 0u);
  EXPECT_EQ((*loaded)->numColumns(), 1u);
}

TEST(RowCodec, TrailingBytesAreIgnored) {
  // Workers append an observables comment after the binary blob.
  auto t = sampleTable();
  std::string bin = encodeTableBinary(*t, "t2") + "-- QSERV-OBS trailing\n";
  Database db;
  auto loaded = loadBinaryTable(db, bin);
  ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
  EXPECT_EQ((*loaded)->numRows(), 3u);
}

TEST(RowCodec, TruncationIsRejectedEverywhere) {
  auto t = sampleTable();
  std::string bin = encodeTableBinary(*t, "t2");
  // Any strict prefix must fail cleanly (never crash, never succeed except
  // the degenerate full length).
  for (std::size_t cut = 4; cut < bin.size(); cut += 3) {
    Database db;
    auto r = loadBinaryTable(db, std::string_view(bin).substr(0, cut));
    EXPECT_FALSE(r.isOk()) << "cut=" << cut;
  }
}

TEST(RowCodec, GarbageRejected) {
  Database db;
  EXPECT_FALSE(loadBinaryTable(db, "not binary at all").isOk());
  std::string bad = std::string(kRowCodecMagic) + std::string(100, '\xff');
  EXPECT_FALSE(loadBinaryTable(db, bad).isOk());
}

TEST(RowCodec, ReplacesExistingTable) {
  auto t = sampleTable();
  Database db;
  ASSERT_TRUE(loadBinaryTable(db, encodeTableBinary(*t, "t2")).isOk());
  ASSERT_TRUE(loadBinaryTable(db, encodeTableBinary(*t, "t2")).isOk());
  EXPECT_EQ(db.findTable("t2")->numRows(), 3u);
}

TEST(RowCodec, SmallerThanSqlDump) {
  // The point of §7.1: the binary stream is much denser than INSERT text.
  Schema schema({{"a", ColumnType::kInt}, {"b", ColumnType::kDouble}});
  auto t = std::make_shared<Table>("t", schema);
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t->appendRow(std::vector<Value>{
                     Value(static_cast<std::int64_t>(rng())),
                     Value(rng.uniform())})
                    .isOk());
  }
  std::string dump = dumpTable(*t, "t2");
  std::string bin = encodeTableBinary(*t, "t2");
  EXPECT_LT(bin.size() * 2, dump.size());
}

TEST(RowCodec, RandomizedRoundTripSweep) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    Schema schema({{"i", ColumnType::kInt},
                   {"d", ColumnType::kDouble},
                   {"s", ColumnType::kString}});
    auto t = std::make_shared<Table>("t", schema);
    std::size_t rows = rng.below(50);
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<Value> row(3);
      row[0] = rng.below(5) == 0 ? Value::null()
                                 : Value(static_cast<std::int64_t>(rng()));
      row[1] = rng.below(5) == 0 ? Value::null() : Value(rng.uniform(-1e9, 1e9));
      if (rng.below(5) == 0) {
        row[2] = Value::null();
      } else {
        std::string s;
        for (std::size_t k = rng.below(20); k > 0; --k) {
          s.push_back(static_cast<char>(rng.below(256)));
        }
        row[2] = Value(std::move(s));
      }
      ASSERT_TRUE(t->appendRow(row).isOk());
    }
    Database db;
    auto loaded = loadBinaryTable(db, encodeTableBinary(*t, "t2"));
    ASSERT_TRUE(loaded.isOk()) << trial;
    ASSERT_EQ((*loaded)->numRows(), rows);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < 3; ++c) {
        ASSERT_EQ((*loaded)->cell(r, c), t->cell(r, c));
      }
    }
  }
}

}  // namespace
}  // namespace qserv::sql
