#include "sql/parser.h"

#include <gtest/gtest.h>

namespace qserv::sql {
namespace {

SelectStmt sel(std::string_view s) {
  auto r = parseSelect(s);
  EXPECT_TRUE(r.isOk()) << r.status().toString() << " for: " << s;
  return std::move(r).value();
}

TEST(Parser, SimpleSelect) {
  SelectStmt s = sel("SELECT a, b FROM t");
  ASSERT_EQ(s.items.size(), 2u);
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "t");
  EXPECT_EQ(s.items[0].expr->toSql(), "a");
}

TEST(Parser, SelectStar) {
  SelectStmt s = sel("SELECT * FROM Object WHERE objectId = 42");
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_EQ(s.items[0].expr->kind(), ExprKind::kStar);
  ASSERT_TRUE(s.where != nullptr);
}

TEST(Parser, QualifiedStar) {
  SelectStmt s = sel("SELECT o.* FROM Object o");
  ASSERT_EQ(s.items[0].expr->kind(), ExprKind::kStar);
  EXPECT_EQ(static_cast<StarExpr&>(*s.items[0].expr).qualifier, "o");
}

TEST(Parser, AliasesWithAndWithoutAs) {
  SelectStmt s = sel("SELECT count(*) AS n, AVG(ra_PS) avgRa FROM Object");
  EXPECT_EQ(s.items[0].alias, "n");
  EXPECT_EQ(s.items[1].alias, "avgRa");
}

TEST(Parser, TableAliases) {
  SelectStmt s = sel("SELECT o1.ra FROM Object AS o1, Object o2");
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].alias, "o1");
  EXPECT_EQ(s.from[1].alias, "o2");
  EXPECT_EQ(s.from[0].bindingName(), "o1");
}

TEST(Parser, DatabaseQualifiedTable) {
  SelectStmt s = sel("SELECT x FROM LSST.Object_1234");
  EXPECT_EQ(s.from[0].database, "LSST");
  EXPECT_EQ(s.from[0].table, "Object_1234");
}

TEST(Parser, JoinOnDesugarsToWhere) {
  SelectStmt s =
      sel("SELECT o.a FROM Object o JOIN Source s ON o.objectId = s.objectId "
          "WHERE o.ra > 1");
  ASSERT_EQ(s.from.size(), 2u);
  ASSERT_TRUE(s.where != nullptr);
  // WHERE and the ON condition are ANDed.
  EXPECT_NE(s.where->toSql().find("objectId"), std::string::npos);
  EXPECT_NE(s.where->toSql().find("ra"), std::string::npos);
}

TEST(Parser, InnerJoin) {
  SelectStmt s =
      sel("SELECT 1 FROM a INNER JOIN b ON a.x = b.x");
  EXPECT_EQ(s.from.size(), 2u);
}

TEST(Parser, WherePrecedenceAndOverOr) {
  SelectStmt s = sel("SELECT 1 FROM t WHERE a OR b AND c");
  // Must parse as a OR (b AND c).
  EXPECT_EQ(s.where->toSql(), "(a OR (b AND c))");
}

TEST(Parser, ArithmeticPrecedence) {
  auto e = parseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.isOk());
  EXPECT_EQ((*e)->toSql(), "(1 + (2 * 3))");
}

TEST(Parser, ComparisonOfArithmetic) {
  auto e = parseExpression("fluxToAbMag(g) - fluxToAbMag(r) BETWEEN 0.3 AND 0.4");
  ASSERT_TRUE(e.isOk());
  EXPECT_EQ((*e)->kind(), ExprKind::kBetween);
}

TEST(Parser, NotBetweenAndNotIn) {
  auto e1 = parseExpression("x NOT BETWEEN 1 AND 2");
  ASSERT_TRUE(e1.isOk());
  EXPECT_TRUE(static_cast<BetweenExpr&>(**e1).negated);
  auto e2 = parseExpression("x NOT IN (1, 2, 3)");
  ASSERT_TRUE(e2.isOk());
  EXPECT_TRUE(static_cast<InExpr&>(**e2).negated);
}

TEST(Parser, IsNullForms) {
  auto e1 = parseExpression("x IS NULL");
  ASSERT_TRUE(e1.isOk());
  EXPECT_FALSE(static_cast<IsNullExpr&>(**e1).negated);
  auto e2 = parseExpression("x IS NOT NULL");
  ASSERT_TRUE(e2.isOk());
  EXPECT_TRUE(static_cast<IsNullExpr&>(**e2).negated);
}

TEST(Parser, GroupByOrderByLimit) {
  SelectStmt s = sel(
      "SELECT chunkId, count(*) FROM Object GROUP BY chunkId "
      "ORDER BY chunkId DESC LIMIT 10");
  ASSERT_EQ(s.groupBy.size(), 1u);
  ASSERT_EQ(s.orderBy.size(), 1u);
  EXPECT_TRUE(s.orderBy[0].descending);
  EXPECT_EQ(s.limit, 10);
}

TEST(Parser, Having) {
  SelectStmt s = sel("SELECT chunkId, COUNT(*) AS n FROM Object "
                     "GROUP BY chunkId HAVING COUNT(*) > 5 ORDER BY n");
  ASSERT_TRUE(s.having != nullptr);
  EXPECT_NE(s.having->toSql().find("COUNT"), std::string::npos);
  // Round trip.
  SelectStmt s2 = sel(s.toSql());
  EXPECT_EQ(s.toSql(), s2.toSql());
  // HAVING requires GROUP BY.
  EXPECT_FALSE(parseSelect("SELECT COUNT(*) FROM t HAVING COUNT(*) > 5").isOk());
}

TEST(Parser, SelectDistinct) {
  SelectStmt s = sel("SELECT DISTINCT chunkId FROM Object");
  EXPECT_TRUE(s.distinct);
  EXPECT_EQ(s.toSql().rfind("SELECT DISTINCT ", 0), 0u);
  // Round trip.
  EXPECT_TRUE(sel(s.toSql()).distinct);
  // DISTINCT is reserved: not usable as a bare column.
  EXPECT_FALSE(parseSelect("SELECT DISTINCT FROM t").isOk());
}

TEST(Parser, CountStar) {
  SelectStmt s = sel("SELECT COUNT(*) FROM Object");
  auto& f = static_cast<FuncCall&>(*s.items[0].expr);
  EXPECT_TRUE(f.isAggregate());
  ASSERT_EQ(f.args.size(), 1u);
  EXPECT_EQ(f.args[0]->kind(), ExprKind::kStar);
}

// Every query from the paper's evaluation section must parse.
class PaperQueries : public ::testing::TestWithParam<const char*> {};

TEST_P(PaperQueries, Parses) {
  auto r = parseStatement(GetParam());
  EXPECT_TRUE(r.isOk()) << r.status().toString();
}

INSTANTIATE_TEST_SUITE_P(
    Evaluation, PaperQueries,
    ::testing::Values(
        // LV1
        "SELECT * FROM Object WHERE objectId = 3141592653",
        // LV2
        "SELECT taiMidPoint, fluxToAbMag(psfFlux), fluxToAbMag(psfFluxErr), "
        "ra, decl FROM Source WHERE objectId = 3141592653",
        // LV3
        "SELECT COUNT(*) FROM Object WHERE ra_PS BETWEEN 1 AND 2 "
        "AND decl_PS BETWEEN 3 AND 4 "
        "AND fluxToAbMag(zFlux_PS) BETWEEN 21 AND 21.5 "
        "AND fluxToAbMag(gFlux_PS)-fluxToAbMag(rFlux_PS) BETWEEN 0.3 AND 0.4 "
        "AND fluxToAbMag(iFlux_PS)-fluxToAbMag(zFlux_PS) BETWEEN 0.1 AND 0.12",
        // HV1
        "SELECT COUNT(*) FROM Object",
        // HV2
        "SELECT objectId, ra_PS, decl_PS, uFlux_PS, gFlux_PS, rFlux_PS, "
        "iFlux_PS, zFlux_PS, yFlux_PS FROM Object "
        "WHERE fluxToAbMag(iFlux_PS) - fluxToAbMag(zFlux_PS) > 4",
        // HV3
        "SELECT count(*) AS n, AVG(ra_PS), AVG(decl_PS), chunkId FROM Object "
        "GROUP BY chunkId",
        // SHV1
        "SELECT count(*) FROM Object o1, Object o2 "
        "WHERE qserv_areaspec_box(-5,-5,5,-5) "
        "AND qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1",
        // SHV2
        "SELECT o.objectId, s.sourceId, s.ra, s.decl, o.ra_PS, o.decl_PS "
        "FROM Object o, Source s "
        "WHERE qserv_areaspec_box(224.1, -7.5, 237.1, 5.5) "
        "AND o.objectId = s.objectId "
        "AND qserv_angSep(s.ra, s.decl, o.ra_PS, o.decl_PS) > 0.0045",
        // The worked rewrite example in §5.3.
        "SELECT AVG(uFlux_SG) FROM Object "
        "WHERE qserv_areaspec_box(0.0, 0.0, 10.0, 10.0) AND uRadius_PS > 0.04"));

TEST(Parser, ToSqlRoundTripReparses) {
  const char* queries[] = {
      "SELECT a + 1 AS x FROM t WHERE b BETWEEN 1 AND 2 ORDER BY x LIMIT 5",
      "SELECT count(*) AS n, AVG(ra_PS), chunkId FROM Object GROUP BY chunkId",
      "SELECT o.objectId FROM Object o, Source s WHERE o.objectId = s.objectId",
      "SELECT * FROM LSST.Object_88 WHERE qserv_ptInSphericalBox(ra, decl, "
      "0.0, 0.0, 10.0, 10.0) = 1",
  };
  for (const char* q : queries) {
    SelectStmt s1 = sel(q);
    std::string sql1 = s1.toSql();
    SelectStmt s2 = sel(sql1);
    EXPECT_EQ(sql1, s2.toSql()) << q;  // fixed point after one round
  }
}

TEST(Parser, CloneIsDeepAndEquivalent) {
  SelectStmt s1 = sel(
      "SELECT count(*) n FROM Object o1, Object o2 WHERE "
      "qserv_angSep(o1.ra, o1.decl, o2.ra, o2.decl) < 0.1 GROUP BY n "
      "ORDER BY n LIMIT 3");
  SelectStmt s2 = s1.clone();
  EXPECT_EQ(s1.toSql(), s2.toSql());
  // Mutating the clone must not affect the original.
  s2.from[0].table = "Mutated";
  EXPECT_NE(s1.toSql(), s2.toSql());
}

TEST(Parser, CreateTable) {
  auto r = parseStatement(
      "CREATE TABLE t (id BIGINT NOT NULL, ra DOUBLE, name VARCHAR(80))");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  auto& c = std::get<CreateTableStmt>(*r);
  EXPECT_EQ(c.table, "t");
  ASSERT_EQ(c.schema.numColumns(), 3u);
  EXPECT_EQ(c.schema.column(0).type, ColumnType::kInt);
  EXPECT_EQ(c.schema.column(1).type, ColumnType::kDouble);
  EXPECT_EQ(c.schema.column(2).type, ColumnType::kString);
}

TEST(Parser, CreateTableIfNotExists) {
  auto r = parseStatement("CREATE TABLE IF NOT EXISTS t (x INT)");
  ASSERT_TRUE(r.isOk());
  EXPECT_TRUE(std::get<CreateTableStmt>(*r).ifNotExists);
}

TEST(Parser, CreateTableAsSelect) {
  auto r = parseStatement(
      "CREATE TABLE Object_88_3 AS SELECT * FROM Object_88 WHERE subChunkId = 3");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  auto& c = std::get<CreateTableStmt>(*r);
  ASSERT_TRUE(c.asSelect != nullptr);
  EXPECT_EQ(c.asSelect->from[0].table, "Object_88");
}

TEST(Parser, InsertValues) {
  auto r = parseStatement(
      "INSERT INTO t VALUES (1, 2.5, 'x', NULL), (-2, -3.5, 'y', 4)");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  auto& ins = std::get<InsertStmt>(*r);
  ASSERT_EQ(ins.rows.size(), 2u);
  EXPECT_EQ(ins.rows[0][0].asInt(), 1);
  EXPECT_TRUE(ins.rows[0][3].isNull());
  EXPECT_EQ(ins.rows[1][0].asInt(), -2);
  EXPECT_DOUBLE_EQ(ins.rows[1][1].asDouble(), -3.5);
}

TEST(Parser, InsertSelect) {
  auto r = parseStatement("INSERT INTO merged SELECT * FROM tmp_result");
  ASSERT_TRUE(r.isOk());
  EXPECT_TRUE(std::get<InsertStmt>(*r).select != nullptr);
}

TEST(Parser, DropTable) {
  auto r1 = parseStatement("DROP TABLE t");
  ASSERT_TRUE(r1.isOk());
  EXPECT_FALSE(std::get<DropTableStmt>(*r1).ifExists);
  auto r2 = parseStatement("DROP TABLE IF EXISTS t");
  ASSERT_TRUE(r2.isOk());
  EXPECT_TRUE(std::get<DropTableStmt>(*r2).ifExists);
}

TEST(Parser, ScriptMultipleStatements) {
  auto r = parseScript(
      "CREATE TABLE t (x INT);\n"
      "INSERT INTO t VALUES (1);\n"
      "SELECT * FROM t;\n");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(r->size(), 3u);
}

TEST(Parser, ScriptWithSubchunksHeader) {
  auto r = parseScript(
      "-- SUBCHUNKS: 3, 4, 5\n"
      "SELECT count(*) FROM Object_88_3;\n"
      "SELECT count(*) FROM Object_88_4;\n");
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ(r->size(), 2u);
}

TEST(Parser, Errors) {
  EXPECT_FALSE(parseStatement("SELECT").isOk());
  EXPECT_FALSE(parseStatement("SELECT FROM t").isOk());
  EXPECT_FALSE(parseStatement("SELECT 1 FROM").isOk());
  EXPECT_FALSE(parseStatement("FOO BAR").isOk());
  EXPECT_FALSE(parseStatement("SELECT 1 FROM t WHERE").isOk());
  EXPECT_FALSE(parseStatement("SELECT 1 LIMIT -2").isOk());
  EXPECT_FALSE(parseStatement("SELECT 1 FROM t GROUP chunkId").isOk());
  EXPECT_FALSE(parseStatement("CREATE TABLE t (x NOTATYPE)").isOk());
  EXPECT_FALSE(parseStatement("INSERT INTO t VALUES (1+2)").isOk());
  EXPECT_FALSE(parseStatement("SELECT 1; SELECT 2").isOk());  // one stmt only
  EXPECT_FALSE(parseSelect("DROP TABLE t").isOk());
}

TEST(Parser, TrailingSemicolonAllowed) {
  EXPECT_TRUE(parseStatement("SELECT 1;").isOk());
}

TEST(Parser, UnaryMinusAndDoubleNegation) {
  // Note: "--5" is a line comment in SQL, so the inner minus needs space
  // or parentheses.
  auto e = parseExpression("- -5");
  ASSERT_TRUE(e.isOk());
  EXPECT_EQ((*e)->kind(), ExprKind::kUnary);
  EXPECT_FALSE(parseExpression("--5").isOk());  // comment swallows the rest
}

}  // namespace
}  // namespace qserv::sql
