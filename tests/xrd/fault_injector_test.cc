#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "util/md5.h"
#include "xrd/fault_injector.h"
#include "xrd/file_store.h"
#include "xrd/paths.h"

namespace qserv::xrd {
namespace {

/// Minimal inner plugin: every written query is immediately answered with an
/// echo of its payload under the usual /result/<md5> path.
class EchoPlugin : public OfsPlugin {
 public:
  util::Status writeFile(const std::string& /*path*/,
                         std::string payload) override {
    std::string hash = util::Md5::hex(payload);
    store_.publish(makeResultPath(hash), "echo:" + payload);
    return util::Status::ok();
  }

  util::Result<std::string> readFile(const std::string& path) override {
    return store_.waitFor(path, std::chrono::milliseconds(200));
  }

  std::vector<std::int32_t> exportedChunks() const override { return {1}; }

 private:
  FileStore store_;
};

FaultPlan parsePlan(const std::string& spec) {
  auto plan = FaultPlan::parse(spec);
  EXPECT_TRUE(plan.isOk()) << plan.status().toString();
  return plan.isOk() ? *plan : FaultPlan{};
}

TEST(FaultPlan, ParsesFullSpec) {
  auto plan = parsePlan(
      "seed=42; write:p=0.25,fail=internal; read:p=0.5,corrupt=truncate; "
      "read:after=100,down; write:path=/query2/7,delay=5");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.rules.size(), 4u);
  EXPECT_EQ(plan.rules[0].op, FaultOp::kWrite);
  EXPECT_DOUBLE_EQ(plan.rules[0].probability, 0.25);
  EXPECT_TRUE(plan.rules[0].fail);
  EXPECT_EQ(plan.rules[0].errorCode, util::ErrorCode::kInternal);
  EXPECT_TRUE(plan.rules[1].corrupt);
  EXPECT_TRUE(plan.rules[1].truncate);
  EXPECT_EQ(plan.rules[2].afterOps, 100);
  EXPECT_TRUE(plan.rules[2].down);
  EXPECT_EQ(plan.rules[3].pathPattern, "/query2/7");
  EXPECT_EQ(plan.rules[3].delay, std::chrono::milliseconds(5));
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::parse("bogus").isOk());
  EXPECT_FALSE(FaultPlan::parse("write:p=2,fail").isOk());       // p out of range
  EXPECT_FALSE(FaultPlan::parse("write:fail,down").isOk());      // two actions
  EXPECT_FALSE(FaultPlan::parse("write:p=0.5").isOk());          // no action
  EXPECT_FALSE(FaultPlan::parse("write:corrupt").isOk());        // corrupt write
  EXPECT_FALSE(FaultPlan::parse("read:fail=nonsense").isOk());   // bad code
  EXPECT_FALSE(FaultPlan::parse("flush:fail").isOk());           // bad op
}

TEST(FaultPlan, EmptySpecMeansNoInjection) {
  EXPECT_TRUE(parsePlan("").empty());
  EXPECT_TRUE(parsePlan("seed=9").empty());
}

TEST(FaultyOfsPlugin, FailRuleInjectsChosenErrorCode) {
  FaultyOfsPlugin faulty(std::make_shared<EchoPlugin>(),
                         parsePlan("write:fail=internal"), "w0");
  auto s = faulty.writeFile("/query2/1", "SELECT 1");
  EXPECT_EQ(s.code(), util::ErrorCode::kInternal);
  EXPECT_NE(s.message().find("injected"), std::string::npos);
  EXPECT_EQ(faulty.injectedWriteFaults(), 1u);
}

TEST(FaultyOfsPlugin, PathPatternScopesTheRule) {
  FaultyOfsPlugin faulty(std::make_shared<EchoPlugin>(),
                         parsePlan("write:path=/query2/7,fail"), "w0");
  EXPECT_TRUE(faulty.writeFile("/query2/1", "q").isOk());
  EXPECT_FALSE(faulty.writeFile("/query2/7", "q").isOk());
}

TEST(FaultyOfsPlugin, AfterOpsArmsLate) {
  FaultyOfsPlugin faulty(std::make_shared<EchoPlugin>(),
                         parsePlan("write:after=2,fail"), "w0");
  EXPECT_TRUE(faulty.writeFile("/query2/1", "a").isOk());
  EXPECT_TRUE(faulty.writeFile("/query2/1", "b").isOk());
  EXPECT_FALSE(faulty.writeFile("/query2/1", "c").isOk());
}

TEST(FaultyOfsPlugin, DownRuleIsPermanentUntilRevive) {
  FaultyOfsPlugin faulty(std::make_shared<EchoPlugin>(),
                         parsePlan("write:after=1,down"), "w0");
  EXPECT_TRUE(faulty.writeFile("/query2/1", "a").isOk());
  EXPECT_EQ(faulty.writeFile("/query2/1", "b").code(),
            util::ErrorCode::kUnavailable);
  EXPECT_TRUE(faulty.isDown());
  // Down blankets every operation, including reads of other paths.
  EXPECT_EQ(faulty.readFile("/result/" + std::string(32, 'a')).status().code(),
            util::ErrorCode::kUnavailable);
  faulty.revive();
  EXPECT_FALSE(faulty.isDown());
  EXPECT_TRUE(faulty.writeFile("/query2/1", "c").isOk());
}

TEST(FaultyOfsPlugin, CorruptionMutatesTheReadPayload) {
  std::string query = "SELECT 2";
  std::string resultPath = makeResultPath(util::Md5::hex(query));
  FaultyOfsPlugin faulty(std::make_shared<EchoPlugin>(),
                         parsePlan("read:corrupt"), "w0");
  ASSERT_TRUE(faulty.writeFile("/query2/1", query).isOk());
  auto r = faulty.readFile(resultPath);
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_NE(*r, "echo:" + query);  // bits flipped
  EXPECT_EQ(r->size(), std::string("echo:" + query).size());
  EXPECT_EQ(faulty.injectedCorruptions(), 1u);
}

TEST(FaultyOfsPlugin, TruncationHalvesTheReadPayload) {
  std::string query = "SELECT 3";
  std::string resultPath = makeResultPath(util::Md5::hex(query));
  FaultyOfsPlugin faulty(std::make_shared<EchoPlugin>(),
                         parsePlan("read:corrupt=truncate"), "w0");
  ASSERT_TRUE(faulty.writeFile("/query2/1", query).isOk());
  auto r = faulty.readFile(resultPath);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ(r->size(), std::string("echo:" + query).size() / 2);
}

TEST(FaultyOfsPlugin, DelayRuleSleepsAndCounts) {
  FaultyOfsPlugin faulty(std::make_shared<EchoPlugin>(),
                         parsePlan("write:delay=10"), "w0");
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(faulty.writeFile("/query2/1", "q").isOk());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(10));
  EXPECT_EQ(faulty.injectedDelays(), 1u);
}

TEST(FaultyOfsPlugin, ProbabilisticDecisionsAreSeedDeterministic) {
  auto run = [](const std::string& id) {
    FaultyOfsPlugin faulty(std::make_shared<EchoPlugin>(),
                           parsePlan("seed=99; write:p=0.5,fail"), id);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(faulty.writeFile("/query2/1", "q").isOk());
    }
    return outcomes;
  };
  auto a = run("w0");
  auto b = run("w0");
  EXPECT_EQ(a, b);  // same plan seed + same server id => same fault schedule
  auto other = run("w1");
  EXPECT_NE(a, other);  // per-server streams decorrelate
  // And p=0.5 actually fires a plausible fraction of the time.
  int fails = static_cast<int>(std::count(a.begin(), a.end(), false));
  EXPECT_GT(fails, 16);
  EXPECT_LT(fails, 48);
}

}  // namespace
}  // namespace qserv::xrd
