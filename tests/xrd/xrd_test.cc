#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/md5.h"
#include "xrd/client.h"
#include "xrd/data_server.h"
#include "xrd/file_store.h"
#include "xrd/paths.h"
#include "xrd/redirector.h"

namespace qserv::xrd {
namespace {

TEST(Paths, MakeAndParseQueryPath) {
  EXPECT_EQ(makeQueryPath(42), "/query2/42");
  EXPECT_EQ(parseQueryPath("/query2/42"), 42);
  EXPECT_EQ(parseQueryPath("/query2/0"), 0);
  EXPECT_FALSE(parseQueryPath("/query2/").has_value());
  EXPECT_FALSE(parseQueryPath("/query2/abc").has_value());
  EXPECT_FALSE(parseQueryPath("/result/42").has_value());
  EXPECT_FALSE(parseQueryPath("/query2/99999999999").has_value());
}

TEST(Paths, MakeAndParseResultPath) {
  std::string h = util::Md5::hex("SELECT 1");
  std::string p = makeResultPath(h);
  EXPECT_EQ(p, "/result/" + h);
  EXPECT_EQ(parseResultPath(p), h);
  EXPECT_FALSE(parseResultPath("/result/short").has_value());
  EXPECT_FALSE(parseResultPath("/result/" + std::string(32, 'X')).has_value());
  EXPECT_FALSE(parseResultPath("/query2/5").has_value());
}

TEST(FileStore, PublishThenGet) {
  FileStore fs;
  fs.publish("/result/aa", "payload");
  EXPECT_EQ(fs.tryGet("/result/aa"), "payload");
  EXPECT_FALSE(fs.tryGet("/result/bb").has_value());
  EXPECT_EQ(fs.size(), 1u);
  fs.remove("/result/aa");
  EXPECT_EQ(fs.size(), 0u);
}

TEST(FileStore, WaitBlocksUntilPublish) {
  FileStore fs;
  std::atomic<bool> published{false};
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    published = true;
    fs.publish("/result/x", "late");
  });
  auto r = fs.waitFor("/result/x", std::chrono::milliseconds(2000));
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_TRUE(published.load());
  EXPECT_EQ(*r, "late");
  writer.join();
}

TEST(FileStore, WaitTimesOut) {
  FileStore fs;
  auto r = fs.waitFor("/result/never", std::chrono::milliseconds(20));
  EXPECT_EQ(r.status().code(), util::ErrorCode::kUnavailable);
}

TEST(FileStore, PublishErrorPropagates) {
  FileStore fs;
  fs.publishError("/result/bad", util::Status::internal("query failed"));
  auto r = fs.waitFor("/result/bad", std::chrono::milliseconds(100));
  EXPECT_EQ(r.status().code(), util::ErrorCode::kInternal);
}

TEST(FileStore, AbortWakesWaiters) {
  FileStore fs;
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fs.abortAll();
  });
  auto r = fs.waitFor("/result/x", std::chrono::milliseconds(5000));
  EXPECT_EQ(r.status().code(), util::ErrorCode::kAborted);
  aborter.join();
}

/// Test plugin: in-memory store of written queries, canned results.
class EchoPlugin : public OfsPlugin {
 public:
  explicit EchoPlugin(std::vector<std::int32_t> chunks)
      : chunks_(std::move(chunks)) {}

  util::Status writeFile(const std::string& path, std::string payload) override {
    auto chunk = parseQueryPath(path);
    if (!chunk) return util::Status::invalidArgument("bad path " + path);
    // Publish the "result" immediately: hash of query -> echoed payload.
    std::string hash = util::Md5::hex(payload);
    store_.publish(makeResultPath(hash), "echo:" + payload);
    return util::Status::ok();
  }

  util::Result<std::string> readFile(const std::string& path) override {
    return store_.waitFor(path, std::chrono::milliseconds(500));
  }

  std::vector<std::int32_t> exportedChunks() const override { return chunks_; }

 private:
  std::vector<std::int32_t> chunks_;
  FileStore store_;
};

DataServerPtr makeServer(const std::string& id,
                         std::vector<std::int32_t> chunks) {
  return std::make_shared<DataServer>(
      id, std::make_shared<EchoPlugin>(std::move(chunks)));
}

TEST(Redirector, RoutesChunksToExportingServer) {
  auto r = std::make_shared<Redirector>();
  r->registerServer(makeServer("w1", {1, 2, 3}));
  r->registerServer(makeServer("w2", {4, 5, 6}));
  auto s = r->locate("/query2/5");
  ASSERT_TRUE(s.isOk()) << s.status().toString();
  EXPECT_EQ((*s)->id(), "w2");
  auto s2 = r->locate("/query2/2");
  ASSERT_TRUE(s2.isOk());
  EXPECT_EQ((*s2)->id(), "w1");
}

TEST(Redirector, UnknownChunkIsNotFound) {
  auto r = std::make_shared<Redirector>();
  r->registerServer(makeServer("w1", {1}));
  EXPECT_EQ(r->locate("/query2/99").status().code(),
            util::ErrorCode::kNotFound);
}

TEST(Redirector, NonQueryPathRejected) {
  auto r = std::make_shared<Redirector>();
  EXPECT_EQ(r->locate("/result/" + std::string(32, 'a')).status().code(),
            util::ErrorCode::kInvalidArgument);
}

TEST(Redirector, CachesLookups) {
  auto r = std::make_shared<Redirector>();
  r->registerServer(makeServer("w1", {1}));
  ASSERT_TRUE(r->locate("/query2/1").isOk());
  ASSERT_TRUE(r->locate("/query2/1").isOk());
  ASSERT_TRUE(r->locate("/query2/1").isOk());
  EXPECT_EQ(r->lookups(), 3u);
  EXPECT_EQ(r->cacheHits(), 2u);
}

TEST(Redirector, ReplicationBalancesAcrossReplicas) {
  auto r = std::make_shared<Redirector>();
  r->registerServer(makeServer("w1", {7}));
  r->registerServer(makeServer("w2", {7}));
  EXPECT_EQ(r->replicasOf(7).size(), 2u);
}

TEST(Redirector, FailoverToLiveReplica) {
  auto r = std::make_shared<Redirector>();
  auto w1 = makeServer("w1", {7});
  auto w2 = makeServer("w2", {7});
  r->registerServer(w1);
  r->registerServer(w2);
  auto first = r->locate("/query2/7");
  ASSERT_TRUE(first.isOk());
  // Kill the located server; the next lookup must return the other.
  (*first)->setUp(false);
  auto second = r->locate("/query2/7");
  ASSERT_TRUE(second.isOk()) << second.status().toString();
  EXPECT_NE((*second)->id(), (*first)->id());
  EXPECT_TRUE((*second)->isUp());
}

TEST(Redirector, AllReplicasDownIsUnavailable) {
  auto r = std::make_shared<Redirector>();
  auto w1 = makeServer("w1", {7});
  r->registerServer(w1);
  w1->setUp(false);
  EXPECT_EQ(r->locate("/query2/7").status().code(),
            util::ErrorCode::kUnavailable);
}

TEST(Redirector, ExcludeSetSkipsNamedReplicas) {
  auto r = std::make_shared<Redirector>();
  r->registerServer(makeServer("w1", {7}));
  r->registerServer(makeServer("w2", {7}));
  std::vector<std::string> exclude{"w1"};
  for (int i = 0; i < 4; ++i) {
    auto s = r->locate("/query2/7", exclude);
    ASSERT_TRUE(s.isOk()) << s.status().toString();
    EXPECT_EQ((*s)->id(), "w2");
  }
}

TEST(Redirector, AllLiveReplicasExcludedIsUnavailable) {
  auto r = std::make_shared<Redirector>();
  r->registerServer(makeServer("w1", {7}));
  std::vector<std::string> exclude{"w1"};
  auto s = r->locate("/query2/7", exclude);
  EXPECT_EQ(s.status().code(), util::ErrorCode::kUnavailable);
  EXPECT_NE(s.status().message().find("already failed"), std::string::npos);
}

// Regression: an up-but-erroring replica used to be pinned in the lookup
// cache forever — every retry of the chunk re-read the very server that had
// just failed. reportFailure() must evict the cache entry so the next
// lookup can re-balance onto a sibling replica.
TEST(Redirector, FailureEvictsPinnedCacheEntry) {
  auto r = std::make_shared<Redirector>();
  r->registerServer(makeServer("w1", {7}));
  r->registerServer(makeServer("w2", {7}));
  auto first = r->locate("/query2/7");
  ASSERT_TRUE(first.isOk());
  const std::string failed = (*first)->id();
  // The failing server stays up (sick-but-up). Report the failure...
  r->reportFailure(7, failed);
  // ...and the retry, which excludes it, must reach the other replica
  // instead of the cached one.
  std::vector<std::string> exclude{failed};
  auto second = r->locate("/query2/7", exclude);
  ASSERT_TRUE(second.isOk()) << second.status().toString();
  EXPECT_NE((*second)->id(), failed);
}

TEST(Redirector, BreakerSteersAwayFromSickServer) {
  util::CircuitBreakerPolicy policy;
  policy.windowSize = 4;
  policy.minSamples = 4;
  policy.openErrorRate = 0.5;
  auto r = std::make_shared<Redirector>(policy);
  r->registerServer(makeServer("w1", {7}));
  r->registerServer(makeServer("w2", {7}));
  // w1 fails repeatedly; its breaker opens.
  for (int i = 0; i < 4; ++i) r->reportFailure(7, "w1");
  EXPECT_EQ(r->breakerState("w1"), util::CircuitBreaker::State::kOpen);
  // Lookups (no exclude set — a fresh query) now avoid w1 entirely.
  for (int i = 0; i < 6; ++i) {
    auto s = r->locate("/query2/7");
    ASSERT_TRUE(s.isOk());
    EXPECT_EQ((*s)->id(), "w2");
  }
}

TEST(Redirector, BreakerOpenOnSoleReplicaStillServesDegraded) {
  util::CircuitBreakerPolicy policy;
  policy.windowSize = 4;
  policy.minSamples = 4;
  auto r = std::make_shared<Redirector>(policy);
  r->registerServer(makeServer("w1", {7}));
  for (int i = 0; i < 4; ++i) r->reportFailure(7, "w1");
  ASSERT_EQ(r->breakerState("w1"), util::CircuitBreaker::State::kOpen);
  // Breakers must not self-inflict a total outage: with no healthy replica
  // left the open one is still returned (as a probe).
  auto s = r->locate("/query2/7");
  ASSERT_TRUE(s.isOk()) << s.status().toString();
  EXPECT_EQ((*s)->id(), "w1");
}

TEST(Redirector, DeregisterRemovesServer) {
  auto r = std::make_shared<Redirector>();
  r->registerServer(makeServer("w1", {1}));
  ASSERT_TRUE(r->locate("/query2/1").isOk());
  r->deregisterServer("w1");
  EXPECT_FALSE(r->findServer("w1"));
  EXPECT_EQ(r->locate("/query2/1").status().code(),
            util::ErrorCode::kNotFound);
}

TEST(DataServer, DownServerRefusesTransactions) {
  auto s = makeServer("w1", {1});
  s->setUp(false);
  EXPECT_EQ(s->write("/query2/1", "q").code(), util::ErrorCode::kUnavailable);
  EXPECT_EQ(s->read("/result/x").status().code(),
            util::ErrorCode::kUnavailable);
}

TEST(DataServer, AccountsTransferredBytes) {
  auto s = makeServer("w1", {1});
  ASSERT_TRUE(s->write("/query2/1", "0123456789").isOk());
  EXPECT_EQ(s->bytesWritten(), 10u);
  std::string hash = util::Md5::hex("0123456789");
  auto r = s->read(makeResultPath(hash));
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ(s->bytesRead(), r->size());
}

TEST(Client, TwoTransactionRoundTrip) {
  auto redirector = std::make_shared<Redirector>();
  redirector->registerServer(makeServer("w1", {10, 11}));
  redirector->registerServer(makeServer("w2", {20, 21}));
  XrdClient client(redirector);

  std::string query = "SELECT COUNT(*) FROM Object_20;";
  auto serverId = client.writeQuery(20, query);
  ASSERT_TRUE(serverId.isOk()) << serverId.status().toString();
  EXPECT_EQ(*serverId, "w2");

  auto result = client.readResult(*serverId, util::Md5::hex(query));
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_EQ(*result, "echo:" + query);
}

TEST(Client, WriteToMissingChunkFails) {
  auto redirector = std::make_shared<Redirector>();
  redirector->registerServer(makeServer("w1", {1}));
  XrdClient client(redirector);
  EXPECT_FALSE(client.writeQuery(999, "q").isOk());
}

TEST(Client, ReadFromUnknownServerFails) {
  auto redirector = std::make_shared<Redirector>();
  XrdClient client(redirector);
  EXPECT_EQ(client.readResult("ghost", std::string(32, 'a')).status().code(),
            util::ErrorCode::kNotFound);
}

TEST(Client, ConcurrentWritesAcrossWorkers) {
  auto redirector = std::make_shared<Redirector>();
  for (int w = 0; w < 8; ++w) {
    std::vector<std::int32_t> chunks;
    for (int c = w * 10; c < w * 10 + 10; ++c) chunks.push_back(c);
    redirector->registerServer(makeServer("w" + std::to_string(w), chunks));
  }
  XrdClient client(redirector);
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int c = t * 10; c < t * 10 + 10; ++c) {
        std::string q = "SELECT " + std::to_string(c);
        auto sid = client.writeQuery(c, q);
        if (!sid.isOk()) continue;
        auto res = client.readResult(*sid, util::Md5::hex(q));
        if (res.isOk() && *res == "echo:" + q) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 80);
}

}  // namespace
}  // namespace qserv::xrd
