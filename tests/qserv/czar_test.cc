/// Frontend (czar) edge cases: malformed input, unsupported shapes, empty
/// chunk covers, and execution accounting.
#include <gtest/gtest.h>

#include "qserv/cluster.h"

namespace qserv::core {
namespace {

class CzarTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogConfig catalog = CatalogConfig::lsst(18, 6, 0.05);
    SkyDataOptions data;
    data.basePatchObjects = 500;
    data.withSources = true;
    data.region = sphgeom::SphericalBox(0, -7, 14, 7);
    auto sky = buildSkyCatalog(catalog, data);
    ASSERT_TRUE(sky.isOk());
    ClusterOptions opts;
    opts.numWorkers = 2;
    opts.frontend.catalog = catalog;
    auto cluster = MiniCluster::create(opts, *sky);
    ASSERT_TRUE(cluster.isOk());
    cluster_ = cluster->release();
  }
  static void TearDownTestSuite() {
    delete cluster_;
    cluster_ = nullptr;
  }

  QservFrontend& frontend() { return cluster_->frontend(); }

  static MiniCluster* cluster_;
};

MiniCluster* CzarTest::cluster_ = nullptr;

TEST_F(CzarTest, MalformedSqlFails) {
  EXPECT_FALSE(frontend().query("SELEKT 1").isOk());
  EXPECT_FALSE(frontend().query("").isOk());
  EXPECT_FALSE(frontend().query("SELECT FROM Object").isOk());
}

TEST_F(CzarTest, NonSelectStatementsRejected) {
  EXPECT_FALSE(frontend().query("DROP TABLE Object").isOk());
  EXPECT_FALSE(frontend().query("INSERT INTO Object VALUES (1)").isOk());
}

TEST_F(CzarTest, SubqueriesUnsupportedLikeThePaper) {
  // "Qserv does not currently support SQL subqueries" (§5.3) — the parser
  // rejects them.
  EXPECT_FALSE(frontend()
                   .query("SELECT * FROM Object WHERE objectId IN "
                          "(SELECT objectId FROM Source)")
                   .isOk());
}

TEST_F(CzarTest, ThreePartitionedTablesRejected) {
  auto r = frontend().query(
      "SELECT COUNT(*) FROM Object o, Source s, Source s2 "
      "WHERE o.objectId = s.objectId AND s.objectId = s2.objectId");
  EXPECT_EQ(r.status().code(), util::ErrorCode::kUnimplemented);
}

TEST_F(CzarTest, AreaspecOutsideDataDispatchesNothing) {
  auto r = frontend().query(
      "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(180, 40, 190, 50)");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(r->chunksDispatched, 0u);
  EXPECT_EQ(r->result->numRows(), 0u);
}

TEST_F(CzarTest, LimitZeroAcrossChunks) {
  auto r = frontend().query("SELECT objectId FROM Object LIMIT 0");
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ(r->result->numRows(), 0u);
  EXPECT_GT(r->chunksDispatched, 0u);
}

TEST_F(CzarTest, RowsMergedAccountsChunkResults) {
  auto r = frontend().query(
      "SELECT count(*) AS n, chunkId FROM Object GROUP BY chunkId");
  ASSERT_TRUE(r.isOk());
  // One partial row per chunk that owns objects arrives at the merger
  // (edge chunks holding only overlap rows contribute none).
  EXPECT_EQ(r->rowsMerged, r->result->numRows());
  EXPECT_GT(r->result->numRows(), 0u);
  EXPECT_LE(r->result->numRows(), r->chunksDispatched);
}

TEST_F(CzarTest, ChunksForMatchesExecution) {
  std::string sql =
      "SELECT COUNT(*) FROM Object WHERE qserv_areaspec_box(1, -3, 5, 3)";
  auto planned = frontend().chunksFor(sql);
  auto exec = frontend().query(sql);
  ASSERT_TRUE(planned.isOk() && exec.isOk());
  EXPECT_EQ(planned->size(), exec->chunksDispatched);
}

TEST_F(CzarTest, WallTimeAndSoloTimingPopulated) {
  auto r = frontend().query("SELECT COUNT(*) FROM Object");
  ASSERT_TRUE(r.isOk());
  EXPECT_GT(r->wallSeconds, 0.0);
  EXPECT_GT(r->soloTiming.elapsedSec(), 0.0);
  EXPECT_EQ(r->accounting.size(), r->chunksDispatched);
}

TEST_F(CzarTest, FunctionsComputedOnWorkersArriveInResults) {
  auto r = frontend().query(
      "SELECT objectId, fluxToAbMag(rFlux_PS) FROM Object "
      "WHERE qserv_areaspec_box(1, -3, 4, 3) ORDER BY objectId LIMIT 5");
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  for (std::size_t i = 0; i < r->result->numRows(); ++i) {
    double mag = r->result->cell(i, 1).asDouble();
    EXPECT_GT(mag, 5.0);
    EXPECT_LT(mag, 35.0);
  }
}

TEST_F(CzarTest, RepeatedQueriesAreStable) {
  std::int64_t first = -1;
  for (int i = 0; i < 5; ++i) {
    auto r = frontend().query("SELECT COUNT(*) FROM Object");
    ASSERT_TRUE(r.isOk());
    std::int64_t n = r->result->cell(0, 0).asInt();
    if (first < 0) first = n;
    EXPECT_EQ(n, first);
  }
}

}  // namespace
}  // namespace qserv::core
