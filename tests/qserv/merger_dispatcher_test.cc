#include <gtest/gtest.h>

#include <atomic>

#include "qserv/dispatcher.h"
#include "qserv/merger.h"
#include "qserv/observables_codec.h"
#include "sql/dump.h"
#include "sql/rowcodec.h"
#include "util/md5.h"
#include "xrd/file_store.h"
#include "xrd/paths.h"

namespace qserv::core {
namespace {

// ------------------------------------------------------------------ merger

sql::TablePtr makeRows(const std::string& name, std::vector<int> values) {
  sql::Schema schema({{"v", sql::ColumnType::kInt}});
  auto t = std::make_shared<sql::Table>(name, schema);
  for (int v : values) {
    EXPECT_TRUE(t->appendRow(std::vector<sql::Value>{sql::Value(v)}).isOk());
  }
  return t;
}

TEST(ResultMerger, UnionsDumpsIntoMergeTable) {
  ResultMerger merger("m");
  ASSERT_TRUE(merger.mergeDump(sql::dumpTable(*makeRows("a", {1, 2}), "r_a"))
                  .isOk());
  ASSERT_TRUE(merger.mergeDump(sql::dumpTable(*makeRows("b", {3}), "r_b"))
                  .isOk());
  EXPECT_EQ(merger.rowsMerged(), 3u);
  auto final = merger.finalize("SELECT SUM(v) FROM m");
  ASSERT_TRUE(final.isOk()) << final.status().toString();
  EXPECT_EQ((*final)->cell(0, 0).asInt(), 6);
}

TEST(ResultMerger, HandlesBinaryPayloads) {
  ResultMerger merger("m");
  ASSERT_TRUE(
      merger.mergeDump(sql::encodeTableBinary(*makeRows("a", {5, 7}), "r_a"))
          .isOk());
  // Mixed formats in one query also work.
  ASSERT_TRUE(merger.mergeDump(sql::dumpTable(*makeRows("b", {8}), "r_b"))
                  .isOk());
  auto final = merger.finalize("SELECT COUNT(*) AS n, SUM(v) FROM m");
  ASSERT_TRUE(final.isOk());
  EXPECT_EQ((*final)->cell(0, 0).asInt(), 3);
  EXPECT_EQ((*final)->cell(0, 1).asInt(), 20);
}

TEST(ResultMerger, ObservablesCommentIsHarmless) {
  ResultMerger merger("m");
  simio::WorkObservables obs;
  obs.rowsExamined = 9;
  std::string dump = sql::dumpTable(*makeRows("a", {1}), "r_a");
  dump += encodeObservables(obs);
  ASSERT_TRUE(merger.mergeDump(dump).isOk());
  EXPECT_EQ(merger.rowsMerged(), 1u);
}

TEST(ResultMerger, EmptyDumpKeepsSchema) {
  ResultMerger merger("m");
  ASSERT_TRUE(merger.mergeDump(sql::dumpTable(*makeRows("a", {}), "r_a"))
                  .isOk());
  auto final = merger.finalize("SELECT * FROM m");
  ASSERT_TRUE(final.isOk());
  EXPECT_EQ((*final)->numRows(), 0u);
  EXPECT_EQ((*final)->numColumns(), 1u);
}

TEST(ResultMerger, NoDumpsFinalizesEmpty) {
  ResultMerger merger("m");
  auto final = merger.finalize("SELECT * FROM m");
  ASSERT_TRUE(final.isOk());
  EXPECT_EQ((*final)->numRows(), 0u);
}

TEST(ResultMerger, MismatchedColumnCountFails) {
  ResultMerger merger("m");
  ASSERT_TRUE(merger.mergeDump(sql::dumpTable(*makeRows("a", {1}), "r_a"))
                  .isOk());
  sql::Schema two({{"x", sql::ColumnType::kInt}, {"y", sql::ColumnType::kInt}});
  sql::Table wide("w", two);
  ASSERT_TRUE(wide.appendRow(std::vector<sql::Value>{sql::Value(1),
                                                     sql::Value(2)})
                  .isOk());
  EXPECT_FALSE(merger.mergeDump(sql::dumpTable(wide, "r_b")).isOk());
}

TEST(ResultMerger, GarbagePayloadFails) {
  ResultMerger merger("m");
  EXPECT_FALSE(merger.mergeDump("this is not a dump").isOk());
}

// --------------------------------------------------------------- dispatcher

/// A plugin that fails the first `failures` read attempts per path.
class FlakyPlugin : public xrd::OfsPlugin {
 public:
  FlakyPlugin(std::vector<std::int32_t> chunks, int failures)
      : chunks_(std::move(chunks)), failuresLeft_(failures) {}

  util::Status writeFile(const std::string& path, std::string payload) override {
    auto chunk = xrd::parseQueryPath(path);
    if (!chunk) return util::Status::invalidArgument("bad path");
    ++writes_;
    std::string hash = util::Md5::hex(payload);
    if (failuresLeft_.fetch_sub(1) > 0) {
      store_.publishError(xrd::makeResultPath(hash),
                          util::Status::unavailable("injected fault"));
      return util::Status::ok();
    }
    auto table = makeRows("r", {static_cast<int>(*chunk)});
    store_.publish(xrd::makeResultPath(hash),
                   sql::dumpTable(*table, "r_" + hash));
    return util::Status::ok();
  }

  util::Result<std::string> readFile(const std::string& path) override {
    return store_.waitFor(path, std::chrono::milliseconds(2000));
  }

  std::vector<std::int32_t> exportedChunks() const override { return chunks_; }

  int writes() const { return writes_.load(); }

 private:
  std::vector<std::int32_t> chunks_;
  std::atomic<int> failuresLeft_;
  std::atomic<int> writes_{0};
  xrd::FileStore store_;
};

TEST(Dispatcher, CollectsAllChunkResults) {
  auto redirector = std::make_shared<xrd::Redirector>();
  auto plugin = std::make_shared<FlakyPlugin>(std::vector<std::int32_t>{1, 2, 3},
                                              0);
  redirector->registerServer(
      std::make_shared<xrd::DataServer>("w0", plugin));
  Dispatcher dispatcher(redirector, 4);
  std::vector<ChunkQuerySpec> specs;
  for (std::int32_t c : {1, 2, 3}) {
    specs.push_back(ChunkQuerySpec{c, {}, "SELECT " + std::to_string(c)});
  }
  auto results = dispatcher.run(specs);
  ASSERT_TRUE(results.isOk()) << results.status().toString();
  EXPECT_EQ(results->size(), 3u);
  for (const auto& r : *results) {
    EXPECT_EQ(r.workerId, "w0");
    EXPECT_FALSE(r.dump.empty());
    // The dispatcher hashes the full payload: class header + query text.
    EXPECT_EQ(r.hash,
              util::Md5::hex(classHeaderLine(QueryClass::kScan) + "SELECT " +
                             std::to_string(r.chunkId)));
  }
}

TEST(Dispatcher, RetriesTransientFailures) {
  auto redirector = std::make_shared<xrd::Redirector>();
  auto plugin = std::make_shared<FlakyPlugin>(std::vector<std::int32_t>{7},
                                              /*failures=*/2);
  redirector->registerServer(std::make_shared<xrd::DataServer>("w0", plugin));
  Dispatcher dispatcher(redirector, 1, /*maxAttempts=*/3);
  auto results = dispatcher.run({ChunkQuerySpec{7, {}, "SELECT 7"}});
  ASSERT_TRUE(results.isOk()) << results.status().toString();
  EXPECT_EQ(plugin->writes(), 3);  // two injected faults, then success
}

TEST(Dispatcher, GivesUpAfterMaxAttempts) {
  auto redirector = std::make_shared<xrd::Redirector>();
  auto plugin = std::make_shared<FlakyPlugin>(std::vector<std::int32_t>{7},
                                              /*failures=*/100);
  redirector->registerServer(std::make_shared<xrd::DataServer>("w0", plugin));
  Dispatcher dispatcher(redirector, 1, /*maxAttempts=*/2);
  auto results = dispatcher.run({ChunkQuerySpec{7, {}, "SELECT 7"}});
  EXPECT_FALSE(results.isOk());
  EXPECT_EQ(results.status().code(), util::ErrorCode::kUnavailable);
}

TEST(Dispatcher, UnknownChunkFailsFast) {
  auto redirector = std::make_shared<xrd::Redirector>();
  Dispatcher dispatcher(redirector, 1);
  auto results = dispatcher.run({ChunkQuerySpec{99, {}, "SELECT 99"}});
  EXPECT_FALSE(results.isOk());
}

TEST(Dispatcher, ParsesInBandObservables) {
  auto redirector = std::make_shared<xrd::Redirector>();
  // A plugin whose dumps carry observables.
  class ObsPlugin : public xrd::OfsPlugin {
   public:
    util::Status writeFile(const std::string& path, std::string payload) override {
      (void)path;
      simio::WorkObservables obs;
      obs.bytesScanned = 12345;
      obs.rowsExamined = 67;
      std::string dump = sql::dumpTable(*makeRows("r", {1}), "r_x");
      dump += encodeObservables(obs);
      store_.publish(xrd::makeResultPath(util::Md5::hex(payload)),
                     std::move(dump));
      return util::Status::ok();
    }
    util::Result<std::string> readFile(const std::string& path) override {
      return store_.waitFor(path, std::chrono::milliseconds(1000));
    }
    std::vector<std::int32_t> exportedChunks() const override { return {5}; }

   private:
    xrd::FileStore store_;
  };
  redirector->registerServer(
      std::make_shared<xrd::DataServer>("w0", std::make_shared<ObsPlugin>()));
  Dispatcher dispatcher(redirector, 1);
  auto results = dispatcher.run({ChunkQuerySpec{5, {}, "SELECT 5"}});
  ASSERT_TRUE(results.isOk());
  EXPECT_DOUBLE_EQ((*results)[0].observables.bytesScanned, 12345.0);
  EXPECT_EQ((*results)[0].observables.rowsExamined, 67u);
}

}  // namespace
}  // namespace qserv::core
