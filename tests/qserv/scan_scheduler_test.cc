/// \file scan_scheduler_test.cc
/// \brief Unit tests for the worker's shared-scan scheduler: class header
/// parsing, priority-lane ordering, same-chunk pass grouping, mid-pass
/// joins with atomic close, memory-budget blocking, slow-scan eviction,
/// and the kFifo degenerate mode.
#include "qserv/scan_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace qserv::core {
namespace {

ScanTask makeScan(std::int32_t chunkId, std::uint64_t queryId = 0,
                  double memoryBytes = 0.0) {
  ScanTask t;
  t.chunkId = chunkId;
  t.queryId = queryId;
  t.cls = QueryClass::kScan;
  t.memoryBytes = memoryBytes;
  return t;
}

ScanTask makeInteractive(std::int32_t chunkId) {
  ScanTask t;
  t.chunkId = chunkId;
  t.cls = QueryClass::kInteractive;
  return t;
}

ScanSchedulerConfig sharedScan(bool startPaused = true) {
  ScanSchedulerConfig c;
  c.mode = SchedulerMode::kSharedScan;
  c.startPaused = startPaused;
  return c;
}

// ------------------------------------------------------------ class header

TEST(QueryClassHeader, RoundTripsThroughPayload) {
  std::string payload = classHeaderLine(QueryClass::kInteractive) +
                        "SELECT * FROM Object_7;";
  auto cls = parseClassHeader(payload);
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(*cls, QueryClass::kInteractive);

  payload = classHeaderLine(QueryClass::kScan) + "SELECT 1;";
  cls = parseClassHeader(payload);
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(*cls, QueryClass::kScan);
}

TEST(QueryClassHeader, ParsesAfterOtherHeaders) {
  // The class line may sit anywhere in the run of leading -- comments.
  std::string payload = "-- QSERV-TRACE: 42\n-- SUBCHUNKS: 1, 2\n" +
                        classHeaderLine(QueryClass::kInteractive) +
                        "SELECT 1;";
  auto cls = parseClassHeader(payload);
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(*cls, QueryClass::kInteractive);
}

TEST(QueryClassHeader, AbsentOrMalformedIsNullopt) {
  EXPECT_FALSE(parseClassHeader("SELECT 1;").has_value());
  EXPECT_FALSE(parseClassHeader("-- SUBCHUNKS: 3\nSELECT 1;").has_value());
  EXPECT_FALSE(parseClassHeader("-- QSERV-CLASS: warp\nSELECT 1;").has_value());
  // The header only counts inside the leading comment block.
  EXPECT_FALSE(
      parseClassHeader("SELECT 1;\n-- QSERV-CLASS: scan\n").has_value());
}

// ------------------------------------------------------------- fifo mode

TEST(ScanScheduler, FifoClaimsOneTaskAtATimeInArrivalOrder) {
  ScanSchedulerConfig config;  // kFifo
  ScanScheduler sched("w0", config);
  // Same chunk, mixed classes: FIFO ignores both and never groups.
  ASSERT_TRUE(sched.enqueue(makeScan(5, 1)));
  ASSERT_TRUE(sched.enqueue(makeInteractive(5)));
  ASSERT_TRUE(sched.enqueue(makeScan(5, 2)));
  for (std::uint64_t want : {1u, 0u, 2u}) {
    auto claim = sched.claim();
    ASSERT_EQ(claim.tasks.size(), 1u);
    EXPECT_EQ(claim.passId, 0u);
    EXPECT_EQ(claim.tasks[0].queryId, want);
    sched.finishTask(claim.tasks[0], 0.0, true);
  }
  EXPECT_EQ(sched.depth(), 0u);
}

// ---------------------------------------------------------- priority lane

TEST(ScanScheduler, InteractiveClaimedAheadOfQueuedScans) {
  ScanScheduler sched("w0", sharedScan());
  ASSERT_TRUE(sched.enqueue(makeScan(1, 1)));
  ASSERT_TRUE(sched.enqueue(makeScan(2, 2)));
  ASSERT_TRUE(sched.enqueue(makeInteractive(3)));
  sched.resume();
  // The interactive arrival was last in but is claimed first.
  auto claim = sched.claim();
  ASSERT_EQ(claim.tasks.size(), 1u);
  EXPECT_EQ(claim.tasks[0].cls, QueryClass::kInteractive);
  EXPECT_EQ(claim.passId, 0u);  // no pass, no budget charge
  EXPECT_EQ(sched.budget().lockedSets(), 0u);
}

// ----------------------------------------------------------- scan groups

TEST(ScanScheduler, SameChunkScansShareOnePass) {
  ScanScheduler sched("w0", sharedScan());
  ASSERT_TRUE(sched.enqueue(makeScan(5, 1)));
  ASSERT_TRUE(sched.enqueue(makeScan(6, 2)));
  ASSERT_TRUE(sched.enqueue(makeScan(5, 3)));
  sched.resume();
  auto group = sched.claim();
  ASSERT_EQ(group.tasks.size(), 2u);  // both chunk-5 scans, one pass
  EXPECT_NE(group.passId, 0u);
  EXPECT_EQ(group.tasks[0].chunkId, 5);
  EXPECT_EQ(group.tasks[1].chunkId, 5);
  auto solo = sched.claim();
  ASSERT_EQ(solo.tasks.size(), 1u);
  EXPECT_EQ(solo.tasks[0].chunkId, 6);
}

TEST(ScanScheduler, MidPassArrivalJoinsOpenPass) {
  ScanScheduler sched("w0", sharedScan(false));
  ASSERT_TRUE(sched.enqueue(makeScan(5, 1)));
  auto claim = sched.claim();
  ASSERT_EQ(claim.tasks.size(), 1u);
  ASSERT_NE(claim.passId, 0u);
  // Arrives while the chunk-5 pass is in flight: joins it instead of
  // queueing a second pass.
  ASSERT_TRUE(sched.enqueue(makeScan(5, 2)));
  EXPECT_EQ(sched.queuedOnly(), 1u);  // parked on the pass, not a lane
  sched.finishTask(claim.tasks[0], 0.0, true);
  auto joined = sched.takeJoined(claim.passId);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].queryId, 2u);
  sched.finishTask(joined[0], 0.0, true);
  // Empty drain closes the pass; the next same-chunk scan starts fresh.
  EXPECT_TRUE(sched.takeJoined(claim.passId).empty());
  ASSERT_TRUE(sched.enqueue(makeScan(5, 3)));
  auto fresh = sched.claim();
  ASSERT_EQ(fresh.tasks.size(), 1u);
  EXPECT_NE(fresh.passId, claim.passId);
}

TEST(ScanScheduler, DepthCountsInflightUntilFinished) {
  ScanScheduler sched("w0", sharedScan());
  ASSERT_TRUE(sched.enqueue(makeScan(5, 1)));
  ASSERT_TRUE(sched.enqueue(makeScan(5, 2)));
  sched.resume();
  EXPECT_EQ(sched.depth(), 2u);
  auto claim = sched.claim();
  ASSERT_EQ(claim.tasks.size(), 2u);
  // The lanes emptied, but the claimed group is still the worker's load.
  EXPECT_EQ(sched.queuedOnly(), 0u);
  EXPECT_EQ(sched.depth(), 2u);
  sched.finishTask(claim.tasks[0], 0.0, true);
  EXPECT_EQ(sched.depth(), 1u);
  sched.finishTask(claim.tasks[1], 0.0, true);
  EXPECT_EQ(sched.depth(), 0u);
}

// ---------------------------------------------------------- memory budget

TEST(ScanScheduler, BudgetBlocksConflictingScanUntilPassCloses) {
  ScanSchedulerConfig config = sharedScan(false);
  config.scanMemoryBudgetBytes = 100.0;
  ScanScheduler sched("w0", config);
  ASSERT_TRUE(sched.enqueue(makeScan(1, 1, 80.0)));
  auto first = sched.claim();
  ASSERT_EQ(first.tasks.size(), 1u);
  EXPECT_DOUBLE_EQ(sched.budget().lockedBytes(), 80.0);

  // A second slot wants chunk 2 (80 bytes): over budget, so its claim
  // blocks — until the chunk-1 pass closes and frees the reservation.
  ASSERT_TRUE(sched.enqueue(makeScan(2, 2, 80.0)));
  std::atomic<bool> claimed{false};
  std::thread slot([&] {
    auto second = sched.claim();
    ASSERT_EQ(second.tasks.size(), 1u);
    EXPECT_EQ(second.tasks[0].chunkId, 2);
    claimed.store(true);
    sched.finishTask(second.tasks[0], 0.0, true);
    while (!sched.takeJoined(second.passId).empty()) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(claimed.load());  // still budget-blocked

  sched.finishTask(first.tasks[0], 0.0, true);
  EXPECT_TRUE(sched.takeJoined(first.passId).empty());  // closes, unlocks
  slot.join();
  EXPECT_TRUE(claimed.load());
  EXPECT_DOUBLE_EQ(sched.budget().lockedBytes(), 0.0);
}

TEST(ScanScheduler, BudgetBlockedSlotStillServesInteractive) {
  ScanSchedulerConfig config = sharedScan(false);
  config.scanMemoryBudgetBytes = 100.0;
  ScanScheduler sched("w0", config);
  ASSERT_TRUE(sched.enqueue(makeScan(1, 1, 100.0)));
  auto first = sched.claim();
  ASSERT_EQ(first.tasks.size(), 1u);
  ASSERT_TRUE(sched.enqueue(makeScan(2, 2, 100.0)));  // cannot fit

  // The blocked slot must not sleep through an interactive arrival: the
  // priority lane never touches the budget.
  std::atomic<bool> gotInteractive{false};
  std::thread slot([&] {
    auto claim = sched.claim();
    ASSERT_EQ(claim.tasks.size(), 1u);
    EXPECT_EQ(claim.tasks[0].cls, QueryClass::kInteractive);
    gotInteractive.store(true);
    sched.finishTask(claim.tasks[0], 0.0, true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(sched.enqueue(makeInteractive(3)));
  slot.join();
  EXPECT_TRUE(gotInteractive.load());

  // Cleanup: close the first pass, then drain the blocked scan.
  sched.finishTask(first.tasks[0], 0.0, true);
  EXPECT_TRUE(sched.takeJoined(first.passId).empty());
  auto second = sched.claim();
  ASSERT_EQ(second.tasks.size(), 1u);
  sched.finishTask(second.tasks[0], 0.0, true);
  EXPECT_TRUE(sched.takeJoined(second.passId).empty());
}

TEST(ScanScheduler, SameChunkPassesShareOneBudgetCharge) {
  ScanSchedulerConfig config = sharedScan();
  config.scanMemoryBudgetBytes = 100.0;
  ScanScheduler sched("w0", config);
  // Two scans of the same 90-byte chunk: grouped into one pass, one charge.
  ASSERT_TRUE(sched.enqueue(makeScan(7, 1, 90.0)));
  ASSERT_TRUE(sched.enqueue(makeScan(7, 2, 90.0)));
  sched.resume();
  auto group = sched.claim();
  ASSERT_EQ(group.tasks.size(), 2u);
  EXPECT_DOUBLE_EQ(sched.budget().lockedBytes(), 90.0);
  EXPECT_EQ(sched.budget().lockedSets(), 1u);
}

// ------------------------------------------------------- slow-scan tiers

TEST(ScanScheduler, SlowQueryEvictedToSlowTier) {
  ScanSchedulerConfig config = sharedScan(false);
  config.slowScanFactor = 2.0;
  ScanScheduler sched("w0", config);
  // Build the reference rate from a well-behaved query.
  for (int i = 0; i < 4; ++i) {
    sched.finishTask(makeScan(1, /*queryId=*/1), 1.0, true);
  }
  ASSERT_FALSE(sched.isSlowQuery(1));
  // Query 2 runs 10x the reference: rated slow after enough evidence.
  sched.finishTask(makeScan(2, /*queryId=*/2), 10.0, true);
  EXPECT_TRUE(sched.isSlowQuery(2));
  EXPECT_FALSE(sched.isSlowQuery(1));

  // Queued work routes by tier: the slow query's scans ride the slow lane,
  // claimed only after fast-tier chunks.
  ASSERT_TRUE(sched.enqueue(makeScan(3, 2)));  // slow query, chunk 3
  ASSERT_TRUE(sched.enqueue(makeScan(4, 1)));  // fast query, chunk 4
  auto first = sched.claim();
  ASSERT_EQ(first.tasks.size(), 1u);
  EXPECT_EQ(first.tasks[0].chunkId, 4);
  auto second = sched.claim();
  ASSERT_EQ(second.tasks.size(), 1u);
  EXPECT_EQ(second.tasks[0].chunkId, 3);
}

TEST(ScanScheduler, EvictionMovesAlreadyQueuedTasks) {
  ScanSchedulerConfig config = sharedScan();
  config.slowScanFactor = 2.0;
  ScanScheduler sched("w0", config);
  // Query 2's task is queued in the fast tier before the rating flips.
  ASSERT_TRUE(sched.enqueue(makeScan(3, 2)));
  ASSERT_TRUE(sched.enqueue(makeScan(4, 1)));
  for (int i = 0; i < 4; ++i) {
    sched.finishTask(makeScan(1, /*queryId=*/1), 1.0, true);
  }
  sched.finishTask(makeScan(2, /*queryId=*/2), 10.0, true);
  ASSERT_TRUE(sched.isSlowQuery(2));
  sched.resume();
  // Chunk 3 arrived first, but its query was evicted: chunk 4 goes first.
  auto first = sched.claim();
  ASSERT_EQ(first.tasks.size(), 1u);
  EXPECT_EQ(first.tasks[0].chunkId, 4);
}

// ------------------------------------------------------------- shutdown

TEST(ScanScheduler, ShutdownDrainsThenReturnsEmpty) {
  ScanScheduler sched("w0", sharedScan());
  ASSERT_TRUE(sched.enqueue(makeScan(1, 1)));
  sched.shutdown();
  EXPECT_FALSE(sched.enqueue(makeScan(2, 2)));
  auto claim = sched.claim();
  ASSERT_EQ(claim.tasks.size(), 1u);  // queued work still drains
  EXPECT_EQ(claim.tasks[0].chunkId, 1);
  sched.finishTask(claim.tasks[0], 0.0, true);
  while (!sched.takeJoined(claim.passId).empty()) {
  }
  EXPECT_TRUE(sched.claim().tasks.empty());  // drained: slots exit
}

}  // namespace
}  // namespace qserv::core
