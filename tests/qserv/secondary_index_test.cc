#include "qserv/secondary_index.h"

#include <gtest/gtest.h>

namespace qserv::core {
namespace {

std::vector<datagen::SecondaryIndexEntry> entries() {
  return {
      {100, 5, 1}, {101, 5, 2}, {102, 6, 0}, {103, 7, 3}, {104, 7, 4},
  };
}

TEST(SecondaryIndex, CreatesMetadataTable) {
  sql::Database db;
  SecondaryIndex index(db);
  EXPECT_TRUE(db.hasTable(SecondaryIndex::kTableName));
  EXPECT_EQ(index.size(), 0u);
}

TEST(SecondaryIndex, LookupReturnsLocations) {
  sql::Database db;
  SecondaryIndex index(db);
  ASSERT_TRUE(index.load(entries()).isOk());
  EXPECT_EQ(index.size(), 5u);

  std::vector<std::int64_t> ids = {101, 104};
  auto locs = index.lookup(ids);
  ASSERT_TRUE(locs.isOk()) << locs.status().toString();
  ASSERT_EQ(locs->size(), 2u);
  // Order is not guaranteed; check as a set.
  bool saw101 = false, saw104 = false;
  for (const auto& l : *locs) {
    if (l.objectId == 101) {
      saw101 = true;
      EXPECT_EQ(l.chunkId, 5);
      EXPECT_EQ(l.subChunkId, 2);
    }
    if (l.objectId == 104) {
      saw104 = true;
      EXPECT_EQ(l.chunkId, 7);
    }
  }
  EXPECT_TRUE(saw101 && saw104);
}

TEST(SecondaryIndex, MissingIdsProduceNoEntries) {
  sql::Database db;
  SecondaryIndex index(db);
  ASSERT_TRUE(index.load(entries()).isOk());
  std::vector<std::int64_t> ids = {999};
  auto locs = index.lookup(ids);
  ASSERT_TRUE(locs.isOk());
  EXPECT_TRUE(locs->empty());
}

TEST(SecondaryIndex, ChunksForDeduplicates) {
  sql::Database db;
  SecondaryIndex index(db);
  ASSERT_TRUE(index.load(entries()).isOk());
  std::vector<std::int64_t> ids = {100, 101, 103, 104};
  auto chunks = index.chunksFor(ids);
  ASSERT_TRUE(chunks.isOk());
  ASSERT_EQ(chunks->size(), 2u);
  EXPECT_EQ((*chunks)[0], 5);
  EXPECT_EQ((*chunks)[1], 7);
}

TEST(SecondaryIndex, EmptyLookup) {
  sql::Database db;
  SecondaryIndex index(db);
  auto locs = index.lookup({});
  ASSERT_TRUE(locs.isOk());
  EXPECT_TRUE(locs->empty());
}

TEST(SecondaryIndex, LookupUsesTheSqlIndex) {
  sql::Database db;
  SecondaryIndex index(db);
  ASSERT_TRUE(index.load(entries()).isOk());
  // The lookup goes through Database::execute; verify the probe is indexed.
  sql::ExecStats stats;
  auto r = db.execute("SELECT chunkId FROM ObjectIndex WHERE objectId = 102",
                      &stats);
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ(stats.indexLookups, 1u);
}

}  // namespace
}  // namespace qserv::core
