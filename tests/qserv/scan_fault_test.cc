/// \file scan_fault_test.cc
/// \brief Shared-scan scheduler under fault injection: interactive point
/// queries must keep meeting their deadlines (priority lane) while
/// concurrent full-table scans churn through the same workers and a few
/// percent of xrd transactions misbehave. The paper's FIFO workers convoy
/// the point queries behind scans (§6.4, Fig 14); the §4.3 scheduler must
/// not — and faults must degrade to clean errors, never hangs.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "qserv/cluster.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace qserv::core {
namespace {

TEST(ScanSchedulerFaults, InteractiveDeadlinesMetWhileScansChurn) {
  CatalogConfig catalog = CatalogConfig::lsst(18, 6, 0.05);
  SkyDataOptions skyOpts;
  skyOpts.basePatchObjects = 400;
  skyOpts.withSources = false;
  skyOpts.region = sphgeom::SphericalBox(0, -7, 14, 7);
  auto sky = buildSkyCatalog(catalog, skyOpts);
  ASSERT_TRUE(sky.isOk()) << sky.status().toString();

  // Integer-exact, merge-order-independent aggregates: concurrent sessions
  // merge chunk results in arrival order, so float sums (AVG) can differ in
  // the last ulp run to run.
  const std::string scanSql =
      "SELECT COUNT(*), MIN(objectId), MAX(objectId) FROM Object "
      "WHERE decl_PS > -90";

  // Fault-free oracle for the scan's answer.
  sql::TablePtr scanOracle;
  {
    ClusterOptions clean;
    clean.frontend.catalog = catalog;
    clean.numWorkers = 3;
    auto cluster = MiniCluster::create(clean, *sky);
    ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
    auto r = (*cluster)->frontend().query(scanSql);
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    scanOracle = r->result;
  }

  ClusterOptions opts;
  opts.frontend.catalog = catalog;
  opts.numWorkers = 3;
  opts.replication = 2;
  opts.worker.scheduler = SchedulerMode::kSharedScan;
  opts.worker.slots = 2;  // easy to saturate with scans
  opts.frontend.dispatchMaxAttempts = 6;
  opts.frontend.dispatchBackoff.base = std::chrono::microseconds(500);
  opts.frontend.dispatchBackoff.cap = std::chrono::microseconds(5'000);
  opts.frontend.queryDeadlineSeconds = 30.0;  // hang backstop, not the norm
  auto plan = xrd::FaultPlan::parse(
      "seed=20260808; write:p=0.03,fail; read:p=0.02,fail=internal; "
      "read:p=0.01,corrupt");
  ASSERT_TRUE(plan.isOk()) << plan.status().toString();
  opts.faults = *plan;
  auto cluster = MiniCluster::create(opts, *sky);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();

  auto before = util::MetricsRegistry::instance().snapshot();

  auto cleanOrCorrect = [&](const util::Result<QservFrontend::Execution>& r,
                            const sql::TablePtr& want,
                            const std::string& what) {
    if (!r.isOk()) {
      auto code = r.status().code();
      EXPECT_TRUE(code == util::ErrorCode::kUnavailable ||
                  code == util::ErrorCode::kDataLoss ||
                  code == util::ErrorCode::kInternal ||
                  code == util::ErrorCode::kDeadlineExceeded)
          << what << ": " << r.status().toString();
      return;
    }
    if (!want) return;
    ASSERT_EQ(r->result->numRows(), want->numRows()) << what;
    for (std::size_t col = 0; col < want->numColumns(); ++col) {
      EXPECT_EQ(r->result->cell(0, col).compare(want->cell(0, col)), 0)
          << what << " col " << col;
    }
  };

  // Scan churn: two sessions looping the full-table scan.
  std::atomic<bool> stopScans{false};
  std::vector<std::thread> scanners;
  for (int s = 0; s < 2; ++s) {
    scanners.emplace_back([&] {
      while (!stopScans.load(std::memory_order_acquire)) {
        auto r = (*cluster)->frontend().query(scanSql);
        cleanOrCorrect(r, scanOracle, scanSql);
      }
    });
  }

  // Interactive traffic: point lookups by objectId ride the priority lane.
  const auto& index = sky->index;
  ASSERT_FALSE(index.empty());
  for (int i = 0; i < 12; ++i) {
    std::int64_t id = index[(static_cast<std::size_t>(i) * 7919) %
                            index.size()].objectId;
    std::string pointSql =
        "SELECT objectId, ra_PS, decl_PS FROM Object WHERE objectId = " +
        std::to_string(id);
    util::Stopwatch watch;
    auto r = (*cluster)->frontend().query(pointSql);
    // The deadline: never a hang, even with scans saturating every slot
    // and faults forcing retries.
    EXPECT_LT(watch.elapsedSeconds(), 30.0) << pointSql;
    if (r.isOk()) {
      ASSERT_EQ(r->result->numRows(), 1u) << pointSql;
      EXPECT_EQ(r->result->cell(0, 0).asInt(), id);
    } else {
      cleanOrCorrect(r, nullptr, pointSql);
    }
  }
  stopScans.store(true, std::memory_order_release);
  for (auto& t : scanners) t.join();

  auto after = util::MetricsRegistry::instance().snapshot();
  auto counterDelta = [&](const char* name) -> std::uint64_t {
    auto b = before.counters.count(name) ? before.counters.at(name) : 0;
    auto a = after.counters.count(name) ? after.counters.at(name) : 0;
    return a - b;
  };
  auto histCountDelta = [&](const char* name) -> std::int64_t {
    auto b = before.histograms.count(name)
                 ? before.histograms.at(name).count : 0;
    auto a = after.histograms.count(name)
                 ? after.histograms.at(name).count : 0;
    return a - b;
  };
  // The scheduler actually ran in shared-scan mode: scans rode passes, and
  // the point lookups were classified interactive on the workers.
  EXPECT_GT(counterDelta("worker.scan_passes"), 0u);
  EXPECT_GT(histCountDelta("worker.interactive_queue_wait_seconds"), 0);
  EXPECT_GT(histCountDelta("worker.scan_queue_wait_seconds"), 0);
}

}  // namespace
}  // namespace qserv::core
