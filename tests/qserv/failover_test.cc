/// \file failover_test.cc
/// \brief End-to-end failure-handling matrix: every scenario a query can hit
/// on a faulty cluster must end in either a correct result or a clean,
/// prompt error — never a hang, a silent corruption, or a retry loop on the
/// same dead replica.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "qserv/cluster.h"
#include "util/metrics.h"
#include "util/stopwatch.h"

namespace qserv::core {
namespace {

/// Counter delta between two registry snapshots (0 when absent in either).
std::uint64_t delta(const util::MetricsSnapshot& before,
                    const util::MetricsSnapshot& after, const char* name) {
  auto b = before.counters.count(name) ? before.counters.at(name) : 0;
  auto a = after.counters.count(name) ? after.counters.at(name) : 0;
  return a - b;
}

class FailoverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new CatalogConfig(CatalogConfig::lsst(18, 6, 0.05));
    SkyDataOptions opts;
    opts.basePatchObjects = 500;
    opts.withSources = false;
    opts.region = sphgeom::SphericalBox(0, -7, 14, 7);
    auto sky = buildSkyCatalog(*catalog_, opts);
    ASSERT_TRUE(sky.isOk()) << sky.status().toString();
    sky_ = new datagen::PartitionedCatalog(std::move(sky).value());

    // Fault-free oracle: total object count, computed once.
    ClusterOptions copts;
    copts.frontend.catalog = *catalog_;
    copts.numWorkers = 2;
    auto cluster = MiniCluster::create(copts, *sky_);
    ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();
    auto r = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    oracleCount_ = r->result->cell(0, 0).asInt();
    ASSERT_GT(oracleCount_, 0);
  }

  static void TearDownTestSuite() {
    delete sky_;
    delete catalog_;
    sky_ = nullptr;
    catalog_ = nullptr;
  }

  static ClusterOptions baseOptions() {
    ClusterOptions opts;
    opts.frontend.catalog = *catalog_;
    opts.numWorkers = 3;
    // Fast retries so failing tests fail quickly.
    opts.frontend.dispatchBackoff.base = std::chrono::microseconds(500);
    opts.frontend.dispatchBackoff.cap = std::chrono::microseconds(5'000);
    return opts;
  }

  static CatalogConfig* catalog_;
  static datagen::PartitionedCatalog* sky_;
  static std::int64_t oracleCount_;
};

CatalogConfig* FailoverTest::catalog_ = nullptr;
datagen::PartitionedCatalog* FailoverTest::sky_ = nullptr;
std::int64_t FailoverTest::oracleCount_ = 0;

// 1. A replica dies mid-query stream: with replication the query must
//    fail over to the surviving copies and still return the right answer.
TEST_F(FailoverTest, ReplicaKilledMidQueryFailsOver) {
  auto opts = baseOptions();
  opts.replication = 2;
  // Worker 0 serves one result read, then drops dead mid-stream: with
  // batched dispatch (the default) the worker sees a single batch write, so
  // the death has to land on the result-stream reads to hit the query
  // mid-flight.
  auto plan = xrd::FaultPlan::parse("read:after=1,down");
  ASSERT_TRUE(plan.isOk());
  opts.workerFaults[0] = *plan;
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk()) << cluster.status().toString();

  auto before = util::MetricsRegistry::instance().snapshot();
  auto r = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
  auto after = util::MetricsRegistry::instance().snapshot();

  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(r->result->cell(0, 0).asInt(), oracleCount_);
  ASSERT_TRUE((*cluster)->injector(0) != nullptr);
  EXPECT_TRUE((*cluster)->injector(0)->isDown());
  // The failover was visible: retries happened, replicas were excluded,
  // and every retry slept through the backoff schedule.
  EXPECT_GT(delta(before, after, "dispatch.retries"), 0u);
  EXPECT_GT(delta(before, after, "dispatch.replica_exclusions"), 0u);
  EXPECT_GE(after.histograms.at("dispatch.backoff_seconds").count,
            before.histograms.count("dispatch.backoff_seconds")
                ? before.histograms.at("dispatch.backoff_seconds").count
                : 0);
  // Span attributes: some chunk took more than one attempt, and the failed
  // attempt span recorded its error.
  ASSERT_TRUE(r->trace);
  bool sawMultiAttempt = false, sawAttemptError = false;
  for (const auto& s : r->trace->spans()) {
    if (s.component != "dispatcher") continue;
    for (const auto& [k, v] : s.attrs) {
      if (k == "attempts" && v != "1") sawMultiAttempt = true;
      if (k == "error") sawAttemptError = true;
    }
  }
  EXPECT_TRUE(sawMultiAttempt);
  EXPECT_TRUE(sawAttemptError);
}

// 2. Every replica of some chunk is gone: the query must fail promptly with
//    an aggregated error naming the chunk — not hang, not loop forever.
TEST_F(FailoverTest, AllReplicasDownFailsFastAndCancelsSiblings) {
  auto opts = baseOptions();
  opts.replication = 1;
  opts.frontend.dispatchParallelism = 2;  // leaves chunks queued to cancel
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk());
  ASSERT_GT((*cluster)->chunkIds().size(), 4u);
  for (std::size_t w = 0; w < (*cluster)->numWorkers(); ++w) {
    (*cluster)->server(w).setUp(false);
  }

  auto before = util::MetricsRegistry::instance().snapshot();
  util::Stopwatch watch;
  auto r = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
  auto after = util::MetricsRegistry::instance().snapshot();

  ASSERT_FALSE(r.isOk());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kUnavailable);
  EXPECT_NE(r.status().message().find("chunk"), std::string::npos);
  EXPECT_NE(r.status().message().find("attempt"), std::string::npos);
  // Fail fast: the first hard failure cancels still-queued siblings instead
  // of letting every chunk grind through its own full retry schedule.
  EXPECT_LT(watch.elapsedSeconds(), 10.0);
  EXPECT_GT(delta(before, after, "dispatch.chunks_cancelled"), 0u);
  EXPECT_GT(delta(before, after, "dispatch.chunks_failed"), 0u);
}

// 3. Transient write faults: retries with backoff eventually succeed and the
//    result is exactly what a healthy cluster returns.
TEST_F(FailoverTest, TransientFaultsRetryWithBackoffThenSucceed) {
  auto opts = baseOptions();
  opts.replication = 1;
  // Per-chunk mode: this test pins the exact one-backoff-per-retry
  // accounting of the per-chunk path (batched mode writes once per worker,
  // so a p=0.3 write fault rarely fires; batch_fault_test covers the
  // batched path's transient faults).
  opts.frontend.dispatchMode = DispatchMode::kPerChunk;
  opts.frontend.dispatchMaxAttempts = 10;
  // Every worker fails ~30% of query writes (seeded, so reproducible).
  auto plan = xrd::FaultPlan::parse("seed=1234; write:p=0.3,fail");
  ASSERT_TRUE(plan.isOk());
  opts.faults = *plan;
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk());

  auto before = util::MetricsRegistry::instance().snapshot();
  auto r = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
  auto after = util::MetricsRegistry::instance().snapshot();

  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(r->result->cell(0, 0).asInt(), oracleCount_);
  std::uint64_t injected = delta(before, after, "faultinj.write_faults");
  std::uint64_t retries = delta(before, after, "dispatch.retries");
  EXPECT_GT(injected, 0u);
  EXPECT_GE(retries, injected);  // every injected failure was retried
  // Each retry slept through exactly one backoff draw.
  std::int64_t backoffBefore =
      before.histograms.count("dispatch.backoff_seconds")
          ? before.histograms.at("dispatch.backoff_seconds").count
          : 0;
  EXPECT_EQ(static_cast<std::uint64_t>(
                after.histograms.at("dispatch.backoff_seconds").count -
                backoffBefore),
            retries);
}

// 4. A replica serves corrupt dumps: the checksum catches it, the chunk is
//    re-fetched from a clean replica, and nothing corrupt reaches the
//    merged result.
TEST_F(FailoverTest, CorruptDumpRetriedOnSecondReplica) {
  auto opts = baseOptions();
  opts.numWorkers = 2;
  opts.replication = 2;  // every chunk also lives on the clean worker
  auto plan = xrd::FaultPlan::parse("read:corrupt");
  ASSERT_TRUE(plan.isOk());
  opts.workerFaults[0] = *plan;  // worker 0 corrupts every dump it serves
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk());

  auto before = util::MetricsRegistry::instance().snapshot();
  auto r = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
  auto after = util::MetricsRegistry::instance().snapshot();

  ASSERT_TRUE(r.isOk()) << r.status().toString();
  EXPECT_EQ(r->result->cell(0, 0).asInt(), oracleCount_);
  // The corruption fired and was caught by the dispatcher-side checksum;
  // no corrupt dump survived to the merger's last-line defense.
  EXPECT_GT(delta(before, after, "faultinj.corruptions"), 0u);
  EXPECT_GT(delta(before, after, "dispatch.checksum_mismatches"), 0u);
  EXPECT_EQ(delta(before, after, "merger.checksum_rejects"), 0u);
}

// 5. A per-query deadline bounds everything: a cluster mired in injected
//    latency makes the query fail with DEADLINE_EXCEEDED within the budget's
//    order of magnitude — it must not run to completion or hang.
TEST_F(FailoverTest, QueryDeadlineBoundsSlowCluster) {
  auto opts = baseOptions();
  opts.replication = 1;
  opts.frontend.queryDeadlineSeconds = 0.15;
  opts.frontend.dispatchMaxAttempts = 10;  // the deadline must stop us first
  // Every chunk write crawls for 50 ms and then fails: no attempt can ever
  // succeed, so the only clean exit is the deadline.
  auto plan = xrd::FaultPlan::parse("write:delay=50; write:fail");
  ASSERT_TRUE(plan.isOk());
  opts.faults = *plan;
  auto cluster = MiniCluster::create(opts, *sky_);
  ASSERT_TRUE(cluster.isOk());

  auto before = util::MetricsRegistry::instance().snapshot();
  util::Stopwatch watch;
  auto r = (*cluster)->frontend().query("SELECT COUNT(*) FROM Object");
  auto after = util::MetricsRegistry::instance().snapshot();

  ASSERT_FALSE(r.isOk());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kDeadlineExceeded);
  EXPECT_LT(watch.elapsedSeconds(), 10.0);
  EXPECT_GT(delta(before, after, "dispatch.deadline_exceeded"), 0u);
}

}  // namespace
}  // namespace qserv::core
