#include "qserv/query_rewriter.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace qserv::core {
namespace {

class RewriterTest : public ::testing::Test {
 protected:
  RewriterTest()
      : config_(CatalogConfig::lsst(18, 6)),
        chunker_(config_.makeChunker()),
        rewriter_(config_, chunker_) {}

  RewriteResult rewrite(std::string_view sql,
                        std::vector<std::int32_t> chunks) {
    auto analyzed = analyzeQuery(sql, config_);
    EXPECT_TRUE(analyzed.isOk()) << analyzed.status().toString();
    auto r = rewriter_.rewrite(*analyzed, chunks, "merged");
    EXPECT_TRUE(r.isOk()) << r.status().toString() << " for: " << sql;
    return std::move(r).value();
  }

  CatalogConfig config_;
  sphgeom::Chunker chunker_;
  QueryRewriter rewriter_;
};

TEST_F(RewriterTest, TableRenamePerChunk) {
  auto r = rewrite("SELECT objectId FROM Object WHERE ra_PS > 3", {100, 101});
  ASSERT_EQ(r.chunkQueries.size(), 2u);
  EXPECT_NE(r.chunkQueries[0].text.find("Object_100"), std::string::npos);
  EXPECT_NE(r.chunkQueries[1].text.find("Object_101"), std::string::npos);
  // Rewritten chunk queries parse.
  for (const auto& cq : r.chunkQueries) {
    EXPECT_TRUE(sql::parseScript(cq.text).isOk()) << cq.text;
  }
}

TEST_F(RewriterTest, AliasPreservesColumnResolution) {
  auto r = rewrite("SELECT Object.objectId FROM Object", {7});
  // The chunk table must be aliased back to the original binding name.
  EXPECT_NE(r.chunkQueries[0].text.find("Object_7 AS Object"),
            std::string::npos)
      << r.chunkQueries[0].text;
}

TEST_F(RewriterTest, PaperWorkedExample) {
  // §5.3: AVG -> SUM/COUNT per chunk; SUM(SUM)/SUM(COUNT) at the merge;
  // areaspec -> qserv_ptInSphericalBox on the partition columns.
  auto r = rewrite(
      "SELECT AVG(uFlux_SG) FROM Object "
      "WHERE qserv_areaspec_box(0.0, 0.0, 10.0, 10.0) AND uRadius_PS > 0.04",
      {42});
  const std::string& cq = r.chunkQueries[0].text;
  EXPECT_NE(cq.find("SUM(uFlux_SG)"), std::string::npos) << cq;
  EXPECT_NE(cq.find("COUNT(uFlux_SG)"), std::string::npos) << cq;
  EXPECT_NE(cq.find("qserv_ptInSphericalBox(Object.ra_PS, Object.decl_PS"),
            std::string::npos)
      << cq;
  EXPECT_EQ(cq.find("areaspec"), std::string::npos) << cq;
  EXPECT_NE(cq.find("uRadius_PS"), std::string::npos);

  ASSERT_TRUE(r.merge.hasAggregation);
  const std::string& merge = r.merge.finalSelectSql;
  EXPECT_NE(merge.find("SUM(QS0_SUM)"), std::string::npos) << merge;
  EXPECT_NE(merge.find("SUM(QS0_COUNT)"), std::string::npos) << merge;
  EXPECT_NE(merge.find("FROM merged"), std::string::npos) << merge;
  EXPECT_NE(merge.find("/"), std::string::npos) << merge;
  EXPECT_TRUE(sql::parseStatement(merge).isOk()) << merge;
}

TEST_F(RewriterTest, CountSplitsIntoSumOfCounts) {
  auto r = rewrite("SELECT COUNT(*) FROM Object", {1});
  EXPECT_NE(r.chunkQueries[0].text.find("COUNT(*) AS QS0_COUNT"),
            std::string::npos)
      << r.chunkQueries[0].text;
  EXPECT_NE(r.merge.finalSelectSql.find("SUM(QS0_COUNT)"), std::string::npos);
}

TEST_F(RewriterTest, MinMaxPassThrough) {
  auto r = rewrite("SELECT MIN(ra_PS), MAX(ra_PS) FROM Object", {1});
  EXPECT_NE(r.chunkQueries[0].text.find("MIN(ra_PS) AS QS0_MIN"),
            std::string::npos);
  EXPECT_NE(r.merge.finalSelectSql.find("MIN(QS0_MIN)"), std::string::npos);
  EXPECT_NE(r.merge.finalSelectSql.find("MAX(QS1_MAX)"), std::string::npos);
}

TEST_F(RewriterTest, GroupByPassthrough) {
  // HV3: group keys ship per chunk and re-group at the merge.
  auto r = rewrite(
      "SELECT count(*) AS n, AVG(ra_PS), chunkId FROM Object GROUP BY chunkId",
      {5});
  const std::string& cq = r.chunkQueries[0].text;
  EXPECT_NE(cq.find("GROUP BY chunkId"), std::string::npos) << cq;
  EXPECT_NE(cq.find("chunkId AS chunkId"), std::string::npos) << cq;
  const std::string& merge = r.merge.finalSelectSql;
  EXPECT_NE(merge.find("GROUP BY chunkId"), std::string::npos) << merge;
  EXPECT_NE(merge.find("AS n"), std::string::npos) << merge;
  EXPECT_TRUE(sql::parseStatement(merge).isOk()) << merge;
}

TEST_F(RewriterTest, HavingStaysOutOfChunkQueries) {
  auto r = rewrite(
      "SELECT chunkId, COUNT(*) AS n FROM Object GROUP BY chunkId "
      "HAVING COUNT(*) > 100 AND AVG(ra_PS) < 180",
      {5});
  const std::string& cq = r.chunkQueries[0].text;
  // Chunk groups are partial: no HAVING worker-side, but the partials its
  // aggregates need are shipped.
  EXPECT_EQ(cq.find("HAVING"), std::string::npos) << cq;
  EXPECT_NE(cq.find("SUM(ra_PS)"), std::string::npos) << cq;
  const std::string& merge = r.merge.finalSelectSql;
  EXPECT_NE(merge.find("HAVING"), std::string::npos) << merge;
  EXPECT_NE(merge.find("SUM(QS"), std::string::npos) << merge;
  EXPECT_TRUE(sql::parseStatement(merge).isOk()) << merge;
}

TEST_F(RewriterTest, PlainGroupByIsMergedNotUnioned) {
  // GROUP BY without aggregates still needs merge-side re-grouping: the
  // same key appears in many chunks.
  auto r = rewrite("SELECT subChunkId FROM Object GROUP BY subChunkId", {5, 6});
  EXPECT_TRUE(r.merge.hasAggregation);
  EXPECT_NE(r.merge.finalSelectSql.find("GROUP BY subChunkId"),
            std::string::npos)
      << r.merge.finalSelectSql;
}

TEST_F(RewriterTest, NonAggregateMergeIsUnion) {
  auto r = rewrite("SELECT objectId, ra_PS FROM Object WHERE ra_PS > 1", {3});
  EXPECT_FALSE(r.merge.hasAggregation);
  EXPECT_EQ(r.merge.finalSelectSql, "SELECT * FROM merged");
}

TEST_F(RewriterTest, OrderByLimitMoveToMerge) {
  auto r = rewrite(
      "SELECT objectId FROM Object ORDER BY objectId DESC LIMIT 10", {3});
  // Chunk side: top-k optimization keeps ORDER BY + LIMIT.
  EXPECT_NE(r.chunkQueries[0].text.find("LIMIT 10"), std::string::npos);
  EXPECT_NE(r.merge.finalSelectSql.find("ORDER BY objectId DESC"),
            std::string::npos);
  EXPECT_NE(r.merge.finalSelectSql.find("LIMIT 10"), std::string::npos);
}

TEST_F(RewriterTest, AggregateWithOrderByAliasAndLimit) {
  // Top-k must NOT push down to chunk queries for aggregates: the ORDER BY
  // references a merge-side alias and every group must be shipped.
  auto r = rewrite(
      "SELECT count(*) AS n, chunkId FROM Object GROUP BY chunkId "
      "ORDER BY n DESC LIMIT 5",
      {3});
  EXPECT_EQ(r.chunkQueries[0].text.find("LIMIT"), std::string::npos)
      << r.chunkQueries[0].text;
  EXPECT_EQ(r.chunkQueries[0].text.find("ORDER"), std::string::npos);
  EXPECT_NE(r.merge.finalSelectSql.find("ORDER BY n DESC"), std::string::npos);
  EXPECT_NE(r.merge.finalSelectSql.find("LIMIT 5"), std::string::npos);
  EXPECT_TRUE(sql::parseStatement(r.merge.finalSelectSql).isOk());
}

TEST_F(RewriterTest, NearNeighborSubchunkStatements) {
  std::int32_t chunk = chunker_.chunkAt(2.0, 2.0);
  auto r = rewrite(
      "SELECT count(*) FROM Object o1, Object o2 "
      "WHERE qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.1",
      {chunk});
  ASSERT_EQ(r.chunkQueries.size(), 1u);
  const auto& spec = r.chunkQueries[0];
  // All subchunks of the chunk are listed (no area restriction).
  EXPECT_EQ(spec.subChunkIds.size(), chunker_.subChunksOf(chunk).size());
  // Header present and first.
  EXPECT_EQ(spec.text.rfind("-- SUBCHUNKS: ", 0), 0u) << spec.text;
  // One statement per subchunk, joining subchunk x full-overlap tables.
  std::int32_t sc = spec.subChunkIds[0];
  std::string scName =
      "Object_" + std::to_string(chunk) + "_" + std::to_string(sc);
  EXPECT_NE(spec.text.find("FROM " + scName + " AS o1"), std::string::npos)
      << spec.text;
  EXPECT_NE(spec.text.find("ObjectFullOverlap_" + std::to_string(chunk) + "_" +
                           std::to_string(sc) + " AS o2"),
            std::string::npos)
      << spec.text;
  EXPECT_TRUE(sql::parseScript(spec.text).isOk()) << spec.text;
}

TEST_F(RewriterTest, NearNeighborAreaRestrictionPrunesSubchunks) {
  // A tiny box covers only a few subchunks of the chunk.
  std::int32_t chunk = chunker_.chunkAt(2.0, 2.0);
  auto analyzed = analyzeQuery(
      "SELECT count(*) FROM Object o1, Object o2 "
      "WHERE qserv_areaspec_box(1.9, 1.9, 2.1, 2.1) AND "
      "qserv_angSep(o1.ra_PS, o1.decl_PS, o2.ra_PS, o2.decl_PS) < 0.01",
      config_);
  ASSERT_TRUE(analyzed.isOk());
  auto r = rewriter_.rewrite(*analyzed, std::vector<std::int32_t>{chunk},
                             "merged");
  ASSERT_TRUE(r.isOk());
  ASSERT_EQ(r->chunkQueries.size(), 1u);
  EXPECT_LT(r->chunkQueries[0].subChunkIds.size(),
            chunker_.subChunksOf(chunk).size());
  EXPECT_GE(r->chunkQueries[0].subChunkIds.size(), 1u);
  // The area restriction applies to o1 inside each statement.
  EXPECT_NE(r->chunkQueries[0].text.find(
                "qserv_ptInSphericalBox(o1.ra_PS, o1.decl_PS"),
            std::string::npos)
      << r->chunkQueries[0].text;
}

TEST_F(RewriterTest, TwoTableJoinRenamesBoth) {
  auto r = rewrite(
      "SELECT o.objectId, s.sourceId FROM Object o, Source s "
      "WHERE o.objectId = s.objectId",
      {9});
  const std::string& cq = r.chunkQueries[0].text;
  EXPECT_NE(cq.find("Object_9 AS o"), std::string::npos) << cq;
  EXPECT_NE(cq.find("Source_9 AS s"), std::string::npos) << cq;
}

TEST_F(RewriterTest, EmptyChunkListYieldsNoQueries) {
  auto r = rewrite("SELECT COUNT(*) FROM Object", {});
  EXPECT_TRUE(r.chunkQueries.empty());
  EXPECT_FALSE(r.merge.finalSelectSql.empty());
}

TEST_F(RewriterTest, StarWithAggregatesRejected) {
  auto analyzed =
      analyzeQuery("SELECT *, COUNT(*) FROM Object", config_);
  ASSERT_TRUE(analyzed.isOk());
  auto r = rewriter_.rewrite(*analyzed, std::vector<std::int32_t>{1}, "m");
  EXPECT_FALSE(r.isOk());
}

}  // namespace
}  // namespace qserv::core
