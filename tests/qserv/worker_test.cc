#include "qserv/worker.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "datagen/partitioner.h"
#include "datagen/schemas.h"
#include "qserv/batch_codec.h"
#include "qserv/cluster.h"
#include "util/md5.h"
#include "util/strings.h"
#include "xrd/paths.h"

namespace qserv::core {
namespace {

/// A one-worker fixture with a couple of real partitioned chunks.
class WorkerTest : public ::testing::Test {
 protected:
  WorkerTest() : config_(CatalogConfig::lsst(18, 6, 0.05)) {}

  void SetUp() override {
    SkyDataOptions data;
    data.basePatchObjects = 800;
    data.region = sphgeom::SphericalBox(0, -7, 7, 7);  // a few chunks
    auto catalog = buildSkyCatalog(config_, data);
    ASSERT_TRUE(catalog.isOk()) << catalog.status().toString();
    db_ = std::make_shared<sql::Database>("w0");
    std::size_t bestRows = 0;
    for (const auto& chunk : catalog->chunks) {
      ASSERT_TRUE(datagen::loadChunkIntoDatabase(*db_, chunk).isOk());
      ASSERT_TRUE(
          db_->createIndex(chunk.objects->name(), "subChunkId").isOk());
      chunks_.push_back(chunk.chunkId);
      // Edge chunks may carry only overlap rows; tests that need data use
      // the most populated chunk.
      if (chunk.objects->numRows() > bestRows) {
        bestRows = chunk.objects->numRows();
        populatedChunk_ = chunk.chunkId;
      }
    }
    ASSERT_FALSE(chunks_.empty());
    ASSERT_GT(bestRows, 0u);
  }

  std::unique_ptr<Worker> makeWorker(WorkerConfig wc = {}) {
    return std::make_unique<Worker>("w0", db_, config_, chunks_, wc);
  }

  /// Round-trip one chunk query through the ofs interface.
  util::Result<std::string> runQuery(Worker& w, std::int32_t chunk,
                                     const std::string& text) {
    QSERV_RETURN_IF_ERROR(w.writeFile(xrd::makeQueryPath(chunk), text));
    return w.readFile(xrd::makeResultPath(util::Md5::hex(text)));
  }

  CatalogConfig config_;
  std::shared_ptr<sql::Database> db_;
  std::vector<std::int32_t> chunks_;
  std::int32_t populatedChunk_ = -1;
};

TEST_F(WorkerTest, ExecutesChunkQueryAndPublishesDump) {
  auto w = makeWorker();
  std::int32_t chunk = populatedChunk_;
  std::string q = "SELECT COUNT(*) AS QS0_COUNT FROM Object_" +
                  std::to_string(chunk) + ";\n";
  auto dump = runQuery(*w, chunk, q);
  ASSERT_TRUE(dump.isOk()) << dump.status().toString();
  EXPECT_NE(dump->find("CREATE TABLE"), std::string::npos);
  EXPECT_NE(dump->find("QS0_COUNT"), std::string::npos);
  EXPECT_NE(dump->find("-- QSERV-OBS"), std::string::npos);
  EXPECT_EQ(w->tasksExecuted(), 1u);
}

TEST_F(WorkerTest, RejectsUnknownChunk) {
  auto w = makeWorker();
  EXPECT_EQ(w->writeFile(xrd::makeQueryPath(999999), "SELECT 1;").code(),
            util::ErrorCode::kNotFound);
}

TEST_F(WorkerTest, RejectsNonQueryPath) {
  auto w = makeWorker();
  EXPECT_EQ(w->writeFile("/bogus/1", "x").code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(w->readFile("/bogus/1").status().code(),
            util::ErrorCode::kInvalidArgument);
}

TEST_F(WorkerTest, BadSqlPublishesError) {
  auto w = makeWorker();
  std::int32_t chunk = populatedChunk_;
  std::string q = "SELECT FROM WHERE;";
  ASSERT_TRUE(w->writeFile(xrd::makeQueryPath(chunk), q).isOk());
  auto r = w->readFile(xrd::makeResultPath(util::Md5::hex(q)));
  EXPECT_FALSE(r.isOk());
}

TEST_F(WorkerTest, UnrewrittenAreaspecFailsLoudly) {
  // A chunk query that still contains the frontend-only pseudo-function
  // must fail on the worker, not silently return everything.
  auto w = makeWorker();
  std::int32_t chunk = populatedChunk_;
  std::string q = "SELECT COUNT(*) FROM Object_" + std::to_string(chunk) +
                  " WHERE qserv_areaspec_box(0,0,1,1);";
  ASSERT_TRUE(w->writeFile(xrd::makeQueryPath(chunk), q).isOk());
  EXPECT_FALSE(w->readFile(xrd::makeResultPath(util::Md5::hex(q))).isOk());
}

TEST_F(WorkerTest, ResultsAreOneShot) {
  WorkerConfig wc;
  wc.resultTimeout = std::chrono::milliseconds(200);
  auto w = makeWorker(wc);
  std::int32_t chunk = populatedChunk_;
  std::string q = "SELECT COUNT(*) AS c FROM Object_" +
                  std::to_string(chunk) + ";";
  auto first = runQuery(*w, chunk, q);
  ASSERT_TRUE(first.isOk());
  // The result was consumed; a second read times out.
  auto second = w->readFile(xrd::makeResultPath(util::Md5::hex(q)));
  EXPECT_FALSE(second.isOk());
}

TEST_F(WorkerTest, SubchunkBuildAndCleanup) {
  auto w = makeWorker();
  std::int32_t chunk = populatedChunk_;
  sphgeom::Chunker chunker = config_.makeChunker();
  std::int32_t sc = chunker.subChunksOf(chunk)[0];
  std::string scTable = datagen::subChunkTableName("Object", chunk, sc);
  std::string ovTable =
      datagen::subChunkTableName("ObjectFullOverlap", chunk, sc);
  std::string q = "-- SUBCHUNKS: " + std::to_string(sc) + "\n" +
                  "SELECT COUNT(*) AS c FROM " + scTable + " AS o1, " +
                  ovTable + " AS o2;\n";
  auto dump = runQuery(*w, chunk, q);
  ASSERT_TRUE(dump.isOk()) << dump.status().toString();
  // Tables are dropped after the task (no caching by default, like the
  // paper's implementation).
  EXPECT_FALSE(db_->hasTable(scTable));
  EXPECT_FALSE(db_->hasTable(ovTable));
}

TEST_F(WorkerTest, SubchunkCachingKeepsTables) {
  WorkerConfig wc;
  wc.cacheSubchunks = true;
  auto w = makeWorker(wc);
  std::int32_t chunk = populatedChunk_;
  sphgeom::Chunker chunker = config_.makeChunker();
  std::int32_t sc = chunker.subChunksOf(chunk)[0];
  std::string scTable = datagen::subChunkTableName("Object", chunk, sc);
  std::string q = "-- SUBCHUNKS: " + std::to_string(sc) + "\n" +
                  "SELECT COUNT(*) AS c FROM " + scTable + ";\n";
  ASSERT_TRUE(runQuery(*w, chunk, q).isOk());
  EXPECT_TRUE(db_->hasTable(scTable));
}

TEST_F(WorkerTest, SubchunkRowsPartitionTheChunk) {
  // Union of subchunk tables == chunk table rows (build correctness).
  WorkerConfig wc;
  wc.cacheSubchunks = true;
  auto w = makeWorker(wc);
  std::int32_t chunk = populatedChunk_;
  sphgeom::Chunker chunker = config_.makeChunker();
  auto subChunks = chunker.subChunksOf(chunk);
  std::vector<std::string> ids;
  for (auto sc : subChunks) ids.push_back(std::to_string(sc));
  std::string q = "-- SUBCHUNKS: " + util::join(ids, ", ") + "\n";
  for (auto sc : subChunks) {
    q += "SELECT COUNT(*) AS c FROM " +
         datagen::subChunkTableName("Object", chunk, sc) + ";\n";
  }
  ASSERT_TRUE(runQuery(*w, chunk, q).isOk());
  // Sum the published counts directly from the database.
  auto total =
      db_->execute("SELECT COUNT(*) FROM Object_" + std::to_string(chunk));
  ASSERT_TRUE(total.isOk());
  std::int64_t expect = (*total)->cell(0, 0).asInt();
  std::int64_t got = 0;
  for (auto sc : subChunks) {
    auto r = db_->execute("SELECT COUNT(*) FROM " +
                          datagen::subChunkTableName("Object", chunk, sc));
    ASSERT_TRUE(r.isOk());
    got += (*r)->cell(0, 0).asInt();
  }
  EXPECT_EQ(got, expect);
}

TEST_F(WorkerTest, ObservablesScaleWithRowScale) {
  WorkerConfig wc;
  wc.rowScale = 100.0;
  auto w = makeWorker(wc);
  std::int32_t chunk = populatedChunk_;
  std::string q = "SELECT COUNT(*) AS c FROM Object_" +
                  std::to_string(chunk) + " WHERE ra_PS > 0;";
  ASSERT_TRUE(runQuery(*w, chunk, q).isOk());
  auto obs = w->observablesFor(util::Md5::hex(q));
  ASSERT_TRUE(obs.has_value());
  auto rows =
      db_->execute("SELECT COUNT(*) FROM Object_" + std::to_string(chunk));
  ASSERT_TRUE(rows.isOk());
  auto n = static_cast<std::uint64_t>((*rows)->cell(0, 0).asInt());
  EXPECT_EQ(obs->rowsExamined, n * 100);
  // bytesScanned charges Object's paper row width.
  EXPECT_NEAR(obs->bytesScanned,
              static_cast<double>(n) * 100.0 * datagen::kObjectRowBytes,
              1.0);
}

TEST_F(WorkerTest, ParallelTasksAcrossSlots) {
  WorkerConfig wc;
  wc.slots = 4;
  auto w = makeWorker(wc);
  std::vector<std::string> queries;
  for (int i = 0; i < 12; ++i) {
    std::int32_t chunk = chunks_[static_cast<std::size_t>(i) % chunks_.size()];
    queries.push_back("SELECT COUNT(*) AS c FROM Object_" +
                      std::to_string(chunk) + " WHERE ra_PS > " +
                      std::to_string(i) + ";");
    ASSERT_TRUE(
        w->writeFile(xrd::makeQueryPath(chunk), queries.back()).isOk());
  }
  for (const auto& q : queries) {
    auto r = w->readFile(xrd::makeResultPath(util::Md5::hex(q)));
    EXPECT_TRUE(r.isOk()) << r.status().toString();
  }
  EXPECT_EQ(w->tasksExecuted(), 12u);
}

TEST_F(WorkerTest, SharedScanGroupChargesIoOnce) {
  WorkerConfig wc;
  wc.slots = 1;
  wc.scheduler = SchedulerMode::kSharedScan;
  wc.startPaused = true;  // stage the queue before any task is claimed
  auto w = makeWorker(wc);
  std::int32_t chunk = populatedChunk_;
  // Three distinct scans of the same chunk queued together.
  std::vector<std::string> queries;
  for (int i = 0; i < 3; ++i) {
    queries.push_back("SELECT COUNT(*) AS c FROM Object_" +
                      std::to_string(chunk) + " WHERE ra_PS > " +
                      std::to_string(i * 100) + ";");
  }
  for (const auto& q : queries) {
    ASSERT_TRUE(w->writeFile(xrd::makeQueryPath(chunk), q).isOk());
  }
  w->resume();
  int charged = 0;
  for (const auto& q : queries) {
    auto r = w->readFile(xrd::makeResultPath(util::Md5::hex(q)));
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    auto obs = w->observablesFor(util::Md5::hex(q));
    ASSERT_TRUE(obs.has_value());
    if (obs->bytesScanned > 0) ++charged;
  }
  // The whole group shares one scan: exactly one task pays the I/O.
  EXPECT_EQ(charged, 1);
}

TEST_F(WorkerTest, FifoChargesEveryScan) {
  WorkerConfig wc;
  wc.slots = 1;
  wc.scheduler = SchedulerMode::kFifo;
  wc.startPaused = true;
  auto w = makeWorker(wc);
  std::int32_t chunk = populatedChunk_;
  std::vector<std::string> queries;
  // Predicates must intersect the chunk's declination range: a scan whose
  // range misses it entirely is zone-map pruned and pays no I/O at all.
  for (int i = 0; i < 3; ++i) {
    queries.push_back("SELECT COUNT(*) AS c FROM Object_" +
                      std::to_string(chunk) + " WHERE decl_PS > " +
                      std::to_string(-100 - i * 100) + ";");
  }
  for (const auto& q : queries) {
    ASSERT_TRUE(w->writeFile(xrd::makeQueryPath(chunk), q).isOk());
  }
  w->resume();
  int charged = 0;
  for (const auto& q : queries) {
    ASSERT_TRUE(w->readFile(xrd::makeResultPath(util::Md5::hex(q))).isOk());
    auto obs = w->observablesFor(util::Md5::hex(q));
    ASSERT_TRUE(obs.has_value());
    if (obs->bytesScanned > 0) ++charged;
  }
  EXPECT_EQ(charged, 3);
}

TEST_F(WorkerTest, InteractiveClassBypassesScanGroup) {
  WorkerConfig wc;
  wc.slots = 1;
  wc.scheduler = SchedulerMode::kSharedScan;
  wc.startPaused = true;
  auto w = makeWorker(wc);
  std::int32_t chunk = populatedChunk_;
  // Two header-less scans plus one interactive-classed query, all on the
  // same chunk. The interactive task rides the priority lane: it must not
  // join the scan group, so it pays its own read while the group shares one.
  std::vector<std::string> queries = {
      "SELECT COUNT(*) AS c FROM Object_" + std::to_string(chunk) +
          " WHERE decl_PS > -100;",
      "SELECT COUNT(*) AS c FROM Object_" + std::to_string(chunk) +
          " WHERE decl_PS > -200;",
      classHeaderLine(QueryClass::kInteractive) +
          "SELECT COUNT(*) AS c FROM Object_" + std::to_string(chunk) +
          " WHERE decl_PS > -300;",
  };
  for (const auto& q : queries) {
    ASSERT_TRUE(w->writeFile(xrd::makeQueryPath(chunk), q).isOk());
  }
  w->resume();
  int charged = 0;
  for (const auto& q : queries) {
    auto r = w->readFile(xrd::makeResultPath(util::Md5::hex(q)));
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    auto obs = w->observablesFor(util::Md5::hex(q));
    ASSERT_TRUE(obs.has_value());
    if (obs->bytesScanned > 0) ++charged;
  }
  EXPECT_EQ(charged, 2);  // one for the scan group, one for the interactive
}

TEST_F(WorkerTest, AbandonedGroupLeaderDoesNotEatIoCharge) {
  // Regression: the scan-I/O charge used to be hardwired to the group's
  // first task. When that leader belongs to an abandoned batch it is
  // skipped without executing — the charge must fall to the first task
  // that actually runs, or the group's bytesScanned is silently zero.
  WorkerConfig wc;
  wc.slots = 1;
  wc.scheduler = SchedulerMode::kSharedScan;
  wc.startPaused = true;
  auto w = makeWorker(wc);
  std::int32_t chunk = populatedChunk_;
  std::string batchQuery = "SELECT COUNT(*) AS c FROM Object_" +
                           std::to_string(chunk) + " WHERE decl_PS > -500;";
  std::string wire = encodeBatchRequest({{chunk, batchQuery}}, 4);
  std::string batchId = util::Md5::hex(wire);
  ASSERT_TRUE(w->writeFile(xrd::makeBatchPath(batchId), wire).isOk());
  // A second scan of the same chunk queues behind it, into the same group.
  std::string survivor = "SELECT COUNT(*) AS c FROM Object_" +
                         std::to_string(chunk) + " WHERE decl_PS > -600;";
  ASSERT_TRUE(w->writeFile(xrd::makeQueryPath(chunk), survivor).isOk());
  // Abandon the batch before any task is claimed: the leader is skipped.
  ASSERT_TRUE(w->writeFile(xrd::makeBatchCancelPath(batchId), "").isOk());
  w->resume();
  auto r = w->readFile(xrd::makeResultPath(util::Md5::hex(survivor)));
  ASSERT_TRUE(r.isOk()) << r.status().toString();
  auto obs = w->observablesFor(util::Md5::hex(survivor));
  ASSERT_TRUE(obs.has_value());
  EXPECT_GT(obs->bytesScanned, 0.0);
}

TEST_F(WorkerTest, QueuedTasksIncludesClaimedUnfinishedWork) {
  // Regression: queuedTasks()/ping used to report only the queue, so a
  // worker grinding through claimed work looked idle to the control plane.
  WorkerConfig wc;
  wc.slots = 1;
  auto w = makeWorker(wc);
  ASSERT_GE(chunks_.size(), 2u);
  std::int32_t a = chunks_[0], b = chunks_[1];
  auto query = [](std::int32_t c) {
    return "SELECT COUNT(*) AS c FROM Object_" + std::to_string(c) + ";";
  };
  // Stream window 1: the second chunk's publish blocks until the first
  // frame is read, pinning one claimed-but-unfinished task in the slot.
  std::string wire =
      encodeBatchRequest({{a, query(a)}, {b, query(b)}}, /*window=*/1);
  std::string batchId = util::Md5::hex(wire);
  ASSERT_TRUE(w->writeFile(xrd::makeBatchPath(batchId), wire).isOk());
  // Both tasks have executed once tasksExecuted()==2, but the second is
  // stuck publishing (window full): it is in-flight, not finished.
  while (w->tasksExecuted() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(w->queuedTasks(), 1u);
  auto ping = w->readFile(std::string(xrd::kPingPath));
  ASSERT_TRUE(ping.isOk());
  EXPECT_NE(ping->find(" queue=1 "), std::string::npos) << *ping;
  // Drain the stream; the in-flight task finishes and the depth drops.
  std::string streamPath = xrd::makeBatchStreamPath(batchId);
  ASSERT_TRUE(w->readFile(streamPath).isOk());
  ASSERT_TRUE(w->readFile(streamPath).isOk());
  while (w->queuedTasks() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(w->queuedTasks(), 0u);
}

TEST_F(WorkerTest, ShutdownRejectsNewWork) {
  auto w = makeWorker();
  w->shutdown();
  EXPECT_FALSE(
      w->writeFile(xrd::makeQueryPath(chunks_[0]), "SELECT 1;").isOk());
}

}  // namespace
}  // namespace qserv::core
